.PHONY: all build test ci bench clean

all: build

build:
	dune build @all

test:
	dune runtest

# Tier-1 gate: everything compiles and the whole suite passes.
ci:
	dune build @all && dune runtest

bench:
	dune exec bench/main.exe

clean:
	dune clean
