.PHONY: all build test fmt-check metrics-smoke lint static-check bench-smoke ci bench clean

all: build

build:
	dune build @all

test:
	dune runtest

# Formatting gate.  Skipped (with a notice) when ocamlformat is not
# installed, so ci still works in minimal containers.
fmt-check:
	@if command -v ocamlformat >/dev/null 2>&1; then \
		dune build @fmt; \
	else \
		echo "fmt-check: ocamlformat not installed, skipping"; \
	fi

# Smoke-test the observability surface: run a small validation scenario
# with --metrics/--trace and check the outputs are well-formed.  The
# validate subcommand itself exits non-zero on any invariant violation.
metrics-smoke:
	dune exec bin/mifo_sim.exe -- validate --ases 80 --flows 8 \
		--metrics _build/metrics-smoke.json --trace _build/trace-smoke.jsonl
	@if command -v python3 >/dev/null 2>&1; then \
		python3 -m json.tool _build/metrics-smoke.json >/dev/null && \
		python3 -c 'import json,sys; [json.loads(l) for l in open(sys.argv[1]) if l.strip()]' \
			_build/trace-smoke.jsonl && \
		echo "metrics-smoke: JSON outputs parse"; \
	else \
		echo "metrics-smoke: python3 not installed, skipping JSON parse check"; \
	fi

# Determinism / domain-safety lint over the sources (bench/ is exempt).
lint:
	dune exec bin/mifo_lint.exe

# Static data-plane verifier gate: the default configuration must verify
# clean — under the full property suite (loops, delivery, stretch,
# resilience), both unbounded and with the k=2 bounded automaton — and
# the Tag-Check ablations must fail WITH a concrete loop counterexample
# (exit 1 + a forwarding-loop violation in the JSON).  The k2 gadget leg
# pins the ranked-set semantics: its ablated automaton is loop-free when
# only the first alternative is admissible (-k 1) and must loop the
# moment the second ranked slot opens (-k 2).  The black-hole gadget leg
# must fail the delivery check (and only it) under a failed link, with a
# counterexample the checker replays stranded through the dynamic
# walker; the stretch gadget leg must fail the stretch check (and only
# it) at --stretch-bound 1.  Both gadgets verify clean when healthy.
static-check:
	dune exec bin/mifo_sim.exe -- check --ases 150 --seed 42 \
		--props loops,delivery,stretch,resilience >/dev/null
	dune exec bin/mifo_sim.exe -- check --ases 150 --seed 42 -k 2 \
		--props loops,delivery,stretch,resilience >/dev/null
	dune exec bin/mifo_sim.exe -- check --k2-gadget --no-tag-check -k 1 >/dev/null
	dune exec bin/mifo_sim.exe -- check --bh-gadget \
		--props loops,delivery,stretch,resilience >/dev/null
	dune exec bin/mifo_sim.exe -- check --stretch-gadget \
		--props loops,delivery,stretch,resilience >/dev/null
	@out=$$(dune exec bin/mifo_sim.exe -- check --bh-gadget --props delivery \
		--fail-link 2:0 2>&1); \
	if [ $$? -eq 0 ]; then \
		echo "static-check: black-hole gadget unexpectedly verified clean"; exit 1; \
	fi; \
	case "$$out" in \
	*black-hole*) ;; \
	*) echo "static-check: black-hole gadget failed without a black-hole violation"; exit 1;; \
	esac; \
	case "$$out" in \
	*"replayed "*) echo "static-check: black-hole gadget fails and replays stranded";; \
	*) echo "static-check: black-hole counterexample did not replay"; exit 1;; \
	esac
	@out=$$(dune exec bin/mifo_sim.exe -- check --stretch-gadget --props stretch \
		--stretch-bound 1 2>&1); \
	if [ $$? -eq 0 ]; then \
		echo "static-check: stretch gadget unexpectedly verified clean at bound 1"; exit 1; \
	fi; \
	case "$$out" in \
	*stretch*) ;; \
	*) echo "static-check: stretch gadget failed without a stretch violation"; exit 1;; \
	esac; \
	case "$$out" in \
	*"replayed "*) echo "static-check: stretch gadget fails and replays delivered";; \
	*) echo "static-check: stretch counterexample did not replay"; exit 1;; \
	esac
	@out=$$(dune exec bin/mifo_sim.exe -- check --gadget --no-tag-check 2>/dev/null); \
	if [ $$? -eq 0 ]; then \
		echo "static-check: ablated gadget unexpectedly verified clean"; exit 1; \
	fi; \
	case "$$out" in \
	*forwarding-loop*) echo "static-check: ablation fails with a machine-checked loop";; \
	*) echo "static-check: ablation failed without a loop counterexample"; exit 1;; \
	esac
	@out=$$(dune exec bin/mifo_sim.exe -- check --k2-gadget --no-tag-check -k 2 2>/dev/null); \
	if [ $$? -eq 0 ]; then \
		echo "static-check: ablated k2 gadget unexpectedly verified clean at k=2"; exit 1; \
	fi; \
	case "$$out" in \
	*forwarding-loop*) echo "static-check: k=2 ablation fails with a machine-checked loop";; \
	*) echo "static-check: k=2 ablation failed without a loop counterexample"; exit 1;; \
	esac

# Smoke-test the sim benchmark suite at tiny sizes: the incremental
# solver must still be exercised end-to-end (reference vs incremental,
# packetsim event loop), both eventq engines must report bit-identical
# event counts and completions (the bench exits 1 on any divergence,
# and the JSON is re-checked here), and BENCH_sim.json must be
# well-formed JSON.  The sharded legs run each workload at domains=1
# and domains=2/4 and must be bit-identical to the serial oracle; the
# JSON must record the jobs actually used and must not quote a shard
# speedup on a 1-core box.  A second leg runs the routing track on a
# downsized 44K-shaped topology and asserts the CSR/boxed RIBs and the
# incremental/full verifier verdicts agree, that jobs/peak-memory are
# recorded, and that no speedup is quoted on a 1-core box.  Perf numbers
# at these sizes are meaningless; the full run is `make bench`.
bench-smoke:
	MIFO_SIM_ASES=60 MIFO_SIM_FLOWS=60 MIFO_SIM_TIME=5 \
	MIFO_PKT_ASES=4 MIFO_PKT_FLOWS=4 MIFO_PKT_KB=50 \
	MIFO_PKT2_ASES=8 MIFO_PKT2_FLOWS=6 MIFO_PKT2_KB=50 \
	MIFO_SHARD_ASES=6 MIFO_SHARD_FLOWS=8 MIFO_SHARD_KB=100 \
	MIFO_SHARD2_ROUTERS=24 MIFO_SHARD2_FLOWS=8 MIFO_SHARD2_KB=100 \
	MIFO_BENCH_SIM_OUT=_build/BENCH_sim-smoke.json \
		dune exec bench/main.exe -- sim
	@if command -v python3 >/dev/null 2>&1; then \
		python3 -m json.tool _build/BENCH_sim-smoke.json >/dev/null && \
		echo "bench-smoke: BENCH_sim-smoke.json parses"; \
		python3 -c 'import json,sys; d=json.load(open(sys.argv[1])); \
rows=(d.get("packetsim") or [])+d["flowsim"]; \
assert rows, "no bench rows"; \
bad=[r["label"] for r in rows if not r["bit_identical"]]; \
assert not bad, "engines diverged: %s" % bad; \
sh=d.get("shard") or []; \
assert sh, "no shard rows"; \
bad=[r["label"] for r in sh if not r["bit_identical"]]; \
assert not bad, "sharded runs diverged from the serial oracle: %s" % bad; \
assert all("jobs" in r and r["runs"] for r in sh), "shard jobs/runs not recorded"; \
assert d["machine"]["cores"] > 1 or all("speedup" not in r for r in sh), \
	"shard speedup quoted on a 1-core box"' \
			_build/BENCH_sim-smoke.json && \
		echo "bench-smoke: heap/wheel engines and sharded runs bit-identical"; \
	else \
		echo "bench-smoke: python3 not installed, skipping JSON parse check"; \
	fi
	MIFO_ASES=300 MIFO_44K_ASES=2000 MIFO_44K_DESTS=8 MIFO_44K_DELTAS=6 \
	MIFO_44K_CHECK_DESTS=4 MIFO_44K_FAILS=16 \
	MIFO_BENCH_ROUTING_OUT=_build/BENCH_routing-smoke.json \
	MIFO_BENCH_SIM_OUT=_build/BENCH_sim-smoke.json \
		dune exec bench/main.exe -- routing
	@if command -v python3 >/dev/null 2>&1; then \
		python3 -c 'import json,sys; d=json.load(open(sys.argv[1])); \
sc=d["scale44k"]; chk=sc["check"]; \
assert sc["rep_identical"], "CSR and boxed RIBs diverged"; \
assert chk["verdicts_identical"], "incremental and full verdicts diverged"; \
assert sc["dests_per_sec"] > 0 and sc["peak_words"] > 0, "missing measurements"; \
assert "jobs" in sc and "jobs" in d["precompute"]["parallel"], "jobs not recorded"; \
assert d["machine"]["cores"] > 1 or "speedup" not in d["precompute"], \
	"speedup quoted on a 1-core box"; \
ck=d["check44k"]; \
assert ck["parallel_identical"], "parallel and serial property reports diverged"; \
assert ck["clean"], "property suite found violations on the healthy topology"; \
assert all(ck[p]["states_per_sec"] > 0 for p in ("loops","delivery","stretch","resilience")), \
	"missing per-property throughput"; \
assert ck["resilience_speedup"] > 0 and ck["peak_words"] > 0, \
	"missing resilience sweep / peak memory measurements"' \
			_build/BENCH_routing-smoke.json && \
		echo "bench-smoke: scale44k + check44k identities and measurements hold"; \
	else \
		echo "bench-smoke: python3 not installed, skipping JSON parse check"; \
	fi

# Tier-1 gate: everything compiles, the whole suite passes, formatting is
# clean (when ocamlformat is available), the metrics surface works, the
# sources pass the determinism lint, the static verifier gate holds and
# the sim bench suite runs end-to-end at smoke sizes.
ci: build test fmt-check metrics-smoke lint static-check bench-smoke

bench:
	dune exec bench/main.exe

clean:
	dune clean
