.PHONY: all build test fmt-check metrics-smoke lint static-check ci bench clean

all: build

build:
	dune build @all

test:
	dune runtest

# Formatting gate.  Skipped (with a notice) when ocamlformat is not
# installed, so ci still works in minimal containers.
fmt-check:
	@if command -v ocamlformat >/dev/null 2>&1; then \
		dune build @fmt; \
	else \
		echo "fmt-check: ocamlformat not installed, skipping"; \
	fi

# Smoke-test the observability surface: run a small validation scenario
# with --metrics/--trace and check the outputs are well-formed.  The
# validate subcommand itself exits non-zero on any invariant violation.
metrics-smoke:
	dune exec bin/mifo_sim.exe -- validate --ases 80 --flows 8 \
		--metrics _build/metrics-smoke.json --trace _build/trace-smoke.jsonl
	@if command -v python3 >/dev/null 2>&1; then \
		python3 -m json.tool _build/metrics-smoke.json >/dev/null && \
		python3 -c 'import json,sys; [json.loads(l) for l in open(sys.argv[1]) if l.strip()]' \
			_build/trace-smoke.jsonl && \
		echo "metrics-smoke: JSON outputs parse"; \
	else \
		echo "metrics-smoke: python3 not installed, skipping JSON parse check"; \
	fi

# Determinism / domain-safety lint over the sources (bench/ is exempt).
lint:
	dune exec bin/mifo_lint.exe

# Static data-plane verifier gate: the default configuration must verify
# clean, and the Tag-Check ablation must fail WITH a concrete loop
# counterexample (exit 1 + a forwarding-loop violation in the JSON).
static-check:
	dune exec bin/mifo_sim.exe -- check --ases 150 --seed 42 >/dev/null
	@out=$$(dune exec bin/mifo_sim.exe -- check --gadget --no-tag-check 2>/dev/null); \
	if [ $$? -eq 0 ]; then \
		echo "static-check: ablated gadget unexpectedly verified clean"; exit 1; \
	fi; \
	case "$$out" in \
	*forwarding-loop*) echo "static-check: ablation fails with a machine-checked loop";; \
	*) echo "static-check: ablation failed without a loop counterexample"; exit 1;; \
	esac

# Tier-1 gate: everything compiles, the whole suite passes, formatting is
# clean (when ocamlformat is available), the metrics surface works, the
# sources pass the determinism lint and the static verifier gate holds.
ci: build test fmt-check metrics-smoke lint static-check

bench:
	dune exec bench/main.exe

clean:
	dune clean
