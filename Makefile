.PHONY: all build test fmt-check metrics-smoke ci bench clean

all: build

build:
	dune build @all

test:
	dune runtest

# Formatting gate.  Skipped (with a notice) when ocamlformat is not
# installed, so ci still works in minimal containers.
fmt-check:
	@if command -v ocamlformat >/dev/null 2>&1; then \
		dune build @fmt; \
	else \
		echo "fmt-check: ocamlformat not installed, skipping"; \
	fi

# Smoke-test the observability surface: run a small validation scenario
# with --metrics/--trace and check the outputs are well-formed.  The
# validate subcommand itself exits non-zero on any invariant violation.
metrics-smoke:
	dune exec bin/mifo_sim.exe -- validate --ases 80 --flows 8 \
		--metrics _build/metrics-smoke.json --trace _build/trace-smoke.jsonl
	@if command -v python3 >/dev/null 2>&1; then \
		python3 -m json.tool _build/metrics-smoke.json >/dev/null && \
		python3 -c 'import json,sys; [json.loads(l) for l in open(sys.argv[1]) if l.strip()]' \
			_build/trace-smoke.jsonl && \
		echo "metrics-smoke: JSON outputs parse"; \
	else \
		echo "metrics-smoke: python3 not installed, skipping JSON parse check"; \
	fi

# Tier-1 gate: everything compiles, the whole suite passes, formatting is
# clean (when ocamlformat is available) and the metrics surface works.
ci: build test fmt-check metrics-smoke

bench:
	dune exec bench/main.exe

clean:
	dune clean
