examples/bgp_convergence.ml: List Mifo_bgp Mifo_topology Printf String
