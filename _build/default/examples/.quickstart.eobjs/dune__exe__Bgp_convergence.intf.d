examples/bgp_convergence.mli:
