examples/content_provider.ml: Array Format Mifo_bgp Mifo_core Mifo_netsim Mifo_topology Mifo_traffic Mifo_util
