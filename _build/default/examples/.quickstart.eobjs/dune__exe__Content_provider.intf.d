examples/content_provider.mli:
