examples/loop_demo.ml: List Mifo_bgp Mifo_core Mifo_topology Printf String
