examples/loop_demo.mli:
