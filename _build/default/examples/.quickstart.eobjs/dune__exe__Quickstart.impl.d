examples/quickstart.ml: Format List Mifo_bgp Mifo_core Mifo_topology String
