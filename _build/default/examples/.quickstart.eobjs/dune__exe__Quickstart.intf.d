examples/quickstart.mli:
