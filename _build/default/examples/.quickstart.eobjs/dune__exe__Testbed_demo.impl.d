examples/testbed_demo.ml: Array Format Mifo_netsim Mifo_testbed Mifo_util String
