examples/testbed_demo.mli:
