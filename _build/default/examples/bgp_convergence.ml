(* The control-plane / data-plane timescale gap, made concrete.

   The paper's introduction argues that interdomain traffic shifts much
   faster than BGP routes can converge.  This example runs the
   event-driven BGP protocol simulator on a small Internet: it announces
   one prefix, lets BGP converge, then cuts a link on a live default path
   and watches the UPDATE churn and the transient black-holing that
   follow - the window in which MIFO would already be forwarding via an
   alternative from the local RIB.

   Run with: dune exec examples/bgp_convergence.exe *)

module Generator = Mifo_topology.Generator
module As_graph = Mifo_topology.As_graph
module Routing = Mifo_bgp.Routing
module Bgp_proto = Mifo_bgp.Bgp_proto

let () =
  let params =
    {
      Generator.default_params with
      Generator.ases = 500;
      tier1 = 6;
      content_providers = 4;
      content_peer_span = (4, 12);
    }
  in
  let topo = Generator.generate ~params ~seed:3 () in
  let g = topo.Generator.graph in
  let origin = 0 in
  let proto = Bgp_proto.create g ~origin in
  let initial = Bgp_proto.run proto in
  Printf.printf "prefix of AS %d converged after %d UPDATE messages (%d ASes)\n\n"
    origin initial (As_graph.n g);

  (* cut the first link of a busy default path *)
  let rt = Routing.compute g origin in
  let path = Routing.default_path rt 400 in
  let u, v = (List.nth path 1, List.nth path 2) in
  Printf.printf "default path of AS 400: %s\n"
    (String.concat " -> " (List.map string_of_int path));
  Printf.printf "cutting the %d -- %d link...\n\n" u v;
  Bgp_proto.fail_link proto u v;

  let steps = ref 0 and peak = ref (Bgp_proto.unreachable_count proto) in
  let checkpoints = [ 1; 10; 100; 1_000; 10_000 ] in
  while not (Bgp_proto.converged proto) do
    ignore (Bgp_proto.step proto);
    incr steps;
    peak := max !peak (Bgp_proto.unreachable_count proto);
    if List.mem !steps checkpoints then
      Printf.printf "  after %6d messages: %4d ASes still without a route\n" !steps
        (Bgp_proto.unreachable_count proto)
  done;
  Printf.printf "\nre-converged after %d messages; peak black-holed ASes: %d\n" !steps !peak;
  (match Bgp_proto.selected_path proto 400 with
   | Some p ->
     Printf.printf "AS 400's new path: %s\n" (String.concat " -> " (List.map string_of_int p))
   | None -> Printf.printf "AS 400 is permanently disconnected\n");
  Printf.printf
    "\nMIFO's view of the same event: the failed egress looks fully congested,\n\
     so the border router deflects onto a RIB alternative at the very next\n\
     forwarding decision - zero messages, zero black-holing (see the\n\
     failure-recovery ablation: `dune exec bench/main.exe -- ablations`).\n"
