(* Content-provider scenario: the workload from the paper's introduction.
   Popular content networks (the Google / Facebook role) push heavy,
   Zipf-skewed traffic toward stub consumers; default BGP paths congest
   at the providers' egresses while their many peering links sit idle.
   MIFO spreads the load onto those links at the data plane.

   Run with: dune exec examples/content_provider.exe *)

module Generator = Mifo_topology.Generator
module Flowsim = Mifo_netsim.Flowsim
module Deployment = Mifo_core.Deployment
module Traffic = Mifo_traffic.Traffic
module Dist = Mifo_util.Dist
module Table = Mifo_util.Table

let () =
  let topo = Generator.generate ~seed:5 () in
  let g = topo.Generator.graph in
  let n = Mifo_topology.As_graph.n g in
  let table = Mifo_bgp.Routing_table.create g in
  let rng = Mifo_util.Prng.create ~seed:17 () in
  let providers = Traffic.content_provider_ranking g in
  let flows = Traffic.power_law rng g ~alpha:1.0 ~providers ~count:2_000 ~rate:2_000. () in
  Format.printf
    "power-law traffic: %d flows of 10 MB, alpha = 1.0, top producer is AS %d@."
    (Array.length flows) providers.(0);
  let summarize label proto =
    let r = Flowsim.run table proto flows in
    let cdf = Dist.cdf_of_samples (Array.map (fun x -> x /. 1e6) (Flowsim.throughputs r)) in
    [
      label;
      Table.fmt_percent (Dist.fraction_at_least cdf 500.);
      Table.fmt_percent (Dist.fraction_at_least cdf 250.);
      Table.fmt_float (Dist.percentile cdf 50.);
      Table.fmt_percent r.Flowsim.offload_fraction;
      Table.fmt_float r.Flowsim.sim_end;
    ]
  in
  let half = Deployment.fraction ~n ~ratio:0.5 ~seed:3 in
  let rows =
    [
      summarize "BGP (single path)" Flowsim.Bgp;
      summarize "MIRO, 50% deployed" (Flowsim.Miro { deployment = half; cap = 5 });
      summarize "MIFO, 50% deployed" (Flowsim.Mifo half);
      summarize "MIFO, 100% deployed" (Flowsim.Mifo (Deployment.full ~n));
    ]
  in
  print_string
    (Table.render
       ~header:
         [ "protocol"; ">=500 Mbps"; ">=250 Mbps"; "median Mbps"; "offloaded"; "drain time (s)" ]
       ~rows)
