(* The prototype testbed of the paper's Section V (Fig. 11), scaled down
   to run in seconds: 6 ASes, 11 routers, 4 hosts, two groups of
   back-to-back TCP transfers whose default paths share the AS3->AS4
   bottleneck.  MIFO's border router Rd tunnels part of the traffic to
   its iBGP peer Ra, which exits through AS6.

   Run with: dune exec examples/testbed_demo.exe
   (use bench/main.exe fig12 or bin/mifo_sim.exe fig12 for the full-size run) *)

module Testbed = Mifo_testbed.Testbed
module Table = Mifo_util.Table

let () =
  let config =
    { Testbed.default_config with Testbed.flows_per_source = 8; flow_bytes = 20_000_000 }
  in
  Format.printf "running BGP baseline...@.";
  let bgp = Testbed.run ~config Testbed.Bgp_routing in
  Format.printf "running MIFO...@.";
  let mifo = Testbed.run ~config Testbed.Mifo_routing in
  let row label (r : Testbed.result) =
    [
      label;
      Table.fmt_float (r.Testbed.mean_aggregate /. 1e9) ^ " Gbps";
      Table.fmt_float r.Testbed.makespan ^ " s";
      string_of_int (Array.length r.Testbed.fct);
      Table.fmt_count r.Testbed.counters.Mifo_netsim.Packetsim.encapsulated;
    ]
  in
  print_string
    (Table.render
       ~header:[ "routing"; "aggregate"; "makespan"; "flows done"; "IP-in-IP packets" ]
       ~rows:[ row "BGP" bgp; row "MIFO" mifo ]);
  Format.printf "aggregate throughput improvement: %+.0f%%@."
    (100. *. ((mifo.Testbed.mean_aggregate /. bgp.Testbed.mean_aggregate) -. 1.));
  Format.printf "@.MIFO aggregate throughput over time (Fig. 12a):@.";
  Array.iter
    (fun (t, v) ->
      if t <= mifo.Testbed.makespan then
        Format.printf "  t=%4.1fs  %5.2f Gbps  %s@." t (v /. 1e9)
          (String.make (int_of_float (v /. 1e9 *. 24.)) '#'))
    mifo.Testbed.aggregate_series
