lib/bgp/bgp_proto.ml: Array Hashtbl List Mifo_topology Queue
