lib/bgp/bgp_proto.mli: Mifo_topology
