lib/bgp/lpm_trie.ml: Int32 List Prefix
