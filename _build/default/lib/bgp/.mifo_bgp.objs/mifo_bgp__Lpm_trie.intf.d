lib/bgp/lpm_trie.mli: Prefix
