lib/bgp/path_count.ml: Array List Mifo_topology Routing
