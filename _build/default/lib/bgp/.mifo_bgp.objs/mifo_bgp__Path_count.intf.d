lib/bgp/path_count.mli: Mifo_topology Routing
