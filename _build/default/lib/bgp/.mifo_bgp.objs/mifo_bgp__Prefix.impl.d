lib/bgp/prefix.ml: Format Int32 Printf Stdlib String
