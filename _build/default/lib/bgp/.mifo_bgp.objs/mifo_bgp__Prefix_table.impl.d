lib/bgp/prefix_table.ml: Array Hashtbl Int32 List Lpm_trie Mifo_util Prefix
