lib/bgp/prefix_table.mli: Lpm_trie Mifo_util Prefix
