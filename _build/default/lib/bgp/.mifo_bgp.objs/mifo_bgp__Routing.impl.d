lib/bgp/routing.ml: Array List Mifo_topology Queue Stack
