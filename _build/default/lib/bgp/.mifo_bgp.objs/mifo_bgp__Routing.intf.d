lib/bgp/routing.mli: Mifo_topology
