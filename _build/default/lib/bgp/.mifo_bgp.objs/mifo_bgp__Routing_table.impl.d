lib/bgp/routing_table.ml: Hashtbl Mifo_topology Queue Routing
