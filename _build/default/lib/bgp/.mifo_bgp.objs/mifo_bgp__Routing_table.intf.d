lib/bgp/routing_table.mli: Mifo_topology Routing
