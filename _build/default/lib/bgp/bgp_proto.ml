module As_graph = Mifo_topology.As_graph
module Relationship = Mifo_topology.Relationship

(* An UPDATE: [path = Some p] announces the AS path [p] (receiver not yet
   prepended), [None] withdraws the sender's previous announcement. *)
type update = { from : int; target : int; path : int list option }

type node = {
  id : int;
  rib_in : (int, int list) Hashtbl.t;  (* neighbor -> announced path *)
  mutable selected : (int * int list) option;  (* (via, full path incl. self) *)
  mutable exported : (int, int list option) Hashtbl.t;
      (* last thing we told each neighbor, to suppress duplicate UPDATEs *)
  mutable sent : int;
}

type t = {
  graph : As_graph.t;
  origin : int;
  nodes : node array;
  queue : update Queue.t;
  mutable messages : int;
  down : (int * int, unit) Hashtbl.t;  (* failed links, unordered pairs *)
}

let origin t = t.origin
let converged t = Queue.is_empty t.queue
let messages_sent t = t.messages
let announcements_by t v = t.nodes.(v).sent

let selected_path t v =
  if v = t.origin then None
  else match t.nodes.(v).selected with Some (_, p) -> Some p | None -> None

let selected_next_hop t v =
  if v = t.origin then None
  else match t.nodes.(v).selected with Some (via, _) -> Some via | None -> None

let link_key u v = if u < v then (u, v) else (v, u)
let link_up t u v = not (Hashtbl.mem t.down (link_key u v))

let live_neighbors t v =
  Array.to_list (As_graph.neighbors t.graph v) |> List.filter (link_up t v)

let adj_rib_in t v =
  Hashtbl.fold (fun nb p acc -> (nb, p) :: acc) t.nodes.(v).rib_in []
  |> List.sort compare

let send t ~from ~target path =
  let node = t.nodes.(from) in
  let previous = Hashtbl.find_opt node.exported target in
  (* suppress no-op UPDATEs: same announcement, or withdrawing a route the
     neighbor never had *)
  let is_noop =
    match (previous, path) with
    | Some prev, p when prev = p -> true
    | None, None -> true
    | _ -> false
  in
  if not is_noop then begin
    Hashtbl.replace node.exported target path;
    node.sent <- node.sent + 1;
    t.messages <- t.messages + 1;
    Queue.add { from; target; path } t.queue
  end

(* The decision process at [v]: best (class, length, neighbor id) among
   loop-free adj-RIB-in entries. *)
let decide t v =
  let node = t.nodes.(v) in
  let best = ref None in
  Hashtbl.iter
    (fun nb path ->
      if link_up t v nb && not (List.mem v path) then begin
        let rel = As_graph.rel_exn t.graph v nb in
        let key = (Relationship.preference_rank rel, List.length path, nb) in
        match !best with
        | Some (k, _, _) when k <= key -> ()
        | _ -> best := Some (key, nb, path)
      end)
    node.rib_in;
  match !best with Some (_, nb, path) -> Some (nb, v :: path) | None -> None

(* Re-run decision + export at [v]; sends UPDATEs for every neighbor whose
   view changes. *)
let refresh t v =
  let node = t.nodes.(v) in
  let selection = if v = t.origin then Some (v, [ v ]) else decide t v in
  node.selected <- (match selection with Some (via, p) when via <> v -> Some (via, p) | _ -> None);
  let announced_path, learned_rel =
    match selection with
    | None -> (None, None)
    | Some (via, path) ->
      if v = t.origin then (Some path, Some Relationship.Customer)
        (* own prefix: exported like a customer route, i.e. to everyone *)
      else (Some path, Some (As_graph.rel_exn t.graph v via))
  in
  List.iter
    (fun nb ->
      let nb_rel = As_graph.rel_exn t.graph v nb in
      let export =
        match (announced_path, learned_rel) with
        | Some path, Some learned
          when Relationship.exports_to ~route_learned_from:learned ~neighbor:nb_rel ->
          (* never announce back the path we'd immediately loop-reject,
             matching common sender-side loop avoidance *)
          if List.mem nb path then None else Some path
        | _ -> None
      in
      send t ~from:v ~target:nb export)
    (live_neighbors t v)

let create graph ~origin =
  let n = As_graph.n graph in
  if origin < 0 || origin >= n then invalid_arg "Bgp_proto.create: origin out of range";
  let nodes =
    Array.init n (fun id ->
        {
          id;
          rib_in = Hashtbl.create 4;
          selected = None;
          exported = Hashtbl.create 4;
          sent = 0;
        })
  in
  let t =
    {
      graph;
      origin;
      nodes;
      queue = Queue.create ();
      messages = 0;
      down = Hashtbl.create 8;
    }
  in
  refresh t origin;
  t

let step t =
  match Queue.take_opt t.queue with
  | None -> false
  | Some { from; target; path } when not (link_up t from target) ->
    ignore path;
    true
  | Some { from; target; path } ->
    let node = t.nodes.(target) in
    (match path with
     | Some p -> Hashtbl.replace node.rib_in from p
     | None -> Hashtbl.remove node.rib_in from);
    let before = node.selected in
    let selection = if target = t.origin then None else decide t target in
    let after =
      match selection with Some (via, p) -> Some (via, p) | None -> None
    in
    if before <> after || target = t.origin then begin
      if target <> t.origin then refresh t target
    end;
    true

let fail_link t u v =
  if As_graph.rel t.graph u v = None then
    invalid_arg "Bgp_proto.fail_link: not an adjacency";
  if link_up t u v then begin
    Hashtbl.replace t.down (link_key u v) ();
    (* the BGP sessions drop: both ends lose the adj-RIB-in entry and any
       suppressed-export memory, then rerun decision + export *)
    let sever a b =
      Hashtbl.remove t.nodes.(a).rib_in b;
      Hashtbl.remove t.nodes.(a).exported b
    in
    sever u v;
    sever v u;
    if u <> t.origin then refresh t u;
    if v <> t.origin then refresh t v;
    (* the origin never re-decides, but must still re-export if an
       endpoint was its neighbor *)
    if u = t.origin || v = t.origin then refresh t t.origin
  end

let restore_link t u v =
  if Hashtbl.mem t.down (link_key u v) then begin
    Hashtbl.remove t.down (link_key u v);
    refresh t u;
    refresh t v;
    if u = t.origin || v = t.origin then refresh t t.origin
  end

let unreachable_count t =
  let count = ref 0 in
  Array.iteri
    (fun v node -> if v <> t.origin && node.selected = None then incr count)
    t.nodes;
  !count

let run ?(max_messages = 10_000_000) t =
  let handled = ref 0 in
  while (not (converged t)) && !handled < max_messages do
    ignore (step t);
    incr handled
  done;
  if not (converged t) then failwith "Bgp_proto.run: convergence bound exceeded";
  !handled
