(** An event-driven BGP path-vector protocol simulator.

    {!Routing} computes the stable Gao–Rexford solution analytically —
    that is what the large-scale experiments use.  This module gets to
    the same place the way real routers do: UPDATE messages carrying full
    AS paths, per-neighbor adj-RIB-in state, the BGP decision process,
    loop detection by AS-path inspection, and export filtering.  It
    exists for three reasons:

    + {b cross-validation} — after convergence the selected routes must
      agree with {!Routing.compute} (the test suite checks every AS);
    + {b overhead accounting} — MIFO's "zero overhead" claim (Section
      II-B) is relative to control-plane multi-path schemes that send
      extra announcements; this simulator counts messages, so the MIRO
      comparison in the ablation bench can charge them;
    + {b convergence experiments} — the paper motivates MIFO with the
      mismatch between traffic dynamics and slow route convergence;
      [run] reports how many message events a prefix takes to settle.

    One instance simulates one originated prefix.  Processing is
    deterministic: messages are handled in FIFO order, so runs are
    reproducible. *)

type t

val create : Mifo_topology.As_graph.t -> origin:int -> t
(** The origin announces its prefix to all neighbors; nothing is
    processed yet. *)

val origin : t -> int

val step : t -> bool
(** Process one queued UPDATE; [false] when the queue is empty
    (converged). *)

val run : ?max_messages:int -> t -> int
(** Process until convergence; returns the number of messages handled.
    @raise Failure if [max_messages] (default [10_000_000]) is hit —
    Gao–Rexford topologies always converge, so hitting the bound means
    the topology violates the hierarchy assumptions. *)

val converged : t -> bool

val selected_path : t -> int -> int list option
(** The AS path selected at a node, e.g. [[v; ...; origin]]; [None] if
    the node has no route (or is the origin). *)

val selected_next_hop : t -> int -> int option

val adj_rib_in : t -> int -> (int * int list) list
(** Per neighbor, the path it most recently announced to us (withdrawn
    entries omitted), sorted by neighbor id. *)

val messages_sent : t -> int
(** Total UPDATEs enqueued so far (announcements and withdrawals). *)

val announcements_by : t -> int -> int
(** UPDATEs a given AS has sent — per-node advertisement load. *)

(** {1 Topology dynamics}

    The paper's motivation is the mismatch between fast traffic dynamics
    and slow route convergence; these entry points let experiments
    measure that slowness: fail a link, then count the UPDATEs (and the
    transiently route-less ASes) it takes BGP to re-converge — while
    MIFO's data-plane deflection reacts within one forwarding decision. *)

val fail_link : t -> int -> int -> unit
(** Drop the BGP session over an adjacency: both ends withdraw state and
    re-run decision + export; in-flight UPDATEs on the link are lost.
    Idempotent.  @raise Invalid_argument if not an adjacency. *)

val restore_link : t -> int -> int -> unit
(** Bring a failed link back; both ends re-export. *)

val unreachable_count : t -> int
(** ASes (origin excluded) currently holding no route — transient
    black-holing during convergence. *)
