(* A binary trie over address bits, depth <= 32, with one node per
   distinct prefix on the insertion paths.  No explicit path compression
   is needed for correctness; chains between branching points are kept
   short in practice because interdomain tables cluster at a few
   lengths.  Operations are persistent (pure). *)

type 'a t =
  | Leaf
  | Node of { value : 'a option; zero : 'a t; one : 'a t }

let empty = Leaf
let is_empty t = t = Leaf

let node value zero one =
  match (value, zero, one) with None, Leaf, Leaf -> Leaf | _ -> Node { value; zero; one }

(* bit [i] of an address, 0 = most significant *)
let bit addr i = Int32.logand (Int32.shift_right_logical addr (31 - i)) 1l = 1l

let rec cardinal = function
  | Leaf -> 0
  | Node { value; zero; one } ->
    (match value with Some _ -> 1 | None -> 0) + cardinal zero + cardinal one

let add prefix v t =
  let { Prefix.network; length } = prefix in
  let rec go depth t =
    match t with
    | Leaf ->
      if depth = length then Node { value = Some v; zero = Leaf; one = Leaf }
      else if bit network depth then Node { value = None; zero = Leaf; one = go (depth + 1) Leaf }
      else Node { value = None; zero = go (depth + 1) Leaf; one = Leaf }
    | Node { value; zero; one } ->
      if depth = length then Node { value = Some v; zero; one }
      else if bit network depth then Node { value; zero; one = go (depth + 1) one }
      else Node { value; zero = go (depth + 1) zero; one }
  in
  go 0 t

let remove prefix t =
  let { Prefix.network; length } = prefix in
  let rec go depth t =
    match t with
    | Leaf -> Leaf
    | Node { value; zero; one } ->
      if depth = length then node None zero one
      else if bit network depth then node value zero (go (depth + 1) one)
      else node value (go (depth + 1) zero) one
  in
  go 0 t

let find_exact prefix t =
  let { Prefix.network; length } = prefix in
  let rec go depth t =
    match t with
    | Leaf -> None
    | Node { value; zero; one } ->
      if depth = length then value
      else if bit network depth then go (depth + 1) one
      else go (depth + 1) zero
  in
  go 0 t

let lookup addr t =
  let rec go depth t best =
    match t with
    | Leaf -> best
    | Node { value; zero; one } ->
      let best =
        match value with
        | Some v -> Some (Prefix.make addr depth, v)
        | None -> best
      in
      if depth = 32 then best
      else if bit addr depth then go (depth + 1) one best
      else go (depth + 1) zero best
  in
  go 0 t None

let fold f t init =
  let rec go depth network t acc =
    match t with
    | Leaf -> acc
    | Node { value; zero; one } ->
      let acc =
        match value with
        | Some v -> f (Prefix.make network depth) v acc
        | None -> acc
      in
      let acc = go (depth + 1) network zero acc in
      if depth = 32 then acc
      else begin
        let network_one =
          Int32.logor network (Int32.shift_left 1l (31 - depth))
        in
        go (depth + 1) network_one one acc
      end
  in
  go 0 0l t init

let of_list bindings = List.fold_left (fun t (p, v) -> add p v t) empty bindings
let to_list t = List.rev (fold (fun p v acc -> (p, v) :: acc) t [])
