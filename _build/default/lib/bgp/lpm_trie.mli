(** Longest-prefix-match over IPv4 prefixes via a path-compressed binary
    trie (Patricia tree).

    {!Mifo_core.Fib} uses a per-length hash scheme that is simple and
    fast for the handful of prefix lengths interdomain tables contain;
    this module is the textbook alternative with O(32) worst-case lookup
    regardless of how many distinct lengths appear.  The benchmark
    harness compares the two; the property tests check they agree on
    random tables. *)

type 'a t

val empty : 'a t
val is_empty : 'a t -> bool
val cardinal : 'a t -> int

val add : Prefix.t -> 'a -> 'a t -> 'a t
(** Replaces any existing binding for the same prefix.  Persistent. *)

val remove : Prefix.t -> 'a t -> 'a t
val find_exact : Prefix.t -> 'a t -> 'a option

val lookup : Prefix.addr -> 'a t -> (Prefix.t * 'a) option
(** Longest matching prefix and its binding. *)

val fold : (Prefix.t -> 'a -> 'b -> 'b) -> 'a t -> 'b -> 'b
(** In ascending (network, length) order. *)

val of_list : (Prefix.t * 'a) list -> 'a t
val to_list : 'a t -> (Prefix.t * 'a) list
