type addr = int32

let addr_of_string s =
  match String.split_on_char '.' s with
  | [ a; b; c; d ] ->
    let byte field =
      match int_of_string_opt field with
      | Some v when v >= 0 && v <= 255 -> Int32.of_int v
      | _ -> invalid_arg ("Prefix.addr_of_string: " ^ s)
    in
    let ( <| ) x y = Int32.logor (Int32.shift_left x 8) y in
    byte a <| byte b <| byte c <| byte d
  | _ -> invalid_arg ("Prefix.addr_of_string: " ^ s)

let addr_to_string a =
  let byte shift = Int32.to_int (Int32.logand (Int32.shift_right_logical a shift) 0xFFl) in
  Printf.sprintf "%d.%d.%d.%d" (byte 24) (byte 16) (byte 8) (byte 0)

type t = { network : addr; length : int }

let mask length =
  if length = 0 then 0l else Int32.shift_left (-1l) (32 - length)

let make network length =
  if length < 0 || length > 32 then invalid_arg "Prefix.make: bad length";
  { network = Int32.logand network (mask length); length }

let of_string s =
  match String.split_on_char '/' s with
  | [ addr; len ] ->
    (match int_of_string_opt len with
     | Some l -> make (addr_of_string addr) l
     | None -> invalid_arg ("Prefix.of_string: " ^ s))
  | _ -> invalid_arg ("Prefix.of_string: " ^ s)

let to_string t = Printf.sprintf "%s/%d" (addr_to_string t.network) t.length
let contains t a = Int32.logand a (mask t.length) = t.network
let compare a b = Stdlib.compare (a.network, a.length) (b.network, b.length)
let equal a b = compare a b = 0

(* 10.x.y.0/24 with x.y encoding the AS id: supports 65536 ASes, which is
   more than the paper-scale topology needs. *)
let of_as asn =
  if asn < 0 || asn > 0xFFFF then invalid_arg "Prefix.of_as: AS id out of range";
  let net = Int32.logor 0x0A000000l (Int32.of_int (asn lsl 8)) in
  make net 24

let host_of_as asn i =
  if i < 1 || i > 254 then invalid_arg "Prefix.host_of_as: host index out of range";
  Int32.logor (of_as asn).network (Int32.of_int i)

let pp ppf t = Format.pp_print_string ppf (to_string t)
