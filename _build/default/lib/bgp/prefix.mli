(** IPv4 addresses and prefixes.

    The AS-level simulations identify destinations by AS id, but the
    forwarding engine and the testbed operate on packets with real IP
    headers (including the IP-in-IP outer header), so they need prefixes
    and longest-prefix matching. *)

type addr = int32

val addr_of_string : string -> addr
(** Dotted quad.  @raise Invalid_argument on malformed input. *)

val addr_to_string : addr -> string

type t = { network : addr; length : int }
(** Invariant: host bits of [network] are zero and
    [0 <= length <= 32]; enforced by the constructors. *)

val make : addr -> int -> t
(** Masks host bits. *)

val of_string : string -> t
(** ["10.1.2.0/24"]. *)

val to_string : t -> string
val contains : t -> addr -> bool
val compare : t -> t -> int
val equal : t -> t -> bool

val of_as : int -> t
(** A deterministic /24 for an AS id: the convention used throughout the
    simulators to give every AS an announced prefix. *)

val host_of_as : int -> int -> addr
(** [host_of_as asn i] is host [i] (1-based within the /24) inside
    [of_as asn]. *)

val pp : Format.formatter -> t -> unit
