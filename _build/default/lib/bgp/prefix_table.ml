module Prng = Mifo_util.Prng

(* Approximate length histogram of the 2014 global BGP table (potaroo):
   /24 dominates, /22 and /23 carry real mass, the short legacy prefixes
   are rare but present. *)
let length_distribution =
  [
    (8, 0.001); (10, 0.002); (12, 0.004); (13, 0.005); (14, 0.010);
    (15, 0.015); (16, 0.025); (17, 0.015); (18, 0.025); (19, 0.045);
    (20, 0.070); (21, 0.075); (22, 0.100); (23, 0.058); (24, 0.550);
  ]

let () =
  let total = List.fold_left (fun acc (_, f) -> acc +. f) 0. length_distribution in
  assert (abs_float (total -. 1.0) < 1e-9)

let generate rng ~size =
  if size <= 0 then invalid_arg "Prefix_table.generate: size must be positive";
  let cumulative =
    let acc = ref 0. in
    List.map
      (fun (len, f) ->
        acc := !acc +. f;
        (len, !acc))
      length_distribution
  in
  let sample_length () =
    let u = Prng.float rng 1.0 in
    let rec pick = function
      | [ (len, _) ] -> len
      | (len, c) :: rest -> if u <= c then len else pick rest
      | [] -> assert false
    in
    pick cumulative
  in
  let seen = Hashtbl.create (2 * size) in
  let out = Array.make size (Prefix.make 0l 0, 0) in
  let filled = ref 0 in
  while !filled < size do
    let len = sample_length () in
    let addr = Int32.of_int (Prng.int rng 0x3FFFFFFF) in
    let addr = Int32.logor (Int32.shift_left addr 2) 0l in
    let prefix = Prefix.make addr len in
    let key = (prefix.Prefix.network, len) in
    if not (Hashtbl.mem seen key) then begin
      Hashtbl.add seen key ();
      out.(!filled) <- (prefix, Prng.int rng 64);
      incr filled
    end
  done;
  out

let load_trie entries =
  Array.fold_left
    (fun t (prefix, next_hop) -> Lpm_trie.add prefix next_hop t)
    Lpm_trie.empty entries
