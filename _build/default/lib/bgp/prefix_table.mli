(** Synthetic-but-realistic BGP prefix tables.

    The paper notes the global table held ~500K prefixes in 2014; the FIB
    benchmarks should be run against tables of that shape, not a toy.
    This module samples prefixes with the length mix of the real global
    table (dominated by /24s, with mass at /22–/19 and the legacy /16s
    and /8s) over the 10.0.0.0/8-style space the simulators use. *)

val length_distribution : (int * float) list
(** (prefix length, fraction) — sums to 1.  Approximates the 2014 global
    table: ~55% /24, with the remainder spread over /8–/23. *)

val generate : Mifo_util.Prng.t -> size:int -> (Prefix.t * int) array
(** [generate rng ~size] draws [size] distinct prefixes with the length
    mix of [length_distribution]; the [int] payload is a synthetic
    next-hop id.  Deterministic in the PRNG state. *)

val load_trie : (Prefix.t * int) array -> int Lpm_trie.t
(** (The production FIB lives above this library; callers load it with
    [Mifo_core.Fib.insert] directly.) *)
