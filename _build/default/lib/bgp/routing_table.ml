type t = {
  graph : Mifo_topology.As_graph.t;
  cache : (int, Routing.t) Hashtbl.t;
  order : int Queue.t;  (* insertion order, for FIFO eviction *)
  max_cached : int;
}

let create ?(max_cached = max_int) graph =
  if max_cached < 1 then invalid_arg "Routing_table.create: max_cached < 1";
  { graph; cache = Hashtbl.create 256; order = Queue.create (); max_cached }

let graph t = t.graph

let get t d =
  match Hashtbl.find_opt t.cache d with
  | Some r -> r
  | None ->
    let r = Routing.compute t.graph d in
    if Hashtbl.length t.cache >= t.max_cached then begin
      match Queue.take_opt t.order with
      | Some victim -> Hashtbl.remove t.cache victim
      | None -> ()
    end;
    Hashtbl.add t.cache d r;
    Queue.add d t.order;
    r

let precompute_all t =
  for d = 0 to Mifo_topology.As_graph.n t.graph - 1 do
    ignore (get t d)
  done

let cached_count t = Hashtbl.length t.cache
