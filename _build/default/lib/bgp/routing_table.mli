(** Cache of per-destination routing states.

    Experiments query routes toward many destinations; this table
    memoizes {!Routing.compute} per destination.  [precompute_all] builds
    every destination eagerly (fine for the default 2,000-AS topology);
    larger graphs can rely on lazy filling with an optional bound on the
    number of cached destinations (oldest-first eviction). *)

type t

val create : ?max_cached:int -> Mifo_topology.As_graph.t -> t
(** [max_cached] defaults to unbounded. *)

val graph : t -> Mifo_topology.As_graph.t
val get : t -> int -> Routing.t
(** Routing state toward destination [d], computed on first use. *)

val precompute_all : t -> unit
val cached_count : t -> int
