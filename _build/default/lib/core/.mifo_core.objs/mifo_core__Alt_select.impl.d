lib/core/alt_select.ml: List Mifo_bgp Policy
