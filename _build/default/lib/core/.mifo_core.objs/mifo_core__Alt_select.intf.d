lib/core/alt_select.mli: Mifo_bgp Mifo_topology
