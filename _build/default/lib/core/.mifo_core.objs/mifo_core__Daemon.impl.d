lib/core/daemon.ml: Fib Stdlib
