lib/core/daemon.mli: Fib Mifo_bgp
