lib/core/deployment.ml: Array Bytes Float List Mifo_util Stdlib
