lib/core/deployment.mli:
