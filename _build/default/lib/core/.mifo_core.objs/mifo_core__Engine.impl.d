lib/core/engine.ml: Fib Mifo_topology Packet Policy Stdlib
