lib/core/engine.mli: Fib Mifo_topology Packet
