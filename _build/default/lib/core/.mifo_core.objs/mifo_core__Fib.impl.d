lib/core/fib.ml: Array Hashtbl Int64 Mifo_bgp
