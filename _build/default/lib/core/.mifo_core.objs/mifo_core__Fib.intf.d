lib/core/fib.mli: Mifo_bgp
