lib/core/loop_walk.ml: Hashtbl List Mifo_bgp Mifo_topology Policy
