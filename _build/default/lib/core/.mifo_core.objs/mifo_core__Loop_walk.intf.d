lib/core/loop_walk.mli: Mifo_bgp Mifo_topology
