lib/core/packet.ml: Format Mifo_bgp Printf
