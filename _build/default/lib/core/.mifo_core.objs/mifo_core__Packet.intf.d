lib/core/packet.mli: Format Mifo_bgp
