lib/core/policy.ml: Mifo_topology
