lib/core/policy.mli: Mifo_topology
