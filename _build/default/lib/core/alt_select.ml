module Routing = Mifo_bgp.Routing

let permitted rt ~src_as ~upstream =
  let allowed (e : Routing.rib_entry) =
    Policy.deflection_allowed ~upstream ~downstream:e.rel
  in
  List.filter allowed (Routing.alternatives rt src_as)

let best_by rt ~src_as ~upstream ~score =
  let candidates = permitted rt ~src_as ~upstream in
  let better (e : Routing.rib_entry) best =
    let s = score e in
    if s <= 0. then best
    else
      match best with
      | None -> Some (e, s)
      | Some (b, bs) ->
        if s > bs || (s = bs && e.via < b.via) then Some (e, s) else best
  in
  match List.fold_right better candidates None with
  | Some (e, _) -> Some e
  | None -> None

let best_alternative rt ~src_as ~upstream ~spare =
  best_by rt ~src_as ~upstream ~score:(fun e -> spare e.via)
