type config = {
  congest_threshold : float;
  clear_threshold : float;
  ramp_up : int;
  ramp_down : int;
}

let default_config =
  { congest_threshold = 0.9; clear_threshold = 0.6; ramp_up = 2; ramp_down = 1 }

let is_congested ?(config = default_config) util = util >= config.congest_threshold

let epoch ?(config = default_config) ~fib ~port_utilization ~choose_alt () =
  Fib.iter fib (fun prefix entry ->
      entry.Fib.alt_port <- choose_alt prefix entry;
      match entry.Fib.alt_port with
      | None -> entry.Fib.deflect_buckets <- 0
      | Some alt ->
        let util = port_utilization entry.Fib.out_port in
        let alt_util = port_utilization alt in
        (* Shift more flows onto the alternative only while it still has
           headroom; when both egresses run hot the split is where we want
           it (hold), and when the default drains we shift back. *)
        if util >= config.congest_threshold && alt_util < config.congest_threshold
        then
          entry.Fib.deflect_buckets <-
            Stdlib.min Fib.buckets (entry.Fib.deflect_buckets + config.ramp_up)
        else if util <= config.clear_threshold then
          entry.Fib.deflect_buckets <-
            Stdlib.max 0 (entry.Fib.deflect_buckets - config.ramp_down))
