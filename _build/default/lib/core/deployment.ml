type t = { mask : Bytes.t; mutable cached_count : int }

let make n = { mask = Bytes.make n '\000'; cached_count = 0 }

let full ~n =
  let t = make n in
  Bytes.fill t.mask 0 n '\001';
  t.cached_count <- n;
  t

let none ~n = make n

let fraction ~n ~ratio ~seed =
  let ratio = Stdlib.max 0. (Stdlib.min 1. ratio) in
  let k = int_of_float (Float.round (ratio *. float_of_int n)) in
  let rng = Mifo_util.Prng.create ~seed () in
  let picks = Mifo_util.Prng.sample_without_replacement rng k n in
  let t = make n in
  Array.iter (fun v -> Bytes.set t.mask v '\001') picks;
  t.cached_count <- k;
  t

let of_list ~n ids =
  let t = make n in
  List.iter
    (fun v ->
      if v < 0 || v >= n then invalid_arg "Deployment.of_list: id out of range";
      if Bytes.get t.mask v = '\000' then begin
        Bytes.set t.mask v '\001';
        t.cached_count <- t.cached_count + 1
      end)
    ids;
  t

let capable t v = Bytes.get t.mask v = '\001'
let count t = t.cached_count
let size t = Bytes.length t.mask
let ratio t = float_of_int t.cached_count /. float_of_int (Stdlib.max 1 (size t))
let to_fun t = capable t

let members t =
  let acc = ref [] in
  for v = size t - 1 downto 0 do
    if capable t v then acc := v :: !acc
  done;
  !acc
