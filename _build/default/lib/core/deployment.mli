(** Partial-deployment capability maps.

    MIFO is incrementally deployable: only some ASes run it, the rest
    forward as legacy BGP routers.  The evaluation sweeps the deployed
    fraction (10% … 100%), so capability is a first-class value passed to
    every simulation.  The same maps model MIRO deployment. *)

type t

val full : n:int -> t
val none : n:int -> t

val fraction : n:int -> ratio:float -> seed:int -> t
(** A uniformly random subset of [ratio * n] ASes, deterministic in
    [seed].  [ratio] outside \[0, 1\] is clamped. *)

val of_list : n:int -> int list -> t
(** @raise Invalid_argument on out-of-range ids. *)

val capable : t -> int -> bool
val count : t -> int
val size : t -> int
(** Total number of ASes, capable or not. *)

val ratio : t -> float
val to_fun : t -> int -> bool
val members : t -> int list
(** Ascending order. *)
