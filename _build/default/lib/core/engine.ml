type port_kind =
  | Ebgp of { neighbor_as : int; rel : Mifo_topology.Relationship.t }
  | Ibgp of { peer_router : int }
  | Local

type env = {
  router_id : int;
  fib : Fib.t;
  port_kind : int -> port_kind;
  is_congested : int -> bool;
  next_hop_router : int -> int option;
}

type drop_reason = No_route | Valley_violation | Ttl_expired

type action =
  | Send of { port : int; packet : Packet.t }
  | Drop of { packet : Packet.t; reason : drop_reason }

let drop_reason_to_string = function
  | No_route -> "no-route"
  | Valley_violation -> "valley-violation"
  | Ttl_expired -> "ttl-expired"

let forward ?(tag_check = true) ?(ibgp_encap = true) env ~ingress packet =
  match Packet.decrement_ttl packet with
  | None -> Drop { packet; reason = Ttl_expired }
  | Some packet ->
    (* Lines 1-3: strip the outer header of a tunnel terminating here and
       remember which iBGP peer deflected the packet to us. *)
    let sender, packet =
      match packet.Packet.encap with
      | Some e when e.Packet.outer_dst = env.router_id ->
        (Some e.Packet.outer_src, Packet.decapsulate packet)
      | Some _ | None -> (None, packet)
    in
    (* Lines 5-10: (re)tag at the packet entering point. *)
    let packet =
      match ingress with
      | None -> Packet.with_tag packet Policy.source_tag
      | Some port -> (
        match env.port_kind port with
        | Ebgp { rel; _ } -> Packet.with_tag packet (Policy.tag_of_upstream rel)
        | Ibgp _ | Local -> packet)
    in
    (* Line 4: FIB lookup. *)
    match Fib.lookup env.fib packet.Packet.dst with
    | None -> Drop { packet; reason = No_route }
    | Some entry -> (
      match env.port_kind entry.Fib.out_port with
      | Local ->
        (* destination network attached here: hand the packet to the
           host-facing port, no deflection logic applies *)
        Send { port = entry.Fib.out_port; packet }
      | Ebgp _ | Ibgp _ ->
        (* Line 11: use the alternative when this flow is being deflected
           (daemon-driven hash buckets over the congestion signal), or when
           the deflecting sender is exactly our default next hop - sending
           the packet back would cycle between iBGP peers (Fig. 2(b)). *)
        let deflected_to_me =
          match (sender, env.next_hop_router entry.Fib.out_port) with
          | Some s, Some nh -> s = nh
          | _ -> false
        in
        (* The daemon ramps [deflect_buckets] with hysteresis; on top of
           that, a congested egress immediately deflects at least the
           first hash bucket so the reaction starts at line speed, before
           the next daemon epoch. *)
        let effective_buckets =
          if env.is_congested entry.Fib.out_port then
            Stdlib.max 1 entry.Fib.deflect_buckets
          else entry.Fib.deflect_buckets
        in
        let flow_deflected =
          entry.Fib.alt_port <> None
          && Fib.flow_bucket packet.Packet.flow < effective_buckets
        in
        let want_alt = deflected_to_me || flow_deflected in
        match (want_alt, entry.Fib.alt_port) with
        | false, _ | _, None -> Send { port = entry.Fib.out_port; packet }
        | true, Some alt -> (
          match env.port_kind alt with
          | Ibgp { peer_router } ->
            (* Lines 12-15: tunnel to the iBGP peer that owns the
               alternative path.  A packet already inside someone else's
               tunnel cannot be tunneled again (MIFO never nests
               IP-in-IP), so it stays on the default port.
               [ibgp_encap:false] is the Fig. 2(b) ablation: the peer
               cannot tell a deflected packet from a normal one and
               bounces it straight back. *)
            if packet.Packet.encap <> None then
              Send { port = entry.Fib.out_port; packet }
            else begin
              let packet =
                if ibgp_encap then
                  Packet.encapsulate packet ~outer_src:env.router_id
                    ~outer_dst:peer_router
                else packet
              in
              Send { port = alt; packet }
            end
          | Ebgp { rel = downstream; _ } ->
            (* Lines 16-20: Tag-Check before leaving the AS sideways.  A
               failing check means this packet may not use the
               alternative.  If it was tunneled to us by the default
               next hop, returning it would cycle, so it is dropped
               (the pseudocode's line 20); a locally hash-deflected
               packet instead falls back to the default port, which is
               congested but always loop-free. *)
            if (not tag_check) || Policy.check ~tag:packet.Packet.vf_tag ~downstream
            then Send { port = alt; packet }
            else if deflected_to_me then Drop { packet; reason = Valley_violation }
            else Send { port = entry.Fib.out_port; packet }
          | Local -> Send { port = entry.Fib.out_port; packet }))
