type kind = Data | Ack
type encap = { outer_src : int; outer_dst : int }

type t = {
  src : Mifo_bgp.Prefix.addr;
  dst : Mifo_bgp.Prefix.addr;
  flow : int;
  seq : int;
  kind : kind;
  size_bits : int;
  ttl : int;
  vf_tag : bool;
  encap : encap option;
}

let default_ttl = 64

let make ?(kind = Data) ?(seq = 0) ?(ttl = default_ttl) ?(size_bits = 8000) ~src ~dst
    ~flow () =
  { src; dst; flow; seq; kind; size_bits; ttl; vf_tag = false; encap = None }

let with_tag t tag = { t with vf_tag = tag }

let encapsulate t ~outer_src ~outer_dst =
  if t.encap <> None then invalid_arg "Packet.encapsulate: already encapsulated";
  { t with encap = Some { outer_src; outer_dst } }

let decapsulate t = { t with encap = None }
let decrement_ttl t = if t.ttl <= 1 then None else Some { t with ttl = t.ttl - 1 }

let outer_header_bits = 160 (* a minimal 20-byte outer IPv4 header *)

let wire_size_bits t =
  t.size_bits + (match t.encap with Some _ -> outer_header_bits | None -> 0)

let pp ppf t =
  Format.fprintf ppf "%s->%s flow=%d seq=%d %s ttl=%d tag=%b%s"
    (Mifo_bgp.Prefix.addr_to_string t.src) (Mifo_bgp.Prefix.addr_to_string t.dst) t.flow t.seq
    (match t.kind with Data -> "data" | Ack -> "ack")
    t.ttl t.vf_tag
    (match t.encap with
     | Some e -> Printf.sprintf " encap[R%d->R%d]" e.outer_src e.outer_dst
     | None -> "")
