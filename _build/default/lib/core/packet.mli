(** Packets as the MIFO data plane sees them.

    Besides the usual header fields, a packet carries the two pieces of
    MIFO state from the paper: the one-bit valley-free tag (Section
    III-A4 — in a real deployment an unused MPLS-label bit or a reserved
    IP-header bit) and an optional IP-in-IP outer header identifying the
    deflecting iBGP sender (Section III-B).  Packets are immutable;
    the engine returns updated copies. *)

type kind = Data | Ack

type encap = {
  outer_src : int;  (** router id of the deflecting iBGP peer *)
  outer_dst : int;  (** router id the packet is tunneled to *)
}

type t = {
  src : Mifo_bgp.Prefix.addr;
  dst : Mifo_bgp.Prefix.addr;
  flow : int;  (** stands in for the 5-tuple: equal ids = same flow *)
  seq : int;
  kind : kind;
  size_bits : int;
  ttl : int;
  vf_tag : bool;  (** the "one bit is enough" valley-free tag *)
  encap : encap option;
}

val default_ttl : int
(** 64, as in common IP stacks. *)

val make :
  ?kind:kind -> ?seq:int -> ?ttl:int -> ?size_bits:int ->
  src:Mifo_bgp.Prefix.addr -> dst:Mifo_bgp.Prefix.addr -> flow:int -> unit -> t
(** A fresh, untagged, unencapsulated packet.  [size_bits] defaults to
    8000 (the paper's 1 KB data packets). *)

val with_tag : t -> bool -> t
val encapsulate : t -> outer_src:int -> outer_dst:int -> t
(** @raise Invalid_argument if already encapsulated (MIFO never nests
    tunnels). *)

val decapsulate : t -> t
val decrement_ttl : t -> t option
(** [None] when the TTL reaches zero. *)

val wire_size_bits : t -> int
(** [size_bits] plus 160 bits when an outer IP header is present — the
    encapsulation overhead is accounted for on the wire. *)

val pp : Format.formatter -> t -> unit
