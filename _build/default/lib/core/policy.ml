module Relationship = Mifo_topology.Relationship

let tag_of_upstream rel = Relationship.equal rel Relationship.Customer
let check ~tag ~downstream = tag || Relationship.equal downstream Relationship.Customer

let deflection_allowed ~upstream ~downstream =
  match upstream with
  | None -> true
  | Some up -> check ~tag:(tag_of_upstream up) ~downstream

let source_tag = true
