(** The one-bit valley-free policy on the data plane (Section III-A4).

    The packet entering point tags one bit — 1 iff the upstream neighbor
    is a customer of the local AS — and the exit point checks Eq. 3
    before deflecting onto an alternative path: the deflection is allowed
    iff the bit is set or the alternative's next-hop AS is a customer.
    This module is the single source of truth for that rule; the packet
    engine, the flow-level simulator and the path-counting DP all call
    it. *)

val tag_of_upstream : Mifo_topology.Relationship.t -> bool
(** The bit written at the entering point: [true] iff the upstream
    neighbor is a [Customer] (packet climbed into us). *)

val check : tag:bool -> downstream:Mifo_topology.Relationship.t -> bool
(** The exit-point check: may the packet leave toward a neighbor with
    relationship [downstream]?  [tag || downstream = Customer]. *)

val deflection_allowed :
  upstream:Mifo_topology.Relationship.t option ->
  downstream:Mifo_topology.Relationship.t ->
  bool
(** AS-level form used by the flow simulator: [upstream = None] means the
    traffic originates inside this AS (always allowed — the RIB route is
    valid from here). *)

val source_tag : bool
(** Tag carried by locally-originated traffic ([true]: a source may use
    any of its RIB routes, mirroring how its own announcements reached
    it). *)
