lib/exp/ablations.ml: Array Context Hashtbl List Mifo_bgp Mifo_core Mifo_miro Mifo_netsim Mifo_testbed Mifo_topology Mifo_traffic Mifo_util Option Printf Stdlib
