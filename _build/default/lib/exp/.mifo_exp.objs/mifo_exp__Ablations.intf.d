lib/exp/ablations.mli: Context Mifo_testbed
