lib/exp/context.ml: Array Float Lazy Mifo_bgp Mifo_core Mifo_netsim Mifo_topology Mifo_util Stdlib
