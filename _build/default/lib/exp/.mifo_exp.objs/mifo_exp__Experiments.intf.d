lib/exp/experiments.mli: Context Mifo_testbed Mifo_topology
