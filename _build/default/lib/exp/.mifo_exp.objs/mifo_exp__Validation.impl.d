lib/exp/validation.ml: Array Float Hashtbl Mifo_bgp Mifo_core Mifo_netsim Mifo_topology Mifo_util Printf
