lib/exp/validation.mli:
