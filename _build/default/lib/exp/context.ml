type scale = {
  flows : int;
  arrival_rate : float;
  dest_samples : int;
  miro_cap : int;
  sim : Mifo_netsim.Flowsim.params;
}

let default_scale =
  {
    flows = 3_000;
    arrival_rate = 2_000.;
    dest_samples = 48;
    miro_cap = 5;
    sim = Mifo_netsim.Flowsim.default_params;
  }

let quick_scale =
  {
    default_scale with
    flows = 300;
    arrival_rate = 1_000.;
    dest_samples = 8;
  }

type t = {
  topo : Mifo_topology.Generator.t;
  table : Mifo_bgp.Routing_table.t;
  scale : scale;
  seed : int;
  adoption_order : int array Lazy.t;
      (* a fixed random permutation of the ASes: deployment at ratio r is
         its first r*n entries, so growing the ratio only ever adds
         capable ASes (nested adoption), which keeps sweeps like Fig. 8
         monotone in expectation and mirrors real incremental rollout *)
}

let of_graph ?(scale = default_scale) ~seed topo =
  let graph = topo.Mifo_topology.Generator.graph in
  let n = Mifo_topology.As_graph.n graph in
  {
    topo;
    table = Mifo_bgp.Routing_table.create graph;
    scale;
    seed;
    adoption_order =
      lazy
        (let rng = Mifo_util.Prng.create ~seed:((seed * 31) + 17) () in
         Mifo_util.Prng.sample_without_replacement rng n n);
  }

let create ?params ?scale ~seed () =
  of_graph ?scale ~seed (Mifo_topology.Generator.generate ?params ~seed ())

let graph t = t.topo.Mifo_topology.Generator.graph
let n_ases t = Mifo_topology.As_graph.n (graph t)

let deployment t ~ratio =
  let n = n_ases t in
  if ratio >= 1. then Mifo_core.Deployment.full ~n
  else begin
    let order = Lazy.force t.adoption_order in
    let k = int_of_float (Float.round (ratio *. float_of_int n)) in
    let k = Stdlib.max 0 (Stdlib.min n k) in
    Mifo_core.Deployment.of_list ~n (Array.to_list (Array.sub order 0 k))
  end

let rng t ~purpose = Mifo_util.Prng.create ~seed:((t.seed * 65_537) + purpose) ()
