(** Shared experiment context: one topology + routing table + scale knobs.

    Every figure module consumes a [Context.t] so a single generated
    topology (or a loaded real trace) is reused across the whole
    evaluation, exactly as the paper evaluates everything on one AS-level
    snapshot. *)

type scale = {
  flows : int;  (** flows per throughput experiment *)
  arrival_rate : float;  (** Poisson arrivals per second *)
  dest_samples : int;  (** destinations sampled for the Fig. 7 counts *)
  miro_cap : int;  (** MIRO strict-mode alternates per destination *)
  sim : Mifo_netsim.Flowsim.params;
}

val default_scale : scale
(** 3,000 flows at 2,000/s, 48 sampled destinations — minutes for the
    full figure set on the default 2,000-AS topology. *)

val quick_scale : scale
(** A few hundred flows; used by the test suite. *)

type t = {
  topo : Mifo_topology.Generator.t;
  table : Mifo_bgp.Routing_table.t;
  scale : scale;
  seed : int;
  adoption_order : int array Lazy.t;
      (** fixed adoption permutation: deployments at different ratios are
          nested, as in a real incremental rollout *)
}

val create :
  ?params:Mifo_topology.Generator.params -> ?scale:scale -> seed:int -> unit -> t

val of_graph : ?scale:scale -> seed:int -> Mifo_topology.Generator.t -> t
(** Wrap an existing topology (e.g. loaded from an [as-rel] file). *)

val graph : t -> Mifo_topology.As_graph.t
val n_ases : t -> int

val deployment : t -> ratio:float -> Mifo_core.Deployment.t
(** Deterministic in the context seed; deployments are nested: the
    capable set at ratio [r1 <= r2] is a subset of the set at [r2]. *)

val rng : t -> purpose:int -> Mifo_util.Prng.t
(** Independent, reproducible stream per purpose tag. *)
