lib/miro/miro.ml: Hashtbl List Mifo_bgp Mifo_core Mifo_topology
