lib/miro/miro.mli: Mifo_bgp Mifo_core
