module Routing = Mifo_bgp.Routing
module Relationship = Mifo_topology.Relationship
module Deployment = Mifo_core.Deployment

type config = { cap : int }

let default_config = { cap = 5 }

let candidates ?(config = default_config) rt ~deployment ~src =
  if src = Routing.dest rt || not (Deployment.capable deployment src) then []
  else
    match Routing.rib rt src with
    | [] -> []
    | default :: rest ->
      let same_class (e : Routing.rib_entry) =
        Relationship.preference_rank e.rel
        = Relationship.preference_rank default.rel
        && Deployment.capable deployment e.via
      in
      List.filteri (fun i _ -> i < config.cap) (List.filter same_class rest)

let available_path_count ?config rt ~deployment ~src =
  if src = Routing.dest rt then 1
  else if not (Routing.reachable rt src) then 0
  else 1 + List.length (candidates ?config rt ~deployment ~src)

let alternate_paths ?config rt ~deployment ~src =
  let has_dup path =
    let seen = Hashtbl.create 16 in
    List.exists
      (fun v ->
        if Hashtbl.mem seen v then true
        else begin
          Hashtbl.add seen v ();
          false
        end)
      path
  in
  candidates ?config rt ~deployment ~src
  |> List.filter_map (fun (e : Routing.rib_entry) ->
         let path = src :: Routing.default_path rt e.via in
         if has_dup path then None else Some path)

let extra_announcements ?config rt ~deployment =
  let g_n = Deployment.size deployment in
  let total = ref 0 in
  for v = 0 to g_n - 1 do
    if v <> Routing.dest rt then begin
      let alternates = candidates ?config rt ~deployment ~src:v in
      (* each alternate is re-advertised alongside the default route *)
      total := !total + List.length alternates
    end
  done;
  !total
