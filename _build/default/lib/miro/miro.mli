(** The MIRO baseline (Xu & Rexford, SIGCOMM 2006), strict-policy mode.

    MIRO achieves multi-path interdomain routing on the control plane:
    a source AS negotiates alternative routes with (remote) ASes over a
    dedicated channel and tunnels packets to them.  For scalability the
    paper's evaluation adopts MIRO's {e strict} policy: an AS only
    announces alternative paths in the same local-preference class as its
    default path, and the number of negotiated alternates is capped.

    We model MIRO at the path-set level — which end-to-end paths a source
    can place traffic on — because that is all the evaluation exercises:

    + the source AS must be MIRO-capable;
    + each alternate is a same-preference-class RIB route via a
      MIRO-capable neighbor (the negotiation counterpart);
    + at most [cap] alternates per destination (the advertisement
      budget);
    + the rest of the path follows default BGP routing (MIRO tunnels to
      the alternate next hop and the packet continues conventionally).

    Unlike MIFO, this needs extra control-plane machinery (negotiation
    messages, tunnel state) and reacts at control-plane timescales; the
    simulator charges it no message cost, so the comparison is
    conservative in MIRO's favour. *)

type config = { cap : int  (** negotiated alternates per destination *) }

val default_config : config
(** [cap = 5]. *)

val candidates :
  ?config:config ->
  Mifo_bgp.Routing.t ->
  deployment:Mifo_core.Deployment.t ->
  src:int ->
  Mifo_bgp.Routing.rib_entry list
(** The alternate first hops the source may tunnel to (excluding the
    default route), best-first, already filtered by capability, class and
    cap.  Empty when [src] is not MIRO-capable or has no RIB. *)

val available_path_count :
  ?config:config ->
  Mifo_bgp.Routing.t ->
  deployment:Mifo_core.Deployment.t ->
  src:int ->
  int
(** Default path + negotiated alternates — the Fig. 7 series for MIRO. *)

val alternate_paths :
  ?config:config ->
  Mifo_bgp.Routing.t ->
  deployment:Mifo_core.Deployment.t ->
  src:int ->
  int list list
(** The explicit end-to-end AS paths (alternate first hop, then default
    continuation), loop-filtered as BGP would. *)

val extra_announcements :
  ?config:config ->
  Mifo_bgp.Routing.t ->
  deployment:Mifo_core.Deployment.t ->
  int
(** Control-plane cost of MIRO for this one destination prefix: every
    MIRO-capable AS advertises each of its negotiated alternates to each
    neighbor it exports the default route to.  MIFO's corresponding
    number is zero — it reads the RIB it already has (Section II-B). *)
