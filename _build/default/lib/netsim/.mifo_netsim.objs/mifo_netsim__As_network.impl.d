lib/netsim/as_network.ml: Array Hashtbl List Mifo_bgp Mifo_core Mifo_topology Packetsim
