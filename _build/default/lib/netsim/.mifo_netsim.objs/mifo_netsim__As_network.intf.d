lib/netsim/as_network.mli: Hashtbl Mifo_bgp Mifo_core Packetsim
