lib/netsim/eventq.ml: Float Mifo_util
