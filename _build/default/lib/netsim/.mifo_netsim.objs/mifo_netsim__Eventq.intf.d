lib/netsim/eventq.mli:
