lib/netsim/flowsim.ml: Array Float Hashtbl List Maxmin Mifo_bgp Mifo_core Mifo_miro Mifo_topology Mifo_util
