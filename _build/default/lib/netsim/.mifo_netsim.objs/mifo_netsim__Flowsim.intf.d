lib/netsim/flowsim.mli: Mifo_bgp Mifo_core
