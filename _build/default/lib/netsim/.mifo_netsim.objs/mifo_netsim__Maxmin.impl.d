lib/netsim/maxmin.ml: Array Float List Mifo_util Stdlib
