lib/netsim/maxmin.mli:
