lib/netsim/packetsim.ml: Array Eventq Float Hashtbl List Mifo_bgp Mifo_core Mifo_util Option Tcp
