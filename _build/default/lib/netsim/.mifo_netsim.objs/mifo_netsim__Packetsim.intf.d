lib/netsim/packetsim.mli: Mifo_bgp Mifo_core
