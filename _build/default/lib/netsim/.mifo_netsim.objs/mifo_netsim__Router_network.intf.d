lib/netsim/router_network.mli: Hashtbl Mifo_bgp Mifo_core Mifo_topology Packetsim
