lib/netsim/tcp.ml: Float Hashtbl Option Stdlib
