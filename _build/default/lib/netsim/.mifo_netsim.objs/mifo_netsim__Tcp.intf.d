lib/netsim/tcp.mli:
