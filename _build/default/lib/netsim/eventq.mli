(** Simulation event queue.

    A thin wrapper over {!Mifo_util.Heap} keyed by simulated time, with a
    monotonic sequence number so simultaneous events pop in insertion
    order (determinism matters: every run must be reproducible). *)

type 'a t

val create : unit -> 'a t
val schedule : 'a t -> time:float -> 'a -> unit
(** @raise Invalid_argument on NaN or negative time. *)

val next : 'a t -> (float * 'a) option
val is_empty : 'a t -> bool
val length : 'a t -> int
val clear : 'a t -> unit

val peek_time : 'a t -> float option
(** Time of the next event without removing it. *)
