(** Packet-level networks at router granularity.

    Builds a {!Packetsim} network from a {!Mifo_topology.Router_level}
    expansion: multi-router ASes get a full iBGP mesh, every inter-AS
    link lands on its pinned border router, and the FIBs implement
    hot-potato-free intra-AS forwarding (every router of an AS sends a
    prefix's traffic to the AS's egress border router over iBGP).

    On MIFO-capable ASes the alternative port can live on a {e different}
    border router than the default egress; the daemon then installs an
    iBGP alternative, and a deflection makes the engine tunnel the packet
    with IP-in-IP exactly as in Fig. 2(b) — which is the point of running
    at this granularity. *)

type t = {
  sim : Packetsim.t;
  expansion : Mifo_topology.Router_level.t;
  node_of_router : int array;  (** router id in the expansion -> sim node *)
  host_of_as : (int, int) Hashtbl.t;
}

val build :
  ?config:Packetsim.config ->
  ?link_rate:float ->
  ?host_rate:float ->
  Mifo_bgp.Routing_table.t ->
  expansion:Mifo_topology.Router_level.t ->
  deployment:Mifo_core.Deployment.t ->
  hosts:int list ->
  unit ->
  t
(** Same contract as {!As_network.build}, at router granularity.  The
    expansion must be over the same graph as the routing table.
    @raise Invalid_argument otherwise, or on out-of-range host ASes. *)

val host : t -> int -> int
val add_transfer : t -> src_as:int -> dst_as:int -> bytes:int -> start:float -> int
val run : ?until:float -> t -> unit
