lib/testbed/testbed.ml: Array Float Hashtbl List Mifo_bgp Mifo_core Mifo_netsim Mifo_topology Option
