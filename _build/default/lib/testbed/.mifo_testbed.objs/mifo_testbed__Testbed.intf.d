lib/testbed/testbed.mli: Mifo_netsim
