(** The prototype testbed of Section V, emulated packet-by-packet.

    The paper's testbed is 15 desktop machines: 4 end hosts and 11
    routers running the MIFO kernel forwarding engine and XORP daemon,
    arranged into 6 ASes (Fig. 11) over Gigabit Ethernet.  The default
    paths of both host pairs, 1 -> 3 -> 4 -> 5 and 2 -> 3 -> 4 -> 5,
    share the AS3->AS4 link; MIFO lets AS3's border router Rd tunnel part
    of the traffic to its iBGP peer Ra, which exits through the
    alternative path 3 -> 6 -> 5.

    Each source produces [flows_per_source] TCP flows {e one after
    another}.  The run reports the aggregate throughput time series
    (Fig. 12a) and the per-flow completion times (Fig. 12b).

    The emulation runs the very same {!Mifo_core.Engine} /
    {!Mifo_core.Daemon} code as everything else; [Bgp_routing] simply
    installs no alternative ports. *)

type protocol = Bgp_routing | Mifo_routing

type config = {
  flows_per_source : int;  (** paper: 30 *)
  flow_bytes : int;  (** paper: 100 MB; default 10 MB to keep `dune runtest` fast *)
  link_rate : float;  (** 1 Gbps *)
  sim : Mifo_netsim.Packetsim.config;
}

val default_config : config
val paper_config : config
(** 30 x 100 MB flows, as in the paper (minutes of simulated packets). *)

type result = {
  protocol : protocol;
  aggregate_series : (float * float) array;
      (** (time, aggregate goodput bits/s) — Fig. 12a *)
  fct : float array;  (** completion time of every finished flow — Fig. 12b *)
  makespan : float;  (** time until the last flow finished *)
  mean_aggregate : float;  (** mean goodput over the active period *)
  counters : Mifo_netsim.Packetsim.counters;
  switches : (int * int) list;
}

val run : ?config:config -> protocol -> result

(** {1 Pieces exposed for tests and examples} *)

type network = {
  sim : Mifo_netsim.Packetsim.t;
  s1 : int;
  s2 : int;
  d1 : int;
  d2 : int;
  rd : int;  (** AS3's default egress router *)
  ra : int;  (** AS3's alternative egress router *)
  rd_ebgp : int;  (** Rd's port on the bottleneck AS3->AS4 link *)
  ra_ebgp : int;  (** Ra's port toward AS6 *)
}

val build : config -> protocol -> network
(** Construct the Fig. 11 network with FIBs installed; no flows yet. *)
