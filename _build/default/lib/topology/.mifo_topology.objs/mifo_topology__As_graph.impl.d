lib/topology/as_graph.ml: Array Format Hashtbl List Printf Queue Relationship Stdlib
