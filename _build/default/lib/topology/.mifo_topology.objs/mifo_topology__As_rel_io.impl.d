lib/topology/as_rel_io.ml: Array As_graph Buffer Hashtbl List Mifo_util Printf String
