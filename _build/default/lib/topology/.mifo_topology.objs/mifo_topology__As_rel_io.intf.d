lib/topology/as_rel_io.mli: As_graph
