lib/topology/generator.ml: Array As_graph Hashtbl List Mifo_util Stdlib
