lib/topology/generator.mli: As_graph
