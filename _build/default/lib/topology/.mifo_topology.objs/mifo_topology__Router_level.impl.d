lib/topology/router_level.ml: Array As_graph Generator Hashtbl List Mifo_util Seq Stdlib
