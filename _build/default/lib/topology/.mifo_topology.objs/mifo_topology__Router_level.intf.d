lib/topology/router_level.mli: As_graph Generator
