lib/topology/topo_stats.ml: Array As_graph Float Format List Mifo_util
