lib/topology/topo_stats.mli: As_graph Format
