type edge_kind = Provider_customer | Peer_peer

exception Cyclic_provider_graph
exception Duplicate_edge of int * int

type t = {
  n : int;
  neighbors : int array array;  (* sorted per node *)
  rels : Relationship.t array array;  (* parallel to [neighbors] *)
  customers : int array array;
  providers : int array array;
  peers : int array array;
  level : int array;
  topo : int array;
  pc_edges : int;
  peer_edges : int;
}

let check_endpoint n v =
  if v < 0 || v >= n then invalid_arg (Printf.sprintf "As_graph: AS id %d out of range" v)

let create ~n ~edges =
  if n <= 0 then invalid_arg "As_graph.create: need at least one AS";
  let seen = Hashtbl.create (List.length edges) in
  let adj = Array.make n [] in
  let pc_edges = ref 0 and peer_edges = ref 0 in
  let add_edge u v kind =
    check_endpoint n u;
    check_endpoint n v;
    if u = v then invalid_arg "As_graph.create: self-loop";
    let key = if u < v then (u, v) else (v, u) in
    if Hashtbl.mem seen key then raise (Duplicate_edge (u, v));
    Hashtbl.add seen key ();
    match kind with
    | Provider_customer ->
      incr pc_edges;
      (* u is provider: from u's view, v is a Customer *)
      adj.(u) <- (v, Relationship.Customer) :: adj.(u);
      adj.(v) <- (u, Relationship.Provider) :: adj.(v)
    | Peer_peer ->
      incr peer_edges;
      adj.(u) <- (v, Relationship.Peer) :: adj.(u);
      adj.(v) <- (u, Relationship.Peer) :: adj.(v)
  in
  List.iter (fun (u, v, kind) -> add_edge u v kind) edges;
  let neighbors = Array.make n [||] and rels = Array.make n [||] in
  let customers = Array.make n [||]
  and providers = Array.make n [||]
  and peers = Array.make n [||] in
  for v = 0 to n - 1 do
    let sorted = List.sort (fun (a, _) (b, _) -> compare a b) adj.(v) in
    neighbors.(v) <- Array.of_list (List.map fst sorted);
    rels.(v) <- Array.of_list (List.map snd sorted);
    let filter r =
      sorted |> List.filter (fun (_, r') -> Relationship.equal r r') |> List.map fst
      |> Array.of_list
    in
    customers.(v) <- filter Relationship.Customer;
    providers.(v) <- filter Relationship.Provider;
    peers.(v) <- filter Relationship.Peer
  done;
  (* Kahn's algorithm over provider->customer edges: levels and the
     topological order fall out together; a leftover node means a cycle. *)
  let indegree = Array.make n 0 in
  for v = 0 to n - 1 do
    indegree.(v) <- Array.length providers.(v)
  done;
  let level = Array.make n 0 in
  let queue = Queue.create () in
  for v = 0 to n - 1 do
    if indegree.(v) = 0 then Queue.add v queue
  done;
  let topo = Array.make n (-1) in
  let placed = ref 0 in
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    topo.(!placed) <- v;
    incr placed;
    Array.iter
      (fun c ->
        if level.(v) + 1 > level.(c) then level.(c) <- level.(v) + 1;
        indegree.(c) <- indegree.(c) - 1;
        if indegree.(c) = 0 then Queue.add c queue)
      customers.(v)
  done;
  if !placed <> n then raise Cyclic_provider_graph;
  {
    n;
    neighbors;
    rels;
    customers;
    providers;
    peers;
    level;
    topo;
    pc_edges = !pc_edges;
    peer_edges = !peer_edges;
  }

let n t = t.n
let edge_count t = t.pc_edges + t.peer_edges
let pc_edge_count t = t.pc_edges
let peer_edge_count t = t.peer_edges
let neighbors t v = t.neighbors.(v)
let customers t v = t.customers.(v)
let providers t v = t.providers.(v)
let peers t v = t.peers.(v)
let degree t v = Array.length t.neighbors.(v)

let rel t u v =
  let nbrs = t.neighbors.(u) in
  let rec search lo hi =
    if lo > hi then None
    else
      let mid = (lo + hi) / 2 in
      if nbrs.(mid) = v then Some t.rels.(u).(mid)
      else if nbrs.(mid) < v then search (mid + 1) hi
      else search lo (mid - 1)
  in
  search 0 (Array.length nbrs - 1)

let rel_exn t u v = match rel t u v with Some r -> r | None -> raise Not_found
let is_edge t u v = rel t u v <> None
let level t v = t.level.(v)

let max_level t = Array.fold_left Stdlib.max 0 t.level

let topological_order t = Array.copy t.topo
let is_stub t v = Array.length t.customers.(v) = 0

let fold_edges t ~init ~f =
  let acc = ref init in
  for u = 0 to t.n - 1 do
    let nbrs = t.neighbors.(u) and rels = t.rels.(u) in
    for i = 0 to Array.length nbrs - 1 do
      let v = nbrs.(i) in
      match rels.(i) with
      | Relationship.Customer -> acc := f !acc u v Provider_customer
      | Relationship.Peer -> if u < v then acc := f !acc u v Peer_peer
      | Relationship.Provider -> ()
    done
  done;
  !acc

let hop_of t u v = Relationship.hop_of (rel_exn t u v)

let path_is_valley_free t path =
  let rec hops = function
    | [] | [ _ ] -> []
    | u :: (v :: _ as rest) -> hop_of t u v :: hops rest
  in
  Relationship.valley_free (hops path)

let pp_stats ppf t =
  Format.fprintf ppf "ASes=%d links=%d (P/C=%d peering=%d) max-level=%d" t.n
    (edge_count t) t.pc_edges t.peer_edges (max_level t)
