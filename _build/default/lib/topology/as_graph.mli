(** The AS-level Internet topology.

    Nodes are ASes identified by dense ids [0 .. n-1]; every undirected
    inter-AS link is labelled provider–customer or peer–peer.  The
    provider→customer edges must form a DAG (the standard Gao–Rexford
    hierarchy assumption, which also underpins the paper's stable-state
    analysis); [create] verifies this and derives each AS's depth in the
    hierarchy.

    The accessors expose, for every AS, its neighbors already classified
    into customers / providers / peers, because the route computation and
    the MIFO engine query exactly those sets on their hot paths. *)

type t

type edge_kind =
  | Provider_customer  (** the first endpoint is the provider *)
  | Peer_peer

exception Cyclic_provider_graph
(** Raised by [create] when provider→customer links contain a cycle. *)

exception Duplicate_edge of int * int
(** Raised by [create] when the same unordered AS pair appears twice. *)

val create : n:int -> edges:(int * int * edge_kind) list -> t
(** [create ~n ~edges] builds the graph.  Endpoints must lie in
    [0 .. n-1]; self-loops are rejected.  O(E log E). *)

val n : t -> int
val edge_count : t -> int
val pc_edge_count : t -> int
val peer_edge_count : t -> int

val neighbors : t -> int -> int array
(** All neighbors of an AS.  The returned array is owned by the graph —
    do not mutate. *)

val customers : t -> int -> int array
val providers : t -> int -> int array
val peers : t -> int -> int array
val degree : t -> int -> int

val rel : t -> int -> int -> Relationship.t option
(** [rel g u v] is the role [v] plays relative to [u], or [None] when the
    ASes are not adjacent.  O(log degree). *)

val rel_exn : t -> int -> int -> Relationship.t
(** @raise Not_found when not adjacent. *)

val is_edge : t -> int -> int -> bool

val level : t -> int -> int
(** Depth in the provider hierarchy: 0 for ASes with no provider
    (tier-1); otherwise 1 + max level of its providers.  Strictly
    increases along every provider→customer link. *)

val max_level : t -> int

val topological_order : t -> int array
(** ASes ordered so that every provider precedes all of its customers. *)

val is_stub : t -> int -> bool
(** An AS with no customers. *)

val fold_edges : t -> init:'a -> f:('a -> int -> int -> edge_kind -> 'a) -> 'a
(** Folds over each undirected link once, with the provider first for
    provider–customer links and the lower id first for peering links. *)

val hop_of : t -> int -> int -> Relationship.hop
(** [hop_of g u v] classifies the directed hop [u -> v].
    @raise Not_found when not adjacent. *)

val path_is_valley_free : t -> int list -> bool
(** Whether an AS-level path (list of adjacent ASes) is valley-free.
    @raise Not_found if consecutive ASes are not adjacent. *)

val pp_stats : Format.formatter -> t -> unit
