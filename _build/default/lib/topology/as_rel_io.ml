type loaded = { graph : As_graph.t; as_number : int array }

exception Parse_error of int * string

let fail line msg = raise (Parse_error (line, msg))

let parse_string text =
  let ids = Hashtbl.create 1024 in
  let numbers = Mifo_util.Vec.create () in
  let intern asn =
    match Hashtbl.find_opt ids asn with
    | Some id -> id
    | None ->
      let id = Mifo_util.Vec.length numbers in
      Hashtbl.add ids asn id;
      Mifo_util.Vec.push numbers asn;
      id
  in
  let edges = ref [] in
  let lines = String.split_on_char '\n' text in
  List.iteri
    (fun i line ->
      let lineno = i + 1 in
      let line = String.trim line in
      if line <> "" && line.[0] <> '#' then begin
        match String.split_on_char '|' line with
        | [ a; b; r ] | a :: b :: r :: _ :: [] ->
          let parse_int field s =
            match int_of_string_opt (String.trim s) with
            | Some v -> v
            | None -> fail lineno (Printf.sprintf "bad %s %S" field s)
          in
          let a = parse_int "AS number" a and b = parse_int "AS number" b in
          let kind =
            match parse_int "relationship" r with
            | -1 -> As_graph.Provider_customer
            | 0 -> As_graph.Peer_peer
            | other -> fail lineno (Printf.sprintf "unknown relationship %d" other)
          in
          (* explicit lets: OCaml evaluates tuple components right to
             left, and we want ids assigned in reading order *)
          let ia = intern a in
          let ib = intern b in
          edges := (ia, ib, kind) :: !edges
        | _ -> fail lineno "expected <as1>|<as2>|<rel>"
      end)
    lines;
  let as_number = Mifo_util.Vec.to_array numbers in
  let n = Array.length as_number in
  if n = 0 then fail 0 "no links in input";
  let graph =
    try As_graph.create ~n ~edges:!edges with
    | As_graph.Duplicate_edge (u, v) ->
      fail 0 (Printf.sprintf "duplicate link between AS%d and AS%d" as_number.(u) as_number.(v))
  in
  { graph; as_number }

let load path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  parse_string text

let to_string ?as_number graph =
  let name =
    match as_number with
    | Some a -> fun v -> a.(v)
    | None -> fun v -> v
  in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "# as-rel: <provider-or-peer>|<customer-or-peer>|<-1:p2c 0:p2p>\n";
  As_graph.fold_edges graph ~init:() ~f:(fun () u v kind ->
      let r = match kind with As_graph.Provider_customer -> -1 | As_graph.Peer_peer -> 0 in
      Buffer.add_string buf (Printf.sprintf "%d|%d|%d\n" (name u) (name v) r));
  Buffer.contents buf

let save ?as_number path graph =
  let oc = open_out_bin path in
  output_string oc (to_string ?as_number graph);
  close_out oc
