(** Serialization in the CAIDA / UCLA [as-rel] format.

    One link per line, [<as1>|<as2>|<rel>] where [rel = -1] means [as1]
    is the provider of [as2] and [rel = 0] means mutual peering; lines
    starting with ['#'] are comments.  Real inferred topologies (e.g. the
    paper's Nov. 2014 UCLA IRL trace) ship in this format, so a user can
    swap the synthetic graph for a real one without code changes.

    Arbitrary AS numbers in the file are mapped to the dense ids
    {!As_graph} uses; the mapping is returned alongside the graph. *)

type loaded = {
  graph : As_graph.t;
  as_number : int array;  (** dense id -> original AS number *)
}

exception Parse_error of int * string
(** Line number (1-based) and message. *)

val parse_string : string -> loaded
val load : string -> loaded
(** [load path] reads a file. *)

val to_string : ?as_number:int array -> As_graph.t -> string
(** Serialize; [as_number] relabels dense ids (defaults to identity). *)

val save : ?as_number:int array -> string -> As_graph.t -> unit
