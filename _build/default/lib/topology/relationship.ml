type t = Customer | Provider | Peer

let equal a b =
  match (a, b) with
  | Customer, Customer | Provider, Provider | Peer, Peer -> true
  | (Customer | Provider | Peer), _ -> false

let inverse = function Customer -> Provider | Provider -> Customer | Peer -> Peer
let to_string = function Customer -> "customer" | Provider -> "provider" | Peer -> "peer"
let pp ppf t = Format.pp_print_string ppf (to_string t)
let preference_rank = function Customer -> 0 | Peer -> 1 | Provider -> 2

let transit_allowed ~upstream ~downstream =
  equal upstream Customer || equal downstream Customer

let exports_to ~route_learned_from ~neighbor =
  match route_learned_from with
  | Customer -> true
  | Peer | Provider -> equal neighbor Customer

type hop = Up | Flat | Down

let hop_of = function Provider -> Up | Peer -> Flat | Customer -> Down

let valley_free hops =
  (* up* flat? down*: track the automaton state while scanning. *)
  let rec go state hops =
    match (state, hops) with
    | _, [] -> true
    | `Rising, Up :: rest -> go `Rising rest
    | `Rising, Flat :: rest -> go `Falling rest
    | (`Rising | `Falling), Down :: rest -> go `Falling rest
    | `Falling, (Up | Flat) :: _ -> false
  in
  go `Rising hops
