(** AS business relationships and the Gao–Rexford path algebra.

    An inter-AS link is either a provider–customer link or a mutual
    peering link.  We store, for each directed adjacency [(u, v)], the
    role [v] plays {e relative to} [u] ([`v] is [u]'s customer, provider
    or peer).  Section III-A3 of the paper casts this as an algebra
    ([u > v] iff [v] is [u]'s customer) whose transit rule (Eq. 3) is the
    heart of MIFO's loop-freedom proof; this module implements exactly
    that algebra so both the control plane (export policy) and the data
    plane (Tag-Check) share one definition. *)

type t =
  | Customer  (** the neighbor is my customer (I am its provider) *)
  | Provider  (** the neighbor is my provider (I am its customer) *)
  | Peer      (** mutual, settlement-free peering *)

val equal : t -> t -> bool
val inverse : t -> t
(** How I look from the neighbor's side: [inverse Customer = Provider],
    [inverse Peer = Peer]. *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit

val preference_rank : t -> int
(** Route-selection class order: routes learned from a [Customer] rank 0
    (most preferred), [Peer] 1, [Provider] 2 — "customer routes are
    preferred over peer routes, which in turn are preferred over provider
    routes". *)

val transit_allowed : upstream:t -> downstream:t -> bool
(** Eq. 3 — the valley-free transit rule, on the data plane as well as the
    control plane: an AS may carry a packet received from [upstream]
    toward [downstream] iff the upstream neighbor is its customer
    ({i v_(i-1) < v_i}) or the downstream neighbor is its customer
    ({i v_i > v_(i+1)}). *)

val exports_to : route_learned_from:t -> neighbor:t -> bool
(** Gao–Rexford export policy: routes learned from customers (and own
    prefixes) are exported to everyone; routes learned from peers or
    providers are exported only to customers. *)

type hop = Up | Flat | Down
(** A hop classified from the sender's perspective: [Up] goes to a
    provider, [Flat] to a peer, [Down] to a customer. *)

val hop_of : t -> hop
(** [hop_of rel] classifies a hop toward a neighbor with relationship
    [rel]: toward my [Provider] is [Up], toward a [Peer] is [Flat],
    toward my [Customer] is [Down]. *)

val valley_free : hop list -> bool
(** Whether a hop sequence has the shape [Up* Flat? Down*] — the
    control-plane notion of a valley-free path. *)
