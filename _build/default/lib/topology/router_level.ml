module Prng = Mifo_util.Prng

type t = {
  graph : As_graph.t;
  routers_of_as : int array array;
  as_of_router : int array;
  link_router : (int * int) -> int;
  ibgp_pairs : (int * int) list;
}

let router_count t = Array.length t.as_of_router

let expand ?(links_per_router = 8) ?(max_routers = 8) ~seed g ~expand =
  if links_per_router < 1 then invalid_arg "Router_level.expand: links_per_router < 1";
  if max_routers < 1 then invalid_arg "Router_level.expand: max_routers < 1";
  let n = As_graph.n g in
  let expand_set = Hashtbl.create 16 in
  List.iter
    (fun v ->
      if v < 0 || v >= n then invalid_arg "Router_level.expand: AS id out of range";
      Hashtbl.replace expand_set v ())
    expand;
  let rng = Prng.create ~seed () in
  (* Number the routers: AS order, then per-AS index. *)
  let routers_of_as = Array.make n [||] in
  let as_of_router = Mifo_util.Vec.create () in
  for v = 0 to n - 1 do
    let wanted =
      if Hashtbl.mem expand_set v then begin
        let d = As_graph.degree g v in
        Stdlib.min max_routers (Stdlib.max 1 ((d + links_per_router - 1) / links_per_router))
      end
      else 1
    in
    routers_of_as.(v) <-
      Array.init wanted (fun _ ->
          let id = Mifo_util.Vec.length as_of_router in
          Mifo_util.Vec.push as_of_router v;
          id)
  done;
  let as_of_router = Mifo_util.Vec.to_array as_of_router in
  (* Pin each directed adjacency (u, v) to one of u's border routers:
     seeded random round-robin so every router gets a similar share. *)
  let assignment = Hashtbl.create (4 * As_graph.edge_count g) in
  for u = 0 to n - 1 do
    let routers = routers_of_as.(u) in
    let k = Array.length routers in
    if k = 1 then
      Array.iter (fun v -> Hashtbl.replace assignment (u, v) routers.(0)) (As_graph.neighbors g u)
    else begin
      let nbrs = Array.copy (As_graph.neighbors g u) in
      Prng.shuffle rng nbrs;
      Array.iteri
        (fun i v -> Hashtbl.replace assignment (u, v) routers.(i mod k))
        nbrs
    end
  done;
  let link_router key =
    match Hashtbl.find_opt assignment key with
    | Some r -> r
    | None -> invalid_arg "Router_level.link_router: not an adjacency"
  in
  (* Full-mesh iBGP inside every multi-router AS. *)
  let ibgp_pairs =
    let acc = ref [] in
    for v = 0 to n - 1 do
      let routers = routers_of_as.(v) in
      let k = Array.length routers in
      for i = 0 to k - 1 do
        for j = i + 1 to k - 1 do
          acc := (routers.(i), routers.(j)) :: !acc
        done
      done
    done;
    List.rev !acc
  in
  { graph = g; routers_of_as; as_of_router; link_router; ibgp_pairs }

let expand_tier1 ?links_per_router ?max_routers ~seed (topo : Generator.t) =
  let tier1 =
    Array.to_list
      (Array.of_seq
         (Seq.filter
            (fun v -> topo.Generator.roles.(v) = Generator.Tier1)
            (Seq.init (As_graph.n topo.Generator.graph) (fun v -> v))))
  in
  expand ?links_per_router ?max_routers ~seed topo.Generator.graph ~expand:tier1
