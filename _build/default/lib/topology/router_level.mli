(** Router-level expansion of an AS topology.

    The paper's simulation "expands several tier-1 ASes to capture all of
    their internal topologies at the router level", assuming the border
    routers of an expanded AS form a full iBGP mesh.  This module
    computes that expansion: each selected AS is split into several
    border routers, every inter-AS link is pinned to a specific border
    router on each side, and full-mesh iBGP links are emitted for every
    multi-router AS.

    The expansion is pure data — {!Mifo_netsim.Router_network} (or any
    other consumer) turns it into a running network.  Multi-router ASes
    are where MIFO's IP-in-IP mechanics matter: the default and the
    alternative path may exit through {e different} border routers, so a
    deflection must tunnel across the iBGP mesh (Fig. 2(b)). *)

type t = {
  graph : As_graph.t;  (** the underlying AS graph *)
  routers_of_as : int array array;  (** AS id -> its router ids (>= 1 each) *)
  as_of_router : int array;  (** router id -> AS id *)
  link_router : (int * int) -> int;
      (** [(u, v)] (adjacent ASes) -> the router of [u] owning that link *)
  ibgp_pairs : (int * int) list;  (** full-mesh iBGP links, router id pairs *)
}

val router_count : t -> int

val expand :
  ?links_per_router:int -> ?max_routers:int -> seed:int ->
  As_graph.t -> expand:int list -> t
(** [expand ~seed g ~expand] splits each AS in [expand] into
    [ceil (degree / links_per_router)] border routers (at most
    [max_routers], default 8; [links_per_router] defaults to 8), and
    assigns its inter-AS links to them in a seeded random round-robin.
    Every other AS keeps a single router that owns all its links.

    @raise Invalid_argument on out-of-range AS ids. *)

val expand_tier1 : ?links_per_router:int -> ?max_routers:int -> seed:int -> Generator.t -> t
(** The paper's choice: expand exactly the tier-1 ASes. *)
