module Table = Mifo_util.Table

type t = {
  nodes : int;
  links : int;
  pc_links : int;
  peering_links : int;
  pc_fraction : float;
  mean_degree : float;
  max_degree : int;
  multihomed_fraction : float;
  stub_fraction : float;
}

let compute g =
  let n = As_graph.n g in
  let links = As_graph.edge_count g in
  let max_degree = ref 0 and degree_total = ref 0 in
  let multihomed = ref 0 and stubs = ref 0 in
  for v = 0 to n - 1 do
    let d = As_graph.degree g v in
    degree_total := !degree_total + d;
    if d > !max_degree then max_degree := d;
    (* An AS can benefit from multi-neighbor forwarding when more than one
       neighbor may export it a route: any number of providers/peers plus
       customers all qualify as RIB sources. *)
    if d >= 2 then incr multihomed;
    if As_graph.is_stub g v then incr stubs
  done;
  let fn = float_of_int n in
  {
    nodes = n;
    links;
    pc_links = As_graph.pc_edge_count g;
    peering_links = As_graph.peer_edge_count g;
    pc_fraction =
      (if links = 0 then 0.
       else float_of_int (As_graph.pc_edge_count g) /. float_of_int links);
    mean_degree = float_of_int !degree_total /. fn;
    max_degree = !max_degree;
    multihomed_fraction = float_of_int !multihomed /. fn;
    stub_fraction = float_of_int !stubs /. fn;
  }

let table1_rows t =
  [
    [
      "(generated)";
      Table.fmt_count t.nodes;
      Table.fmt_count t.links;
      Table.fmt_count t.pc_links;
      Table.fmt_count t.peering_links;
    ];
  ]

let pp ppf t =
  Format.fprintf ppf
    "nodes=%d links=%d P/C=%d (%.0f%%) peering=%d (%.0f%%) mean-degree=%.2f max-degree=%d multihomed=%.0f%% stubs=%.0f%%"
    t.nodes t.links t.pc_links (100. *. t.pc_fraction) t.peering_links
    (100. *. (1. -. t.pc_fraction))
    t.mean_degree t.max_degree
    (100. *. t.multihomed_fraction)
    (100. *. t.stub_fraction)

let degree_ccdf g =
  let n = As_graph.n g in
  let degrees = Array.init n (As_graph.degree g) in
  Array.sort compare degrees;
  let fn = float_of_int n in
  let out = Mifo_util.Vec.create () in
  let i = ref 0 in
  while !i < n do
    let d = degrees.(!i) in
    (* fraction of nodes with degree >= d *)
    Mifo_util.Vec.push out (d, float_of_int (n - !i) /. fn);
    while !i < n && degrees.(!i) = d do
      incr i
    done
  done;
  Mifo_util.Vec.to_array out

let powerlaw_exponent g =
  let points =
    degree_ccdf g
    |> Array.to_list
    |> List.filter (fun (d, p) -> d >= 3 && p > 0.)
    |> List.map (fun (d, p) -> (log (float_of_int d), log p))
  in
  match points with
  | [] | [ _ ] -> Float.nan
  | points ->
    let n = float_of_int (List.length points) in
    let sx = List.fold_left (fun a (x, _) -> a +. x) 0. points in
    let sy = List.fold_left (fun a (_, y) -> a +. y) 0. points in
    let sxx = List.fold_left (fun a (x, _) -> a +. (x *. x)) 0. points in
    let sxy = List.fold_left (fun a (x, y) -> a +. (x *. y)) 0. points in
    let denom = (n *. sxx) -. (sx *. sx) in
    if abs_float denom < 1e-12 then Float.nan
    else ((n *. sxy) -. (sx *. sy)) /. denom
