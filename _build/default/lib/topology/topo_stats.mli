(** Topology attributes — the contents of the paper's Table I.

    Also provides the degree/diversity summaries quoted in the design
    rationale (Section II-B: "most ASes are able to benefit from
    multi-neighbor forwarding"). *)

type t = {
  nodes : int;
  links : int;
  pc_links : int;
  peering_links : int;
  pc_fraction : float;
  mean_degree : float;
  max_degree : int;
  multihomed_fraction : float;  (** ASes with >= 2 neighbors able to provide a route *)
  stub_fraction : float;
}

val compute : As_graph.t -> t

val table1_rows : t -> string list list
(** Rows shaped like the paper's Table I:
    [[date; nodes; links; pc; peering]]. *)

val pp : Format.formatter -> t -> unit

(** {1 Degree distribution}

    The Fig. 7 path diversity depends on the degree power law; these
    helpers let tests and docs verify the generator actually produces
    one. *)

val degree_ccdf : As_graph.t -> (int * float) array
(** [(d, P(degree >= d))] at each distinct degree, ascending. *)

val powerlaw_exponent : As_graph.t -> float
(** Least-squares slope of log P(degree >= d) against log d over the
    tail (degrees >= 3) — around -1..-2 for Internet-like graphs.
    Returns [nan] when the graph is too small or degree-uniform. *)

