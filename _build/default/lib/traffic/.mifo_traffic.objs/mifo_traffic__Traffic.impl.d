lib/traffic/traffic.ml: Array Float Mifo_netsim Mifo_topology Mifo_util Seq Stdlib
