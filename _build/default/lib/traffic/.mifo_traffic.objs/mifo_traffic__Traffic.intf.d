lib/traffic/traffic.mli: Mifo_netsim Mifo_topology Mifo_util
