module Prng = Mifo_util.Prng
module As_graph = Mifo_topology.As_graph

type spec = Mifo_netsim.Flowsim.flow_spec

let default_size_bits = 8e7 (* 10 MB *)

type size_model = Fixed of float | Pareto of { shape : float; mean_bits : float }

let sample_size rng = function
  | Fixed bits ->
    if bits <= 0. then invalid_arg "Traffic.sample_size: nonpositive size";
    bits
  | Pareto { shape; mean_bits } ->
    if shape <= 1. then invalid_arg "Traffic.sample_size: Pareto shape must exceed 1";
    if mean_bits <= 0. then invalid_arg "Traffic.sample_size: nonpositive mean";
    (* scale so the (untruncated) mean is [mean_bits] *)
    let scale = mean_bits *. (shape -. 1.) /. shape in
    Float.min (100. *. mean_bits) (Prng.pareto rng ~shape ~scale)

let poisson_starts rng ~rate ~count =
  if rate <= 0. then invalid_arg "Traffic.poisson_starts: rate must be positive";
  if count < 0 then invalid_arg "Traffic.poisson_starts: negative count";
  let starts = Array.make count 0. in
  let t = ref 0. in
  for i = 0 to count - 1 do
    t := !t +. Prng.exponential rng ~mean:(1. /. rate);
    starts.(i) <- !t
  done;
  starts

let uniform rng ~n_ases ~count ~rate ?(size_bits = default_size_bits) ?size_model () =
  if n_ases < 2 then invalid_arg "Traffic.uniform: need at least two ASes";
  let model = match size_model with Some m -> m | None -> Fixed size_bits in
  let starts = poisson_starts rng ~rate ~count in
  Array.init count (fun i ->
      let src = Prng.int rng n_ases in
      let rec pick_dst () =
        let d = Prng.int rng n_ases in
        if d = src then pick_dst () else d
      in
      {
        Mifo_netsim.Flowsim.src;
        dst = pick_dst ();
        size_bits = sample_size rng model;
        start = starts.(i);
      })

let content_provider_ranking g =
  let n = As_graph.n g in
  let score v = Array.length (As_graph.providers g v) + Array.length (As_graph.peers g v) in
  let ids = Array.init n (fun v -> v) in
  Array.sort (fun a b -> compare (-score a, a) (-score b, b)) ids;
  ids

let zipf_weights ~alpha ~n =
  if n <= 0 then invalid_arg "Traffic.zipf_weights: n must be positive";
  let raw = Array.init n (fun i -> Float.pow (float_of_int (i + 1)) (-.alpha)) in
  let total = Array.fold_left ( +. ) 0. raw in
  Array.map (fun w -> w /. total) raw

(* Sample an index from cumulative weights by binary search. *)
let sample_cumulative rng cumulative =
  let u = Prng.float rng 1.0 in
  let n = Array.length cumulative in
  let rec search lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if cumulative.(mid) <= u then search (mid + 1) hi else search lo mid
  in
  Stdlib.min (n - 1) (search 0 n)

let power_law rng g ~alpha ~providers ~count ~rate ?(size_bits = default_size_bits)
    ?size_model () =
  let model = match size_model with Some m -> m | None -> Fixed size_bits in
  let np = Array.length providers in
  if np = 0 then invalid_arg "Traffic.power_law: no content providers";
  let stubs =
    Array.of_seq
      (Seq.filter (fun v -> As_graph.is_stub g v) (Seq.init (As_graph.n g) (fun v -> v)))
  in
  if Array.length stubs < 2 then invalid_arg "Traffic.power_law: no stub consumers";
  let weights = zipf_weights ~alpha ~n:np in
  let cumulative = Array.make np 0. in
  let acc = ref 0. in
  Array.iteri
    (fun i w ->
      acc := !acc +. w;
      cumulative.(i) <- !acc)
    weights;
  let starts = poisson_starts rng ~rate ~count in
  Array.init count (fun i ->
      let src = providers.(sample_cumulative rng cumulative) in
      let rec pick_dst () =
        let d = Prng.choose rng stubs in
        if d = src then pick_dst () else d
      in
      {
        Mifo_netsim.Flowsim.src;
        dst = pick_dst ();
        size_bits = sample_size rng model;
        start = starts.(i);
      })
