(** Synthetic interdomain traffic matrices (Section IV).

    A complete interdomain traffic matrix is proprietary, so the paper —
    and this reproduction — generates traffic two ways:

    + {b uniform}: source and destination ASes drawn uniformly at random
      ("to analyze MIFO in a generic manner");
    + {b power-law}: popular content providers produce traffic consumed
      by stub ASes, with provider [i] (ranked by number of providers and
      peers) chosen with probability proportional to [i ** -alpha]
      (Zipf) — the realistic skewed workload of Fig. 6.

    Flow start times follow a Poisson process of a given rate; sizes
    default to the paper's 10 MB.  All generation is deterministic in the
    given PRNG. *)

type spec = Mifo_netsim.Flowsim.flow_spec

val default_size_bits : float
(** 10 MB = 8e7 bits. *)

(** Flow-size models.  The paper fixes sizes at 10 MB; [Pareto] adds the
    heavy-tailed mix used for robustness checks (mice and elephants with
    the same offered load). *)
type size_model =
  | Fixed of float  (** every flow this many bits *)
  | Pareto of { shape : float; mean_bits : float }
      (** heavy-tailed, truncated at 100x the mean; requires shape > 1 *)

val sample_size : Mifo_util.Prng.t -> size_model -> float

val poisson_starts : Mifo_util.Prng.t -> rate:float -> count:int -> float array
(** [count] arrival times with exponential inter-arrivals of rate [rate]
    per second, starting at 0. *)

val uniform :
  Mifo_util.Prng.t ->
  n_ases:int ->
  count:int ->
  rate:float ->
  ?size_bits:float ->
  ?size_model:size_model ->
  unit ->
  spec array
(** Uniformly random distinct (src, dst) pairs.  [size_model] overrides
    [size_bits] when given. *)

val content_provider_ranking : Mifo_topology.As_graph.t -> int array
(** ASes ranked by descending (providers + peers) degree — the paper's
    popularity order; ties broken by AS id. *)

val power_law :
  Mifo_util.Prng.t ->
  Mifo_topology.As_graph.t ->
  alpha:float ->
  providers:int array ->
  count:int ->
  rate:float ->
  ?size_bits:float ->
  ?size_model:size_model ->
  unit ->
  spec array
(** Sources Zipf(alpha) over [providers] (rank order as given);
    destinations uniform over stub ASes, never equal to the chosen
    source.  The paper draws producers from a ranking of the whole AS
    population ([N] "content providers"), so passing
    {!content_provider_ranking} reproduces its model; passing a small
    explicit provider set concentrates the load accordingly.
    @raise Invalid_argument when [providers] is empty or the graph has
    fewer than two stubs. *)

val zipf_weights : alpha:float -> n:int -> float array
(** Normalized Zipf probabilities [i^-alpha / sum], i from 1. *)
