lib/util/csv.mli:
