lib/util/dist.ml: Array Stdlib
