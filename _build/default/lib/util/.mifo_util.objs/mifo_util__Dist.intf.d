lib/util/dist.mli:
