lib/util/heap.mli:
