lib/util/prng.mli:
