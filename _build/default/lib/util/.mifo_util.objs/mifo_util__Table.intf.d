lib/util/table.mli:
