lib/util/vec.mli:
