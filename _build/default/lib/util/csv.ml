let escape field =
  let needs_quoting =
    String.exists (function ',' | '"' | '\n' | '\r' -> true | _ -> false) field
  in
  if not needs_quoting then field
  else begin
    let buf = Buffer.create (String.length field + 8) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buf "\"\"" else Buffer.add_char buf c)
      field;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end

let line fields = String.concat "," (List.map escape fields) ^ "\n"

let of_table ~header ~rows =
  String.concat "" (line header :: List.map line rows)

let of_series ~x_label ~columns ~rows =
  of_table ~header:(x_label :: columns)
    ~rows:
      (List.map
         (fun (x, ys) -> Printf.sprintf "%.6g" x :: List.map (Printf.sprintf "%.6g") ys)
         rows)

let write_file path contents =
  let oc = open_out path in
  output_string oc contents;
  close_out oc
