(** Minimal CSV writing (RFC 4180 quoting) for exporting figure data.

    Every experiment renders to aligned text for the console; the CLI's
    [--csv] option additionally dumps the raw series with this module so
    figures can be re-plotted with external tools. *)

val escape : string -> string
(** Quote a field when it contains a comma, quote or newline. *)

val of_table : header:string list -> rows:string list list -> string
val of_series : x_label:string -> columns:string list -> rows:(float * float list) list -> string
val write_file : string -> string -> unit
(** [write_file path contents]. *)
