type cdf = { sorted : float array }

let cdf_of_samples samples =
  let sorted = Array.copy samples in
  Array.sort compare sorted;
  { sorted }

let cdf_size c = Array.length c.sorted

(* Index of the first element > x, by binary search. *)
let upper_bound a x =
  let rec go lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if a.(mid) <= x then go (mid + 1) hi else go lo mid
  in
  go 0 (Array.length a)

let cdf_at c x =
  let n = Array.length c.sorted in
  if n = 0 then 0. else float_of_int (upper_bound c.sorted x) /. float_of_int n

let fraction_at_least c x =
  let n = Array.length c.sorted in
  if n = 0 then 0.
  else
    (* strictly-below count via upper bound on the predecessor *)
    let rec lower_bound lo hi =
      if lo >= hi then lo
      else
        let mid = (lo + hi) / 2 in
        if c.sorted.(mid) < x then lower_bound (mid + 1) hi else lower_bound lo mid
    in
    float_of_int (n - lower_bound 0 n) /. float_of_int n

let percentile c p =
  let n = Array.length c.sorted in
  if n = 0 then invalid_arg "Dist.percentile: empty sample";
  if p < 0. || p > 100. then invalid_arg "Dist.percentile: p out of range";
  let rank = int_of_float (ceil (p /. 100. *. float_of_int n)) in
  c.sorted.(Stdlib.max 0 (Stdlib.min (n - 1) (rank - 1)))

let cdf_series c ~xs = Array.map (fun x -> (x, 100. *. cdf_at c x)) xs

let evenly_spaced ~lo ~hi ~n =
  if n < 2 then invalid_arg "Dist.evenly_spaced: need at least two points";
  Array.init n (fun i -> lo +. ((hi -. lo) *. float_of_int i /. float_of_int (n - 1)))

type histogram = { lo : float; hi : float; counts : int array; total : int }

let histogram ?(bins = 10) ~lo ~hi samples =
  if bins <= 0 then invalid_arg "Dist.histogram: bins must be positive";
  if hi <= lo then invalid_arg "Dist.histogram: empty range";
  let counts = Array.make bins 0 in
  let width = (hi -. lo) /. float_of_int bins in
  Array.iter
    (fun x ->
      let i = int_of_float ((x -. lo) /. width) in
      let i = Stdlib.max 0 (Stdlib.min (bins - 1) i) in
      counts.(i) <- counts.(i) + 1)
    samples;
  { lo; hi; counts; total = Array.length samples }

let histogram_counts h = Array.copy h.counts

let histogram_fractions h =
  let n = Stdlib.max 1 h.total in
  Array.map (fun c -> float_of_int c /. float_of_int n) h.counts

let bin_bounds h i =
  let bins = Array.length h.counts in
  if i < 0 || i >= bins then invalid_arg "Dist.bin_bounds";
  let width = (h.hi -. h.lo) /. float_of_int bins in
  (h.lo +. (width *. float_of_int i), h.lo +. (width *. float_of_int (i + 1)))

let counts_of_ints ~max_value xs =
  if max_value < 0 then invalid_arg "Dist.counts_of_ints";
  let counts = Array.make (max_value + 1) 0 in
  Array.iter
    (fun x ->
      let i = Stdlib.max 0 (Stdlib.min max_value x) in
      counts.(i) <- counts.(i) + 1)
    xs;
  counts
