(** Empirical distributions: CDFs, percentiles and histograms.

    The paper reports most results as cumulative distributions (Figs. 5, 6
    and 12b) or small histograms (Fig. 9); this module turns raw sample
    vectors into exactly those series. *)

type cdf
(** Empirical CDF over a finite sample. *)

val cdf_of_samples : float array -> cdf
(** Builds the ECDF; the input array is not modified. *)

val cdf_size : cdf -> int
val cdf_at : cdf -> float -> float
(** [cdf_at c x] is P(X <= x) in \[0, 1\]; 0 for an empty sample. *)

val fraction_at_least : cdf -> float -> float
(** [fraction_at_least c x] is P(X >= x); the paper's "x% of flows attain
    at least y Mbps" numbers. *)

val percentile : cdf -> float -> float
(** [percentile c p] for [p] in \[0, 100\], nearest-rank definition.
    Raises [Invalid_argument] on an empty sample or out-of-range [p]. *)

val cdf_series : cdf -> xs:float array -> (float * float) array
(** Sampled CDF curve [(x, 100 * P(X <= x))], percent on the y axis as in
    the paper's figures. *)

val evenly_spaced : lo:float -> hi:float -> n:int -> float array
(** [n] points from [lo] to [hi] inclusive; requires [n >= 2]. *)

type histogram

val histogram : ?bins:int -> lo:float -> hi:float -> float array -> histogram
(** Fixed-width histogram over \[lo, hi]; samples outside the range are
    clamped into the first/last bin.  Default 10 bins. *)

val histogram_counts : histogram -> int array
val histogram_fractions : histogram -> float array
val bin_bounds : histogram -> int -> float * float

val counts_of_ints : max_value:int -> int array -> int array
(** [counts_of_ints ~max_value xs] tallies integer samples into buckets
    [0..max_value], with values above [max_value] folded into the last
    bucket (the paper's "5+" style bucket in Fig. 9). *)
