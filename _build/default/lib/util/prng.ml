type t = { mutable s0 : int64; mutable s1 : int64; mutable s2 : int64; mutable s3 : int64 }

(* SplitMix64 step, used only to expand the seed into the xoshiro state and
   to derive split streams.  Constants from Steele, Lea & Flood (2014). *)
let splitmix64 x =
  let open Int64 in
  let z = add !x 0x9E3779B97F4A7C15L in
  x := z;
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let of_seed64 seed =
  let sm = ref seed in
  let s0 = splitmix64 sm in
  let s1 = splitmix64 sm in
  let s2 = splitmix64 sm in
  let s3 = splitmix64 sm in
  { s0; s1; s2; s3 }

let create ?(seed = 0x4d1f0) () = of_seed64 (Int64.of_int seed)
let copy t = { t with s0 = t.s0 }

let rotl x k = Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

let bits64 t =
  let open Int64 in
  let result = add (rotl (add t.s0 t.s3) 23) t.s0 in
  let tmp = shift_left t.s1 17 in
  t.s2 <- logxor t.s2 t.s0;
  t.s3 <- logxor t.s3 t.s1;
  t.s1 <- logxor t.s1 t.s2;
  t.s0 <- logxor t.s0 t.s3;
  t.s2 <- logxor t.s2 tmp;
  t.s3 <- rotl t.s3 45;
  result

let split t = of_seed64 (bits64 t)

(* Non-negative 62-bit value, safe to store in an OCaml int. *)
let bits62 t = Int64.to_int (Int64.shift_right_logical (bits64 t) 2)

let int t n =
  if n <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* Rejection sampling on 62-bit draws keeps the result exactly uniform. *)
  let bound = 0x3FFF_FFFF_FFFF_FFFF in
  let limit = bound - (bound mod n) in
  let rec draw () =
    let v = bits62 t in
    if v < limit then v mod n else draw ()
  in
  draw ()

let int_in t lo hi =
  if lo > hi then invalid_arg "Prng.int_in: empty range";
  lo + int t (hi - lo + 1)

let float t x =
  (* 53 random mantissa bits, as in the reference xoshiro double recipe. *)
  let v = Int64.to_int (Int64.shift_right_logical (bits64 t) 11) in
  x *. (float_of_int v *. 0x1.0p-53)

let bool t = Int64.logand (bits64 t) 1L = 1L

let exponential t ~mean =
  if mean <= 0. then invalid_arg "Prng.exponential: mean must be positive";
  let u = 1. -. float t 1.0 in
  -.mean *. log u

let pareto t ~shape ~scale =
  if shape <= 0. || scale <= 0. then invalid_arg "Prng.pareto: parameters must be positive";
  let u = 1. -. float t 1.0 in
  scale /. (u ** (1. /. shape))

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let sample_without_replacement t k n =
  if k > n || k < 0 then invalid_arg "Prng.sample_without_replacement";
  (* Partial Fisher-Yates: shuffle only the first k slots. *)
  let a = Array.init n (fun i -> i) in
  for i = 0 to k - 1 do
    let j = int_in t i (n - 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done;
  Array.sub a 0 k

let choose t a =
  if Array.length a = 0 then invalid_arg "Prng.choose: empty array";
  a.(int t (Array.length a))
