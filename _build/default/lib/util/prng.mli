(** Deterministic pseudo-random number generation.

    Every experiment in this repository takes an explicit seed and derives
    all of its randomness from a [Prng.t], so that figures and tests are
    bit-reproducible across runs and machines.  The generator is
    xoshiro256++ seeded through SplitMix64, the combination recommended by
    the xoshiro authors.  States are cheap records; [split] derives an
    independent stream, which lets concurrent or per-entity streams stay
    decorrelated without sharing mutable state. *)

type t
(** Mutable generator state. *)

val create : ?seed:int -> unit -> t
(** [create ~seed ()] builds a generator from a 63-bit seed (default
    [0x4d1f0]).  Equal seeds give equal streams. *)

val copy : t -> t
(** Independent snapshot of the current state. *)

val split : t -> t
(** [split t] advances [t] and returns a fresh generator whose stream is
    statistically independent of [t]'s subsequent output. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t n] is uniform in \[0, n); requires [n > 0].  Uses rejection
    sampling, so the distribution is exactly uniform. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in \[lo, hi\] inclusive; requires
    [lo <= hi]. *)

val float : t -> float -> float
(** [float t x] is uniform in \[0, x). *)

val bool : t -> bool

val exponential : t -> mean:float -> float
(** Exponentially distributed sample with the given mean; used for Poisson
    inter-arrival times. *)

val pareto : t -> shape:float -> scale:float -> float
(** Pareto-distributed sample (heavy-tailed flow sizes). *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val sample_without_replacement : t -> int -> int -> int array
(** [sample_without_replacement t k n] draws [k] distinct ints uniformly
    from \[0, n); requires [k <= n].  O(n) time, O(n) scratch. *)

val choose : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)
