(** Online summary statistics (Welford's algorithm).

    Accumulators are cheap mutable records used by the simulators to track
    link utilization, flow rates and queue occupancy without storing every
    sample. *)

type t

val create : unit -> t
val add : t -> float -> unit
val count : t -> int
val mean : t -> float
(** 0 when empty. *)

val variance : t -> float
(** Unbiased sample variance; 0 with fewer than two samples. *)

val stddev : t -> float
val min : t -> float
(** [infinity] when empty. *)

val max : t -> float
(** [neg_infinity] when empty. *)

val total : t -> float
val merge : t -> t -> t
(** Combine two accumulators as if all samples were added to one. *)

val pp : Format.formatter -> t -> unit

val correlation : float array -> float array -> float
(** Pearson correlation coefficient of two equal-length samples; 0 when
    either is constant.  @raise Invalid_argument on length mismatch. *)
