let pad cell width = cell ^ String.make (width - String.length cell) ' '

let render ~header ~rows =
  let ncols = List.length header in
  let normalize row =
    let len = List.length row in
    if len >= ncols then row else row @ List.init (ncols - len) (fun _ -> "")
  in
  let rows = List.map normalize rows in
  let widths = Array.make ncols 0 in
  let measure row = List.iteri (fun i cell ->
    if i < ncols then widths.(i) <- Stdlib.max widths.(i) (String.length cell)) row
  in
  measure header;
  List.iter measure rows;
  let render_row row =
    row
    |> List.mapi (fun i cell -> pad cell widths.(i))
    |> String.concat "  "
    |> String.trim
    |> fun s -> s ^ "\n"
  in
  let sep =
    Array.to_list widths
    |> List.map (fun w -> String.make w '-')
    |> String.concat "  "
    |> fun s -> s ^ "\n"
  in
  String.concat "" (render_row header :: sep :: List.map render_row rows)

let fmt_float ?(decimals = 2) x =
  let s = Printf.sprintf "%.*f" decimals x in
  (* trim trailing zeros but keep at least one digit after the point *)
  if String.contains s '.' then begin
    let len = String.length s in
    let rec last_keep i = if i > 0 && s.[i] = '0' then last_keep (i - 1) else i in
    let i = last_keep (len - 1) in
    let i = if s.[i] = '.' then i + 1 else i in
    String.sub s 0 (i + 1)
  end
  else s

let fmt_percent x = fmt_float ~decimals:1 (100. *. x) ^ "%"

let fmt_count n =
  let s = string_of_int (abs n) in
  let len = String.length s in
  let buf = Buffer.create (len + (len / 3)) in
  if n < 0 then Buffer.add_char buf '-';
  String.iteri
    (fun i c ->
      if i > 0 && (len - i) mod 3 = 0 then Buffer.add_char buf ',';
      Buffer.add_char buf c)
    s;
  Buffer.contents buf

let render_series ~title ~x_label ~columns ~rows =
  let header = x_label :: columns in
  let body =
    List.map
      (fun (x, ys) -> fmt_float ~decimals:3 x :: List.map (fmt_float ~decimals:3) ys)
      rows
  in
  Printf.sprintf "== %s ==\n%s" title (render ~header ~rows:body)
