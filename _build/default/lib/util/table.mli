(** Plain-text rendering of tables and figure series.

    The benchmark harness prints every reproduced table and figure as
    aligned ASCII, one row per line, matching the rows/series of the
    paper.  Keeping the renderer here lets tests assert on structured
    values while the harness owns presentation. *)

val render : header:string list -> rows:string list list -> string
(** Aligned table with a separator under the header.  Rows shorter than
    the header are padded with empty cells. *)

val render_series :
  title:string -> x_label:string -> columns:string list ->
  rows:(float * float list) list -> string
(** A figure as a table of series: first column is the x value, then one
    column per named series. *)

val fmt_float : ?decimals:int -> float -> string
(** Fixed-point with trailing-zero trimming (default 2 decimals). *)

val fmt_percent : float -> string
(** [fmt_percent 0.417] is ["41.7%"]. *)

val fmt_count : int -> string
(** Thousands separators: [fmt_count 44340 = "44,340"]. *)
