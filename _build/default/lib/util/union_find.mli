(** Disjoint-set forest with union by rank and path compression.

    Used by the topology generator to guarantee connectivity and by tests
    to verify it. *)

type t

val create : int -> t
(** [create n] builds [n] singleton sets labelled [0..n-1]. *)

val find : t -> int -> int
(** Canonical representative; compresses paths. *)

val union : t -> int -> int -> bool
(** [union t a b] merges the sets of [a] and [b]; returns [false] when they
    were already in the same set. *)

val same : t -> int -> int -> bool
val count_sets : t -> int
