test/test_bgp.ml: Alcotest Array Lazy List Mifo_bgp Mifo_topology Printf QCheck2 QCheck_alcotest
