test/test_core.ml: Alcotest Array Hashtbl Lazy List Mifo_bgp Mifo_core Mifo_topology Option QCheck2 QCheck_alcotest
