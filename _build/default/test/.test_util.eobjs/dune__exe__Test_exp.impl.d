test/test_exp.ml: Alcotest Array Lazy List Mifo_exp Mifo_testbed Mifo_topology Mifo_util Printf String
