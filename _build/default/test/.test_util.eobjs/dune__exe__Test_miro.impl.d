test/test_miro.ml: Alcotest Lazy List Mifo_bgp Mifo_core Mifo_miro Mifo_topology
