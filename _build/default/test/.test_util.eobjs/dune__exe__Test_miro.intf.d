test/test_miro.mli:
