test/test_netsim.ml: Alcotest Array Float Fun Lazy List Mifo_bgp Mifo_core Mifo_netsim Mifo_topology Mifo_traffic Mifo_util Option QCheck2 QCheck_alcotest
