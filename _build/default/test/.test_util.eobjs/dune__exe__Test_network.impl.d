test/test_network.ml: Alcotest Array Float List Mifo_bgp Mifo_core Mifo_netsim Mifo_topology Printf
