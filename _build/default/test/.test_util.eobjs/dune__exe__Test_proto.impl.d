test/test_proto.ml: Alcotest Array Hashtbl Lazy List Mifo_bgp Mifo_core Mifo_topology Mifo_util Printf QCheck2 QCheck_alcotest
