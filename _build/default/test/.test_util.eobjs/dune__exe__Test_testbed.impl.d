test/test_testbed.ml: Alcotest Array Mifo_bgp Mifo_core Mifo_netsim Mifo_testbed Printf
