test/test_topology.ml: Alcotest Array Lazy List Mifo_topology Mifo_util Printf QCheck2 QCheck_alcotest
