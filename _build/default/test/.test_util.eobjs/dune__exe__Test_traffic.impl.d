test/test_traffic.ml: Alcotest Array Hashtbl Lazy List Mifo_netsim Mifo_topology Mifo_traffic Mifo_util Printf
