test/test_util.ml: Alcotest Array Fun Hashtbl List Mifo_util QCheck2 QCheck_alcotest String
