(* Tests for the MIRO baseline (strict-policy path sets). *)

module Miro = Mifo_miro.Miro
module Routing = Mifo_bgp.Routing
module Deployment = Mifo_core.Deployment
module Generator = Mifo_topology.Generator
module As_graph = Mifo_topology.As_graph
module Relationship = Mifo_topology.Relationship

let gadget = lazy (let g = Generator.fig2a_gadget () in (g, Routing.compute g 0))
let topo = lazy (Generator.generate ~seed:61 ())

let test_candidates_same_class () =
  let _, rt = Lazy.force gadget in
  let deployment = Deployment.full ~n:4 in
  (* at AS 1 the default is the direct customer route; the peer-learned
     alternates are in a worse class, so strict MIRO offers none *)
  let c = Miro.candidates rt ~deployment ~src:1 in
  Alcotest.(check int) "no cross-class alternates" 0 (List.length c);
  Alcotest.(check int) "path count = default only" 1
    (Miro.available_path_count rt ~deployment ~src:1)

(* Two same-class provider routes: one default, one alternate. *)
let twin_providers () =
  let g =
    As_graph.create ~n:4
      ~edges:
        [
          (1, 0, As_graph.Provider_customer);
          (2, 0, As_graph.Provider_customer);
          (1, 3, As_graph.Provider_customer);
          (2, 3, As_graph.Provider_customer);
        ]
  in
  (g, Routing.compute g 0)

let test_candidates_found () =
  let _, rt = twin_providers () in
  let deployment = Deployment.full ~n:4 in
  let c = Miro.candidates rt ~deployment ~src:3 in
  Alcotest.(check int) "one same-class alternate" 1 (List.length c);
  Alcotest.(check int) "via the other provider" 2 (List.hd c).Routing.via;
  Alcotest.(check int) "two available paths" 2
    (Miro.available_path_count rt ~deployment ~src:3)

let test_capability_gates () =
  let _, rt = twin_providers () in
  (* source not capable: default only *)
  let d_no_src = Deployment.of_list ~n:4 [ 1; 2 ] in
  Alcotest.(check int) "incapable source" 1
    (Miro.available_path_count rt ~deployment:d_no_src ~src:3);
  (* neighbor not capable: its alternate cannot be negotiated *)
  let d_no_alt = Deployment.of_list ~n:4 [ 3; 1 ] in
  Alcotest.(check int) "incapable remote" 1
    (Miro.available_path_count rt ~deployment:d_no_alt ~src:3)

let test_cap_enforced () =
  let t = Lazy.force topo in
  let g = t.Generator.graph in
  let rt = Routing.compute g 0 in
  let deployment = Deployment.full ~n:(As_graph.n g) in
  for src = 1 to 400 do
    let c1 = Miro.candidates ~config:{ Miro.cap = 1 } rt ~deployment ~src in
    Alcotest.(check bool) "cap 1" true (List.length c1 <= 1);
    let c0 = Miro.candidates ~config:{ Miro.cap = 0 } rt ~deployment ~src in
    Alcotest.(check int) "cap 0" 0 (List.length c0)
  done

let test_alternate_paths_valid () =
  let t = Lazy.force topo in
  let g = t.Generator.graph in
  let rt = Routing.compute g 0 in
  let deployment = Deployment.full ~n:(As_graph.n g) in
  for src = 1 to 200 do
    List.iter
      (fun path ->
        Alcotest.(check int) "starts at the source" src (List.hd path);
        Alcotest.(check int) "ends at the destination" 0 (List.hd (List.rev path));
        Alcotest.(check int) "no repeated AS (BGP loop filter)"
          (List.length path)
          (List.length (List.sort_uniq compare path)))
      (Miro.alternate_paths rt ~deployment ~src)
  done

let test_available_count_bounds () =
  let t = Lazy.force topo in
  let g = t.Generator.graph in
  let rt = Routing.compute g 5 in
  let full = Deployment.full ~n:(As_graph.n g) in
  let half = Deployment.fraction ~n:(As_graph.n g) ~ratio:0.5 ~seed:1 in
  for src = 0 to 300 do
    let f = Miro.available_path_count rt ~deployment:full ~src in
    let h = Miro.available_path_count rt ~deployment:half ~src in
    Alcotest.(check bool) "at least the default" true (f >= 1 && h >= 1);
    Alcotest.(check bool) "partial <= full" true (h <= f);
    Alcotest.(check bool) "within cap + 1" true (f <= Miro.default_config.Miro.cap + 1)
  done

let () =
  Alcotest.run "mifo_miro"
    [
      ( "strict policy",
        [
          Alcotest.test_case "same-class filter" `Quick test_candidates_same_class;
          Alcotest.test_case "same-class alternates found" `Quick test_candidates_found;
          Alcotest.test_case "capability gates" `Quick test_capability_gates;
          Alcotest.test_case "cap enforced" `Quick test_cap_enforced;
          Alcotest.test_case "alternate paths valid" `Quick test_alternate_paths_valid;
          Alcotest.test_case "count bounds" `Quick test_available_count_bounds;
        ] );
    ]
