(* Tests for the AS-level and router-level packet network builders: the
   engine-in-the-loop counterparts of the flow-level experiments. *)

module As_graph = Mifo_topology.As_graph
module Router_level = Mifo_topology.Router_level
module Generator = Mifo_topology.Generator
module Routing_table = Mifo_bgp.Routing_table
module Prefix = Mifo_bgp.Prefix
module Deployment = Mifo_core.Deployment
module Engine = Mifo_core.Engine
module Packet = Mifo_core.Packet
module Packetsim = Mifo_netsim.Packetsim
module As_network = Mifo_netsim.As_network
module Router_network = Mifo_netsim.Router_network

(* The diamond where MIFO has something to do: both sources' default
   paths share the 3 -> 1 link while 3 -> 2 sits idle. *)
let diamond () =
  As_graph.create ~n:6
    ~edges:
      [
        (1, 0, As_graph.Provider_customer);
        (2, 0, As_graph.Provider_customer);
        (3, 1, As_graph.Provider_customer);
        (3, 2, As_graph.Provider_customer);
        (3, 4, As_graph.Provider_customer);
        (3, 5, As_graph.Provider_customer);
      ]

let finished results =
  Array.fold_left
    (fun acc (r : Packetsim.flow_result) -> if r.finish <> None then acc + 1 else acc)
    0 results

let makespan results =
  Array.fold_left
    (fun acc (r : Packetsim.flow_result) ->
      match r.finish with Some f -> Float.max acc f | None -> acc)
    0. results

let run_diamond deployment =
  let table = Routing_table.create (diamond ()) in
  let net = As_network.build table ~deployment ~host_rate:10e9 ~hosts:[ 0; 4; 5 ] () in
  ignore (As_network.add_transfer net ~src_as:4 ~dst_as:0 ~bytes:10_000_000 ~start:0.);
  ignore (As_network.add_transfer net ~src_as:5 ~dst_as:0 ~bytes:10_000_000 ~start:0.);
  As_network.run net;
  net

(* ---------- As_network ---------- *)

let test_as_network_bgp_baseline () =
  let net = run_diamond (Deployment.none ~n:6) in
  let results = Packetsim.flow_results net.As_network.sim in
  Alcotest.(check int) "both finish" 2 (finished results);
  let c = Packetsim.counters net.As_network.sim in
  Alcotest.(check int) "no deflection" 0 c.Packetsim.deflected;
  (* 2 x 80 Mbit sharing one 1 Gbps link: at least 160 ms *)
  Alcotest.(check bool) "bottleneck visible" true (makespan results > 0.16)

let test_as_network_mifo_relieves () =
  let bgp = run_diamond (Deployment.none ~n:6) in
  let mifo = run_diamond (Deployment.full ~n:6) in
  let bgp_time = makespan (Packetsim.flow_results bgp.As_network.sim) in
  let mifo_time = makespan (Packetsim.flow_results mifo.As_network.sim) in
  let c = Packetsim.counters mifo.As_network.sim in
  Alcotest.(check bool) "packets deflected" true (c.Packetsim.deflected > 0);
  Alcotest.(check int) "no valley drops (loop filter removed the bad alternates)" 0
    c.Packetsim.dropped_valley;
  Alcotest.(check bool)
    (Printf.sprintf "MIFO (%.3fs) faster than BGP (%.3fs)" mifo_time bgp_time)
    true
    (mifo_time < bgp_time *. 0.95)

let test_as_network_tracer_reconstructs_path () =
  let table = Routing_table.create (diamond ()) in
  let net =
    As_network.build table ~deployment:(Deployment.none ~n:6) ~host_rate:10e9
      ~hosts:[ 0; 4 ] ()
  in
  let hops = ref [] in
  Packetsim.set_tracer net.As_network.sim (fun _time node packet _action ->
      if packet.Packet.kind = Packet.Data && packet.Packet.seq = 0 && packet.Packet.flow = 0
      then hops := node :: !hops);
  ignore (As_network.add_transfer net ~src_as:4 ~dst_as:0 ~bytes:2_000 ~start:0.);
  As_network.run net;
  (* seq 0 of flow 0 crosses routers of 4, 3, 1, 0 in order *)
  let expected = List.map (fun v -> As_network.router net v) [ 4; 3; 1; 0 ] in
  Alcotest.(check (list int)) "hop sequence" expected (List.rev !hops)

let test_as_network_rejects_bad_host () =
  let table = Routing_table.create (diamond ()) in
  Alcotest.(check bool) "range check" true
    (match
       As_network.build table ~deployment:(Deployment.none ~n:6) ~hosts:[ 99 ] ()
     with
     | exception Invalid_argument _ -> true
     | _ -> false)

(* ---------- Router_level ---------- *)

let test_router_level_structure () =
  let g = diamond () in
  let expansion = Router_level.expand ~links_per_router:1 ~max_routers:4 ~seed:3 g ~expand:[ 3 ] in
  Alcotest.(check int) "AS3 split into 4 routers (degree 4)" 4
    (Array.length expansion.Router_level.routers_of_as.(3));
  Alcotest.(check int) "others single-router" 1
    (Array.length expansion.Router_level.routers_of_as.(0));
  Alcotest.(check int) "total routers" 9 (Router_level.router_count expansion);
  Alcotest.(check int) "full iBGP mesh of AS3" 6 (List.length expansion.Router_level.ibgp_pairs);
  (* every adjacency of AS3 is owned by one of its routers *)
  Array.iter
    (fun nb ->
      let r = expansion.Router_level.link_router (3, nb) in
      Alcotest.(check int) "owner belongs to AS3" 3 expansion.Router_level.as_of_router.(r))
    (As_graph.neighbors g 3);
  (* with links_per_router = 1, the 4 links of AS3 land on 4 distinct routers *)
  let owners =
    Array.to_list (Array.map (fun nb -> expansion.Router_level.link_router (3, nb)) (As_graph.neighbors g 3))
  in
  Alcotest.(check int) "distinct owners" 4 (List.length (List.sort_uniq compare owners))

let test_router_level_rejects_bad_expand () =
  let g = diamond () in
  Alcotest.(check bool) "range check" true
    (match Router_level.expand ~seed:1 g ~expand:[ 42 ] with
     | exception Invalid_argument _ -> true
     | _ -> false)

let test_router_level_expand_tier1 () =
  let topo =
    Generator.generate
      ~params:
        {
          Generator.default_params with
          Generator.ases = 120;
          tier1 = 4;
          content_providers = 2;
          content_peer_span = (2, 5);
        }
      ~seed:5 ()
  in
  let expansion = Router_level.expand_tier1 ~seed:9 topo in
  (* exactly the tier-1s are multi-router (their degrees far exceed
     links_per_router) *)
  Array.iteri
    (fun v role ->
      let k = Array.length expansion.Router_level.routers_of_as.(v) in
      match role with
      | Generator.Tier1 -> Alcotest.(check bool) "tier1 expanded" true (k >= 2)
      | Generator.Transit | Generator.Stub ->
        Alcotest.(check int) "others single" 1 k)
    topo.Generator.roles

(* ---------- Router_network ---------- *)

let test_router_network_tunnels () =
  let g = diamond () in
  let table = Routing_table.create g in
  let expansion = Router_level.expand ~links_per_router:1 ~max_routers:4 ~seed:5 g ~expand:[ 3 ] in
  let run dep =
    let net =
      Router_network.build table ~expansion ~deployment:dep ~host_rate:10e9
        ~hosts:[ 0; 4; 5 ] ()
    in
    ignore (Router_network.add_transfer net ~src_as:4 ~dst_as:0 ~bytes:10_000_000 ~start:0.);
    ignore (Router_network.add_transfer net ~src_as:5 ~dst_as:0 ~bytes:10_000_000 ~start:0.);
    Router_network.run net;
    net
  in
  let bgp = run (Deployment.none ~n:6) in
  let mifo = run (Deployment.full ~n:6) in
  let cb = Packetsim.counters bgp.Router_network.sim in
  let cm = Packetsim.counters mifo.Router_network.sim in
  Alcotest.(check int) "BGP: both flows finish" 2
    (finished (Packetsim.flow_results bgp.Router_network.sim));
  Alcotest.(check int) "MIFO: both flows finish" 2
    (finished (Packetsim.flow_results mifo.Router_network.sim));
  Alcotest.(check int) "BGP never tunnels" 0 cb.Packetsim.encapsulated;
  (* the alternative egress lives on a different border router, so MIFO
     deflections must ride IP-in-IP across the iBGP mesh *)
  Alcotest.(check bool) "MIFO tunnels over iBGP" true (cm.Packetsim.encapsulated > 0);
  Alcotest.(check int) "no TTL deaths" 0 cm.Packetsim.dropped_ttl

let test_router_network_rejects_mismatched_graph () =
  let g1 = diamond () in
  let g2 = diamond () in
  let expansion = Router_level.expand ~seed:1 g1 ~expand:[ 3 ] in
  let table = Routing_table.create g2 in
  Alcotest.(check bool) "graph identity check" true
    (match
       Router_network.build table ~expansion ~deployment:(Deployment.none ~n:6)
         ~hosts:[ 0 ] ()
     with
     | exception Invalid_argument _ -> true
     | _ -> false)

let () =
  Alcotest.run "mifo_network"
    [
      ( "as_network",
        [
          Alcotest.test_case "BGP baseline bottlenecks" `Quick test_as_network_bgp_baseline;
          Alcotest.test_case "MIFO relieves the bottleneck" `Slow test_as_network_mifo_relieves;
          Alcotest.test_case "tracer reconstructs the path" `Quick
            test_as_network_tracer_reconstructs_path;
          Alcotest.test_case "host validation" `Quick test_as_network_rejects_bad_host;
        ] );
      ( "router_level",
        [
          Alcotest.test_case "expansion structure" `Quick test_router_level_structure;
          Alcotest.test_case "validation" `Quick test_router_level_rejects_bad_expand;
          Alcotest.test_case "tier-1 expansion" `Quick test_router_level_expand_tier1;
        ] );
      ( "router_network",
        [
          Alcotest.test_case "deflections tunnel over iBGP" `Slow test_router_network_tunnels;
          Alcotest.test_case "graph identity" `Quick test_router_network_rejects_mismatched_graph;
        ] );
    ]
