(* Tests for Mifo_traffic: Poisson arrivals, the uniform matrix and the
   power-law content-provider matrix. *)

module Traffic = Mifo_traffic.Traffic
module Flowsim = Mifo_netsim.Flowsim
module Generator = Mifo_topology.Generator
module As_graph = Mifo_topology.As_graph
module Prng = Mifo_util.Prng

let topo = lazy (Generator.generate ~seed:51 ())

let test_poisson_monotone () =
  let rng = Prng.create ~seed:1 () in
  let starts = Traffic.poisson_starts rng ~rate:100. ~count:1000 in
  Alcotest.(check int) "count" 1000 (Array.length starts);
  for i = 1 to 999 do
    Alcotest.(check bool) "monotone" true (starts.(i) >= starts.(i - 1))
  done

let test_poisson_rate () =
  let rng = Prng.create ~seed:2 () in
  let starts = Traffic.poisson_starts rng ~rate:50. ~count:20_000 in
  let span = starts.(19_999) in
  let measured = 20_000. /. span in
  Alcotest.(check bool)
    (Printf.sprintf "measured rate %.1f ~ 50" measured)
    true
    (abs_float (measured -. 50.) < 2.5)

let test_poisson_validates () =
  let rng = Prng.create ~seed:1 () in
  Alcotest.(check bool) "bad rate" true
    (match Traffic.poisson_starts rng ~rate:0. ~count:1 with
     | exception Invalid_argument _ -> true
     | _ -> false)

let test_uniform_endpoints () =
  let rng = Prng.create ~seed:3 () in
  let flows = Traffic.uniform rng ~n_ases:50 ~count:2_000 ~rate:100. () in
  Array.iter
    (fun (f : Flowsim.flow_spec) ->
      Alcotest.(check bool) "src in range" true (f.Flowsim.src >= 0 && f.Flowsim.src < 50);
      Alcotest.(check bool) "dst in range" true (f.Flowsim.dst >= 0 && f.Flowsim.dst < 50);
      Alcotest.(check bool) "distinct endpoints" true (f.Flowsim.src <> f.Flowsim.dst);
      Alcotest.(check (float 1e-9)) "paper flow size" Traffic.default_size_bits
        f.Flowsim.size_bits)
    flows

let test_uniform_deterministic () =
  let f1 = Traffic.uniform (Prng.create ~seed:9 ()) ~n_ases:100 ~count:50 ~rate:10. () in
  let f2 = Traffic.uniform (Prng.create ~seed:9 ()) ~n_ases:100 ~count:50 ~rate:10. () in
  Alcotest.(check bool) "same flows" true (f1 = f2)

let test_zipf_weights () =
  let w = Traffic.zipf_weights ~alpha:1.0 ~n:100 in
  let total = Array.fold_left ( +. ) 0. w in
  Alcotest.(check (float 1e-9)) "normalized" 1.0 total;
  for i = 1 to 99 do
    Alcotest.(check bool) "monotone decreasing" true (w.(i) <= w.(i - 1))
  done;
  (* alpha = 0 is uniform *)
  let u = Traffic.zipf_weights ~alpha:0. ~n:10 in
  Alcotest.(check (float 1e-9)) "uniform when alpha 0" 0.1 u.(7)

let test_ranking_order () =
  let t = Lazy.force topo in
  let g = t.Generator.graph in
  let ranked = Traffic.content_provider_ranking g in
  Alcotest.(check int) "every AS ranked" (As_graph.n g) (Array.length ranked);
  let score v = Array.length (As_graph.providers g v) + Array.length (As_graph.peers g v) in
  for i = 1 to Array.length ranked - 1 do
    Alcotest.(check bool) "descending score" true (score ranked.(i - 1) >= score ranked.(i))
  done

let test_power_law_endpoints () =
  let t = Lazy.force topo in
  let g = t.Generator.graph in
  let rng = Prng.create ~seed:4 () in
  let providers = Array.sub (Traffic.content_provider_ranking g) 0 50 in
  let provider_set = Hashtbl.create 50 in
  Array.iter (fun p -> Hashtbl.replace provider_set p ()) providers;
  let flows = Traffic.power_law rng g ~alpha:1.0 ~providers ~count:1_000 ~rate:100. () in
  Array.iter
    (fun (f : Flowsim.flow_spec) ->
      Alcotest.(check bool) "src is a ranked provider" true
        (Hashtbl.mem provider_set f.Flowsim.src);
      Alcotest.(check bool) "dst is a stub" true (As_graph.is_stub g f.Flowsim.dst);
      Alcotest.(check bool) "distinct" true (f.Flowsim.src <> f.Flowsim.dst))
    flows

let test_power_law_skew () =
  let t = Lazy.force topo in
  let g = t.Generator.graph in
  let rng = Prng.create ~seed:5 () in
  let providers = Array.sub (Traffic.content_provider_ranking g) 0 20 in
  let flows = Traffic.power_law rng g ~alpha:1.2 ~providers ~count:5_000 ~rate:100. () in
  let top = providers.(0) in
  let from_top =
    Array.fold_left
      (fun acc (f : Flowsim.flow_spec) -> if f.Flowsim.src = top then acc + 1 else acc)
      0 flows
  in
  (* Zipf(1.2, 20): rank 1 carries ~30% of the mass *)
  Alcotest.(check bool)
    (Printf.sprintf "top provider carries %d/5000" from_top)
    true
    (from_top > 1_000 && from_top < 2_500)

let test_size_models () =
  let rng = Prng.create ~seed:8 () in
  Alcotest.(check (float 1e-9)) "fixed" 42. (Traffic.sample_size rng (Traffic.Fixed 42.));
  let stats = Mifo_util.Stats.create () in
  for _ = 1 to 20_000 do
    Mifo_util.Stats.add stats
      (Traffic.sample_size rng (Traffic.Pareto { shape = 2.0; mean_bits = 1e6 }))
  done;
  let mean = Mifo_util.Stats.mean stats in
  Alcotest.(check bool)
    (Printf.sprintf "Pareto mean %.3g near 1e6" mean)
    true
    (mean > 0.85e6 && mean < 1.1e6);
  Alcotest.(check bool) "truncated at 100x" true (Mifo_util.Stats.max stats <= 100e6);
  Alcotest.(check bool) "bad shape rejected" true
    (match Traffic.sample_size rng (Traffic.Pareto { shape = 1.0; mean_bits = 1. }) with
     | exception Invalid_argument _ -> true
     | _ -> false)

let test_size_model_in_generation () =
  let rng = Prng.create ~seed:9 () in
  let flows =
    Traffic.uniform rng ~n_ases:50 ~count:500 ~rate:100.
      ~size_model:(Traffic.Pareto { shape = 1.5; mean_bits = 8e6 })
      ()
  in
  let distinct =
    Array.to_list flows
    |> List.map (fun (f : Flowsim.flow_spec) -> f.Flowsim.size_bits)
    |> List.sort_uniq compare |> List.length
  in
  Alcotest.(check bool) "sizes actually vary" true (distinct > 400)

let test_power_law_validates () =
  let t = Lazy.force topo in
  let g = t.Generator.graph in
  let rng = Prng.create ~seed:6 () in
  Alcotest.(check bool) "empty providers" true
    (match Traffic.power_law rng g ~alpha:1.0 ~providers:[||] ~count:1 ~rate:1. () with
     | exception Invalid_argument _ -> true
     | _ -> false)

let () =
  Alcotest.run "mifo_traffic"
    [
      ( "poisson",
        [
          Alcotest.test_case "monotone arrival times" `Quick test_poisson_monotone;
          Alcotest.test_case "rate" `Slow test_poisson_rate;
          Alcotest.test_case "validation" `Quick test_poisson_validates;
        ] );
      ( "uniform",
        [
          Alcotest.test_case "endpoints" `Quick test_uniform_endpoints;
          Alcotest.test_case "deterministic" `Quick test_uniform_deterministic;
        ] );
      ( "power_law",
        [
          Alcotest.test_case "zipf weights" `Quick test_zipf_weights;
          Alcotest.test_case "provider ranking" `Quick test_ranking_order;
          Alcotest.test_case "endpoints" `Quick test_power_law_endpoints;
          Alcotest.test_case "skew" `Quick test_power_law_skew;
          Alcotest.test_case "validation" `Quick test_power_law_validates;
        ] );
      ( "size models",
        [
          Alcotest.test_case "fixed and Pareto" `Quick test_size_models;
          Alcotest.test_case "heavy-tailed generation" `Quick test_size_model_in_generation;
        ] );
    ]
