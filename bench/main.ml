(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (Table I, Figs. 5-9, Fig. 12), runs the ablation benches
   from DESIGN.md, and measures the hot paths with Bechamel.

   Usage:
     dune exec bench/main.exe              # everything
     dune exec bench/main.exe -- fig5 fig7 # a subset
     dune exec bench/main.exe -- micro     # only the microbenchmarks

   Scale via environment (documented in README):
     MIFO_ASES, MIFO_SEED, MIFO_FLOWS, MIFO_RATE, MIFO_DESTS,
     MIFO_TESTBED_MB, MIFO_TESTBED_FLOWS *)

module Exp = Mifo_exp.Experiments
module Ablations = Mifo_exp.Ablations
module Context = Mifo_exp.Context

let env_int name default =
  match Sys.getenv_opt name with
  | Some v -> (match int_of_string_opt v with Some i -> i | None -> default)
  | None -> default

let env_float name default =
  match Sys.getenv_opt name with
  | Some v -> (match float_of_string_opt v with Some f -> f | None -> default)
  | None -> default

let seed = env_int "MIFO_SEED" 42

let scale =
  {
    Context.default_scale with
    Context.flows = env_int "MIFO_FLOWS" Context.default_scale.Context.flows;
    arrival_rate = env_float "MIFO_RATE" Context.default_scale.Context.arrival_rate;
    dest_samples = env_int "MIFO_DESTS" Context.default_scale.Context.dest_samples;
  }

let params =
  let d = Mifo_topology.Generator.default_params in
  { d with Mifo_topology.Generator.ases = env_int "MIFO_ASES" d.Mifo_topology.Generator.ases }

let testbed_config =
  {
    Mifo_testbed.Testbed.default_config with
    Mifo_testbed.Testbed.flow_bytes = env_int "MIFO_TESTBED_MB" 10 * 1_000_000;
    flows_per_source = env_int "MIFO_TESTBED_FLOWS" 30;
  }

let context = lazy (Context.create ~params ~scale ~seed ())

(* Wall time per figure, collected for BENCH_routing.json. *)
let figure_times : (string * float) list ref = ref []

let timed name f =
  let t0 = Unix.gettimeofday () in
  let result = f () in
  let dt = Unix.gettimeofday () -. t0 in
  figure_times := !figure_times @ [ (name, dt) ];
  Printf.printf "%s\n[%s regenerated in %.1fs]\n\n%!" result name dt

let table1 () = timed "Table I" (fun () -> Exp.Table1.render (Exp.Table1.run (Lazy.force context)))
let fig5 () = timed "Fig. 5" (fun () -> Exp.Throughput.render_fig5 (Exp.Throughput.fig5 (Lazy.force context)))
let fig6 () = timed "Fig. 6" (fun () -> Exp.Throughput.render_fig6 (Exp.Throughput.fig6 (Lazy.force context)))
let fig7 () = timed "Fig. 7" (fun () -> Exp.Fig7.render (Exp.Fig7.run (Lazy.force context)))
let fig8 () = timed "Fig. 8" (fun () -> Exp.Fig8.render (Exp.Fig8.run (Lazy.force context)))
let fig9 () = timed "Fig. 9" (fun () -> Exp.Fig9.render (Exp.Fig9.run (Lazy.force context)))
let fig12 () = timed "Fig. 12" (fun () -> Exp.Fig12.render (Exp.Fig12.run ~config:testbed_config ()))

let ablations () =
  let ctx = Lazy.force context in
  timed "Ablation: tag-check (Fig. 2a gadget)" (fun () ->
      Ablations.Tag_check.render ~label:"Fig. 2(a) gadget"
        (Ablations.Tag_check.run_gadget ()));
  timed "Ablation: tag-check (generated topology)" (fun () ->
      Ablations.Tag_check.render ~label:"generated topology"
        (Ablations.Tag_check.run ctx));
  timed "Ablation: IP-in-IP" (fun () ->
      let config = { testbed_config with Mifo_testbed.Testbed.flows_per_source = 5 } in
      Ablations.Encap.render (Ablations.Encap.run ~config ()));
  timed "Ablation: selection rule" (fun () ->
      Ablations.Selection.render (Ablations.Selection.run ctx));
  timed "Ablation: control-plane overhead" (fun () ->
      Ablations.Overhead.render (Ablations.Overhead.run ctx));
  timed "Ablation: convergence dynamics" (fun () ->
      Ablations.Convergence.render (Ablations.Convergence.run ctx));
  timed "Ablation: failure recovery" (fun () ->
      Ablations.Failure.render (Ablations.Failure.run ctx));
  timed "Ablation: threshold sweep" (fun () ->
      Ablations.Threshold.render (Ablations.Threshold.run ctx))

(* --- Parallel route-computation benchmark + BENCH_routing.json --------- *)

type precompute_sample = { jobs : int; secs : float; dests_per_sec : float }

type routing_bench = {
  ases : int;
  links : int;
  dests : int;
  serial : precompute_sample;
  parallel : precompute_sample;
}

let routing_bench_result : routing_bench option ref = ref None

(* Throughput of [Routing_table.precompute] over [dests] destinations on
   a fresh (cold) table, serial vs. the MIFO_JOBS / ncores pool.  The
   parallel-vs-serial determinism is asserted by the test suite; this
   measures only the wall clock. *)
let routing_precompute_bench () =
  let module Parallel = Mifo_util.Parallel in
  let module Routing_table = Mifo_bgp.Routing_table in
  let ctx = Lazy.force context in
  let g = Context.graph ctx in
  let n = Mifo_topology.As_graph.n g in
  let k = Stdlib.min 500 n in
  let dests = Array.init k (fun i -> i * n / k) in
  let measure jobs =
    let pool = Parallel.create ~jobs () in
    let table = Routing_table.create g in
    let t0 = Unix.gettimeofday () in
    Routing_table.precompute ~pool table dests;
    let secs = Unix.gettimeofday () -. t0 in
    Parallel.shutdown pool;
    { jobs; secs; dests_per_sec = float_of_int k /. secs }
  in
  let serial = measure 1 in
  let parallel = measure (Stdlib.max 1 (Parallel.default_jobs ())) in
  let bench =
    { ases = n; links = Mifo_topology.As_graph.edge_count g; dests = k; serial; parallel }
  in
  routing_bench_result := Some bench;
  Printf.printf
    "== Parallel route precompute (%d dests, %d ASes) ==\n\
     jobs=1: %.2fs (%.0f dests/s)   jobs=%d: %.2fs (%.0f dests/s)   speedup: %.2fx\n\n%!"
    k n serial.secs serial.dests_per_sec parallel.jobs parallel.secs
    parallel.dests_per_sec
    (serial.secs /. parallel.secs)

let json_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (function
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let write_bench_json path =
  match !routing_bench_result with
  | None -> ()
  | Some b ->
    let sample s =
      Printf.sprintf "{\"jobs\": %d, \"secs\": %.6f, \"dests_per_sec\": %.1f}" s.jobs
        s.secs s.dests_per_sec
    in
    let figures =
      String.concat ", "
        (List.map
           (fun (name, dt) -> Printf.sprintf "\"%s\": %.3f" (json_escape name) dt)
           !figure_times)
    in
    let oc = open_out path in
    Printf.fprintf oc
      "{\n\
      \  \"machine\": {\"cores\": %d},\n\
      \  \"topology\": {\"ases\": %d, \"links\": %d},\n\
      \  \"precompute\": {\n\
      \    \"dests\": %d,\n\
      \    \"serial\": %s,\n\
      \    \"parallel\": %s,\n\
      \    \"speedup\": %.3f\n\
      \  },\n\
      \  \"figure_secs\": {%s}\n\
       }\n"
      (Domain.recommended_domain_count ())
      b.ases b.links b.dests (sample b.serial) (sample b.parallel)
      (b.serial.secs /. b.parallel.secs)
      figures;
    close_out oc;
    Printf.printf "[wrote %s]\n%!" path

(* --- Bechamel microbenchmarks of the hot paths ------------------------- *)

let micro () =
  let open Bechamel in
  Gc.compact ();
  let ctx = Lazy.force context in
  let g = Context.graph ctx in
  let n = Mifo_topology.As_graph.n g in
  let table = ctx.Context.table in
  let rt = Mifo_bgp.Routing_table.get table (n / 2) in
  (* A FIB with a realistic number of prefixes. *)
  let fib = Mifo_core.Fib.create () in
  for asn = 0 to Stdlib.min 4095 (n - 1) do
    Mifo_core.Fib.insert fib (Mifo_bgp.Prefix.of_as asn) ~out_port:(asn mod 8)
      ~alt_port:((asn + 1) mod 8) ()
  done;
  let dst = Mifo_bgp.Prefix.host_of_as (n / 2) 1 in
  let env =
    {
      Mifo_core.Engine.router_id = 0;
      fib;
      port_kind =
        (fun p ->
          if p = 7 then Mifo_core.Engine.Local
          else
            Mifo_core.Engine.Ebgp
              { neighbor_as = p; rel = Mifo_topology.Relationship.Customer });
      is_congested = (fun p -> p = 1);
      next_hop_router = (fun _ -> None);
      route_to_peer = (fun _ -> None);
    }
  in
  let packet = Mifo_core.Packet.make ~src:(Mifo_bgp.Prefix.host_of_as 1 1) ~dst ~flow:7 () in
  let deployment = Mifo_core.Deployment.full ~n in
  let tests =
    [
      Test.make ~name:"fib-lookup" (Staged.stage (fun () -> Mifo_core.Fib.lookup fib dst));
      (let trie =
         let t = ref Mifo_bgp.Lpm_trie.empty in
         for asn = 0 to Stdlib.min 4095 (n - 1) do
           t := Mifo_bgp.Lpm_trie.add (Mifo_bgp.Prefix.of_as asn) (asn mod 8) !t
         done;
         !t
       in
       Test.make ~name:"lpm-trie-lookup"
         (Staged.stage (fun () -> Mifo_bgp.Lpm_trie.lookup dst trie)));

      Test.make ~name:"engine-forward"
        (Staged.stage (fun () -> Mifo_core.Engine.forward env ~ingress:(Some 3) packet));
      Test.make ~name:"route-computation-per-dest"
        (Staged.stage (fun () -> Mifo_bgp.Routing.compute g 17));
      Test.make ~name:"rib-enumeration"
        (Staged.stage (fun () -> Mifo_bgp.Routing.rib rt (n / 3)));
      Test.make ~name:"path-count-dp-per-dest"
        (Staged.stage (fun () ->
             Mifo_bgp.Path_count.mifo_counts g rt
               ~capable:(Mifo_core.Deployment.to_fun deployment)));
      Test.make ~name:"tag-check"
        (Staged.stage (fun () ->
             Mifo_core.Policy.check ~tag:true ~downstream:Mifo_topology.Relationship.Peer));
    ]
  in
  let measure test =
    let instance = Toolkit.Instance.monotonic_clock in
    let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:true () in
    let raw = Benchmark.all cfg [ instance ] test in
    let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
    let results = Analyze.all ols instance raw in
    Hashtbl.iter
      (fun name ols ->
        match Analyze.OLS.estimates ols with
        | Some [ est ] -> Printf.printf "%-34s %12.1f ns/op\n%!" name est
        | Some _ | None -> Printf.printf "%-34s (no estimate)\n%!" name)
      results
  in
  routing_precompute_bench ();
  Printf.printf "== Microbenchmarks (monotonic clock) ==\n%!";
  List.iter measure tests;
  (* the global-table-sized FIB (the paper's 500K-prefix scale) is
     measured separately: its hundreds of MB of live data would distort
     the small benches' GC behaviour *)
  let rng = Mifo_util.Prng.create ~seed:99 () in
  let table = Mifo_bgp.Prefix_table.generate rng ~size:500_000 in
  let big_fib = Mifo_core.Fib.create () in
  Array.iter
    (fun (prefix, next_hop) ->
      Mifo_core.Fib.insert big_fib prefix ~out_port:next_hop ())
    table;
  let big_trie = Mifo_bgp.Prefix_table.load_trie table in
  let probe = (fst table.(123_456)).Mifo_bgp.Prefix.network in
  measure
    (Test.make ~name:"fib-lookup-500k-prefixes"
       (Staged.stage (fun () -> Mifo_core.Fib.lookup big_fib probe)));
  measure
    (Test.make ~name:"lpm-trie-lookup-500k-prefixes"
       (Staged.stage (fun () -> Mifo_bgp.Lpm_trie.lookup probe big_trie)));
  print_newline ()

let validate () =
  timed "Validation: flow-level vs packet-level"
    (fun () -> Mifo_exp.Validation.render (Mifo_exp.Validation.run ~seed ()))

(* [micro] runs first by default: the later experiments grow the heap by
   hundreds of MB, which would distort nanosecond-scale measurements. *)
let registry =
  [
    ("micro", micro);
    ("table1", table1);
    ("fig5", fig5);
    ("fig6", fig6);
    ("fig7", fig7);
    ("fig8", fig8);
    ("fig9", fig9);
    ("fig12", fig12);
    ("ablations", ablations);
    ("validate", validate);
  ]

let () =
  let requested =
    match Array.to_list Sys.argv with
    | _ :: (_ :: _ as names) -> names
    | _ -> List.map fst registry
  in
  List.iter
    (fun name ->
      match List.assoc_opt name registry with
      | Some f -> f ()
      | None ->
        Printf.eprintf "unknown bench %S; available: %s\n" name
          (String.concat ", " (List.map fst registry));
        exit 2)
    requested;
  (* machine-readable perf trajectory, one file per run (see ISSUE/PRs) *)
  write_bench_json "BENCH_routing.json"
