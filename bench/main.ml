(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (Table I, Figs. 5-9, Fig. 12), runs the ablation benches
   from DESIGN.md, and measures the hot paths with Bechamel.

   Usage:
     dune exec bench/main.exe              # everything
     dune exec bench/main.exe -- fig5 fig7 # a subset
     dune exec bench/main.exe -- micro     # only the microbenchmarks

   Scale via environment (documented in README):
     MIFO_ASES, MIFO_SEED, MIFO_FLOWS, MIFO_RATE, MIFO_DESTS,
     MIFO_TESTBED_MB, MIFO_TESTBED_FLOWS *)

module Exp = Mifo_exp.Experiments
module Ablations = Mifo_exp.Ablations
module Context = Mifo_exp.Context

let env_int name default =
  match Sys.getenv_opt name with
  | Some v -> (match int_of_string_opt v with Some i -> i | None -> default)
  | None -> default

let env_float name default =
  match Sys.getenv_opt name with
  | Some v -> (match float_of_string_opt v with Some f -> f | None -> default)
  | None -> default

let seed = env_int "MIFO_SEED" 42

(* Any bit-identity violation flips this; the process exits nonzero
   after the JSON is written, so CI fails loudly but the numbers are
   still on disk for debugging. *)
let bench_failed = ref false

let scale =
  {
    Context.default_scale with
    Context.flows = env_int "MIFO_FLOWS" Context.default_scale.Context.flows;
    arrival_rate = env_float "MIFO_RATE" Context.default_scale.Context.arrival_rate;
    dest_samples = env_int "MIFO_DESTS" Context.default_scale.Context.dest_samples;
  }

let params =
  let d = Mifo_topology.Generator.default_params in
  { d with Mifo_topology.Generator.ases = env_int "MIFO_ASES" d.Mifo_topology.Generator.ases }

let testbed_config =
  {
    Mifo_testbed.Testbed.default_config with
    Mifo_testbed.Testbed.flow_bytes = env_int "MIFO_TESTBED_MB" 10 * 1_000_000;
    flows_per_source = env_int "MIFO_TESTBED_FLOWS" 30;
  }

let context = lazy (Context.create ~params ~scale ~seed ())

(* Wall time per figure, collected for BENCH_routing.json. *)
let figure_times : (string * float) list ref = ref []

let timed name f =
  let t0 = Unix.gettimeofday () in
  let result = f () in
  let dt = Unix.gettimeofday () -. t0 in
  figure_times := !figure_times @ [ (name, dt) ];
  Printf.printf "%s\n[%s regenerated in %.1fs]\n\n%!" result name dt

let table1 () = timed "Table I" (fun () -> Exp.Table1.render (Exp.Table1.run (Lazy.force context)))
let fig5 () = timed "Fig. 5" (fun () -> Exp.Throughput.render_fig5 (Exp.Throughput.fig5 (Lazy.force context)))
let fig6 () = timed "Fig. 6" (fun () -> Exp.Throughput.render_fig6 (Exp.Throughput.fig6 (Lazy.force context)))
let fig7 () = timed "Fig. 7" (fun () -> Exp.Fig7.render (Exp.Fig7.run (Lazy.force context)))
let fig8 () = timed "Fig. 8" (fun () -> Exp.Fig8.render (Exp.Fig8.run (Lazy.force context)))
let fig9 () = timed "Fig. 9" (fun () -> Exp.Fig9.render (Exp.Fig9.run (Lazy.force context)))
let fig12 () = timed "Fig. 12" (fun () -> Exp.Fig12.render (Exp.Fig12.run ~config:testbed_config ()))

let ablations () =
  let ctx = Lazy.force context in
  timed "Ablation: tag-check (Fig. 2a gadget)" (fun () ->
      Ablations.Tag_check.render ~label:"Fig. 2(a) gadget"
        (Ablations.Tag_check.run_gadget ()));
  timed "Ablation: tag-check (generated topology)" (fun () ->
      Ablations.Tag_check.render ~label:"generated topology"
        (Ablations.Tag_check.run ctx));
  timed "Ablation: IP-in-IP" (fun () ->
      let config = { testbed_config with Mifo_testbed.Testbed.flows_per_source = 5 } in
      Ablations.Encap.render (Ablations.Encap.run ~config ()));
  timed "Ablation: selection rule" (fun () ->
      Ablations.Selection.render (Ablations.Selection.run ctx));
  timed "Ablation: control-plane overhead" (fun () ->
      Ablations.Overhead.render (Ablations.Overhead.run ctx));
  timed "Ablation: convergence dynamics" (fun () ->
      Ablations.Convergence.render (Ablations.Convergence.run ctx));
  timed "Ablation: failure recovery" (fun () ->
      Ablations.Failure.render (Ablations.Failure.run ctx));
  timed "Ablation: threshold sweep" (fun () ->
      Ablations.Threshold.render (Ablations.Threshold.run ctx))

(* --- Parallel route-computation benchmark + BENCH_routing.json --------- *)

type precompute_sample = { jobs : int; secs : float; dests_per_sec : float }

type routing_bench = {
  ases : int;
  links : int;
  dests : int;
  serial : precompute_sample;
  parallel : precompute_sample;
}

let routing_bench_result : routing_bench option ref = ref None

(* Engine forwarding throughput on a deflecting entry, single-alternative
   vs. a ranked pair (the ECMP bucket->slot spread) — filled by [micro],
   recorded in BENCH_routing.json. *)
type forward_bench = { fwd_k1_ns : float; fwd_k2_ns : float }

let forward_bench_result : forward_bench option ref = ref None

(* Throughput of [Routing_table.precompute] over [dests] destinations on
   a fresh (cold) table, serial vs. the MIFO_JOBS / ncores pool.  The
   parallel-vs-serial determinism is asserted by the test suite; this
   measures only the wall clock. *)
let routing_precompute_bench () =
  let module Parallel = Mifo_util.Parallel in
  let module Routing_table = Mifo_bgp.Routing_table in
  let ctx = Lazy.force context in
  let g = Context.graph ctx in
  let n = Mifo_topology.As_graph.n g in
  let k = Stdlib.min 500 n in
  let dests = Array.init k (fun i -> i * n / k) in
  let measure jobs =
    let pool = Parallel.create ~jobs () in
    let table = Routing_table.create g in
    let t0 = Unix.gettimeofday () in
    Routing_table.precompute ~pool table dests;
    let secs = Unix.gettimeofday () -. t0 in
    (* the jobs the pool actually runs, not the request — on a 1-core
       box MIFO_JOBS-less runs collapse to 1 and the JSON must say so *)
    let jobs = Parallel.jobs pool in
    Parallel.shutdown pool;
    { jobs; secs; dests_per_sec = float_of_int k /. secs }
  in
  let serial = measure 1 in
  let parallel = measure (Stdlib.max 1 (Parallel.default_jobs ())) in
  let bench =
    { ases = n; links = Mifo_topology.As_graph.edge_count g; dests = k; serial; parallel }
  in
  routing_bench_result := Some bench;
  Printf.printf
    "== Parallel route precompute (%d dests, %d ASes) ==\n\
     jobs=1: %.2fs (%.0f dests/s)   jobs=%d: %.2fs (%.0f dests/s)   speedup: %.2fx\n\n%!"
    k n serial.secs serial.dests_per_sec parallel.jobs parallel.secs
    parallel.dests_per_sec
    (serial.secs /. parallel.secs)

(* --- Full-Internet-scale routing + incremental re-verification bench --- *)

type check_bench = {
  chk_full_secs : float;  (* mean wall clock of a full As_check DFS *)
  chk_inc_secs : float;  (* mean wall clock of an incremental recheck *)
  chk_deltas : int;  (* rechecks timed (2 per FIB delta: disable + re-enable) *)
  chk_speedup : float;
  chk_verdicts_identical : bool;
}

type scale_bench = {
  sc_ases : int;
  sc_links : int;
  sc_dests : int;
  sc_jobs : int;
  sc_secs : float;
  sc_dests_per_sec : float;
  sc_peak_words : float;  (* routing.peak_words gauge: major-heap high water *)
  sc_rep_identical : bool;  (* CSR rib == boxed-oracle rib, every node *)
  sc_check : check_bench;
}

let scale_bench_result : scale_bench option ref = ref None

(* Graph + warm routing table handed from [scale44k_bench] to
   [check44k_bench] so the 44K topology is generated once per run. *)
let scale44k_ctx :
    (Mifo_topology.As_graph.t * Mifo_bgp.Routing_table.t * int array) option ref =
  ref None

(* The paper's evaluation scale: route computation throughput, peak
   memory, and full-vs-incremental static verification on the 44,340-AS
   preset (MIFO_44K_* shrink it for smoke runs).  The CSR representation
   is cross-checked against the boxed oracle on a full destination's
   RIBs, and every incremental verdict against a fresh full check —
   mismatches flip [bench_failed]. *)
let scale44k_bench () =
  let module Generator = Mifo_topology.Generator in
  let module As_graph = Mifo_topology.As_graph in
  let module Routing = Mifo_bgp.Routing in
  let module Routing_table = Mifo_bgp.Routing_table in
  let module Parallel = Mifo_util.Parallel in
  let module As_check = Mifo_analysis.As_check in
  let module Obs = Mifo_util.Obs in
  let ases = Stdlib.max 10 (env_int "MIFO_44K_ASES" 44_340) in
  let ndests = Stdlib.max 1 (env_int "MIFO_44K_DESTS" 32) in
  let ndeltas = Stdlib.max 1 (env_int "MIFO_44K_DELTAS" 12) in
  let params = { Generator.paper_scale_params with Generator.ases } in
  let topo = Obs.time_phase "bench.44k.generate" (fun () -> Generator.generate ~params ~seed ()) in
  let g = topo.Generator.graph in
  let n = As_graph.n g in
  let links = As_graph.edge_count g in
  Printf.printf "== Full-Internet scale (%d ASes, %d links) ==\n%!" n links;
  (* Route-computation throughput through the pool, with a bounded cache
     so 44K-node Routing.t values recycle instead of accumulating. *)
  let pool = Parallel.create ~jobs:(Stdlib.max 1 (Parallel.default_jobs ())) () in
  let jobs = Parallel.jobs pool in
  let table = Routing_table.create ~max_cached:16 g in
  let dests = Array.init ndests (fun i -> i * n / ndests) in
  Gc.compact ();
  let t0 = Unix.gettimeofday () in
  Routing_table.precompute ~pool table dests;
  let secs = Unix.gettimeofday () -. t0 in
  Parallel.shutdown pool;
  let dests_per_sec = float_of_int ndests /. secs in
  Printf.printf "route compute: %d dests in %.2fs (%.1f dests/s, jobs=%d)\n%!"
    ndests secs dests_per_sec jobs;
  (* CSR vs boxed oracle: same destination, every node's RIB equal. *)
  let d0 = dests.(Array.length dests / 2) in
  let rt_csr = Routing.compute ~rep:Routing.Csr g d0 in
  let rt_box = Routing.compute ~rep:Routing.Boxed g d0 in
  let rep_identical = ref true in
  for v = 0 to n - 1 do
    if Routing.rib rt_csr v <> Routing.rib rt_box v then rep_identical := false
  done;
  if not !rep_identical then begin
    Printf.printf "   <-- CSR / boxed RIB MISMATCH (dest %d)\n%!" d0;
    bench_failed := true
  end;
  (* Incremental vs full static verification under single-entry FIB
     deltas: disable then re-enable one alternative, recheck after each,
     and compare every verdict against a fresh full DFS. *)
  let inc = As_check.Inc.create g rt_csr in
  let full_time = ref 0. and full_runs = ref 0 in
  let inc_time = ref 0. and inc_runs = ref 0 in
  let verdicts_identical = ref true in
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (Unix.gettimeofday () -. t0, r)
  in
  let same_verdict (a : As_check.loop_result) (b : As_check.loop_result) =
    a.As_check.counterexample = b.As_check.counterexample
  in
  (* Deltas target nodes that actually hold an alternative. *)
  let deltas = ref [] in
  let v = ref 0 in
  while List.length !deltas < ndeltas && !v < n do
    if !v <> d0 && Routing.rib_size rt_csr !v >= 2 then
      deltas := (!v, Routing.rib_via rt_csr !v 1) :: !deltas;
    v := !v + (Stdlib.max 1 (n / (4 * ndeltas)))
  done;
  List.iter
    (fun (at, via) ->
      List.iter
        (fun enabled ->
          As_check.Inc.set_deflection inc ~at ~via ~enabled;
          let dt_inc, r_inc = time (fun () -> As_check.Inc.recheck inc) in
          let dt_full, r_full = time (fun () -> As_check.Inc.full_check inc) in
          inc_time := !inc_time +. dt_inc;
          incr inc_runs;
          full_time := !full_time +. dt_full;
          incr full_runs;
          if not (same_verdict r_inc r_full) then verdicts_identical := false)
        [ false; true ])
    !deltas;
  if not !verdicts_identical then begin
    Printf.printf "   <-- INCREMENTAL / FULL VERDICT MISMATCH\n%!";
    bench_failed := true
  end;
  let runs = Stdlib.max 1 !inc_runs in
  let chk_full_secs = !full_time /. float_of_int (Stdlib.max 1 !full_runs) in
  let chk_inc_secs = Stdlib.max 1e-9 (!inc_time /. float_of_int runs) in
  let check =
    {
      chk_full_secs;
      chk_inc_secs;
      chk_deltas = !inc_runs;
      chk_speedup = chk_full_secs /. chk_inc_secs;
      chk_verdicts_identical = !verdicts_identical;
    }
  in
  let peak_words = Obs.gauge_value "routing.peak_words" in
  Printf.printf
    "static check: full %.4fs vs incremental %.6fs per delta (%d rechecks, \
     %.0fx, verdicts identical: %b)\n\
     peak heap: %.1f MWords   rep identical: %b\n\n%!"
    check.chk_full_secs check.chk_inc_secs check.chk_deltas check.chk_speedup
    check.chk_verdicts_identical (peak_words /. 1e6) !rep_identical;
  scale_bench_result :=
    Some
      {
        sc_ases = n;
        sc_links = links;
        sc_dests = ndests;
        sc_jobs = jobs;
        sc_secs = secs;
        sc_dests_per_sec = dests_per_sec;
        sc_peak_words = peak_words;
        sc_rep_identical = !rep_identical;
        sc_check = check;
      };
  scale44k_ctx := Some (g, table, dests)

(* --- Property-suite verification bench at the 44K scale ----------------- *)

type prop_sample = { ps_secs : float; ps_states : int; ps_states_per_sec : float }

type check44k_bench = {
  ck_ases : int;
  ck_dests : int;
  ck_fails : int;  (* seeded resilience sample size per destination *)
  ck_loops : prop_sample;
  ck_delivery : prop_sample;
  ck_stretch : prop_sample;
  ck_resilience : prop_sample;
  ck_max_stretch : int;
  ck_res_sweep_secs : float;
  ck_res_full_secs : float;  (* the same links as N independent full checks *)
  ck_res_speedup : float;
  ck_parallel_identical : bool;
  ck_clean : bool;
  ck_peak_words : float;
}

let check44k_result : check44k_bench option ref = ref None

(* The {!Mifo_analysis.Props} suite over the 44K topology built by
   [scale44k_bench]: wall clock and states/sec per property on a sampled
   destination set, the certificate-based resilience sweep against the
   same links as independent full checks, and the parallel-vs-serial
   report identity (bit-equal JSON at jobs=1 vs the default pool).
   MIFO_44K_CHECK_DESTS / MIFO_44K_FAILS shrink it for smoke runs. *)
let check44k_bench () =
  match !scale44k_ctx with
  | None -> ()
  | Some (g, table, all_dests) ->
    let module As_graph = Mifo_topology.As_graph in
    let module Routing = Mifo_bgp.Routing in
    let module Routing_table = Mifo_bgp.Routing_table in
    let module Parallel = Mifo_util.Parallel in
    let module Props = Mifo_analysis.Props in
    let module Verifier = Mifo_analysis.Verifier in
    let module Report = Mifo_analysis.Report in
    let module Prng = Mifo_util.Prng in
    let n = As_graph.n g in
    let ncheck = Stdlib.max 1 (env_int "MIFO_44K_CHECK_DESTS" 8) in
    let fails = Stdlib.max 1 (env_int "MIFO_44K_FAILS" 64) in
    let dests =
      Array.to_list (Array.sub all_dests 0 (Stdlib.min ncheck (Array.length all_dests)))
    in
    Printf.printf "== Property suite at scale (%d ASes, %d dests, %d sampled fails) ==\n%!"
      n (List.length dests) fails;
    let time f =
      let t0 = Unix.gettimeofday () in
      let r = f () in
      (Unix.gettimeofday () -. t0, r)
    in
    let run props =
      Verifier.verify_props ~fail_links:fails ~seed ~props g ~table ~dests
    in
    let clean = ref true in
    let sample name props states_of =
      let dt, (rep : Report.t) = time (fun () -> run props) in
      if not (Report.ok rep) then clean := false;
      let states = states_of rep.Report.stats in
      Printf.printf "  %-10s %8.3fs  %9d states  %12.0f states/s\n%!" name dt states
        (float_of_int states /. dt);
      ( { ps_secs = dt; ps_states = states; ps_states_per_sec = float_of_int states /. dt },
        rep )
    in
    let loops, _ = sample "loops" [ Props.Loops ] (fun s -> s.Report.states_explored) in
    let delivery, _ =
      sample "delivery" [ Props.Delivery ] (fun s -> s.Report.delivery_states)
    in
    let stretch, stretch_rep =
      sample "stretch" [ Props.Stretch ] (fun s -> s.Report.stretch_states)
    in
    let resilience, res_rep =
      sample "resilience" [ Props.Resilience ] (fun s -> s.Report.failed_links)
    in
    (* The certificate sweep vs the same sampled links as independent full
       checks (loop DFS + delivery scan under each overlay, no
       certificates).  The verdict sets must agree. *)
    let res_full_secs, full_viols =
      time (fun () ->
          let viols = ref 0 in
          List.iter
            (fun d ->
              let rt = Routing_table.get table d in
              let candidates = ref [] in
              for u = n - 1 downto 0 do
                if u <> d && Routing.reachable rt u then candidates := u :: !candidates
              done;
              let candidates = Array.of_list !candidates in
              let chosen =
                if fails < Array.length candidates then begin
                  let rng = Prng.create ~seed:(seed + (31 * d)) () in
                  let idx =
                    Prng.sample_without_replacement rng fails (Array.length candidates)
                  in
                  Array.map (fun i -> candidates.(i)) idx
                end
                else candidates
              in
              Array.iter
                (fun u ->
                  match Routing.next_hop rt u with
                  | Some v when Routing.rib_size rt u >= 2 ->
                    let r =
                      Props.verify_dest ~fail_link:(u, v)
                        ~props:[ Props.Loops; Props.Delivery ] g rt
                    in
                    viols := !viols + List.length r.Report.violations
                  | _ -> ())
                chosen)
            dests;
          !viols)
    in
    let sweep_viols =
      List.length
        (List.filter
           (function
             | Report.Failure_loop _ | Report.Black_hole _ -> true | _ -> false)
           res_rep.Report.violations)
    in
    if sweep_viols <> full_viols then begin
      Printf.printf "   <-- RESILIENCE SWEEP / FULL-CHECK VERDICT MISMATCH (%d vs %d)\n%!"
        sweep_viols full_viols;
      bench_failed := true
    end;
    let res_speedup = res_full_secs /. Stdlib.max 1e-9 resilience.ps_secs in
    (* Bit-identical reports at any domain count: jobs=1 vs the default
       pool over the full suite. *)
    let pool1 = Parallel.create ~jobs:1 () in
    let rep_serial =
      Verifier.verify_props ~pool:pool1 ~fail_links:fails ~seed ~props:Props.all g
        ~table ~dests
    in
    Parallel.shutdown pool1;
    let rep_parallel = run Props.all in
    let parallel_identical =
      Report.to_json_string rep_serial = Report.to_json_string rep_parallel
    in
    if not parallel_identical then begin
      Printf.printf "   <-- PARALLEL / SERIAL REPORT MISMATCH\n%!";
      bench_failed := true
    end;
    let peak_words = float_of_int (Gc.quick_stat ()).Gc.top_heap_words in
    Printf.printf
      "  resilience sweep %.3fs vs %d full checks %.3fs (%.1fx)\n\
      \  max stretch %d   parallel identical: %b   clean: %b   peak heap %.1f MWords\n\n%!"
      resilience.ps_secs resilience.ps_states res_full_secs res_speedup
      stretch_rep.Report.stats.Report.max_stretch parallel_identical !clean
      (peak_words /. 1e6);
    check44k_result :=
      Some
        {
          ck_ases = n;
          ck_dests = List.length dests;
          ck_fails = fails;
          ck_loops = loops;
          ck_delivery = delivery;
          ck_stretch = stretch;
          ck_resilience = resilience;
          ck_max_stretch = stretch_rep.Report.stats.Report.max_stretch;
          ck_res_sweep_secs = resilience.ps_secs;
          ck_res_full_secs = res_full_secs;
          ck_res_speedup = res_speedup;
          ck_parallel_identical = parallel_identical;
          ck_clean = !clean;
          ck_peak_words = peak_words;
        }

let json_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (function
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let scale44k_json sc =
  let c = sc.sc_check in
  Printf.sprintf
    "{\n\
    \    \"ases\": %d,\n\
    \    \"links\": %d,\n\
    \    \"dests\": %d,\n\
    \    \"jobs\": %d,\n\
    \    \"secs\": %.3f,\n\
    \    \"dests_per_sec\": %.3f,\n\
    \    \"peak_words\": %.0f,\n\
    \    \"rep_identical\": %b,\n\
    \    \"check\": {\"full_secs\": %.6f, \"incremental_secs\": %.9f, \"speedup\": %.1f, \"deltas\": %d, \"verdicts_identical\": %b}\n\
    \  }"
    sc.sc_ases sc.sc_links sc.sc_dests sc.sc_jobs sc.sc_secs sc.sc_dests_per_sec
    sc.sc_peak_words sc.sc_rep_identical c.chk_full_secs c.chk_inc_secs
    c.chk_speedup c.chk_deltas c.chk_verdicts_identical

let write_bench_json path =
  match (!routing_bench_result, !forward_bench_result) with
  | None, None -> ()
  | routing, forward ->
    let cores = Domain.recommended_domain_count () in
    let precompute =
      match routing with
      | None -> ""
      | Some b ->
        let sample s =
          Printf.sprintf "{\"jobs\": %d, \"secs\": %.6f, \"dests_per_sec\": %.1f}" s.jobs
            s.secs s.dests_per_sec
        in
        (* A speedup quoted on a 1-core box (where the pool collapses to one
           worker) is noise, not a measurement — omit the field entirely. *)
        let speedup =
          if cores > 1 && b.parallel.jobs > 1 then
            Printf.sprintf ",\n    \"speedup\": %.3f" (b.serial.secs /. b.parallel.secs)
          else ""
        in
        Printf.sprintf
          "  \"topology\": {\"ases\": %d, \"links\": %d},\n\
          \  \"precompute\": {\n\
          \    \"dests\": %d,\n\
          \    \"serial\": %s,\n\
          \    \"parallel\": %s%s\n\
          \  },\n"
          b.ases b.links b.dests (sample b.serial) (sample b.parallel) speedup
    in
    let forward =
      match forward with
      | None -> ""
      | Some f ->
        Printf.sprintf
          "  \"forward\": {\"deflect_k1_ns\": %.1f, \"deflect_k2_ns\": %.1f},\n"
          f.fwd_k1_ns f.fwd_k2_ns
    in
    let scale44k =
      match !scale_bench_result with
      | None -> ""
      | Some sc -> Printf.sprintf "  \"scale44k\": %s,\n" (scale44k_json sc)
    in
    let check44k =
      match !check44k_result with
      | None -> ""
      | Some c ->
        let prop p =
          Printf.sprintf
            "{\"secs\": %.6f, \"states\": %d, \"states_per_sec\": %.1f}" p.ps_secs
            p.ps_states p.ps_states_per_sec
        in
        Printf.sprintf
          "  \"check44k\": {\n\
          \    \"ases\": %d,\n\
          \    \"dests\": %d,\n\
          \    \"fail_links\": %d,\n\
          \    \"loops\": %s,\n\
          \    \"delivery\": %s,\n\
          \    \"stretch\": %s,\n\
          \    \"resilience\": %s,\n\
          \    \"max_stretch\": %d,\n\
          \    \"resilience_sweep_secs\": %.6f,\n\
          \    \"resilience_full_secs\": %.6f,\n\
          \    \"resilience_speedup\": %.2f,\n\
          \    \"parallel_identical\": %b,\n\
          \    \"clean\": %b,\n\
          \    \"peak_words\": %.0f\n\
          \  },\n"
          c.ck_ases c.ck_dests c.ck_fails (prop c.ck_loops) (prop c.ck_delivery)
          (prop c.ck_stretch) (prop c.ck_resilience) c.ck_max_stretch
          c.ck_res_sweep_secs c.ck_res_full_secs c.ck_res_speedup
          c.ck_parallel_identical c.ck_clean c.ck_peak_words
    in
    let figures =
      String.concat ", "
        (List.map
           (fun (name, dt) -> Printf.sprintf "\"%s\": %.3f" (json_escape name) dt)
           !figure_times)
    in
    let oc = open_out path in
    Printf.fprintf oc
      "{\n\
      \  \"machine\": {\"cores\": %d},\n\
       %s%s%s%s\
      \  \"figure_secs\": {%s}\n\
       }\n"
      cores precompute forward scale44k check44k figures;
    close_out oc;
    Printf.printf "[wrote %s]\n%!" path

(* --- Simulator benchmarks + BENCH_sim.json ----------------------------- *)

module Flowsim = Mifo_netsim.Flowsim
module Obs = Mifo_util.Obs

type engine_sample = { epochs : int; solves : int; secs : float; epochs_per_sec : float }

type flowsim_size = {
  size_label : string;
  sim_ases : int;
  sim_links : int;
  sim_flows : int;
  sim_time : float;
  reference : engine_sample;
  incremental : engine_sample;
  identical : bool;  (* engines produced bit-identical throughputs *)
}

type pkt_engine_sample = { events : int; pkt_secs : float; events_per_sec : float }

type packetsim_size = {
  pkt_label : string;
  pkt_ases : int;
  pkt_flows : int;
  pkt_kb : int;
  heap : pkt_engine_sample;  (* Eventq.Heap, per-packet scheduling: the oracle *)
  wheel : pkt_engine_sample;  (* Eventq.Wheel + packet trains: the fast path *)
  pkt_identical : bool;  (* event counts, finish times, counters all bitwise equal *)
}

let flowsim_sizes : flowsim_size list ref = ref []
let packetsim_sizes : packetsim_size list ref = ref []

(* Flow-level simulator: wall time per epoch, reference engine (per-epoch
   Maxmin.allocate, the pre-optimization implementation kept as oracle)
   vs. the incremental solver with clean-epoch skipping.  Same topology,
   same workload, and — asserted here — bit-identical results. *)
let flowsim_bench_size ~label ~ases ~flows:count ~max_time =
  let module Generator = Mifo_topology.Generator in
  let topo =
    Generator.generate
      ~params:{ Generator.default_params with Generator.ases }
      ~seed ()
  in
  let g = topo.Generator.graph in
  let table = Mifo_bgp.Routing_table.create g in
  let n = Mifo_topology.As_graph.n g in
  let specs =
    Mifo_traffic.Traffic.uniform
      (Mifo_util.Prng.create ~seed:(seed + 7) ())
      ~n_ases:n ~count
      ~rate:(float_of_int count /. (0.5 *. max_time))
      ()
  in
  let dests =
    Array.of_list
      (List.sort_uniq Int.compare
         (Array.to_list
            (Array.map (fun (s : Flowsim.flow_spec) -> s.Flowsim.dst) specs)))
  in
  Mifo_bgp.Routing_table.precompute table dests;
  let deployment = Mifo_core.Deployment.full ~n in
  let run engine =
    Gc.compact ();
    let params = { Flowsim.default_params with Flowsim.engine; max_time } in
    let t0 = Unix.gettimeofday () in
    let r =
      Obs.time_phase
        (Printf.sprintf "bench.flowsim.%s" label)
        (fun () -> Flowsim.run ~params table (Flowsim.Mifo deployment) specs)
    in
    let secs = Unix.gettimeofday () -. t0 in
    let sample =
      {
        epochs = r.Flowsim.epochs;
        solves = r.Flowsim.solves;
        secs;
        epochs_per_sec = float_of_int r.Flowsim.epochs /. secs;
      }
    in
    (sample, Flowsim.throughputs r)
  in
  let reference, ref_tputs = run Flowsim.Reference in
  let incremental, inc_tputs = run Flowsim.Incremental in
  let identical =
    Array.length ref_tputs = Array.length inc_tputs
    && Array.for_all2
         (fun a b -> Int64.bits_of_float a = Int64.bits_of_float b)
         ref_tputs inc_tputs
  in
  let size =
    {
      size_label = label;
      sim_ases = n;
      sim_links = Mifo_topology.As_graph.edge_count g;
      sim_flows = count;
      sim_time = max_time;
      reference;
      incremental;
      identical;
    }
  in
  flowsim_sizes := !flowsim_sizes @ [ size ];
  Printf.printf
    "== Flowsim (%s: %d ASes, %d flows, %.0fs horizon) ==\n\
     reference:   %6d epochs, %6d solves, %6.2fs (%8.0f epochs/s)\n\
     incremental: %6d epochs, %6d solves, %6.2fs (%8.0f epochs/s)\n\
     speedup: %.2fx   bit-identical: %b\n\n%!"
    label n count max_time reference.epochs reference.solves reference.secs
    reference.epochs_per_sec incremental.epochs incremental.solves
    incremental.secs incremental.epochs_per_sec
    (reference.secs /. incremental.secs)
    identical

(* Packet-level simulator: events/sec under both eventq engines on the
   same workload, asserted bit-identical.  The heap sample also disables
   packet trains — it is the PR-4-era per-packet discipline kept as the
   oracle; the wheel sample is the full fast path (timing wheel + per-
   link trains).  Two topologies:

   - chain: every flow funnels into the last AS so the shared tail
     links queue, drop, and retransmit — the TCP hot paths;
   - dumbbell: two core routers, stub ASes split across them, every
     flow crossing the core link — >= 64 ASes without exceeding the
     packet TTL the way a 64-hop chain would.  The dumbbell is the
     event-queue scaling configuration: open-loop UDP blasts from
     20 Gb/s stubs into a 1 Gb/s core, with buffers sized to hold the
     whole offered load, build a backlog of hundreds of thousands of
     in-flight departures.  Per-packet heap scheduling pays O(log n)
     with cold caches on every event there; the timing wheel plus
     per-link trains (one queue entry per busy link, the backlog held
     in the link's FIFO) keeps the queue a few hundred entries deep. *)

module P = Mifo_netsim.Packetsim

let pkt_chain ~k ~nflows ~kb config =
  let module Engine = Mifo_core.Engine in
  let module Prefix = Mifo_bgp.Prefix in
  let module Rel = Mifo_topology.Relationship in
  let sim = P.create ~config () in
  let routers = Array.init k (fun i -> P.add_router sim ~as_id:(i + 1)) in
  let hosts =
    Array.init k (fun i -> P.add_host sim ~addr:(Prefix.host_of_as (i + 1) 1))
  in
  (* host access links *)
  let host_port =
    Array.init k (fun i ->
        let _, rh =
          P.connect sim ~a:hosts.(i) ~b:routers.(i) ~kind_ab:Engine.Local
            ~kind_ba:Engine.Local ~rate:1e9 ()
        in
        rh)
  in
  (* the chain, customer -> provider left to right *)
  let right = Array.make k (-1) and left = Array.make k (-1) in
  for i = 0 to k - 2 do
    let pi, pj =
      P.connect sim ~a:routers.(i) ~b:routers.(i + 1)
        ~kind_ab:(Engine.Ebgp { neighbor_as = i + 2; rel = Rel.Customer })
        ~kind_ba:(Engine.Ebgp { neighbor_as = i + 1; rel = Rel.Provider })
        ~rate:1e9 ()
    in
    right.(i) <- pi;
    left.(i + 1) <- pj
  done;
  for i = 0 to k - 1 do
    let fib = P.fib sim routers.(i) in
    for j = 0 to k - 1 do
      let out =
        if j = i then host_port.(i) else if j > i then right.(i) else left.(i)
      in
      Mifo_core.Fib.insert fib (Prefix.of_as (j + 1)) ~out_port:out ()
    done
  done;
  for f = 0 to nflows - 1 do
    ignore
      (P.add_flow sim
         ~src:hosts.(f mod (k - 1))
         ~dst:hosts.(k - 1)
         ~bytes:(kb * 1000)
         ~start:(0.001 *. float_of_int f))
  done;
  sim

(* Dumbbell: routers 0 and 1 are the core (peering link), stubs 2..k-1
   attach as customers — even ids to core 0, odd ids to core 1.  Flows
   are open-loop UDP blasts, left-side hosts -> right-side hosts, all
   crossing the slow core.  [queue_bits] is sized to the whole offered
   load so nothing drops: every queued packet is a scheduled departure,
   which is exactly the deep-backlog regime the eventq engines are
   being compared under. *)
let pkt_dumbbell ?(uplink_delay = fun _ -> 50e-6) ~k ~nflows ~kb config =
  let module Engine = Mifo_core.Engine in
  let module Prefix = Mifo_bgp.Prefix in
  let module Rel = Mifo_topology.Relationship in
  let config = { config with P.queue_bits = nflows * kb * 8000 } in
  let sim = P.create ~config () in
  let routers = Array.init k (fun i -> P.add_router sim ~as_id:(i + 1)) in
  let core_ab, core_ba =
    P.connect sim ~a:routers.(0) ~b:routers.(1)
      ~kind_ab:(Engine.Ebgp { neighbor_as = 2; rel = Rel.Peer })
      ~kind_ba:(Engine.Ebgp { neighbor_as = 1; rel = Rel.Peer })
      ~rate:1e9 ()
  in
  (* stub <-> core access; stub i hangs off core (i mod 2) *)
  let up = Array.make k (-1) in
  (* stub's port toward its core *)
  let down = Array.make k (-1) in
  (* core's port toward stub i *)
  let hosts = Array.make k (-1) in
  let host_port = Array.make k (-1) in
  for i = 2 to k - 1 do
    let core = i mod 2 in
    let ps, pc =
      P.connect sim ~a:routers.(i) ~b:routers.(core)
        ~kind_ab:(Engine.Ebgp { neighbor_as = core + 1; rel = Rel.Provider })
        ~kind_ba:(Engine.Ebgp { neighbor_as = i + 1; rel = Rel.Customer })
        ~rate:20e9 ~delay:(uplink_delay i) ()
    in
    up.(i) <- ps;
    down.(i) <- pc;
    hosts.(i) <- P.add_host sim ~addr:(Prefix.host_of_as (i + 1) 1);
    let hp, rp =
      P.connect sim ~a:hosts.(i) ~b:routers.(i) ~kind_ab:Engine.Local
        ~kind_ba:Engine.Local ~rate:20e9 ()
    in
    ignore hp;
    host_port.(i) <- rp
  done;
  (* FIBs: stubs default up; cores route own-side stubs down, rest across *)
  for i = 2 to k - 1 do
    let fib = P.fib sim routers.(i) in
    for j = 2 to k - 1 do
      let out = if j = i then host_port.(i) else up.(i) in
      Mifo_core.Fib.insert fib (Prefix.of_as (j + 1)) ~out_port:out ()
    done
  done;
  for core = 0 to 1 do
    let fib = P.fib sim routers.(core) in
    let across = if core = 0 then core_ab else core_ba in
    for j = 2 to k - 1 do
      let out = if j mod 2 = core then down.(j) else across in
      Mifo_core.Fib.insert fib (Prefix.of_as (j + 1)) ~out_port:out ()
    done
  done;
  let lefts = ref [] and rights = ref [] in
  for i = k - 1 downto 2 do
    if i mod 2 = 0 then lefts := hosts.(i) :: !lefts
    else rights := hosts.(i) :: !rights
  done;
  let lefts = Array.of_list !lefts and rights = Array.of_list !rights in
  for f = 0 to nflows - 1 do
    ignore
      (P.add_udp_flow sim
         ~src:lefts.(f mod Array.length lefts)
         ~dst:rights.(f mod Array.length rights)
         ~bytes:(kb * 1000)
         ~start:(0.0001 *. float_of_int f)
         ())
  done;
  sim

(* Fingerprint of everything a run can observe: event count, bitwise
   per-flow finish times, and the drop/deflection counters. *)
let pkt_fingerprint sim =
  let finishes =
    Array.map
      (fun (r : P.flow_result) ->
        match r.P.finish with
        | Some f -> Int64.bits_of_float f
        | None -> Int64.minus_one)
      (P.flow_results sim)
  in
  (P.events_processed sim, finishes, P.counters sim)

(* Each engine runs [repeats] times and reports its best wall clock —
   the standard discipline against scheduler noise.  Every repeat must
   reproduce the same fingerprint (the simulator is deterministic), so
   the repeats double as a determinism check at full bench scale. *)
let pkt_repeats = Stdlib.max 1 (env_int "MIFO_PKT_REPEATS" 2)

let pkt_run ~label ~build engine trains =
  let run_once () =
    Gc.compact ();
    let config =
      { P.default_config with P.eventq_engine = engine; packet_trains = trains }
    in
    let sim = build config in
    let t0 = Unix.gettimeofday () in
    Obs.time_phase (Printf.sprintf "bench.packetsim.%s" label) (fun () -> P.run sim);
    let secs = Unix.gettimeofday () -. t0 in
    (secs, pkt_fingerprint sim)
  in
  let secs0, fp = run_once () in
  let best = ref secs0 in
  for _ = 2 to pkt_repeats do
    let secs, fp' = run_once () in
    if fp' <> fp then begin
      Printf.printf "   <-- NONDETERMINISTIC RERUN (%s)\n%!" label;
      bench_failed := true
    end;
    if secs < !best then best := secs
  done;
  let events, _, _ = fp in
  ( {
      events;
      pkt_secs = !best;
      events_per_sec = float_of_int events /. !best;
    },
    fp )

let packetsim_bench_size ~label ~build ~ases:k ~nflows ~kb =
  let heap, fp_heap = pkt_run ~label ~build Mifo_netsim.Eventq.Heap false in
  let wheel, fp_wheel = pkt_run ~label ~build Mifo_netsim.Eventq.Wheel true in
  let e1, f1, c1 = fp_heap and e2, f2, c2 = fp_wheel in
  let identical = e1 = e2 && f1 = f2 && c1 = c2 in
  if not identical then bench_failed := true;
  packetsim_sizes :=
    !packetsim_sizes
    @ [
        {
          pkt_label = label;
          pkt_ases = k;
          pkt_flows = nflows;
          pkt_kb = kb;
          heap;
          wheel;
          pkt_identical = identical;
        };
      ];
  Printf.printf
    "== Packetsim (%s: %d ASes, %d flows of %d KB, best of %d) ==\n\
     heap  (per-packet):    %9d events, %6.2fs (%8.0f events/s)\n\
     wheel (packet trains): %9d events, %6.2fs (%8.0f events/s)\n\
     speedup: %.2fx   bit-identical: %b%s\n\n%!"
    label k nflows kb pkt_repeats heap.events heap.pkt_secs heap.events_per_sec wheel.events
    wheel.pkt_secs wheel.events_per_sec
    (heap.pkt_secs /. wheel.pkt_secs)
    identical
    (if identical then "" else "   <-- ENGINE MISMATCH")

let packetsim_bench () =
  let k = Stdlib.max 3 (env_int "MIFO_PKT_ASES" 8) in
  let nflows = Stdlib.max 1 (env_int "MIFO_PKT_FLOWS" 12) in
  let kb = Stdlib.max 1 (env_int "MIFO_PKT_KB" 200) in
  packetsim_bench_size ~label:"chain"
    ~build:(pkt_chain ~k ~nflows ~kb)
    ~ases:k ~nflows ~kb;
  let k2 = Stdlib.max 4 (env_int "MIFO_PKT2_ASES" 64) in
  let nflows2 = Stdlib.max 1 (env_int "MIFO_PKT2_FLOWS" 200) in
  let kb2 = Stdlib.max 1 (env_int "MIFO_PKT2_KB" 4000) in
  packetsim_bench_size ~label:"dumbbell"
    ~build:(pkt_dumbbell ~k:k2 ~nflows:nflows2 ~kb:kb2)
    ~ases:k2 ~nflows:nflows2 ~kb:kb2

(* --- Sharded packetsim ------------------------------------------------- *)

(* Conservative-window sharding benched against its own serial oracle:
   the same workload at domains=1 (the plain event loop) and at each
   requested shard count, asserted bit-identical.  The topologies get
   deterministic per-stub delay jitter so no cross-shard arrival shares
   an exact timestamp with an independently scheduled local event — the
   one tie class conservative windows cannot re-order (DESIGN.md).

   Honesty convention as in the routing bench: [jobs] records what the
   shared pool actually runs; on a 1-core box the windows execute
   serially under the fork/join barrier (slower than the serial loop,
   which is fine — bit-identity is the assertion) and no speedup is
   quoted. *)

type shard_sample = {
  sh_domains : int;  (* event loops actually created *)
  sh_secs : float;
  sh_cut : int;
  sh_lookahead : float;
  sh_windows : int;
}

type shard_size = {
  shard_label : string;
  shard_routers : int;
  shard_flows : int;
  shard_kb : int;
  shard_jobs : int;  (* pool size actually used for the windows *)
  shard_serial : pkt_engine_sample;
  shard_runs : shard_sample list;
  shard_identical : bool;
}

let shard_sizes : shard_size list ref = ref []

(* Deterministic, distinct-per-stub uplink latencies (all within
   [50us, 79us)): kills exact-timestamp ties across shard cuts. *)
let jittered_uplink i = 50e-6 *. (1. +. (float_of_int (((7 * i) + 3) mod 97) /. 173.))

let shard_bench_size ~label ~build ~routers ~nflows ~kb ~domains_list =
  let jobs = Mifo_util.Parallel.jobs (Mifo_util.Parallel.get_default ()) in
  let run_at domains =
    Gc.compact ();
    let config = { P.default_config with P.domains } in
    let sim = build config in
    let t0 = Unix.gettimeofday () in
    Obs.time_phase
      (Printf.sprintf "bench.packetsim.shard.%s.d%d" label domains)
      (fun () -> P.run sim);
    let secs = Unix.gettimeofday () -. t0 in
    (secs, pkt_fingerprint sim, P.shard_stats sim)
  in
  let serial_secs, serial_fp, _ = run_at 1 in
  let events, _, _ = serial_fp in
  let serial =
    {
      events;
      pkt_secs = serial_secs;
      events_per_sec = float_of_int events /. serial_secs;
    }
  in
  let identical = ref true in
  let runs =
    List.map
      (fun d ->
        let secs, fp, st = run_at d in
        if fp <> serial_fp then begin
          identical := false;
          bench_failed := true;
          Printf.printf "   <-- SHARD MISMATCH (%s, domains=%d)\n%!" label d
        end;
        {
          sh_domains = st.P.shards;
          sh_secs = secs;
          sh_cut = st.P.cut_links;
          sh_lookahead = st.P.lookahead;
          sh_windows = st.P.windows;
        })
      domains_list
  in
  shard_sizes :=
    !shard_sizes
    @ [
        {
          shard_label = label;
          shard_routers = routers;
          shard_flows = nflows;
          shard_kb = kb;
          shard_jobs = jobs;
          shard_serial = serial;
          shard_runs = runs;
          shard_identical = !identical;
        };
      ];
  Printf.printf
    "== Packetsim sharded (%s: %d routers, %d flows of %d KB, jobs=%d) ==\n\
     serial:      %9d events, %6.2fs (%8.0f events/s)\n%s\
     bit-identical: %b\n\n%!"
    label routers nflows kb jobs events serial_secs serial.events_per_sec
    (String.concat ""
       (List.map
          (fun s ->
            Printf.sprintf
              "  domains=%d: %6.2fs (%8.0f events/s), %d cut links, lookahead \
               %.0fus, %d windows\n"
              s.sh_domains s.sh_secs
              (float_of_int events /. s.sh_secs)
              s.sh_cut (s.sh_lookahead *. 1e6) s.sh_windows)
          runs))
    !identical

let shard_bench () =
  (* the 64-AS dumbbell leg, jittered *)
  let k = Stdlib.max 4 (env_int "MIFO_SHARD_ASES" 64) in
  let nflows = Stdlib.max 1 (env_int "MIFO_SHARD_FLOWS" 200) in
  let kb = Stdlib.max 1 (env_int "MIFO_SHARD_KB" 2000) in
  shard_bench_size ~label:"dumbbell"
    ~build:(pkt_dumbbell ~uplink_delay:jittered_uplink ~k ~nflows ~kb)
    ~routers:k ~nflows ~kb ~domains_list:[ 2; 4 ];
  (* the fat dumbbell: ~1000 routers, one AS per stub *)
  let k2 = Stdlib.max 4 (env_int "MIFO_SHARD2_ROUTERS" 1000) in
  let nflows2 = Stdlib.max 1 (env_int "MIFO_SHARD2_FLOWS" 400) in
  let kb2 = Stdlib.max 1 (env_int "MIFO_SHARD2_KB" 1000) in
  shard_bench_size ~label:"fat-dumbbell"
    ~build:(pkt_dumbbell ~uplink_delay:jittered_uplink ~k:k2 ~nflows:nflows2 ~kb:kb2)
    ~routers:k2 ~nflows:nflows2 ~kb:kb2 ~domains_list:[ 2; 4 ]

let sim () =
  let ases = Stdlib.max 10 (env_int "MIFO_SIM_ASES" 400) in
  let flows = Stdlib.max 2 (env_int "MIFO_SIM_FLOWS" 600) in
  let max_time = Float.max 0.1 (env_float "MIFO_SIM_TIME" 20.) in
  flowsim_bench_size ~label:"small" ~ases ~flows ~max_time;
  flowsim_bench_size ~label:"large" ~ases:(3 * ases) ~flows:(3 * flows) ~max_time;
  packetsim_bench ();
  shard_bench ()

(* phase.<name>.seconds gauges accumulated by Obs.time_phase across
   whatever ran this invocation — figures, benches, everything *)
let figure_secs_json () =
  match Obs.Json.parse (Obs.snapshot_json ()) with
  | exception Failure _ -> ""
  | json -> (
    match Obs.Json.member "gauges" json with
    | Some (Obs.Json.Obj gauges) ->
      String.concat ", "
        (List.filter_map
           (fun (name, v) ->
             match v with
             | Obs.Json.Num secs
               when String.length name > 14
                    && String.sub name 0 6 = "phase."
                    && String.sub name (String.length name - 8) 8 = ".seconds" ->
               Some
                 (Printf.sprintf "\"%s\": %.3f"
                    (json_escape
                       (String.sub name 6 (String.length name - 14)))
                    secs)
             | _ -> None)
           gauges)
    | _ -> "")

let write_sim_json path =
  match !flowsim_sizes with
  | [] -> ()
  | sizes ->
    let engine s =
      Printf.sprintf
        "{\"epochs\": %d, \"solves\": %d, \"secs\": %.6f, \"epochs_per_sec\": %.1f}"
        s.epochs s.solves s.secs s.epochs_per_sec
    in
    let size s =
      Printf.sprintf
        "    {\"label\": \"%s\", \"ases\": %d, \"links\": %d, \"flows\": %d, \
         \"max_time\": %.1f,\n\
        \     \"reference\": %s,\n\
        \     \"incremental\": %s,\n\
        \     \"speedup\": %.3f, \"bit_identical\": %b}"
        (json_escape s.size_label) s.sim_ases s.sim_links s.sim_flows s.sim_time
        (engine s.reference) (engine s.incremental)
        (s.reference.secs /. s.incremental.secs)
        s.identical
    in
    let pkt_engine s =
      Printf.sprintf
        "{\"events\": %d, \"secs\": %.6f, \"events_per_sec\": %.1f}" s.events
        s.pkt_secs s.events_per_sec
    in
    let pkt p =
      Printf.sprintf
        "    {\"label\": \"%s\", \"ases\": %d, \"flows\": %d, \"kb\": %d,\n\
        \     \"heap\": %s,\n\
        \     \"wheel\": %s,\n\
        \     \"speedup\": %.3f, \"bit_identical\": %b}"
        (json_escape p.pkt_label) p.pkt_ases p.pkt_flows p.pkt_kb
        (pkt_engine p.heap) (pkt_engine p.wheel)
        (p.heap.pkt_secs /. p.wheel.pkt_secs)
        p.pkt_identical
    in
    let packetsim =
      match !packetsim_sizes with
      | [] -> "null"
      | ps ->
        Printf.sprintf "[\n%s\n  ]" (String.concat ",\n" (List.map pkt ps))
    in
    let cores = Domain.recommended_domain_count () in
    let shard_run serial_events r =
      Printf.sprintf
        "{\"domains\": %d, \"secs\": %.6f, \"events_per_sec\": %.1f, \
         \"cut_links\": %d, \"lookahead_us\": %.1f, \"windows\": %d}"
        r.sh_domains r.sh_secs
        (float_of_int serial_events /. r.sh_secs)
        r.sh_cut (r.sh_lookahead *. 1e6) r.sh_windows
    in
    let shard s =
      (* Honesty rule shared with the routing bench: only quote a speedup
         when the pool actually ran the windows in parallel. *)
      let speedup =
        if cores > 1 && s.shard_jobs > 1 then
          match s.shard_runs with
          | best :: _ ->
            Printf.sprintf ", \"speedup\": %.3f"
              (s.shard_serial.pkt_secs
              /. List.fold_left (fun a r -> Float.min a r.sh_secs) best.sh_secs
                   s.shard_runs)
          | [] -> ""
        else ""
      in
      Printf.sprintf
        "    {\"label\": \"%s\", \"routers\": %d, \"flows\": %d, \"kb\": %d, \
         \"jobs\": %d,\n\
        \     \"serial\": %s,\n\
        \     \"runs\": [%s],\n\
        \     \"bit_identical\": %b%s}"
        (json_escape s.shard_label) s.shard_routers s.shard_flows s.shard_kb
        s.shard_jobs
        (pkt_engine s.shard_serial)
        (String.concat ", "
           (List.map (shard_run s.shard_serial.events) s.shard_runs))
        s.shard_identical speedup
    in
    let shard_json =
      match !shard_sizes with
      | [] -> "null"
      | ss -> Printf.sprintf "[\n%s\n  ]" (String.concat ",\n" (List.map shard ss))
    in
    let oc = open_out path in
    Printf.fprintf oc
      "{\n\
      \  \"machine\": {\"cores\": %d},\n\
      \  \"flowsim\": [\n%s\n  ],\n\
      \  \"packetsim\": %s,\n\
      \  \"shard\": %s,\n\
      \  \"figure_secs\": {%s}\n\
       }\n"
      cores
      (String.concat ",\n" (List.map size sizes))
      packetsim shard_json (figure_secs_json ());
    close_out oc;
    Printf.printf "[wrote %s]\n%!" path

(* --- Bechamel microbenchmarks of the hot paths ------------------------- *)

let micro () =
  let open Bechamel in
  Gc.compact ();
  let ctx = Lazy.force context in
  let g = Context.graph ctx in
  let n = Mifo_topology.As_graph.n g in
  let table = ctx.Context.table in
  let rt = Mifo_bgp.Routing_table.get table (n / 2) in
  (* A FIB with a realistic number of prefixes. *)
  let fib = Mifo_core.Fib.create () in
  for asn = 0 to Stdlib.min 4095 (n - 1) do
    Mifo_core.Fib.insert fib (Mifo_bgp.Prefix.of_as asn) ~out_port:(asn mod 8)
      ~alt_port:((asn + 1) mod 8) ()
  done;
  let dst = Mifo_bgp.Prefix.host_of_as (n / 2) 1 in
  let env =
    {
      Mifo_core.Engine.router_id = 0;
      fib;
      port_kind =
        (fun p ->
          if p = 7 then Mifo_core.Engine.Local
          else
            Mifo_core.Engine.Ebgp
              { neighbor_as = p; rel = Mifo_topology.Relationship.Customer });
      is_congested = (fun p -> p = 1);
      next_hop_router = (fun _ -> None);
      route_to_peer = (fun _ -> None);
    }
  in
  let packet = Mifo_core.Packet.make ~src:(Mifo_bgp.Prefix.host_of_as 1 1) ~dst ~flow:7 () in
  let deployment = Mifo_core.Deployment.full ~n in
  let tests =
    [
      Test.make ~name:"fib-lookup" (Staged.stage (fun () -> Mifo_core.Fib.lookup fib dst));
      (let trie =
         let t = ref Mifo_bgp.Lpm_trie.empty in
         for asn = 0 to Stdlib.min 4095 (n - 1) do
           t := Mifo_bgp.Lpm_trie.add (Mifo_bgp.Prefix.of_as asn) (asn mod 8) !t
         done;
         !t
       in
       Test.make ~name:"lpm-trie-lookup"
         (Staged.stage (fun () -> Mifo_bgp.Lpm_trie.lookup dst trie)));

      Test.make ~name:"engine-forward"
        (Staged.stage (fun () -> Mifo_core.Engine.forward env ~ingress:(Some 3) packet));
      Test.make ~name:"route-computation-per-dest"
        (Staged.stage (fun () -> Mifo_bgp.Routing.compute g 17));
      Test.make ~name:"rib-enumeration"
        (Staged.stage (fun () -> Mifo_bgp.Routing.rib rt (n / 3)));
      Test.make ~name:"path-count-dp-per-dest"
        (Staged.stage (fun () ->
             Mifo_bgp.Path_count.mifo_counts g rt
               ~capable:(Mifo_core.Deployment.to_fun deployment)));
      Test.make ~name:"tag-check"
        (Staged.stage (fun () ->
             Mifo_core.Policy.check ~tag:true ~downstream:Mifo_topology.Relationship.Peer));
    ]
  in
  let measure_est test =
    let instance = Toolkit.Instance.monotonic_clock in
    let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:true () in
    let raw = Benchmark.all cfg [ instance ] test in
    let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
    let results = Analyze.all ols instance raw in
    let est = ref 0. in
    Hashtbl.iter
      (fun name ols ->
        match Analyze.OLS.estimates ols with
        | Some [ e ] ->
          Printf.printf "%-34s %12.1f ns/op\n%!" name e;
          est := e
        | Some _ | None -> Printf.printf "%-34s (no estimate)\n%!" name)
      results;
    !est
  in
  let measure test = ignore (measure_est test) in
  Printf.printf "== Microbenchmarks (monotonic clock) ==\n%!";
  List.iter measure tests;
  (* k=1 vs k=2 forwarding on a deflecting entry: the default egress is
     the congested port, every bucket is deflected, so each forward takes
     the alternative path — k=2 additionally pays the bucket->slot spread. *)
  let dfib = Mifo_core.Fib.create () in
  Mifo_core.Fib.insert dfib (Mifo_bgp.Prefix.of_as 1) ~out_port:1 ();
  let dentry =
    match Mifo_core.Fib.find dfib (Mifo_bgp.Prefix.of_as 1) with
    | Some e -> e
    | None -> assert false
  in
  Mifo_core.Fib.set_deflect_buckets dentry Mifo_core.Fib.buckets;
  let denv = { env with Mifo_core.Engine.fib = dfib } in
  let dpkt =
    Mifo_core.Packet.make ~src:(Mifo_bgp.Prefix.host_of_as 2 1)
      ~dst:(Mifo_bgp.Prefix.host_of_as 1 1) ~flow:5 ()
  in
  Mifo_core.Fib.set_alt_port dentry (Some 2);
  let fwd_k1_ns =
    measure_est
      (Test.make ~name:"engine-forward-deflect-k1"
         (Staged.stage (fun () -> Mifo_core.Engine.forward denv ~ingress:(Some 3) dpkt)))
  in
  Mifo_core.Fib.set_alts dentry [ 2; 4 ];
  let fwd_k2_ns =
    measure_est
      (Test.make ~name:"engine-forward-deflect-k2"
         (Staged.stage (fun () -> Mifo_core.Engine.forward denv ~ingress:(Some 3) dpkt)))
  in
  forward_bench_result := Some { fwd_k1_ns; fwd_k2_ns };
  (* the global-table-sized FIB (the paper's 500K-prefix scale) is
     measured separately: its hundreds of MB of live data would distort
     the small benches' GC behaviour *)
  let rng = Mifo_util.Prng.create ~seed:99 () in
  let table = Mifo_bgp.Prefix_table.generate rng ~size:500_000 in
  let big_fib = Mifo_core.Fib.create () in
  Array.iter
    (fun (prefix, next_hop) ->
      Mifo_core.Fib.insert big_fib prefix ~out_port:next_hop ())
    table;
  let big_trie = Mifo_bgp.Prefix_table.load_trie table in
  let probe = (fst table.(123_456)).Mifo_bgp.Prefix.network in
  measure
    (Test.make ~name:"fib-lookup-500k-prefixes"
       (Staged.stage (fun () -> Mifo_core.Fib.lookup big_fib probe)));
  measure
    (Test.make ~name:"lpm-trie-lookup-500k-prefixes"
       (Staged.stage (fun () -> Mifo_bgp.Lpm_trie.lookup probe big_trie)));
  print_newline ()

let validate () =
  timed "Validation: flow-level vs packet-level"
    (fun () -> Mifo_exp.Validation.render (Mifo_exp.Validation.run ~seed ()))

(* The routing/verification track: precompute throughput on the default
   graph, then the 44,340-AS scale run (CSR RIBs, peak-heap gauge,
   incremental re-verification vs the full-DFS oracle). *)
let routing () =
  routing_precompute_bench ();
  scale44k_bench ();
  check44k_bench ()

(* [micro] runs first by default: the later experiments grow the heap by
   hundreds of MB, which would distort nanosecond-scale measurements. *)
let registry =
  [
    ("micro", micro);
    ("routing", routing);
    ("sim", sim);
    ("table1", table1);
    ("fig5", fig5);
    ("fig6", fig6);
    ("fig7", fig7);
    ("fig8", fig8);
    ("fig9", fig9);
    ("fig12", fig12);
    ("ablations", ablations);
    ("validate", validate);
  ]

let () =
  let requested =
    match Array.to_list Sys.argv with
    | _ :: (_ :: _ as names) -> names
    | _ -> List.map fst registry
  in
  List.iter
    (fun name ->
      match List.assoc_opt name registry with
      | Some f -> f ()
      | None ->
        Printf.eprintf "unknown bench %S; available: %s\n" name
          (String.concat ", " (List.map fst registry));
        exit 2)
    requested;
  (* machine-readable perf trajectory, one file per run (see ISSUE/PRs).
     MIFO_BENCH_ROUTING_OUT / MIFO_BENCH_SIM_OUT redirect the JSON so
     smoke runs (make bench-smoke) don't clobber the committed full-size
     numbers. *)
  write_bench_json
    (match Sys.getenv_opt "MIFO_BENCH_ROUTING_OUT" with
    | Some p -> p
    | None -> "BENCH_routing.json");
  write_sim_json
    (match Sys.getenv_opt "MIFO_BENCH_SIM_OUT" with
    | Some p -> p
    | None -> "BENCH_sim.json");
  if !bench_failed then begin
    prerr_endline "bench: oracle representations disagreed (bit-identity broken)";
    exit 1
  end
