(* mifo-lint: determinism and domain-safety gate, stdlib only.

   Three rule families, enforced over every .ml file under the given
   directories (default: lib bin test examples — bench/ is exempt, its
   wall-clock timing is the point):

   - Determinism: the simulators must be bit-reproducible from their
     seeds, so wall-clock reads ([Unix.gettimeofday]) and the global
     self-seeded PRNG ([Random.self_init], unseeded [Random.int] & co.)
     are banned; randomness goes through the seeded [Mifo_util.Prng].

   - Domain safety: modules whose values are shared across domains by
     design (Routing, Routing_table, Obs) may not use a bare [Hashtbl]
     without a [Mutex] in the same file — the OCaml runtime does not
     make [Hashtbl] atomic, and a silent race there corrupts routing
     state under the multicore fan-out.

   - Simulator hot paths: polymorphic comparison ([compare] /
     [Stdlib.compare]) is banned in lib/netsim/ — it walks the runtime
     representation on every call, which is both slow on the simulators'
     inner loops and fragile (it would traverse whole records if a
     comparator's argument type drifted).  Use the monomorphic
     [Float.compare] / [Int.compare] (identical orders on those types).

   A finding can be waived for one line with a [lint:allow] marker.
   Exit status: 0 clean, 1 findings. *)

let banned_substrings =
  [
    ("Unix.gettimeofday", "wall-clock read breaks seeded determinism");
    ("Unix.time", "wall-clock read breaks seeded determinism");
    ("Random.self_init", "self-seeded global PRNG is nondeterministic");
    ("Random.State.make_self_init", "self-seeded PRNG state is nondeterministic");
    ("Random.int", "unseeded global PRNG; use Mifo_util.Prng");
    ("Random.float", "unseeded global PRNG; use Mifo_util.Prng");
    ("Random.bool", "unseeded global PRNG; use Mifo_util.Prng");
    ("Random.bits", "unseeded global PRNG; use Mifo_util.Prng");
    ("Random.full_int", "unseeded global PRNG; use Mifo_util.Prng");
    ("Random.nativeint", "unseeded global PRNG; use Mifo_util.Prng");
  ]

(* Files shared across domains: a bare Hashtbl here needs a Mutex. *)
let domain_shared = [ "routing.ml"; "routing_table.ml"; "obs.ml" ]

(* Data-plane hot paths (lib/bgp, lib/core): new bare [Hashtbl] use is
   banned — the CSR RIB arena and the open-addressed flat FIB are the
   representations there, and a boxed hash table on those paths undoes
   the 44K-scale memory/locality work.  Oracle representations and
   mutex-guarded control-plane caches carry explicit [lint:allow]
   waivers; pure control-plane parsers are exempt wholesale. *)
let no_hashtbl_dirs = [ "bgp"; "core"; "analysis" ]
let no_hashtbl_exempt = [ "bgp_proto.ml"; "prefix_table.ml" ]

(* Library code reports through {!Report} / {!Obs.Json}; writing to
   stdout from lib/ bypasses the JSON contract and interleaves with the
   drivers' own output under the domain fan-out. *)
let no_stdout_prints =
  [
    ("Printf.printf", "stdout print in lib/; report through Report/Obs.Json");
    ("print_endline", "stdout print in lib/; report through Report/Obs.Json");
  ]

let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m > 0 && go 0

(* Does [line] use the polymorphic [compare]?  A match is the bare word
   "compare" not preceded by '.' (so [Float.compare] / [Int.compare] /
   [String.compare] pass) or an identifier character (so [my_compare]
   passes), plus the explicit [Stdlib.compare].  Substring-based like the
   rest of this linter: comments and strings are not parsed, use a
   [lint:allow] waiver for prose hits. *)
let uses_polymorphic_compare line =
  if contains ~sub:"Stdlib.compare" line then true
  else begin
    let n = String.length line in
    let m = String.length "compare" in
    let is_ident c =
      (c >= 'a' && c <= 'z')
      || (c >= 'A' && c <= 'Z')
      || (c >= '0' && c <= '9')
      || c = '_' || c = '\'' || c = '.'
    in
    let rec go i =
      if i + m > n then false
      else if
        String.sub line i m = "compare"
        && (i = 0 || not (is_ident line.[i - 1]))
        && (i + m = n || not (is_ident line.[i + m]))
      then true
      else go (i + 1)
    in
    go 0
  end

(* Directories whose .ml files sit on simulator hot paths. *)
let hot_path_dirs = [ "netsim" ]

let findings = ref 0

let report path line_no line msg =
  incr findings;
  Printf.printf "%s:%d: %s\n  %s\n" path line_no msg (String.trim line)

let lint_file path =
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> close_in ic);
  let lines = Array.of_list (List.rev !lines) in
  let dir = Filename.basename (Filename.dirname path) in
  let on_hot_path = List.mem dir hot_path_dirs in
  let no_hashtbl =
    List.mem dir no_hashtbl_dirs
    && not (List.mem (Filename.basename path) no_hashtbl_exempt)
  in
  let in_lib =
    let prefix = "lib" ^ Filename.dir_sep in
    let n = String.length prefix in
    (String.length path >= n && String.sub path 0 n = prefix)
    || contains ~sub:(Filename.dir_sep ^ prefix) path
  in
  Array.iteri
    (fun i line ->
      if not (contains ~sub:"lint:allow" line) then begin
        List.iter
          (fun (sub, msg) ->
            if contains ~sub line then report path (i + 1) line (sub ^ ": " ^ msg))
          banned_substrings;
        if on_hot_path && uses_polymorphic_compare line then
          report path (i + 1) line
            "polymorphic compare on a simulator hot path; use Float.compare / \
             Int.compare (or waive with lint:allow)";
        if no_hashtbl && contains ~sub:"Hashtbl." line then
          report path (i + 1) line
            "bare Hashtbl on a data-plane hot path; use the flat CSR/open-addressed \
             representations (or waive an oracle with lint:allow)";
        if in_lib then
          List.iter
            (fun (sub, msg) ->
              if contains ~sub line then report path (i + 1) line (sub ^ ": " ^ msg))
            no_stdout_prints
      end)
    lines;
  if List.mem (Filename.basename path) domain_shared then begin
    let whole = String.concat "\n" (Array.to_list lines) in
    if contains ~sub:"Hashtbl." whole && not (contains ~sub:"Mutex" whole) then begin
      incr findings;
      Printf.printf "%s: bare Hashtbl in a domain-shared module without a Mutex\n" path
    end
  end

let rec walk path =
  if Sys.is_directory path then
    Array.iter
      (fun entry ->
        if entry <> "_build" && entry <> "bench" then walk (Filename.concat path entry))
      (Sys.readdir path)
  else if
    Filename.check_suffix path ".ml" && Filename.basename path <> "mifo_lint.ml"
    (* the rule table above would match itself *)
  then lint_file path

let () =
  let dirs =
    match Array.to_list Sys.argv with
    | _ :: (_ :: _ as rest) -> rest
    | _ -> [ "lib"; "bin"; "test"; "examples" ]
  in
  List.iter (fun d -> if Sys.file_exists d then walk d) dirs;
  if !findings > 0 then begin
    Printf.printf "mifo-lint: %d finding(s)\n" !findings;
    exit 1
  end
  else print_endline "mifo-lint: clean"
