(* mifo-lint: determinism and domain-safety gate, stdlib only.

   Two rule families, enforced over every .ml file under the given
   directories (default: lib bin test examples — bench/ is exempt, its
   wall-clock timing is the point):

   - Determinism: the simulators must be bit-reproducible from their
     seeds, so wall-clock reads ([Unix.gettimeofday]) and the global
     self-seeded PRNG ([Random.self_init], unseeded [Random.int] & co.)
     are banned; randomness goes through the seeded [Mifo_util.Prng].

   - Domain safety: modules whose values are shared across domains by
     design (Routing, Routing_table, Obs) may not use a bare [Hashtbl]
     without a [Mutex] in the same file — the OCaml runtime does not
     make [Hashtbl] atomic, and a silent race there corrupts routing
     state under the multicore fan-out.

   A finding can be waived for one line with a [lint:allow] marker.
   Exit status: 0 clean, 1 findings. *)

let banned_substrings =
  [
    ("Unix.gettimeofday", "wall-clock read breaks seeded determinism");
    ("Unix.time", "wall-clock read breaks seeded determinism");
    ("Random.self_init", "self-seeded global PRNG is nondeterministic");
    ("Random.State.make_self_init", "self-seeded PRNG state is nondeterministic");
    ("Random.int", "unseeded global PRNG; use Mifo_util.Prng");
    ("Random.float", "unseeded global PRNG; use Mifo_util.Prng");
    ("Random.bool", "unseeded global PRNG; use Mifo_util.Prng");
    ("Random.bits", "unseeded global PRNG; use Mifo_util.Prng");
    ("Random.full_int", "unseeded global PRNG; use Mifo_util.Prng");
    ("Random.nativeint", "unseeded global PRNG; use Mifo_util.Prng");
  ]

(* Files shared across domains: a bare Hashtbl here needs a Mutex. *)
let domain_shared = [ "routing.ml"; "routing_table.ml"; "obs.ml" ]

let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m > 0 && go 0

let findings = ref 0

let report path line_no line msg =
  incr findings;
  Printf.printf "%s:%d: %s\n  %s\n" path line_no msg (String.trim line)

let lint_file path =
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> close_in ic);
  let lines = Array.of_list (List.rev !lines) in
  Array.iteri
    (fun i line ->
      if not (contains ~sub:"lint:allow" line) then
        List.iter
          (fun (sub, msg) ->
            if contains ~sub line then report path (i + 1) line (sub ^ ": " ^ msg))
          banned_substrings)
    lines;
  if List.mem (Filename.basename path) domain_shared then begin
    let whole = String.concat "\n" (Array.to_list lines) in
    if contains ~sub:"Hashtbl." whole && not (contains ~sub:"Mutex" whole) then begin
      incr findings;
      Printf.printf "%s: bare Hashtbl in a domain-shared module without a Mutex\n" path
    end
  end

let rec walk path =
  if Sys.is_directory path then
    Array.iter
      (fun entry ->
        if entry <> "_build" && entry <> "bench" then walk (Filename.concat path entry))
      (Sys.readdir path)
  else if
    Filename.check_suffix path ".ml" && Filename.basename path <> "mifo_lint.ml"
    (* the rule table above would match itself *)
  then lint_file path

let () =
  let dirs =
    match Array.to_list Sys.argv with
    | _ :: (_ :: _ as rest) -> rest
    | _ -> [ "lib"; "bin"; "test"; "examples" ]
  in
  List.iter (fun d -> if Sys.file_exists d then walk d) dirs;
  if !findings > 0 then begin
    Printf.printf "mifo-lint: %d finding(s)\n" !findings;
    exit 1
  end
  else print_endline "mifo-lint: clean"
