(* mifo-sim: command-line driver for the MIFO reproduction.

   Every experiment of the paper is exposed as a subcommand with the
   scale knobs as flags, so any figure can be regenerated at any size:

     mifo-sim table1 --ases 44340
     mifo-sim fig5 --flows 10000 --rate 4000
     mifo-sim fig12 --megabytes 100 --flows-per-source 30
     mifo-sim topo --out topo.as-rel
     mifo-sim paths --src 100 --dst 7 *)

open Cmdliner
module Exp = Mifo_exp.Experiments
module Ablations = Mifo_exp.Ablations
module Context = Mifo_exp.Context
module Generator = Mifo_topology.Generator
module Obs = Mifo_util.Obs

(* ---- common options ---------------------------------------------------- *)

let seed_t =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed.")

let jobs_t =
  Arg.(
    value
    & opt (some int) None
    & info [ "jobs" ]
        ~env:(Cmd.Env.info "MIFO_JOBS" ~doc:"Same as $(b,--jobs).")
        ~docv:"N"
        ~doc:
          "Size of the shared worker-domain pool used by parallel phases (route \
           computation, experiment fan-outs, sharded simulation windows).  \
           Default: all cores.")

let apply_jobs = function
  | None -> ()
  | Some n when n >= 1 -> Mifo_util.Parallel.set_default_jobs n
  | Some n ->
    Printf.eprintf "mifo-sim: --jobs must be >= 1 (got %d)\n" n;
    exit 2

let domains_t =
  Arg.(
    value & opt int 1
    & info [ "domains" ]
        ~env:
          (Cmd.Env.info "MIFO_SIM_DOMAINS"
             ~doc:"Same as $(b,--domains); the flag wins when both are given.")
        ~docv:"N"
        ~doc:
          "Shard the packet-level simulator across $(docv) per-domain event loops \
           synchronized by conservative time windows.  $(docv)=1 (the default) is \
           the serial oracle; every other value is bit-identical to it.")

let ases_t =
  Arg.(
    value
    & opt int Generator.default_params.Generator.ases
    & info [ "ases" ] ~docv:"N" ~doc:"Number of ASes in the generated topology.")

let topo_file_t =
  Arg.(
    value
    & opt (some file) None
    & info [ "topo" ] ~docv:"FILE"
        ~doc:"Load the AS topology from a CAIDA as-rel file instead of generating one.")

let flows_t =
  Arg.(
    value
    & opt int Context.default_scale.Context.flows
    & info [ "flows" ] ~docv:"N" ~doc:"Number of flows in throughput experiments.")

let rate_t =
  Arg.(
    value
    & opt float Context.default_scale.Context.arrival_rate
    & info [ "rate" ] ~docv:"R" ~doc:"Poisson flow arrival rate (flows/second).")

let dests_t =
  Arg.(
    value
    & opt int Context.default_scale.Context.dest_samples
    & info [ "dests" ] ~docv:"N" ~doc:"Destinations sampled for Fig. 7 path counts.")

let make_context seed ases topo_file flows rate dests =
  let scale =
    {
      Context.default_scale with
      Context.flows;
      arrival_rate = rate;
      dest_samples = dests;
    }
  in
  match topo_file with
  | Some path ->
    let loaded = Mifo_topology.As_rel_io.load path in
    let topo =
      {
        Generator.graph = loaded.Mifo_topology.As_rel_io.graph;
        roles =
          Array.make (Mifo_topology.As_graph.n loaded.Mifo_topology.As_rel_io.graph)
            Generator.Stub;
        content = [||];
      }
    in
    Context.of_graph ~scale ~seed topo
  | None ->
    let params = { Generator.default_params with Generator.ases } in
    Context.create ~params ~scale ~seed ()

let context_t = Term.(const make_context $ seed_t $ ases_t $ topo_file_t $ flows_t $ rate_t $ dests_t)

let csv_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "csv" ] ~docv:"DIR"
        ~doc:"Also dump the figure's raw data as CSV files into $(docv).")

let write_csv dir files =
  match dir with
  | None -> ()
  | Some dir ->
    if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
    List.iter
      (fun (name, contents) ->
        let path = Filename.concat dir name in
        Mifo_util.Csv.write_file path contents;
        Printf.printf "wrote %s
" path)
      files

let run_and_print render = print_string render

(* ---- observability ----------------------------------------------------- *)

let obs_t =
  let metrics =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics" ] ~docv:"FILE"
          ~doc:
            "Write a JSON snapshot of all counters, gauges and histograms to $(docv) \
             when the command finishes.")
  in
  let trace =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "Record forwarding/daemon events in a bounded ring and write them as JSONL \
             to $(docv) when the command finishes.")
  in
  Term.(const (fun m t -> (m, t)) $ metrics $ trace)

(* Runs [f] with tracing enabled if requested, then flushes the metrics
   snapshot and trace to the requested files. *)
let with_obs (metrics, trace) f =
  (match trace with Some _ -> Obs.set_trace_capacity 65536 | None -> ());
  let finally () =
    (match metrics with
    | Some path ->
      Obs.write_metrics path;
      Printf.printf "wrote %s\n" path
    | None -> ());
    match trace with
    | Some path ->
      Obs.write_trace path;
      Printf.printf "wrote %s\n" path
    | None -> ()
  in
  Fun.protect ~finally f

(* ---- subcommands ------------------------------------------------------- *)

let cmd_of name ~doc f =
  Cmd.v (Cmd.info name ~doc)
    Term.(
      const (fun jobs obs ctx ->
          apply_jobs jobs;
          with_obs obs (fun () -> run_and_print (f ctx)))
      $ jobs_t $ obs_t $ context_t)

(* a figure command with CSV export: [f ctx] returns (rendered, csv files) *)
let fig_cmd name ~doc f =
  let run jobs obs ctx csv =
    apply_jobs jobs;
    with_obs obs @@ fun () ->
    let rendered, files = f ctx in
    print_string rendered;
    write_csv csv files
  in
  Cmd.v (Cmd.info name ~doc) Term.(const run $ jobs_t $ obs_t $ context_t $ csv_t)

let table1_cmd =
  cmd_of "table1" ~doc:"Regenerate Table I (topology attributes)." (fun ctx ->
      Exp.Table1.render (Exp.Table1.run ctx))

let fig5_cmd =
  fig_cmd "fig5" ~doc:"Regenerate Fig. 5 (throughput CDFs, uniform traffic)." (fun ctx ->
      let panels = Exp.Throughput.fig5 ctx in
      (Exp.Throughput.render_fig5 panels, Exp.Throughput.fig5_to_csv panels))

let fig6_cmd =
  fig_cmd "fig6" ~doc:"Regenerate Fig. 6 (throughput CDFs, power-law traffic)."
    (fun ctx ->
      let panels = Exp.Throughput.fig6 ctx in
      (Exp.Throughput.render_fig6 panels, Exp.Throughput.fig6_to_csv panels))

let fig7_cmd =
  fig_cmd "fig7" ~doc:"Regenerate Fig. 7 (available paths per AS pair)." (fun ctx ->
      let t = Exp.Fig7.run ctx in
      (Exp.Fig7.render t, [ ("fig7.csv", Exp.Fig7.to_csv t) ]))

let fig8_cmd =
  fig_cmd "fig8" ~doc:"Regenerate Fig. 8 (traffic offload vs deployment)." (fun ctx ->
      let t = Exp.Fig8.run ctx in
      (Exp.Fig8.render t, [ ("fig8.csv", Exp.Fig8.to_csv t) ]))

let fig9_cmd =
  fig_cmd "fig9" ~doc:"Regenerate Fig. 9 (path-switch distribution)." (fun ctx ->
      let t = Exp.Fig9.run ctx in
      (Exp.Fig9.render t, [ ("fig9.csv", Exp.Fig9.to_csv t) ]))

let fig12_cmd =
  let mb_t =
    Arg.(value & opt int 10 & info [ "megabytes" ] ~docv:"MB" ~doc:"Flow size (paper: 100).")
  in
  let fps_t =
    Arg.(
      value & opt int 30
      & info [ "flows-per-source" ] ~docv:"N" ~doc:"Back-to-back flows per source (paper: 30).")
  in
  let run jobs obs mb fps domains csv =
    apply_jobs jobs;
    let t0 = Mifo_testbed.Testbed.default_config in
    with_obs obs @@ fun () ->
    let config =
      {
        t0 with
        Mifo_testbed.Testbed.flow_bytes = mb * 1_000_000;
        flows_per_source = fps;
        sim = { t0.Mifo_testbed.Testbed.sim with Mifo_netsim.Packetsim.domains };
      }
    in
    let t = Exp.Fig12.run ~config () in
    print_string (Exp.Fig12.render t);
    write_csv csv (Exp.Fig12.to_csv t)
  in
  Cmd.v
    (Cmd.info "fig12" ~doc:"Regenerate Fig. 12 (testbed: aggregate throughput and FCT).")
    Term.(const run $ jobs_t $ obs_t $ mb_t $ fps_t $ domains_t $ csv_t)

let ablations_cmd =
  cmd_of "ablations" ~doc:"Run the design-choice ablation benches." (fun ctx ->
      String.concat "\n"
        [
          Ablations.Tag_check.render ~label:"Fig. 2(a) gadget" (Ablations.Tag_check.run_gadget ());
          Ablations.Tag_check.render ~label:"generated topology" (Ablations.Tag_check.run ctx);
          Ablations.Selection.render (Ablations.Selection.run ctx);
          Ablations.Overhead.render (Ablations.Overhead.run ctx);
          Ablations.Convergence.render (Ablations.Convergence.run ctx);
          Ablations.Failure.render (Ablations.Failure.run ctx);
          Ablations.Threshold.render (Ablations.Threshold.run ctx);
        ])

let validate_cmd =
  let run jobs obs seed ases flows eventq domains =
    apply_jobs jobs;
    with_obs obs @@ fun () ->
    let v = Mifo_exp.Validation.run ~ases ~flows ~eventq ~domains ~seed () in
    print_string (Mifo_exp.Validation.render v);
    if List.exists (fun (_, ok) -> not ok) v.Mifo_exp.Validation.invariants then exit 1
  in
  let v_ases = Arg.(value & opt int 150 & info [ "ases" ] ~docv:"N" ~doc:"Topology size.") in
  let v_flows = Arg.(value & opt int 24 & info [ "flows" ] ~docv:"N" ~doc:"Flows.") in
  let v_eventq =
    let module Eventq = Mifo_netsim.Eventq in
    let engine_conv =
      Arg.enum
        (List.map (fun e -> (Eventq.engine_name e, e)) [ Eventq.Heap; Eventq.Wheel ])
    in
    Arg.(
      value
      & opt engine_conv Mifo_netsim.Packetsim.default_config.Mifo_netsim.Packetsim.eventq_engine
      & info [ "eventq" ] ~docv:"ENGINE"
          ~doc:
            "Event-queue engine for the packet-level simulator: $(b,heap) (the \
             oracle) or $(b,wheel) (the default timing wheel).  Both are \
             bit-identical; running validate under each is a cheap way to audit \
             that.")
  in
  Cmd.v
    (Cmd.info "validate"
       ~doc:
         "Cross-validate the flow-level and packet-level simulators on one scenario. \
          Exits non-zero if a forwarding invariant is violated.")
    Term.(const run $ jobs_t $ obs_t $ seed_t $ v_ases $ v_flows $ v_eventq $ domains_t)

let check_cmd =
  let gadget_t =
    Arg.(
      value & flag
      & info [ "gadget" ]
          ~doc:"Check the Fig. 2(a) gadget instead of a generated topology.")
  in
  let k2_gadget_t =
    Arg.(
      value & flag
      & info [ "k2-gadget" ]
          ~doc:
            "Check the k-alternative gadget: loop-free at $(b,--k 1), loops at \
             $(b,--k 2) when the Tag-Check is ablated.")
  in
  let bh_gadget_t =
    Arg.(
      value & flag
      & info [ "bh-gadget" ]
          ~doc:
            "Check the black-hole gadget: all properties verify on the healthy \
             topology, but $(b,--fail-link 2:0) strands AS 2 — the delivery check \
             must fail with a counterexample that replays stranded.")
  in
  let stretch_gadget_t =
    Arg.(
      value & flag
      & info [ "stretch-gadget" ]
          ~doc:
            "Check the bounded-stretch gadget: deflections toward AS 0 realise a \
             worst-case stretch of 2, so the stretch check fails under \
             $(b,--stretch-bound 1) while every other property verifies.")
  in
  let props_t =
    let props_conv =
      let parse s =
        match Mifo_analysis.Props.parse_props s with
        | Ok ps -> Ok ps
        | Error e -> Error (`Msg e)
      in
      let print fmt ps =
        Format.pp_print_string fmt
          (String.concat "," (List.map Mifo_analysis.Props.prop_to_string ps))
      in
      Arg.conv (parse, print)
    in
    Arg.(
      value
      & opt props_conv [ Mifo_analysis.Props.Loops ]
      & info [ "props" ] ~docv:"LIST"
          ~doc:
            "Comma-separated properties to verify statically: any of $(b,loops), \
             $(b,delivery), $(b,stretch), $(b,resilience).  Default: loops only \
             (the historical behaviour).")
  in
  let stretch_bound_t =
    Arg.(
      value
      & opt int Mifo_analysis.Props.default_stretch_bound
      & info [ "stretch-bound" ] ~docv:"B"
          ~doc:
            "Maximum tolerated stretch: worst deliverable deflection-path length \
             minus default-path length, per source.")
  in
  let fail_link_t =
    let link_conv =
      let parse s =
        match String.split_on_char ':' s with
        | [ u; v ] -> (
          match (int_of_string_opt u, int_of_string_opt v) with
          | Some u, Some v when u >= 0 && v >= 0 -> Ok (u, v)
          | _ -> Error (`Msg (Printf.sprintf "bad link %S (want U:V)" s)))
        | _ -> Error (`Msg (Printf.sprintf "bad link %S (want U:V)" s))
      in
      let print fmt (u, v) = Format.fprintf fmt "%d:%d" u v in
      Arg.conv (parse, print)
    in
    Arg.(
      value
      & opt (some link_conv) None
      & info [ "fail-link" ] ~docv:"U:V"
          ~doc:
            "Verify under a single-link-failure overlay: the AS-level link \
             $(docv) is down in both directions and the endpoint whose default \
             route used it locally repairs onto its next surviving RIB route.")
  in
  let fail_links_t =
    Arg.(
      value & opt int 0
      & info [ "fail-links" ] ~docv:"N"
          ~doc:
            "Cap the resilience sweep to a seeded sample of $(docv) default-tree \
             links per destination (0, the default, sweeps all of them).")
  in
  let k_t =
    Arg.(
      value & opt int 0
      & info [ "k" ] ~docv:"K"
          ~doc:
            "Verify the k-alternative data plane: deflections bounded to the first \
             $(docv) RIB alternatives, automaton state widened to (AS, tag, slot).  \
             0 (the default) = the unbounded automaton.")
  in
  let no_tag_t =
    Arg.(
      value & flag
      & info [ "no-tag-check" ]
          ~doc:
            "Verify the ablated data plane (Tag-Check off); loop counterexamples are \
             expected and reported with their concrete cycle.")
  in
  let check_dests_t =
    Arg.(
      value & opt int 200
      & info [ "dests" ] ~docv:"N"
          ~doc:
            "Destinations verified at the AS level (all of them when the topology is \
             smaller, a seeded sample otherwise).")
  in
  let hosts_t =
    Arg.(
      value & opt int 24
      & info [ "hosts" ] ~docv:"N"
          ~doc:"Host ASes wired into the packet-level network audit.")
  in
  let out_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"FILE"
          ~doc:"Write the JSON report to $(docv) instead of stdout.")
  in
  let run obs seed ases topo_file gadget k2_gadget bh_gadget stretch_gadget no_tag
      k props stretch_bound fail_link fail_links dests hosts out =
    with_obs obs @@ fun () ->
    let module Report = Mifo_analysis.Report in
    let module Props = Mifo_analysis.Props in
    let tag_check = not no_tag in
    let g =
      if gadget then Generator.fig2a_gadget ()
      else if k2_gadget then Generator.k2_gadget ()
      else if bh_gadget then Generator.black_hole_gadget ()
      else if stretch_gadget then Generator.stretch_gadget ()
      else
        match topo_file with
        | Some path -> (Mifo_topology.As_rel_io.load path).Mifo_topology.As_rel_io.graph
        | None ->
          let params = { Generator.default_params with Generator.ases } in
          (Generator.generate ~params ~seed ()).Generator.graph
    in
    let n = Mifo_topology.As_graph.n g in
    let table = Mifo_bgp.Routing_table.create g in
    let rng = Mifo_util.Prng.create ~seed:(seed + 17) () in
    let sample k =
      if n <= k then List.init n (fun i -> i)
      else Array.to_list (Mifo_util.Prng.sample_without_replacement rng k n)
    in
    let as_dests = sample dests in
    let host_ases = sample hosts in
    Mifo_bgp.Routing_table.precompute table (Array.of_list as_dests);
    let as_report =
      Mifo_analysis.Verifier.verify_props ~tag_check
        ?k:(if k > 0 then Some k else None)
        ~stretch_bound ?fail_link ~fail_links ~seed ~props g ~table ~dests:as_dests
    in
    (* Machine-check every delivery/stretch counterexample against the
       dynamic walker before reporting: a static finding that does not
       replay is a verifier bug, reported as exit 2. *)
    let replayed_ok = ref 0 and replay_bad = ref 0 in
    List.iter
      (fun v ->
        match v with
        | Report.Black_hole { dest; path; moves; failed_link; at; _ } -> (
          let rt = Mifo_bgp.Routing_table.get table dest in
          match Props.replay_stranded ~tag_check g rt ~path ~moves ~failed_link with
          | Mifo_core.Loop_walk.Dropped _ -> incr replayed_ok
          | _ ->
            incr replay_bad;
            Printf.eprintf
              "replay MISMATCH: black-hole at AS %d toward AS %d did not strand\n"
              at dest)
        | Report.Stretch_exceeded { dest; src; actual_len; path; moves; _ } -> (
          let rt = Mifo_bgp.Routing_table.get table dest in
          match Props.replay_stretch ~tag_check g rt ~path ~moves with
          | Mifo_core.Loop_walk.Delivered p when List.length p - 1 = actual_len ->
            incr replayed_ok
          | _ ->
            incr replay_bad;
            Printf.eprintf
              "replay MISMATCH: stretch path from AS %d toward AS %d did not \
               deliver in %d hops\n"
              src dest actual_len)
        | _ -> ())
      as_report.Report.violations;
    if !replayed_ok > 0 then
      Printf.eprintf "replayed %d static counterexample(s) through the dynamic walker\n"
        !replayed_ok;
    let config =
      { Mifo_netsim.Packetsim.default_config with Mifo_netsim.Packetsim.tag_check }
    in
    let net =
      Mifo_netsim.As_network.build ~config table
        ~deployment:(Mifo_core.Deployment.full ~n) ~hosts:host_ases ()
    in
    let routing = List.map (fun d -> (d, Mifo_bgp.Routing_table.get table d)) host_ases in
    let net_report =
      Mifo_analysis.Verifier.verify_network net.Mifo_netsim.As_network.sim ~routing
    in
    let report = Report.merge [ as_report; net_report ] in
    let json = Report.to_json_string report in
    (match out with
    | Some path ->
      let oc = open_out path in
      output_string oc json;
      output_char oc '\n';
      close_out oc;
      Printf.printf "wrote %s\n" path
    | None -> print_endline json);
    prerr_endline (Report.summary report);
    if !replay_bad > 0 then exit 2;
    if not (Report.ok report) then exit 1
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Statically verify the data plane: loop-freedom of the deflection automaton \
          (plus, with $(b,--props), black-hole freedom, bounded stretch and \
          single-link-failure resilience), valley-free compliance of every RIB path, \
          and FIB/RIB consistency of the built packet network.  Emits a JSON report; \
          exits non-zero on any violation.")
    Term.(
      const run $ obs_t $ seed_t $ ases_t $ topo_file_t $ gadget_t $ k2_gadget_t
      $ bh_gadget_t $ stretch_gadget_t $ no_tag_t $ k_t $ props_t $ stretch_bound_t
      $ fail_link_t $ fail_links_t $ check_dests_t $ hosts_t $ out_t)

let topo_cmd =
  let out_t =
    Arg.(required & opt (some string) None & info [ "out" ] ~docv:"FILE" ~doc:"Output path.")
  in
  let run seed ases out =
    let params = { Generator.default_params with Generator.ases } in
    let topo = Generator.generate ~params ~seed () in
    Mifo_topology.As_rel_io.save out topo.Generator.graph;
    Printf.printf "wrote %s: %s\n" out
      (Format.asprintf "%a" Mifo_topology.Topo_stats.pp
         (Mifo_topology.Topo_stats.compute topo.Generator.graph))
  in
  Cmd.v
    (Cmd.info "topo" ~doc:"Generate a topology and save it in as-rel format.")
    Term.(const run $ seed_t $ ases_t $ out_t)

(* ---- path-diversity probe ----------------------------------------------

   Counts the distinct AS paths a k-alternative data plane can realize
   toward one destination by replaying {!Mifo_core.Loop_walk} walks under
   prime-spaced flow-id variations: each variation hashes (flow, AS) into
   a choice over the default and the first [k] ranked RIB alternatives —
   the same bucket->slot spreading the engine applies — and delivered
   paths are deduplicated.  A probe stops once [max_paths] distinct paths
   are on record or [early_stop] consecutive variations found nothing
   new (the SwiftFTR-style budget). *)

let c_path_probes = Obs.counter "paths.probes"
let c_path_distinct = Obs.counter "paths.distinct"
let c_path_early = Obs.counter "paths.early_stopped"

let probe_paths g rt ~src ~k ~max_paths ~early_stop =
  let module Fib = Mifo_core.Fib in
  let module Loop_walk = Mifo_core.Loop_walk in
  let early_stop = max 1 early_stop in
  let rec take n l =
    match l with [] -> [] | x :: tl -> if n <= 0 then [] else x :: take (n - 1) tl
  in
  let seen = Hashtbl.create 16 in
  let ordered = ref [] in
  let no_new = ref 0 in
  let variation = ref 0 in
  let early = ref false in
  while (not !early) && Hashtbl.length seen < max_paths do
    (* prime stride decorrelates successive variations under the bucket hash *)
    let flow = 1 + (7919 * !variation) in
    Obs.add c_path_probes 1;
    let decide ~as_id ~upstream:_ ~entries =
      match entries with
      | [] | [ _ ] -> Loop_walk.Default
      | _default :: alternatives ->
        let pool = take k alternatives in
        let m = List.length pool in
        let c = Fib.flow_bucket (flow + (8191 * as_id)) mod (m + 1) in
        if c = 0 then Loop_walk.Default
        else Loop_walk.Deflect (List.nth pool (c - 1)).Mifo_bgp.Routing.via
    in
    (match Loop_walk.walk g rt ~decide ~src with
    | Loop_walk.Delivered path ->
      let key = String.concat "," (List.map string_of_int path) in
      if Hashtbl.mem seen key then incr no_new
      else begin
        Hashtbl.replace seen key ();
        ordered := path :: !ordered;
        no_new := 0
      end
    | Loop_walk.Dropped _ | Loop_walk.Looped _ -> incr no_new);
    incr variation;
    if !no_new >= early_stop then begin
      early := true;
      Obs.add c_path_early 1
    end
  done;
  Obs.add c_path_distinct (Hashtbl.length seen);
  (List.rev !ordered, !variation, !early)

let paths_cmd =
  let src_t =
    Arg.(
      value
      & opt (some int) None
      & info [ "src" ] ~docv:"AS"
          ~doc:
            "Source AS: inspect its RIB and probe from it alone.  Omitted, the probe \
             runs from every AS toward the destination and reports the aggregate.")
  in
  let dst_t =
    Arg.(
      required
      & opt (some int) None
      & info [ "dst"; "dest" ] ~docv:"AS" ~doc:"Destination AS.")
  in
  let limit_t = Arg.(value & opt int 10 & info [ "limit" ] ~docv:"N" ~doc:"Paths to list.") in
  let max_paths_t =
    Arg.(
      value & opt int 16
      & info [ "max-paths" ] ~docv:"N"
          ~doc:"Probe budget: stop once $(docv) distinct deflection paths are found.")
  in
  let early_stop_t =
    Arg.(
      value & opt int 3
      & info [ "early-stop" ] ~docv:"T"
          ~doc:
            "Stop a probe after $(docv) consecutive flow variations that discover no \
             new path.")
  in
  let k_t =
    Arg.(
      value
      & opt int (Mifo_core.Fib.default_k ())
      & info [ "k" ] ~docv:"K"
          ~doc:
            "Ranked alternatives considered per hop (default: the $(b,MIFO_K_ALT) \
             environment knob, else 4).")
  in
  let run obs ctx src dst limit max_paths early_stop k =
    with_obs obs @@ fun () ->
    let g = Context.graph ctx in
    let rt = Mifo_bgp.Routing_table.get ctx.Context.table dst in
    let show path = String.concat " -> " (List.map string_of_int path) in
    match src with
    | Some src ->
      Printf.printf "default path: %s\n" (show (Mifo_bgp.Routing.default_path rt src));
      Printf.printf "local RIB at AS %d toward AS %d:\n" src dst;
      List.iter
        (fun (e : Mifo_bgp.Routing.rib_entry) ->
          Printf.printf "  via AS %-6d (%s route, %d AS hops)\n" e.via
            (Mifo_topology.Relationship.to_string e.rel)
            e.len)
        (Mifo_bgp.Routing.rib rt src);
      let paths =
        Mifo_bgp.Path_count.enumerate_mifo_paths g rt ~capable:(fun _ -> true) ~src ~limit
      in
      Printf.printf "first %d MIFO forwarding paths (of %.0f):\n" (List.length paths)
        (Mifo_bgp.Path_count.mifo_counts g rt ~capable:(fun _ -> true)).(src);
      List.iter (fun p -> Printf.printf "  %s\n" (show p)) paths;
      let distinct, probes, early = probe_paths g rt ~src ~k ~max_paths ~early_stop in
      Printf.printf "deflection probe (k=%d): %d distinct paths in %d flow variations%s:\n"
        k (List.length distinct) probes
        (if early then ", early-stopped" else "");
      List.iter (fun p -> Printf.printf "  %s\n" (show p)) distinct
    | None ->
      let n = Mifo_topology.As_graph.n g in
      let sources = ref 0 in
      let probes = ref 0 in
      let total = ref 0 in
      let max_distinct = ref 0 in
      let early_stopped = ref 0 in
      for s = 0 to n - 1 do
        if s <> dst then begin
          incr sources;
          let distinct, p, early = probe_paths g rt ~src:s ~k ~max_paths ~early_stop in
          let d = List.length distinct in
          probes := !probes + p;
          total := !total + d;
          if d > !max_distinct then max_distinct := d;
          if early then incr early_stopped
        end
      done;
      Printf.printf "deflection probe toward AS %d (k=%d, max-paths %d, early-stop %d):\n"
        dst k max_paths early_stop;
      Printf.printf "  sources probed  : %d\n" !sources;
      Printf.printf "  flow variations : %d\n" !probes;
      Printf.printf "  distinct paths  : %d (mean %.2f per source, max %d)\n" !total
        (if !sources = 0 then 0. else float_of_int !total /. float_of_int !sources)
        !max_distinct;
      Printf.printf "  early-stopped   : %d sources\n" !early_stopped
  in
  Cmd.v
    (Cmd.info "paths"
       ~doc:
         "Probe the deflection path diversity toward a destination: enumerate the \
          distinct AS paths a k-alternative data plane realizes under flow-hash \
          spreading, with deduplication and early stopping.  With $(b,--src), also \
          inspect that AS's RIB.")
    Term.(
      const run $ obs_t $ context_t $ src_t $ dst_t $ limit_t $ max_paths_t
      $ early_stop_t $ k_t)

let main_cmd =
  Cmd.group
    (Cmd.info "mifo-sim" ~version:"1.0.0"
       ~doc:"Multi-path Interdomain Forwarding (MIFO, ICPP 2015) - simulation driver.")
    [
      table1_cmd; fig5_cmd; fig6_cmd; fig7_cmd; fig8_cmd; fig9_cmd; fig12_cmd;
      ablations_cmd; validate_cmd; check_cmd; topo_cmd; paths_cmd;
    ]

let () = exit (Cmd.eval main_cmd)
