(* The data-plane loop of Fig. 2(a), and how the Tag-Check breaks it.

   Three ASes (1, 2, 3) peer with each other and share a customer (0).
   Each uses its direct link to 0 as the default path and a route via a
   peer as the alternative.  When every default link congests and every
   AS deflects clockwise, the packet orbits 1 -> 2 -> 3 -> 1 ... forever
   - unless the valley-free rule runs on the data plane, in which case
   the second peer-to-peer hop is refused and the packet is dropped
   before a loop forms (the theorem of Section III-A3).

   Run with: dune exec examples/loop_demo.exe *)

module Generator = Mifo_topology.Generator
module Routing = Mifo_bgp.Routing
module Loop_walk = Mifo_core.Loop_walk

let describe = function
  | Loop_walk.Delivered path ->
    Printf.sprintf "delivered via %s" (String.concat " -> " (List.map string_of_int path))
  | Loop_walk.Dropped { path; at; reason } ->
    Printf.sprintf "dropped at AS %d (%s) after %s" at
      (match reason with
       | Loop_walk.Valley -> "valley-free check"
       | Loop_walk.No_route -> "no route"
       | Loop_walk.Dead_end -> "dead end"
       | Loop_walk.Link_down -> "link down")
      (String.concat " -> " (List.map string_of_int path))
  | Loop_walk.Looped { path; cycle } ->
    Printf.sprintf "LOOPED: %s (cycle %s)"
      (String.concat " -> " (List.map string_of_int path))
      (String.concat " -> " (List.map string_of_int cycle))

let () =
  let g = Generator.fig2a_gadget () in
  let rt = Routing.compute g 0 in
  (* worst case: every AS considers its direct (default) link to AS 0
     congested and deflects greedily to a peer *)
  let congested _ _ = true in
  let spare _ _ = 1. in
  let strategy = Loop_walk.congestion_strategy ~congested ~spare in
  List.iter
    (fun tag_check ->
      Printf.printf "tag-check %s:\n" (if tag_check then "ON " else "OFF");
      List.iter
        (fun src ->
          let outcome = Loop_walk.walk ~tag_check g rt ~decide:strategy ~src in
          Printf.printf "  packet from AS %d: %s\n" src (describe outcome))
        [ 1; 2; 3 ])
    [ false; true ]
