(* Quickstart: build a small Internet, look at BGP routing and the MIFO
   RIB, and push a packet through the MIFO forwarding engine.

   Run with: dune exec examples/quickstart.exe *)

module Generator = Mifo_topology.Generator
module As_graph = Mifo_topology.As_graph
module Relationship = Mifo_topology.Relationship
module Routing = Mifo_bgp.Routing
module Prefix = Mifo_bgp.Prefix
module Fib = Mifo_core.Fib
module Engine = Mifo_core.Engine
module Packet = Mifo_core.Packet

let () =
  (* 1. A 200-AS synthetic Internet with the paper's 69:31 P/C:peering mix. *)
  let params =
    {
      Generator.default_params with
      Generator.ases = 200;
      tier1 = 5;
      content_providers = 2;
      content_peer_span = (5, 15);
    }
  in
  let topo = Generator.generate ~params ~seed:1 () in
  let g = topo.Generator.graph in
  Format.printf "topology: %a@." Mifo_topology.Topo_stats.pp
    (Mifo_topology.Topo_stats.compute g);

  (* 2. Interdomain routing toward a destination AS: every AS gets its
     Gao-Rexford best route, and its local BGP RIB - the source of MIFO's
     alternative paths, at zero control-plane cost. *)
  let dst = 199 and src = 42 in
  let rt = Routing.compute g dst in
  let show_path path = String.concat " -> " (List.map string_of_int path) in
  Format.printf "default AS path %d => %d: %s@." src dst
    (show_path (Routing.default_path rt src));
  Format.printf "RIB at AS %d (first entry is the default):@." src;
  List.iter
    (fun (e : Routing.rib_entry) ->
      Format.printf "  via AS %-4d %-8s route, %d hops@." e.via
        (Relationship.to_string e.rel) e.len)
    (Routing.rib rt src);

  (* 3. A border router running the MIFO engine: the FIB carries a default
     and an alternative port; when the default egress is congested the
     engine deflects flows onto the alternative - at line speed, checking
     the one-bit valley-free tag. *)
  let fib = Fib.create () in
  let default_port = 0 and alt_port = 1 and upstream_port = 2 in
  Fib.insert fib (Prefix.of_as dst) ~out_port:default_port ~alt_port ();
  (match Fib.find fib (Prefix.of_as dst) with
   | Some entry -> Fib.set_deflect_buckets entry Fib.buckets (* daemon: deflect everything *)
   | None -> assert false);
  let env =
    {
      Engine.router_id = 7;
      fib;
      port_kind =
        (fun p ->
          if p = upstream_port then
            Engine.Ebgp { neighbor_as = src; rel = Relationship.Customer }
          else if p = alt_port then
            Engine.Ebgp { neighbor_as = 9; rel = Relationship.Peer }
          else Engine.Ebgp { neighbor_as = 8; rel = Relationship.Provider });
      is_congested = (fun p -> p = default_port);
      next_hop_router = (fun _ -> None);
      route_to_peer = (fun _ -> None);
    }
  in
  let packet =
    Packet.make ~src:(Prefix.host_of_as src 1) ~dst:(Prefix.host_of_as dst 1) ~flow:99 ()
  in
  (match Engine.forward env ~ingress:(Some upstream_port) packet with
   | Engine.Send { port; packet; _ } ->
     Format.printf
       "engine: default egress congested -> packet deflected out port %d (tag=%b)@."
       port packet.Packet.vf_tag
   | Engine.Drop { reason; _ } ->
     Format.printf "engine: dropped (%s)@." (Engine.drop_reason_to_string reason));

  (* The same packet arriving from a PEER (tag = 0) may not exit through
     another peer - that is the Fig. 2(a) loop.  The Tag-Check refuses the
     alternative and the packet stays on the (congested but loop-free)
     default path. *)
  let env_peer_upstream =
    {
      env with
      Engine.port_kind =
        (fun p ->
          if p = upstream_port then Engine.Ebgp { neighbor_as = src; rel = Relationship.Peer }
          else if p = alt_port then Engine.Ebgp { neighbor_as = 9; rel = Relationship.Peer }
          else Engine.Ebgp { neighbor_as = 8; rel = Relationship.Provider });
    }
  in
  match Engine.forward env_peer_upstream ~ingress:(Some upstream_port) packet with
  | Engine.Send { port; packet = p; _ } when port = default_port ->
    Format.printf
      "engine: peer-to-peer deflection refused by the Tag-Check (tag=%b) -> stays on the default path@."
      p.Packet.vf_tag
  | Engine.Send { port; _ } ->
    Format.printf "engine: forwarded out port %d (unexpected)@." port
  | Engine.Drop { reason; _ } ->
    Format.printf "engine: dropped (%s)@." (Engine.drop_reason_to_string reason)
