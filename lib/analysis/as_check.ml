module As_graph = Mifo_topology.As_graph
module Routing = Mifo_bgp.Routing
module Relationship = Mifo_topology.Relationship
module Policy = Mifo_core.Policy
module Loop_walk = Mifo_core.Loop_walk
module Intset = Mifo_util.Intset

type move = Automaton.move = {
  at : int;
  tag : bool;
  via : int;
  slot : int;
  deflected : bool;
}

type counterexample = {
  dest : int;
  entry : int list;
  cycle : int list;
  entry_moves : move list;
  cycle_moves : move list;
}

type loop_result = { counterexample : counterexample option; states_explored : int }

let all_enabled ~at:_ ~via:_ = true

type frame = {
  v : int;
  tag : bool;
  slot : int;  (* ranked slot the packet entered this AS by; 0 = default *)
  entered_by : move option;  (* the move taken at the parent frame *)
  mutable rest : (move * int * bool) list;
}

let find_loop_auto auto =
  (* Exhaustive DFS over the product automaton from every source root
     [(v, source_tag, 0)].  The transition relation, state encoding and
     overlay live in {!Automaton}; this function owns only the cycle
     search and counterexample extraction. *)
  let n = As_graph.n (Automaton.graph auto) in
  let dest = Automaton.dest auto in
  let enc = Automaton.enc auto in
  let slot_of entered_by =
    match entered_by with
    | None -> 0
    | Some m -> Automaton.slot_of_move auto m
  in
  let color = Array.make (Automaton.n_states auto) 0 in
  (* index of the state's frame in the current DFS path, bottom-first *)
  let pos = Array.make (Automaton.n_states auto) (-1) in
  let explored = ref 0 in
  let result = ref None in
  let path = ref [] (* top of the DFS path first *) in
  let depth = ref 0 in
  let push v tag entered_by =
    let slot = slot_of entered_by in
    let s = enc v tag slot in
    color.(s) <- 1;
    pos.(s) <- !depth;
    incr depth;
    incr explored;
    path := { v; tag; slot; entered_by; rest = Automaton.edges auto v tag } :: !path
  in
  let pop () =
    match !path with
    | [] -> ()
    | f :: rest ->
      let s = enc f.v f.tag f.slot in
      color.(s) <- 2;
      pos.(s) <- -1;
      decr depth;
      path := rest
  in
  (* A gray target at path index [target_pos] closes a cycle: frames
     [0 .. target_pos-1] are the entry, [target_pos ..] the cycle, and
     the move entering frame i+1 is the move taken AT frame i. *)
  let extract closing_move target_pos =
    let frames = Array.of_list (List.rev !path) in
    let k = Array.length frames in
    let move_at i =
      if i + 1 < k then
        match frames.(i + 1).entered_by with Some m -> m | None -> assert false
      else closing_move
    in
    let entry = ref [] and entry_moves = ref [] in
    let cycle = ref [] and cycle_moves = ref [] in
    for i = k - 1 downto 0 do
      if i < target_pos then begin
        entry := frames.(i).v :: !entry;
        entry_moves := move_at i :: !entry_moves
      end
      else begin
        cycle := frames.(i).v :: !cycle;
        cycle_moves := move_at i :: !cycle_moves
      end
    done;
    {
      dest;
      entry = !entry;
      cycle = !cycle @ [ frames.(target_pos).v ];
      entry_moves = !entry_moves;
      cycle_moves = !cycle_moves;
    }
  in
  let rec dfs () =
    if Option.is_none !result then
      match !path with
      | [] -> ()
      | f :: _ ->
        (match f.rest with
        | [] -> pop ()
        | (m, w, wtag) :: rest ->
          f.rest <- rest;
          let s = enc w wtag (slot_of (Some m)) in
          if color.(s) = 1 then result := Some (extract m pos.(s))
          else if color.(s) = 0 then push w wtag (Some m));
        dfs ()
  in
  (* Roots: every possible source with a freshly originated packet,
     which carries the source tag (it may use any of its RIB routes). *)
  let v = ref 0 in
  while Option.is_none !result && !v < n do
    if !v <> dest && color.(enc !v Policy.source_tag 0) = 0 then begin
      push !v Policy.source_tag None;
      dfs ()
    end;
    incr v
  done;
  { counterexample = !result; states_explored = !explored }

let find_loop_in = find_loop_auto

let find_loop ?(tag_check = true) ?(deflection_enabled = all_enabled) ?k g rt =
  find_loop_auto
    (Automaton.create ~tag_check
       ~overlay:(Automaton.deflection_overlay deflection_enabled)
       ?k g rt)

let replay ?(tag_check = true) g rt cx =
  let moves = Array.of_list (cx.entry_moves @ cx.cycle_moves) in
  let total = Array.length moves in
  let cyc_len = List.length cx.cycle_moves in
  if cyc_len = 0 then invalid_arg "As_check.replay: counterexample has an empty cycle";
  let i = ref 0 in
  let decide ~as_id:_ ~upstream:_ ~entries:_ =
    let m =
      if !i < total then moves.(!i)
      else moves.(total - cyc_len + ((!i - total) mod cyc_len))
    in
    incr i;
    if m.deflected then Loop_walk.Deflect m.via else Loop_walk.Default
  in
  let src =
    match cx.entry with v :: _ -> v | [] -> List.hd cx.cycle
  in
  (* Generous budget: the walk revisits an (AS, upstream) state within
     one extra turn of the cycle, well inside this bound. *)
  let max_hops = 2 * (total + cyc_len) + 8 in
  Loop_walk.walk ~tag_check ~max_hops g rt ~decide ~src

module Inc = struct
  (* Incremental re-verification over FIB deltas.  A delta toggles one
     deflection edge [(at, via)]; the invariant exploited is that a NEW
     root-reachable cycle after a batch of deltas must traverse a
     re-enabled edge (removing edges from a graph whose reachable region
     was acyclic cannot create cycles).  So a recheck after removals is
     free, and a recheck after additions DFSes only the region reachable
     from the changed states; a full [find_loop] (with the same overlay)
     runs only when that scan actually smells a cycle — which makes the
     returned verdict bit-identical to the full check by construction,
     counterexamples included. *)
  type inc = {
    g : As_graph.t;
    rt : Routing.t;
    tag_check : bool;
    k : int option;  (* k-alternative bound, None = unbounded *)
    slots : int;  (* widened-state slot count: 1 or k+1 *)
    disabled : Intset.t;  (* key = at * n + via; flat set, domain-private *)
    auto : Automaton.t;  (* overlay reads [disabled] live *)
    mutable pending_add : (int * int) list;  (* re-enabled since last recheck *)
    mutable pending_remove : (int * int) list;  (* disabled since last recheck *)
    mutable last : loop_result;
    scratch : Automaton.Scratch.t;  (* region-scan colors, epoch-cleared *)
    mutable full_checks : int;
    mutable region_scans : int;
  }

  type t = inc

  let full_check t =
    t.full_checks <- t.full_checks + 1;
    find_loop_auto t.auto

  let create ?(tag_check = true) ?k g rt =
    let n = As_graph.n g in
    let slots = match k with None -> 1 | Some kk -> kk + 1 in
    let disabled = Intset.create () in
    let enabled ~at ~via = not (Intset.mem disabled ((at * n) + via)) in
    let auto =
      Automaton.create ~tag_check ~overlay:(Automaton.deflection_overlay enabled) ?k g
        rt
    in
    let t =
      {
        g;
        rt;
        tag_check;
        k;
        slots;
        disabled;
        auto;
        pending_add = [];
        pending_remove = [];
        last = { counterexample = None; states_explored = 0 };
        scratch = Automaton.Scratch.create ();
        full_checks = 0;
        region_scans = 0;
      }
    in
    t.last <- full_check t;
    (* Pre-size the region-scan scratch so the first recheck is as
       O(region) as every later one — the arrays are allocated here,
       not inside a caller's timing window. *)
    Automaton.Scratch.round t.scratch ~states:(Automaton.n_states auto);
    t

  let result t = t.last
  let stats t = (t.full_checks, t.region_scans)

  let deflection_enabled t ~at ~via =
    not (Intset.mem t.disabled ((at * As_graph.n t.g) + via))

  let set_deflection t ~at ~via ~enabled =
    let n = As_graph.n t.g in
    let key = (at * n) + via in
    if enabled then begin
      if Intset.mem t.disabled key then begin
        Intset.remove t.disabled key;
        t.pending_add <- (at, via) :: t.pending_add
      end
    end
    else if not (Intset.mem t.disabled key) then begin
      Intset.add t.disabled key;
      t.pending_remove <- (at, via) :: t.pending_remove
    end

  (* DFS over the current edge set from the states touched by re-enabled
     edges; true iff a cycle is reachable from them.  Any new cycle, and
     any path newly connecting a source root to an old cycle, runs
     through a re-enabled edge — its endpoints (both tags and every
     entering slot, a conservative superset of the gated states) seed
     {!Automaton.cycle_from}. *)
  let region_scan t adds =
    t.region_scans <- t.region_scans + 1;
    let seeds = List.concat_map (fun (at, via) -> [ at; via ]) adds in
    Automaton.cycle_from t.auto ~scratch:t.scratch ~seeds

  let recheck t =
    let adds = t.pending_add and removes = t.pending_remove in
    t.pending_add <- [];
    t.pending_remove <- [];
    (match t.last.counterexample with
    | Some _ ->
      (* The standing verdict is a loop; a removal may have broken it
         (and the cached counterexample may reference a now-disabled
         edge), so anything pending forces a full re-verification. *)
      if adds <> [] || removes <> [] then t.last <- full_check t
    | None ->
      if adds = [] then begin
        (* Removals only: deleting edges from a graph whose reachable
           region is acyclic cannot create a cycle.  Zero states. *)
        if removes <> [] then t.last <- { counterexample = None; states_explored = 0 }
      end
      else begin
        let found, explored = region_scan t adds in
        if found then
          (* The region scan's cycle may sit outside the root-reachable
             region; the full check settles it and, when genuine, yields
             the canonical replayable counterexample. *)
          t.last <- full_check t
        else t.last <- { counterexample = None; states_explored = explored }
      end);
    t.last
end

(* The valley audit, chain-first.  A RIB path at [v] via entry [e] is
   [v :: default_path (e.via)], so both its hop count and its
   valley-freeness are functions of [e]'s direct hop plus a property of
   [via]'s default chain alone.  Per destination we memoize, for every
   node [w], the chain depth (hop count of [w]'s default path) and a
   2-bit validity mask of the chain under the valley automaton's two
   future-constraint states — S0 "anything allowed next" (still inside
   the Up* prefix) and S1 "only Down allowed" (a Flat or Down hop has
   been taken).  Each RIB entry is then audited in O(1) from the packed
   accessors; the boxed path materialises only on the cold violation
   path.  This is what keeps the 44K audit inside the CSR arena
   (previously: one boxed list per RIB entry via [rib_paths]). *)
let ok_s0 = 1 (* chain valid when entered in S0 *)
let ok_s1 = 2 (* chain valid when entered in S1 *)

let chain_masks g rt =
  let n = As_graph.n g in
  let dest = Routing.dest rt in
  let depth = Array.make n (-1) in
  let okmask = Array.make n (-1) in
  depth.(dest) <- 0;
  okmask.(dest) <- ok_s0 lor ok_s1;
  let compute w0 =
    (* walk the default chain to the first memoized node, then unwind *)
    let rec walk w acc =
      if depth.(w) >= 0 then acc
      else
        match Routing.next_hop rt w with
        | None -> acc (* unreachable: caller reports, chain unused *)
        | Some nh -> walk nh ((w, nh) :: acc)
    in
    List.iter
      (fun (w, nh) ->
        depth.(w) <- 1 + depth.(nh);
        let hop = Relationship.hop_of (As_graph.rel_exn g w nh) in
        let nh_ok = okmask.(nh) in
        let s0_ok =
          match hop with
          | Relationship.Up -> nh_ok land ok_s0 <> 0
          | Relationship.Flat | Relationship.Down -> nh_ok land ok_s1 <> 0
        in
        let s1_ok =
          match hop with
          | Relationship.Down -> nh_ok land ok_s1 <> 0
          | Relationship.Up | Relationship.Flat -> false
        in
        okmask.(w) <- (if s0_ok then ok_s0 else 0) lor if s1_ok then ok_s1 else 0)
      (walk w0 [])
  in
  (depth, okmask, compute)

let check_paths g rt =
  let dest = Routing.dest rt in
  let n = As_graph.n g in
  let violations = ref [] in
  let count = ref 0 in
  let depth, okmask, compute_chain = chain_masks g rt in
  for v = 0 to n - 1 do
    if v <> dest then
      if not (Routing.reachable rt v) then
        violations := Report.Unreachable { dest; node = v } :: !violations
      else begin
        let k = Routing.rib_size rt v in
        for i = 0 to k - 1 do
          incr count;
          let via = Routing.rib_via rt v i in
          if depth.(via) < 0 then compute_chain via;
          let actual = 1 + depth.(via) in
          if actual <> Routing.rib_len_at rt v i then
            violations :=
              Report.Rib_len_mismatch
                { dest; at = v; via; expected = Routing.rib_len_at rt v i; actual }
              :: !violations;
          let hop = Relationship.hop_of (Routing.rib_rel_at rt v i) in
          let valley_free =
            match hop with
            | Relationship.Up -> okmask.(via) land ok_s0 <> 0
            | Relationship.Flat | Relationship.Down -> okmask.(via) land ok_s1 <> 0
          in
          if not valley_free then
            violations :=
              Report.Valley_path
                { dest; at = v; via; path = v :: Routing.default_path rt via }
              :: !violations
        done
      end
  done;
  (List.rev !violations, !count)
