module As_graph = Mifo_topology.As_graph
module Routing = Mifo_bgp.Routing
module Policy = Mifo_core.Policy
module Loop_walk = Mifo_core.Loop_walk

type move = { at : int; tag : bool; via : int; deflected : bool }

type counterexample = {
  dest : int;
  entry : int list;
  cycle : int list;
  entry_moves : move list;
  cycle_moves : move list;
}

type loop_result = { counterexample : counterexample option; states_explored : int }

(* Tag carried after the hop [from -> w]: rewritten at the entering
   point of [w] to "the upstream neighbor is my customer". *)
let tag_after g ~from w = Policy.tag_of_upstream (As_graph.rel_exn g w from)

(* Outgoing transitions of product state (v, tag): the default route is
   always available and never checked; every other RIB entry is a
   deflection gated by the exit-point Tag-Check. *)
let edges ~tag_check g rt v tag =
  if v = Routing.dest rt then []
  else
    match Routing.rib rt v with
    | [] -> []
    | default :: alts ->
      let edge deflected (e : Routing.rib_entry) =
        ({ at = v; tag; via = e.via; deflected }, e.via, tag_after g ~from:v e.via)
      in
      edge false default
      :: List.filter_map
           (fun (e : Routing.rib_entry) ->
             if (not tag_check) || Policy.check ~tag ~downstream:e.rel then
               Some (edge true e)
             else None)
           alts

type frame = {
  v : int;
  tag : bool;
  entered_by : move option;  (* the move taken at the parent frame *)
  mutable rest : (move * int * bool) list;
}

let find_loop ?(tag_check = true) g rt =
  let n = As_graph.n g in
  let dest = Routing.dest rt in
  let enc v tag = (2 * v) + if tag then 1 else 0 in
  let color = Array.make (2 * n) 0 in
  (* index of the state's frame in the current DFS path, bottom-first *)
  let pos = Array.make (2 * n) (-1) in
  let explored = ref 0 in
  let result = ref None in
  let path = ref [] (* top of the DFS path first *) in
  let depth = ref 0 in
  let push v tag entered_by =
    let s = enc v tag in
    color.(s) <- 1;
    pos.(s) <- !depth;
    incr depth;
    incr explored;
    path := { v; tag; entered_by; rest = edges ~tag_check g rt v tag } :: !path
  in
  let pop () =
    match !path with
    | [] -> ()
    | f :: rest ->
      let s = enc f.v f.tag in
      color.(s) <- 2;
      pos.(s) <- -1;
      decr depth;
      path := rest
  in
  (* A gray target at path index [target_pos] closes a cycle: frames
     [0 .. target_pos-1] are the entry, [target_pos ..] the cycle, and
     the move entering frame i+1 is the move taken AT frame i. *)
  let extract closing_move target_pos =
    let frames = Array.of_list (List.rev !path) in
    let k = Array.length frames in
    let move_at i =
      if i + 1 < k then
        match frames.(i + 1).entered_by with Some m -> m | None -> assert false
      else closing_move
    in
    let entry = ref [] and entry_moves = ref [] in
    let cycle = ref [] and cycle_moves = ref [] in
    for i = k - 1 downto 0 do
      if i < target_pos then begin
        entry := frames.(i).v :: !entry;
        entry_moves := move_at i :: !entry_moves
      end
      else begin
        cycle := frames.(i).v :: !cycle;
        cycle_moves := move_at i :: !cycle_moves
      end
    done;
    {
      dest;
      entry = !entry;
      cycle = !cycle @ [ frames.(target_pos).v ];
      entry_moves = !entry_moves;
      cycle_moves = !cycle_moves;
    }
  in
  let rec dfs () =
    if Option.is_none !result then
      match !path with
      | [] -> ()
      | f :: _ ->
        (match f.rest with
        | [] -> pop ()
        | (m, w, wtag) :: rest ->
          f.rest <- rest;
          let s = enc w wtag in
          if color.(s) = 1 then result := Some (extract m pos.(s))
          else if color.(s) = 0 then push w wtag (Some m));
        dfs ()
  in
  (* Roots: every possible source with a freshly originated packet,
     which carries the source tag (it may use any of its RIB routes). *)
  let v = ref 0 in
  while Option.is_none !result && !v < n do
    if !v <> dest && color.(enc !v Policy.source_tag) = 0 then begin
      push !v Policy.source_tag None;
      dfs ()
    end;
    incr v
  done;
  { counterexample = !result; states_explored = !explored }

let replay ?(tag_check = true) g rt cx =
  let moves = Array.of_list (cx.entry_moves @ cx.cycle_moves) in
  let total = Array.length moves in
  let cyc_len = List.length cx.cycle_moves in
  if cyc_len = 0 then invalid_arg "As_check.replay: counterexample has an empty cycle";
  let i = ref 0 in
  let decide ~as_id:_ ~upstream:_ ~entries:_ =
    let m =
      if !i < total then moves.(!i)
      else moves.(total - cyc_len + ((!i - total) mod cyc_len))
    in
    incr i;
    if m.deflected then Loop_walk.Deflect m.via else Loop_walk.Default
  in
  let src =
    match cx.entry with v :: _ -> v | [] -> List.hd cx.cycle
  in
  (* Generous budget: the walk revisits an (AS, upstream) state within
     one extra turn of the cycle, well inside this bound. *)
  let max_hops = 2 * (total + cyc_len) + 8 in
  Loop_walk.walk ~tag_check ~max_hops g rt ~decide ~src

let check_paths g rt =
  let dest = Routing.dest rt in
  let n = As_graph.n g in
  let violations = ref [] in
  let count = ref 0 in
  for v = 0 to n - 1 do
    if v <> dest then
      if not (Routing.reachable rt v) then
        violations := Report.Unreachable { dest; node = v } :: !violations
      else
        List.iter
          (fun ((e : Routing.rib_entry), p) ->
            incr count;
            let actual = List.length p - 1 in
            if actual <> e.len then
              violations :=
                Report.Rib_len_mismatch
                  { dest; at = v; via = e.via; expected = e.len; actual }
                :: !violations;
            if not (As_graph.path_is_valley_free g p) then
              violations :=
                Report.Valley_path { dest; at = v; via = e.via; path = p } :: !violations)
          (Routing.rib_paths rt v)
  done;
  (List.rev !violations, !count)
