module As_graph = Mifo_topology.As_graph
module Routing = Mifo_bgp.Routing
module Policy = Mifo_core.Policy
module Loop_walk = Mifo_core.Loop_walk

type move = { at : int; tag : bool; via : int; slot : int; deflected : bool }

type counterexample = {
  dest : int;
  entry : int list;
  cycle : int list;
  entry_moves : move list;
  cycle_moves : move list;
}

type loop_result = { counterexample : counterexample option; states_explored : int }

let all_enabled ~at:_ ~via:_ = true

(* Outgoing transitions of product state (v, tag): the default route is
   always available and never checked; every other RIB entry is a
   deflection gated by the exit-point Tag-Check (and, for incremental
   rechecking, by the [enabled] overlay modelling withdrawn FIB
   alternatives).  Iterates the RIB through the packed accessors — no
   boxed entries materialise, which is what keeps the 44K product DFS
   inside the CSR arena.  The tag after the hop [v -> via] is rewritten
   at [via]'s entering point to "the upstream neighbor is my customer";
   the stored relationship is [via]'s role relative to [v], so the
   upstream role is its inverse. *)
let edges ~tag_check ~enabled ~max_alt _g rt v tag =
  if v = Routing.dest rt then []
  else begin
    let k = Routing.rib_size rt v in
    if k = 0 then []
    else begin
      let edge i deflected =
        let via = Routing.rib_via rt v i in
        let rel = Routing.rib_rel_at rt v i in
        ( { at = v; tag; via; slot = i; deflected },
          via,
          Policy.tag_of_upstream (Mifo_topology.Relationship.inverse rel) )
      in
      (* [max_alt] caps the deflectable RIB indices: a k-limited data
         plane only ever installs the first k RIB alternatives
         (Alt_select pool-caps in preference order), so admitting
         exactly indices 1..k soundly over-approximates it. *)
      let rec alts i acc =
        if i < 1 then acc
        else begin
          let via = Routing.rib_via rt v i in
          let acc =
            if
              ((not tag_check)
              || Policy.check ~tag ~downstream:(Routing.rib_rel_at rt v i))
              && enabled ~at:v ~via
            then edge i true :: acc
            else acc
          in
          alts (i - 1) acc
        end
      in
      edge 0 false :: alts (Stdlib.min max_alt (k - 1)) []
    end
  end

type frame = {
  v : int;
  tag : bool;
  slot : int;  (* ranked slot the packet entered this AS by; 0 = default *)
  entered_by : move option;  (* the move taken at the parent frame *)
  mutable rest : (move * int * bool) list;
}

let find_loop ?(tag_check = true) ?(deflection_enabled = all_enabled) ?k g rt =
  let enabled = deflection_enabled in
  (* [?k = None] is the unbounded legacy automaton over [(AS, tag)]
     states — bit-identical to the historical checker, slot collapsed
     to 0.  [Some kk] bounds deflections to the first [kk] RIB
     alternatives and widens the state to the k-way choice
     [(AS, tag, slot)], [slot] = the ranked slot the packet entered by
     (0 = default/root).  The widening is verdict-equivalent to the
     collapsed bounded automaton (the entering slot does not constrain
     the next move) but counterexample moves record which ranked slot
     closed the cycle. *)
  let max_alt = match k with None -> Stdlib.max_int | Some kk -> kk in
  let slots = match k with None -> 1 | Some kk -> kk + 1 in
  let n = As_graph.n g in
  let dest = Routing.dest rt in
  let enc v tag slot = (((2 * v) + (if tag then 1 else 0)) * slots) + slot in
  let slot_of entered_by =
    if slots = 1 then 0
    else match entered_by with None -> 0 | Some (m : move) -> m.slot
  in
  let color = Array.make (2 * n * slots) 0 in
  (* index of the state's frame in the current DFS path, bottom-first *)
  let pos = Array.make (2 * n * slots) (-1) in
  let explored = ref 0 in
  let result = ref None in
  let path = ref [] (* top of the DFS path first *) in
  let depth = ref 0 in
  let push v tag entered_by =
    let slot = slot_of entered_by in
    let s = enc v tag slot in
    color.(s) <- 1;
    pos.(s) <- !depth;
    incr depth;
    incr explored;
    path :=
      { v; tag; slot; entered_by; rest = edges ~tag_check ~enabled ~max_alt g rt v tag }
      :: !path
  in
  let pop () =
    match !path with
    | [] -> ()
    | f :: rest ->
      let s = enc f.v f.tag f.slot in
      color.(s) <- 2;
      pos.(s) <- -1;
      decr depth;
      path := rest
  in
  (* A gray target at path index [target_pos] closes a cycle: frames
     [0 .. target_pos-1] are the entry, [target_pos ..] the cycle, and
     the move entering frame i+1 is the move taken AT frame i. *)
  let extract closing_move target_pos =
    let frames = Array.of_list (List.rev !path) in
    let k = Array.length frames in
    let move_at i =
      if i + 1 < k then
        match frames.(i + 1).entered_by with Some m -> m | None -> assert false
      else closing_move
    in
    let entry = ref [] and entry_moves = ref [] in
    let cycle = ref [] and cycle_moves = ref [] in
    for i = k - 1 downto 0 do
      if i < target_pos then begin
        entry := frames.(i).v :: !entry;
        entry_moves := move_at i :: !entry_moves
      end
      else begin
        cycle := frames.(i).v :: !cycle;
        cycle_moves := move_at i :: !cycle_moves
      end
    done;
    {
      dest;
      entry = !entry;
      cycle = !cycle @ [ frames.(target_pos).v ];
      entry_moves = !entry_moves;
      cycle_moves = !cycle_moves;
    }
  in
  let rec dfs () =
    if Option.is_none !result then
      match !path with
      | [] -> ()
      | f :: _ ->
        (match f.rest with
        | [] -> pop ()
        | (m, w, wtag) :: rest ->
          f.rest <- rest;
          let s = enc w wtag (slot_of (Some m)) in
          if color.(s) = 1 then result := Some (extract m pos.(s))
          else if color.(s) = 0 then push w wtag (Some m));
        dfs ()
  in
  (* Roots: every possible source with a freshly originated packet,
     which carries the source tag (it may use any of its RIB routes). *)
  let v = ref 0 in
  while Option.is_none !result && !v < n do
    if !v <> dest && color.(enc !v Policy.source_tag 0) = 0 then begin
      push !v Policy.source_tag None;
      dfs ()
    end;
    incr v
  done;
  { counterexample = !result; states_explored = !explored }

let replay ?(tag_check = true) g rt cx =
  let moves = Array.of_list (cx.entry_moves @ cx.cycle_moves) in
  let total = Array.length moves in
  let cyc_len = List.length cx.cycle_moves in
  if cyc_len = 0 then invalid_arg "As_check.replay: counterexample has an empty cycle";
  let i = ref 0 in
  let decide ~as_id:_ ~upstream:_ ~entries:_ =
    let m =
      if !i < total then moves.(!i)
      else moves.(total - cyc_len + ((!i - total) mod cyc_len))
    in
    incr i;
    if m.deflected then Loop_walk.Deflect m.via else Loop_walk.Default
  in
  let src =
    match cx.entry with v :: _ -> v | [] -> List.hd cx.cycle
  in
  (* Generous budget: the walk revisits an (AS, upstream) state within
     one extra turn of the cycle, well inside this bound. *)
  let max_hops = 2 * (total + cyc_len) + 8 in
  Loop_walk.walk ~tag_check ~max_hops g rt ~decide ~src

module Inc = struct
  (* Incremental re-verification over FIB deltas.  A delta toggles one
     deflection edge [(at, via)]; the invariant exploited is that a NEW
     root-reachable cycle after a batch of deltas must traverse a
     re-enabled edge (removing edges from a graph whose reachable region
     was acyclic cannot create cycles).  So a recheck after removals is
     free, and a recheck after additions DFSes only the region reachable
     from the changed states; a full [find_loop] (with the same overlay)
     runs only when that scan actually smells a cycle — which makes the
     returned verdict bit-identical to the full check by construction,
     counterexamples included. *)
  type inc = {
    g : As_graph.t;
    rt : Routing.t;
    tag_check : bool;
    k : int option;  (* k-alternative bound, None = unbounded *)
    slots : int;  (* widened-state slot count: 1 or k+1 *)
    disabled : (int, unit) Hashtbl.t;  (* key = at * n + via *)
    mutable pending_add : (int * int) list;  (* re-enabled since last recheck *)
    mutable pending_remove : (int * int) list;  (* disabled since last recheck *)
    mutable last : loop_result;
    mutable epoch : int;
    visit_epoch : int array;  (* scratch: 2n * slots product states *)
    scan_color : int array;  (* 1 = gray, 2 = black; valid iff epoch matches *)
    mutable full_checks : int;
    mutable region_scans : int;
  }

  type t = inc

  let enabled_of t =
    let n = As_graph.n t.g in
    fun ~at ~via -> not (Hashtbl.mem t.disabled ((at * n) + via))

  let full_check t =
    t.full_checks <- t.full_checks + 1;
    find_loop ~tag_check:t.tag_check ~deflection_enabled:(enabled_of t) ?k:t.k t.g
      t.rt

  let create ?(tag_check = true) ?k g rt =
    let n = As_graph.n g in
    let slots = match k with None -> 1 | Some kk -> kk + 1 in
    let t =
      {
        g;
        rt;
        tag_check;
        k;
        slots;
        disabled = Hashtbl.create 16;
        pending_add = [];
        pending_remove = [];
        last = { counterexample = None; states_explored = 0 };
        epoch = 0;
        visit_epoch = Array.make (2 * n * slots) 0;
        scan_color = Array.make (2 * n * slots) 0;
        full_checks = 0;
        region_scans = 0;
      }
    in
    t.last <- full_check t;
    t

  let result t = t.last
  let stats t = (t.full_checks, t.region_scans)

  let deflection_enabled t ~at ~via = (enabled_of t) ~at ~via

  let set_deflection t ~at ~via ~enabled =
    let n = As_graph.n t.g in
    let key = (at * n) + via in
    if enabled then begin
      if Hashtbl.mem t.disabled key then begin
        Hashtbl.remove t.disabled key;
        t.pending_add <- (at, via) :: t.pending_add
      end
    end
    else if not (Hashtbl.mem t.disabled key) then begin
      Hashtbl.add t.disabled key ();
      t.pending_remove <- (at, via) :: t.pending_remove
    end

  (* DFS over the current edge set from the states touched by re-enabled
     edges; true iff a cycle is reachable from them.  Epoch-stamped
     colors so the 2n scratch arrays are never cleared between scans. *)
  let region_scan t adds =
    t.region_scans <- t.region_scans + 1;
    t.epoch <- t.epoch + 1;
    let epoch = t.epoch in
    let color s = if t.visit_epoch.(s) = epoch then t.scan_color.(s) else 0 in
    let set_color s c =
      t.visit_epoch.(s) <- epoch;
      t.scan_color.(s) <- c
    in
    let enabled = enabled_of t in
    let slots = t.slots in
    let max_alt = match t.k with None -> Stdlib.max_int | Some kk -> kk in
    let enc v tag slot = (((2 * v) + (if tag then 1 else 0)) * slots) + slot in
    let mslot (m : move) = if slots = 1 then 0 else m.slot in
    let explored = ref 0 in
    let found = ref false in
    let stack = Stack.create () in
    let push v tag slot =
      set_color (enc v tag slot) 1;
      incr explored;
      Stack.push
        ( v,
          tag,
          slot,
          ref (edges ~tag_check:t.tag_check ~enabled ~max_alt t.g t.rt v tag) )
        stack
    in
    let drive () =
      while (not !found) && not (Stack.is_empty stack) do
        let v, tag, slot, rest = Stack.top stack in
        match !rest with
        | [] ->
          set_color (enc v tag slot) 2;
          ignore (Stack.pop stack)
        | (m, w, wtag) :: tl -> (
          rest := tl;
          match color (enc w wtag (mslot m)) with
          | 1 -> found := true
          | 0 -> push w wtag (mslot m)
          | _ -> ())
      done
    in
    (* Any new cycle, and any path newly connecting a source root to an
       old cycle, runs through a re-enabled edge — its endpoints (both
       tags and every entering slot, a conservative superset of the
       gated states) seed the scan. *)
    List.iter
      (fun (at, via) ->
        List.iter
          (fun v ->
            List.iter
              (fun tag ->
                for slot = 0 to slots - 1 do
                  if (not !found) && color (enc v tag slot) = 0 then begin
                    push v tag slot;
                    drive ()
                  end
                done)
              [ false; true ])
          [ at; via ])
      adds;
    (!found, !explored)

  let recheck t =
    let adds = t.pending_add and removes = t.pending_remove in
    t.pending_add <- [];
    t.pending_remove <- [];
    (match t.last.counterexample with
    | Some _ ->
      (* The standing verdict is a loop; a removal may have broken it
         (and the cached counterexample may reference a now-disabled
         edge), so anything pending forces a full re-verification. *)
      if adds <> [] || removes <> [] then t.last <- full_check t
    | None ->
      if adds = [] then begin
        (* Removals only: deleting edges from a graph whose reachable
           region is acyclic cannot create a cycle.  Zero states. *)
        if removes <> [] then t.last <- { counterexample = None; states_explored = 0 }
      end
      else begin
        let found, explored = region_scan t adds in
        if found then
          (* The region scan's cycle may sit outside the root-reachable
             region; the full check settles it and, when genuine, yields
             the canonical replayable counterexample. *)
          t.last <- full_check t
        else t.last <- { counterexample = None; states_explored = explored }
      end);
    t.last
end

let check_paths g rt =
  let dest = Routing.dest rt in
  let n = As_graph.n g in
  let violations = ref [] in
  let count = ref 0 in
  for v = 0 to n - 1 do
    if v <> dest then
      if not (Routing.reachable rt v) then
        violations := Report.Unreachable { dest; node = v } :: !violations
      else
        List.iter
          (fun ((e : Routing.rib_entry), p) ->
            incr count;
            let actual = List.length p - 1 in
            if actual <> e.len then
              violations :=
                Report.Rib_len_mismatch
                  { dest; at = v; via = e.via; expected = e.len; actual }
                :: !violations;
            if not (As_graph.path_is_valley_free g p) then
              violations :=
                Report.Valley_path { dest; at = v; via = e.via; path = p } :: !violations)
          (Routing.rib_paths rt v)
  done;
  (List.rev !violations, !count)
