(** AS-level static verification: the deflection product automaton.

    For one destination, the reachable forwarding behaviours of MIFO's
    data plane form a finite automaton over product states
    [(AS, tag bit)]: from every AS the packet may follow the default
    route (never checked) or deflect onto any other RIB route, gated by
    the exit-point Tag-Check; the tag is rewritten at each entering
    point to "the upstream neighbor is my customer" ({!Mifo_core.Policy}).
    Loop-freedom of the data plane (the paper's Theorem, Section III-A3)
    is exactly acyclicity of this automaton from every source state —
    checked here exhaustively, with a concrete counterexample on
    failure that replays through the dynamic walker. *)

type move = Automaton.move = {
  at : int;  (** the AS making the decision *)
  tag : bool;  (** the tag the packet carries there *)
  via : int;  (** the chosen next-hop AS *)
  slot : int;  (** RIB index of the choice: 0 = default, i = i-th alternative *)
  deflected : bool;  (** [false] = default route, [true] = deflection *)
}

type counterexample = {
  dest : int;
  entry : int list;  (** ASes from a source up to (excluding) the cycle head *)
  cycle : int list;  (** the cycle, head repeated last, e.g. [[1;2;3;1]] *)
  entry_moves : move list;  (** one decision per entry AS *)
  cycle_moves : move list;  (** one decision per cycle hop *)
}

type loop_result = { counterexample : counterexample option; states_explored : int }

val find_loop_in : Automaton.t -> loop_result
(** The loop check over an already-built automaton — any overlay, any
    bound.  {!find_loop} below is this over a fresh automaton with a
    deflection overlay; the property suite ({!Props}) runs it under
    failed-link overlays. *)

val find_loop :
  ?tag_check:bool ->
  ?deflection_enabled:(at:int -> via:int -> bool) ->
  ?k:int ->
  Mifo_topology.As_graph.t ->
  Mifo_bgp.Routing.t ->
  loop_result
(** Exhaustive DFS over the product automaton from every source state
    [(s, source_tag)].  [None] counterexample = the data plane is
    loop-free toward this destination for {e every} deflection strategy
    and congestion pattern.  With [tag_check:false] the deflection gate
    is removed — the legacy multi-path ablation, which loops on the
    Fig. 2(a) gadget.  [deflection_enabled] (default: everything) masks
    individual deflection edges — the overlay {!Inc} uses to model
    withdrawn FIB alternatives; the default route is never masked.

    [?k] models the k-alternative data plane: deflections are bounded
    to the first [k] RIB alternatives (the pool
    {!Mifo_core.Alt_select.ranked_alternatives} draws from, so the
    bounded check soundly over-approximates every runtime ranked set)
    and the automaton state widens from [(AS, tag)] to the k-way choice
    [(AS, tag, slot)] where [slot] is the ranked slot the packet
    entered by.  Omitted = the unbounded legacy automaton, bit-identical
    to the historical checker.  O(states + transitions) = O(k·V + E). *)

(** Incremental re-verification.  Holds a verdict for one destination
    and refreshes it as FIB deltas toggle deflection availability,
    re-DFSing only the [(AS, tag)] region reachable from the changed
    entries instead of the full product automaton.  Verdicts are
    bit-identical to a fresh {!find_loop} under the same overlay: a
    recheck that cannot prove cleanliness locally falls back to the full
    DFS (which also yields the canonical, replayable counterexample). *)
module Inc : sig
  type t

  val create :
    ?tag_check:bool -> ?k:int -> Mifo_topology.As_graph.t -> Mifo_bgp.Routing.t -> t
  (** Runs the initial full check.  [?k] as in {!find_loop}: bound the
      automaton to the k-alternative data plane (deltas and verdicts
      then refer to the bounded automaton). *)

  val set_deflection : t -> at:int -> via:int -> enabled:bool -> unit
  (** Record a FIB delta: the alternative at AS [at] via neighbor [via]
      became available/unavailable.  Cheap; verdicts refresh at
      {!recheck}.  Unknown [(at, via)] pairs are harmless (masking an
      edge not in the RIB is a no-op on the automaton). *)

  val deflection_enabled : t -> at:int -> via:int -> bool

  val recheck : t -> loop_result
  (** Refresh the verdict against the pending deltas.  Removals on a
      clean verdict are free; additions trigger a region DFS from the
      changed states and escalate to a full check only when that scan
      finds a candidate cycle.  [states_explored] reflects the work
      actually done (0 when nothing needed exploring). *)

  val result : t -> loop_result
  (** The standing verdict (without rechecking). *)

  val full_check : t -> loop_result
  (** A fresh full {!find_loop} under the current overlay — the oracle
      the bench and the QCheck agreement property compare against. *)

  val stats : t -> int * int
  (** [(full_checks, region_scans)] performed so far. *)
end

val replay :
  ?tag_check:bool ->
  Mifo_topology.As_graph.t ->
  Mifo_bgp.Routing.t ->
  counterexample ->
  Mifo_core.Loop_walk.outcome
(** Drive {!Mifo_core.Loop_walk.walk} with the counterexample's decision
    script (cycling its cycle moves).  A genuine counterexample must
    come back [Looped] — the machine check the ablation harness and the
    tests assert.
    @raise Invalid_argument on an empty cycle. *)

val check_paths :
  Mifo_topology.As_graph.t -> Mifo_bgp.Routing.t -> Report.violation list * int
(** Audit every RIB-derivable path of every AS: valley-free compliance
    and advertised-length agreement, plus reachability.  Returns the
    violations and the number of paths checked.  Runs over the packed
    {!Mifo_bgp.Routing.rib_via}/[rib_len_at]/[rib_rel_at] accessors with
    per-destination chain memos — O(1) and allocation-free per RIB
    entry; boxed paths materialise only inside violation records. *)
