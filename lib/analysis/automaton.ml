module As_graph = Mifo_topology.As_graph
module Routing = Mifo_bgp.Routing
module Policy = Mifo_core.Policy

type move = { at : int; tag : bool; via : int; slot : int; deflected : bool }

type overlay = {
  deflection_enabled : at:int -> via:int -> bool;
  link_enabled : at:int -> via:int -> bool;
  repair : (int * int) option;
}

let all ~at:_ ~via:_ = true
let default_overlay = { deflection_enabled = all; link_enabled = all; repair = None }

let deflection_overlay enabled = { default_overlay with deflection_enabled = enabled }

(* The local-repair failure model for one failed default-tree link
   [(u, v = next_hop u)]: the link is masked in both directions, [u]
   promotes its first surviving RIB alternative to an unchecked default
   (local BGP reconvergence), and every RIB alternative anywhere whose
   recorded route runs through [u] is withdrawn — the failure breaks the
   advertised path, and the control plane propagates the withdrawal
   before the static question is asked.  RIB vias are distinct
   neighbors, so with [rib_size u >= 2] the promoted slot is always 1;
   links below that are the caller's "unprotectable" census, not an
   overlay.

   The withdrawal rule is what makes the model compose: an alternative
   via [x] routes through [u] iff [x] sits in [u]'s default subtree, so
   under the overlay no surviving deflection can re-enter that subtree.
   [u]'s own alternatives always survive (BGP's loop filter already
   keeps [u] off their paths), so the repaired default escapes the
   subtree and rejoins the intact part of the tree — on a loop-free
   base automaton the repaired one stays loop-free, and the sweep's
   delta certificates almost never escalate. *)
let fail_link rt ~u ~v =
  let dest = Routing.dest rt in
  (* [u] on the default chain of [x] — [x] is in [u]'s subtree. *)
  let through_u x =
    let rec walk x = x = u || (x <> dest && match Routing.next_hop rt x with
      | Some y -> walk y
      | None -> false)
    in
    walk x
  in
  let deflection_enabled ~at:_ ~via = not (through_u via) in
  let link_enabled ~at ~via = not ((at = u && via = v) || (at = v && via = u)) in
  (* At most one endpoint loses its default (the default graph is a tree
     toward the destination, so u->v and v->u cannot both be default
     hops); that endpoint promotes RIB slot 1 — vias are distinct
     neighbors, so slot 1 always survives the mask. *)
  let needs_repair w x =
    (match Routing.next_hop rt w with Some nh -> nh = x | None -> false)
    && Routing.rib_size rt w >= 2
  in
  let repair =
    if needs_repair u v then Some (u, 1)
    else if needs_repair v u then Some (v, 1)
    else None
  in
  { deflection_enabled; link_enabled; repair }

type t = {
  g : As_graph.t;
  rt : Routing.t;
  tag_check : bool;
  max_alt : int;
  slots : int;
  n : int;
  dest : int;
  overlay : overlay;
}

let create ?(tag_check = true) ?(overlay = default_overlay) ?k g rt =
  let max_alt = match k with None -> Stdlib.max_int | Some kk -> kk in
  let slots = match k with None -> 1 | Some kk -> kk + 1 in
  { g; rt; tag_check; max_alt; slots; n = As_graph.n g; dest = Routing.dest rt; overlay }

let n_states t = 2 * t.n * t.slots
let n_cstates t = 2 * t.n
let slots t = t.slots
let dest t = t.dest
let routing t = t.rt
let graph t = t.g

let enc t v tag slot = (((2 * v) + (if tag then 1 else 0)) * t.slots) + slot
let cenc _t v tag = (2 * v) + if tag then 1 else 0
let slot_of_move t (m : move) = if t.slots = 1 then 0 else m.slot

(* Outgoing transitions of product state (v, tag): the default route is
   always available and never checked; every other RIB entry is a
   deflection gated by the exit-point Tag-Check and by the overlay
   ([deflection_enabled] models withdrawn FIB alternatives,
   [link_enabled] a failed physical link, [repair] the post-failure
   promoted default).  Iterates the RIB through the packed accessors —
   no boxed entries materialise, which is what keeps the 44K product DFS
   inside the CSR arena.  The tag after the hop [v -> via] is rewritten
   at [via]'s entering point to "the upstream neighbor is my customer";
   the stored relationship is [via]'s role relative to [v], so the
   upstream role is its inverse.

   Successor order is load-bearing: the (possibly repaired) default edge
   first, then deflections by ascending RIB index — [As_check.find_loop]
   counterexamples are bit-identical to the historical checker because
   this order is. *)
let edges t v tag =
  let rt = t.rt in
  if v = t.dest then []
  else begin
    let k = Routing.rib_size rt v in
    if k = 0 then []
    else begin
      let default_slot =
        match t.overlay.repair with Some (u, s) when u = v -> s | _ -> 0
      in
      let edge i deflected =
        let via = Routing.rib_via rt v i in
        let rel = Routing.rib_rel_at rt v i in
        ( { at = v; tag; via; slot = i; deflected },
          via,
          Policy.tag_of_upstream (Mifo_topology.Relationship.inverse rel) )
      in
      (* [max_alt] caps the deflectable RIB indices: a k-limited data
         plane only ever installs the first k RIB alternatives
         (Alt_select pool-caps in preference order), so admitting
         exactly indices 1..k soundly over-approximates it. *)
      let rec alts i acc =
        if i < 1 then acc
        else begin
          let via = Routing.rib_via rt v i in
          let acc =
            if
              i <> default_slot
              && ((not t.tag_check)
                 || Policy.check ~tag ~downstream:(Routing.rib_rel_at rt v i))
              && t.overlay.deflection_enabled ~at:v ~via
              && t.overlay.link_enabled ~at:v ~via
            then edge i true :: acc
            else acc
          in
          alts (i - 1) acc
        end
      in
      let tail = alts (Stdlib.min t.max_alt (k - 1)) [] in
      if
        default_slot < k
        && t.overlay.link_enabled ~at:v ~via:(Routing.rib_via rt v default_slot)
      then edge default_slot false :: tail
      else tail
    end
  end

(* Allocation-light successor iteration in exactly [edges]'s order, for
   the forward/co-reachability traversals that visit millions of states
   per 44K destination. *)
let iter_succ t v tag ~f =
  let rt = t.rt in
  if v <> t.dest then begin
    let k = Routing.rib_size rt v in
    if k > 0 then begin
      let default_slot =
        match t.overlay.repair with Some (u, s) when u = v -> s | _ -> 0
      in
      let emit i deflected =
        let via = Routing.rib_via rt v i in
        let rel = Routing.rib_rel_at rt v i in
        f
          { at = v; tag; via; slot = i; deflected }
          via
          (Policy.tag_of_upstream (Mifo_topology.Relationship.inverse rel))
      in
      if
        default_slot < k
        && t.overlay.link_enabled ~at:v ~via:(Routing.rib_via rt v default_slot)
      then emit default_slot false;
      let hi = Stdlib.min t.max_alt (k - 1) in
      for i = 1 to hi do
        if
          i <> default_slot
          && ((not t.tag_check)
             || Policy.check ~tag ~downstream:(Routing.rib_rel_at rt v i))
          && t.overlay.deflection_enabled ~at:v ~via:(Routing.rib_via rt v i)
          && t.overlay.link_enabled ~at:v ~via:(Routing.rib_via rt v i)
        then emit i true
      done
    end
  end

(* Epoch-stamped scratch: an int-per-state map whose clear is O(1) (bump
   the epoch), so per-destination and per-failed-link rounds at 44K
   never memset the 2n(k+1) arrays.  Unstamped cells read 0. *)
module Scratch = struct
  type t = { mutable epoch : int; mutable stamp : int array; mutable data : int array }

  let create () = { epoch = 0; stamp = [||]; data = [||] }

  let round t ~states =
    if Array.length t.stamp < states then begin
      t.stamp <- Array.make states 0;
      t.data <- Array.make states 0;
      t.epoch <- 1
    end
    else t.epoch <- t.epoch + 1

  let[@inline] get t s = if t.stamp.(s) = t.epoch then t.data.(s) else 0

  let[@inline] set t s x =
    t.stamp.(s) <- t.epoch;
    t.data.(s) <- x
end

(* Memoized co-reachability of the destination over the collapsed
   (AS, tag) space — transitions do not depend on the entering slot, so
   delivery is slot-independent and 2n cells suffice at any k.  Exact on
   an acyclic automaton (run the loop check first): the iterative DFS
   three-colors states, and a gray revisit would need a cycle.  Memo
   values in [scratch]: 0 unknown, 1 in progress, 2 delivers, 3 dead. *)
let co_reach t ~scratch v0 tag0 =
  let c0 = cenc t v0 tag0 in
  match Scratch.get scratch c0 with
  | 2 -> true
  | 3 -> false
  | _ ->
    let stack = ref [ (v0, tag0) ] in
    while !stack <> [] do
      match !stack with
      | [] -> ()
      | (v, tag) :: rest ->
        let c = cenc t v tag in
        (match Scratch.get scratch c with
        | 2 | 3 -> stack := rest
        | 0 ->
          if v = t.dest then begin
            Scratch.set scratch c 2;
            stack := rest
          end
          else begin
            Scratch.set scratch c 1;
            (* push unknown successors; settle on the revisit *)
            iter_succ t v tag ~f:(fun _m w wtag ->
                if w = t.dest then Scratch.set scratch (cenc t w wtag) 2
                else if Scratch.get scratch (cenc t w wtag) = 0 then
                  stack := (w, wtag) :: !stack)
          end
        | _ ->
          (* in progress: every successor is settled (acyclicity), fold *)
          let delivers = ref false in
          iter_succ t v tag ~f:(fun _m w wtag ->
              if Scratch.get scratch (cenc t w wtag) = 2 then delivers := true);
          Scratch.set scratch c (if !delivers then 2 else 3);
          stack := rest)
    done;
    Scratch.get scratch c0 = 2

(* Region cycle scan: DFS over the widened state space from every
   (seed, tag, slot) state; true iff a cycle is reachable from the
   seeds.  The incremental checker seeds it with the endpoints of
   re-enabled deflection edges, the resilience sweep with the endpoints
   of a failed-then-repaired link — in both cases a NEW cycle must run
   through a changed edge, so a clean scan certifies the whole automaton
   without re-walking it.  Starts a fresh scratch round itself. *)
let cycle_from t ~scratch ~seeds =
  Scratch.round scratch ~states:(n_states t);
  let explored = ref 0 in
  let found = ref false in
  let stack = Stack.create () in
  let push v tag slot =
    Scratch.set scratch (enc t v tag slot) 1;
    incr explored;
    Stack.push (v, tag, slot, ref (edges t v tag)) stack
  in
  let drive () =
    while (not !found) && not (Stack.is_empty stack) do
      let v, tag, slot, rest = Stack.top stack in
      match !rest with
      | [] ->
        Scratch.set scratch (enc t v tag slot) 2;
        ignore (Stack.pop stack)
      | (m, w, wtag) :: tl -> (
        rest := tl;
        let s = enc t w wtag (slot_of_move t m) in
        match Scratch.get scratch s with
        | 1 -> found := true
        | 0 -> push w wtag (slot_of_move t m)
        | _ -> ())
    done
  in
  List.iter
    (fun v ->
      List.iter
        (fun tag ->
          for slot = 0 to t.slots - 1 do
            if (not !found) && Scratch.get scratch (enc t v tag slot) = 0 then begin
              push v tag slot;
              drive ()
            end
          done)
        [ false; true ])
    seeds;
  (!found, !explored)

(* Forward reachability from every source root (v, source_tag) over the
   collapsed space, calling [f v tag entering_move] once per state in
   first-visit order.  [entering_move] is [None] at roots, otherwise the
   move by which the DFS first reached the state — a parent pointer from
   which concrete decision scripts are rebuilt. *)
let iter_reachable t ~scratch ~f =
  let pending = ref [] in
  let visit v tag m =
    let c = cenc t v tag in
    if Scratch.get scratch c = 0 then begin
      Scratch.set scratch c 1;
      f v tag m;
      pending := (v, tag) :: !pending
    end
  in
  let drain () =
    while !pending <> [] do
      match !pending with
      | [] -> ()
      | (v, tag) :: rest ->
        pending := rest;
        iter_succ t v tag ~f:(fun m w wtag -> visit w wtag (Some m))
    done
  in
  for v = 0 to t.n - 1 do
    if v <> t.dest then begin
      visit v Policy.source_tag None;
      drain ()
    end
  done
