(** The deflection product automaton, factored out of {!As_check}.

    For one destination, the reachable forwarding behaviours of MIFO's
    data plane form a finite automaton over product states
    [(AS, tag, slot)]: from every AS the packet may follow the default
    route (never checked) or deflect onto another admissible RIB route,
    gated by the exit-point Tag-Check; the tag is rewritten at each
    entering point ({!Mifo_core.Policy}).  This module owns the
    transition relation (iterated through the packed CSR accessors, so
    traversals at 44K never leave the arena), the packed state encoding,
    the overlay hooks the checkers compose (withdrawn deflections,
    failed links, local repair), epoch-stamped scratch, and the
    forward/co-reachability traversals the property checkers
    ({!As_check} loop-freedom, {!Props} delivery / stretch / resilience)
    share. *)

type move = {
  at : int;  (** the AS making the decision *)
  tag : bool;  (** the tag the packet carries there *)
  via : int;  (** the chosen next-hop AS *)
  slot : int;  (** RIB index of the choice: 0 = default, i = i-th alternative *)
  deflected : bool;  (** [false] = default route, [true] = deflection *)
}

(** Edge masks composed into the transition relation.
    [deflection_enabled] gates deflection edges only (the {!As_check.Inc}
    overlay modelling withdrawn FIB alternatives; the default route is
    never masked by it).  [link_enabled] gates {e every} edge over a
    directed link, default included — a failed physical link.  [repair]
    is [(node, slot)]: at [node] the default edge is RIB entry [slot]
    instead of entry 0, taken unconditionally (the locally repaired
    default after its link died); entry [slot] stops being a
    deflection. *)
type overlay = {
  deflection_enabled : at:int -> via:int -> bool;
  link_enabled : at:int -> via:int -> bool;
  repair : (int * int) option;
}

val default_overlay : overlay
(** Everything enabled, no repair — the healthy data plane. *)

val deflection_overlay : (at:int -> via:int -> bool) -> overlay

val fail_link : Mifo_bgp.Routing.t -> u:int -> v:int -> overlay
(** The single-link-failure model for the failed default-tree link
    [(u, v = next_hop u)]: both directions of the link masked, [u]'s
    first surviving RIB alternative (slot 1 — RIB vias are distinct
    neighbors) promoted to an unchecked default when [rib_size u >= 2],
    and every RIB alternative whose recorded route runs through [u]
    (i.e. whose via sits in [u]'s default subtree) withdrawn everywhere
    — those advertisements are broken by the failure.  Below
    [rib_size u >= 2] the node is unprotectable and no repair is
    installed — the delivery check then reports the stranding.

    Because [u]'s own alternatives never route through [u] (BGP loop
    filter), the repair always survives the withdrawal, and no
    surviving edge re-enters [u]'s subtree: a loop-free base automaton
    provably stays loop-free under this overlay. *)

type t

val create :
  ?tag_check:bool ->
  ?overlay:overlay ->
  ?k:int ->
  Mifo_topology.As_graph.t ->
  Mifo_bgp.Routing.t ->
  t
(** [?k] bounds deflections to the first [k] RIB alternatives and widens
    the state to [(AS, tag, slot)] ([slot] = entering ranked slot);
    omitted = the unbounded automaton with the slot collapsed to 0 —
    exactly {!As_check.find_loop}'s two regimes. *)

val n_states : t -> int
(** [2 * n * slots] — size of the widened state space. *)

val n_cstates : t -> int
(** [2 * n] — size of the collapsed [(AS, tag)] space.  Transitions do
    not depend on the entering slot, so slot-independent analyses
    (delivery, stretch) run over this space at any [k]. *)

val slots : t -> int
val dest : t -> int
val routing : t -> Mifo_bgp.Routing.t
val graph : t -> Mifo_topology.As_graph.t

val enc : t -> int -> bool -> int -> int
(** [enc t v tag slot] — packed widened-state index. *)

val cenc : t -> int -> bool -> int
(** [cenc t v tag] — packed collapsed-state index. *)

val slot_of_move : t -> move -> int
(** The slot a packet entering by [move] occupies: [move.slot], or 0
    when the automaton is unbounded (slot collapsed). *)

val edges : t -> int -> bool -> (move * int * bool) list
(** Outgoing transitions of [(v, tag)] as
    [(move, successor AS, successor tag)].  Order is load-bearing and
    stable: the (possibly repaired) default edge first, then deflections
    by ascending RIB index — {!As_check.find_loop} counterexamples are
    bit-identical to the historical checker because this order is.
    Empty at the destination and at RIB-less nodes. *)

val iter_succ : t -> int -> bool -> f:(move -> int -> bool -> unit) -> unit
(** [edges] without the list: same transitions, same order, no
    allocation beyond the [move] records. *)

(** Epoch-stamped per-state scratch: an int map whose clear is O(1)
    (bump the epoch), so per-destination / per-failed-link rounds never
    memset the state arrays.  Unstamped cells read 0. *)
module Scratch : sig
  type t

  val create : unit -> t

  val round : t -> states:int -> unit
  (** Start a fresh round over [states] cells: O(1) unless the capacity
      must grow. *)

  val get : t -> int -> int
  val set : t -> int -> int -> unit
end

val co_reach : t -> scratch:Scratch.t -> int -> bool -> bool
(** [co_reach t ~scratch v tag] — can state [(v, tag)] reach the
    destination?  Memoized in [scratch] (call {!Scratch.round} with
    {!n_cstates} cells once per automaton, then share the scratch across
    queries).  Exact only on an acyclic automaton — run the loop check
    first; on a cyclic one, states on a cycle conservatively read as not
    delivering. *)

val cycle_from : t -> scratch:Scratch.t -> seeds:int list -> bool * int
(** [cycle_from t ~scratch ~seeds] — is a cycle reachable from any state
    [(seed, tag, slot)]?  Returns the verdict and the states explored.
    Sound as a {e delta} certificate: when the automaton was acyclic
    before a change and every added edge touches a seed node, a [false]
    answer proves the whole automaton still acyclic (a new cycle must
    traverse an added edge).  A [true] answer is only a smell — the
    cycle may be outside the root-reachable region; escalate to the full
    check.  Starts its own {!Scratch.round}. *)

val iter_reachable :
  t -> scratch:Scratch.t -> f:(int -> bool -> move option -> unit) -> unit
(** Forward reachability over the collapsed space from every source root
    [(v, source_tag)]: calls [f v tag entering_move] once per reachable
    state in first-visit order.  [entering_move] is [None] at roots,
    else the move by which the traversal first reached the state — a
    parent pointer ([(move.at, move.tag)] is the parent state) from
    which concrete decision scripts are rebuilt.  Uses the same scratch
    protocol as {!co_reach} (fresh {!Scratch.round} required; cells are
    left nonzero for every visited state). *)
