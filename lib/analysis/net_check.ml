module Packetsim = Mifo_netsim.Packetsim
module Engine = Mifo_core.Engine
module Policy = Mifo_core.Policy
module Fib = Mifo_core.Fib
module Prefix = Mifo_bgp.Prefix
module Routing = Mifo_bgp.Routing

(* ---------- FIB / RIB consistency ---------- *)

let audit_fibs sim ~routing =
  let violations = ref [] in
  let checked = ref 0 in
  let add v = violations := v :: !violations in
  let dest_of_prefix p =
    List.find_opt (fun (d, _) -> Prefix.equal (Prefix.of_as d) p) routing
  in
  for id = 0 to Packetsim.node_count sim - 1 do
    match Packetsim.node_view sim id with
    | Packetsim.Host_view _ -> ()
    | Packetsim.Router_view { as_id } ->
      Fib.iter (Packetsim.fib sim id) (fun prefix entry ->
          incr checked;
          let pstr = Prefix.to_string prefix in
          let dangling port reason =
            add (Report.Dangling_fib_port { node = id; prefix = pstr; port; reason })
          in
          let check_port ~role port =
            if port < 0 || port >= Packetsim.port_count sim id then
              dangling port (role ^ " port out of range")
            else begin
              let peer, _ = Packetsim.port_peer sim id port in
              match Packetsim.port_kind sim id port with
              | Engine.Local -> (
                match Packetsim.node_view sim peer with
                | Packetsim.Host_view { addr } ->
                  if not (Prefix.contains prefix addr) then
                    dangling port (role ^ " local port's host lies outside the prefix")
                | Packetsim.Router_view _ ->
                  dangling port (role ^ " local port wired to a router"))
              | Engine.Ebgp { neighbor_as; _ } -> (
                (match Packetsim.node_view sim peer with
                 | Packetsim.Router_view { as_id = peer_as } ->
                   if peer_as <> neighbor_as then
                     dangling port (role ^ " eBGP port's peer AS mismatches the wiring")
                 | Packetsim.Host_view _ ->
                   dangling port (role ^ " eBGP port wired to a host"));
                match dest_of_prefix prefix with
                | None -> ()
                | Some (d, rt) ->
                  if
                    as_id <> d
                    && not
                         (List.exists
                            (fun (e : Routing.rib_entry) -> e.Routing.via = neighbor_as)
                            (Routing.rib rt as_id))
                  then
                    dangling port
                      (Printf.sprintf "%s eBGP port not backed by a RIB route via AS %d"
                         role neighbor_as))
              | Engine.Ibgp { peer_router } ->
                if peer <> peer_router then
                  dangling port (role ^ " iBGP port wired to a different router")
                else begin
                  (match Packetsim.node_view sim peer with
                   | Packetsim.Router_view { as_id = peer_as } ->
                     if peer_as <> as_id then
                       dangling port (role ^ " iBGP session crosses an AS boundary");
                     if Packetsim.ibgp_route sim id peer_router = None then
                       dangling port (role ^ " tunnel endpoint is not an iBGP peer");
                     if Fib.lookup (Packetsim.fib sim peer) prefix.Prefix.network = None
                     then
                       dangling port
                         (role ^ " tunnel endpoint has no route for the prefix")
                   | Packetsim.Host_view _ ->
                     dangling port (role ^ " iBGP port wired to a host"))
                end
            end
          in
          check_port ~role:"default" (Fib.out_port entry);
          for slot = 0 to Fib.alt_count entry - 1 do
            check_port ~role:(Printf.sprintf "alt[%d]" slot) (Fib.alt_at entry slot)
          done)
  done;
  (List.rev !violations, !checked)

(* ---------- the router-level product automaton ---------- *)

(* A packet's context beyond its position and tag: [Plain] with the
   iBGP peer that just deflected it here (set only on the decap hop),
   or inside an IP-in-IP tunnel toward [ep]. *)
type ctx = Plain of { sender : int option } | Tunnel of { src : int; ep : int }
type state = { node : int; tag : bool; c : ctx }

let find_loops sim ~routing =
  let cfg = Packetsim.config sim in
  let tag_check = cfg.Packetsim.tag_check in
  let ibgp_encap = cfg.Packetsim.ibgp_encap in
  let violations = ref [] in
  let explored = ref 0 in
  (* violation records as keys — a dedup set, not a data plane *)
  let emitted = Hashtbl.create 16 in (* lint:allow: dedup set *)
  let add v =
    if not (Hashtbl.mem emitted v) (* lint:allow: dedup set *) then begin
      Hashtbl.replace emitted v () (* lint:allow: dedup set *);
      violations := v :: !violations
    end
  in
  List.iter
    (fun (d, _rt) ->
      let prefix = Prefix.of_as d in
      let pstr = Prefix.to_string prefix in
      let addr = Prefix.host_of_as d 1 in
      (* Cross the wire out of [m] on [p]: terminal at a host, else the
         arrival state after the entering point's (re)tagging. *)
      let arrive m tag c p =
        let peer, peer_port = Packetsim.port_peer sim m p in
        match Packetsim.node_view sim peer with
        | Packetsim.Host_view _ -> None
        | Packetsim.Router_view _ ->
          let tag' =
            match Packetsim.port_kind sim peer peer_port with
            | Engine.Ebgp { rel; _ } -> Policy.tag_of_upstream rel
            | Engine.Local -> Policy.source_tag
            | Engine.Ibgp _ -> tag
          in
          Some { node = peer; tag = tag'; c }
      in
      (* Every forwarding decision the engine could take from this
         state, under SOME congestion pattern and hash bucket: a present
         alternative is always reachable (a congested egress forces at
         least one deflected bucket), the default is unavailable only
         when the deflecting sender is the default next hop. *)
      let succs st =
        let m = st.node in
        let c =
          match st.c with
          | Tunnel { src; ep } when ep = m -> Plain { sender = Some src }
          | other -> other
        in
        match c with
        | Tunnel { src = _; ep } -> (
          (* in-transit tunnel: routed on the outer header, no deflection *)
          let out =
            match Packetsim.ibgp_route sim m ep with
            | Some p -> Some p
            | None -> (
              match Fib.lookup (Packetsim.fib sim m) addr with
              | None ->
                add (Report.Unreachable { dest = d; node = m });
                None
              | Some entry -> Some (Fib.out_port entry))
          in
          match out with
          | None -> []
          | Some p -> (
            match Packetsim.port_kind sim m p with
            | Engine.Ebgp _ ->
              add
                (Report.Ebgp_tunnel_egress
                   { node = m; endpoint = ep; port = p; prefix = pstr });
              []
            | Engine.Ibgp _ | Engine.Local -> Option.to_list (arrive m st.tag c p)))
        | Plain { sender } -> (
          match Fib.lookup (Packetsim.fib sim m) addr with
          | None ->
            add (Report.Unreachable { dest = d; node = m });
            []
          | Some entry -> (
            match Packetsim.port_kind sim m (Fib.out_port entry) with
            | Engine.Local -> []  (* delivered to the attached host *)
            | Engine.Ebgp _ | Engine.Ibgp _ ->
              let deflected_to_me =
                match sender with
                | None -> false
                | Some s ->
                  let peer, _ = Packetsim.port_peer sim m (Fib.out_port entry) in
                  peer = s
              in
              let default_edge =
                arrive m st.tag (Plain { sender = None }) (Fib.out_port entry)
              in
              let alt_edges =
                (* One edge per ranked slot — the bucket→slot spread can
                   place a deflected packet onto any live alternative.
                   The router-level state is deliberately NOT widened by
                   slot: the entering slot does not constrain later
                   moves, so the collapsed automaton is
                   verdict-equivalent (slot-distinct multi-edges between
                   the same states change nothing for cycle
                   detection). *)
                let rec slot_edges i acc =
                  if i < 0 then acc
                  else begin
                    let a = Fib.alt_at entry i in
                    let acc =
                      match Packetsim.port_kind sim m a with
                      | Engine.Ibgp { peer_router } ->
                        (if ibgp_encap then
                           arrive m st.tag (Tunnel { src = m; ep = peer_router }) a
                         else arrive m st.tag (Plain { sender = None }) a)
                        :: acc
                      | Engine.Ebgp { rel; _ } ->
                        if (not tag_check) || Policy.check ~tag:st.tag ~downstream:rel
                        then arrive m st.tag (Plain { sender = None }) a :: acc
                        else acc
                        (* failed check: dropped when forced, default otherwise *)
                      | Engine.Local -> default_edge :: acc
                    in
                    slot_edges (i - 1) acc
                  end
                in
                slot_edges (Fib.alt_count entry - 1) []
              in
              let forced = deflected_to_me && Fib.alt_count entry > 0 in
              List.filter_map Fun.id
                (if forced then alt_edges else default_edge :: alt_edges)))
      in
      (* DFS with a gray path for cycle extraction. *)
      (* keys are structured (node, tag, tunnel-ctx) states with no dense
         int encoding — a flat array cannot index them *)
      let color = Hashtbl.create 256 in (* lint:allow: structured state keys *)
      let pos = Hashtbl.create 256 in (* lint:allow: structured state keys *)
      let path = ref [] (* (state, remaining succs), top first *) in
      let depth = ref 0 in
      let found = ref false in
      let push st =
        Hashtbl.replace color st 1 (* lint:allow: structured state keys *);
        Hashtbl.replace pos st !depth (* lint:allow: structured state keys *);
        incr depth;
        incr explored;
        path := (st, ref (succs st)) :: !path
      in
      let pop () =
        match !path with
        | [] -> ()
        | (st, _) :: rest ->
          Hashtbl.replace color st 2 (* lint:allow: structured state keys *);
          Hashtbl.remove pos st (* lint:allow: structured state keys *);
          decr depth;
          path := rest
      in
      let extract target_pos closing =
        let nodes =
          Array.of_list (List.rev_map (fun (st, _) -> st.node) !path)
        in
        let entry = Array.to_list (Array.sub nodes 0 target_pos) in
        let cycle =
          Array.to_list (Array.sub nodes target_pos (Array.length nodes - target_pos))
          @ [ closing.node ]
        in
        add (Report.Forwarding_loop { dest = d; level = Report.Router_level; entry; cycle })
      in
      let rec dfs () =
        if not !found then
          match !path with
          | [] -> ()
          | (_, rest) :: _ ->
            (match !rest with
            | [] -> pop ()
            | st :: more ->
              rest := more;
              (match Hashtbl.find_opt color st (* lint:allow: structured keys *) with
              | Some 1 ->
                found := true;
                extract (Hashtbl.find pos st (* lint:allow: structured keys *)) st
              | Some _ -> ()
              | None -> push st));
            dfs ()
      in
      (* Roots: a fresh packet from any attached host enters its access
         router through a Local port, so it carries the source tag. *)
      for h = 0 to Packetsim.node_count sim - 1 do
        match Packetsim.node_view sim h with
        | Packetsim.Router_view _ -> ()
        | Packetsim.Host_view _ ->
          if Packetsim.port_count sim h > 0 && not !found then begin
            let rtr, _ = Packetsim.port_peer sim h 0 in
            match Packetsim.node_view sim rtr with
            | Packetsim.Host_view _ -> ()
            | Packetsim.Router_view _ ->
              let st =
                { node = rtr; tag = Policy.source_tag; c = Plain { sender = None } }
              in
              if not (Hashtbl.mem color st) (* lint:allow: structured keys *) then begin
                push st;
                dfs ()
              end
          end
      done)
    routing;
  (List.rev !violations, !explored)
