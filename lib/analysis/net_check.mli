(** Router-level static verification over a built {!Mifo_netsim.Packetsim}
    network: FIB/RIB consistency plus the product forwarding automaton
    with tunnel state.

    Where {!As_check} reasons on the control plane alone, this pass
    audits what is actually {e installed}: every FIB port (default and
    alternative) against the RIB and the wiring, and the reachable
    packet behaviours over states [(router, tag, encapsulation)] —
    including the engine's forced-alternative rule, IP-in-IP tunnel
    transit and decapsulation.  The [tag_check] / [ibgp_encap] knobs are
    read from the simulator's config, so the ablations are verified
    under exactly the semantics they run. *)

val audit_fibs :
  Mifo_netsim.Packetsim.t ->
  routing:(int * Mifo_bgp.Routing.t) list ->
  Report.violation list * int
(** Audit every FIB entry of every router.  [routing] associates each
    audited destination AS [d] (announcing [Prefix.of_as d]) with its
    routing state.  Checks: port validity; eBGP ports wired to the
    declared neighbor AS and backed by a RIB route; iBGP ports wired to
    the declared peer, inside one AS, with a live iBGP session and a
    route for the prefix at the tunnel endpoint; Local ports wired to a
    host inside the prefix.  Returns the violations and the number of
    FIB entries checked. *)

val find_loops :
  Mifo_netsim.Packetsim.t ->
  routing:(int * Mifo_bgp.Routing.t) list ->
  Report.violation list * int
(** Exhaustive search of the router-level product automaton for every
    listed destination, from every attached host.  Reports reachable
    forwarding cycles ([Forwarding_loop] at [Router_level], with the
    concrete router cycle), encapsulated packets able to exit an eBGP
    port mid-tunnel ([Ebgp_tunnel_egress]) and routers without a route
    ([Unreachable]).  Returns the violations and the number of states
    explored. *)
