module As_graph = Mifo_topology.As_graph
module Routing = Mifo_bgp.Routing
module Policy = Mifo_core.Policy
module Loop_walk = Mifo_core.Loop_walk
module Obs = Mifo_util.Obs
module Prng = Mifo_util.Prng
module Scratch = Automaton.Scratch

type prop = Loops | Delivery | Stretch | Resilience

let all = [ Loops; Delivery; Stretch; Resilience ]

let prop_to_string = function
  | Loops -> "loops"
  | Delivery -> "delivery"
  | Stretch -> "stretch"
  | Resilience -> "resilience"

let prop_of_string = function
  | "loops" -> Some Loops
  | "delivery" -> Some Delivery
  | "stretch" -> Some Stretch
  | "resilience" -> Some Resilience
  | _ -> None

let parse_props s =
  let parts = String.split_on_char ',' s in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | p :: rest -> (
      match prop_of_string (String.trim p) with
      | Some prop -> go (if List.mem prop acc then acc else prop :: acc) rest
      | None -> Error (Printf.sprintf "unknown property %S" (String.trim p)))
  in
  match go [] parts with Ok [] -> Error "empty property list" | r -> r

let default_stretch_bound = 16

(* Per-source stretch distribution: worst deliverable deflection-path
   length minus the default length, one observation per source per
   destination.  Shared across destinations and domains (Obs buckets are
   atomic; totals are scheduling-independent). *)
let h_stretch =
  Obs.histogram ~bounds:[| 0.; 1.; 2.; 3.; 4.; 6.; 8.; 12.; 16.; 24.; 32. |]
    "check.stretch"

(* ---- delivery ---------------------------------------------------------- *)

type stranded = { s_at : int; s_path : int list; s_moves : Automaton.move list }

(* Root-reachable states that cannot co-reach the destination, with a
   concrete entry script per stranding.  [can_scratch] must already hold
   a fresh round over the collapsed space; it is left warm so the
   stretch pass reuses the memo.  Returns the number of collapsed states
   the forward sweep visited, and the strandings in state-index order
   (deterministic at any domain count). *)
let stranded_scan auto ~reach_scratch ~can_scratch =
  let rt = Automaton.routing auto in
  let n = As_graph.n (Automaton.graph auto) in
  let dest = Automaton.dest auto in
  Scratch.round reach_scratch ~states:(Automaton.n_cstates auto);
  let parents = Array.make (Automaton.n_cstates auto) None in
  let visited = ref 0 in
  Automaton.iter_reachable auto ~scratch:reach_scratch ~f:(fun v tag m ->
      incr visited;
      parents.(Automaton.cenc auto v tag) <- m);
  let rec build v tag path moves =
    match parents.(Automaton.cenc auto v tag) with
    | None -> (v :: path, moves)
    | Some (m : Automaton.move) -> build m.at m.tag (v :: path) (m :: moves)
  in
  let stranded = ref [] in
  for v = n - 1 downto 0 do
    if v <> dest && Routing.reachable rt v then
      List.iter
        (fun tag ->
          if
            Scratch.get reach_scratch (Automaton.cenc auto v tag) <> 0
            && not (Automaton.co_reach auto ~scratch:can_scratch v tag)
          then begin
            let path, moves = build v tag [] [] in
            stranded := { s_at = v; s_path = path; s_moves = moves } :: !stranded
          end)
        [ true; false ]
  done;
  (!visited, !stranded)

(* ---- stretch ----------------------------------------------------------- *)

(* Longest deliverable path length from (v, tag): the DP
   [dist s = 1 + max { dist c | c successor, c delivers }] over the
   (verified acyclic) automaton, memoized in [dist_scratch] as
   [dist + 2] (0 = unset, 1 = in progress).  [can_scratch] carries the
   {!Automaton.co_reach} memo.  Only called on delivering states. *)
let worst_dist auto ~can_scratch ~dist_scratch v0 tag0 =
  let dest = Automaton.dest auto in
  let get v tag = Scratch.get dist_scratch (Automaton.cenc auto v tag) in
  let set v tag x = Scratch.set dist_scratch (Automaton.cenc auto v tag) x in
  let stack = ref [ (v0, tag0) ] in
  while !stack <> [] do
    match !stack with
    | [] -> ()
    | (v, tag) :: rest -> (
      match get v tag with
      | x when x >= 2 -> stack := rest
      | 0 ->
        if v = dest then begin
          set v tag 2;
          stack := rest
        end
        else begin
          set v tag 1;
          Automaton.iter_succ auto v tag ~f:(fun _m w wtag ->
              if
                get w wtag = 0
                && Automaton.co_reach auto ~scratch:can_scratch w wtag
              then stack := (w, wtag) :: !stack)
        end
      | _ ->
        (* in progress: every delivering successor is settled *)
        let best = ref (-1) in
        Automaton.iter_succ auto v tag ~f:(fun _m w wtag ->
            let d = get w wtag in
            if d >= 2 && d - 2 > !best then best := d - 2);
        set v tag (!best + 3);
        stack := rest)
  done;
  get v0 tag0 - 2

(* A concrete worst path from (v, tag): follow, at each state, the first
   successor realising [dist - 1] — by construction it ends at the
   destination after exactly [dist] hops. *)
let worst_path auto ~can_scratch ~dist_scratch v0 tag0 =
  let dest = Automaton.dest auto in
  let get v tag = Scratch.get dist_scratch (Automaton.cenc auto v tag) in
  let path = ref [ v0 ] and moves = ref [] in
  let v = ref v0 and tag = ref tag0 in
  while !v <> dest do
    let d = get !v !tag in
    let chosen = ref None in
    Automaton.iter_succ auto !v !tag ~f:(fun m w wtag ->
        if
          !chosen = None
          && get w wtag = d - 1
          && Automaton.co_reach auto ~scratch:can_scratch w wtag
        then chosen := Some (m, w, wtag));
    match !chosen with
    | None -> v := dest (* unreachable under the invariant; stop defensively *)
    | Some (m, w, wtag) ->
      path := w :: !path;
      moves := m :: !moves;
      v := w;
      tag := wtag
  done;
  (List.rev !path, List.rev !moves)

(* ---- the per-destination property suite -------------------------------- *)

let verify_dest ?(tag_check = true) ?k ?(stretch_bound = default_stretch_bound)
    ?fail_link ?(fail_links = 0) ?(seed = 0) ~props g rt =
  let dest = Routing.dest rt in
  let n = As_graph.n g in
  let base_overlay =
    match fail_link with
    | None -> Automaton.default_overlay
    | Some (u, v) -> Automaton.fail_link rt ~u ~v
  in
  let auto = Automaton.create ~tag_check ~overlay:base_overlay ?k g rt in
  let has p = List.mem p props in
  let violations = ref [] in
  let add v = violations := v :: !violations in
  let states_explored = ref 0 in
  let delivery_states = ref 0 in
  let stranded_count = ref 0 in
  let stretch_states = ref 0 in
  let max_stretch = ref 0 in
  let failed_links = ref 0 in
  let unprotectable = ref 0 in
  let full_checks = ref 0 in
  (* Loop-freedom first: delivery and stretch are exact only on an
     acyclic automaton, so they are skipped (not silently passed — the
     loop violation is the finding) when a cycle exists. *)
  let loop_cx =
    if has Loops || has Delivery || has Stretch || has Resilience then begin
      let r = As_check.find_loop_in auto in
      states_explored := r.As_check.states_explored;
      r.As_check.counterexample
    end
    else None
  in
  (if has Loops then
     match loop_cx with
     | None -> ()
     | Some cx ->
       add
         (Report.Forwarding_loop
            {
              dest;
              level = Report.As_level;
              entry = cx.As_check.entry;
              cycle = cx.As_check.cycle;
            }));
  let acyclic = Option.is_none loop_cx in
  let can_scratch = Scratch.create () in
  let reach_scratch = Scratch.create () in
  if acyclic && (has Delivery || has Stretch) then begin
    Scratch.round can_scratch ~states:(Automaton.n_cstates auto);
    if has Delivery then begin
      let visited, stranded =
        stranded_scan auto ~reach_scratch ~can_scratch
      in
      delivery_states := visited;
      stranded_count := List.length stranded;
      List.iter
        (fun s ->
          add
            (Report.Black_hole
               {
                 dest;
                 at = s.s_at;
                 path = s.s_path;
                 moves = s.s_moves;
                 failed_link = fail_link;
               }))
        stranded
    end;
    if has Stretch then begin
      let dist_scratch = Scratch.create () in
      Scratch.round dist_scratch ~states:(Automaton.n_cstates auto);
      for v = 0 to n - 1 do
        if
          v <> dest
          && Routing.reachable rt v
          && Automaton.co_reach auto ~scratch:can_scratch v Policy.source_tag
        then begin
          let d = worst_dist auto ~can_scratch ~dist_scratch v Policy.source_tag in
          let stretch = d - Routing.best_len rt v in
          incr stretch_states;
          if stretch > !max_stretch then max_stretch := stretch;
          Obs.observe h_stretch (float_of_int stretch);
          if stretch > stretch_bound then begin
            let path, moves =
              worst_path auto ~can_scratch ~dist_scratch v Policy.source_tag
            in
            add
              (Report.Stretch_exceeded
                 {
                   dest;
                   src = v;
                   default_len = Routing.best_len rt v;
                   actual_len = d;
                   bound = stretch_bound;
                   path;
                   moves;
                 })
          end
        end
      done
    end
  end;
  if acyclic && has Resilience then begin
    (* Sweep single failures of default-tree links (u, next_hop u).  Per
       link: the loop delta-certificate (a new cycle must traverse the
       repaired default — seed the scan at its endpoints), then the
       delivery touched-state certificate (every surviving path either
       avoids the failed link or runs through a (u, ·)/(v, ·) state, and
       the pure-default witness always exists — so if all four touched
       states deliver under the overlay, every state does).  Either
       certificate failing escalates to the full check under the same
       overlay, keeping verdicts bit-identical to N independent full
       checks. *)
    let candidates = ref [] in
    for u = n - 1 downto 0 do
      if u <> dest && Routing.reachable rt u then candidates := u :: !candidates
    done;
    let candidates = Array.of_list !candidates in
    let chosen =
      if fail_links > 0 && fail_links < Array.length candidates then begin
        let rng = Prng.create ~seed:(seed + (31 * dest)) () in
        let idx =
          Prng.sample_without_replacement rng fail_links (Array.length candidates)
        in
        Array.map (fun i -> candidates.(i)) idx
      end
      else candidates
    in
    let res_scratch = Scratch.create () in
    Array.iter
      (fun u ->
        match Routing.next_hop rt u with
        | None -> ()
        | Some v ->
          incr failed_links;
          if Routing.rib_size rt u < 2 then incr unprotectable
          else begin
            let overlay = Automaton.fail_link rt ~u ~v in
            let fauto = Automaton.create ~tag_check ~overlay ?k g rt in
            let w1 = Routing.rib_via rt u 1 in
            let smell, _explored =
              Automaton.cycle_from fauto ~scratch:res_scratch ~seeds:[ u; w1 ]
            in
            let cx =
              if not smell then None
              else begin
                incr full_checks;
                (As_check.find_loop_in fauto).As_check.counterexample
              end
            in
            match cx with
            | Some cx ->
              add
                (Report.Failure_loop
                   {
                     dest;
                     failed_link = (u, v);
                     entry = cx.As_check.entry;
                     cycle = cx.As_check.cycle;
                   })
            | None ->
              Scratch.round can_scratch ~states:(Automaton.n_cstates fauto);
              let touched_ok =
                List.for_all
                  (fun (w, tag) ->
                    w = dest || Automaton.co_reach fauto ~scratch:can_scratch w tag)
                  [ (u, true); (u, false); (v, true); (v, false) ]
              in
              if not touched_ok then begin
                incr full_checks;
                let visited, stranded =
                  stranded_scan fauto ~reach_scratch ~can_scratch
                in
                delivery_states := !delivery_states + visited;
                stranded_count := !stranded_count + List.length stranded;
                List.iter
                  (fun s ->
                    add
                      (Report.Black_hole
                         {
                           dest;
                           at = s.s_at;
                           path = s.s_path;
                           moves = s.s_moves;
                           failed_link = Some (u, v);
                         }))
                  stranded
              end
          end)
      chosen
  end;
  {
    Report.violations = List.rev !violations;
    stats =
      {
        Report.empty_stats with
        Report.dests_checked = 1;
        states_explored = !states_explored;
        delivery_states = !delivery_states;
        stranded_states = !stranded_count;
        stretch_states = !stretch_states;
        max_stretch = !max_stretch;
        failed_links = !failed_links;
        unprotectable_links = !unprotectable;
        resilience_full_checks = !full_checks;
      };
  }

(* ---- dynamic replays ---------------------------------------------------- *)

let link_up_of = function
  | None -> fun _ _ -> true
  | Some (u, v) -> fun a b -> not ((a = u && b = v) || (a = v && b = u))

let replay_moves ?(tag_check = true) g rt ~moves ~src ~failed_link =
  let moves = Array.of_list moves in
  let total = Array.length moves in
  let i = ref 0 in
  let decide ~as_id:_ ~upstream:_ ~entries:_ =
    if !i >= total then Loop_walk.Default
    else begin
      let (m : Automaton.move) = moves.(!i) in
      incr i;
      if m.deflected then Loop_walk.Deflect m.via else Loop_walk.Default
    end
  in
  Loop_walk.walk ~tag_check ~link_up:(link_up_of failed_link)
    ~max_hops:(2 * (total + As_graph.n g) + 8)
    g rt ~decide ~src

let replay_stranded ?tag_check g rt ~path ~moves ~failed_link =
  match path with
  | [] -> invalid_arg "Props.replay_stranded: empty path"
  | src :: _ -> replay_moves ?tag_check g rt ~moves ~src ~failed_link

let replay_stretch ?tag_check g rt ~path ~moves =
  match path with
  | [] -> invalid_arg "Props.replay_stretch: empty path"
  | src :: _ -> replay_moves ?tag_check g rt ~moves ~src ~failed_link:None
