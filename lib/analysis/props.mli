(** The multi-property static verification suite over the deflection
    product automaton ({!Automaton}).

    Four properties per destination, sharing one transition relation:

    - {b loops} — acyclicity from every source state ({!As_check}); the
      paper's Theorem 1.
    - {b delivery} — black-hole freedom: every root-reachable state
      co-reaches the destination.  Sound and complete on an acyclic
      automaton (delivery and stretch are skipped when the loop check
      fails — the loop is the finding).  Counterexamples are concrete
      decision scripts that replay through {!Mifo_core.Loop_walk} and
      come back stranded.
    - {b stretch} — every deliverable deflection path from a source is
      at most its default length plus [stretch_bound] hops; the
      per-source worst-path excess feeds the [check.stretch] histogram
      ({!Mifo_util.Obs}).  Counterexample scripts replay [Delivered] at
      exactly the claimed length.
    - {b resilience} — for each (or a seeded sample of) failed
      default-tree links [(u, next_hop u)], loop-freedom {e and}
      delivery re-verified under the mask + local-repair overlay
      ({!Automaton.fail_link}).  Per link, two O(region) certificates —
      the delta cycle scan seeded at the repaired default and the
      touched-state delivery check — escalate to the full check only on
      a smell, so the sweep is far cheaper than N independent full
      checks while returning bit-identical verdicts.  Links with no
      surviving RIB route are counted unprotectable, not violated. *)

type prop = Loops | Delivery | Stretch | Resilience

val all : prop list
(** In check order: loops, delivery, stretch, resilience. *)

val prop_to_string : prop -> string
val prop_of_string : string -> prop option

val parse_props : string -> (prop list, string) result
(** Comma-separated list, e.g. ["loops,delivery"].  Deduplicates;
    rejects unknown names and the empty list. *)

val default_stretch_bound : int

val verify_dest :
  ?tag_check:bool ->
  ?k:int ->
  ?stretch_bound:int ->
  ?fail_link:int * int ->
  ?fail_links:int ->
  ?seed:int ->
  props:prop list ->
  Mifo_topology.As_graph.t ->
  Mifo_bgp.Routing.t ->
  Report.t
(** Run the requested properties toward one destination.

    [?k] bounds the automaton to the k-alternative data plane, as in
    {!As_check.find_loop}.  [?fail_link] applies a single-link-failure
    overlay ({!Automaton.fail_link}) to the {e whole} check — the
    must-fail gadget legs verify delivery under it; the resilience sweep
    ignores it (it sweeps its own overlays over the healthy base).
    [?fail_links] caps the resilience sweep to a seeded sample of that
    many default-tree links (0, the default, sweeps all of them);
    [?seed] makes the sample deterministic.

    The report's violations are ordered by property (loops, delivery,
    stretch, resilience), then deterministically within each — identical
    at any domain count.  Pure per-destination function: safe to fan out
    over the {!Mifo_util.Parallel} pool with one call per slot. *)

(** {1 Dynamic replays}

    The machine check that a static counterexample is real: drive
    {!Mifo_core.Loop_walk.walk} with the violation's decision script
    (and its failure overlay as [?link_up]). *)

val replay_stranded :
  ?tag_check:bool ->
  Mifo_topology.As_graph.t ->
  Mifo_bgp.Routing.t ->
  path:int list ->
  moves:Automaton.move list ->
  failed_link:(int * int) option ->
  Mifo_core.Loop_walk.outcome
(** Replay a {!Report.Black_hole}'s script from its source.  A genuine
    black hole must come back [Dropped] (stranded at, or downstream of,
    the reported state — the script ends there and the walk continues on
    defaults, which cannot deliver from a non-delivering state).
    @raise Invalid_argument on an empty path. *)

val replay_stretch :
  ?tag_check:bool ->
  Mifo_topology.As_graph.t ->
  Mifo_bgp.Routing.t ->
  path:int list ->
  moves:Automaton.move list ->
  Mifo_core.Loop_walk.outcome
(** Replay a {!Report.Stretch_exceeded}'s worst path.  Must come back
    [Delivered] with exactly [actual_len] hops.
    @raise Invalid_argument on an empty path. *)
