module Json = Mifo_util.Obs.Json

type level = As_level | Router_level

let level_to_string = function As_level -> "as" | Router_level -> "router"

type violation =
  | Forwarding_loop of { dest : int; level : level; entry : int list; cycle : int list }
  | Valley_path of { dest : int; at : int; via : int; path : int list }
  | Rib_len_mismatch of { dest : int; at : int; via : int; expected : int; actual : int }
  | Dangling_fib_port of { node : int; prefix : string; port : int; reason : string }
  | Ebgp_tunnel_egress of { node : int; endpoint : int; port : int; prefix : string }
  | Unreachable of { dest : int; node : int }
  | Black_hole of {
      dest : int;
      at : int;
      path : int list;
      moves : Automaton.move list;
      failed_link : (int * int) option;
    }
  | Stretch_exceeded of {
      dest : int;
      src : int;
      default_len : int;
      actual_len : int;
      bound : int;
      path : int list;
      moves : Automaton.move list;
    }
  | Failure_loop of {
      dest : int;
      failed_link : int * int;
      entry : int list;
      cycle : int list;
    }

type stats = {
  dests_checked : int;
  states_explored : int;
  paths_checked : int;
  fib_entries_checked : int;
  delivery_states : int;
  stranded_states : int;
  stretch_states : int;
  max_stretch : int;
  failed_links : int;
  unprotectable_links : int;
  resilience_full_checks : int;
}

let empty_stats =
  {
    dests_checked = 0;
    states_explored = 0;
    paths_checked = 0;
    fib_entries_checked = 0;
    delivery_states = 0;
    stranded_states = 0;
    stretch_states = 0;
    max_stretch = 0;
    failed_links = 0;
    unprotectable_links = 0;
    resilience_full_checks = 0;
  }

let add_stats a b =
  {
    dests_checked = a.dests_checked + b.dests_checked;
    states_explored = a.states_explored + b.states_explored;
    paths_checked = a.paths_checked + b.paths_checked;
    fib_entries_checked = a.fib_entries_checked + b.fib_entries_checked;
    delivery_states = a.delivery_states + b.delivery_states;
    stranded_states = a.stranded_states + b.stranded_states;
    stretch_states = a.stretch_states + b.stretch_states;
    max_stretch = Stdlib.max a.max_stretch b.max_stretch;
    failed_links = a.failed_links + b.failed_links;
    unprotectable_links = a.unprotectable_links + b.unprotectable_links;
    resilience_full_checks = a.resilience_full_checks + b.resilience_full_checks;
  }

type t = { violations : violation list; stats : stats }

let empty = { violations = []; stats = empty_stats }
let ok t = t.violations = []

let merge reports =
  {
    violations = List.concat_map (fun r -> r.violations) reports;
    stats = List.fold_left (fun acc r -> add_stats acc r.stats) empty_stats reports;
  }

let kind_of = function
  | Forwarding_loop _ -> "forwarding-loop"
  | Valley_path _ -> "valley-path"
  | Rib_len_mismatch _ -> "rib-len-mismatch"
  | Dangling_fib_port _ -> "dangling-fib-port"
  | Ebgp_tunnel_egress _ -> "ebgp-tunnel-egress"
  | Unreachable _ -> "unreachable"
  | Black_hole _ -> "black-hole"
  | Stretch_exceeded _ -> "stretch"
  | Failure_loop _ -> "failure-loop"

let num i = Json.Num (float_of_int i)
let path_json p = Json.Arr (List.map num p)

let moves_json moves =
  Json.Arr
    (List.map
       (fun (m : Automaton.move) ->
         Json.Obj
           [
             ("at", num m.at);
             ("via", num m.via);
             ("slot", num m.slot);
             ("deflected", Json.Bool m.deflected);
           ])
       moves)

let link_json (u, v) = Json.Arr [ num u; num v ]

let violation_to_json v =
  Json.Obj
    (("kind", Json.Str (kind_of v))
    ::
    (match v with
    | Forwarding_loop { dest; level; entry; cycle } ->
      [
        ("dest", num dest);
        ("level", Json.Str (level_to_string level));
        ("entry", path_json entry);
        ("cycle", path_json cycle);
      ]
    | Valley_path { dest; at; via; path } ->
      [ ("dest", num dest); ("at", num at); ("via", num via); ("path", path_json path) ]
    | Rib_len_mismatch { dest; at; via; expected; actual } ->
      [
        ("dest", num dest);
        ("at", num at);
        ("via", num via);
        ("expected", num expected);
        ("actual", num actual);
      ]
    | Dangling_fib_port { node; prefix; port; reason } ->
      [
        ("node", num node);
        ("prefix", Json.Str prefix);
        ("port", num port);
        ("reason", Json.Str reason);
      ]
    | Ebgp_tunnel_egress { node; endpoint; port; prefix } ->
      [
        ("node", num node);
        ("endpoint", num endpoint);
        ("port", num port);
        ("prefix", Json.Str prefix);
      ]
    | Unreachable { dest; node } -> [ ("dest", num dest); ("node", num node) ]
    | Black_hole { dest; at; path; moves; failed_link } ->
      [
        ("dest", num dest);
        ("at", num at);
        ("path", path_json path);
        ("moves", moves_json moves);
        ( "failed_link",
          match failed_link with None -> Json.Null | Some l -> link_json l );
      ]
    | Stretch_exceeded { dest; src; default_len; actual_len; bound; path; moves } ->
      [
        ("dest", num dest);
        ("src", num src);
        ("default_len", num default_len);
        ("actual_len", num actual_len);
        ("bound", num bound);
        ("path", path_json path);
        ("moves", moves_json moves);
      ]
    | Failure_loop { dest; failed_link; entry; cycle } ->
      [
        ("dest", num dest);
        ("failed_link", link_json failed_link);
        ("entry", path_json entry);
        ("cycle", path_json cycle);
      ]))

let path_to_string p = String.concat " -> " (List.map string_of_int p)

let violation_to_string v =
  match v with
  | Forwarding_loop { dest; level; entry; cycle } ->
    Printf.sprintf "forwarding loop (%s level) toward %d: cycle %s%s"
      (level_to_string level) dest (path_to_string cycle)
      (if entry = [] then "" else Printf.sprintf " entered via %s" (path_to_string entry))
  | Valley_path { dest; at; via; path } ->
    Printf.sprintf "valley in RIB path toward %d at AS %d via %d: %s" dest at via
      (path_to_string path)
  | Rib_len_mismatch { dest; at; via; expected; actual } ->
    Printf.sprintf
      "RIB length mismatch toward %d at AS %d via %d: advertised %d, actual %d" dest at
      via expected actual
  | Dangling_fib_port { node; prefix; port; reason } ->
    Printf.sprintf "dangling FIB port at node %d for %s (port %d): %s" node prefix port
      reason
  | Ebgp_tunnel_egress { node; endpoint; port; prefix } ->
    Printf.sprintf
      "encapsulated packet for %s can exit eBGP port %d at node %d mid-tunnel (endpoint %d)"
      prefix port node endpoint
  | Unreachable { dest; node } ->
    Printf.sprintf "node %d has no route toward destination %d" node dest
  | Black_hole { dest; at; path; failed_link; _ } ->
    Printf.sprintf "black hole toward %d: packet stranded at AS %d via %s%s" dest at
      (path_to_string path)
      (match failed_link with
      | None -> ""
      | Some (u, v) -> Printf.sprintf " (link %d-%d down)" u v)
  | Stretch_exceeded { dest; src; default_len; actual_len; bound; path; _ } ->
    Printf.sprintf
      "stretch bound exceeded toward %d from AS %d: %d hop(s) vs default %d (bound \
       +%d): %s"
      dest src actual_len default_len bound (path_to_string path)
  | Failure_loop { dest; failed_link = u, v; entry; cycle } ->
    Printf.sprintf "forwarding loop toward %d under failed link %d-%d: cycle %s%s" dest
      u v (path_to_string cycle)
      (if entry = [] then "" else Printf.sprintf " entered via %s" (path_to_string entry))

let to_json t =
  Json.Obj
    [
      ("ok", Json.Bool (ok t));
      ("violations", Json.Arr (List.map violation_to_json t.violations));
      ( "stats",
        Json.Obj
          [
            ("dests_checked", num t.stats.dests_checked);
            ("states_explored", num t.stats.states_explored);
            ("paths_checked", num t.stats.paths_checked);
            ("fib_entries_checked", num t.stats.fib_entries_checked);
            ("delivery_states", num t.stats.delivery_states);
            ("stranded_states", num t.stats.stranded_states);
            ("stretch_states", num t.stats.stretch_states);
            ("max_stretch", num t.stats.max_stretch);
            ("failed_links", num t.stats.failed_links);
            ("unprotectable_links", num t.stats.unprotectable_links);
            ("resilience_full_checks", num t.stats.resilience_full_checks);
          ] );
    ]

let to_json_string t = Json.to_string (to_json t)

let summary t =
  let head =
    Printf.sprintf
      "%s: %d destination(s), %d automaton state(s), %d RIB path(s), %d FIB entry(ies)"
      (if ok t then "clean" else Printf.sprintf "%d violation(s)" (List.length t.violations))
      t.stats.dests_checked t.stats.states_explored t.stats.paths_checked
      t.stats.fib_entries_checked
  in
  let head =
    if t.stats.delivery_states = 0 && t.stats.failed_links = 0 then head
    else
      head
      ^ Printf.sprintf
          "\nprops: %d delivery state(s) (%d stranded), max stretch %d over %d \
           state(s), %d failed link(s) swept (%d unprotectable, %d full recheck(s))"
          t.stats.delivery_states t.stats.stranded_states t.stats.max_stretch
          t.stats.stretch_states t.stats.failed_links t.stats.unprotectable_links
          t.stats.resilience_full_checks
  in
  String.concat "\n" (head :: List.map (fun v -> "  " ^ violation_to_string v) t.violations)
