(** Machine-checkable verdicts of the static data-plane verifier.

    A report aggregates every violation found by {!As_check},
    {!Net_check} and {!Verifier} over a set of destinations, together
    with coverage statistics, and serialises to JSON through the
    observability layer's {!Mifo_util.Obs.Json} — the format
    [mifo_sim check] emits and the CI gate greps. *)

type level = As_level | Router_level

val level_to_string : level -> string

type violation =
  | Forwarding_loop of {
      dest : int;  (** destination AS *)
      level : level;
      entry : int list;  (** nodes from a traffic source into the cycle *)
      cycle : int list;  (** the cycle, head repeated last, e.g. [[1;2;3;1]] *)
    }  (** A reachable cycle in the deflection product automaton. *)
  | Valley_path of { dest : int; at : int; via : int; path : int list }
      (** A RIB-derivable path (default or alternative) that is not
          valley-free. *)
  | Rib_len_mismatch of { dest : int; at : int; via : int; expected : int; actual : int }
      (** A RIB entry whose advertised AS-path length disagrees with the
          concrete path it denotes. *)
  | Dangling_fib_port of { node : int; prefix : string; port : int; reason : string }
      (** A FIB port (default or alternative) not backed by a RIB route,
          wired to the wrong kind of neighbor, or — for an iBGP
          alternative — whose tunnel endpoint is not an iBGP peer or has
          no route for the prefix. *)
  | Ebgp_tunnel_egress of { node : int; endpoint : int; port : int; prefix : string }
      (** An encapsulated packet can be forwarded out an eBGP port
          before reaching its tunnel endpoint — it would leave the AS
          still wearing the outer header and never terminate the
          tunnel. *)
  | Unreachable of { dest : int; node : int }
      (** A node with no route toward a destination the control plane
          says is reachable. *)
  | Black_hole of {
      dest : int;
      at : int;  (** the stranded AS: root-reachable, cannot reach [dest] *)
      path : int list;  (** concrete AS path from a source to [at], inclusive *)
      moves : Automaton.move list;  (** the decision script along [path] *)
      failed_link : (int * int) option;  (** the failure overlay, if any *)
    }
      (** A root-reachable automaton state that cannot co-reach the
          destination — a deflection strategy exists that strands the
          packet.  Replaying [moves] through {!Mifo_core.Loop_walk.walk}
          (with [?link_up] masking [failed_link]) must come back
          [Dropped]. *)
  | Stretch_exceeded of {
      dest : int;
      src : int;  (** the source whose worst path overshoots *)
      default_len : int;  (** its default AS-path length *)
      actual_len : int;  (** the worst deliverable deflection path length *)
      bound : int;  (** the allowed excess over [default_len] *)
      path : int list;  (** a concrete worst path, source to destination *)
      moves : Automaton.move list;  (** its decision script; replays [Delivered] *)
    }
      (** A deflection path longer than default + bound. *)
  | Failure_loop of {
      dest : int;
      failed_link : int * int;
      entry : int list;
      cycle : int list;
    }
      (** A forwarding loop that appears only under the single-link
          failure overlay (mask + local repair). *)

type stats = {
  dests_checked : int;
  states_explored : int;  (** product-automaton states visited *)
  paths_checked : int;  (** RIB paths audited for valleys/lengths *)
  fib_entries_checked : int;
  delivery_states : int;  (** collapsed states examined by the delivery check *)
  stranded_states : int;  (** root-reachable states that cannot deliver *)
  stretch_states : int;  (** states with a finite worst-path length *)
  max_stretch : int;  (** worst observed stretch; {!add_stats} takes the max *)
  failed_links : int;  (** default-tree links swept by resilience *)
  unprotectable_links : int;  (** failed links with no surviving RIB route *)
  resilience_full_checks : int;  (** sweeps that escalated to a full re-check *)
}

val empty_stats : stats
val add_stats : stats -> stats -> stats

type t = { violations : violation list; stats : stats }

val empty : t
val ok : t -> bool
val merge : t list -> t

val kind_of : violation -> string
(** Stable kebab-case discriminator, also the ["kind"] field in JSON. *)

val violation_to_json : violation -> Mifo_util.Obs.Json.t
val violation_to_string : violation -> string

val to_json : t -> Mifo_util.Obs.Json.t
val to_json_string : t -> string
(** [{"ok": bool, "violations": [...], "stats": {...}}] *)

val summary : t -> string
(** Human-readable multi-line summary: one header line, then one line
    per violation. *)
