module As_graph = Mifo_topology.As_graph
module Routing_table = Mifo_bgp.Routing_table
module Packetsim = Mifo_netsim.Packetsim

let verify_as_level ?(tag_check = true) ?k g ~table ~dests =
  let reports =
    List.map
      (fun d ->
        let rt = Routing_table.get table d in
        let { As_check.counterexample; states_explored } =
          As_check.find_loop ~tag_check ?k g rt
        in
        let loop_viols =
          match counterexample with
          | None -> []
          | Some cx ->
            [
              Report.Forwarding_loop
                {
                  dest = d;
                  level = Report.As_level;
                  entry = cx.As_check.entry;
                  cycle = cx.As_check.cycle;
                };
            ]
        in
        let path_viols, paths_checked = As_check.check_paths g rt in
        {
          Report.violations = loop_viols @ path_viols;
          stats =
            {
              Report.dests_checked = 1;
              states_explored;
              paths_checked;
              fib_entries_checked = 0;
            };
        })
      dests
  in
  Report.merge reports

let verify_network sim ~routing =
  let fib_viols, fib_entries_checked = Net_check.audit_fibs sim ~routing in
  let loop_viols, states_explored = Net_check.find_loops sim ~routing in
  {
    Report.violations = fib_viols @ loop_viols;
    stats =
      {
        Report.dests_checked = List.length routing;
        states_explored;
        paths_checked = 0;
        fib_entries_checked;
      };
  }
