module As_graph = Mifo_topology.As_graph
module Routing_table = Mifo_bgp.Routing_table
module Packetsim = Mifo_netsim.Packetsim
module Parallel = Mifo_util.Parallel

(* One destination: the requested property suite plus the RIB path
   audit.  Pure per-destination; the fan-out below runs it on the
   domain pool with slot-indexed result writes, so the merged report is
   bit-identical at any MIFO_JOBS. *)
let verify_dest ?tag_check ?k ?stretch_bound ?fail_link ?fail_links ?seed ~props g
    ~table d =
  let rt = Routing_table.get table d in
  let prop_report =
    Props.verify_dest ?tag_check ?k ?stretch_bound ?fail_link ?fail_links ?seed
      ~props g rt
  in
  let path_viols, paths_checked = As_check.check_paths g rt in
  {
    Report.violations = prop_report.Report.violations @ path_viols;
    stats = { prop_report.Report.stats with Report.paths_checked };
  }

let verify_props ?tag_check ?k ?stretch_bound ?fail_link ?fail_links ?seed ?pool
    ?(props = Props.all) g ~table ~dests =
  let pool = match pool with Some p -> p | None -> Parallel.get_default () in
  let reports =
    Parallel.parallel_map pool
      (verify_dest ?tag_check ?k ?stretch_bound ?fail_link ?fail_links ?seed ~props g
         ~table)
      (Array.of_list dests)
  in
  (* Merge in destination order — independent of domain scheduling. *)
  Report.merge (Array.to_list reports)

let verify_as_level ?tag_check ?k g ~table ~dests =
  verify_props ?tag_check ?k ~props:[ Props.Loops ] g ~table ~dests

let verify_network sim ~routing =
  let fib_viols, fib_entries_checked = Net_check.audit_fibs sim ~routing in
  let loop_viols, states_explored = Net_check.find_loops sim ~routing in
  {
    Report.violations = fib_viols @ loop_viols;
    stats =
      {
        Report.empty_stats with
        Report.dests_checked = List.length routing;
        states_explored;
        fib_entries_checked;
      };
  }
