(** Top-level entry points of the static data-plane verifier.

    [mifo_sim check], {!Mifo_exp.Validation} and the test suite go
    through these: per-destination AS-level verification (loop-freedom
    of the deflection automaton, valley-free compliance and length
    agreement of every RIB path) and router-level verification of a
    built packet network (FIB audits and the tunnel-aware product
    automaton). *)

val verify_props :
  ?tag_check:bool ->
  ?k:int ->
  ?stretch_bound:int ->
  ?fail_link:int * int ->
  ?fail_links:int ->
  ?seed:int ->
  ?pool:Mifo_util.Parallel.pool ->
  ?props:Props.prop list ->
  Mifo_topology.As_graph.t ->
  table:Mifo_bgp.Routing_table.t ->
  dests:int list ->
  Report.t
(** Run the {!Props} property suite (default: all four properties) plus
    the {!As_check.check_paths} audit for every listed destination,
    fanned out over the {!Mifo_util.Parallel} domain pool ([?pool]
    defaults to the shared one).  Results are written into slots indexed
    by destination and merged in destination order, so the report is
    bit-identical at any [MIFO_JOBS].  Per-property options as in
    {!Props.verify_dest}. *)

val verify_as_level :
  ?tag_check:bool ->
  ?k:int ->
  Mifo_topology.As_graph.t ->
  table:Mifo_bgp.Routing_table.t ->
  dests:int list ->
  Report.t
(** Run {!As_check.find_loop} and {!As_check.check_paths} for every
    listed destination (routing states pulled — and cached — through the
    table).  [tag_check:false] verifies the ablated data plane, which is
    expected to produce loop counterexamples.  [?k] bounds the automaton
    to the k-alternative data plane (see {!As_check.find_loop}). *)

val verify_network :
  Mifo_netsim.Packetsim.t -> routing:(int * Mifo_bgp.Routing.t) list -> Report.t
(** Run {!Net_check.audit_fibs} and {!Net_check.find_loops} on a built
    network for the listed destination ASes. *)
