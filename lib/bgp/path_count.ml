module As_graph = Mifo_topology.As_graph
module Relationship = Mifo_topology.Relationship

(* Phase of the valley-free walk automaton: [Rose] = the previous hop went
   customer->provider (tag bit set; any continuation allowed), [Peaked] =
   the walk has used its peer hop or started descending (only
   provider->customer hops remain).  A source starts in [Rose]. *)
type phase = Rose | Peaked

let phase_index = function Rose -> 0 | Peaked -> 1

let next_phase (hop : Relationship.hop) =
  match hop with Up -> Rose | Flat | Down -> Peaked

let hop_allowed phase (hop : Relationship.hop) =
  match phase with Rose -> true | Peaked -> hop = Down

let mifo_counts g rt ~capable =
  let n = As_graph.n g in
  let d = Routing.dest rt in
  let memo = Array.make (2 * n) (-1.0) in
  let rec count v phase =
    if v = d then 1.0
    else begin
      let key = (2 * v) + phase_index phase in
      if memo.(key) >= 0.0 then memo.(key)
      else begin
        (* Mark as in-progress with 0 so that the (impossible by
           construction, but cheap to guard) cyclic query contributes
           nothing rather than diverging. *)
        memo.(key) <- 0.0;
        let total = ref 0.0 in
        let consider nb rel =
          let hop = Relationship.hop_of rel in
          if hop_allowed phase hop then
            total := !total +. count nb (next_phase hop)
        in
        if capable v then
          Array.iter
            (fun (e : Routing.rib_entry) -> consider e.via e.rel)
            (Routing.rib_array rt v)
        else begin
          match Routing.next_hop rt v with
          | Some nb -> consider nb (As_graph.rel_exn g v nb)
          | None -> ()
        end;
        memo.(key) <- !total;
        !total
      end
    end
  in
  Array.init n (fun v -> count v Rose)

let mifo_counts_many ?pool g table ~dests ~capable =
  let pool = match pool with Some p -> p | None -> Mifo_util.Parallel.get_default () in
  (* Warm the table first so every domain mapping below takes the cache
     hit path; then one DP per destination, each on its own Routing.t. *)
  Routing_table.precompute ~pool table dests;
  Mifo_util.Parallel.parallel_map pool
    (fun d -> mifo_counts g (Routing_table.get table d) ~capable)
    dests

let bgp_count rt ~src =
  if src = Routing.dest rt then 1 else if Routing.reachable rt src then 1 else 0

let enumerate_mifo_paths g rt ~capable ~src ~limit =
  let d = Routing.dest rt in
  let found = ref [] and nfound = ref 0 in
  let rec walk v phase acc =
    if !nfound >= limit then ()
    else if v = d then begin
      found := List.rev (v :: acc) :: !found;
      incr nfound
    end
    else begin
      let consider nb rel =
        let hop = Relationship.hop_of rel in
        if hop_allowed phase hop then walk nb (next_phase hop) (v :: acc)
      in
      if capable v then
        Array.iter
          (fun (e : Routing.rib_entry) -> consider e.via e.rel)
          (Routing.rib_array rt v)
      else
        match Routing.next_hop rt v with
        | Some nb -> consider nb (As_graph.rel_exn g v nb)
        | None -> ()
    end
  in
  walk src Rose [];
  List.rev !found
