(** Counting the forwarding paths available between AS pairs (Fig. 7).

    For MIFO, a path is any AS-level walk the data plane can realize: at
    every MIFO-capable AS the packet may take {e any} RIB route subject
    to the valley-free Tag-Check constraint, and at a legacy AS it
    follows the default next hop.  The count is computed by dynamic
    programming over the pair (AS, phase) where phase records whether the
    last hop went uphill ("rose", tag bit 1) or has already peaked
    ("peaked", tag bit 0).  Because uphill hops strictly climb the
    provider hierarchy and peaked walks strictly descend it, the DP
    recursion is acyclic and runs in O(V + E) per destination.

    Counts are returned as floats: at full deployment dense pairs reach
    many thousands of paths (the paper's Fig. 7 y-axis is logarithmic)
    and large topologies overflow 63-bit ints.

    The MIRO counterpart lives in [Mifo_miro.Miro.available_path_count]. *)

val mifo_counts :
  Mifo_topology.As_graph.t -> Routing.t -> capable:(int -> bool) -> float array
(** [mifo_counts g rt ~capable] gives, for every source AS, the number of
    distinct forwarding paths to [Routing.dest rt].  The destination's own
    entry is 1. *)

val mifo_counts_many :
  ?pool:Mifo_util.Parallel.pool ->
  Mifo_topology.As_graph.t ->
  Routing_table.t ->
  dests:int array ->
  capable:(int -> bool) ->
  float array array
(** [mifo_counts_many g table ~dests ~capable] is
    [Array.map (fun d -> mifo_counts g (Routing_table.get table d) ~capable) dests],
    with both the route computations and the per-destination DPs fanned
    out across the pool (default {!Mifo_util.Parallel.get_default}).
    Output is slot-per-destination and independent of scheduling. *)

val bgp_count : Routing.t -> src:int -> int
(** 1 when reachable (the default path), 0 otherwise. *)

val enumerate_mifo_paths :
  Mifo_topology.As_graph.t -> Routing.t -> capable:(int -> bool) -> src:int ->
  limit:int -> int list list
(** Explicit enumeration of the walks the DP counts, for tests and small
    examples; stops after [limit] paths. *)
