module As_graph = Mifo_topology.As_graph
module Relationship = Mifo_topology.Relationship

type route_class = Customer_route | Peer_route | Provider_route

let class_rank = function Customer_route -> 0 | Peer_route -> 1 | Provider_route -> 2

let class_to_string = function
  | Customer_route -> "customer"
  | Peer_route -> "peer"
  | Provider_route -> "provider"

type rib_entry = { via : int; rel : Relationship.t; len : int }

type t = {
  graph : As_graph.t;
  dest : int;
  dist_cust : int array;  (* best customer-route length; -1 = none *)
  peer_len : int array;  (* best peer-route length; -1 = none *)
  prov_len : int array;  (* best provider-route length; -1 = none *)
  export_len : int array;  (* best route length (selected); -1 = unreachable *)
  best_class : int array;  (* 0/1/2 per class_rank; -1 at dest or unreachable *)
  next : int array;  (* default next hop; -1 at dest or unreachable *)
  tree_times : int array * int array;
      (* DFS entry/exit times of the selected-route tree (parent =
         default next hop, root = dest), built at construction: [x] lies
         on [n]'s selected path iff [x] is an ancestor of [n], an O(1)
         interval test.  Powers the BGP loop filter in [rib].  Eager so
         a [t] shared across domains carries no lazily-written state. *)
  rib_arrays : rib_entry array option array;
      (* per-node sorted RIB, memoized on first demand.  Idempotent
         fill: a racing fill writes a structurally identical array, so
         concurrent readers of a shared [t] are safe (OCaml's memory
         model guarantees a racy read sees one of the written values). *)
  rib_lists : rib_entry list option array;
      (* list view of [rib_arrays.(v)], memoized for the list-returning
         public API so steady-state [rib] calls allocate nothing *)
}

let dest t = t.dest

(* Pick the neighbor minimizing (advertised length, id) among candidates
   that actually have a route. *)
let best_via candidates route_len =
  let best = ref (-1) and best_len = ref max_int in
  Array.iter
    (fun nb ->
      match route_len nb with
      | None -> ()
      | Some l ->
        if l < !best_len || (l = !best_len && nb < !best) then begin
          best := nb;
          best_len := l
        end)
    candidates;
  if !best < 0 then None else Some (!best, 1 + !best_len)

(* DFS entry/exit times over the selected-route tree rooted at [d]
   (parent = default next hop). *)
let build_tree_times n next d =
  let children = Array.make n [] in
  for v = 0 to n - 1 do
    let p = next.(v) in
    if p >= 0 then children.(p) <- v :: children.(p)
  done;
  let tin = Array.make n (-1) and tout = Array.make n (-1) in
  let clock = ref 0 in
  (* iterative DFS: (node, Enter | Exit) *)
  let stack = Stack.create () in
  Stack.push (d, true) stack;
  while not (Stack.is_empty stack) do
    let v, entering = Stack.pop stack in
    if entering then begin
      tin.(v) <- !clock;
      incr clock;
      Stack.push (v, false) stack;
      List.iter (fun c -> Stack.push (c, true) stack) children.(v)
    end
    else begin
      tout.(v) <- !clock;
      incr clock
    end
  done;
  (tin, tout)

let compute g d =
  let n = As_graph.n g in
  if d < 0 || d >= n then invalid_arg "Routing.compute: destination out of range";
  let dist_cust = Array.make n (-1) in
  let peer_len = Array.make n (-1) in
  let prov_len = Array.make n (-1) in
  let export_len = Array.make n (-1) in
  let best_class = Array.make n (-1) in
  let next = Array.make n (-1) in
  (* Phase 1 — customer routes: BFS from the destination along
     customer->provider edges; an AS has a customer route iff some chain of
     successive customers leads down to d. *)
  dist_cust.(d) <- 0;
  let queue = Queue.create () in
  Queue.add d queue;
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    Array.iter
      (fun p ->
        if dist_cust.(p) < 0 then begin
          dist_cust.(p) <- dist_cust.(v) + 1;
          Queue.add p queue
        end)
      (As_graph.providers g v)
  done;
  (* Phase 2 — peer routes: usable iff the peer's best route is a customer
     route (export policy), i.e. iff the peer has a customer route. *)
  for v = 0 to n - 1 do
    if v <> d then begin
      let via_peer nb = if dist_cust.(nb) >= 0 then Some dist_cust.(nb) else None in
      match best_via (As_graph.peers g v) via_peer with
      | Some (_, l) -> peer_len.(v) <- l
      | None -> ()
    end
  done;
  (* Phase 3 — provider routes, in provider-before-customer order: a
     provider advertises its selected best route to customers, whatever its
     class, so export_len must be fixed top-down. *)
  let order = As_graph.topological_order g in
  let selected v =
    (* (class, length) of v's best route given phases so far *)
    if v = d then Some (-1, 0)
    else if dist_cust.(v) >= 0 then Some (0, dist_cust.(v))
    else if peer_len.(v) >= 0 then Some (1, peer_len.(v))
    else if prov_len.(v) >= 0 then Some (2, prov_len.(v))
    else None
  in
  Array.iter
    (fun v ->
      if v <> d then begin
        let via_provider nb =
          if export_len.(nb) >= 0 then Some export_len.(nb) else None
        in
        (match best_via (As_graph.providers g v) via_provider with
         | Some (_, l) -> prov_len.(v) <- l
         | None -> ());
        match selected v with
        | Some (_, l) -> export_len.(v) <- l
        | None -> ()
      end
      else export_len.(v) <- 0)
    order;
  (* Default next hops from the final class decision. *)
  for v = 0 to n - 1 do
    if v <> d then begin
      let pick candidates route_len = best_via candidates route_len in
      let via_customer nb =
        (* a customer exports to its provider only its customer routes *)
        if dist_cust.(nb) >= 0 then Some dist_cust.(nb) else None
      in
      let via_peer nb = if dist_cust.(nb) >= 0 then Some dist_cust.(nb) else None in
      let via_provider nb = if export_len.(nb) >= 0 then Some export_len.(nb) else None in
      if dist_cust.(v) >= 0 then begin
        best_class.(v) <- 0;
        match pick (As_graph.customers g v) via_customer with
        | Some (nb, l) ->
          assert (l = dist_cust.(v));
          next.(v) <- nb
        | None ->
          (* the only customer route with no customer next hop is via a
             directly-connected destination customer — impossible here
             since d itself is covered by via_customer *)
          assert false
      end
      else if peer_len.(v) >= 0 then begin
        best_class.(v) <- 1;
        match pick (As_graph.peers g v) via_peer with
        | Some (nb, l) ->
          assert (l = peer_len.(v));
          next.(v) <- nb
        | None -> assert false
      end
      else if prov_len.(v) >= 0 then begin
        best_class.(v) <- 2;
        match pick (As_graph.providers g v) via_provider with
        | Some (nb, l) ->
          assert (l = prov_len.(v));
          next.(v) <- nb
        | None -> assert false
      end
    end
  done;
  {
    graph = g;
    dest = d;
    dist_cust;
    peer_len;
    prov_len;
    export_len;
    best_class;
    next;
    tree_times = build_tree_times n next d;
    rib_arrays = Array.make n None;
    rib_lists = Array.make n None;
  }

let reachable t v = v = t.dest || t.export_len.(v) >= 0

let best_class t v =
  if v = t.dest then None
  else
    match t.best_class.(v) with
    | 0 -> Some Customer_route
    | 1 -> Some Peer_route
    | 2 -> Some Provider_route
    | _ -> None

let best_len t v =
  if v = t.dest then 0
  else if t.export_len.(v) < 0 then invalid_arg "Routing.best_len: unreachable"
  else t.export_len.(v)

let next_hop t v = if t.next.(v) < 0 then None else Some t.next.(v)

let customer_route_len t v =
  if t.dist_cust.(v) < 0 then None else Some t.dist_cust.(v)

let export_len t v = if t.export_len.(v) < 0 then None else Some t.export_len.(v)

let default_path t s =
  let n = As_graph.n t.graph in
  let rec follow v acc steps =
    if steps > n then invalid_arg "Routing.default_path: next-hop loop (corrupt state)"
    else if v = t.dest then List.rev (v :: acc)
    else
      match next_hop t v with
      | None -> invalid_arg "Routing.default_path: unreachable source"
      | Some nb -> follow nb (v :: acc) (steps + 1)
  in
  follow s [] 0

let on_selected_path t ~node x =
  (* is [x] on [node]'s selected default path (including its endpoints)? *)
  let tin, tout = t.tree_times in
  tin.(node) >= 0 && tin.(x) >= 0 && tin.(x) <= tin.(node) && tout.(node) <= tout.(x)

let entry_order a b =
  let ka = (Relationship.preference_rank a.rel, a.len, a.via) in
  let kb = (Relationship.preference_rank b.rel, b.len, b.via) in
  compare ka kb

let compute_rib t v =
  let g = t.graph in
  let entries = ref [] in
  let nbrs = As_graph.neighbors g v in
  Array.iter
    (fun nb ->
      let rel = As_graph.rel_exn g v nb in
      let advertised =
        match rel with
        | Relationship.Customer | Relationship.Peer ->
          (* they export to us (their provider / peer) only customer routes *)
          if t.dist_cust.(nb) >= 0 then Some t.dist_cust.(nb) else None
        | Relationship.Provider ->
          if t.export_len.(nb) >= 0 then Some t.export_len.(nb) else None
      in
      match advertised with
      | Some l ->
        (* BGP loop filter: reject a route whose AS path contains us.
           The neighbor's exported path is its selected default path,
           so the check is an ancestor query on the route tree. *)
        if not (on_selected_path t ~node:nb v) then
          entries := { via = nb; rel; len = 1 + l } :: !entries
      | None -> ())
    nbrs;
  let arr = Array.of_list !entries in
  Array.sort entry_order arr;
  arr

let rib_array t v =
  if v = t.dest then [||]
  else
    match t.rib_arrays.(v) with
    | Some arr -> arr
    | None ->
      let arr = compute_rib t v in
      t.rib_arrays.(v) <- Some arr;
      arr

let rib t v =
  if v = t.dest then []
  else
    match t.rib_lists.(v) with
    | Some entries -> entries
    | None ->
      let entries = Array.to_list (rib_array t v) in
      t.rib_lists.(v) <- Some entries;
      entries

let alternatives t v =
  match rib t v with [] -> [] | _default :: rest -> rest

let rib_size t v = Array.length (rib_array t v)

(* The concrete AS path behind a RIB entry.  A neighbor advertises, to a
   provider or peer, its best customer route; to a customer, its selected
   best route.  Gao-Rexford selection prefers customer routes, so
   whenever a customer route exists it IS the selected route — in every
   export case the advertised path is the neighbor's selected default
   path, and the entry's path is us prepended to it. *)
let rib_path t v (e : rib_entry) =
  (match e.rel with
   | Relationship.Customer | Relationship.Peer ->
     (* exported-to-us customer route: exists iff the neighbor has one *)
     if t.dist_cust.(e.via) < 0 && e.via <> t.dest then
       invalid_arg "Routing.rib_path: neighbor exported no customer route"
   | Relationship.Provider ->
     if t.export_len.(e.via) < 0 && e.via <> t.dest then
       invalid_arg "Routing.rib_path: neighbor exported no route");
  v :: default_path t e.via

let rib_paths t v =
  List.map (fun e -> (e, rib_path t v e)) (rib t v)
