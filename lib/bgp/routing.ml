module As_graph = Mifo_topology.As_graph
module Relationship = Mifo_topology.Relationship
module Obs = Mifo_util.Obs

(* High-water mark of major-heap words observed at the end of every
   [compute]; at 44K ASes the routing state dominates live memory, so
   this gauge is the bench's peak-memory signal. *)
let g_peak_words = Obs.gauge "routing.peak_words"

type rep = Csr | Boxed

let rep_name = function Csr -> "csr" | Boxed -> "boxed"

type route_class = Customer_route | Peer_route | Provider_route

let class_rank = function Customer_route -> 0 | Peer_route -> 1 | Provider_route -> 2

let class_to_string = function
  | Customer_route -> "customer"
  | Peer_route -> "peer"
  | Provider_route -> "provider"

type rib_entry = { via : int; rel : Relationship.t; len : int }

type t = {
  graph : As_graph.t;
  dest : int;
  dist_cust : int array;  (* best customer-route length; -1 = none *)
  peer_len : int array;  (* best peer-route length; -1 = none *)
  prov_len : int array;  (* best provider-route length; -1 = none *)
  export_len : int array;  (* best route length (selected); -1 = unreachable *)
  best_class : int array;  (* 0/1/2 per class_rank; -1 at dest or unreachable *)
  next : int array;  (* default next hop; -1 at dest or unreachable *)
  tree_times : int array * int array;
      (* DFS entry/exit times of the selected-route tree (parent =
         default next hop, root = dest), built at construction: [x] lies
         on [n]'s selected path iff [x] is an ancestor of [n], an O(1)
         interval test.  Powers the BGP loop filter in [rib].  Eager so
         a [t] shared across domains carries no lazily-written state. *)
  rib_arrays : rib_entry array option array;
      (* per-node sorted RIB, memoized on first demand.  Idempotent
         fill: a racing fill writes a structurally identical array, so
         concurrent readers of a shared [t] are safe (OCaml's memory
         model guarantees a racy read sees one of the written values). *)
  rib_lists : rib_entry list option array;
      (* list view of [rib_arrays.(v)], memoized for the list-returning
         public API so steady-state [rib] calls allocate nothing *)
  csr_off : int array;
      (* CSR representation of every node's sorted RIB, built eagerly at
         [compute] under [rep = Csr] (both arrays empty under [Boxed]):
         node [v]'s entries are [csr_cells.(csr_off.(v)) ..
         csr_cells.(csr_off.(v+1) - 1)], each cell a packed
         [(preference_rank lsl 60) lor (len lsl 32) lor via] int so
         ascending int order IS [entry_order].  One flat arena for all
         44K nodes instead of 44K boxed arrays — and being immutable
         after construction, it shares across domains for free. *)
  csr_cells : int array;
}

let dest t = t.dest

(* Pick the neighbor minimizing (advertised length, id) among candidates
   that actually have a route. *)
let best_via candidates route_len =
  let best = ref (-1) and best_len = ref max_int in
  Array.iter
    (fun nb ->
      match route_len nb with
      | None -> ()
      | Some l ->
        if l < !best_len || (l = !best_len && nb < !best) then begin
          best := nb;
          best_len := l
        end)
    candidates;
  if !best < 0 then None else Some (!best, 1 + !best_len)

(* DFS entry/exit times over the selected-route tree rooted at [d]
   (parent = default next hop). *)
let build_tree_times n next d =
  let children = Array.make n [] in
  for v = 0 to n - 1 do
    let p = next.(v) in
    if p >= 0 then children.(p) <- v :: children.(p)
  done;
  let tin = Array.make n (-1) and tout = Array.make n (-1) in
  let clock = ref 0 in
  (* iterative DFS: (node, Enter | Exit) *)
  let stack = Stack.create () in
  Stack.push (d, true) stack;
  while not (Stack.is_empty stack) do
    let v, entering = Stack.pop stack in
    if entering then begin
      tin.(v) <- !clock;
      incr clock;
      Stack.push (v, false) stack;
      List.iter (fun c -> Stack.push (c, true) stack) children.(v)
    end
    else begin
      tout.(v) <- !clock;
      incr clock
    end
  done;
  (tin, tout)

let compute ?(rep = Csr) g d =
  let n = As_graph.n g in
  if d < 0 || d >= n then invalid_arg "Routing.compute: destination out of range";
  let dist_cust = Array.make n (-1) in
  let peer_len = Array.make n (-1) in
  let prov_len = Array.make n (-1) in
  let export_len = Array.make n (-1) in
  let best_class = Array.make n (-1) in
  let next = Array.make n (-1) in
  (* Phase 1 — customer routes: BFS from the destination along
     customer->provider edges; an AS has a customer route iff some chain of
     successive customers leads down to d. *)
  dist_cust.(d) <- 0;
  let queue = Queue.create () in
  Queue.add d queue;
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    Array.iter
      (fun p ->
        if dist_cust.(p) < 0 then begin
          dist_cust.(p) <- dist_cust.(v) + 1;
          Queue.add p queue
        end)
      (As_graph.providers g v)
  done;
  (* Phase 2 — peer routes: usable iff the peer's best route is a customer
     route (export policy), i.e. iff the peer has a customer route. *)
  for v = 0 to n - 1 do
    if v <> d then begin
      let via_peer nb = if dist_cust.(nb) >= 0 then Some dist_cust.(nb) else None in
      match best_via (As_graph.peers g v) via_peer with
      | Some (_, l) -> peer_len.(v) <- l
      | None -> ()
    end
  done;
  (* Phase 3 — provider routes, in provider-before-customer order: a
     provider advertises its selected best route to customers, whatever its
     class, so export_len must be fixed top-down. *)
  let order = As_graph.topological_order g in
  let selected v =
    (* (class, length) of v's best route given phases so far *)
    if v = d then Some (-1, 0)
    else if dist_cust.(v) >= 0 then Some (0, dist_cust.(v))
    else if peer_len.(v) >= 0 then Some (1, peer_len.(v))
    else if prov_len.(v) >= 0 then Some (2, prov_len.(v))
    else None
  in
  Array.iter
    (fun v ->
      if v <> d then begin
        let via_provider nb =
          if export_len.(nb) >= 0 then Some export_len.(nb) else None
        in
        (match best_via (As_graph.providers g v) via_provider with
         | Some (_, l) -> prov_len.(v) <- l
         | None -> ());
        match selected v with
        | Some (_, l) -> export_len.(v) <- l
        | None -> ()
      end
      else export_len.(v) <- 0)
    order;
  (* Default next hops from the final class decision. *)
  for v = 0 to n - 1 do
    if v <> d then begin
      let pick candidates route_len = best_via candidates route_len in
      let via_customer nb =
        (* a customer exports to its provider only its customer routes *)
        if dist_cust.(nb) >= 0 then Some dist_cust.(nb) else None
      in
      let via_peer nb = if dist_cust.(nb) >= 0 then Some dist_cust.(nb) else None in
      let via_provider nb = if export_len.(nb) >= 0 then Some export_len.(nb) else None in
      if dist_cust.(v) >= 0 then begin
        best_class.(v) <- 0;
        match pick (As_graph.customers g v) via_customer with
        | Some (nb, l) ->
          assert (l = dist_cust.(v));
          next.(v) <- nb
        | None ->
          (* the only customer route with no customer next hop is via a
             directly-connected destination customer — impossible here
             since d itself is covered by via_customer *)
          assert false
      end
      else if peer_len.(v) >= 0 then begin
        best_class.(v) <- 1;
        match pick (As_graph.peers g v) via_peer with
        | Some (nb, l) ->
          assert (l = peer_len.(v));
          next.(v) <- nb
        | None -> assert false
      end
      else if prov_len.(v) >= 0 then begin
        best_class.(v) <- 2;
        match pick (As_graph.providers g v) via_provider with
        | Some (nb, l) ->
          assert (l = prov_len.(v));
          next.(v) <- nb
        | None -> assert false
      end
    end
  done;
  let tree_times = build_tree_times n next d in
  let csr_off, csr_cells =
    match rep with
    | Boxed -> ([||], [||])
    | Csr ->
      (* Admissibility repeats [compute_rib]'s export filter: a customer
         or peer neighbor advertises its best customer route, a provider
         its selected route, and the BGP loop filter drops routes whose
         AS path runs through us (an ancestor query on the route tree). *)
      let tin, tout = tree_times in
      let on_path ~node x =
        tin.(node) >= 0 && tin.(x) >= 0 && tin.(x) <= tin.(node) && tout.(node) <= tout.(x)
      in
      let off = Array.make (n + 1) 0 in
      for v = 0 to n - 1 do
        if v <> d then begin
          let c = ref 0 in
          let count_class nbrs advertised =
            Array.iter
              (fun nb -> if advertised nb >= 0 && not (on_path ~node:nb v) then incr c)
              nbrs
          in
          count_class (As_graph.customers g v) (fun nb -> dist_cust.(nb));
          count_class (As_graph.peers g v) (fun nb -> dist_cust.(nb));
          count_class (As_graph.providers g v) (fun nb -> export_len.(nb));
          off.(v + 1) <- !c
        end
      done;
      for v = 0 to n - 1 do
        off.(v + 1) <- off.(v + 1) + off.(v)
      done;
      let cells = Array.make off.(n) 0 in
      let max_deg = ref 0 in
      for v = 0 to n - 1 do
        max_deg := Stdlib.max !max_deg (off.(v + 1) - off.(v))
      done;
      let scratch = Array.make !max_deg 0 in
      for v = 0 to n - 1 do
        if v <> d then begin
          let p = ref off.(v) in
          let push_class rank nbrs advertised =
            Array.iter
              (fun nb ->
                let adv = advertised nb in
                if adv >= 0 && not (on_path ~node:nb v) then begin
                  cells.(!p) <- (rank lsl 60) lor ((1 + adv) lsl 32) lor nb;
                  incr p
                end)
              nbrs
          in
          push_class 0 (As_graph.customers g v) (fun nb -> dist_cust.(nb));
          push_class 1 (As_graph.peers g v) (fun nb -> dist_cust.(nb));
          push_class 2 (As_graph.providers g v) (fun nb -> export_len.(nb));
          (* Sort the segment: ascending packed ints = entry_order.  The
             classes were pushed in rank order, so only (len, via) within
             each class is out of order; the heapsort is O(k log k) even
             on tier-1 hubs with thousands of entries. *)
          let k = !p - off.(v) in
          if k > 1 then begin
            Array.blit cells off.(v) scratch 0 k;
            Mifo_util.Sort.sort_prefix ~cmp:Int.compare scratch k;
            Array.blit scratch 0 cells off.(v) k
          end
        end
      done;
      (off, cells)
  in
  let t =
    {
      graph = g;
      dest = d;
      dist_cust;
      peer_len;
      prov_len;
      export_len;
      best_class;
      next;
      tree_times;
      rib_arrays = Array.make n None;
      rib_lists = Array.make n None;
      csr_off;
      csr_cells;
    }
  in
  Obs.max_gauge g_peak_words (float_of_int (Gc.quick_stat ()).Gc.heap_words);
  t

let reachable t v = v = t.dest || t.export_len.(v) >= 0

let best_class t v =
  if v = t.dest then None
  else
    match t.best_class.(v) with
    | 0 -> Some Customer_route
    | 1 -> Some Peer_route
    | 2 -> Some Provider_route
    | _ -> None

let best_len t v =
  if v = t.dest then 0
  else if t.export_len.(v) < 0 then invalid_arg "Routing.best_len: unreachable"
  else t.export_len.(v)

let next_hop t v = if t.next.(v) < 0 then None else Some t.next.(v)

let customer_route_len t v =
  if t.dist_cust.(v) < 0 then None else Some t.dist_cust.(v)

let export_len t v = if t.export_len.(v) < 0 then None else Some t.export_len.(v)

let default_path t s =
  let n = As_graph.n t.graph in
  let rec follow v acc steps =
    if steps > n then invalid_arg "Routing.default_path: next-hop loop (corrupt state)"
    else if v = t.dest then List.rev (v :: acc)
    else
      match next_hop t v with
      | None -> invalid_arg "Routing.default_path: unreachable source"
      | Some nb -> follow nb (v :: acc) (steps + 1)
  in
  follow s [] 0

let on_selected_path t ~node x =
  (* is [x] on [node]'s selected default path (including its endpoints)? *)
  let tin, tout = t.tree_times in
  tin.(node) >= 0 && tin.(x) >= 0 && tin.(x) <= tin.(node) && tout.(node) <= tout.(x)

let entry_order a b =
  let ka = (Relationship.preference_rank a.rel, a.len, a.via) in
  let kb = (Relationship.preference_rank b.rel, b.len, b.via) in
  compare ka kb

let compute_rib t v =
  let g = t.graph in
  let entries = ref [] in
  let nbrs = As_graph.neighbors g v in
  Array.iter
    (fun nb ->
      let rel = As_graph.rel_exn g v nb in
      let advertised =
        match rel with
        | Relationship.Customer | Relationship.Peer ->
          (* they export to us (their provider / peer) only customer routes *)
          if t.dist_cust.(nb) >= 0 then Some t.dist_cust.(nb) else None
        | Relationship.Provider ->
          if t.export_len.(nb) >= 0 then Some t.export_len.(nb) else None
      in
      match advertised with
      | Some l ->
        (* BGP loop filter: reject a route whose AS path contains us.
           The neighbor's exported path is its selected default path,
           so the check is an ancestor query on the route tree. *)
        if not (on_selected_path t ~node:nb v) then
          entries := { via = nb; rel; len = 1 + l } :: !entries
      | None -> ())
    nbrs;
  let arr = Array.of_list !entries in
  Array.sort entry_order arr;
  arr

let rep t = if Array.length t.csr_off = 0 then Boxed else Csr

(* Packed-cell decode. *)
let[@inline] cell_via c = c land 0xFFFFFFFF
let[@inline] cell_len c = (c lsr 32) land 0xFFFFFFF

let cell_rel c =
  match c lsr 60 with
  | 0 -> Relationship.Customer
  | 1 -> Relationship.Peer
  | _ -> Relationship.Provider

let decode_csr t v =
  let lo = t.csr_off.(v) in
  Array.init
    (t.csr_off.(v + 1) - lo)
    (fun i ->
      let c = t.csr_cells.(lo + i) in
      { via = cell_via c; rel = cell_rel c; len = cell_len c })

let rib_array t v =
  if v = t.dest then [||]
  else
    match t.rib_arrays.(v) with
    | Some arr -> arr
    | None ->
      let arr =
        match rep t with Csr -> decode_csr t v | Boxed -> compute_rib t v
      in
      t.rib_arrays.(v) <- Some arr;
      arr

let rib t v =
  if v = t.dest then []
  else
    match t.rib_lists.(v) with
    | Some entries -> entries
    | None ->
      let entries = Array.to_list (rib_array t v) in
      t.rib_lists.(v) <- Some entries;
      entries

let alternatives t v =
  match rib t v with [] -> [] | _default :: rest -> rest

let rib_size t v =
  if Array.length t.csr_off > 0 then t.csr_off.(v + 1) - t.csr_off.(v)
  else Array.length (rib_array t v)

(* Allocation-free per-entry accessors for hot loops (index 0 is the
   default route, matching [rib]'s head).  Under [Boxed] they read the
   memoized boxed RIB instead of packed cells. *)

let[@inline] rib_via t v i =
  if Array.length t.csr_off > 0 then cell_via t.csr_cells.(t.csr_off.(v) + i)
  else (rib_array t v).(i).via

let[@inline] rib_len_at t v i =
  if Array.length t.csr_off > 0 then cell_len t.csr_cells.(t.csr_off.(v) + i)
  else (rib_array t v).(i).len

let[@inline] rib_rel_at t v i =
  if Array.length t.csr_off > 0 then cell_rel t.csr_cells.(t.csr_off.(v) + i)
  else (rib_array t v).(i).rel

(* The concrete AS path behind a RIB entry.  A neighbor advertises, to a
   provider or peer, its best customer route; to a customer, its selected
   best route.  Gao-Rexford selection prefers customer routes, so
   whenever a customer route exists it IS the selected route — in every
   export case the advertised path is the neighbor's selected default
   path, and the entry's path is us prepended to it. *)
let rib_path t v (e : rib_entry) =
  (match e.rel with
   | Relationship.Customer | Relationship.Peer ->
     (* exported-to-us customer route: exists iff the neighbor has one *)
     if t.dist_cust.(e.via) < 0 && e.via <> t.dest then
       invalid_arg "Routing.rib_path: neighbor exported no customer route"
   | Relationship.Provider ->
     if t.export_len.(e.via) < 0 && e.via <> t.dest then
       invalid_arg "Routing.rib_path: neighbor exported no route");
  v :: default_path t e.via

let rib_paths t v =
  List.map (fun e -> (e, rib_path t v e)) (rib t v)
