(** Per-destination interdomain route computation.

    Computes, for one destination AS [d], the stable Gao–Rexford routing
    state of {e every} AS: which neighbors exported a route (the local
    BGP RIB MIFO mines for alternative paths), the selected best route
    and its class, and the default next hop.

    Selection follows the paper exactly (Section IV-A): customer routes
    are preferred over peer routes over provider routes; within a class
    the shorter AS path wins, and the lowest next-hop AS id breaks the
    remaining ties.  Export follows {!Mifo_topology.Relationship.exports_to}:
    an AS advertises only its selected best route, to every neighbor for
    customer routes and only to customers otherwise.

    The algorithm is the standard three-phase propagation over the
    provider hierarchy (customer routes by BFS up the provider edges,
    peer routes in one step, provider routes down the hierarchy in
    topological order) and runs in O(V + E) per destination.

    {b Thread safety.}  A [t] is immutable except for the per-node RIB
    memo, whose fill is idempotent: concurrent accessors on a shared [t]
    from several domains are safe (a racy refill produces a structurally
    identical value; at worst a node's RIB is computed twice).  The
    selected-route tree used by {!on_selected_path} is built eagerly at
    construction, so {!compute} results can be cached and shared across
    domains freely — which is exactly what
    {!Routing_table.precompute} does. *)

type route_class = Customer_route | Peer_route | Provider_route

val class_rank : route_class -> int
val class_to_string : route_class -> string

type rep = Csr | Boxed
(** RIB representation.  {!Csr} (the default) packs every node's sorted
    RIB into one shared arena of [(rank, len, via)]-packed ints plus an
    offset array, built eagerly at {!compute} — at 44K ASes this is a
    pair of flat arrays instead of 44K boxed per-node structures, and
    {!rib_size}/{!rib_via}/{!rib_len_at}/{!rib_rel_at} never allocate.
    {!Boxed} is the original on-demand per-node representation, kept as
    the oracle; QCheck gates in [test_bgp] assert the two produce
    identical RIBs.  The boxed {!rib}/{!rib_array} views exist under
    both (thin memoized adapters over the cells under {!Csr}). *)

val rep_name : rep -> string

type t
(** Routing state toward one destination. *)

val dest : t -> int

val compute : ?rep:rep -> Mifo_topology.As_graph.t -> int -> t
(** [compute g d].  @raise Invalid_argument if [d] is out of range. *)

val rep : t -> rep

val reachable : t -> int -> bool
(** Every AS is reachable in a connected topology (provider routes reach
    everywhere), but the accessor keeps callers honest on subgraphs. *)

val best_class : t -> int -> route_class option
(** [None] at the destination itself or when unreachable. *)

val best_len : t -> int -> int
(** AS-path length (in AS hops) of the selected route; [0] at the
    destination.  @raise Invalid_argument when unreachable. *)

val next_hop : t -> int -> int option
(** Default next hop; [None] at the destination. *)

val customer_route_len : t -> int -> int option
(** Length of the best customer-learned route at an AS, if any.  The
    export rules make this the value a neighbor sees when this AS
    advertises to a provider or peer. *)

val export_len : t -> int -> int option
(** Length of the route this AS advertises to its customers (= its best
    route), if reachable. *)

val default_path : t -> int -> int list
(** [default_path t s] is the full default AS path [s; ...; d] obtained by
    following default next hops.  At most [V] hops by construction. *)

(** {1 The local RIB} *)

type rib_entry = {
  via : int;  (** the neighbor that exported the route *)
  rel : Mifo_topology.Relationship.t;  (** that neighbor's role relative to us *)
  len : int;  (** AS-path length of the route via this neighbor *)
}

val rib : t -> int -> rib_entry list
(** All routes in the local RIB of an AS toward [dest t], one per
    exporting neighbor, sorted best-first (class, then length, then
    next-hop id).  The head is the default route.  Empty at the
    destination.  Memoized per node: the first call scans the
    neighborhood and sorts, every later call returns the same list
    without allocating — callers in per-epoch loops ({!Mifo_core}'s
    selectors, the simulators, {!Path_count}) hit the cached value. *)

val rib_array : t -> int -> rib_entry array
(** The same RIB as an array (shared, memoized — do {b not} mutate).
    The allocation-free form for hot loops that only iterate. *)

val alternatives : t -> int -> rib_entry list
(** [rib] minus the default entry — exactly the paths MIFO can deflect
    to. *)

val rib_size : t -> int -> int
(** Number of RIB entries at an AS — O(1) and allocation-free under
    {!Csr} (an offset subtraction). *)

(** {2 Allocation-free entry accessors}

    [rib_via t v i] / [rib_len_at t v i] / [rib_rel_at t v i] read field
    by field what [(rib_array t v).(i)] holds, without materialising the
    boxed view — index [0] is the default route, [1 ..] the
    alternatives, exactly {!rib}'s order.  Under {!Csr} these are plain
    reads of the packed cell arena; the static verifier's product-DFS
    iterates RIBs this way at 44K without touching the memo.  Indices
    must be [< rib_size t v]. *)

val rib_via : t -> int -> int -> int
val rib_len_at : t -> int -> int -> int
val rib_rel_at : t -> int -> int -> Mifo_topology.Relationship.t

val rib_path : t -> int -> rib_entry -> int list
(** [rib_path t v e] is the concrete AS path [v; e.via; ...; dest t]
    advertised by the RIB entry [e] at [v].  Because Gao–Rexford
    selection prefers customer routes, the advertised route coincides
    with the neighbor's selected default path in every export case, so
    the result is [v :: default_path t e.via].  Its hop count equals
    [e.len]; the static verifier ({!Mifo_analysis}) checks both that and
    its valley-freeness for every entry of every RIB.
    @raise Invalid_argument if [e] is not a live export (never for
    entries returned by {!rib}). *)

val rib_paths : t -> int -> (rib_entry * int list) list
(** Every RIB entry at an AS paired with its {!rib_path} — the full set
    of paths MIFO forwarding can put a packet on from that AS. *)

val on_selected_path : t -> node:int -> int -> bool
(** [on_selected_path t ~node x] — does [x] lie on [node]'s selected
    default path (endpoints included)?  O(1) against the DFS interval
    labelling built at construction; this is the predicate behind
    [rib]'s BGP loop filter. *)
