(* The cache is sharded by destination so domains precomputing disjoint
   destinations rarely contend: shard [d mod nshards], one mutex per
   shard.  Each shard is an exact LRU — entries carry the shard clock's
   tick at last use; eviction removes the minimum tick.  The O(shard
   size) victim scan only runs on insertion into a full shard, which is
   the rare path (the default bound is "unbounded"). *)

module Parallel = Mifo_util.Parallel

type entry = { route : Routing.t; mutable tick : int }

type shard = {
  lock : Mutex.t;
  table : (int, entry) Hashtbl.t; (* lint:allow mutex-guarded control-plane cache *)
  mutable clock : int;
  capacity : int;  (* per-shard bound; [max_int] = unbounded *)
}

type t = {
  graph : Mifo_topology.As_graph.t;
  shards : shard array;
}

let default_shards = 16

let create ?(max_cached = max_int) graph =
  if max_cached < 1 then invalid_arg "Routing_table.create: max_cached < 1";
  (* never more shards than cache slots, so every shard holds >= 1 *)
  let nshards = Stdlib.min default_shards max_cached in
  let capacity = if max_cached = max_int then max_int else max_cached / nshards in
  {
    graph;
    shards =
      Array.init nshards (fun _ ->
          { lock = Mutex.create (); table = Hashtbl.create 64; clock = 0; capacity }); (* lint:allow mutex-guarded control-plane cache *)
  }

let graph t = t.graph

let touch shard e =
  shard.clock <- shard.clock + 1;
  e.tick <- shard.clock

let evict_lru shard =
  let victim =
    Hashtbl.fold (* lint:allow mutex-guarded control-plane cache *)
      (fun d e acc ->
        match acc with
        | Some (_, best) when best <= e.tick -> acc
        | _ -> Some (d, e.tick))
      shard.table None
  in
  match victim with Some (d, _) -> Hashtbl.remove shard.table d | None -> () (* lint:allow mutex-guarded control-plane cache *)

let get t d =
  let n = Mifo_topology.As_graph.n t.graph in
  if d < 0 || d >= n then invalid_arg "Routing_table.get: destination out of range";
  let shard = t.shards.(d mod Array.length t.shards) in
  Mutex.lock shard.lock;
  match Hashtbl.find_opt shard.table d with (* lint:allow mutex-guarded control-plane cache *)
  | Some e ->
    touch shard e;
    Mutex.unlock shard.lock;
    e.route
  | None ->
    (* Compute outside the lock: a same-shard destination being computed
       by another domain must not serialize behind this one. *)
    Mutex.unlock shard.lock;
    let route = Routing.compute t.graph d in
    Mutex.lock shard.lock;
    (match Hashtbl.find_opt shard.table d with (* lint:allow mutex-guarded control-plane cache *)
     | Some e ->
       (* lost a fill race; keep the incumbent so repeated [get]s keep
          returning physically equal states *)
       touch shard e;
       Mutex.unlock shard.lock;
       e.route
     | None ->
       if Hashtbl.length shard.table >= shard.capacity then evict_lru shard; (* lint:allow mutex-guarded control-plane cache *)
       let e = { route; tick = 0 } in
       touch shard e;
       Hashtbl.add shard.table d e; (* lint:allow mutex-guarded control-plane cache *)
       Mutex.unlock shard.lock;
       route)

let precompute ?pool t dests =
  let pool = match pool with Some p -> p | None -> Parallel.get_default () in
  Parallel.parallel_for pool ~lo:0 ~hi:(Array.length dests) (fun i ->
      ignore (get t dests.(i)))

let precompute_all ?pool t =
  precompute ?pool t (Array.init (Mifo_topology.As_graph.n t.graph) Fun.id)

let cached_count t =
  Array.fold_left
    (fun acc shard ->
      Mutex.lock shard.lock;
      let len = Hashtbl.length shard.table in (* lint:allow mutex-guarded control-plane cache *)
      Mutex.unlock shard.lock;
      acc + len)
    0 t.shards
