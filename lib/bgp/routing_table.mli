(** Cache of per-destination routing states.

    Experiments query routes toward many destinations; this table
    memoizes {!Routing.compute} per destination.  [precompute] (and
    [precompute_all]) fan the independent per-destination computations
    out over a {!Mifo_util.Parallel} domain pool; larger graphs can rely
    on lazy filling with an optional bound on the number of cached
    destinations.

    {b Thread safety.}  The table is safe to use from any number of
    domains concurrently.  The cache is sharded by destination
    ([d mod nshards], one mutex per shard), so parallel fills of
    distinct destinations proceed without contention; [Routing.compute]
    itself runs outside the shard lock.  Repeated [get]s of the same
    destination return physically equal ([==]) states, including under
    a racy double-compute (the first insert wins).  Cached
    {!Routing.t} values may be shared freely across domains — see the
    thread-safety note in {!Routing}.

    {b Eviction.}  Each shard is an exact LRU: a cache {e hit} refreshes
    the entry's recency, so a bounded table under a skewed workload
    keeps the hot destinations and evicts the cold ones (the previous
    FIFO evicted in insertion order regardless of use).  With
    [~max_cached:m] the effective bound is
    [nshards * (m / nshards) <= m] where
    [nshards = min 16 m]. *)

type t

val create : ?max_cached:int -> Mifo_topology.As_graph.t -> t
(** [max_cached] defaults to unbounded.
    @raise Invalid_argument if [max_cached < 1]. *)

val graph : t -> Mifo_topology.As_graph.t

val get : t -> int -> Routing.t
(** Routing state toward destination [d], computed on first use.
    @raise Invalid_argument if [d] is out of range. *)

val precompute : ?pool:Mifo_util.Parallel.pool -> t -> int array -> unit
(** [precompute ~pool t dests] fills the cache for every listed
    destination, fanning {!Routing.compute} out across the pool's
    domains ([pool] defaults to {!Mifo_util.Parallel.get_default}).
    Results are identical to serial [get]s — only the wall-clock
    changes. *)

val precompute_all : ?pool:Mifo_util.Parallel.pool -> t -> unit
(** [precompute] over every destination of the graph. *)

val cached_count : t -> int
