module Routing = Mifo_bgp.Routing

let permitted rt ~src_as ~upstream =
  let allowed (e : Routing.rib_entry) =
    Policy.deflection_allowed ~upstream ~downstream:e.rel
  in
  List.filter allowed (Routing.alternatives rt src_as)

let best_by rt ~src_as ~upstream ~score =
  let candidates = permitted rt ~src_as ~upstream in
  let better (e : Routing.rib_entry) best =
    let s = score e in
    if s <= 0. then best
    else
      match best with
      | None -> Some (e, s)
      | Some (b, bs) ->
        if s > bs || (s = bs && e.via < b.via) then Some (e, s) else best
  in
  match List.fold_right better candidates None with
  | Some (e, _) -> Some e
  | None -> None

let best_alternative rt ~src_as ~upstream ~spare =
  best_by rt ~src_as ~upstream ~score:(fun e -> spare e.via)

let rec take n = function
  | [] -> []
  | x :: tl -> if n <= 0 then [] else x :: take (n - 1) tl

let ranked_alternatives rt ~src_as ~upstream ~spare ~k =
  (* Pool-cap FIRST, in RIB preference order: the k-limited static
     verifier admits deflections onto the first k RIB alternatives, so
     the runtime chooser must draw from exactly that pool for the check
     to be sound.  Every pool entry is next-hop-disjoint from the
     default route (the RIB holds one entry per neighbor and
     [alternatives] excludes the head). *)
  let pool = take (Stdlib.min k Fib.max_alts) (Routing.alternatives rt src_as) in
  let pool =
    List.filter
      (fun (e : Routing.rib_entry) ->
        Policy.deflection_allowed ~upstream ~downstream:e.rel && spare e.via > 0.)
      pool
  in
  List.stable_sort
    (fun (a : Routing.rib_entry) (b : Routing.rib_entry) ->
      let c = Float.compare (spare b.via) (spare a.via) in
      if c <> 0 then c else Int.compare a.via b.via)
    pool
