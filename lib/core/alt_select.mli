(** Greedy selection of the best alternative path (Section III-C).

    End-to-end available-bandwidth probing is both too slow for a data
    plane and unscalable across 50K ASes, so MIFO turns "path"
    measurement into "link" monitoring: the priority of an alternative
    path is the spare capacity of the directly connected inter-AS link it
    starts with.  This module ranks the RIB alternatives accordingly and
    applies the valley-free deflection filter, so the flow-level
    simulator, the daemon and the examples share one selection rule.

    For the ablation bench comparing the paper's greedy rule against an
    oracle that knows true end-to-end available bandwidth, use
    {!best_by}. *)

val permitted :
  Mifo_bgp.Routing.t ->
  src_as:int ->
  upstream:Mifo_topology.Relationship.t option ->
  Mifo_bgp.Routing.rib_entry list
(** The RIB alternatives at [src_as] that the Tag-Check allows for
    traffic arriving from [upstream] ([None] = locally originated). *)

val best_alternative :
  Mifo_bgp.Routing.t ->
  src_as:int ->
  upstream:Mifo_topology.Relationship.t option ->
  spare:(int -> float) ->
  Mifo_bgp.Routing.rib_entry option
(** The permitted alternative whose first-hop link has the most spare
    capacity ([spare nb] = spare capacity toward neighbor [nb]); ties go
    to the lower neighbor id; [None] when nothing is permitted or every
    permitted link has nonpositive spare. *)

val best_by :
  Mifo_bgp.Routing.t ->
  src_as:int ->
  upstream:Mifo_topology.Relationship.t option ->
  score:(Mifo_bgp.Routing.rib_entry -> float) ->
  Mifo_bgp.Routing.rib_entry option
(** Generalized form: maximizes an arbitrary score over the permitted
    alternatives ([None] when none, or all scores nonpositive). *)

val ranked_alternatives :
  Mifo_bgp.Routing.t ->
  src_as:int ->
  upstream:Mifo_topology.Relationship.t option ->
  spare:(int -> float) ->
  k:int ->
  Mifo_bgp.Routing.rib_entry list
(** The ranked candidate set for the k-alternative data plane: the
    first [min k Fib.max_alts] RIB alternatives (BGP preference order),
    valley-free-filtered for [upstream] and restricted to first-hop
    links with positive [spare], ordered most spare capacity first
    (ties to the lower neighbor id).  Pool-capping happens {e before}
    filtering, in RIB preference order, so a k-limited static check
    that admits deflections onto the first k RIB alternatives soundly
    over-approximates every set this function can return.  All entries
    are next-hop-disjoint from the default route. *)
