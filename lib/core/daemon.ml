module Obs = Mifo_util.Obs

type config = {
  congest_threshold : float;
  clear_threshold : float;
  ramp_up : int;
  ramp_down : int;
}

let default_config =
  { congest_threshold = 0.9; clear_threshold = 0.6; ramp_up = 2; ramp_down = 1 }

let is_congested ?(config = default_config) util = util >= config.congest_threshold

let c_alt_changed = Obs.counter "daemon.alt_changed"
let c_buckets_reset = Obs.counter "daemon.buckets_reset"
let c_ramp_up = Obs.counter "daemon.ramp_up_buckets"
let c_ramp_down = Obs.counter "daemon.ramp_down_buckets"
let h_util_out = Obs.histogram "daemon.port_util.out"
let h_util_alt = Obs.histogram "daemon.port_util.alt"

let epoch ?(config = default_config) ~fib ~port_utilization ~choose_alt () =
  Fib.iter fib (fun prefix entry ->
      let old_alt = entry.Fib.alt_port in
      entry.Fib.alt_port <- choose_alt prefix entry;
      if entry.Fib.alt_port <> old_alt then begin
        Obs.incr c_alt_changed;
        (* A freshly chosen alternative is cold — possibly slower than
           the one just dropped — so it must not inherit the deflected
           share accumulated against the old one.  Restart the ramp. *)
        if entry.Fib.deflect_buckets > 0 then begin
          Obs.incr c_buckets_reset;
          Obs.event "alt_changed"
            [
              ("prefix", Obs.Str (Mifo_bgp.Prefix.to_string prefix));
              ("buckets_dropped", Obs.Int entry.Fib.deflect_buckets);
            ];
          entry.Fib.deflect_buckets <- 0
        end
      end;
      match entry.Fib.alt_port with
      | None -> entry.Fib.deflect_buckets <- 0
      | Some alt ->
        let util = port_utilization entry.Fib.out_port in
        let alt_util = port_utilization alt in
        Obs.observe h_util_out util;
        Obs.observe h_util_alt alt_util;
        (* Shift more flows onto the alternative only while it still has
           headroom; when both egresses run hot the split is where we want
           it (hold), and when the default drains we shift back. *)
        if util >= config.congest_threshold && alt_util < config.congest_threshold
        then begin
          let before = entry.Fib.deflect_buckets in
          entry.Fib.deflect_buckets <-
            Stdlib.min Fib.buckets (entry.Fib.deflect_buckets + config.ramp_up);
          Obs.add c_ramp_up (entry.Fib.deflect_buckets - before)
        end
        else if util <= config.clear_threshold then begin
          let before = entry.Fib.deflect_buckets in
          entry.Fib.deflect_buckets <-
            Stdlib.max 0 (entry.Fib.deflect_buckets - config.ramp_down);
          Obs.add c_ramp_down (before - entry.Fib.deflect_buckets)
        end)
