module Obs = Mifo_util.Obs

type config = {
  congest_threshold : float;
  clear_threshold : float;
  ramp_up : int;
  ramp_down : int;
}

let default_config =
  { congest_threshold = 0.9; clear_threshold = 0.6; ramp_up = 2; ramp_down = 1 }

let is_congested ?(config = default_config) util = util >= config.congest_threshold

let c_alt_changed = Obs.counter "daemon.alt_changed"
let c_buckets_reset = Obs.counter "daemon.buckets_reset"
let c_slots_rotated = Obs.counter "daemon.slots_rotated"
let c_ramp_up = Obs.counter "daemon.ramp_up_buckets"
let c_ramp_down = Obs.counter "daemon.ramp_down_buckets"
let h_util_out = Obs.histogram "daemon.port_util.out"
let h_util_alt = Obs.histogram "daemon.port_util.alt"

let epoch_ranked ?(config = default_config) ~fib ~port_utilization ~choose_alts () =
  (* Per-epoch scratch for the previous ranked set; outside the closure
     so the per-entry loop does not allocate. *)
  let olds = Array.make Fib.max_alts (-1) in
  Fib.iter fib (fun prefix entry ->
      for i = 0 to Fib.max_alts - 1 do
        olds.(i) <- Fib.alt_at entry i
      done;
      Fib.set_alts entry (choose_alts prefix entry);
      let changed = ref false in
      let survives = ref false in
      for i = 0 to Fib.max_alts - 1 do
        let a = Fib.alt_at entry i in
        if a <> olds.(i) then changed := true;
        if a >= 0 then
          for j = 0 to Fib.max_alts - 1 do
            if olds.(j) = a then survives := true
          done
      done;
      if !changed then begin
        Obs.incr c_alt_changed;
        if !survives then
          (* Per-slot demotion/promotion: at least one previously ramped
             alternative is still in the set, so the deflected share
             keeps flowing onto warm paths — hold the ramp and only note
             the rotation.  (Dropped slots stop receiving traffic
             immediately: the bucket→slot spread follows the live
             count.) *)
          Obs.incr c_slots_rotated
        else if Fib.deflect_buckets entry > 0 then begin
          (* A wholly fresh set is cold — possibly slower than the paths
             just dropped — so it must not inherit the deflected share
             accumulated against them.  Restart the ramp. *)
          Obs.incr c_buckets_reset;
          Obs.event "alt_changed"
            [
              ("prefix", Obs.Str (Mifo_bgp.Prefix.to_string prefix));
              ("buckets_dropped", Obs.Int (Fib.deflect_buckets entry));
            ];
          Fib.set_deflect_buckets entry 0
        end
      end;
      let n = Fib.alt_count entry in
      if n = 0 then Fib.set_deflect_buckets entry 0
      else begin
        let util = port_utilization (Fib.out_port entry) in
        (* Headroom of the ranked set = the least-loaded live slot:
           ramping shifts whole buckets, and the spread deals each
           bucket to one slot, so there must be at least one slot that
           can absorb more. *)
        let alt_util = ref (port_utilization (Fib.alt_at entry 0)) in
        for i = 1 to n - 1 do
          let u = port_utilization (Fib.alt_at entry i) in
          if u < !alt_util then alt_util := u
        done;
        Obs.observe h_util_out util;
        Obs.observe h_util_alt !alt_util;
        (* Shift more flows onto the alternatives only while the set
           still has headroom; when every egress runs hot the split is
           where we want it (hold), and when the default drains we shift
           back.  Both ramps clamp to [0, Fib.buckets] and account only
           the buckets actually shifted — an entry already at an edge
           emits no spurious ramp count. *)
        let before = Fib.deflect_buckets entry in
        if util >= config.congest_threshold && !alt_util < config.congest_threshold
        then begin
          let target = Stdlib.min Fib.buckets (before + config.ramp_up) in
          if target > before then begin
            Fib.set_deflect_buckets entry target;
            Obs.add c_ramp_up (target - before)
          end
        end
        else if util <= config.clear_threshold then begin
          let target = Stdlib.max 0 (before - config.ramp_down) in
          if target < before then begin
            Fib.set_deflect_buckets entry target;
            Obs.add c_ramp_down (before - target)
          end
        end
      end)

let epoch ?config ~fib ~port_utilization ~choose_alt () =
  epoch_ranked ?config ~fib ~port_utilization
    ~choose_alts:(fun prefix entry ->
      match choose_alt prefix entry with None -> [] | Some a -> [ a ])
    ()
