module Obs = Mifo_util.Obs

type config = {
  congest_threshold : float;
  clear_threshold : float;
  ramp_up : int;
  ramp_down : int;
}

let default_config =
  { congest_threshold = 0.9; clear_threshold = 0.6; ramp_up = 2; ramp_down = 1 }

let is_congested ?(config = default_config) util = util >= config.congest_threshold

let c_alt_changed = Obs.counter "daemon.alt_changed"
let c_buckets_reset = Obs.counter "daemon.buckets_reset"
let c_ramp_up = Obs.counter "daemon.ramp_up_buckets"
let c_ramp_down = Obs.counter "daemon.ramp_down_buckets"
let h_util_out = Obs.histogram "daemon.port_util.out"
let h_util_alt = Obs.histogram "daemon.port_util.alt"

let epoch ?(config = default_config) ~fib ~port_utilization ~choose_alt () =
  Fib.iter fib (fun prefix entry ->
      let old_alt = Fib.alt_port_id entry in
      Fib.set_alt_port entry (choose_alt prefix entry);
      let alt = Fib.alt_port_id entry in
      if alt <> old_alt then begin
        Obs.incr c_alt_changed;
        (* A freshly chosen alternative is cold — possibly slower than
           the one just dropped — so it must not inherit the deflected
           share accumulated against the old one.  Restart the ramp. *)
        if Fib.deflect_buckets entry > 0 then begin
          Obs.incr c_buckets_reset;
          Obs.event "alt_changed"
            [
              ("prefix", Obs.Str (Mifo_bgp.Prefix.to_string prefix));
              ("buckets_dropped", Obs.Int (Fib.deflect_buckets entry));
            ];
          Fib.set_deflect_buckets entry 0
        end
      end;
      if alt < 0 then Fib.set_deflect_buckets entry 0
      else begin
        let util = port_utilization (Fib.out_port entry) in
        let alt_util = port_utilization alt in
        Obs.observe h_util_out util;
        Obs.observe h_util_alt alt_util;
        (* Shift more flows onto the alternative only while it still has
           headroom; when both egresses run hot the split is where we want
           it (hold), and when the default drains we shift back. *)
        if util >= config.congest_threshold && alt_util < config.congest_threshold
        then begin
          let before = Fib.deflect_buckets entry in
          Fib.set_deflect_buckets entry
            (Stdlib.min Fib.buckets (before + config.ramp_up));
          Obs.add c_ramp_up (Fib.deflect_buckets entry - before)
        end
        else if util <= config.clear_threshold then begin
          let before = Fib.deflect_buckets entry in
          Fib.set_deflect_buckets entry (Stdlib.max 0 (before - config.ramp_down));
          Obs.add c_ramp_down (before - Fib.deflect_buckets entry)
        end
      end)
