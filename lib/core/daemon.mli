(** The MIFO daemon — the control-plane half of the prototype (Section V).

    In the paper's implementation this is a XORP module: it obtains
    alternative paths from the BGP module, collects per-link utilization
    from the kernel forwarding engine, exchanges measurements with iBGP
    peers over the existing TCP sessions, and updates the alternative
    ports in the FIB.  Here it is a pure epoch function over a {!Fib.t}
    plus callbacks, so the packet simulator and the testbed can run it
    at any cadence.

    Each epoch, for every FIB entry the daemon
    + refreshes the ranked alternative set (best spare capacity first,
      greedy rule).  The ramp state is {e per-set}: when at least one
      previously installed alternative survives the refresh, the
      accumulated deflection level is held — a congested or withdrawn
      slot drops out without resetting the others' ramp (the bucket→slot
      spread re-deals its share to the survivors instantly) — while a
      wholly fresh set is cold and possibly slower, so it must not
      inherit the share ramped up against the old one and the level
      resets to zero;
    + ramps the deflection level up while the default egress stays above
      the congestion threshold {e and the least-loaded alternative still
      has headroom} — once everything runs hot the split is held, and it
      ramps back down when the default drains below the clear threshold
      (hysteresis keeps path switching rare — Fig. 9).  The level is
      clamped to \[0, {!Fib.buckets}\] and the ramp counters account
      only buckets actually shifted: an entry already at an edge emits
      no spurious [daemon.ramp_up_buckets]/[daemon.ramp_down_buckets]
      count.

    The epoch is accounted in {!Mifo_util.Obs}: [daemon.alt_changed]
    (any change to the ranked set), [daemon.slots_rotated] (set changed
    but overlaps the old one — ramp held), [daemon.buckets_reset],
    [daemon.ramp_up_buckets] / [daemon.ramp_down_buckets] (total buckets
    shifted) and the [daemon.port_util.out] / [daemon.port_util.alt]
    utilization histograms. *)

type config = {
  congest_threshold : float;  (** egress utilization >= this = congested (default 0.9) *)
  clear_threshold : float;  (** utilization <= this = drained (default 0.6) *)
  ramp_up : int;  (** buckets added per congested epoch (default 2) *)
  ramp_down : int;  (** buckets removed per drained epoch (default 1) *)
}

val default_config : config

val epoch_ranked :
  ?config:config ->
  fib:Fib.t ->
  port_utilization:(int -> float) ->
  choose_alts:(Mifo_bgp.Prefix.t -> Fib.entry -> int list) ->
  unit ->
  unit
(** One daemon tick over ranked sets.  [port_utilization p] is the
    smoothed utilization of egress port [p] in \[0, 1\];
    [choose_alts prefix entry] returns the ranked alternative ports for
    [prefix] (best first, truncated at {!Fib.max_alts}), typically via
    {!Alt_select.ranked_alternatives} plus the router's port map. *)

val epoch :
  ?config:config ->
  fib:Fib.t ->
  port_utilization:(int -> float) ->
  choose_alt:(Mifo_bgp.Prefix.t -> Fib.entry -> int option) ->
  unit ->
  unit
(** The k=1 compatibility shim: {!epoch_ranked} with the chooser's
    option wrapped as a singleton ranked set.  Behavior (FIB state and
    Obs accounting) is identical to the historical single-alternative
    daemon. *)

val is_congested : ?config:config -> float -> bool
(** The congestion predicate on a utilization sample, shared with the
    engine's [is_congested] callback. *)
