(** The MIFO daemon — the control-plane half of the prototype (Section V).

    In the paper's implementation this is a XORP module: it obtains
    alternative paths from the BGP module, collects per-link utilization
    from the kernel forwarding engine, exchanges measurements with iBGP
    peers over the existing TCP sessions, and updates the [alt] port in
    the FIB.  Here it is a pure epoch function over a {!Fib.t} plus
    callbacks, so the packet simulator and the testbed can run it at any
    cadence.

    Each epoch, for every FIB entry the daemon
    + refreshes the alternative port (best spare capacity, greedy rule);
      when the refresh {e changes} the alternative, the accumulated
      deflection level is reset to zero — the new egress is cold and
      possibly slower, so it must not inherit the share ramped up
      against the old one;
    + ramps the deflection level up while the default egress stays above
      the congestion threshold {e and the alternative still has headroom}
      — once both run hot the split is held, and it ramps back down when
      the default drains below the clear threshold (hysteresis keeps path
      switching rare — Fig. 9).

    The epoch is accounted in {!Mifo_util.Obs}: [daemon.alt_changed],
    [daemon.buckets_reset], [daemon.ramp_up_buckets] /
    [daemon.ramp_down_buckets] (total buckets shifted) and the
    [daemon.port_util.out] / [daemon.port_util.alt] utilization
    histograms. *)

type config = {
  congest_threshold : float;  (** egress utilization >= this = congested (default 0.9) *)
  clear_threshold : float;  (** utilization <= this = drained (default 0.6) *)
  ramp_up : int;  (** buckets added per congested epoch (default 2) *)
  ramp_down : int;  (** buckets removed per drained epoch (default 1) *)
}

val default_config : config

val epoch :
  ?config:config ->
  fib:Fib.t ->
  port_utilization:(int -> float) ->
  choose_alt:(Mifo_bgp.Prefix.t -> Fib.entry -> int option) ->
  unit ->
  unit
(** One daemon tick.  [port_utilization p] is the smoothed utilization of
    egress port [p] in \[0, 1\]; [choose_alt prefix entry] returns the
    port of the currently best alternative path for [prefix] (or [None]),
    typically via {!Alt_select.best_alternative} plus the router's
    port map. *)

val is_congested : ?config:config -> float -> bool
(** The congestion predicate on a utilization sample, shared with the
    engine's [is_congested] callback. *)
