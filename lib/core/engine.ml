module Obs = Mifo_util.Obs

type port_kind =
  | Ebgp of { neighbor_as : int; rel : Mifo_topology.Relationship.t }
  | Ibgp of { peer_router : int }
  | Local

type env = {
  router_id : int;
  fib : Fib.t;
  port_kind : int -> port_kind;
  is_congested : int -> bool;
  next_hop_router : int -> int option;
  route_to_peer : int -> int option;
}

type drop_reason = No_route | Valley_violation | Ttl_expired

type action =
  | Send of { port : int; packet : Packet.t; default_port : int }
  | Drop of { packet : Packet.t; reason : drop_reason }

let drop_reason_to_string = function
  | No_route -> "no-route"
  | Valley_violation -> "valley-violation"
  | Ttl_expired -> "ttl-expired"

(* Metric handles are resolved once at module initialisation; the hot
   path only touches atomics. *)
let c_drop_no_route = Obs.counter "engine.drop.no_route"
let c_drop_valley = Obs.counter "engine.drop.valley_violation"
let c_drop_ttl = Obs.counter "engine.drop.ttl_expired"
let c_decap = Obs.counter "engine.decap"
let c_encap = Obs.counter "engine.encap"
let c_deflect_ibgp = Obs.counter "engine.deflect.ibgp"
let c_deflect_ebgp = Obs.counter "engine.deflect.ebgp"
let c_deflect_sender = Obs.counter "engine.deflect.from_sender"
let c_tag_fallback = Obs.counter "engine.tag_check.fallback"
let c_transit_routed = Obs.counter "engine.transit.routed"
let c_transit_fib = Obs.counter "engine.transit.fib_fallback"

let ev name env packet fields =
  if Obs.trace_enabled () then
    Obs.event name
      (("router", Obs.Int env.router_id)
      :: ("flow", Obs.Int packet.Packet.flow)
      :: fields)

let drop env packet reason =
  (match reason with
  | No_route -> Obs.incr c_drop_no_route
  | Valley_violation ->
    Obs.incr c_drop_valley;
    ev "drop" env packet [ ("reason", Obs.Str "valley-violation") ]
  | Ttl_expired -> Obs.incr c_drop_ttl);
  Drop { packet; reason }

let forward_from ~tag_check ~ibgp_encap env ~ingress packet =
  if packet.Packet.ttl <= 1 then drop env packet Ttl_expired
  else begin
    (* Lines 5-10: the (re)tag for the packet entering point.  A
       host-facing [Local] port is the source AS's entering point, so it
       tags with the source tag exactly like no-ingress — a packet
       from our own customer cone may take any first deflection.  Only
       iBGP ingress keeps the tag: the packet already entered this AS
       elsewhere.  Computed up front so the TTL decrement, the retag and
       (lines 1-3) a terminating tunnel's decapsulation fuse into the
       hop's single header-rewrite copy — this runs per packet per hop,
       and packets are immutable. *)
    let tag =
      if ingress < 0 then Policy.source_tag
      else
        match env.port_kind ingress with
        | Ebgp { rel; _ } -> Policy.tag_of_upstream rel
        | Local -> Policy.source_tag
        | Ibgp _ -> packet.Packet.vf_tag
    in
    (* [sender] is the router that tunneled the packet to us, [-1] when
       it did not arrive through a terminating tunnel — an int, not an
       option, because this path runs per hop and the [Some] would be
       a fresh allocation every packet. *)
    let sender =
      match packet.Packet.encap with
      | Some e when e.Packet.outer_dst = env.router_id ->
        Obs.incr c_decap;
        ev "decap" env packet [ ("outer_src", Obs.Int e.Packet.outer_src) ];
        e.Packet.outer_src
      | Some _ | None -> -1
    in
    let packet =
      if sender >= 0 then
        { packet with Packet.ttl = packet.Packet.ttl - 1; vf_tag = tag; encap = None }
      else { packet with Packet.ttl = packet.Packet.ttl - 1; vf_tag = tag }
    in
    match packet.Packet.encap with
    | Some e ->
      (* In-transit tunnel: the packet is inside another router's
         IP-in-IP and not addressed to us, so it must be routed on the
         {e outer} header — toward the tunnel endpoint — and must never
         be deflected: hash-deflecting it out an eBGP port would let it
         leave the AS still encapsulated, never terminating its
         tunnel. *)
      (match env.route_to_peer e.Packet.outer_dst with
       | Some port ->
         Obs.incr c_transit_routed;
         ev "transit" env packet [ ("outer_dst", Obs.Int e.Packet.outer_dst) ];
         Send { port; packet; default_port = -1 }
       | None -> (
         (* No known iBGP route to the endpoint (degenerate wiring, e.g.
            a unit-test env): fall back to the default route for the
            inner destination, still without deflection. *)
         match Fib.lookup env.fib packet.Packet.dst with
         | None -> drop env packet No_route
         | Some entry ->
           Obs.incr c_transit_fib;
           let port = Fib.out_port entry in
           Send { port; packet; default_port = port }))
    | None -> (
      (* Line 4: FIB lookup. *)
      match Fib.lookup env.fib packet.Packet.dst with
      | None -> drop env packet No_route
      | Some entry -> (
        let default_port = Fib.out_port entry in
        match env.port_kind default_port with
        | Local ->
          (* destination network attached here: hand the packet to the
             host-facing port, no deflection logic applies *)
          Send { port = default_port; packet; default_port }
        | Ebgp _ | Ibgp _ -> (
          (* Line 11: use the alternative when this flow is being deflected
             (daemon-driven hash buckets over the congestion signal), or when
             the deflecting sender is exactly our default next hop - sending
             the packet back would cycle between iBGP peers (Fig. 2(b)).
             With no alternative installed — the common case on an
             uncongested mesh — none of that can change the egress, so
             the deflection machinery (next-hop resolution, congestion
             probe, flow hashing) is skipped entirely.  [alt_port_id]
             keeps the probe allocation-free: no [Some] box per packet. *)
          match Fib.alt_port_id entry with
          | -1 -> Send { port = default_port; packet; default_port }
          | alt0 ->
          let deflected_to_me =
            sender >= 0
            &&
            match env.next_hop_router default_port with
            | Some nh -> nh = sender
            | None -> false
          in
          (* The daemon ramps [deflect_buckets] with hysteresis; on top of
             that, a congested egress immediately deflects at least the
             first hash bucket so the reaction starts at line speed, before
             the next daemon epoch. *)
          let effective_buckets =
            if env.is_congested default_port then
              Stdlib.max 1 (Fib.deflect_buckets entry)
            else Fib.deflect_buckets entry
          in
          let bucket = Fib.flow_bucket packet.Packet.flow in
          let flow_deflected = bucket < effective_buckets in
          if not (deflected_to_me || flow_deflected) then
            Send { port = default_port; packet; default_port }
          else (
            if deflected_to_me then Obs.incr c_deflect_sender;
            (* ECMP spread over the ranked set: this bucket's slot is
               [bucket mod count].  With one alternative that is always
               slot 0, so the k=1 data plane is bit-identical to the
               historical single-alt engine. *)
            let alt =
              match Fib.alt_count entry with
              | 1 -> alt0
              | c -> Fib.alt_at entry (Fib.slot_of_bucket ~bucket ~count:c)
            in
            match env.port_kind alt with
            | Ibgp { peer_router } ->
              (* Lines 12-15: tunnel to the iBGP peer that owns the
                 alternative path.  [ibgp_encap:false] is the Fig. 2(b)
                 ablation: the peer cannot tell a deflected packet from
                 a normal one and bounces it straight back. *)
              let packet =
                if ibgp_encap then begin
                  Obs.incr c_encap;
                  ev "encap" env packet [ ("outer_dst", Obs.Int peer_router) ];
                  Packet.encapsulate packet ~outer_src:env.router_id
                    ~outer_dst:peer_router
                end
                else packet
              in
              Obs.incr c_deflect_ibgp;
              Send { port = alt; packet; default_port }
            | Ebgp { rel = downstream; _ } ->
              (* Lines 16-20: Tag-Check before leaving the AS sideways.  A
                 failing check means this packet may not use the
                 alternative.  If it was tunneled to us by the default
                 next hop, returning it would cycle, so it is dropped
                 (the pseudocode's line 20); a locally hash-deflected
                 packet instead falls back to the default port, which is
                 congested but always loop-free. *)
              if (not tag_check) || Policy.check ~tag:packet.Packet.vf_tag ~downstream
              then begin
                Obs.incr c_deflect_ebgp;
                Send { port = alt; packet; default_port }
              end
              else if deflected_to_me then begin
                ev "tag_check_fail" env packet [ ("fate", Obs.Str "drop") ];
                drop env packet Valley_violation
              end
              else begin
                Obs.incr c_tag_fallback;
                ev "tag_check_fail" env packet [ ("fate", Obs.Str "fallback") ];
                Send { port = default_port; packet; default_port }
              end
            | Local -> Send { port = default_port; packet; default_port }))))
  end

let forward ?(tag_check = true) ?(ibgp_encap = true) env ~ingress packet =
  forward_from ~tag_check ~ibgp_encap env
    ~ingress:(match ingress with Some p -> p | None -> -1)
    packet
