(** The MIFO forwarding engine — Algorithm 1 of the paper.

    This is the data-plane code a border router runs on every packet.  It
    is written against a small environment record so the same engine
    drives the packet-level simulator, the testbed emulation and the unit
    tests that replay the paper's Fig. 2 scenarios.

    Behaviour, following the pseudocode line by line:
    - an IP-in-IP packet addressed to this router is decapsulated and its
      sender (the deflecting iBGP peer) remembered (lines 1–3);
    - an IP-in-IP packet addressed to {e another} router is in transit
      through this AS: it is routed on its outer header toward the
      tunnel endpoint ([env.route_to_peer]) and is never deflected —
      deflecting it out an eBGP port would carry it out of the AS still
      encapsulated, so its tunnel would never terminate.  When no route
      to the endpoint is known the packet follows the default port for
      its inner destination, still without deflection;
    - the FIB gives default and alternative ports (line 4);
    - a packet entering from an eBGP peer is (re)tagged: bit set iff the
      upstream neighbor is a customer (lines 5–10);
    - the packet takes the alternative path when the default egress is
      congested for its flow, or when it was deflected to us by the iBGP
      peer that is our default next hop (line 11; the pseudocode prints
      [GetNextHop(Ialt)], but the accompanying text of Section III-B
      compares the sender against the {e default} next hop — R2's default
      route points back at the deflecting R1 — so that is what we
      implement);
    - an alternative on an iBGP peer means encapsulate-and-tunnel
      (lines 12–15); an alternative on an eBGP peer is used only if the
      Tag-Check passes (lines 16–20).  On a failing check, a packet that
      was tunneled to us by our own default next hop is dropped (sending
      it back would cycle — the pseudocode's line 20), while a locally
      hash-deflected packet falls back to the default egress, which is
      congested but always loop-free;
    - otherwise the packet follows the default port (line 22).

    Congestion response is flow-deterministic: {!Fib.deflects} hashes the
    flow id against the entry's daemon-controlled deflection level, so a
    given flow sees a stable path between daemon updates (no reordering).

    The engine also decrements the TTL; [tag_check:false] disables the
    valley-free check (the loop ablation of Section III).

    Every decision is accounted in {!Mifo_util.Obs} under the
    [engine.*] names: per-reason drop counters ([engine.drop.no_route],
    [engine.drop.valley_violation], [engine.drop.ttl_expired]),
    deflection counters ([engine.deflect.ibgp], [engine.deflect.ebgp],
    [engine.deflect.from_sender]), tunnel counters ([engine.encap],
    [engine.decap], [engine.transit.routed],
    [engine.transit.fib_fallback]) and the Tag-Check fallback
    ([engine.tag_check.fallback]).  With tracing enabled the engine also
    records [decap]/[encap]/[transit]/[tag_check_fail]/[drop] events. *)

type port_kind =
  | Ebgp of { neighbor_as : int; rel : Mifo_topology.Relationship.t }
  | Ibgp of { peer_router : int }
  | Local  (** host-facing or intra-AS delivery *)

type env = {
  router_id : int;
  fib : Fib.t;
  port_kind : int -> port_kind;
  is_congested : int -> bool;
      (** instantaneous congestion signal of an egress port; the paper
          leaves the definition open and uses the tx-queue ratio, as do
          our simulators *)
  next_hop_router : int -> int option;
      (** router at the far end of a port, when known ([None] for eBGP /
          host ports) *)
  route_to_peer : int -> int option;
      (** port carrying the iBGP session toward the given router id, used
          to route in-transit tunnels on their outer header; [None] when
          this router has no session to that peer *)
}

type drop_reason = No_route | Valley_violation | Ttl_expired

type action =
  | Send of { port : int; packet : Packet.t; default_port : int }
      (** also covers local delivery: the FIB maps a local prefix to a
          [Local] (host-facing) port and the packet is sent out of it.
          [default_port] is the FIB's default egress for the packet's
          (inner) destination, so a caller accounting deflections
          ([port <> default_port]) need not repeat the lookup the engine
          already did; [-1] when the decision involved no FIB entry
          (in-transit tunnels routed on their outer header) *)
  | Drop of { packet : Packet.t; reason : drop_reason }

val forward :
  ?tag_check:bool -> ?ibgp_encap:bool -> env -> ingress:int option -> Packet.t -> action
(** [forward env ~ingress p] processes one packet.  [ingress = None]
    means locally originated (the host side); such packets carry
    {!Policy.source_tag}.  [tag_check] (default [true]) disables the
    valley-free check for the loop ablation; [ibgp_encap] (default
    [true]) disables IP-in-IP for the iBGP-cycling ablation of
    Fig. 2(b). *)

val forward_from :
  tag_check:bool -> ibgp_encap:bool -> env -> ingress:int -> Packet.t -> action
(** {!forward} with the ingress port as a plain int ([-1] = locally
    originated) and both ablation flags mandatory.  Semantically
    identical; this is the per-hop entry point for simulators, where
    the option wrappers of {!forward} would be three fresh allocations
    on every packet. *)

val drop_reason_to_string : drop_reason -> string
