module Prefix = Mifo_bgp.Prefix

type entry = {
  mutable out_port : int;
  mutable alt_port : int option;
  mutable deflect_buckets : int;
}

(* One hash table per prefix length; longest-prefix match scans lengths
   32 down to 0.  Interdomain tables are dominated by a few lengths, so
   this is both simple and fast. *)
type t = { by_len : (Prefix.addr, entry) Hashtbl.t array }

let buckets = 64
let create () = { by_len = Array.init 33 (fun _ -> Hashtbl.create 16) }

let insert t prefix ~out_port ?alt_port () =
  let table = t.by_len.(prefix.Prefix.length) in
  match Hashtbl.find_opt table prefix.Prefix.network with
  | Some e when e.out_port = out_port ->
    (* Route refresh with an unchanged default egress: the deflection
       state ([alt_port] / [deflect_buckets]) is live, daemon-owned
       congestion response — clobbering it mid-congestion would snap
       every deflected flow back onto the congested default.  Keep it;
       adopt the caller's alternative hint only when none is set. *)
    if e.alt_port = None then e.alt_port <- alt_port
  | Some e ->
    e.out_port <- out_port;
    e.alt_port <- alt_port;
    e.deflect_buckets <- 0
  | None ->
    Hashtbl.replace table prefix.Prefix.network
      { out_port; alt_port; deflect_buckets = 0 }

let lookup t addr =
  let rec scan len =
    if len < 0 then None
    else begin
      let masked = (Prefix.make addr len).Prefix.network in
      match Hashtbl.find_opt t.by_len.(len) masked with
      | Some e -> Some e
      | None -> scan (len - 1)
    end
  in
  scan 32

let find t prefix = Hashtbl.find_opt t.by_len.(prefix.Prefix.length) prefix.Prefix.network

let set_alt t prefix alt =
  match find t prefix with
  | Some e -> e.alt_port <- alt
  | None -> raise Not_found

let iter t f =
  Array.iteri
    (fun len table ->
      Hashtbl.iter (fun net e -> f (Prefix.make net len) e) table)
    t.by_len

let size t = Array.fold_left (fun acc tbl -> acc + Hashtbl.length tbl) 0 t.by_len

(* SplitMix64-style mix so bucket spread does not depend on flow-id
   assignment patterns. *)
let flow_bucket flow =
  let open Int64 in
  let z = mul (of_int ((flow * 2) + 1)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  to_int (shift_right_logical z 40) mod buckets

let deflects entry ~flow =
  entry.alt_port <> None && flow_bucket flow < entry.deflect_buckets
