module Prefix = Mifo_bgp.Prefix
module Obs = Mifo_util.Obs

(* Live FIB entries across every table in the process: insert/remove
   keep it current so `--metrics` can watch data-plane memory grow. *)
let g_entries = Obs.gauge "fib.entries"

type rep = Flat | Hashed

let rep_name = function Flat -> "flat" | Hashed -> "hashed"

let max_alts = 4

(* The MIFO_K_ALT knob: how many ranked alternative slots the daemon and
   the tools fill, clamped to [1, max_alts].  The FIB itself always has
   max_alts slots; the knob only caps how many get used. *)
let default_k =
  let v =
    match Sys.getenv_opt "MIFO_K_ALT" with
    | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some k when k >= 1 -> Stdlib.min k max_alts
      | Some _ | None -> max_alts)
    | None -> max_alts
  in
  fun () -> v

(* Hashed-oracle entry: the original boxed record, one per prefix, with
   the single alt field widened to the ranked slot array. *)
type boxed = { mutable b_out : int; b_alt : int array; mutable b_defl : int }

(* Flat store for one prefix length: an open-addressed index (linear
   probing, power-of-two capacity, backward-shift deletion) over a
   slot-stable arena of unboxed fields.  Arena ids survive index growth,
   so an [entry] handle stays valid across inserts; only removing that
   exact prefix retires it.  At 44K ASes the FIB is pure int arrays —
   no per-entry boxes, no Hashtbl buckets.  [a_alt] is strided: entry
   [id]'s ranked alternative slots live at
   [a_alt.(id * max_alts) .. a_alt.(id * max_alts + max_alts - 1)],
   compacted (filled slots first, -1 afterwards). *)
type flat = {
  mutable cap : int;  (* index capacity, power of two; 0 = empty *)
  mutable idx_key : int array;  (* masked addr, -1 = empty slot *)
  mutable idx_id : int array;  (* arena id for the key in the same slot *)
  mutable f_live : int;
  mutable a_key : int array;  (* -1 = freed arena cell *)
  mutable a_out : int array;
  mutable a_alt : int array;  (* stride max_alts; -1 = empty slot *)
  mutable a_defl : int array;
  mutable a_len : int;
  mutable freed : int list;
}

type store =
  | Flat_store of flat array
  | Hash_store of (int, boxed) Hashtbl.t array (* lint:allow oracle representation *)

type t = {
  store : store;
  mutable len_mask : int;
  mutable count : int;
  mutable alt_entries : int;
      (* number of live entries whose ranked alternative set is
         nonempty.  Kept exact by insert/remove AND by the entry-handle
         writers (handles carry their owning table), so [may_deflect]
         reflects the current state rather than a sticky historical
         bit. *)
}

type entry = F of t * flat * int | H of t * boxed

let buckets = 64

let empty_ints : int array = [||]

let flat_create () =
  {
    cap = 0;
    idx_key = empty_ints;
    idx_id = empty_ints;
    f_live = 0;
    a_key = empty_ints;
    a_out = empty_ints;
    a_alt = empty_ints;
    a_defl = empty_ints;
    a_len = 0;
    freed = [];
  }

let create ?(rep = Flat) () =
  let store =
    match rep with
    | Flat -> Flat_store (Array.init 33 (fun _ -> flat_create ()))
    | Hashed ->
      Hash_store
        (Array.init 33 (fun _ -> Hashtbl.create 16 (* lint:allow oracle representation *)))
  in
  { store; len_mask = 0; count = 0; alt_entries = 0 }

let rep t = match t.store with Flat_store _ -> Flat | Hash_store _ -> Hashed
let may_deflect t = t.alt_entries > 0
let size t = t.count

(* Network masks as plain ints, index = prefix length. *)
let imask =
  Array.init 33 (fun l -> if l = 0 then 0 else 0xFFFFFFFF lsl (32 - l) land 0xFFFFFFFF)

let ikey_of_addr addr = Int32.to_int addr land 0xFFFFFFFF

(* Fibonacci-style multiplicative mix: keys are masked network addrs,
   whose low bits are all zero for short prefixes — the multiply+xor
   spreads them before the power-of-two mask. *)
let[@inline] hash_key k =
  let h = k * 0x2545F4914F6CDD1D in
  h lxor (h lsr 29)

(* Slot of [key] in the index, -1 when absent. *)
let find_index fl key =
  if fl.cap = 0 then -1
  else begin
    let mask = fl.cap - 1 in
    let i = ref (hash_key key land mask) in
    let r = ref (-2) in
    while !r = -2 do
      let k = fl.idx_key.(!i) in
      if k = key then r := !i
      else if k = -1 then r := -1
      else i := (!i + 1) land mask
    done;
    !r
  end

(* Rebuild the index at [new_cap] from the arena (arena ids unchanged). *)
let rebuild_index fl new_cap =
  let keys = Array.make new_cap (-1) in
  let ids = Array.make new_cap 0 in
  let mask = new_cap - 1 in
  for id = 0 to fl.a_len - 1 do
    let k = fl.a_key.(id) in
    if k >= 0 then begin
      let i = ref (hash_key k land mask) in
      while keys.(!i) >= 0 do
        i := (!i + 1) land mask
      done;
      keys.(!i) <- k;
      ids.(!i) <- id
    end
  done;
  fl.cap <- new_cap;
  fl.idx_key <- keys;
  fl.idx_id <- ids

let grow_arena_field a len fill =
  let n = Stdlib.max 16 (2 * len) in
  let b = Array.make n fill in
  Array.blit a 0 b 0 len;
  b

(* The strided alt field grows in lockstep with the others: same entry
   capacity, [max_alts] cells per entry. *)
let grow_arena_alts a len =
  let n = Stdlib.max 16 (2 * len) in
  let b = Array.make (n * max_alts) (-1) in
  Array.blit a 0 b 0 (len * max_alts);
  b

let[@inline] clear_alt_slots alts base =
  for j = 0 to max_alts - 1 do
    alts.(base + j) <- -1
  done

let arena_alloc fl key ~out_port ~alt =
  let id =
    match fl.freed with
    | id :: rest ->
      fl.freed <- rest;
      id
    | [] ->
      if fl.a_len = Array.length fl.a_key then begin
        fl.a_key <- grow_arena_field fl.a_key fl.a_len (-1);
        fl.a_out <- grow_arena_field fl.a_out fl.a_len 0;
        fl.a_alt <- grow_arena_alts fl.a_alt fl.a_len;
        fl.a_defl <- grow_arena_field fl.a_defl fl.a_len 0
      end;
      let id = fl.a_len in
      fl.a_len <- fl.a_len + 1;
      id
  in
  fl.a_key.(id) <- key;
  fl.a_out.(id) <- out_port;
  clear_alt_slots fl.a_alt (id * max_alts);
  fl.a_alt.(id * max_alts) <- alt;
  fl.a_defl.(id) <- 0;
  id

(* Outcome of a store-level insert, so [insert] can maintain the
   alt-entry count without re-probing. *)
type insert_effect = { created : bool; had_alt : bool; has_alt : bool }

(* Refresh/replace semantics shared by both representations, applied to
   one entry whose current primary alternative is [cur0]:
   - same [out_port]: the call's [alt] hint is authoritative for the
     single-alt API.  [-1] (no alternative) clears the whole ranked set
     and resets the deflection level; a hint equal to the current
     primary preserves the live ranked set and deflection state; a new
     primary replaces the set with the singleton and restarts the ramp.
   - changed [out_port]: full route change — set and ramp reset. *)
let refresh_action ~same_out ~cur0 ~alt =
  if not same_out then `Replace
  else if alt < 0 then `Clear
  else if alt = cur0 then `Keep
  else `Replace

let flat_insert fl key ~out_port ~alt =
  match find_index fl key with
  | i when i >= 0 ->
    let id = fl.idx_id.(i) in
    let base = id * max_alts in
    let had_alt = fl.a_alt.(base) >= 0 in
    (match
       refresh_action ~same_out:(fl.a_out.(id) = out_port) ~cur0:fl.a_alt.(base) ~alt
     with
    | `Keep -> ()
    | `Clear ->
      clear_alt_slots fl.a_alt base;
      fl.a_defl.(id) <- 0
    | `Replace ->
      fl.a_out.(id) <- out_port;
      clear_alt_slots fl.a_alt base;
      fl.a_alt.(base) <- alt;
      fl.a_defl.(id) <- 0);
    { created = false; had_alt; has_alt = fl.a_alt.(base) >= 0 }
  | _ ->
    if 4 * (fl.f_live + 1) > 3 * fl.cap then
      rebuild_index fl (Stdlib.max 16 (2 * fl.cap));
    let id = arena_alloc fl key ~out_port ~alt in
    let mask = fl.cap - 1 in
    let i = ref (hash_key key land mask) in
    while fl.idx_key.(!i) >= 0 do
      i := (!i + 1) land mask
    done;
    fl.idx_key.(!i) <- key;
    fl.idx_id.(!i) <- id;
    fl.f_live <- fl.f_live + 1;
    { created = true; had_alt = false; has_alt = alt >= 0 }

(* Backward-shift deletion: close the probe chain over the hole so
   later lookups never hit a false empty slot.  Returns the freed
   entry's had-alternative bit, -1 when the key was absent. *)
let flat_remove fl key =
  match find_index fl key with
  | -1 -> -1
  | hole ->
    let id = fl.idx_id.(hole) in
    let had_alt = if fl.a_alt.(id * max_alts) >= 0 then 1 else 0 in
    fl.a_key.(id) <- -1;
    fl.freed <- id :: fl.freed;
    fl.f_live <- fl.f_live - 1;
    let mask = fl.cap - 1 in
    let i = ref hole in
    let j = ref hole in
    let continue = ref true in
    while !continue do
      j := (!j + 1) land mask;
      let k = fl.idx_key.(!j) in
      if k = -1 then begin
        fl.idx_key.(!i) <- -1;
        continue := false
      end
      else begin
        let h = hash_key k land mask in
        if (!j - h) land mask >= (!j - !i) land mask then begin
          fl.idx_key.(!i) <- k;
          fl.idx_id.(!i) <- fl.idx_id.(!j);
          i := !j
        end
      end
    done;
    had_alt

let length_live t len =
  match t.store with
  | Flat_store fs -> fs.(len).f_live
  | Hash_store hs -> Hashtbl.length hs.(len) (* lint:allow oracle representation *)

let insert t prefix ~out_port ?alt_port () =
  let len = prefix.Prefix.length in
  let key = ikey_of_addr prefix.Prefix.network in
  let alt = match alt_port with None -> -1 | Some p -> p in
  let eff =
    match t.store with
    | Flat_store fs -> flat_insert fs.(len) key ~out_port ~alt
    | Hash_store hs ->
      let table = hs.(len) in
      (match Hashtbl.find_opt table key (* lint:allow oracle representation *) with
      | Some e ->
        let had_alt = e.b_alt.(0) >= 0 in
        (match refresh_action ~same_out:(e.b_out = out_port) ~cur0:e.b_alt.(0) ~alt with
        | `Keep -> ()
        | `Clear ->
          Array.fill e.b_alt 0 max_alts (-1);
          e.b_defl <- 0
        | `Replace ->
          e.b_out <- out_port;
          Array.fill e.b_alt 0 max_alts (-1);
          e.b_alt.(0) <- alt;
          e.b_defl <- 0);
        { created = false; had_alt; has_alt = e.b_alt.(0) >= 0 }
      | None ->
        let b_alt = Array.make max_alts (-1) in
        b_alt.(0) <- alt;
        Hashtbl.replace table key (* lint:allow oracle representation *)
          { b_out = out_port; b_alt; b_defl = 0 };
        { created = true; had_alt = false; has_alt = alt >= 0 })
  in
  if eff.created then begin
    t.count <- t.count + 1;
    Obs.add_gauge g_entries 1.
  end;
  (match (eff.had_alt, eff.has_alt) with
  | false, true -> t.alt_entries <- t.alt_entries + 1
  | true, false -> t.alt_entries <- t.alt_entries - 1
  | _ -> ());
  t.len_mask <- t.len_mask lor (1 lsl len)

let remove t prefix =
  let len = prefix.Prefix.length in
  let key = ikey_of_addr prefix.Prefix.network in
  let removed_alt =
    match t.store with
    | Flat_store fs -> flat_remove fs.(len) key
    | Hash_store hs ->
      let table = hs.(len) in
      (match Hashtbl.find_opt table key (* lint:allow oracle representation *) with
      | Some e ->
        let had_alt = if e.b_alt.(0) >= 0 then 1 else 0 in
        Hashtbl.remove table key (* lint:allow oracle representation *);
        had_alt
      | None -> -1)
  in
  if removed_alt >= 0 then begin
    t.count <- t.count - 1;
    Obs.add_gauge g_entries (-1.);
    if removed_alt = 1 then t.alt_entries <- t.alt_entries - 1;
    if length_live t len = 0 then t.len_mask <- t.len_mask land lnot (1 lsl len);
    true
  end
  else false

(* Highest set bit of a nonzero mask.  Lengths occupy 33 bits (0-32),
   one more than a power-of-two cascade covers, so bit 32 — host
   routes — is peeled off first. *)
let msb m =
  if m land 0x100000000 <> 0 then 32
  else begin
    let r = ref 0 and m = ref m in
    if !m land 0xFFFF0000 <> 0 then begin
      r := !r + 16;
      m := !m lsr 16
    end;
    if !m land 0xFF00 <> 0 then begin
      r := !r + 8;
      m := !m lsr 8
    end;
    if !m land 0xF0 <> 0 then begin
      r := !r + 4;
      m := !m lsr 4
    end;
    if !m land 0xC <> 0 then begin
      r := !r + 2;
      m := !m lsr 2
    end;
    if !m land 0x2 <> 0 then incr r;
    !r
  end

let find_key t len key =
  match t.store with
  | Flat_store fs ->
    let fl = fs.(len) in
    let i = find_index fl key in
    if i < 0 then None else Some (F (t, fl, fl.idx_id.(i)))
  | Hash_store hs -> (
    match Hashtbl.find_opt hs.(len) key (* lint:allow oracle representation *) with
    | Some b -> Some (H (t, b))
    | None -> None)

let lookup t addr =
  let a = ikey_of_addr addr in
  let rec scan m =
    if m = 0 then None
    else begin
      let len = msb m in
      match find_key t len (a land imask.(len)) with
      | Some _ as r -> r
      | None -> scan (m land lnot (1 lsl len))
    end
  in
  scan t.len_mask

let find t prefix =
  find_key t prefix.Prefix.length (ikey_of_addr prefix.Prefix.network)

(* Entry accessors: handles are views into the owning store, so reads
   and writes land directly on the unboxed arena fields (flat) or the
   boxed record (hashed).  Handles also carry the owning table, so the
   alternative writers below can keep its alt-entry count exact. *)

let[@inline] out_port = function F (_, fl, id) -> fl.a_out.(id) | H (_, b) -> b.b_out

let[@inline] alt_port_id = function
  | F (_, fl, id) -> fl.a_alt.(id * max_alts)
  | H (_, b) -> b.b_alt.(0)

let alt_port e =
  let a = alt_port_id e in
  if a < 0 then None else Some a

let[@inline] alt_at e slot =
  if slot < 0 || slot >= max_alts then -1
  else
    match e with
    | F (_, fl, id) -> fl.a_alt.((id * max_alts) + slot)
    | H (_, b) -> b.b_alt.(slot)

(* Slots are compacted, so the count is the first empty index. *)
let alt_count e =
  match e with
  | F (_, fl, id) ->
    let base = id * max_alts in
    if fl.a_alt.(base) < 0 then 0
    else if fl.a_alt.(base + 1) < 0 then 1
    else if fl.a_alt.(base + 2) < 0 then 2
    else if fl.a_alt.(base + 3) < 0 then 3
    else 4
  | H (_, b) ->
    if b.b_alt.(0) < 0 then 0
    else if b.b_alt.(1) < 0 then 1
    else if b.b_alt.(2) < 0 then 2
    else if b.b_alt.(3) < 0 then 3
    else 4

let[@inline] deflect_buckets = function
  | F (_, fl, id) -> fl.a_defl.(id)
  | H (_, b) -> b.b_defl

let owner = function F (t, _, _) -> t | H (t, _) -> t

let[@inline] note_alt_transition t ~had ~has =
  if had && not has then t.alt_entries <- t.alt_entries - 1
  else if has && not had then t.alt_entries <- t.alt_entries + 1

(* Write the ranked set [ports] (first [n] elements) into the entry's
   slots: negatives are skipped, the rest kept in order, truncated at
   [max_alts], compacted, higher slots cleared. *)
let set_alt_array e ports n =
  let write =
    match e with
    | F (_, fl, id) ->
      let base = id * max_alts in
      fun j p -> fl.a_alt.(base + j) <- p
    | H (_, b) -> fun j p -> b.b_alt.(j) <- p
  in
  let had = alt_port_id e >= 0 in
  let filled = ref 0 in
  for i = 0 to n - 1 do
    let p = ports.(i) in
    if p >= 0 && !filled < max_alts then begin
      write !filled p;
      incr filled
    end
  done;
  for j = !filled to max_alts - 1 do
    write j (-1)
  done;
  note_alt_transition (owner e) ~had ~has:(!filled > 0)

let set_alts e ports =
  let arr = Array.of_list ports in
  set_alt_array e arr (Array.length arr)

let set_alt_port e alt =
  let a = match alt with None -> -1 | Some p -> p in
  let had = alt_port_id e >= 0 in
  (match e with
  | F (_, fl, id) ->
    let base = id * max_alts in
    clear_alt_slots fl.a_alt base;
    fl.a_alt.(base) <- a
  | H (_, b) ->
    Array.fill b.b_alt 0 max_alts (-1);
    b.b_alt.(0) <- a);
  note_alt_transition (owner e) ~had ~has:(a >= 0)

let set_deflect_buckets e n =
  match e with F (_, fl, id) -> fl.a_defl.(id) <- n | H (_, b) -> b.b_defl <- n

let set_alt t prefix alt =
  match find t prefix with
  | Some e -> set_alt_port e alt
  | None -> raise Not_found

let iter t f =
  match t.store with
  | Flat_store fs ->
    for len = 0 to 32 do
      let fl = fs.(len) in
      for id = 0 to fl.a_len - 1 do
        let k = fl.a_key.(id) in
        if k >= 0 then f (Prefix.make (Int32.of_int k) len) (F (t, fl, id))
      done
    done
  | Hash_store hs ->
    Array.iteri
      (fun len table ->
        Hashtbl.iter (* lint:allow oracle representation *)
          (fun net b -> f (Prefix.make (Int32.of_int net) len) (H (t, b)))
          table)
      hs

(* SplitMix64-style mix so bucket spread does not depend on flow-id
   assignment patterns. *)
let flow_bucket flow =
  let open Int64 in
  let z = mul (of_int ((flow * 2) + 1)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  to_int (shift_right_logical z 40) mod buckets

let deflects e ~flow = alt_port_id e >= 0 && flow_bucket flow < deflect_buckets e

(* ECMP spreading: deflected buckets are dealt round-robin over the
   ranked slots, so each alternative receives a deterministic slice of
   the flow space and a single-alternative entry behaves exactly like
   the k=1 data plane (every bucket maps to slot 0). *)
let[@inline] slot_of_bucket ~bucket ~count = bucket mod count

let alt_for_flow e ~flow =
  match alt_count e with
  | 0 -> -1
  | c -> alt_at e (slot_of_bucket ~bucket:(flow_bucket flow) ~count:c)
