module Prefix = Mifo_bgp.Prefix

type entry = {
  mutable out_port : int;
  mutable alt_port : int option;
  mutable deflect_buckets : int;
}

(* One hash table per prefix length; longest-prefix match scans lengths
   present in the table, longest first.  Interdomain tables are
   dominated by a few lengths, so [len_mask] (bit [l] set iff length [l]
   has entries) usually collapses the scan to one or two probes.

   Keys are the masked network address as a plain [int]: int32 values
   are boxed in OCaml, so hashing them — and building a [Prefix.t] per
   probe, as the old lookup did — allocates on every probe of the
   packet-forwarding hot path.  Unboxed int keys allocate nothing. *)
type t = {
  by_len : (int, entry) Hashtbl.t array;
  mutable len_mask : int;
  mutable may_deflect : bool;
      (* sticky: an alternative port has been installed through this
         interface at some point.  While false, no entry can have
         [alt_port] set or [deflect_buckets] ramped (the daemon only
         ramps entries with an alternative), so a caller may skip
         per-epoch deflection maintenance for this table entirely. *)
}

let buckets = 64

let create () =
  {
    by_len = Array.init 33 (fun _ -> Hashtbl.create 16);
    len_mask = 0;
    may_deflect = false;
  }

let may_deflect t = t.may_deflect

(* Network masks as plain ints, index = prefix length. *)
let imask =
  Array.init 33 (fun l -> if l = 0 then 0 else 0xFFFFFFFF lsl (32 - l) land 0xFFFFFFFF)

let ikey_of_addr addr = Int32.to_int addr land 0xFFFFFFFF

let insert t prefix ~out_port ?alt_port () =
  let len = prefix.Prefix.length in
  let table = t.by_len.(len) in
  let key = ikey_of_addr prefix.Prefix.network in
  (match Hashtbl.find_opt table key with
  | Some e when e.out_port = out_port ->
    (* Route refresh with an unchanged default egress: the deflection
       state ([alt_port] / [deflect_buckets]) is live, daemon-owned
       congestion response — clobbering it mid-congestion would snap
       every deflected flow back onto the congested default.  Keep it;
       adopt the caller's alternative hint only when none is set. *)
    if e.alt_port = None then e.alt_port <- alt_port
  | Some e ->
    e.out_port <- out_port;
    e.alt_port <- alt_port;
    e.deflect_buckets <- 0
  | None -> Hashtbl.replace table key { out_port; alt_port; deflect_buckets = 0 });
  if alt_port <> None then t.may_deflect <- true;
  t.len_mask <- t.len_mask lor (1 lsl len)

(* Highest set bit of a nonzero mask.  Lengths occupy 33 bits (0-32),
   one more than a power-of-two cascade covers, so bit 32 — host
   routes — is peeled off first. *)
let msb m =
  if m land 0x100000000 <> 0 then 32
  else begin
    let r = ref 0 and m = ref m in
    if !m land 0xFFFF0000 <> 0 then begin
      r := !r + 16;
      m := !m lsr 16
    end;
    if !m land 0xFF00 <> 0 then begin
      r := !r + 8;
      m := !m lsr 8
    end;
    if !m land 0xF0 <> 0 then begin
      r := !r + 4;
      m := !m lsr 4
    end;
    if !m land 0xC <> 0 then begin
      r := !r + 2;
      m := !m lsr 2
    end;
    if !m land 0x2 <> 0 then incr r;
    !r
  end

let lookup t addr =
  let a = ikey_of_addr addr in
  let rec scan m =
    if m = 0 then None
    else begin
      let len = msb m in
      match Hashtbl.find_opt t.by_len.(len) (a land imask.(len)) with
      | Some _ as r -> r
      | None -> scan (m land lnot (1 lsl len))
    end
  in
  scan t.len_mask

let find t prefix =
  Hashtbl.find_opt t.by_len.(prefix.Prefix.length) (ikey_of_addr prefix.Prefix.network)

let set_alt t prefix alt =
  match find t prefix with
  | Some e ->
    e.alt_port <- alt;
    if alt <> None then t.may_deflect <- true
  | None -> raise Not_found

let iter t f =
  Array.iteri
    (fun len table ->
      Hashtbl.iter (fun net e -> f (Prefix.make (Int32.of_int net) len) e) table)
    t.by_len

let size t = Array.fold_left (fun acc tbl -> acc + Hashtbl.length tbl) 0 t.by_len

(* SplitMix64-style mix so bucket spread does not depend on flow-id
   assignment patterns. *)
let flow_bucket flow =
  let open Int64 in
  let z = mul (of_int ((flow * 2) + 1)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  to_int (shift_right_logical z 40) mod buckets

let deflects entry ~flow =
  entry.alt_port <> None && flow_bucket flow < entry.deflect_buckets
