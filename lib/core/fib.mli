(** The MIFO-modified FIB (Fig. 1), generalized to ranked alternatives.

    A classic FIB maps a prefix to the default output port; MIFO adds
    alternative ports pointing at the best alternative paths, kept up to
    date by the MIFO daemon, plus the adaptive deflection level the
    daemon uses to shift flows onto them.  Lookup is longest-prefix
    match.

    Each entry holds a {e ranked set} of up to {!max_alts} alternative
    port ids (slot 0 = most preferred).  The historical single-alt API
    ({!alt_port}, {!set_alt_port}, the [?alt_port] insert argument) is
    the k=1 compatibility shim: it reads/writes slot 0 and clears the
    higher slots.

    Deflection granularity: flows hash into [buckets] (64) buckets and an
    entry deflects the first [deflect_buckets] of them, so path choice is
    deterministic per flow (no packet reordering — Section II-A) while
    the daemon ramps the deflected share up under congestion and back
    down when the default path drains.  Deflected buckets are spread
    ECMP-style over the ranked slots: bucket [b] of an entry with [c]
    live alternatives uses slot [b mod c], so each alternative receives
    a deterministic slice of the flow space and a single-alternative
    entry behaves exactly like the k=1 data plane.

    {b Representations.}  The default {!Flat} store keeps each prefix
    length's entries in an open-addressed int-keyed index over a
    slot-stable arena of unboxed [out_port]/[alt]/[deflect_buckets]
    int arrays (the alt array strided {!max_alts} cells per entry) — no
    per-entry boxes, which is what lets a full-Internet-scale FIB fit in
    flat memory.  The original one-[Hashtbl]-per-length layout survives
    as the {!Hashed} oracle behind the same API; QCheck gates in
    [test_core] assert the two are observationally identical under
    random insert/remove/set-alts churn. *)

type rep = Flat | Hashed

val rep_name : rep -> string

type t

type entry
(** A handle onto one live FIB entry.  Valid until that exact prefix is
    {!remove}d (an [insert] — even one that grows the table — never
    invalidates handles); a handle kept across a [remove] of its prefix
    must be dropped. *)

val buckets : int
(** Number of hash buckets (64). *)

val max_alts : int
(** Number of ranked alternative slots per entry (4). *)

val default_k : unit -> int
(** The [MIFO_K_ALT] knob: how many ranked slots the daemon and the
    command-line tools fill, clamped to \[1, {!max_alts}\]; defaults to
    {!max_alts} when unset or unparsable.  The FIB itself always has
    {!max_alts} slots — this only caps how many get used. *)

val create : ?rep:rep -> unit -> t
(** Default representation is {!Flat}; {!Hashed} is the oracle. *)

val rep : t -> rep

val insert : t -> Mifo_bgp.Prefix.t -> out_port:int -> ?alt_port:int -> unit -> unit
(** Installs or refreshes the entry for a prefix.

    On a re-insert whose [out_port] matches the existing entry (a route
    refresh), the call's [alt_port] is authoritative for the single-alt
    shim: omitted ([None]) means {e no alternative} and clears the whole
    ranked set and the deflection level; a hint equal to the entry's
    current slot-0 alternative preserves the live daemon-owned state
    (ranked set and [deflect_buckets]) untouched; any other hint
    replaces the set with that singleton and resets the deflection
    level.  A re-insert with a different [out_port] is a route change:
    the entry is replaced outright and the deflection state reset. *)

val remove : t -> Mifo_bgp.Prefix.t -> bool
(** Withdraw the exact prefix; [false] when absent.  Outstanding
    {!entry} handles for that prefix become invalid. *)

val lookup : t -> Mifo_bgp.Prefix.addr -> entry option
(** Longest-prefix match. *)

val find : t -> Mifo_bgp.Prefix.t -> entry option
(** Exact-prefix lookup (the daemon's view). *)

val set_alt : t -> Mifo_bgp.Prefix.t -> int option -> unit
(** @raise Not_found if no entry exists for the prefix. *)

val iter : t -> (Mifo_bgp.Prefix.t -> entry -> unit) -> unit
(** Iteration order is unspecified and differs between representations;
    callers needing a canonical order must sort. *)

val size : t -> int
(** Number of live entries — a cached O(1) count (it sits on the
    [validate]/metrics path). *)

val may_deflect : t -> bool
(** Whether any live entry currently has a nonempty ranked alternative
    set — an exact count, {e not} a sticky historical flag: it is
    maintained by {!insert}/{!remove} and by the entry-handle writers
    ({!set_alt_port}, {!set_alts}), so withdrawing the last alternative
    turns it back off and re-enables callers' no-deflection fast paths
    (e.g. the {!Mifo_netsim.Packetsim} daemon tick skips chooser-less
    routers whose table cannot deflect). *)

(** {1 Entry accessors}

    Handles are views into the owning store; writes land directly on the
    table's unboxed fields.  Ranked slots are kept compacted: live
    alternatives occupy slots [0 .. alt_count-1] in rank order and the
    remaining slots read [-1]. *)

val out_port : entry -> int

val alt_port : entry -> int option
(** Slot 0 of the ranked set (the most preferred alternative). *)

val alt_port_id : entry -> int
(** Allocation-free form of {!alt_port}: the port, or [-1] for none.
    The packet-forwarding hot path uses this to avoid a [Some] box per
    packet. *)

val alt_count : entry -> int
(** Number of live ranked alternatives, in \[0, {!max_alts}\]. *)

val alt_at : entry -> int -> int
(** [alt_at e slot] is the port in ranked slot [slot], or [-1] when the
    slot is empty or out of range. *)

val deflect_buckets : entry -> int
(** [0] = all flows on the default path. *)

val set_alt_port : entry -> int option -> unit
(** k=1 shim: [Some p] makes the ranked set the singleton [{p}]
    (clearing higher slots); [None] clears the whole set.  Does not
    touch [deflect_buckets]. *)

val set_alts : entry -> int list -> unit
(** Install a ranked alternative set: negatives are dropped, order kept,
    truncated at {!max_alts}, higher slots cleared.  Does not touch
    [deflect_buckets] — per-slot ramp policy lives in [Daemon]. *)

val set_deflect_buckets : entry -> int -> unit

val flow_bucket : int -> int
(** Deterministic bucket of a flow id, in \[0, buckets). *)

val deflects : entry -> flow:int -> bool
(** Whether this flow currently hashes onto an alternative path. *)

val slot_of_bucket : bucket:int -> count:int -> int
(** The ECMP spreading function: ranked slot used by deflected bucket
    [bucket] when [count] ≥ 1 alternatives are live ([bucket mod
    count]). *)

val alt_for_flow : entry -> flow:int -> int
(** The alternative port this flow's bucket spreads onto, or [-1] when
    the entry has no alternatives.  Note this does {e not} consult
    [deflect_buckets]; pair with {!deflects}. *)
