(** The MIFO-modified FIB (Fig. 1).

    A classic FIB maps a prefix to the default output port; MIFO adds an
    alternative port pointing at the best alternative path, kept up to
    date by the MIFO daemon, plus the adaptive deflection level the
    daemon uses to shift flows onto it.  Lookup is longest-prefix match.

    Deflection granularity: flows hash into [buckets] (64) buckets and an
    entry deflects the first [deflect_buckets] of them, so path choice is
    deterministic per flow (no packet reordering — Section II-A) while
    the daemon ramps the deflected share up under congestion and back
    down when the default path drains.

    {b Representations.}  The default {!Flat} store keeps each prefix
    length's entries in an open-addressed int-keyed index over a
    slot-stable arena of unboxed [out_port]/[alt_port]/[deflect_buckets]
    int arrays — no per-entry boxes, which is what lets a
    full-Internet-scale FIB fit in flat memory.  The original
    one-[Hashtbl]-per-length layout survives as the {!Hashed} oracle
    behind the same API; QCheck gates in [test_core] assert the two are
    observationally identical under random insert/remove churn. *)

type rep = Flat | Hashed

val rep_name : rep -> string

type t

type entry
(** A handle onto one live FIB entry.  Valid until that exact prefix is
    {!remove}d (an [insert] — even one that grows the table — never
    invalidates handles); a handle kept across a [remove] of its prefix
    must be dropped. *)

val buckets : int
(** Number of hash buckets (64). *)

val create : ?rep:rep -> unit -> t
(** Default representation is {!Flat}; {!Hashed} is the oracle. *)

val rep : t -> rep

val insert : t -> Mifo_bgp.Prefix.t -> out_port:int -> ?alt_port:int -> unit -> unit
(** Installs or refreshes the entry for a prefix.  A re-insert whose
    [out_port] matches the existing entry is a route refresh: the live
    deflection state ([alt_port], [deflect_buckets]) is daemon-owned and
    preserved, and [alt_port] is taken from the call only when the entry
    has none yet.  A re-insert with a different [out_port] is a route
    change: the entry is replaced and the deflection level reset. *)

val remove : t -> Mifo_bgp.Prefix.t -> bool
(** Withdraw the exact prefix; [false] when absent.  Outstanding
    {!entry} handles for that prefix become invalid. *)

val lookup : t -> Mifo_bgp.Prefix.addr -> entry option
(** Longest-prefix match. *)

val find : t -> Mifo_bgp.Prefix.t -> entry option
(** Exact-prefix lookup (the daemon's view). *)

val set_alt : t -> Mifo_bgp.Prefix.t -> int option -> unit
(** @raise Not_found if no entry exists for the prefix. *)

val iter : t -> (Mifo_bgp.Prefix.t -> entry -> unit) -> unit
(** Iteration order is unspecified and differs between representations;
    callers needing a canonical order must sort. *)

val size : t -> int
(** Number of live entries — a cached O(1) count (it sits on the
    [validate]/metrics path). *)

val may_deflect : t -> bool
(** Sticky flag: true once any entry has ever been given an alternative
    port via {!insert} or {!set_alt}.  While false, no entry can be
    deflecting (no alternative, no ramped [deflect_buckets]), so a
    periodic maintenance pass — the daemon epoch walks every entry of
    every FIB — may skip this table, provided nothing else could be
    installing alternatives behind the flag's back: {!set_alt_port} on a
    returned {!entry} bypasses it, which is exactly what a daemon
    chooser does.  {!Mifo_netsim.Packetsim} therefore skips only
    routers with no chooser installed. *)

(** {1 Entry accessors}

    Handles are views into the owning store; writes land directly on the
    table's unboxed fields.  {!set_alt_port}/{!set_deflect_buckets}
    mirror the direct record mutation of the old API — in particular
    they do {e not} update the table's {!may_deflect} flag. *)

val out_port : entry -> int

val alt_port : entry -> int option

val alt_port_id : entry -> int
(** Allocation-free form of {!alt_port}: the port, or [-1] for none.
    The packet-forwarding hot path uses this to avoid a [Some] box per
    packet. *)

val deflect_buckets : entry -> int
(** [0] = all flows on the default path. *)

val set_alt_port : entry -> int option -> unit
val set_deflect_buckets : entry -> int -> unit

val flow_bucket : int -> int
(** Deterministic bucket of a flow id, in \[0, buckets). *)

val deflects : entry -> flow:int -> bool
(** Whether this flow currently hashes onto the alternative path. *)
