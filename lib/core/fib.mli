(** The MIFO-modified FIB (Fig. 1).

    A classic FIB maps a prefix to the default output port; MIFO adds an
    [alt_port] field pointing at the best alternative path, kept up to
    date by the MIFO daemon, plus the adaptive deflection level the
    daemon uses to shift flows onto it.  Lookup is longest-prefix match.

    Deflection granularity: flows hash into [buckets] (64) buckets and an
    entry deflects the first [deflect_buckets] of them, so path choice is
    deterministic per flow (no packet reordering — Section II-A) while
    the daemon ramps the deflected share up under congestion and back
    down when the default path drains. *)

type entry = {
  mutable out_port : int;
  mutable alt_port : int option;
  mutable deflect_buckets : int;  (** 0 = all flows on the default path *)
}

type t

val buckets : int
(** Number of hash buckets (64). *)

val create : unit -> t
val insert : t -> Mifo_bgp.Prefix.t -> out_port:int -> ?alt_port:int -> unit -> unit
(** Installs or refreshes the entry for a prefix.  A re-insert whose
    [out_port] matches the existing entry is a route refresh: the live
    deflection state ([alt_port], [deflect_buckets]) is daemon-owned and
    preserved, and [alt_port] is taken from the call only when the entry
    has none yet.  A re-insert with a different [out_port] is a route
    change: the entry is replaced and the deflection level reset. *)

val lookup : t -> Mifo_bgp.Prefix.addr -> entry option
(** Longest-prefix match. *)

val find : t -> Mifo_bgp.Prefix.t -> entry option
(** Exact-prefix lookup (the daemon's view). *)

val set_alt : t -> Mifo_bgp.Prefix.t -> int option -> unit
(** @raise Not_found if no entry exists for the prefix. *)

val iter : t -> (Mifo_bgp.Prefix.t -> entry -> unit) -> unit
val size : t -> int

val may_deflect : t -> bool
(** Sticky flag: true once any entry has ever been given an alternative
    port via {!insert} or {!set_alt}.  While false, no entry can be
    deflecting (no [alt_port], no ramped [deflect_buckets]), so a
    periodic maintenance pass — the daemon epoch walks every entry of
    every FIB — may skip this table, provided nothing else could be
    installing alternatives behind the flag's back: mutating a returned
    {!entry} directly bypasses it, which is exactly what a daemon
    chooser does.  {!Mifo_netsim.Packetsim} therefore skips only
    routers with no chooser installed. *)

val flow_bucket : int -> int
(** Deterministic bucket of a flow id, in \[0, buckets). *)

val deflects : entry -> flow:int -> bool
(** Whether this flow currently hashes onto the alternative path. *)
