module As_graph = Mifo_topology.As_graph
module Relationship = Mifo_topology.Relationship
module Routing = Mifo_bgp.Routing

type decision = Default | Deflect of int
type drop_reason = Valley | No_route | Dead_end | Link_down

type outcome =
  | Delivered of int list
  | Dropped of { path : int list; at : int; reason : drop_reason }
  | Looped of { path : int list; cycle : int list }

(* The repeating segment of [path]: everything from the first visit of
   the revisited state (at hop index [i]) to the current hop, so the
   cycle's head and last element are the same AS. *)
let cycle_of_path path i =
  List.filteri (fun j _ -> j >= i) path

let walk ?(tag_check = true) ?link_up ?max_hops g rt ~decide ~src =
  let dest = Routing.dest rt in
  let n = As_graph.n g in
  let max_hops = match max_hops with Some m -> m | None -> (2 * n) + 4 in
  let link_up u v = match link_up with None -> true | Some f -> f u v in
  let seen = Hashtbl.create 64 in (* lint:allow replay-only cold path *)
  (* state: current AS, the AS we came from (None at the source), the
     reversed path so far *)
  let rec step v upstream rev_path hops =
    let rev_path = v :: rev_path in
    if v = dest then Delivered (List.rev rev_path)
    else if hops > max_hops then
      (* hop budget blown without revisiting a state: no concrete cycle
         to report (the walk wandered too long), only the path prefix *)
      Looped { path = List.rev rev_path; cycle = [] }
    else begin
      let state = (v, upstream) in
      match Hashtbl.find_opt seen state with (* lint:allow replay-only cold path *)
      | Some first_visit ->
        let path = List.rev rev_path in
        Looped { path; cycle = cycle_of_path path first_visit }
      | None ->
        Hashtbl.add seen state hops; (* lint:allow replay-only cold path *)
        let entries = Routing.rib rt v in
        match entries with
        | [] -> Dropped { path = List.rev rev_path; at = v; reason = Dead_end }
        | default :: alternatives -> (
          match decide ~as_id:v ~upstream ~entries with
          | Default ->
            if link_up v default.Routing.via then
              step default.Routing.via (Some v) rev_path (hops + 1)
            else begin
              (* Local repair: the default egress link is down, so the
                 node's FIB has reconverged onto its best surviving RIB
                 route, followed unconditionally (it is the new default,
                 not a deflection — no Tag-Check).  With no surviving
                 route the packet is stranded. *)
              match
                List.find_opt
                  (fun (e : Routing.rib_entry) -> link_up v e.via)
                  alternatives
              with
              | Some e -> step e.via (Some v) rev_path (hops + 1)
              | None ->
                Dropped { path = List.rev rev_path; at = v; reason = Link_down }
            end
          | Deflect nb -> (
            match
              List.find_opt (fun (e : Routing.rib_entry) -> e.via = nb) entries
            with
            | None -> Dropped { path = List.rev rev_path; at = v; reason = No_route }
            | Some e when not (link_up v e.via) ->
              Dropped { path = List.rev rev_path; at = v; reason = Link_down }
            | Some e ->
              let upstream_rel =
                match upstream with
                | None -> None
                | Some u -> Some (As_graph.rel_exn g v u)
              in
              if
                (not tag_check)
                || Policy.deflection_allowed ~upstream:upstream_rel
                     ~downstream:e.rel
              then step nb (Some v) rev_path (hops + 1)
              else Dropped { path = List.rev rev_path; at = v; reason = Valley }))
    end
  in
  step src None [] 0

let congestion_strategy ~congested ~spare ~as_id ~upstream ~entries =
  match entries with
  | [] -> Default
  | (default : Routing.rib_entry) :: alternatives ->
    if not (congested as_id default.via) then Default
    else begin
      (* greedy: the permitted alternative with the most spare capacity on
         its direct link; stay on the default when nothing qualifies *)
      (* The strategy itself does not apply the valley-free rule — the
         walker's tag-check (or its absence, in the ablation) is
         authoritative, mirroring the engine/daemon split. *)
      ignore upstream;
      let permitted (e : Routing.rib_entry) = spare as_id e.via > 0. in
      match List.filter permitted alternatives with
      | [] -> Default
      | candidates ->
        let best =
          List.fold_left
            (fun acc (e : Routing.rib_entry) ->
              match acc with
              | None -> Some e
              | Some b ->
                let se = spare as_id e.via and sb = spare as_id b.via in
                if se > sb || (se = sb && e.via < b.via) then Some e else Some b)
            None candidates
        in
        (match best with Some e -> Deflect e.via | None -> Default)
    end
