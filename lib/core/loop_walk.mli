(** Hop-by-hop AS-level forwarding walks, with and without the Tag-Check.

    This is the executable counterpart of the paper's Theorem (Section
    III-A3): it replays a packet's AS-level trajectory under an arbitrary
    deflection strategy and reports whether it was delivered, dropped by
    the valley-free check, or caught in a loop.  The property-based tests
    verify the theorem with it (with the check on, no strategy can loop a
    packet), and the ablation bench reproduces the Fig. 2(a) loop with
    the check off. *)

type decision =
  | Default  (** follow the default next hop *)
  | Deflect of int  (** deflect to this RIB neighbor *)

type drop_reason =
  | Valley  (** deflection rejected by the Tag-Check *)
  | No_route  (** deflection toward a neighbor that exported no route *)
  | Dead_end  (** a node with an empty RIB *)
  | Link_down
      (** stranded by a failed link: the chosen hop's link is down and —
          for a default hop — no surviving RIB route exists to repair
          onto.  Only reachable with [?link_up]. *)

type outcome =
  | Delivered of int list  (** the full AS path, source to destination *)
  | Dropped of { path : int list; at : int; reason : drop_reason }
  | Looped of { path : int list; cycle : int list }
      (** [path] is the walk up to the point the loop was detected;
          [cycle] is the offending repeating segment (its head and last
          element are the same AS, e.g. [[1; 2; 3; 1]]), so the dynamic
          walker and the static verifier ({!Mifo_analysis}) report
          comparable counterexamples.  [cycle] is empty only when the
          hop budget was exhausted without revisiting a
          (AS, upstream) state. *)

val walk :
  ?tag_check:bool ->
  ?link_up:(int -> int -> bool) ->
  ?max_hops:int ->
  Mifo_topology.As_graph.t ->
  Mifo_bgp.Routing.t ->
  decide:
    (as_id:int ->
     upstream:int option ->
     entries:Mifo_bgp.Routing.rib_entry list ->
     decision) ->
  src:int ->
  outcome
(** [walk g rt ~decide ~src] forwards one packet from [src] toward
    [Routing.dest rt].  At every transit AS, [decide] picks the default
    route or a deflection among the RIB [entries] (the full sorted RIB;
    its head is the default).  A [Deflect] to a neighbor that exported no
    route is answered with [Dropped No_route].  With [tag_check] (the
    default), a deflection violating the valley-free rule yields
    [Dropped Valley] — exactly the engine's behaviour; with
    [tag_check:false] the deflection proceeds unchecked, which is the
    legacy multi-path data plane the theorem shows can loop.

    [?link_up u v] (default: everything up) masks failed physical
    links: a default hop over a down link repairs locally onto the
    first surviving RIB route (unconditionally — it is the new
    default), or strands the packet with [Dropped Link_down] when none
    survives; a [Deflect] over a down link strands it directly.  This
    is the dynamic counterpart of the static failure model
    ({!Mifo_analysis}'s resilience and delivery checks replay their
    counterexamples through it).

    [max_hops] defaults to [2 * As_graph.n g + 4]; exceeding it (or
    revisiting an AS with the same upstream) reports [Looped], carrying
    the concrete cycle when a state was revisited. *)

val congestion_strategy :
  congested:(int -> int -> bool) ->
  spare:(int -> int -> float) ->
  as_id:int ->
  upstream:int option ->
  entries:Mifo_bgp.Routing.rib_entry list ->
  decision
(** The MIFO strategy: deflect whenever the default egress link is
    congested ([congested u v] on directed link [u -> v]), onto the
    permitted alternative with the most spare capacity.  Matches
    {!Alt_select.best_alternative}. *)
