module As_graph = Mifo_topology.As_graph
module Generator = Mifo_topology.Generator
module Routing = Mifo_bgp.Routing
module Routing_table = Mifo_bgp.Routing_table
module Loop_walk = Mifo_core.Loop_walk
module Deployment = Mifo_core.Deployment
module Flowsim = Mifo_netsim.Flowsim
module Packetsim = Mifo_netsim.Packetsim
module Testbed = Mifo_testbed.Testbed
module Traffic = Mifo_traffic.Traffic
module Table = Mifo_util.Table
module Dist = Mifo_util.Dist

module Tag_check = struct
  module As_check = Mifo_analysis.As_check

  type outcome_counts = { delivered : int; dropped_valley : int; looped : int; total : int }

  type static_verdict = {
    dests_checked : int;
    loop_free : bool;
    counterexample : As_check.counterexample option;
    replay_confirmed : bool;
  }

  type t = {
    with_check : outcome_counts;
    without_check : outcome_counts;
    static_on : static_verdict;
    static_off : static_verdict;
  }

  let empty = { delivered = 0; dropped_valley = 0; looped = 0; total = 0 }

  (* Exhaustive verdict over the deflection product automaton for each
     destination's routing state; the first counterexample found is
     replayed through the dynamic walker as a machine check. *)
  let static_verdict ~tag_check g rts =
    let first =
      List.fold_left
        (fun acc rt ->
          match acc with
          | Some _ -> acc
          | None -> (
            match (As_check.find_loop ~tag_check g rt).As_check.counterexample with
            | Some cx -> Some (rt, cx)
            | None -> None))
        None rts
    in
    match first with
    | None ->
      {
        dests_checked = List.length rts;
        loop_free = true;
        counterexample = None;
        replay_confirmed = false;
      }
    | Some (rt, cx) ->
      let replay_confirmed =
        match As_check.replay ~tag_check g rt cx with
        | Mifo_core.Loop_walk.Looped _ -> true
        | _ -> false
      in
      {
        dests_checked = List.length rts;
        loop_free = false;
        counterexample = Some cx;
        replay_confirmed;
      }

  let tally acc = function
    | Loop_walk.Delivered _ -> { acc with delivered = acc.delivered + 1; total = acc.total + 1 }
    | Loop_walk.Dropped { reason = Loop_walk.Valley; _ } ->
      { acc with dropped_valley = acc.dropped_valley + 1; total = acc.total + 1 }
    | Loop_walk.Dropped _ -> { acc with total = acc.total + 1 }
    | Loop_walk.Looped _ -> { acc with looped = acc.looped + 1; total = acc.total + 1 }

  (* Worst-case strategy: every AS considers its default egress congested
     and deflects greedily, preferring the neighbor that continues the
     clockwise loop (lowest id not equal to the default). *)
  let all_congested _ _ = true
  let unit_spare _ _ = 1.

  let run_walks g rt sources =
    let strategy = Loop_walk.congestion_strategy ~congested:all_congested ~spare:unit_spare in
    let walk ~tag_check src =
      Loop_walk.walk ~tag_check g rt ~decide:strategy ~src
    in
    let on = List.fold_left (fun acc s -> tally acc (walk ~tag_check:true s)) empty sources in
    let off = List.fold_left (fun acc s -> tally acc (walk ~tag_check:false s)) empty sources in
    (on, off)

  let run_gadget () =
    let g = Generator.fig2a_gadget () in
    let rt = Routing.compute g 0 in
    let on, off = run_walks g rt [ 1; 2; 3 ] in
    {
      with_check = on;
      without_check = off;
      static_on = static_verdict ~tag_check:true g [ rt ];
      static_off = static_verdict ~tag_check:false g [ rt ];
    }

  let run ?(sources = 200) ctx =
    let g = Context.graph ctx in
    let n = As_graph.n g in
    let rng = Context.rng ctx ~purpose:31 in
    (* Draw every (destination, source) pair up front — consuming the rng
       exactly as the old interleaved loop did — so the destinations can
       be precomputed across the domain pool before the serial walks. *)
    let rec draw k acc =
      if k = 0 then List.rev acc
      else begin
        let d = Mifo_util.Prng.int rng n in
        let s = Mifo_util.Prng.int rng n in
        if s = d then draw k acc else draw (k - 1) ((d, s) :: acc)
      end
    in
    let pairs = draw sources [] in
    let dests = List.sort_uniq compare (List.map fst pairs) in
    Routing_table.precompute ctx.Context.table (Array.of_list dests);
    let add a b =
      {
        delivered = a.delivered + b.delivered;
        dropped_valley = a.dropped_valley + b.dropped_valley;
        looped = a.looped + b.looped;
        total = a.total + b.total;
      }
    in
    let rec walks pairs (acc_on, acc_off) =
      match pairs with
      | [] -> (acc_on, acc_off)
      | (d, s) :: rest ->
        let rt = Routing_table.get ctx.Context.table d in
        let on, off = run_walks g rt [ s ] in
        walks rest (add acc_on on, add acc_off off)
    in
    let on, off = walks pairs (empty, empty) in
    let rts = List.map (Routing_table.get ctx.Context.table) dests in
    {
      with_check = on;
      without_check = off;
      static_on = static_verdict ~tag_check:true g rts;
      static_off = static_verdict ~tag_check:false g rts;
    }

  let render ~label t =
    let row name c =
      [
        name;
        string_of_int c.delivered;
        string_of_int c.dropped_valley;
        string_of_int c.looped;
        string_of_int c.total;
      ]
    in
    let verdict name v =
      match v.counterexample with
      | None ->
        Printf.sprintf "  static verifier (%s): loop-free, %d destination(s) checked\n" name
          v.dests_checked
      | Some cx ->
        Printf.sprintf "  static verifier (%s): LOOP toward dest %d, cycle %s — replay %s\n"
          name cx.As_check.dest
          (String.concat " -> " (List.map string_of_int cx.As_check.cycle))
          (if v.replay_confirmed then "confirmed (Looped)" else "NOT confirmed")
    in
    Printf.sprintf "== Ablation: valley-free Tag-Check (%s) ==\n%s%s%s" label
      (Table.render
         ~header:[ "data plane"; "delivered"; "dropped (valley)"; "looped"; "walks" ]
         ~rows:[ row "Tag-Check on" t.with_check; row "Tag-Check off" t.without_check ])
      (verdict "Tag-Check on" t.static_on)
      (verdict "Tag-Check off" t.static_off)
end

module Encap = struct
  type t = { with_encap : Testbed.result; without_encap : Testbed.result }

  let run ?(config = Testbed.default_config) () =
    let with_encap = Testbed.run ~config Testbed.Mifo_routing in
    let config_off =
      { config with Testbed.sim = { config.Testbed.sim with Packetsim.ibgp_encap = false } }
    in
    let without_encap = Testbed.run ~config:config_off Testbed.Mifo_routing in
    { with_encap; without_encap }

  let render t =
    let row name (r : Testbed.result) =
      [
        name;
        Table.fmt_float (r.Testbed.mean_aggregate /. 1e9) ^ " Gbps";
        Table.fmt_float r.Testbed.makespan ^ " s";
        Table.fmt_count r.Testbed.counters.Packetsim.dropped_ttl;
      ]
    in
    "== Ablation: IP-in-IP encapsulation between iBGP peers ==\n"
    ^ Table.render
        ~header:[ "mode"; "aggregate"; "makespan"; "TTL-expired drops" ]
        ~rows:[ row "encap on" t.with_encap; row "encap off" t.without_encap ]
end

module Selection = struct
  type row = { label : string; at_least_500m : float; median_mbps : float }
  type t = row list

  let run ctx =
    let flows =
      Traffic.uniform
        (Context.rng ctx ~purpose:33)
        ~n_ases:(Context.n_ases ctx) ~count:ctx.Context.scale.flows
        ~rate:ctx.Context.scale.arrival_rate ()
    in
    Experiments.precompute_flow_dests ctx.Context.table flows;
    let deployment = Context.deployment ctx ~ratio:1.0 in
    let one label selection =
      let params = { ctx.Context.scale.sim with Flowsim.alt_selection = selection } in
      let r = Flowsim.run ~params ctx.Context.table (Flowsim.Mifo deployment) flows in
      let cdf = Dist.cdf_of_samples (Array.map (fun x -> x /. 1e6) (Flowsim.throughputs r)) in
      {
        label;
        at_least_500m = Dist.fraction_at_least cdf 500.;
        median_mbps = Dist.percentile cdf 50.;
      }
    in
    [
      one "greedy local link (paper)" Flowsim.Greedy_local;
      one "oracle bottleneck spare" Flowsim.Oracle_bottleneck;
    ]

  let render t =
    "== Ablation: alternative-path selection rule ==\n"
    ^ Table.render
        ~header:[ "selection"; ">=500 Mbps"; "median Mbps" ]
        ~rows:
          (List.map
             (fun r ->
               [ r.label; Table.fmt_percent r.at_least_500m; Table.fmt_float r.median_mbps ])
             t)
end

module Overhead = struct
  type t = {
    destinations : int;
    bgp_messages : float;
    miro_extra : float;
    mifo_extra : float;
  }

  let run ?(destinations = 12) ctx =
    let g = Context.graph ctx in
    let n = As_graph.n g in
    let rng = Context.rng ctx ~purpose:35 in
    let k = Stdlib.min destinations n in
    let dests = Mifo_util.Prng.sample_without_replacement rng k n in
    Routing_table.precompute ctx.Context.table dests;
    let deployment = Context.deployment ctx ~ratio:1.0 in
    let bgp_total = ref 0 and miro_total = ref 0 in
    Array.iter
      (fun d ->
        let proto = Mifo_bgp.Bgp_proto.create g ~origin:d in
        bgp_total := !bgp_total + Mifo_bgp.Bgp_proto.run proto;
        let rt = Routing_table.get ctx.Context.table d in
        miro_total := !miro_total + Mifo_miro.Miro.extra_announcements rt ~deployment)
      dests;
    let fk = float_of_int k in
    {
      destinations = k;
      bgp_messages = float_of_int !bgp_total /. fk;
      miro_extra = float_of_int !miro_total /. fk;
      mifo_extra = 0.;
    }

  let render t =
    Printf.sprintf
      "== Ablation: control-plane overhead per prefix (%d sampled destinations) ==
%s"
      t.destinations
      (Table.render
         ~header:[ "mechanism"; "extra messages / prefix" ]
         ~rows:
           [
             [ "BGP convergence (baseline)"; Table.fmt_float t.bgp_messages ];
             [ "MIRO strict alternates"; "+" ^ Table.fmt_float t.miro_extra ];
             [ "MIFO (reads the local RIB)"; "+" ^ Table.fmt_float t.mifo_extra ];
           ])
end

module Convergence = struct
  type t = {
    failures : int;
    mean_messages : float;
    max_messages : int;
    mean_unreachable : float;
    max_unreachable : int;
  }

  let run ?(failures = 20) ctx =
    let g = Context.graph ctx in
    let n = As_graph.n g in
    let rng = Context.rng ctx ~purpose:36 in
    let messages = Mifo_util.Stats.create () in
    let unreachable = Mifo_util.Stats.create () in
    let done_ = ref 0 in
    while !done_ < failures do
      let origin = Mifo_util.Prng.int rng n in
      let src = Mifo_util.Prng.int rng n in
      if origin <> src then begin
        let rt = Routing_table.get ctx.Context.table origin in
        match Routing.default_path rt src with
        | exception Invalid_argument _ -> ()
        | path when List.length path >= 2 ->
          (* fail one random link of a live default path *)
          let hops = Array.of_list path in
          let i = Mifo_util.Prng.int rng (Array.length hops - 1) in
          let u = hops.(i) and v = hops.(i + 1) in
          let proto = Mifo_bgp.Bgp_proto.create g ~origin in
          ignore (Mifo_bgp.Bgp_proto.run proto);
          let before = Mifo_bgp.Bgp_proto.messages_sent proto in
          Mifo_bgp.Bgp_proto.fail_link proto u v;
          (* track the peak black-hole while draining the churn *)
          let peak = ref (Mifo_bgp.Bgp_proto.unreachable_count proto) in
          while not (Mifo_bgp.Bgp_proto.converged proto) do
            ignore (Mifo_bgp.Bgp_proto.step proto);
            peak := Stdlib.max !peak (Mifo_bgp.Bgp_proto.unreachable_count proto)
          done;
          Mifo_util.Stats.add messages
            (float_of_int (Mifo_bgp.Bgp_proto.messages_sent proto - before));
          Mifo_util.Stats.add unreachable (float_of_int !peak);
          incr done_
        | _ -> ()
      end
    done;
    {
      failures;
      mean_messages = Mifo_util.Stats.mean messages;
      max_messages = int_of_float (Mifo_util.Stats.max messages);
      mean_unreachable = Mifo_util.Stats.mean unreachable;
      max_unreachable = int_of_float (Mifo_util.Stats.max unreachable);
    }

  let render t =
    Printf.sprintf
      "== Ablation: route convergence after a default-path link failure (%d failures) ==\n"
      t.failures
    ^ Table.render
        ~header:[ "metric"; "mean"; "max" ]
        ~rows:
          [
            [ "UPDATE messages to re-converge"; Table.fmt_float t.mean_messages;
              Table.fmt_count t.max_messages ];
            [ "ASes transiently without a route"; Table.fmt_float t.mean_unreachable;
              Table.fmt_count t.max_unreachable ];
          ]
    ^ "(MIFO reacts to the same signal with one data-plane forwarding decision\n"
    ^ "and zero messages - the control/data-plane timescale gap the paper opens with.)\n"
end

module Failure = struct
  type t = {
    failed_links : int;
    affected : int;
    bgp_completed : float;
    mifo_completed : float;
  }

  let run ?(fail_count = 3) ?(fail_after = 0.2) ctx =
    let flows =
      Traffic.uniform
        (Context.rng ctx ~purpose:37)
        ~n_ases:(Context.n_ases ctx) ~count:ctx.Context.scale.flows
        ~rate:ctx.Context.scale.arrival_rate ()
    in
    Experiments.precompute_flow_dests ctx.Context.table flows;
    (* fail the busiest transit links of the default paths *)
    let crossings = Hashtbl.create 4096 in
    Array.iter
      (fun (s : Flowsim.flow_spec) ->
        let rt = Routing_table.get ctx.Context.table s.Flowsim.dst in
        let path = Array.of_list (Routing.default_path rt s.Flowsim.src) in
        for i = 0 to Array.length path - 2 do
          let key = (path.(i), path.(i + 1)) in
          Hashtbl.replace crossings key
            (1 + Option.value ~default:0 (Hashtbl.find_opt crossings key))
        done)
      flows;
    let busiest =
      Hashtbl.fold (fun k v acc -> (v, k) :: acc) crossings []
      |> List.sort (fun a b -> compare b a)
      |> List.filteri (fun i _ -> i < fail_count)
      |> List.map snd
    in
    let failures = List.map (fun link -> (fail_after, link)) busiest in
    let failed_set = Hashtbl.create 8 in
    List.iter
      (fun (u, v) ->
        Hashtbl.replace failed_set (u, v) ();
        Hashtbl.replace failed_set (v, u) ())
      busiest;
    let affected_flow (s : Flowsim.flow_spec) =
      let rt = Routing_table.get ctx.Context.table s.Flowsim.dst in
      let path = Array.of_list (Routing.default_path rt s.Flowsim.src) in
      let hit = ref false in
      for i = 0 to Array.length path - 2 do
        if Hashtbl.mem failed_set (path.(i), path.(i + 1)) then hit := true
      done;
      !hit
    in
    let params = { ctx.Context.scale.sim with Flowsim.max_time = 15. } in
    let completion proto =
      let r = Flowsim.run ~params ~failures ctx.Context.table proto flows in
      let affected = ref 0 and completed = ref 0 in
      Array.iteri
        (fun i (st : Flowsim.flow_stats) ->
          ignore i;
          if affected_flow st.Flowsim.spec then begin
            incr affected;
            if st.Flowsim.completed then incr completed
          end)
        r.Flowsim.flows;
      (!affected, float_of_int !completed /. float_of_int (Stdlib.max 1 !affected))
    in
    let affected, bgp_completed = completion Flowsim.Bgp in
    let _, mifo_completed =
      completion (Flowsim.Mifo (Context.deployment ctx ~ratio:1.0))
    in
    { failed_links = List.length busiest; affected; bgp_completed; mifo_completed }

  let render t =
    Printf.sprintf
      "== Ablation: data-plane failure recovery (%d busiest links cut, %d flows affected) ==
"
      t.failed_links t.affected
    ^ Table.render
        ~header:[ "protocol"; "affected flows completed" ]
        ~rows:
          [
            [ "BGP (waits for control-plane repair)"; Table.fmt_percent t.bgp_completed ];
            [ "MIFO 100% (routes around at the data plane)"; Table.fmt_percent t.mifo_completed ];
          ]
end

module Threshold = struct
  type row = {
    threshold : float;
    at_least_500m : float;
    mean_switches : float;
    offload : float;
  }

  type t = row list

  let run ?(thresholds = [ 0.80; 0.90; 0.95; 0.99 ]) ctx =
    let flows =
      Traffic.uniform
        (Context.rng ctx ~purpose:34)
        ~n_ases:(Context.n_ases ctx) ~count:ctx.Context.scale.flows
        ~rate:ctx.Context.scale.arrival_rate ()
    in
    Experiments.precompute_flow_dests ctx.Context.table flows;
    let deployment = Context.deployment ctx ~ratio:1.0 in
    List.map
      (fun threshold ->
        let params =
          { ctx.Context.scale.sim with Flowsim.congest_threshold = threshold }
        in
        let r = Flowsim.run ~params ctx.Context.table (Flowsim.Mifo deployment) flows in
        let cdf =
          Dist.cdf_of_samples (Array.map (fun x -> x /. 1e6) (Flowsim.throughputs r))
        in
        let switches = Mifo_util.Stats.create () in
        Array.iter
          (fun (s : Flowsim.flow_stats) ->
            Mifo_util.Stats.add switches (float_of_int s.switches))
          r.Flowsim.flows;
        {
          threshold;
          at_least_500m = Dist.fraction_at_least cdf 500.;
          mean_switches = Mifo_util.Stats.mean switches;
          offload = r.Flowsim.offload_fraction;
        })
      thresholds

  let render t =
    "== Ablation: congestion-threshold sweep ==\n"
    ^ Table.render
        ~header:[ "threshold"; ">=500 Mbps"; "mean switches/flow"; "offload" ]
        ~rows:
          (List.map
             (fun r ->
               [
                 Table.fmt_float r.threshold;
                 Table.fmt_percent r.at_least_500m;
                 Table.fmt_float ~decimals:3 r.mean_switches;
                 Table.fmt_percent r.offload;
               ])
             t)
end
