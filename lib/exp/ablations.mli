(** Ablation studies of MIFO's design choices (DESIGN.md, "Design choices
    worth calling out").  These go beyond the paper's own figures: each
    quantifies what one mechanism contributes by turning it off. *)

(** The valley-free Tag-Check (Section III-A).  Replays hop-by-hop
    forwarding under a worst-case congestion pattern (every default
    egress congested, every AS deflecting greedily) with the data-plane
    check on and off, on the Fig. 2(a) gadget and on the full generated
    topology. *)
module Tag_check : sig
  type outcome_counts = { delivered : int; dropped_valley : int; looped : int; total : int }

  type static_verdict = {
    dests_checked : int;
    loop_free : bool;  (** no destination's deflection automaton has a cycle *)
    counterexample : Mifo_analysis.As_check.counterexample option;
        (** first cycle found when not loop-free *)
    replay_confirmed : bool;
        (** the counterexample, replayed through the dynamic
            {!Mifo_core.Loop_walk}, came back [Looped] *)
  }

  type t = {
    with_check : outcome_counts;
    without_check : outcome_counts;
    static_on : static_verdict;
        (** static verifier over the same destinations, Tag-Check on —
            expected loop-free (the paper's Theorem) *)
    static_off : static_verdict;
        (** Tag-Check off — a found loop comes with a machine-checked
            counterexample *)
  }

  val run_gadget : unit -> t
  (** All three peers of the Fig. 2(a) clique deflect clockwise. *)

  val run : ?sources:int -> Context.t -> t
  (** Random source/destination walks on the context topology. *)

  val render : label:string -> t -> string
end

(** IP-in-IP encapsulation between iBGP peers (Section III-B): the
    testbed run with tunneling disabled — deflected packets bounce
    between Rd and Ra until their TTL dies. *)
module Encap : sig
  type t = {
    with_encap : Mifo_testbed.Testbed.result;
    without_encap : Mifo_testbed.Testbed.result;
  }

  val run : ?config:Mifo_testbed.Testbed.config -> unit -> t
  val render : t -> string
end

(** Greedy local-link selection vs an oracle that knows end-to-end
    bottleneck spare (Section III-C). *)
module Selection : sig
  type row = { label : string; at_least_500m : float; median_mbps : float }
  type t = row list

  val run : Context.t -> t
  val render : t -> string
end

(** Control-plane overhead per destination prefix (Section II-B, "zero
    overhead"): messages until BGP convergence (measured with the
    event-driven {!Mifo_bgp.Bgp_proto} simulator), MIRO's extra
    alternative announcements on top, and MIFO's zero. *)
module Overhead : sig
  type t = {
    destinations : int;
    bgp_messages : float;  (** mean UPDATEs to convergence per prefix *)
    miro_extra : float;  (** mean extra announcements per prefix, strict MIRO *)
    mifo_extra : float;  (** 0 by construction *)
  }

  val run : ?destinations:int -> Context.t -> t
  val render : t -> string
end

(** Route-convergence dynamics (the paper's introduction: "the mismatch
    between fast dynamics of traffic and slow route convergence").
    Random links on live default paths are failed; the event-driven BGP
    simulator measures how many UPDATE messages re-convergence takes and
    how many ASes are transiently without a route — while MIFO's
    data-plane deflection needs one forwarding decision. *)
module Convergence : sig
  type t = {
    failures : int;
    mean_messages : float;  (** UPDATEs to re-converge after one failure *)
    max_messages : int;
    mean_unreachable : float;  (** ASes transiently route-less, post-failure *)
    max_unreachable : int;
  }

  val run : ?failures:int -> Context.t -> t
  val render : t -> string
end

(** Data-plane failure recovery.  The related work (R-BGP) motivates
    staying connected through failures; MIFO gets this for free — a dead
    link looks like a fully congested one, so capable ASes deflect around
    it within one epoch, while BGP flows wait for control-plane repair
    that does not arrive within the simulation horizon. *)
module Failure : sig
  type t = {
    failed_links : int;
    affected : int;  (** flows whose default path crossed a failed link *)
    bgp_completed : float;  (** fraction of affected flows that still completed *)
    mifo_completed : float;
  }

  val run : ?fail_count:int -> ?fail_after:float -> Context.t -> t
  val render : t -> string
end

(** Congestion-threshold sweep: responsiveness vs stability (how the
    queue-ratio trigger trades throughput against path switching). *)
module Threshold : sig
  type row = {
    threshold : float;
    at_least_500m : float;
    mean_switches : float;
    offload : float;
  }

  type t = row list

  val run : ?thresholds:float list -> Context.t -> t
  val render : t -> string
end
