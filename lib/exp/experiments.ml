module As_graph = Mifo_topology.As_graph
module Generator = Mifo_topology.Generator
module Topo_stats = Mifo_topology.Topo_stats
module Routing_table = Mifo_bgp.Routing_table
module Path_count = Mifo_bgp.Path_count
module Deployment = Mifo_core.Deployment
module Flowsim = Mifo_netsim.Flowsim
module Traffic = Mifo_traffic.Traffic
module Miro = Mifo_miro.Miro
module Testbed = Mifo_testbed.Testbed
module Table = Mifo_util.Table
module Dist = Mifo_util.Dist
module Parallel = Mifo_util.Parallel
module Obs = Mifo_util.Obs

(* Warm the routing cache for every destination a flow set touches: the
   per-destination computations are independent, so they fan out across
   the domain pool while the simulation itself stays serial (and its
   output therefore byte-identical to a serial run). *)
let precompute_flow_dests table (flows : Flowsim.flow_spec array) =
  let seen = Hashtbl.create 97 in
  Array.iter (fun (s : Flowsim.flow_spec) -> Hashtbl.replace seen s.Flowsim.dst ()) flows;
  let dests = Hashtbl.fold (fun d () acc -> d :: acc) seen [] in
  Routing_table.precompute table (Array.of_list (List.sort compare dests))

module Table1 = struct
  type t = Topo_stats.t

  let run ctx = Obs.time_phase "table1" (fun () -> Topo_stats.compute (Context.graph ctx))

  let render stats =
    let header = [ "Date"; "# of Nodes"; "# of Links"; "P/C Links"; "Peering Links" ] in
    "== Table I: Attributes of Data-set ==\n"
    ^ Table.render ~header ~rows:(Topo_stats.table1_rows stats)
    ^ Printf.sprintf "(paper, 11/2014 trace: 44,340 nodes, 109,360 links, 75,046 P/C, 34,314 peering)\n"
end

let series_csv ~x_label ~columns rows = Mifo_util.Csv.of_series ~x_label ~columns ~rows

module Fig7 = struct
  type series = { label : string; percentile_counts : (float * float) array }
  type t = { series : series list; pairs : int }

  (* Path counts from every source toward a sample of destinations, then
     the count at each percentile of (sorted descending) node pairs. *)
  let percentiles = Array.init 11 (fun i -> 10. *. float_of_int i)

  let summarize counts =
    let sorted = Array.copy counts in
    Array.sort (fun a b -> compare b a) sorted;
    let n = Array.length sorted in
    Array.map
      (fun p ->
        let i = Stdlib.min (n - 1) (int_of_float (p /. 100. *. float_of_int (n - 1))) in
        (p, sorted.(i)))
      percentiles

  let run ctx =
    Obs.time_phase "fig7" @@ fun () ->
    let g = Context.graph ctx in
    let n = As_graph.n g in
    let rng = Context.rng ctx ~purpose:7 in
    let k = Stdlib.min ctx.Context.scale.dest_samples n in
    let dests = Mifo_util.Prng.sample_without_replacement rng k n in
    let dep50 = Context.deployment ctx ~ratio:0.5 in
    let dep100 = Context.deployment ctx ~ratio:1.0 in
    let pool = Parallel.get_default () in
    Routing_table.precompute ~pool ctx.Context.table dests;
    (* Both counters fan out one task per destination and then flatten
       the per-destination slots in destination order, so the sample
       stream is byte-identical to the old serial loop. *)
    let mifo_counts deployment =
      let per_dest =
        Path_count.mifo_counts_many ~pool g ctx.Context.table ~dests
          ~capable:(Deployment.to_fun deployment)
      in
      let acc = Mifo_util.Vec.create () in
      Array.iteri
        (fun i counts ->
          let d = dests.(i) in
          Array.iteri (fun src c -> if src <> d then Mifo_util.Vec.push acc c) counts)
        per_dest;
      Mifo_util.Vec.to_array acc
    in
    let miro_counts deployment =
      let config = { Miro.cap = ctx.Context.scale.miro_cap } in
      let per_dest =
        Parallel.parallel_map pool
          (fun d ->
            let rt = Routing_table.get ctx.Context.table d in
            let out = Array.make (n - 1) 0. in
            let j = ref 0 in
            for src = 0 to n - 1 do
              if src <> d then begin
                out.(!j) <-
                  float_of_int (Miro.available_path_count ~config rt ~deployment ~src);
                incr j
              end
            done;
            out)
          dests
      in
      let acc = Mifo_util.Vec.create () in
      Array.iter (fun counts -> Array.iter (Mifo_util.Vec.push acc) counts) per_dest;
      Mifo_util.Vec.to_array acc
    in
    let series =
      [
        { label = "50% Deployed MIRO"; percentile_counts = summarize (miro_counts dep50) };
        { label = "100% Deployed MIRO"; percentile_counts = summarize (miro_counts dep100) };
        { label = "50% Deployed MIFO"; percentile_counts = summarize (mifo_counts dep50) };
        { label = "100% Deployed MIFO"; percentile_counts = summarize (mifo_counts dep100) };
      ]
    in
    { series; pairs = Array.length dests * (n - 1) }

  let render t =
    let columns = List.map (fun s -> s.label) t.series in
    let rows =
      Array.to_list
        (Array.mapi
           (fun i (p, _) ->
             (p, List.map (fun s -> snd s.percentile_counts.(i)) t.series))
           (List.hd t.series).percentile_counts)
    in
    Table.render_series
      ~title:(Printf.sprintf "Fig. 7: Available Paths Comparison (%d AS pairs)" t.pairs)
      ~x_label:"% of node pairs" ~columns ~rows

  let to_csv t =
    let columns = List.map (fun s -> s.label) t.series in
    let rows =
      Array.to_list
        (Array.mapi
           (fun i (p, _) -> (p, List.map (fun s -> snd s.percentile_counts.(i)) t.series))
           (List.hd t.series).percentile_counts)
    in
    series_csv ~x_label:"percent_of_node_pairs" ~columns rows

  let median_of t label =
    let s = List.find (fun s -> s.label = label) t.series in
    let _, v = s.percentile_counts.(Array.length s.percentile_counts / 2) in
    v
end

module Throughput = struct
  type curve = {
    label : string;
    cdf : (float * float) array;
    at_least_500m : float;
    median_mbps : float;
    offload : float;
    mean_completion : float;
  }

  let xs = Dist.evenly_spaced ~lo:0. ~hi:1000. ~n:21

  let curve_of_result label (r : Flowsim.result) =
    let tputs_mbps = Array.map (fun t -> t /. 1e6) (Flowsim.throughputs r) in
    let cdf = Dist.cdf_of_samples tputs_mbps in
    let completion = Mifo_util.Stats.create () in
    Array.iter
      (fun (s : Flowsim.flow_stats) ->
        if s.completed then
          Mifo_util.Stats.add completion (s.finish -. s.spec.Flowsim.start))
      r.Flowsim.flows;
    {
      label;
      cdf = Dist.cdf_series cdf ~xs;
      at_least_500m = Dist.fraction_at_least cdf 500.;
      median_mbps = (if Dist.cdf_size cdf = 0 then 0. else Dist.percentile cdf 50.);
      offload = r.Flowsim.offload_fraction;
      mean_completion = Mifo_util.Stats.mean completion;
    }

  let protocols ctx ~ratio =
    let deployment = Context.deployment ctx ~ratio in
    [
      ("BGP", Flowsim.Bgp);
      ( Printf.sprintf "%.0f%% Deployed MIRO" (100. *. ratio),
        Flowsim.Miro { deployment; cap = ctx.Context.scale.miro_cap } );
      (Printf.sprintf "%.0f%% Deployed MIFO" (100. *. ratio), Flowsim.Mifo deployment);
    ]

  let run_traffic ctx flows ~ratio =
    precompute_flow_dests ctx.Context.table flows;
    List.map
      (fun (label, proto) ->
        curve_of_result label
          (Flowsim.run ~params:ctx.Context.scale.sim ctx.Context.table proto flows))
      (protocols ctx ~ratio)

  let fig5 ?(ratios = [ 1.0; 0.5; 0.1 ]) ctx =
    Obs.time_phase "fig5" @@ fun () ->
    let flows =
      Traffic.uniform
        (Context.rng ctx ~purpose:5)
        ~n_ases:(Context.n_ases ctx) ~count:ctx.Context.scale.flows
        ~rate:ctx.Context.scale.arrival_rate ()
    in
    List.map (fun ratio -> (ratio, run_traffic ctx flows ~ratio)) ratios

  let fig6 ?(alphas = [ 0.8; 1.0; 1.2 ]) ctx =
    Obs.time_phase "fig6" @@ fun () ->
    let g = Context.graph ctx in
    let providers = Traffic.content_provider_ranking g in
    List.map
      (fun alpha ->
        let flows =
          Traffic.power_law
            (Context.rng ctx ~purpose:6)
            g ~alpha ~providers ~count:ctx.Context.scale.flows
            ~rate:ctx.Context.scale.arrival_rate ()
        in
        (alpha, run_traffic ctx flows ~ratio:0.5))
      alphas

  let render_panel title curves =
    let columns = List.map (fun c -> c.label) curves in
    let rows =
      Array.to_list
        (Array.mapi
           (fun i (x, _) -> (x, List.map (fun c -> snd c.cdf.(i)) curves))
           (List.hd curves).cdf)
    in
    Table.render_series ~title ~x_label:"Throughput (Mbps) | CDF (%)" ~columns ~rows
    ^ String.concat ""
        (List.map
           (fun c ->
             Printf.sprintf "  %-22s >=500 Mbps: %s   median: %s Mbps   offload: %s\n"
               c.label
               (Table.fmt_percent c.at_least_500m)
               (Table.fmt_float c.median_mbps)
               (Table.fmt_percent c.offload))
           curves)

  let panel_csv curves =
    let columns = List.map (fun c -> c.label) curves in
    let rows =
      Array.to_list
        (Array.mapi
           (fun i (x, _) -> (x, List.map (fun c -> snd c.cdf.(i)) curves))
           (List.hd curves).cdf)
    in
    series_csv ~x_label:"throughput_mbps" ~columns rows

  let fig5_to_csv panels =
    List.map
      (fun (ratio, curves) ->
        (Printf.sprintf "fig5_deploy%.0f.csv" (100. *. ratio), panel_csv curves))
      panels

  let fig6_to_csv panels =
    List.map
      (fun (alpha, curves) ->
        (Printf.sprintf "fig6_alpha%.1f.csv" alpha, panel_csv curves))
      panels

  let render_fig5 panels =
    String.concat "\n"
      (List.map
         (fun (ratio, curves) ->
           render_panel
             (Printf.sprintf "Fig. 5: Throughput CDF, uniform traffic, %.0f%% deployment"
                (100. *. ratio))
             curves)
         panels)

  let render_fig6 panels =
    String.concat "\n"
      (List.map
         (fun (alpha, curves) ->
           render_panel
             (Printf.sprintf
                "Fig. 6: Throughput CDF, power-law traffic (alpha = %.1f), 50%% deployment"
                alpha)
             curves)
         panels)
end

module Fig8 = struct
  type t = (float * float) array

  let run ?(ratios = [ 0.1; 0.2; 0.3; 0.4; 0.5; 0.6; 0.7; 0.8; 0.9; 1.0 ]) ctx =
    Obs.time_phase "fig8" @@ fun () ->
    let flows =
      Traffic.uniform
        (Context.rng ctx ~purpose:8)
        ~n_ases:(Context.n_ases ctx) ~count:ctx.Context.scale.flows
        ~rate:ctx.Context.scale.arrival_rate ()
    in
    precompute_flow_dests ctx.Context.table flows;
    Array.of_list
      (List.map
         (fun ratio ->
           let deployment = Context.deployment ctx ~ratio in
           let r =
             Flowsim.run ~params:ctx.Context.scale.sim ctx.Context.table
               (Flowsim.Mifo deployment) flows
           in
           (ratio, r.Flowsim.offload_fraction))
         ratios)

  let to_csv t =
    series_csv ~x_label:"deployment_ratio" ~columns:[ "offloaded_fraction" ]
      (Array.to_list (Array.map (fun (r, f) -> (r, [ f ])) t))

  let render t =
    Table.render_series ~title:"Fig. 8: Traffic Offload on Alternative Paths"
      ~x_label:"Deployment ratio" ~columns:[ "Traffic on alternative paths (%)" ]
      ~rows:(Array.to_list (Array.map (fun (r, f) -> (r, [ 100. *. f ])) t))
end

module Fig9 = struct
  type t = { fractions : float array; switched_flows : int; total_flows : int }

  let max_bucket = 5

  let run ctx =
    Obs.time_phase "fig9" @@ fun () ->
    let flows =
      Traffic.uniform
        (Context.rng ctx ~purpose:9)
        ~n_ases:(Context.n_ases ctx) ~count:ctx.Context.scale.flows
        ~rate:ctx.Context.scale.arrival_rate ()
    in
    precompute_flow_dests ctx.Context.table flows;
    let deployment = Context.deployment ctx ~ratio:1.0 in
    let r =
      Flowsim.run ~params:ctx.Context.scale.sim ctx.Context.table
        (Flowsim.Mifo deployment) flows
    in
    let switched =
      Array.of_list
        (List.filter_map
           (fun (s : Flowsim.flow_stats) -> if s.switches > 0 then Some s.switches else None)
           (Array.to_list r.Flowsim.flows))
    in
    let counts = Dist.counts_of_ints ~max_value:max_bucket switched in
    let total_switched = Stdlib.max 1 (Array.length switched) in
    (* bucket 0 is empty by construction; report 1 .. 5+ *)
    let fractions =
      Array.init max_bucket (fun i ->
          float_of_int counts.(i + 1) /. float_of_int total_switched)
    in
    {
      fractions;
      switched_flows = Array.length switched;
      total_flows = Array.length r.Flowsim.flows;
    }

  let to_csv t =
    Mifo_util.Csv.of_table ~header:[ "switches"; "fraction_of_switched_flows" ]
      ~rows:
        (Array.to_list
           (Array.mapi
              (fun i f ->
                [ (if i + 1 = max_bucket then "5+" else string_of_int (i + 1));
                  Printf.sprintf "%.6g" f ])
              t.fractions))

  let render t =
    let rows =
      Array.to_list
        (Array.mapi
           (fun i f ->
             let label = if i + 1 = max_bucket then "5+" else string_of_int (i + 1) in
             [ label; Table.fmt_percent f ])
           t.fractions)
    in
    Printf.sprintf
      "== Fig. 9: Path Switch Distribution (%d of %d flows switched) ==\n%s"
      t.switched_flows t.total_flows
      (Table.render ~header:[ "# of switches"; "% of switched flows" ] ~rows)
end

module Fig12 = struct
  type t = { bgp : Testbed.result; mifo : Testbed.result; improvement : float }

  let run ?(config = Testbed.default_config) () =
    Obs.time_phase "fig12" @@ fun () ->
    let bgp = Testbed.run ~config Testbed.Bgp_routing in
    let mifo = Testbed.run ~config Testbed.Mifo_routing in
    let improvement =
      if bgp.Testbed.mean_aggregate <= 0. then 0.
      else (mifo.Testbed.mean_aggregate /. bgp.Testbed.mean_aggregate) -. 1.
    in
    { bgp; mifo; improvement }

  let fct_cdf fct =
    let cdf = Dist.cdf_of_samples fct in
    let hi =
      Array.fold_left Stdlib.max 0.1 fct |> fun m -> Float.max 0.2 (m *. 1.05)
    in
    Dist.cdf_series cdf ~xs:(Dist.evenly_spaced ~lo:0. ~hi ~n:13)

  let to_csv t =
    let series label (r : Testbed.result) =
      series_csv ~x_label:"time_s" ~columns:[ label ^ "_gbps" ]
        (Array.to_list
           (Array.map (fun (time, v) -> (time, [ v /. 1e9 ])) r.Testbed.aggregate_series))
    in
    let fct label (r : Testbed.result) =
      Mifo_util.Csv.of_table ~header:[ label ^ "_fct_s" ]
        ~rows:
          (List.map
             (fun f -> [ Printf.sprintf "%.6g" f ])
             (List.sort compare (Array.to_list r.Testbed.fct)))
    in
    [
      ("fig12a_bgp.csv", series "bgp" t.bgp);
      ("fig12a_mifo.csv", series "mifo" t.mifo);
      ("fig12b_bgp.csv", fct "bgp" t.bgp);
      ("fig12b_mifo.csv", fct "mifo" t.mifo);
    ]

  let render t =
    let series_rows =
      let take r =
        Array.to_list r.Testbed.aggregate_series
        |> List.filter (fun (time, _) -> time <= r.Testbed.makespan)
      in
      let bgp = take t.bgp and mifo = take t.mifo in
      let len = Stdlib.max (List.length bgp) (List.length mifo) in
      List.init len (fun i ->
          let get l =
            match List.nth_opt l i with Some (_, v) -> v /. 1e9 | None -> 0.
          in
          (float_of_int i *. 0.1, [ get bgp; get mifo ]))
    in
    let a =
      Table.render_series ~title:"Fig. 12(a): Aggregate Throughput (Gbps)"
        ~x_label:"Time (s)" ~columns:[ "BGP"; "MIFO" ] ~rows:series_rows
    in
    let fct_table label r =
      Table.render_series
        ~title:(Printf.sprintf "Fig. 12(b): Flow Transfer Time CDF - %s" label)
        ~x_label:"Transfer time (s)" ~columns:[ "CDF (%)" ]
        ~rows:(Array.to_list (Array.map (fun (x, y) -> (x, [ y ])) (fct_cdf r.Testbed.fct)))
    in
    Printf.sprintf
      "%s\n%s\n%s\nBGP aggregate: %.2f Gbps  MIFO aggregate: %.2f Gbps  improvement: %+.0f%%\nBGP makespan: %.1fs  MIFO makespan: %.1fs\n"
      a
      (fct_table "BGP" t.bgp)
      (fct_table "MIFO" t.mifo)
      (t.bgp.Testbed.mean_aggregate /. 1e9)
      (t.mifo.Testbed.mean_aggregate /. 1e9)
      (100. *. t.improvement) t.bgp.Testbed.makespan t.mifo.Testbed.makespan
end
