(** Every table and figure of the paper's evaluation, regenerated.

    Each submodule has a [run] returning structured results and a
    [render] producing the aligned-text table/series the benchmark
    harness prints.  See DESIGN.md for the experiment index and
    EXPERIMENTS.md for paper-vs-measured numbers. *)

val precompute_flow_dests :
  Mifo_bgp.Routing_table.t -> Mifo_netsim.Flowsim.flow_spec array -> unit
(** Fill the routing cache for every destination the flow set touches,
    fanned out over the shared {!Mifo_util.Parallel} pool.  The
    simulators then only ever hit the cache, so their output is
    independent of [MIFO_JOBS].  Experiments call this before each
    simulation; exposed for the CLI and external drivers. *)

(** Table I — attributes of the AS topology. *)
module Table1 : sig
  type t = Mifo_topology.Topo_stats.t

  val run : Context.t -> t
  val render : t -> string
end

(** Fig. 7 — available paths per AS pair, MIFO vs MIRO at 50%/100%
    deployment.  Path counts toward [dest_samples] destinations from
    every source, presented as the count at each percentile of node
    pairs (the paper's x axis). *)
module Fig7 : sig
  type series = { label : string; percentile_counts : (float * float) array }
  type t = { series : series list; pairs : int }

  val run : Context.t -> t
  val render : t -> string
  val to_csv : t -> string

  val median_of : t -> string -> float
  (** Median path count of a named series.  @raise Not_found on a bad
      label. *)
end

(** Figs. 5 and 6 — end-to-end flow-throughput CDFs.  Fig. 5 uses the
    uniform traffic matrix at 100%/50%/10% deployment; Fig. 6 uses the
    power-law matrix at 50% deployment with alpha in {0.8, 1.0, 1.2}. *)
module Throughput : sig
  type curve = {
    label : string;
    cdf : (float * float) array;  (** (Mbps, CDF %) — the paper's axes *)
    at_least_500m : float;  (** fraction of flows attaining >= 500 Mbps *)
    median_mbps : float;
    offload : float;
    mean_completion : float;
  }

  val fig5 : ?ratios:float list -> Context.t -> (float * curve list) list
  (** Per deployment ratio (default [1.0; 0.5; 0.1]): BGP, MIRO, MIFO
      curves. *)

  val fig6 : ?alphas:float list -> Context.t -> (float * curve list) list
  (** Per alpha (default [0.8; 1.0; 1.2]) at 50% deployment. *)

  val render_fig5 : (float * curve list) list -> string
  val render_fig6 : (float * curve list) list -> string

  val fig5_to_csv : (float * curve list) list -> (string * string) list
  (** (file name, contents) per deployment panel. *)

  val fig6_to_csv : (float * curve list) list -> (string * string) list
end

(** Fig. 8 — share of flows offloaded to alternative paths as MIFO
    deployment grows 10% ... 100%. *)
module Fig8 : sig
  type t = (float * float) array  (** (deployment ratio, offloaded fraction) *)

  val run : ?ratios:float list -> Context.t -> t
  val render : t -> string
  val to_csv : t -> string
end

(** Fig. 9 — stability: distribution of per-flow path-switch counts under
    MIFO (among flows that switched at least once, 100% deployment). *)
module Fig9 : sig
  type t = {
    fractions : float array;  (** index i = fraction with i+1 switches; last = "5+" *)
    switched_flows : int;
    total_flows : int;
  }

  val run : Context.t -> t
  val render : t -> string
  val to_csv : t -> string
end

(** Fig. 12 — the testbed experiment: aggregate throughput over time and
    flow-completion-time CDF, BGP vs MIFO. *)
module Fig12 : sig
  type t = {
    bgp : Mifo_testbed.Testbed.result;
    mifo : Mifo_testbed.Testbed.result;
    improvement : float;  (** relative aggregate-throughput gain *)
  }

  val run : ?config:Mifo_testbed.Testbed.config -> unit -> t
  val render : t -> string
  val to_csv : t -> (string * string) list
end
