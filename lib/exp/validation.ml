module As_graph = Mifo_topology.As_graph
module Generator = Mifo_topology.Generator
module Routing_table = Mifo_bgp.Routing_table
module Deployment = Mifo_core.Deployment
module Flowsim = Mifo_netsim.Flowsim
module Packetsim = Mifo_netsim.Packetsim
module As_network = Mifo_netsim.As_network
module Table = Mifo_util.Table
module Obs = Mifo_util.Obs

type t = {
  flows : int;
  ases : int;
  bgp_correlation : float;
  bgp_mean_ratio : float;
  flowsim_speedup : float;
  packetsim_speedup : float;
  invariants : (string * bool) list;
  static_report : Mifo_analysis.Report.t;
      (** static data-plane verifier over the scenario's routing state
          and the MIFO packet network's installed FIBs *)
}

let makespan results =
  Array.fold_left
    (fun acc (r : Packetsim.flow_result) ->
      match r.finish with Some f -> Float.max acc f | None -> acc)
    0. results

let run ?(ases = 150) ?(flows = 24) ?(flow_bytes = 10_000_000)
    ?(eventq = Packetsim.default_config.Packetsim.eventq_engine) ?(domains = 1)
    ~seed () =
  let params =
    {
      Generator.default_params with
      Generator.ases;
      tier1 = 4;
      content_providers = 2;
      content_peer_span = (3, 8);
    }
  in
  let topo = Generator.generate ~params ~seed () in
  let g = topo.Generator.graph in
  let table = Routing_table.create g in
  let rng = Mifo_util.Prng.create ~seed:(seed + 1) () in
  (* endpoints from a limited pool so the packet network stays small and
     flows actually contend *)
  let pool = Mifo_util.Prng.sample_without_replacement rng 24 ases in
  let specs =
    Array.init flows (fun i ->
        let src = pool.(Mifo_util.Prng.int rng 8) in
        let rec pick_dst () =
          let d = pool.(8 + Mifo_util.Prng.int rng 16) in
          if d = src then pick_dst () else d
        in
        {
          Flowsim.src;
          dst = pick_dst ();
          size_bits = float_of_int (flow_bytes * 8);
          start = 0.002 *. float_of_int i;
        })
  in
  let hosts = Array.to_list pool in
  (* --- flow level --- *)
  let flow_params = { Flowsim.default_params with Flowsim.dt = 0.005 } in
  let flow_run deployment =
    let proto =
      if Deployment.count deployment = 0 then Flowsim.Bgp else Flowsim.Mifo deployment
    in
    Flowsim.run ~params:flow_params table proto specs
  in
  let fl_bgp = flow_run (Deployment.none ~n:ases) in
  let fl_mifo = flow_run (Deployment.full ~n:ases) in
  (* --- packet level --- *)
  let packet_run deployment =
    let config =
      { Packetsim.default_config with Packetsim.eventq_engine = eventq; domains }
    in
    let net = As_network.build ~config table ~deployment ~host_rate:20e9 ~hosts () in
    Array.iter
      (fun (s : Flowsim.flow_spec) ->
        ignore
          (As_network.add_transfer net ~src_as:s.Flowsim.src ~dst_as:s.Flowsim.dst
             ~bytes:flow_bytes ~start:s.Flowsim.start))
      specs;
    As_network.run net;
    net
  in
  (* Engine counter deltas around the packet-level runs turn the global
     drop accounting into checkable invariants of this scenario. *)
  let engine_snap () =
    ( Obs.counter_value "engine.drop.valley_violation",
      Obs.counter_value "engine.drop.no_route",
      Obs.counter_value "engine.drop.ttl_expired",
      Obs.counter_value "engine.encap" )
  in
  let v0, n0, t0, e0 = engine_snap () in
  let pk_bgp = packet_run (Deployment.none ~n:ases) in
  let pk_mifo = packet_run (Deployment.full ~n:ases) in
  let v1, n1, t1, e1 = engine_snap () in
  (* Static data-plane verifier: the scenario's routing state must be
     loop-free and valley-free at the AS level, and the MIFO network's
     FIBs — including the alternative ports the daemon has been
     refreshing all run — must be consistent and loop-free for every
     deflection the engine could take. *)
  let static_report =
    let routing = List.map (fun d -> (d, Routing_table.get table d)) hosts in
    Mifo_analysis.Report.merge
      [
        Mifo_analysis.Verifier.verify_as_level g ~table ~dests:hosts;
        Mifo_analysis.Verifier.verify_network pk_mifo.As_network.sim ~routing;
      ]
  in
  let c_bgp = Packetsim.counters pk_bgp.As_network.sim in
  let c_mifo = Packetsim.counters pk_mifo.As_network.sim in
  let invariants =
    [
      (* tag-check on, alternatives are eBGP ports chosen from the RIB:
         no packet may ever die to a valley violation *)
      ( "no valley-violation drops (tag-check on)",
        v1 - v0 = 0
        && c_bgp.Packetsim.dropped_valley = 0
        && c_mifo.Packetsim.dropped_valley = 0 );
      (* the AS-level network has one router per AS and no iBGP ports,
         so nothing can be tunneled *)
      ("no tunnels in an AS-level network", e1 - e0 = 0);
      (* FIBs are complete and forwarding is loop-free *)
      ( "no ttl or no-route drops",
        t1 - t0 = 0 && c_bgp.Packetsim.dropped_no_route = 0
        && c_mifo.Packetsim.dropped_no_route = 0 );
      (* the engine's global drop counters agree with the per-simulation
         accounting: every drop is attributed exactly once *)
      ( "engine drop accounting matches simulator counters",
        n1 - n0 = c_bgp.Packetsim.dropped_no_route + c_mifo.Packetsim.dropped_no_route
        && v1 - v0 = c_bgp.Packetsim.dropped_valley + c_mifo.Packetsim.dropped_valley );
      (* machine-checked: loop-freedom and valley-free compliance of
         every derivable path, plus FIB/RIB consistency of the built
         network *)
      ("static data-plane verifier clean", Mifo_analysis.Report.ok static_report);
    ]
  in
  (* per-flow throughput comparison under BGP: packetsim flows were added
     in spec order, flowsim reports in spec order too *)
  let pk_tputs net =
    Array.map
      (fun (r : Packetsim.flow_result) ->
        match r.Packetsim.finish with
        | Some f when f > r.Packetsim.start ->
          float_of_int (r.Packetsim.bytes * 8) /. (f -. r.Packetsim.start)
        | _ -> 0.)
      (Packetsim.flow_results net.As_network.sim)
  in
  let fl_tputs (r : Flowsim.result) =
    (* Flowsim reports in arrival order; map back to input order through
       the start times, which are unique by construction *)
    let by_idx = Array.make (Array.length specs) 0. in
    let tbl = Hashtbl.create 64 in
    Array.iter
      (fun (s : Flowsim.flow_stats) -> Hashtbl.replace tbl s.Flowsim.spec.Flowsim.start s.Flowsim.throughput)
      r.Flowsim.flows;
    Array.iteri (fun i (s : Flowsim.flow_spec) -> by_idx.(i) <- Hashtbl.find tbl s.Flowsim.start) specs;
    by_idx
  in
  let a = fl_tputs fl_bgp and b = pk_tputs pk_bgp in
  let ratio = Mifo_util.Stats.create () in
  Array.iteri
    (fun i x -> if b.(i) > 0. then Mifo_util.Stats.add ratio (x /. b.(i)))
    a;
  let fl_makespan (r : Flowsim.result) =
    Array.fold_left
      (fun acc (s : Flowsim.flow_stats) -> Float.max acc s.Flowsim.finish)
      0. r.Flowsim.flows
  in
  let flowsim_speedup = fl_makespan fl_bgp /. Float.max 1e-9 (fl_makespan fl_mifo) in
  let packetsim_speedup =
    makespan (Packetsim.flow_results pk_bgp.As_network.sim)
    /. Float.max 1e-9 (makespan (Packetsim.flow_results pk_mifo.As_network.sim))
  in
  {
    flows;
    ases;
    bgp_correlation = Mifo_util.Stats.correlation a b;
    bgp_mean_ratio = Mifo_util.Stats.mean ratio;
    flowsim_speedup;
    packetsim_speedup;
    invariants;
    static_report;
  }

let render t =
  Printf.sprintf
    "== Validation: flow-level vs packet-level simulator (%d flows, %d ASes) ==\n"
    t.flows t.ases
  ^ Table.render
      ~header:[ "metric"; "value" ]
      ~rows:
        [
          [ "per-flow throughput correlation (BGP)"; Table.fmt_float ~decimals:3 t.bgp_correlation ];
          [ "mean throughput ratio flow/packet (BGP)"; Table.fmt_float ~decimals:3 t.bgp_mean_ratio ];
          [ "MIFO speedup, flow-level sim"; Table.fmt_float ~decimals:2 t.flowsim_speedup ^ "x" ];
          [ "MIFO speedup, packet-level sim"; Table.fmt_float ~decimals:2 t.packetsim_speedup ^ "x" ];
        ]
  ^ String.concat ""
      (List.map
         (fun (name, ok) ->
           Printf.sprintf "  invariant: %-48s %s\n" name (if ok then "ok" else "VIOLATED"))
         t.invariants)
  ^
  if Mifo_analysis.Report.ok t.static_report then ""
  else Mifo_analysis.Report.summary t.static_report ^ "\n"
