(** Cross-validation of the two simulators.

    The AS-scale figures run on the flow-level simulator (max-min fluid
    model); the testbed runs on the packet-level simulator (real engine,
    real TCP).  This module runs the {e same} scenario on both — a small
    AS topology, the same flow set, BGP and full-MIFO — and reports how
    well they agree:

    + per-flow throughput correlation under BGP (the fluid model should
      track packet-level TCP closely when nothing adapts);
    + the MIFO-over-BGP makespan speedup seen by each simulator (the
      adaptive behaviours should improve both by a similar factor).

    The benchmark harness prints this as the [validate] target, and the
    test suite asserts the correlation stays high. *)

type t = {
  flows : int;
  ases : int;
  bgp_correlation : float;  (** Pearson, per-flow throughput, flowsim vs packetsim *)
  bgp_mean_ratio : float;  (** mean (flowsim throughput / packetsim throughput) *)
  flowsim_speedup : float;  (** BGP makespan / MIFO makespan, flow level *)
  packetsim_speedup : float;  (** same, packet level *)
  invariants : (string * bool) list;
      (** Named forwarding invariants checked from {!Mifo_util.Obs}
          counter deltas around the packet-level runs — e.g. no
          valley-violation drops with the tag-check on, no tunnels in a
          network without iBGP ports, engine drop accounting agreeing
          with the simulator's own counters.  All [true] on a healthy
          build; {!render} prints any violation. *)
  static_report : Mifo_analysis.Report.t;
      (** Static data-plane verifier verdict over the scenario's routing
          state and the MIFO packet network's installed FIBs: AS-level
          loop-freedom and valley-free compliance of every derivable
          path, plus router-level FIB/RIB consistency and product-
          automaton loop-freedom.  Clean on a healthy build; {!render}
          prints the violations otherwise. *)
}

val run :
  ?ases:int ->
  ?flows:int ->
  ?flow_bytes:int ->
  ?eventq:Mifo_netsim.Eventq.engine ->
  ?domains:int ->
  seed:int ->
  unit ->
  t
(** Defaults: 150 ASes, 24 flows of 10 MB.  Deterministic in [seed].
    [eventq] selects the packet-level simulator's event-queue engine
    (default: the {!Mifo_netsim.Packetsim.default_config} engine, i.e.
    the timing wheel); both engines are bit-identical, so the result
    must not depend on the choice — handy for auditing exactly that.
    [domains] (default 1) shards the packet-level simulator across that
    many event loops; sharded runs are bit-identical to serial, so
    validate doubles as an end-to-end audit of the sharded engine. *)

val render : t -> string
