module As_graph = Mifo_topology.As_graph
module Relationship = Mifo_topology.Relationship
module Routing = Mifo_bgp.Routing
module Routing_table = Mifo_bgp.Routing_table
module Prefix = Mifo_bgp.Prefix
module Fib = Mifo_core.Fib
module Engine = Mifo_core.Engine
module Deployment = Mifo_core.Deployment

type t = {
  sim : Packetsim.t;
  router_of_as : int array;
  host_of_as : (int, int) Hashtbl.t;
}

let host t as_id = Hashtbl.find t.host_of_as as_id
let router t as_id = t.router_of_as.(as_id)

let build ?config ?pool ?(link_rate = 1e9) ?host_rate table ~deployment ~hosts () =
  let host_rate = match host_rate with Some r -> r | None -> link_rate in
  let g = Routing_table.graph table in
  let n = As_graph.n g in
  List.iter
    (fun v ->
      if v < 0 || v >= n then invalid_arg "As_network.build: host AS out of range")
    hosts;
  (* One routing state per host prefix; the computations are independent
     so they fan out across the domain pool before the serial FIB fill. *)
  Routing_table.precompute ?pool table
    (Array.of_list (List.sort_uniq Int.compare hosts));
  let sim = Packetsim.create ?config () in
  let router_of_as = Array.init n (fun v -> Packetsim.add_router sim ~as_id:v) in
  (* Inter-AS links; remember the egress port of every directed pair. *)
  let port_of = Hashtbl.create (4 * As_graph.edge_count g) in
  ignore
    (As_graph.fold_edges g ~init:()
       ~f:(fun () u v kind ->
         let rel_uv, rel_vu =
           match kind with
           | As_graph.Provider_customer -> (Relationship.Customer, Relationship.Provider)
           | As_graph.Peer_peer -> (Relationship.Peer, Relationship.Peer)
         in
         let pu, pv =
           Packetsim.connect sim ~a:router_of_as.(u) ~b:router_of_as.(v)
             ~kind_ab:(Engine.Ebgp { neighbor_as = v; rel = rel_uv })
             ~kind_ba:(Engine.Ebgp { neighbor_as = u; rel = rel_vu })
             ~rate:link_rate ()
         in
         Hashtbl.replace port_of (u, v) pu;
         Hashtbl.replace port_of (v, u) pv));
  (* Hosts and their access links. *)
  let host_of_as = Hashtbl.create (List.length hosts) in
  let host_port = Hashtbl.create (List.length hosts) in
  List.iter
    (fun v ->
      if not (Hashtbl.mem host_of_as v) then begin
        let h = Packetsim.add_host sim ~addr:(Prefix.host_of_as v 1) in
        let _, router_side =
          Packetsim.connect sim ~a:h ~b:router_of_as.(v) ~kind_ab:Engine.Local
            ~kind_ba:Engine.Local ~rate:host_rate ()
        in
        Hashtbl.replace host_of_as v h;
        Hashtbl.replace host_port v router_side
      end)
    hosts;
  (* FIBs: one entry per host prefix in every router, from the analytic
     routing; alternatives live on MIFO-capable ASes and are refreshed by
     the per-router daemon chooser below. *)
  let alt_candidates = Hashtbl.create 256 in
  (* (as, dest) -> candidate (neighbor, port) list, precomputed once *)
  List.iter
    (fun d ->
      let prefix = Prefix.of_as d in
      let rt = Routing_table.get table d in
      for v = 0 to n - 1 do
        let fib = Packetsim.fib sim router_of_as.(v) in
        if v = d then
          Fib.insert fib prefix ~out_port:(Hashtbl.find host_port v) ()
        else begin
          match Routing.next_hop rt v with
          | None -> ()
          | Some nh ->
            let out_port = Hashtbl.find port_of (v, nh) in
            if Deployment.capable deployment v then begin
              let alts =
                (* memoized RIB: the scan+sort ran at most once per
                   (destination, AS) pair, not once per call *)
                Routing.alternatives rt v
                |> List.map (fun (e : Routing.rib_entry) ->
                       (e.via, Hashtbl.find port_of (v, e.via)))
              in
              Hashtbl.replace alt_candidates (v, prefix.Prefix.network) alts;
              match alts with
              | (_, first) :: _ -> Fib.insert fib prefix ~out_port ~alt_port:first ()
              | [] -> Fib.insert fib prefix ~out_port ()
            end
            else Fib.insert fib prefix ~out_port ()
        end
      done)
    hosts;
  (* Daemon choosers: the greedy rule - among the precomputed RIB
     alternatives, pick the port whose link has the most measured spare
     capacity.  Legacy ASes keep no alternative. *)
  for v = 0 to n - 1 do
    if Deployment.capable deployment v then begin
      let node = router_of_as.(v) in
      Packetsim.set_alt_chooser sim node (fun prefix entry ->
          match Hashtbl.find_opt alt_candidates (v, prefix.Prefix.network) with
          | None | Some [] -> Fib.alt_port entry
          | Some candidates ->
            let best = ref None in
            List.iter
              (fun (nb, port) ->
                let s = Packetsim.spare_capacity sim node port in
                match !best with
                | Some (_, _, bs) when bs >= s -> ()
                | _ -> best := Some (nb, port, s))
              candidates;
            (match !best with
             | Some (_, port, s) when s > 0. -> Some port
             | _ -> None))
    end
  done;
  { sim; router_of_as; host_of_as }

let add_transfer t ~src_as ~dst_as ~bytes ~start =
  let src = host t src_as and dst = host t dst_as in
  Packetsim.add_flow t.sim ~src ~dst ~bytes ~start

let run ?until t = Packetsim.run ?until t.sim
