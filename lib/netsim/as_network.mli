(** Instantiate an AS-level topology as a packet-level network.

    The flow-level simulator ({!Flowsim}) models MIFO's behaviour
    analytically; this builder constructs the same AS graph inside
    {!Packetsim} — one border router per AS, every inter-AS link a real
    store-and-forward link, FIBs filled from {!Mifo_bgp.Routing}, and on
    MIFO-capable ASes an alternative port refreshed by the daemon using
    the paper's greedy spare-capacity rule.  Packets then traverse the
    actual {!Mifo_core.Engine} hop by hop, tag bit and all.

    This is how the test suite cross-validates the two simulators, and
    how small AS scenarios (a few dozen ASes) can be studied at packet
    granularity. *)

type t = {
  sim : Packetsim.t;
  router_of_as : int array;  (** AS id -> router node id *)
  host_of_as : (int, int) Hashtbl.t;  (** AS id -> host node id (if any) *)
}

val build :
  ?config:Packetsim.config ->
  ?pool:Mifo_util.Parallel.pool ->
  ?link_rate:float ->
  ?host_rate:float ->
  Mifo_bgp.Routing_table.t ->
  deployment:Mifo_core.Deployment.t ->
  hosts:int list ->
  unit ->
  t
(** [build table ~deployment ~hosts ()] wires every AS and installs, for
    every AS listed in [hosts], that AS's /24 prefix in {e every}
    router's FIB (default next hop from the routing computation;
    alternative port on MIFO-capable ASes).  Each listed AS also gets an
    attached end host addressed [Prefix.host_of_as as 1].

    [link_rate] defaults to 1 Gbps (the paper's setting) on every
    inter-AS link; [host_rate] (default [link_rate]) sets the host access
    links — raise it to keep end hosts from being the bottleneck.

    The per-host routing computations are fanned out over [pool]
    (default {!Mifo_util.Parallel.get_default}) before the serial
    network wiring; the built network is identical for any pool size.

    @raise Invalid_argument if a listed AS id is out of range. *)

val host : t -> int -> int
(** Host node of an AS.  @raise Not_found if the AS has no host. *)

val router : t -> int -> int

val add_transfer : t -> src_as:int -> dst_as:int -> bytes:int -> start:float -> int
(** A TCP transfer between the hosts of two ASes; returns the flow id.
    @raise Not_found if either AS has no host. *)

val run : ?until:float -> t -> unit
