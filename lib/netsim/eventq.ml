module Heap = Mifo_util.Heap
module Wheel = Mifo_util.Wheel

type engine = Heap | Wheel

let engine_name = function Heap -> "heap" | Wheel -> "wheel"

let engine_of_string = function
  | "heap" -> Some Heap
  | "wheel" -> Some Wheel
  | _ -> None

type 'a item = { time : float; seq : int; payload : 'a }

type 'a backend = H of 'a item Heap.t | W of 'a Wheel.t

type 'a t = {
  backend : 'a backend;
  mutable next_seq : int;
  mutable peak : int;
  last : float array;
      (* time of the last pop_before result, in a 1-slot flat float
         array: a [mutable float] field of this mixed record would box
         a fresh float on every pop *)
}

let cmp a b =
  let c = Float.compare a.time b.time in
  if c <> 0 then c else Int.compare a.seq b.seq

let create ?(engine = Heap) () =
  let backend =
    match engine with
    | Heap -> H (Heap.create ~cmp ())
    | Wheel -> W (Wheel.create ())
  in
  { backend; next_seq = 0; peak = 0; last = [| 0. |] }

let engine t = match t.backend with H _ -> Heap | W _ -> Wheel
let length t = match t.backend with H h -> Heap.length h | W w -> Wheel.length w

let alloc_seq t =
  let s = t.next_seq in
  t.next_seq <- s + 1;
  s

let schedule_pre t ~time ~seq payload =
  if Float.is_nan time || time < 0. then invalid_arg "Eventq.schedule: bad time";
  (match t.backend with
  | H h -> Heap.push h { time; seq; payload }
  | W w -> Wheel.schedule w ~time ~seq payload);
  let n = length t in
  if n > t.peak then t.peak <- n

let schedule t ~time payload =
  let seq = alloc_seq t in
  schedule_pre t ~time ~seq payload

let next t =
  match t.backend with
  | H h -> (
      match Heap.pop h with
      | None -> None
      | Some { time; payload; _ } -> Some (time, payload))
  | W w -> (
      match Wheel.pop w with
      | None -> None
      | Some (time, _, payload) -> Some (time, payload))

let is_empty t =
  match t.backend with H h -> Heap.is_empty h | W w -> Wheel.is_empty w

(* Fused peek-filter-pop for the dispatch loop: one [Some payload]
   allocation per event instead of an option per peek plus a tuple per
   pop.  The popped event's time is read back via {!last_time}. *)
let pop_before t ~until =
  match t.backend with
  | H h ->
    if Heap.is_empty h then None
    else begin
      let it = Heap.top_exn h in
      if it.time > until then None
      else begin
        Heap.drop h;
        t.last.(0) <- it.time;
        Some it.payload
      end
    end
  | W w -> Wheel.pop_before w ~until ~cell:t.last

let last_time t = t.last.(0)
let time_cell t = t.last

(* Allocation-free "may this key run ahead of the queue?" test for
   batched callers; true when the queue is empty. *)
let precedes_head t ~time ~seq =
  match t.backend with
  | H h ->
    Heap.is_empty h
    ||
    let it = Heap.top_exn h in
    let c = Float.compare time it.time in
    c < 0 || (c = 0 && seq < it.seq)
  | W w -> Wheel.precedes w ~time ~seq

let clear t =
  (match t.backend with H h -> Heap.clear h | W w -> Wheel.clear w);
  (* Reset the tie-break counter too: a cleared queue must schedule and
     pop exactly like a fresh one, or reuse breaks reproducibility. *)
  t.next_seq <- 0;
  t.peak <- 0;
  t.last.(0) <- 0.

let peek_time t =
  match t.backend with
  | H h -> (
      match Heap.peek h with None -> None | Some { time; _ } -> Some time)
  | W w -> ( match Wheel.peek w with None -> None | Some (time, _) -> Some time)

let peek_key t =
  match t.backend with
  | H h -> (
      match Heap.peek h with
      | None -> None
      | Some { time; seq; _ } -> Some (time, seq))
  | W w -> Wheel.peek w

let peak_length t = t.peak
let wheel_stats t = match t.backend with H _ -> None | W w -> Some (Wheel.stats w)
