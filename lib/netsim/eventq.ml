module Heap = Mifo_util.Heap

type 'a item = { time : float; seq : int; payload : 'a }
type 'a t = { heap : 'a item Heap.t; mutable next_seq : int }

let cmp a b =
  let c = Float.compare a.time b.time in
  if c <> 0 then c else Int.compare a.seq b.seq

let create () = { heap = Heap.create ~cmp (); next_seq = 0 }

let schedule t ~time payload =
  if Float.is_nan time || time < 0. then invalid_arg "Eventq.schedule: bad time";
  Heap.push t.heap { time; seq = t.next_seq; payload };
  t.next_seq <- t.next_seq + 1

let next t =
  match Heap.pop t.heap with
  | None -> None
  | Some { time; payload; _ } -> Some (time, payload)

let is_empty t = Heap.is_empty t.heap
let length t = Heap.length t.heap
let clear t = Heap.clear t.heap

let peek_time t =
  match Heap.peek t.heap with None -> None | Some { time; _ } -> Some time
