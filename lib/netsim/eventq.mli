(** Simulation event queue.

    Keyed by simulated time with a monotonic sequence number, so
    simultaneous events pop in insertion order (determinism matters:
    every run must be reproducible).  Two interchangeable engines back
    the queue:

    - {!Heap}: the original {!Mifo_util.Heap} binary heap — O(log n)
      per operation, kept as the bit-identical oracle.
    - {!Wheel}: a {!Mifo_util.Wheel} hierarchical timing wheel —
      near-O(1) for the near-present events that dominate packet
      simulation, with far-future timers cascading down on demand.

    Both engines pop the exact same [(time, seq)]-lexicographic
    sequence; see the determinism contract in {!Mifo_util.Wheel}. *)

type engine = Heap | Wheel

val engine_name : engine -> string
(** ["heap"] / ["wheel"], as used by CLI flags and bench JSON. *)

val engine_of_string : string -> engine option

type 'a t

val create : ?engine:engine -> unit -> 'a t
(** Default engine is {!Heap} (the oracle); hot paths opt into
    {!Wheel}. *)

val engine : 'a t -> engine

val schedule : 'a t -> time:float -> 'a -> unit
(** @raise Invalid_argument on NaN or negative time. *)

val alloc_seq : 'a t -> int
(** Claim the next tie-break sequence number without scheduling.  Lets
    a caller batching several logical events into one queue entry (see
    packet trains in {!Packetsim}) assign each element the seq it would
    have received from {!schedule}, preserving order equivalence with
    the unbatched schedule-per-event discipline. *)

val schedule_pre : 'a t -> time:float -> seq:int -> 'a -> unit
(** Schedule under a sequence number claimed earlier with {!alloc_seq}
    (or carried over when re-scheduling); does not advance the counter.
    @raise Invalid_argument on NaN or negative time. *)

val next : 'a t -> (float * 'a) option

val pop_before : 'a t -> until:float -> 'a option
(** Pop the next event only if its time is [<= until]; the popped
    event's time is available from {!last_time}.  Fuses peek, the
    horizon check, and pop into one call with a single [Some]
    allocation — the dispatch-loop fast path. *)

val last_time : 'a t -> float
(** Time of the event returned by the last successful {!pop_before}
    (0.0 before the first). *)

val time_cell : 'a t -> float array
(** The 1-slot flat float cell behind {!last_time}: [cell.(0)] is
    updated in place by every successful {!pop_before}.  A dispatch
    loop holds onto this array and reads the current time straight out
    of it — without flambda, {!last_time}'s float return would be boxed
    on every event. *)

val precedes_head : 'a t -> time:float -> seq:int -> bool
(** Whether [(time, seq)] strictly precedes the queue head's key (true
    on an empty queue), without allocating.  Lets a caller holding a
    batch of keyed work (a packet train) test if its next element is
    still globally next. *)

val is_empty : 'a t -> bool
val length : 'a t -> int

val clear : 'a t -> unit
(** Empty the queue {e and} reset the sequence counter, so a reused
    queue is indistinguishable from a fresh one. *)

val peek_time : 'a t -> float option
(** Time of the next event without removing it. *)

val peek_key : 'a t -> (float * int) option
(** [(time, seq)] of the next event without removing it. *)

val peak_length : 'a t -> int
(** High-water mark of {!length} since creation or {!clear}. *)

val wheel_stats : 'a t -> Mifo_util.Wheel.stats option
(** Occupancy/cascade statistics; [None] under the {!Heap} engine. *)
