module As_graph = Mifo_topology.As_graph
module Relationship = Mifo_topology.Relationship
module Routing = Mifo_bgp.Routing
module Routing_table = Mifo_bgp.Routing_table
module Deployment = Mifo_core.Deployment
module Alt_select = Mifo_core.Alt_select

type protocol =
  | Bgp
  | Mifo of Deployment.t
  | Miro of { deployment : Deployment.t; cap : int }

type alt_selection = Greedy_local | Oracle_bottleneck
type engine = Incremental | Reference

type params = {
  link_capacity : float;
  dt : float;
  congest_threshold : float;
  clear_threshold : float;
  improve_margin : float;
  miro_reaction : float;
  max_time : float;
  series_interval : float;
  alt_selection : alt_selection;
  engine : engine;
  skip_clean_epochs : bool;
}

let default_params =
  {
    link_capacity = 1e9;
    dt = 0.01;
    congest_threshold = 0.95;
    clear_threshold = 0.60;
    improve_margin = 0.2;
    miro_reaction = 0.5;
    max_time = 120.;
    series_interval = 0.25;
    alt_selection = Greedy_local;
    engine = Incremental;
    skip_clean_epochs = true;
  }

type flow_spec = { src : int; dst : int; size_bits : float; start : float }

type flow_stats = {
  spec : flow_spec;
  throughput : float;
  finish : float;
  completed : bool;
  switches : int;
  used_alt : bool;
  alt_time : float;
  final_path : int array;
  final_rate : float;
}

type result = {
  flows : flow_stats array;
  offload_fraction : float;
  series : (float * float) array;
  epochs : int;
  solves : int;
  sim_end : float;
}

(* Directed inter-AS links, densely numbered. *)
module Links = struct
  type t = {
    ids : (int, int) Hashtbl.t;  (* (u * n + v) -> id *)
    n : int;
    mutable count : int;
    ends : (int * int) Mifo_util.Vec.t;
  }

  let create g =
    let n = As_graph.n g in
    let t = { ids = Hashtbl.create 4096; n; count = 0; ends = Mifo_util.Vec.create () } in
    for u = 0 to n - 1 do
      Array.iter
        (fun v ->
          Hashtbl.add t.ids ((u * n) + v) t.count;
          Mifo_util.Vec.push t.ends (u, v);
          t.count <- t.count + 1)
        (As_graph.neighbors g u)
    done;
    t

  let id t u v = Hashtbl.find t.ids ((u * t.n) + v)
  let count t = t.count
end

type flow = {
  spec : flow_spec;
  idx : int;
  default_path : int array;
  default_links : int array;
  mutable path : int array;
  mutable links : int array;
  mutable on_default : bool;
  mutable rate : float;
  mutable remaining : float;
  mutable switches : int;
  mutable used_alt : bool;
  mutable alt_time : float;
  mutable finish : float;
  mutable completed : bool;
  mutable slot : int;  (* Maxmin.Solver flow handle; -1 while inactive *)
}

let path_links links_reg path =
  Array.init
    (Array.length path - 1)
    (fun i -> Links.id links_reg path.(i) path.(i + 1))

let path_has_dup path =
  let seen = Hashtbl.create (Array.length path) in
  Array.exists
    (fun v ->
      if Hashtbl.mem seen v then true
      else begin
        Hashtbl.add seen v ();
        false
      end)
    path

(* Splice: keep [path] up to index [i] (inclusive), then go via [nb] and
   follow nb's default path to the destination. *)
let splice rt path i nb =
  let prefix = Array.sub path 0 (i + 1) in
  let continuation = Array.of_list (Routing.default_path rt nb) in
  Array.append prefix continuation

(* a failed link keeps a hair of capacity so utilization stays defined *)
let dead_capacity = 1.0

module Obs = Mifo_util.Obs

let c_epochs = Obs.counter "flowsim.epochs"
let c_switches = Obs.counter "flowsim.path_switches"
let c_completed = Obs.counter "flowsim.completed"
let c_resumed = Obs.counter "flowsim.resumed_default"
let c_solves = Obs.counter "flowsim.solver.solves"
let c_skipped = Obs.counter "flowsim.solver.skipped_epochs"

let run ?(params = default_params) ?(failures = []) table protocol flow_specs =
  let g = Routing_table.graph table in
  let n = As_graph.n g in
  Array.iter
    (fun s ->
      if s.src < 0 || s.src >= n || s.dst < 0 || s.dst >= n then
        invalid_arg "Flowsim.run: endpoint out of range";
      if s.src = s.dst then invalid_arg "Flowsim.run: src = dst";
      if s.size_bits <= 0. then invalid_arg "Flowsim.run: empty flow";
      if s.start < 0. then invalid_arg "Flowsim.run: negative start time")
    flow_specs;
  List.iter
    (fun (at, (u, v)) ->
      if at < 0. then invalid_arg "Flowsim.run: negative failure time";
      if As_graph.rel g u v = None then
        invalid_arg "Flowsim.run: failed link is not an adjacency")
    failures;
  let links_reg = Links.create g in
  let nlinks = Links.count links_reg in
  let capacities = Array.make nlinks params.link_capacity in
  let solver =
    match params.engine with
    | Incremental ->
      Some (Maxmin.Solver.create ~capacity:params.link_capacity ~nlinks ())
    | Reference -> None
  in
  (* Does the solver state (membership or capacities) differ from the
     last solve?  Set on arrival, completion, path switch, and link
     failure; when clear, this epoch's solve would be bit-identical to
     the previous one and can be skipped outright. *)
  let dirty = ref true in
  let solves = ref 0 in
  let pending_failures =
    ref
      (List.sort
         (fun (t1, (u1, v1)) (t2, (u2, v2)) ->
           let c = Float.compare t1 t2 in
           if c <> 0 then c
           else begin
             let c = Int.compare u1 u2 in
             if c <> 0 then c else Int.compare v1 v2
           end)
         failures)
  in
  let apply_due_failures now =
    let rec go () =
      match !pending_failures with
      | (at, (u, v)) :: rest when at <= now ->
        pending_failures := rest;
        (* both directions of the physical link go dark *)
        let luv = Links.id links_reg u v and lvu = Links.id links_reg v u in
        capacities.(luv) <- dead_capacity;
        capacities.(lvu) <- dead_capacity;
        (match solver with
        | Some sv ->
          Maxmin.Solver.set_capacity sv luv dead_capacity;
          Maxmin.Solver.set_capacity sv lvu dead_capacity;
          dirty := true
        | None -> ());
        go ()
      | _ -> ()
    in
    go ()
  in
  (* Flows sorted by arrival, stable on input order. *)
  let order = Array.init (Array.length flow_specs) (fun i -> i) in
  Array.sort
    (fun a b ->
      let c = Float.compare flow_specs.(a).start flow_specs.(b).start in
      if c <> 0 then c else Int.compare a b)
    order;
  let make_flow idx =
    let spec = flow_specs.(idx) in
    let rt = Routing_table.get table spec.dst in
    let default_path = Array.of_list (Routing.default_path rt spec.src) in
    let default_links = path_links links_reg default_path in
    {
      spec;
      idx;
      default_path;
      default_links;
      path = default_path;
      links = default_links;
      on_default = true;
      rate = 0.;
      remaining = spec.size_bits;
      switches = 0;
      used_alt = false;
      alt_time = 0.;
      finish = nan;
      completed = false;
      slot = -1;
    }
  in
  let flows = Array.map make_flow order in
  let total = Array.length flows in
  let active : flow Mifo_util.Vec.t = Mifo_util.Vec.create () in
  let next_arrival = ref 0 in
  let alloc = ref (Array.make nlinks 0.) in
  let series = Mifo_util.Vec.create () in
  let dead l = capacities.(l) <= dead_capacity in
  let util l = !alloc.(l) /. capacities.(l) in
  (* Spare capacity seen by the greedy controllers, updated as flows are
     (re)assigned within the epoch so moves do not stampede. *)
  let planned = Array.make nlinks 0. in
  let spare l = capacities.(l) -. !alloc.(l) -. planned.(l) in
  let congested l = dead l || util l >= params.congest_threshold in
  let path_drained links =
    Array.for_all
      (fun l ->
        (not (dead l))
        && util l +. (planned.(l) /. capacities.(l)) <= params.clear_threshold)
      links
  in
  let time = ref 0. in
  let switch_to f path =
    f.path <- path;
    f.links <- path_links links_reg path;
    (match solver with
    | Some sv when f.slot >= 0 ->
      Maxmin.Solver.set_links sv f.slot (Maxmin.dedup_links f.links);
      dirty := true
    | _ -> ());
    f.switches <- f.switches + 1;
    Obs.incr c_switches;
    let is_default = path == f.default_path || path = f.default_path in
    f.on_default <- is_default;
    if is_default then Obs.incr c_resumed else f.used_alt <- true;
    if Obs.trace_enabled () then
      Obs.event ~t:!time "flow_switch"
        [
          ("flow", Obs.Int f.idx);
          ("on_default", Obs.Bool is_default);
          ("path_len", Obs.Int (Array.length path));
        ];
    Array.iter (fun l -> planned.(l) <- planned.(l) +. f.rate) f.links
  in
  let adapt_mifo deployment f =
    if (not f.on_default) && path_drained f.default_links then
      (* hysteresis satisfied: resume the default path *)
      switch_to f f.default_path
    else begin
      (* Hop-by-hop deflection, wherever the flow currently runs: the
         first congested egress whose AS is MIFO-capable moves the flow
         onto the RIB alternative with the most spare local capacity
         (subject to the valley-free deflection rule).  One deflection
         per flow per epoch. *)
      let len = Array.length f.path in
      let rec scan i =
        if i >= len - 1 then ()
        else begin
          let u = f.path.(i) in
          let l = f.links.(i) in
          if congested l && Deployment.capable deployment u then begin
            let rt = Routing_table.get table f.spec.dst in
            let upstream =
              if i = 0 then None else Some (As_graph.rel_exn g u f.path.(i - 1))
            in
            let local_spare nb =
              if nb = f.path.(i + 1) then 0.
              else begin
                let l' = Links.id links_reg u nb in
                if dead l' then 0.
                else begin
                  let s = spare l' in
                  if s > f.rate *. (1. +. params.improve_margin) then s else 0.
                end
              end
            in
            let candidate =
              match params.alt_selection with
              | Greedy_local ->
                Alt_select.best_alternative rt ~src_as:u ~upstream
                  ~spare:local_spare
              | Oracle_bottleneck ->
                (* Ablation: score by the true end-to-end bottleneck spare
                   of the spliced path - information no border router has
                   at line speed; quantifies what the greedy local rule
                   gives up. *)
                Alt_select.best_by rt ~src_as:u ~upstream ~score:(fun e ->
                    if local_spare e.Routing.via <= 0. then 0.
                    else begin
                      let path = splice rt f.path i e.Routing.via in
                      if path_has_dup path then 0.
                      else
                        Array.fold_left
                          (fun acc l -> Float.min acc (spare l))
                          infinity (path_links links_reg path)
                    end)
            in
            match candidate with
            | Some entry ->
              let path = splice rt f.path i entry.Routing.via in
              if not (path_has_dup path) then switch_to f path else scan (i + 1)
            | None -> scan (i + 1)
          end
          else scan (i + 1)
        end
      in
      scan 0
    end
  in
  (* MIRO is a control-plane mechanism: route changes propagate through
     negotiation, so its reaction is throttled to [miro_reaction] seconds
     (MIFO reacts every data-plane epoch - the asymmetry the paper's
     introduction is built on). *)
  let miro_window = ref (-1) in
  let miro_may_act = ref false in
  let adapt_miro deployment miro_cap f =
    let src = f.spec.src in
    if !miro_may_act && Deployment.capable deployment src then begin
      let bottleneck_congested = Array.exists congested f.links in
      if f.on_default && bottleneck_congested then begin
        let rt = Routing_table.get table f.spec.dst in
        let candidates =
          Mifo_miro.Miro.candidates
            ~config:{ Mifo_miro.Miro.cap = miro_cap }
            rt ~deployment ~src
        in
        begin
          (* Candidates are scored by the spare capacity of the source's
             own link to the tunnel entry — the same local measurement
             MIFO uses; neither protocol can probe end-to-end available
             bandwidth at line speed (Section III-C). *)
          let score (e : Routing.rib_entry) =
            let path = splice rt f.path 0 e.via in
            if path_has_dup path then None
            else Some (path, spare (Links.id links_reg src e.via))
          in
          let best =
            List.fold_left
              (fun acc e ->
                match score e with
                | None -> acc
                | Some (path, s) -> (
                  match acc with
                  | Some (_, bs) when bs >= s -> acc
                  | _ -> Some (path, s)))
              None candidates
          in
          match best with
          | Some (path, s) when s > f.rate *. (1. +. params.improve_margin) ->
            switch_to f path
          | Some _ | None -> ()
        end
      end
      else if (not f.on_default) && path_drained f.default_links then
        switch_to f f.default_path
    end
  in
  let adapt =
    match protocol with
    | Bgp -> fun _ -> ()
    | Mifo deployment -> adapt_mifo deployment
    | Miro { deployment; cap } -> adapt_miro deployment cap
  in
  let epochs = ref 0 in
  let completed = ref 0 in
  let last_sample = ref neg_infinity in
  (* Reusable per-epoch scratch (adaptation order, solver slot list):
     grown geometrically, never freed, so the steady-state epoch loop
     allocates nothing. *)
  let order_scratch : flow array ref = ref [||] in
  let slot_scratch = ref [||] in
  let ensure_scratch scratch len fill =
    if Array.length !scratch < len then
      scratch :=
        Array.make
          (Stdlib.max 16 (Stdlib.max len (2 * Array.length !scratch)))
          fill
  in
  (* jump to the first arrival *)
  if total > 0 then time := flows.(0).spec.start;
  while !completed < total && !time <= params.max_time do
    incr epochs;
    Obs.incr c_epochs;
    apply_due_failures !time;
    (* arrivals *)
    while
      !next_arrival < total && flows.(!next_arrival).spec.start <= !time +. 1e-12
    do
      let f = flows.(!next_arrival) in
      Mifo_util.Vec.push active f;
      (match solver with
      | Some sv ->
        f.slot <- Maxmin.Solver.register sv (Maxmin.dedup_links f.links);
        dirty := true
      | None -> ());
      incr next_arrival
    done;
    (* adaptation against last epoch's utilization, most-starved flows
       first: the flows with the least bandwidth get first pick of the
       spare capacity, so deflections relieve hotspots instead of
       cannibalizing healthy flows *)
    Array.fill planned 0 nlinks 0.;
    let window = int_of_float (!time /. Float.max params.dt params.miro_reaction) in
    miro_may_act := window <> !miro_window;
    if !miro_may_act then miro_window := window;
    let nactive = Mifo_util.Vec.length active in
    if !epochs > 1 && nactive > 0 then begin
      ensure_scratch order_scratch nactive (Mifo_util.Vec.get active 0);
      let order = !order_scratch in
      for i = 0 to nactive - 1 do
        order.(i) <- Mifo_util.Vec.get active i
      done;
      Mifo_util.Sort.sort_prefix
        ~cmp:(fun a b ->
          let c = Float.compare a.rate b.rate in
          if c <> 0 then c else Int.compare a.idx b.idx)
        order nactive;
      for i = 0 to nactive - 1 do
        adapt order.(i)
      done
    end;
    (* allocation *)
    (match solver with
    | Some sv ->
      let nactive = Mifo_util.Vec.length active in
      if !dirty || not params.skip_clean_epochs then begin
        ensure_scratch slot_scratch nactive (-1);
        let slots = !slot_scratch in
        for i = 0 to nactive - 1 do
          slots.(i) <- (Mifo_util.Vec.get active i).slot
        done;
        Maxmin.Solver.solve sv slots nactive;
        dirty := false;
        incr solves;
        Obs.incr c_solves;
        for i = 0 to nactive - 1 do
          let f = Mifo_util.Vec.get active i in
          f.rate <- Maxmin.Solver.rate sv f.slot
        done;
        alloc := Maxmin.Solver.link_allocs sv
      end
      else Obs.incr c_skipped
    | None ->
      let active_arr = Mifo_util.Vec.to_array active in
      let flow_links = Array.map (fun f -> f.links) active_arr in
      let rates = Maxmin.allocate ~capacities ~flow_links in
      Array.iteri (fun i f -> f.rate <- rates.(i)) active_arr;
      incr solves;
      Obs.incr c_solves;
      alloc := Maxmin.link_allocation ~capacities ~flow_links ~rates);
    (* progress *)
    let aggregate =
      Mifo_util.Vec.fold_left (fun acc f -> acc +. f.rate) 0. active
    in
    if !time -. !last_sample >= params.series_interval -. 1e-12 then begin
      Mifo_util.Vec.push series (!time, aggregate);
      (* Snap the sampling cursor to the interval grid instead of the
         epoch timestamp: epochs land a hair after the grid point, and
         anchoring at the epoch time accumulates that quantization error
         into a phase drift that eventually skips a sample. *)
      if !last_sample = neg_infinity then last_sample := !time
      else begin
        last_sample := !last_sample +. params.series_interval;
        while !time -. !last_sample >= params.series_interval -. 1e-12 do
          last_sample := !last_sample +. params.series_interval
        done
      end
    end;
    Mifo_util.Vec.iter
      (fun f ->
        let transferred = f.rate *. params.dt in
        if not f.on_default then f.alt_time <- f.alt_time +. params.dt;
        if transferred >= f.remaining && f.rate > 0. then begin
          f.finish <- !time +. (f.remaining /. f.rate);
          f.remaining <- 0.;
          f.completed <- true;
          incr completed;
          Obs.incr c_completed
        end
        else f.remaining <- f.remaining -. transferred)
      active;
    (* drop completed flows from the active set *)
    let i = ref 0 in
    while !i < Mifo_util.Vec.length active do
      let f = Mifo_util.Vec.get active !i in
      if f.completed then begin
        ignore (Mifo_util.Vec.swap_remove active !i);
        match solver with
        | Some sv ->
          Maxmin.Solver.unregister sv f.slot;
          f.slot <- -1;
          dirty := true
        | None -> ()
      end
      else incr i
    done;
    (* advance: skip idle gaps straight to the next arrival *)
    time := !time +. params.dt;
    if Mifo_util.Vec.is_empty active && !next_arrival < total then
      time := Float.max !time flows.(!next_arrival).spec.start
  done;
  let sim_end = !time in
  let stats =
    Array.map
      (fun f ->
        let finish = if f.completed then f.finish else sim_end in
        let duration = Float.max params.dt (finish -. f.spec.start) in
        let transferred = f.spec.size_bits -. f.remaining in
        {
          spec = f.spec;
          throughput = transferred /. duration;
          finish;
          completed = f.completed;
          switches = f.switches;
          used_alt = f.used_alt;
          alt_time = f.alt_time;
          final_path = f.path;
          final_rate = f.rate;
        })
      flows
  in
  let offload =
    if total = 0 then 0.
    else begin
      let used =
        Array.fold_left
          (fun acc (s : flow_stats) -> if s.used_alt then acc + 1 else acc)
          0 stats
      in
      float_of_int used /. float_of_int total
    end
  in
  {
    flows = stats;
    offload_fraction = offload;
    series = Mifo_util.Vec.to_array series;
    epochs = !epochs;
    solves = !solves;
    sim_end;
  }

let throughputs result = Array.map (fun s -> s.throughput) result.flows
