(** Flow-level network simulation over the AS graph.

    This is the substrate for the paper's AS-scale experiments (Figs. 5,
    6, 8, 9): flows arrive over time, share directed inter-AS links under
    max-min fairness, and a per-protocol controller re-routes them each
    epoch:

    - {b BGP}: every flow stays on its default path for life.
    - {b MIFO}: each epoch, every flow crossing a congested link whose
      egress AS is MIFO-capable may be deflected there — hop-by-hop, onto
      the RIB alternative with the most spare capacity on its direct
      link, subject to the valley-free deflection rule
      ({!Mifo_core.Policy}) and only when the spare exceeds the flow's
      current rate by the improvement margin.  Deflected flows resume the
      default path once its bottleneck drains below the clear threshold
      (hysteresis).  Spare capacity is consumed greedily within an epoch
      so concurrent deflections do not stampede onto one link.
    - {b MIRO}: a flow whose {e source} AS is MIRO-capable may switch the
      whole flow onto one of the source's negotiated alternative
      end-to-end paths (same local-preference class as the default, via
      MIRO-capable neighbors, at most [miro_cap] of them), choosing the
      candidate with the largest bottleneck spare.

    Everything is deterministic: epochs, greedy orders and tie-breaks are
    fixed, so a (topology, traffic, protocol) triple always reproduces
    the same figure. *)

type protocol =
  | Bgp
  | Mifo of Mifo_core.Deployment.t
  | Miro of { deployment : Mifo_core.Deployment.t; cap : int }

type alt_selection =
  | Greedy_local  (** the paper's rule: spare capacity of the direct link *)
  | Oracle_bottleneck
      (** ablation only: true end-to-end bottleneck spare of each
          candidate — information a real border router cannot have *)

type engine =
  | Incremental
      (** {!Mifo_netsim.Maxmin.Solver}: persistent scratch state, zero
          steady-state allocation, and bit-identical rates to
          [Reference] by construction *)
  | Reference
      (** per-epoch {!Mifo_netsim.Maxmin.allocate} — the original
          implementation, kept as the correctness oracle and the
          benchmark baseline *)

type params = {
  link_capacity : float;  (** bits/s on every inter-AS link (paper: 1 Gbps) *)
  dt : float;  (** epoch length, seconds *)
  congest_threshold : float;  (** utilization at/above which a link is congested *)
  clear_threshold : float;  (** utilization at/below which a default path is drained *)
  improve_margin : float;  (** required spare / current-rate advantage to move *)
  miro_reaction : float;
      (** MIRO's control-plane reaction period, seconds: negotiation-based
          path switching cannot track data-plane congestion epoch by
          epoch, which is the paper's core motivation for moving
          multi-path to the data plane *)
  max_time : float;  (** simulation horizon, seconds *)
  series_interval : float;  (** aggregate-throughput sampling period *)
  alt_selection : alt_selection;
  engine : engine;  (** which max-min implementation allocates rates *)
  skip_clean_epochs : bool;
      (** [Incremental] only: skip the solve on epochs where no arrival,
          completion, path switch, or link failure touched the solver
          since the last solve.  The skipped solve would be bit-identical
          by construction, so results do not depend on this flag — there
          is a test pinning that. *)
}

val default_params : params

type flow_spec = { src : int; dst : int; size_bits : float; start : float }

type flow_stats = {
  spec : flow_spec;
  throughput : float;  (** average: bits transferred / active time *)
  finish : float;
  completed : bool;
  switches : int;  (** path changes (deflections and reverts) — Fig. 9 *)
  used_alt : bool;  (** ever carried on a non-default path — Fig. 8 *)
  alt_time : float;  (** seconds spent on a non-default path *)
  final_path : int array;  (** the AS path the flow ended on *)
  final_rate : float;  (** allocated rate in the flow's last epoch *)
}

type result = {
  flows : flow_stats array;
  offload_fraction : float;  (** fraction of flows that used an alternative path *)
  series : (float * float) array;  (** (time, aggregate throughput in bits/s) *)
  epochs : int;
  solves : int;
      (** max-min solves actually run; < [epochs] when clean epochs were
          skipped *)
  sim_end : float;
}

val run :
  ?params:params ->
  ?failures:(float * (int * int)) list ->
  Mifo_bgp.Routing_table.t ->
  protocol ->
  flow_spec array ->
  result
(** [run table protocol flows].  Flow endpoints must be distinct ASes in
    range; flows are processed in array order for all greedy decisions.

    [failures] is a list of [(time, (u, v))] link failures: at [time] the
    physical link between the adjacent ASes [u] and [v] loses (almost)
    all capacity in both directions.  BGP flows crossing it stall — the
    control plane's repair is far slower than the simulation horizon —
    while MIFO-capable ASes route around the failure at the data plane,
    exactly as they route around congestion.

    @raise Invalid_argument on a bad flow spec or failure spec. *)

val throughputs : result -> float array
(** Per-flow average throughput, the series the paper's CDFs are drawn
    from. *)
