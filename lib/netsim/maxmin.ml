module Heap = Mifo_util.Heap

let dedup_sorted a =
  let n = Array.length a in
  if n <= 1 then a
  else begin
    let out = Array.make n a.(0) in
    let k = ref 1 in
    for i = 1 to n - 1 do
      if a.(i) <> a.(i - 1) then begin
        out.(!k) <- a.(i);
        incr k
      end
    done;
    Array.sub out 0 !k
  end

let allocate ~capacities ~flow_links =
  let nlinks = Array.length capacities in
  let nflows = Array.length flow_links in
  Array.iter
    (fun c -> if c < 0. || Float.is_nan c then invalid_arg "Maxmin: bad capacity")
    capacities;
  (* Per-flow deduplicated link sets; validate ids. *)
  let paths =
    Array.map
      (fun links ->
        Array.iter
          (fun l ->
            if l < 0 || l >= nlinks then invalid_arg "Maxmin: link id out of range")
          links;
        let sorted = Array.copy links in
        Array.sort compare sorted;
        dedup_sorted sorted)
      flow_links
  in
  (* A flow crossing no link is unconstrained: its rate is [infinity],
     explicitly.  (It used to inherit the largest link capacity as an
     artifact of the initial fill — a value that depended on unrelated
     links.)  Every flow with at least one link is frozen by the loop
     below, so the initial fill only ever survives for empty flows. *)
  let rates = Array.make nflows Float.infinity in
  (* Per-link bookkeeping. *)
  let unfrozen = Array.make nlinks 0 in
  let frozen_alloc = Array.make nlinks 0. in
  let members = Array.make nlinks [] in
  Array.iteri
    (fun f links ->
      Array.iter
        (fun l ->
          unfrozen.(l) <- unfrozen.(l) + 1;
          members.(l) <- f :: members.(l))
        links)
    paths;
  let flow_frozen = Array.make nflows false in
  let remaining = ref 0 in
  Array.iter (fun links -> if Array.length links > 0 then incr remaining) paths;
  let level l = (capacities.(l) -. frozen_alloc.(l)) /. float_of_int unfrozen.(l) in
  let heap = Heap.create ~cmp:(fun (a, _) (b, _) -> compare a b) () in
  for l = 0 to nlinks - 1 do
    if unfrozen.(l) > 0 then Heap.push heap (level l, l)
  done;
  while !remaining > 0 do
    match Heap.pop heap with
    | None ->
      (* cannot happen while flows remain: every unfrozen flow crosses a
         link that is still in the heap *)
      assert false
    | Some (key, l) ->
      if unfrozen.(l) > 0 then begin
        let current = level l in
        if current > key +. (1e-9 *. Float.max 1. current) then
          (* stale key: the link's level grew since it was pushed *)
          Heap.push heap (current, l)
        else begin
          (* [l] is the next bottleneck: freeze everything unfrozen on it *)
          let fair = Float.max 0. current in
          List.iter
            (fun f ->
              if not flow_frozen.(f) then begin
                flow_frozen.(f) <- true;
                rates.(f) <- fair;
                decr remaining;
                Array.iter
                  (fun m ->
                    frozen_alloc.(m) <- frozen_alloc.(m) +. fair;
                    unfrozen.(m) <- unfrozen.(m) - 1)
                  paths.(f)
              end)
            members.(l)
        end
      end
  done;
  rates

let link_allocation ~capacities ~flow_links ~rates =
  let alloc = Array.make (Array.length capacities) 0. in
  Array.iteri
    (fun f links ->
      let sorted = Array.copy links in
      Array.sort compare sorted;
      let deduped = dedup_sorted sorted in
      Array.iter (fun l -> alloc.(l) <- alloc.(l) +. rates.(f)) deduped)
    flow_links;
  alloc
