module Heap = Mifo_util.Heap

let dedup_sorted a =
  let n = Array.length a in
  if n <= 1 then a
  else begin
    let out = Array.make n a.(0) in
    let k = ref 1 in
    for i = 1 to n - 1 do
      if a.(i) <> a.(i - 1) then begin
        out.(!k) <- a.(i);
        incr k
      end
    done;
    Array.sub out 0 !k
  end

let dedup_links links =
  let sorted = Array.copy links in
  Array.sort Int.compare sorted;
  dedup_sorted sorted

let allocate ~capacities ~flow_links =
  let nlinks = Array.length capacities in
  let nflows = Array.length flow_links in
  Array.iter
    (fun c -> if c < 0. || Float.is_nan c then invalid_arg "Maxmin: bad capacity")
    capacities;
  (* Per-flow deduplicated link sets; validate ids. *)
  let paths =
    Array.map
      (fun links ->
        Array.iter
          (fun l ->
            if l < 0 || l >= nlinks then invalid_arg "Maxmin: link id out of range")
          links;
        dedup_links links)
      flow_links
  in
  (* A flow crossing no link is unconstrained: its rate is [infinity],
     explicitly.  (It used to inherit the largest link capacity as an
     artifact of the initial fill — a value that depended on unrelated
     links.)  Every flow with at least one link is frozen by the loop
     below, so the initial fill only ever survives for empty flows. *)
  let rates = Array.make nflows Float.infinity in
  (* Per-link bookkeeping. *)
  let unfrozen = Array.make nlinks 0 in
  let frozen_alloc = Array.make nlinks 0. in
  let members = Array.make nlinks [] in
  Array.iteri
    (fun f links ->
      Array.iter
        (fun l ->
          unfrozen.(l) <- unfrozen.(l) + 1;
          members.(l) <- f :: members.(l))
        links)
    paths;
  let flow_frozen = Array.make nflows false in
  let remaining = ref 0 in
  Array.iter (fun links -> if Array.length links > 0 then incr remaining) paths;
  let level l = (capacities.(l) -. frozen_alloc.(l)) /. float_of_int unfrozen.(l) in
  let heap = Heap.create ~cmp:(fun (a, _) (b, _) -> Float.compare a b) () in
  for l = 0 to nlinks - 1 do
    if unfrozen.(l) > 0 then Heap.push heap (level l, l)
  done;
  while !remaining > 0 do
    match Heap.pop heap with
    | None ->
      (* cannot happen while flows remain: every unfrozen flow crosses a
         link that is still in the heap *)
      assert false
    | Some (key, l) ->
      if unfrozen.(l) > 0 then begin
        let current = level l in
        if current > key +. (1e-9 *. Float.max 1. current) then
          (* stale key: the link's level grew since it was pushed *)
          Heap.push heap (current, l)
        else begin
          (* [l] is the next bottleneck: freeze everything unfrozen on it *)
          let fair = Float.max 0. current in
          List.iter
            (fun f ->
              if not flow_frozen.(f) then begin
                flow_frozen.(f) <- true;
                rates.(f) <- fair;
                decr remaining;
                Array.iter
                  (fun m ->
                    frozen_alloc.(m) <- frozen_alloc.(m) +. fair;
                    unfrozen.(m) <- unfrozen.(m) - 1)
                  paths.(f)
              end)
            members.(l)
        end
      end
  done;
  rates

let link_allocation ~capacities ~flow_links ~rates =
  let alloc = Array.make (Array.length capacities) 0. in
  Array.iteri
    (fun f links -> Array.iter (fun l -> alloc.(l) <- alloc.(l) +. rates.(f)) links)
    flow_links;
  alloc

(* ------------------------------------------------------------------ *)
(* Persistent incremental solver.

   Same waterfilling as [allocate] — same float expressions evaluated in
   an order that yields bit-identical rates — but over state that
   persists across calls: flows register their pre-deduplicated link
   arrays once, every per-link/per-flow scratch array is preallocated
   and reused, link membership is a CSR pair of int arrays rebuilt
   in-place each solve, and the lazy min-heap is a flat (float array,
   int array) pair instead of boxed tuples under a closure comparator.
   A solve allocates nothing once the arenas have reached their
   high-water marks. *)

module Solver = struct
  type t = {
    nlinks : int;
    capacities : float array;
    (* per-flow-slot state; arrays grow geometrically with [register] *)
    mutable links : int array array;  (* registered duplicate-free link ids *)
    mutable slot_used : bool array;
    mutable rates : float array;
    mutable frozen : bool array;
    mutable free : int array;  (* freelist stack of released slots *)
    mutable free_top : int;
    mutable high : int;  (* slots ever handed out *)
    (* per-link scratch, all length [nlinks] (+1 for the CSR starts) *)
    unfrozen : int array;
    frozen_alloc : float array;
    alloc : float array;
    member_start : int array;
    cursor : int array;
    mutable member_flow : int array;  (* CSR payload, grown on demand *)
    (* flat lazy min-heap of (level, link); capacity [nlinks] is enough:
       each pop re-pushes at most one stale entry *)
    heap_key : float array;
    heap_link : int array;
    mutable heap_size : int;
    mutable solves : int;
  }

  let no_links : int array array = [||]

  let create ?(capacity = 0.) ~nlinks () =
    if nlinks < 0 then invalid_arg "Maxmin.Solver.create: negative nlinks";
    if capacity < 0. || Float.is_nan capacity then
      invalid_arg "Maxmin.Solver.create: bad capacity";
    {
      nlinks;
      capacities = Array.make nlinks capacity;
      links = no_links;
      slot_used = [||];
      rates = [||];
      frozen = [||];
      free = [||];
      free_top = 0;
      high = 0;
      unfrozen = Array.make nlinks 0;
      frozen_alloc = Array.make nlinks 0.;
      alloc = Array.make nlinks 0.;
      member_start = Array.make (nlinks + 1) 0;
      cursor = Array.make nlinks 0;
      member_flow = [||];
      heap_key = Array.make nlinks 0.;
      heap_link = Array.make nlinks 0;
      heap_size = 0;
      solves = 0;
    }

  let nlinks t = t.nlinks
  let capacity t l = t.capacities.(l)

  let set_capacity t l c =
    if c < 0. || Float.is_nan c then invalid_arg "Maxmin.Solver: bad capacity";
    t.capacities.(l) <- c

  let validate_links t links =
    let n = Array.length links in
    for i = 0 to n - 1 do
      let l = links.(i) in
      if l < 0 || l >= t.nlinks then invalid_arg "Maxmin.Solver: link id out of range";
      if i > 0 && l <= links.(i - 1) then
        invalid_arg "Maxmin.Solver: links must be sorted and duplicate-free"
    done

  let grow_slots t =
    let cap = Array.length t.slot_used in
    let ncap = Stdlib.max 16 (2 * cap) in
    let g mk a =
      let na = mk ncap in
      Array.blit a 0 na 0 cap;
      na
    in
    t.links <- g (fun n -> Array.make n [||]) t.links;
    t.slot_used <- g (fun n -> Array.make n false) t.slot_used;
    t.rates <- g (fun n -> Array.make n Float.infinity) t.rates;
    t.frozen <- g (fun n -> Array.make n false) t.frozen;
    t.free <- g (fun n -> Array.make n 0) t.free

  let register t links =
    validate_links t links;
    let slot =
      if t.free_top > 0 then begin
        t.free_top <- t.free_top - 1;
        t.free.(t.free_top)
      end
      else begin
        if t.high = Array.length t.slot_used then grow_slots t;
        let s = t.high in
        t.high <- t.high + 1;
        s
      end
    in
    t.links.(slot) <- links;
    t.slot_used.(slot) <- true;
    t.rates.(slot) <- Float.infinity;
    slot

  let check_slot t slot =
    if slot < 0 || slot >= t.high || not t.slot_used.(slot) then
      invalid_arg "Maxmin.Solver: unknown flow slot"

  let set_links t slot links =
    check_slot t slot;
    validate_links t links;
    t.links.(slot) <- links

  let unregister t slot =
    check_slot t slot;
    t.slot_used.(slot) <- false;
    t.links.(slot) <- [||];
    t.free.(t.free_top) <- slot;
    t.free_top <- t.free_top + 1

  (* Flat heap: exactly [Mifo_util.Heap]'s sift rules specialized to a
     float key, so the pop sequence — and therefore every rounding —
     matches the reference oracle bit for bit. *)

  let heap_push t key link =
    let i = ref t.heap_size in
    t.heap_size <- t.heap_size + 1;
    t.heap_key.(!i) <- key;
    t.heap_link.(!i) <- link;
    let continue = ref true in
    while !continue && !i > 0 do
      let parent = (!i - 1) / 2 in
      if t.heap_key.(!i) < t.heap_key.(parent) then begin
        let k = t.heap_key.(!i) and l = t.heap_link.(!i) in
        t.heap_key.(!i) <- t.heap_key.(parent);
        t.heap_link.(!i) <- t.heap_link.(parent);
        t.heap_key.(parent) <- k;
        t.heap_link.(parent) <- l;
        i := parent
      end
      else continue := false
    done

  let rec heap_sift_down t i =
    let l = (2 * i) + 1 and r = (2 * i) + 2 in
    let smallest = ref i in
    if l < t.heap_size && t.heap_key.(l) < t.heap_key.(!smallest) then smallest := l;
    if r < t.heap_size && t.heap_key.(r) < t.heap_key.(!smallest) then smallest := r;
    if !smallest <> i then begin
      let k = t.heap_key.(i) and lk = t.heap_link.(i) in
      t.heap_key.(i) <- t.heap_key.(!smallest);
      t.heap_link.(i) <- t.heap_link.(!smallest);
      t.heap_key.(!smallest) <- k;
      t.heap_link.(!smallest) <- lk;
      heap_sift_down t !smallest
    end

  (* precondition: heap non-empty; returns via the two refs to stay
     allocation-free *)
  let heap_pop t ~key ~link =
    key := t.heap_key.(0);
    link := t.heap_link.(0);
    t.heap_size <- t.heap_size - 1;
    if t.heap_size > 0 then begin
      t.heap_key.(0) <- t.heap_key.(t.heap_size);
      t.heap_link.(0) <- t.heap_link.(t.heap_size);
      heap_sift_down t 0
    end

  let solve t active n =
    if n < 0 || n > Array.length active then invalid_arg "Maxmin.Solver.solve";
    let nlinks = t.nlinks in
    Array.fill t.unfrozen 0 nlinks 0;
    Array.fill t.frozen_alloc 0 nlinks 0.;
    Array.fill t.alloc 0 nlinks 0.;
    (* membership counts, flow resets, and the CSR size in one pass *)
    let total = ref 0 in
    let remaining = ref 0 in
    for i = 0 to n - 1 do
      let s = active.(i) in
      check_slot t s;
      t.rates.(s) <- Float.infinity;
      t.frozen.(s) <- false;
      let ls = t.links.(s) in
      let len = Array.length ls in
      if len > 0 then incr remaining;
      total := !total + len;
      for k = 0 to len - 1 do
        let l = ls.(k) in
        t.unfrozen.(l) <- t.unfrozen.(l) + 1
      done
    done;
    if Array.length t.member_flow < !total then
      t.member_flow <- Array.make (Stdlib.max !total (2 * Array.length t.member_flow)) 0;
    (* CSR starts (prefix sums) and fill cursors *)
    let acc = ref 0 in
    for l = 0 to nlinks - 1 do
      t.member_start.(l) <- !acc;
      t.cursor.(l) <- !acc;
      acc := !acc + t.unfrozen.(l)
    done;
    t.member_start.(nlinks) <- !acc;
    for i = 0 to n - 1 do
      let s = active.(i) in
      let ls = t.links.(s) in
      for k = 0 to Array.length ls - 1 do
        let l = ls.(k) in
        t.member_flow.(t.cursor.(l)) <- s;
        t.cursor.(l) <- t.cursor.(l) + 1
      done
    done;
    (* waterfilling, identical to the reference *)
    let level l =
      (t.capacities.(l) -. t.frozen_alloc.(l)) /. float_of_int t.unfrozen.(l)
    in
    t.heap_size <- 0;
    for l = 0 to nlinks - 1 do
      if t.unfrozen.(l) > 0 then heap_push t (level l) l
    done;
    let key = ref 0. and link = ref 0 in
    while !remaining > 0 do
      (* cannot be empty while flows remain: every unfrozen flow crosses
         a link that is still in the heap *)
      assert (t.heap_size > 0);
      heap_pop t ~key ~link;
      let l = !link in
      if t.unfrozen.(l) > 0 then begin
        let current = level l in
        if current > !key +. (1e-9 *. Float.max 1. current) then
          (* stale key: the link's level grew since it was pushed *)
          heap_push t current l
        else begin
          let fair = Float.max 0. current in
          for j = t.member_start.(l) to t.member_start.(l + 1) - 1 do
            let s = t.member_flow.(j) in
            if not t.frozen.(s) then begin
              t.frozen.(s) <- true;
              t.rates.(s) <- fair;
              decr remaining;
              let ls = t.links.(s) in
              for k = 0 to Array.length ls - 1 do
                let m = ls.(k) in
                t.frozen_alloc.(m) <- t.frozen_alloc.(m) +. fair;
                t.unfrozen.(m) <- t.unfrozen.(m) - 1
              done
            end
          done
        end
      end
    done;
    (* link allocation, folded into the same pass structure as the
       standalone [link_allocation]: flows in caller order, so the
       per-link sums accumulate in the same order and round identically *)
    for i = 0 to n - 1 do
      let s = active.(i) in
      let r = t.rates.(s) in
      let ls = t.links.(s) in
      for k = 0 to Array.length ls - 1 do
        let l = ls.(k) in
        t.alloc.(l) <- t.alloc.(l) +. r
      done
    done;
    t.solves <- t.solves + 1

  let rate t slot =
    check_slot t slot;
    t.rates.(slot)

  let link_allocs t = t.alloc
  let solves t = t.solves
end
