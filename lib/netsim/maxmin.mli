(** Max-min fair bandwidth allocation (progressive filling).

    The flow-level simulator models long-lived TCP flows sharing links as
    a max-min fair allocation, the standard fluid abstraction: all flow
    rates rise together until a link saturates, the flows bottlenecked
    there freeze at the fair share, and the rest keep rising.

    The implementation keeps a lazy min-heap of per-link saturation
    levels.  A link's level (cap - frozen) / unfrozen only grows as flows
    freeze, so a popped stale key can simply be re-pushed; the run time is
    O((L + sum of path lengths) log L).

    Two implementations share that algorithm:

    - {!allocate} is the stateless reference: it allocates its scratch
      per call and is the oracle the tests compare against.
    - {!Solver} is the incremental engine the simulator's hot loop uses:
      flows register their link sets once, every scratch array persists
      across solves, and a solve allocates nothing at steady state.  Its
      rates are bit-identical to {!allocate} by construction (same float
      expressions, same heap pop order — pinned by a QCheck equivalence
      property). *)

val dedup_links : int array -> int array
(** Canonical link set of a path: sorted ascending, duplicates removed.
    Returns a fresh array; the input is untouched. *)

val allocate :
  capacities:float array ->
  flow_links:int array array ->
  float array
(** [allocate ~capacities ~flow_links] returns the max-min rate of each
    flow.  [flow_links.(f)] lists the link ids flow [f] crosses.  An
    empty link set means the flow is unconstrained and its rate is
    [Float.infinity] — the caller decides what cap to apply (the flow
    simulator never produces such flows: every flow crosses at least
    its access links).  Duplicate link ids within one flow are allowed
    and counted once.

    @raise Invalid_argument on negative capacities or out-of-range link
    ids. *)

val link_allocation :
  capacities:float array ->
  flow_links:int array array ->
  rates:float array ->
  float array
(** Total allocated bandwidth per link under the given rates — the
    utilization view the adaptive controllers consume.  [flow_links.(f)]
    must be duplicate-free (canonicalize with {!dedup_links} if unsure;
    simulator paths are simple, so their link sets already are): each
    occurrence of a link id adds [rates.(f)] once.  This function no
    longer re-sorts or re-dedups per call — that hidden O(L log L) per
    flow per epoch was pure waste on the hot path. *)

(** Persistent incremental solver: same waterfilling as {!allocate},
    zero allocation per solve at steady state.

    Intended use: [create] once per simulation, [register] each flow's
    {!dedup_links}-canonical link set at arrival, [set_links] on a path
    switch, [unregister] at completion, [set_capacity] on failure, and
    call [solve] each epoch.  [solve] also computes the per-link
    allocation ({!link_allocation} folded into the same pass), exposed
    via {!val-link_allocs}. *)
module Solver : sig
  type t

  val create : ?capacity:float -> nlinks:int -> unit -> t
  (** [create ~nlinks ()] makes a solver for links [0 .. nlinks - 1],
      each with initial capacity [capacity] (default [0.]).

      @raise Invalid_argument on negative [nlinks] or a negative or NaN
      [capacity]. *)

  val nlinks : t -> int
  val capacity : t -> int -> float

  val set_capacity : t -> int -> float -> unit
  (** @raise Invalid_argument on a negative or NaN capacity. *)

  val register : t -> int array -> int
  (** [register t links] admits a flow crossing [links] and returns its
      slot handle.  [links] must be sorted ascending and duplicate-free
      ({!dedup_links} output); the array is kept by reference — do not
      mutate it while registered.

      @raise Invalid_argument on unsorted, duplicated, or out-of-range
      link ids. *)

  val set_links : t -> int -> int array -> unit
  (** Replace a registered flow's link set (path switch).  Same
      preconditions as {!register}. *)

  val unregister : t -> int -> unit
  (** Release a slot (flow completed).  The slot id may be reused by a
      later {!register}. *)

  val solve : t -> int array -> int -> unit
  (** [solve t active n] runs waterfilling over the flows
      [active.(0 .. n - 1)] (slot handles, caller's order).  Flow order
      determines the per-link allocation accumulation order, so pass the
      same order the reference path would use.  Rates of slots not in
      [active] are stale after the call; reading them is a caller bug.

      @raise Invalid_argument on a bad length or an unknown slot. *)

  val rate : t -> int -> float
  (** Rate of a slot as of the last {!solve} ([Float.infinity] for a
      flow with an empty link set). *)

  val link_allocs : t -> float array
  (** Per-link allocated bandwidth as of the last {!solve}.  Returns the
      solver's internal array — valid until the next {!solve}, and not
      to be mutated. *)

  val solves : t -> int
  (** Number of {!solve} calls so far (skip-rate accounting). *)
end
