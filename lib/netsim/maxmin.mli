(** Max-min fair bandwidth allocation (progressive filling).

    The flow-level simulator models long-lived TCP flows sharing links as
    a max-min fair allocation, the standard fluid abstraction: all flow
    rates rise together until a link saturates, the flows bottlenecked
    there freeze at the fair share, and the rest keep rising.

    The implementation keeps a lazy min-heap of per-link saturation
    levels.  A link's level (cap - frozen) / unfrozen only grows as flows
    freeze, so a popped stale key can simply be re-pushed; the run time is
    O((L + sum of path lengths) log L). *)

val allocate :
  capacities:float array ->
  flow_links:int array array ->
  float array
(** [allocate ~capacities ~flow_links] returns the max-min rate of each
    flow.  [flow_links.(f)] lists the link ids flow [f] crosses.  An
    empty link set means the flow is unconstrained and its rate is
    [Float.infinity] — the caller decides what cap to apply (the flow
    simulator never produces such flows: every flow crosses at least
    its access links).  Duplicate link ids within one flow are allowed
    and counted once.

    @raise Invalid_argument on negative capacities or out-of-range link
    ids. *)

val link_allocation :
  capacities:float array ->
  flow_links:int array array ->
  rates:float array ->
  float array
(** Total allocated bandwidth per link under the given rates — the
    utilization view the adaptive controllers consume. *)
