module Prefix = Mifo_bgp.Prefix
module Fib = Mifo_core.Fib
module Engine = Mifo_core.Engine
module Daemon = Mifo_core.Daemon
module Packet = Mifo_core.Packet
module Vec = Mifo_util.Vec
module Obs = Mifo_util.Obs

type node_id = int

type config = {
  queue_bits : int;
  daemon_period : float;
  daemon_config : Daemon.config;
  engine_congest_ratio : float;
  mss_bits : int;
  ack_bits : int;
  series_interval : float;
  tag_check : bool;
  ibgp_encap : bool;
  eventq_engine : Eventq.engine;
  packet_trains : bool;
}

let default_config =
  {
    queue_bits = 1_000_000;
    daemon_period = 0.005;
    daemon_config = Daemon.default_config;
    engine_congest_ratio = 0.5;
    mss_bits = 8_000;
    ack_bits = 320;
    series_interval = 0.1;
    tag_check = true;
    ibgp_encap = true;
    eventq_engine = Eventq.Wheel;
    packet_trains = true;
  }

(* All-float on purpose: OCaml stores such records flat, so the per-hop
   [next_free] / [bits_carried] updates are in-place stores instead of
   fresh boxed floats behind a write barrier. *)
type link = {
  rate : float;
  delay : float;
  queue_limit_f : float;
  mutable next_free : float;
  mutable bits_carried : float;
  mutable carried_at_epoch : float;  (* snapshot at last daemon tick *)
}

(* [event] is defined up here so each port can cache its own [Train]
   event: trains re-enter the queue every time they are preempted, and
   the event payload is identical each time. *)
type event =
  | Arrive of { node : node_id; port : int; packet : Packet.t }
  | Train of { node : node_id; port : int }
      (* the pending departures of [port] on [node]; keyed in the queue
         by the head element's (time, seq) *)
  | Start_flow of int
  | Timeout of { host : node_id; flow : int; gen : int }
  | Emit of { flow : int }  (* next burst of an open-loop UDP source *)
  | Daemon_tick

type port = {
  link : link;
  peer : node_id;
  peer_port : int;
  kind : Engine.port_kind;
  (* Per-link packet train: in-flight departures on this port, FIFO and
     therefore sorted by (arrival time, queue seq) — serialization keeps
     per-link arrival times non-decreasing and seqs are allocated in
     append order.  The event queue holds at most ONE entry per port
     ([tr_live]), keyed by the head element, instead of one per packet;
     see [train_drain]. *)
  tr_time : float Vec.t;
  tr_seq : int Vec.t;
  tr_pkt : Packet.t Vec.t;
  mutable tr_head : int;
  mutable tr_live : bool;
  tr_ev : event;  (* this port's [Train], allocated once *)
}

type flow_rec = {
  id : int;
  src_host : node_id;
  dst_host : node_id;
  src_addr : Prefix.addr;
  dst_addr : Prefix.addr;
  bytes : int;
  start : float;
  mutable finish : float option;
}

type sender = {
  frec : flow_rec;
  tcp : Tcp.Sender.t;
  send_times : float array;
      (* first-transmission time per segment, indexed by seq;
         [neg_infinity] until first sent, NaN once retransmitted (Karn's
         rule disables the RTT sample).  A flat array instead of an
         (int, float) Hashtbl: seq ids are dense 0..total-1, and this
         sits on the per-segment hot path. *)
  (* Lazy RTO timer.  Re-arming on every ACK used to schedule a fresh
     Timeout event each time, leaving a trail of dead events in the
     queue (one per ACK, each living a full RTO).  Instead the logical
     deadline is just recorded here, and a queue event exists only for
     the earliest outstanding fire time [t_min]; an event firing before
     [t_deadline] is stale and re-schedules itself at the deadline.  The
     timeout still takes effect at exactly the eager scheme's time: the
     deadline of the latest arm. *)
  mutable t_gen : int;  (* Tcp timer generation of the latest arm *)
  mutable t_deadline : float;  (* logical fire time; infinity = unarmed *)
  mutable t_min : float;  (* earliest queued Timeout; infinity = none *)
}

type router = {
  as_id : int;
  r_fib : Fib.t;
  mutable r_env : Engine.env option;
      (* the engine environment for this router, built on first packet;
         its closures capture only stable state (the sim and this
         record), so rebuilding it per packet — as [handle_router] used
         to — was four closure allocations per hop for nothing *)
  mutable chooser : (Prefix.t -> Fib.entry -> int option) option;
  mutable chooser_k : (Prefix.t -> Fib.entry -> int list) option;
      (* ranked-set chooser; when present it wins over [chooser] and the
         daemon tick runs [Daemon.epoch_ranked] *)
  last_egress : int Vec.t;  (* flow -> last egress port; -1 = none yet *)
  switches : int Vec.t;  (* flow -> egress change count *)
  ibgp_peers : (int, int) Hashtbl.t;
      (* peer router (node id named in the port's Ibgp kind) -> local
         port carrying that session; the engine's route_to_peer.  Stays
         a hashtable: consulted only on encapsulation decisions, keyed
         by sparse node ids. *)
}

(* Open-loop (UDP-style) source: the testbed's line-rate probe traffic.
   No ack clock and no retransmission — the source just streams its
   segments back-to-back in bursts of [u_burst], self-paced off the
   host link's [next_free] so the next [Emit] fires exactly when the
   last burst has serialized. *)
type udp_sender = {
  u_frec : flow_rec;
  u_total : int;
  u_burst : int;
  mutable u_next_seg : int;
}

type host = {
  addr : Prefix.addr;
  senders : sender option Vec.t;  (* flow id -> sender, on the src host *)
  receivers : Tcp.Receiver.t option Vec.t;  (* flow id -> receiver, dst host *)
  udp_tx : udp_sender option Vec.t;  (* flow id -> UDP source, src host *)
  udp_rx : int Vec.t;
      (* flow id -> delivered segment count on the dst host; -1 marks
         "not a UDP flow terminating here" *)
}

type node_kind = Router of router | Host of host
type node = { kind : node_kind; ports : port Vec.t }

type counters = {
  delivered_packets : int;
  dropped_queue : int;
  dropped_ttl : int;
  dropped_valley : int;
  dropped_no_route : int;
  encapsulated : int;
  deflected : int;
}

type t = {
  cfg : config;
  nodes : node Vec.t;
  flows : flow_rec Vec.t;
  events : event Eventq.t;
  clk : float array;
      (* the simulation clock IS the event queue's {!Eventq.time_cell}:
         every successful pop writes the popped time into [clk.(0)]
         in place, so advancing time costs a flat store and reading it
         never goes through a boxed float *)
  mutable events_processed : int;
  mutable delivered_packets : int;
  mutable dropped_queue : int;
  mutable dropped_ttl : int;
  mutable dropped_valley : int;
  mutable dropped_no_route : int;
  mutable encapsulated : int;
  mutable deflected : int;
  goodput_buckets : float Vec.t;  (* bits per series_interval bucket *)
  mutable daemon_scheduled : bool;
  mutable last_epoch_time : float;
  mutable on_complete : (int -> unit) option;
  mutable tracer : (float -> int -> Packet.t -> Engine.action -> unit) option;
  batch_counts : int array;
      (* per-sim train batch-size tally, indexed by exact batch size
         (1..128); flushed into the shared histogram at daemon ticks so
         the per-batch hot path touches no atomics *)
}

let create ?(config = default_config) () =
  let events = Eventq.create ~engine:config.eventq_engine () in
  {
    cfg = config;
    nodes = Vec.create ();
    flows = Vec.create ();
    events;
    clk = Eventq.time_cell events;
    events_processed = 0;
    delivered_packets = 0;
    dropped_queue = 0;
    dropped_ttl = 0;
    dropped_valley = 0;
    dropped_no_route = 0;
    encapsulated = 0;
    deflected = 0;
    goodput_buckets = Vec.create ();
    daemon_scheduled = false;
    last_epoch_time = 0.;
    on_complete = None;
    tracer = None;
    batch_counts = Array.make 129 0;
  }

let config t = t.cfg
let now t = t.clk.(0)
let events_processed t = t.events_processed

(* Flow-indexed flat tables: [Vec.ensure]-grown, sentinel-initialized. *)
let slot v i = if i >= 0 && i < Vec.length v then Vec.get v i else None

(* Process-wide observability mirrors of the per-sim counters, plus the
   queue-depth view only the transmit path can see. *)
let c_delivered = Obs.counter "packetsim.delivered"
let c_drop_queue = Obs.counter "packetsim.dropped.queue"
let c_drop_ttl = Obs.counter "packetsim.dropped.ttl"
let c_drop_valley = Obs.counter "packetsim.dropped.valley"
let c_drop_no_route = Obs.counter "packetsim.dropped.no_route"
let c_deflected = Obs.counter "packetsim.deflected"
let c_encapsulated = Obs.counter "packetsim.encapsulated"
let h_queue_ratio = Obs.histogram "packetsim.queue_ratio"

let h_train_batch =
  Obs.histogram ~bounds:[| 1.; 2.; 4.; 8.; 16.; 32.; 64.; 128. |]
    "packetsim.train_batch"

(* Event-queue health, sampled at daemon ticks (and at end of run). *)
let g_peak_len = Obs.gauge "eventq.peak_len"
let g_cascades = Obs.gauge "eventq.wheel.cascades"
let g_ready = Obs.gauge "eventq.wheel.ready"

let g_levels =
  Array.init Mifo_util.Wheel.levels (fun l ->
      Obs.gauge (Printf.sprintf "eventq.wheel.level%d.occupancy" l))

let add_router t ~as_id =
  let r =
    {
      as_id;
      r_fib = Fib.create ();
      r_env = None;
      chooser = None;
      chooser_k = None;
      last_egress = Vec.create ();
      switches = Vec.create ();
      ibgp_peers = Hashtbl.create 8;
    }
  in
  Vec.push t.nodes { kind = Router r; ports = Vec.create () };
  Vec.length t.nodes - 1

let add_host t ~addr =
  let h =
    {
      addr;
      senders = Vec.create ();
      receivers = Vec.create ();
      udp_tx = Vec.create ();
      udp_rx = Vec.create ();
    }
  in
  Vec.push t.nodes { kind = Host h; ports = Vec.create () };
  Vec.length t.nodes - 1

let node t id = Vec.get t.nodes id

let router_exn t id =
  match (node t id).kind with
  | Router r -> r
  | Host _ -> invalid_arg "Packetsim: expected a router"

let host_exn t id =
  match (node t id).kind with
  | Host h -> h
  | Router _ -> invalid_arg "Packetsim: expected a host"

let connect t ~a ~b ~kind_ab ~kind_ba ~rate ?(delay = 50e-6) ?queue_bits () =
  if rate <= 0. then invalid_arg "Packetsim.connect: rate must be positive";
  let queue_limit = match queue_bits with Some q -> q | None -> t.cfg.queue_bits in
  let mk () =
    {
      rate;
      delay;
      queue_limit_f = float_of_int queue_limit;
      next_free = 0.;
      bits_carried = 0.;
      carried_at_epoch = 0.;
    }
  in
  let mk_port link self self_port peer peer_port kind =
    {
      link;
      peer;
      peer_port;
      kind;
      tr_time = Vec.create ();
      tr_seq = Vec.create ();
      tr_pkt = Vec.create ();
      tr_head = 0;
      tr_live = false;
      tr_ev = Train { node = self; port = self_port };
    }
  in
  let na = node t a and nb = node t b in
  let pa = Vec.length na.ports and pb = Vec.length nb.ports in
  Vec.push na.ports (mk_port (mk ()) a pa b pb kind_ab);
  Vec.push nb.ports (mk_port (mk ()) b pb a pa kind_ba);
  let note_ibgp n kind p =
    match (n.kind, kind) with
    | Router r, Engine.Ibgp { peer_router } -> Hashtbl.replace r.ibgp_peers peer_router p
    | _ -> ()
  in
  note_ibgp na kind_ab pa;
  note_ibgp nb kind_ba pb;
  (pa, pb)

let fib t id = (router_exn t id).r_fib
let set_alt_chooser t id chooser = (router_exn t id).chooser <- Some chooser
let set_ranked_chooser t id chooser = (router_exn t id).chooser_k <- Some chooser

let port t id p = Vec.get (node t id).ports p

(* Queue occupancy of a link right now: the backlog implied by
   next_free.  The clamp is a bare [if], not [Float.max]: an
   out-of-line float call boxes both arguments and the result, and
   this runs several times per simulated hop. *)
let queue_bits_now t link =
  let b = (link.next_free -. t.clk.(0)) *. link.rate in
  if b > 0. then b else 0.

let queue_ratio t link = queue_bits_now t link /. link.queue_limit_f

let spare_capacity t id p =
  let link = (port t id p).link in
  let elapsed = Float.max t.cfg.daemon_period (t.clk.(0) -. t.last_epoch_time) in
  let used = (link.bits_carried -. link.carried_at_epoch) /. elapsed in
  Float.max 0. (link.rate -. used)

(* Queue-health observability, sampled at daemon ticks and at end of
   run rather than on every transmit: an unbiased time sample of each
   directed link's occupancy, plus the event-queue gauges and the flush
   of the per-sim train batch tally.  Keeping the histogram updates off
   the transmit path matters — [Obs.observe] is an atomic CAS retry
   loop on a boxed float, several hundred ns per call at millions of
   events/sec. *)
let sample_queue_health t =
  for id = 0 to Vec.length t.nodes - 1 do
    Vec.iter
      (fun p -> Obs.observe h_queue_ratio (queue_ratio t p.link))
      (Vec.get t.nodes id).ports
  done;
  let bc = t.batch_counts in
  for size = 1 to Array.length bc - 1 do
    let n = bc.(size) in
    if n > 0 then begin
      Obs.observe_n h_train_batch (float_of_int size) n;
      bc.(size) <- 0
    end
  done;
  Obs.set_gauge g_peak_len (float_of_int (Eventq.peak_length t.events));
  match Eventq.wheel_stats t.events with
  | None -> ()
  | Some st ->
    Obs.set_gauge g_cascades (float_of_int st.Mifo_util.Wheel.cascades);
    Obs.set_gauge g_ready (float_of_int st.Mifo_util.Wheel.ready);
    Array.iteri
      (fun l n -> Obs.set_gauge g_levels.(l) (float_of_int n))
      st.Mifo_util.Wheel.occupancy

(* Transmit a packet out of a node's port: tail-drop FIFO queue, then
   store-and-forward serialization and propagation.

   With packet trains the arrival is appended to the port's train
   instead of becoming its own queue entry; the element still claims a
   queue seq via [alloc_seq] at exactly the point [Eventq.schedule]
   would have, so the global (time, seq) event order — and therefore
   the whole simulation — is bit-identical to per-packet scheduling. *)
let transmit t src_node p packet =
  let pt = port t src_node p in
  let link = pt.link in
  let wire = float_of_int (Packet.wire_size_bits packet) in
  if queue_bits_now t link +. wire > link.queue_limit_f then begin
    t.dropped_queue <- t.dropped_queue + 1;
    Obs.incr c_drop_queue;
    if Obs.trace_enabled () then
      Obs.event ~t:t.clk.(0) "queue_drop"
        [
          ("node", Obs.Int src_node);
          ("port", Obs.Int p);
          ("flow", Obs.Int packet.Packet.flow);
        ]
  end
  else begin
    let now = t.clk.(0) in
    let start = if now > link.next_free then now else link.next_free in
    let done_tx = start +. (wire /. link.rate) in
    link.next_free <- done_tx;
    link.bits_carried <- link.bits_carried +. wire;
    let arrival = done_tx +. link.delay in
    if t.cfg.packet_trains then begin
      let seq = Eventq.alloc_seq t.events in
      Vec.push pt.tr_time arrival;
      Vec.push pt.tr_seq seq;
      Vec.push pt.tr_pkt packet;
      if not pt.tr_live then begin
        pt.tr_live <- true;
        Eventq.schedule_pre t.events ~time:arrival ~seq pt.tr_ev
      end
      (* else: the queued entry is keyed by the train's head, whose
         (time, seq) is <= ours — FIFO order per link *)
    end
    else
      Eventq.schedule t.events ~time:arrival
        (Arrive { node = pt.peer; port = pt.peer_port; packet })
  end

let record_goodput t bits =
  let bucket = int_of_float (t.clk.(0) /. t.cfg.series_interval) in
  while Vec.length t.goodput_buckets <= bucket do
    Vec.push t.goodput_buckets 0.
  done;
  Vec.set t.goodput_buckets bucket (Vec.get t.goodput_buckets bucket +. bits)

let engine_env t id r =
  {
    Engine.router_id = id;
    fib = r.r_fib;
    port_kind = (fun p -> (port t id p).kind);
    is_congested =
      (fun p -> queue_ratio t (port t id p).link >= t.cfg.engine_congest_ratio);
    next_hop_router =
      (fun p ->
        let pt = port t id p in
        match (node t pt.peer).kind with Router _ -> Some pt.peer | Host _ -> None);
    route_to_peer = (fun peer -> Hashtbl.find_opt r.ibgp_peers peer);
  }

let note_egress r flow p =
  Vec.ensure r.last_egress (flow + 1) (-1);
  let prev = Vec.get r.last_egress flow in
  if prev <> p then begin
    Vec.set r.last_egress flow p;
    if prev >= 0 then begin
      Vec.ensure r.switches (flow + 1) 0;
      Vec.set r.switches flow (Vec.get r.switches flow + 1)
    end
  end

let handle_router t id r ~port:ingress packet =
  let env =
    match r.r_env with
    | Some env -> env
    | None ->
      let env = engine_env t id r in
      r.r_env <- Some env;
      env
  in
  let action =
    Engine.forward_from ~tag_check:t.cfg.tag_check ~ibgp_encap:t.cfg.ibgp_encap env
      ~ingress packet
  in
  (match t.tracer with Some f -> f t.clk.(0) id packet action | None -> ());
  match action with
  | Engine.Drop { reason = Engine.Ttl_expired; _ } ->
    t.dropped_ttl <- t.dropped_ttl + 1;
    Obs.incr c_drop_ttl
  | Engine.Drop { reason = Engine.Valley_violation; _ } ->
    t.dropped_valley <- t.dropped_valley + 1;
    Obs.incr c_drop_valley
  | Engine.Drop { reason = Engine.No_route; _ } ->
    t.dropped_no_route <- t.dropped_no_route + 1;
    Obs.incr c_drop_no_route
  | Engine.Send { port = out; packet = packet'; default_port } ->
    (* A packet that arrived encapsulated and leaves still encapsulated
       is an in-transit tunnel routed on its outer header — not a
       deflection decision of this router.  [default_port] is the FIB
       default the engine already looked up ([-1] when it routed without
       one), so deflection accounting costs no second lookup. *)
    let in_transit = packet.Packet.encap <> None && packet'.Packet.encap <> None in
    if default_port >= 0 && out <> default_port && not in_transit then begin
      t.deflected <- t.deflected + 1;
      Obs.incr c_deflected;
      if packet'.Packet.encap <> None && packet.Packet.encap = None then begin
        t.encapsulated <- t.encapsulated + 1;
        Obs.incr c_encapsulated
      end
    end;
    note_egress r packet'.Packet.flow out;
    transmit t id out packet'

(* Host-side TCP machinery.  [arm_timer] is lazy: it moves the logical
   deadline and only touches the event queue when no queued Timeout
   fires early enough to cover it (see the [sender] field comments). *)
let arm_timer t host_id (s : sender) =
  if Tcp.Sender.timer_needed s.tcp then begin
    let gen = Tcp.Sender.arm_timer s.tcp in
    let deadline = t.clk.(0) +. Tcp.Sender.rto s.tcp in
    s.t_gen <- gen;
    s.t_deadline <- deadline;
    if deadline < s.t_min then begin
      s.t_min <- deadline;
      Eventq.schedule t.events ~time:deadline
        (Timeout { host = host_id; flow = s.frec.id; gen })
    end
  end
  else s.t_deadline <- Float.infinity

let send_segment t host_id (s : sender) seq =
  s.send_times.(seq) <-
    (if s.send_times.(seq) = Float.neg_infinity then t.clk.(0) else Float.nan);
  let packet =
    Packet.make ~kind:Packet.Data ~seq ~size_bits:t.cfg.mss_bits ~src:s.frec.src_addr
      ~dst:s.frec.dst_addr ~flow:s.frec.id ()
  in
  transmit t host_id 0 packet

let pump t host_id (s : sender) =
  let rec go () =
    let seq = Tcp.Sender.next_seq_hot s.tcp in
    if seq >= 0 then begin
      send_segment t host_id s seq;
      go ()
    end
  in
  go ();
  arm_timer t host_id s

let total_segments t bytes = ((bytes * 8) + t.cfg.mss_bits - 1) / t.cfg.mss_bits

let add_flow t ~src ~dst ~bytes ~start =
  if bytes <= 0 then invalid_arg "Packetsim.add_flow: empty flow";
  let hs = host_exn t src and hd = host_exn t dst in
  let id = Vec.length t.flows in
  let frec =
    {
      id;
      src_host = src;
      dst_host = dst;
      src_addr = hs.addr;
      dst_addr = hd.addr;
      bytes;
      start;
      finish = None;
    }
  in
  Vec.push t.flows frec;
  let total = total_segments t bytes in
  let tcp = Tcp.Sender.create ~total in
  Vec.ensure hs.senders (id + 1) None;
  Vec.set hs.senders id
    (Some
       {
         frec;
         tcp;
         send_times = Array.make total Float.neg_infinity;
         t_gen = 0;
         t_deadline = Float.infinity;
         t_min = Float.infinity;
       });
  Vec.ensure hd.receivers (id + 1) None;
  Vec.set hd.receivers id (Some (Tcp.Receiver.create ()));
  Eventq.schedule t.events ~time:start (Start_flow id);
  id

let add_udp_flow t ~src ~dst ~bytes ?(burst = 32) ~start () =
  if bytes <= 0 then invalid_arg "Packetsim.add_udp_flow: empty flow";
  if burst <= 0 then invalid_arg "Packetsim.add_udp_flow: burst must be positive";
  let hs = host_exn t src and hd = host_exn t dst in
  let id = Vec.length t.flows in
  let frec =
    {
      id;
      src_host = src;
      dst_host = dst;
      src_addr = hs.addr;
      dst_addr = hd.addr;
      bytes;
      start;
      finish = None;
    }
  in
  Vec.push t.flows frec;
  Vec.ensure hs.udp_tx (id + 1) None;
  Vec.set hs.udp_tx id
    (Some { u_frec = frec; u_total = total_segments t bytes; u_burst = burst; u_next_seg = 0 });
  Vec.ensure hd.udp_rx (id + 1) (-1);
  Vec.set hd.udp_rx id 0;
  Eventq.schedule t.events ~time:start (Start_flow id);
  id

(* One burst of an open-loop source: stream up to [u_burst] segments
   back-to-back into the host link, then come back the moment the link
   has serialized them ([next_free]) — line-rate self-pacing with no
   per-segment events at the source. *)
let emit_burst t host_id (u : udp_sender) =
  let pt = port t host_id 0 in
  let n = Stdlib.min u.u_burst (u.u_total - u.u_next_seg) in
  for _ = 1 to n do
    let seq = u.u_next_seg in
    u.u_next_seg <- seq + 1;
    let packet =
      Packet.make ~kind:Packet.Data ~seq ~size_bits:t.cfg.mss_bits
        ~src:u.u_frec.src_addr ~dst:u.u_frec.dst_addr ~flow:u.u_frec.id ()
    in
    transmit t host_id 0 packet
  done;
  if u.u_next_seg < u.u_total then begin
    (* [next_free] only fails to advance when every segment was
       tail-dropped (host queue smaller than one burst); fall back to
       one serialization time so emission still makes progress. *)
    let next =
      if pt.link.next_free > t.clk.(0) then pt.link.next_free
      else t.clk.(0) +. (float_of_int t.cfg.mss_bits /. pt.link.rate)
    in
    Eventq.schedule t.events ~time:next (Emit { flow = u.u_frec.id })
  end

let handle_host t id h ~port:_ packet =
  match packet.Packet.kind with
  | Packet.Data -> (
    match slot h.receivers packet.Packet.flow with
    | None ->
      (* no TCP receiver: maybe an open-loop (UDP) sink *)
      let flow = packet.Packet.flow in
      let got = if flow < Vec.length h.udp_rx then Vec.get h.udp_rx flow else -1 in
      if got >= 0 then begin
        t.delivered_packets <- t.delivered_packets + 1;
        Obs.incr c_delivered;
        record_goodput t (float_of_int packet.Packet.size_bits);
        let got = got + 1 in
        Vec.set h.udp_rx flow got;
        let frec = Vec.get t.flows flow in
        if got = total_segments t frec.bytes then begin
          frec.finish <- Some t.clk.(0);
          match t.on_complete with Some f -> f flow | None -> ()
        end
      end
    | Some rcv ->
      t.delivered_packets <- t.delivered_packets + 1;
      Obs.incr c_delivered;
      record_goodput t (float_of_int packet.Packet.size_bits);
      let ack = Tcp.Receiver.on_data rcv packet.Packet.seq in
      let reply =
        Packet.make ~kind:Packet.Ack ~seq:ack ~size_bits:t.cfg.ack_bits
          ~src:packet.Packet.dst ~dst:packet.Packet.src ~flow:packet.Packet.flow ()
      in
      transmit t id 0 reply)
  | Packet.Ack -> (
    match slot h.senders packet.Packet.flow with
    | None -> ()
    | Some s ->
      if s.frec.finish = None then begin
        let before = Tcp.Sender.snd_una s.tcp in
        let ack = packet.Packet.seq in
        if ack > before then begin
          (* RTT sample from the newest segment this ACK covers.  Acked
             slots need no cleanup: once cumulative, they are never read
             again.  [neg_infinity] (never sent) and NaN (retransmitted,
             Karn's rule) both fail [is_finite] and yield no sample. *)
          if ack - 1 < Array.length s.send_times then begin
            let t0 = s.send_times.(ack - 1) in
            if Float.is_finite t0 then Tcp.Sender.observe_rtt s.tcp (t.clk.(0) -. t0)
          end
        end;
        let rtx = Tcp.Sender.on_ack s.tcp packet.Packet.seq in
        List.iter (send_segment t id s) rtx;
        if Tcp.Sender.is_done s.tcp then begin
          s.frec.finish <- Some t.clk.(0);
          match t.on_complete with Some f -> f s.frec.id | None -> ()
        end
        else pump t id s
      end)

let daemon_tick t =
  for id = 0 to Vec.length t.nodes - 1 do
    match (node t id).kind with
    | Host _ -> ()
    | Router r
      when r.chooser = None && r.chooser_k = None && not (Fib.may_deflect r.r_fib) ->
      (* No chooser and no live alternative in the table: the epoch walk
         over this FIB would visit every entry only to write back the
         state it already has.  On a benign mesh this skip turns the
         tick from O(routers x prefixes) into O(routers). *)
      ()
    | Router r -> (
      let port_utilization p =
        let link = (port t id p).link in
        let elapsed = Float.max 1e-9 (t.clk.(0) -. t.last_epoch_time) in
        let used = (link.bits_carried -. link.carried_at_epoch) /. elapsed in
        Float.min 1. (used /. link.rate)
      in
      match r.chooser_k with
      | Some choose_alts ->
        Daemon.epoch_ranked ~config:t.cfg.daemon_config ~fib:r.r_fib
          ~port_utilization ~choose_alts ()
      | None ->
        let choose_alt prefix entry =
          match r.chooser with
          | Some f -> f prefix entry
          | None -> Fib.alt_port entry
        in
        Daemon.epoch ~config:t.cfg.daemon_config ~fib:r.r_fib ~port_utilization
          ~choose_alt ())
  done;
  (* snapshot link counters for the next epoch's utilization window *)
  for id = 0 to Vec.length t.nodes - 1 do
    Vec.iter (fun p -> p.link.carried_at_epoch <- p.link.bits_carried) (node t id).ports
  done;
  t.last_epoch_time <- t.clk.(0)

let deliver t id p packet =
  match (node t id).kind with
  | Router r -> handle_router t id r ~port:p packet
  | Host h -> handle_host t id h ~port:p packet

(* Drain a port's train.  The head element was just popped by the run
   loop ([t.clk.(0)] set, counted); each following element is processed
   inline as long as it is still globally next — i.e. its (time, seq)
   precedes the event queue's head — skipping a queue round-trip for
   the dominant back-to-back case.  The moment something else (an event
   another handler scheduled, or [until]) preempts, the train goes back
   into the queue keyed by its new head. *)
let train_drain t id p ~until =
  let pt = port t id p in
  pt.tr_live <- false;
  let batch = ref 0 in
  let continue = ref true in
  while !continue do
    let h = pt.tr_head in
    let packet = Vec.get pt.tr_pkt h in
    pt.tr_head <- h + 1;
    incr batch;
    deliver t pt.peer pt.peer_port packet;
    if pt.tr_head >= Vec.length pt.tr_time then continue := false
    else begin
      let nt = Vec.get pt.tr_time pt.tr_head in
      let ns = Vec.get pt.tr_seq pt.tr_head in
      if nt <= until && Eventq.precedes_head t.events ~time:nt ~seq:ns then begin
        t.clk.(0) <- nt;
        t.events_processed <- t.events_processed + 1
      end
      else begin
        pt.tr_live <- true;
        Eventq.schedule_pre t.events ~time:nt ~seq:ns pt.tr_ev;
        continue := false
      end
    end
  done;
  (let b = !batch in
   if b < Array.length t.batch_counts then
     t.batch_counts.(b) <- t.batch_counts.(b) + 1
   else Obs.observe h_train_batch (float_of_int b));
  if pt.tr_head >= Vec.length pt.tr_time then begin
    Vec.clear pt.tr_time;
    Vec.clear pt.tr_seq;
    Vec.clear pt.tr_pkt;
    pt.tr_head <- 0
  end
  else if pt.tr_head >= 256 && 2 * pt.tr_head >= Vec.length pt.tr_time then begin
    (* Reclaim the consumed prefix so a long-lived busy port's train
       stays bounded by its in-flight packets — but only once the
       consumed prefix is at least half the vector, so each element is
       moved at most once on average (compacting on a fixed threshold
       re-blits a deep port's thousands of pending arrivals every 256
       pops: quadratic exactly in the bufferbloat regime trains are
       for). *)
    Vec.drop_prefix pt.tr_time pt.tr_head;
    Vec.drop_prefix pt.tr_seq pt.tr_head;
    Vec.drop_prefix pt.tr_pkt pt.tr_head;
    pt.tr_head <- 0
  end

let handle t = function
  | Arrive { node = id; port = p; packet } -> deliver t id p packet
  | Train _ -> assert false (* dispatched by the run loop, needs [until] *)
  | Start_flow flow -> (
    let frec = Vec.get t.flows flow in
    let h = host_exn t frec.src_host in
    match slot h.senders flow with
    | Some s -> pump t frec.src_host s
    | None -> (
      match slot h.udp_tx flow with
      | Some u -> emit_burst t frec.src_host u
      | None -> ()))
  | Emit { flow } -> (
    let frec = Vec.get t.flows flow in
    match slot (host_exn t frec.src_host).udp_tx flow with
    | Some u -> emit_burst t frec.src_host u
    | None -> ())
  | Timeout { host; flow; gen } -> (
    match slot (host_exn t host).senders flow with
    | None -> ()
    | Some s ->
      (* events fire in time order, so this was the earliest queued one *)
      s.t_min <- Float.infinity;
      if s.frec.finish = None then begin
        let rtx = Tcp.Sender.on_timeout s.tcp ~gen in
        if rtx <> [] then begin
          List.iter (send_segment t host s) rtx;
          arm_timer t host s
        end
        else if
          Tcp.Sender.timer_needed s.tcp
          && s.t_deadline >= t.clk.(0)
          && s.t_deadline < Float.infinity
          && s.t_min > s.t_deadline
        then begin
          (* stale early fire: keep the logical deadline covered *)
          s.t_min <- s.t_deadline;
          Eventq.schedule t.events ~time:s.t_deadline
            (Timeout { host; flow; gen = s.t_gen })
        end
      end)
  | Daemon_tick ->
    daemon_tick t;
    sample_queue_health t;
    if not (Eventq.is_empty t.events) then begin
      Eventq.schedule t.events ~time:(t.clk.(0) +. t.cfg.daemon_period) Daemon_tick
    end

let run ?(until = infinity) t =
  if not t.daemon_scheduled then begin
    t.daemon_scheduled <- true;
    Eventq.schedule t.events ~time:t.cfg.daemon_period Daemon_tick
  end;
  let rec loop () =
    match Eventq.pop_before t.events ~until with
    | None -> ()
    | Some ev ->
      (* the pop already advanced [t.clk.(0)] — it is the queue's
         time cell *)
      t.events_processed <- t.events_processed + 1;
      (match ev with
      | Train { node; port } -> train_drain t node port ~until
      | ev -> handle t ev);
      loop ()
  in
  loop ();
  sample_queue_health t

type flow_result = { flow : int; start : float; finish : float option; bytes : int }

let flow_results t =
  Array.map
    (fun (f : flow_rec) ->
      { flow = f.id; start = f.start; finish = f.finish; bytes = f.bytes })
    (Vec.to_array t.flows)

let throughput_series t =
  Array.mapi
    (fun i bits -> (float_of_int i *. t.cfg.series_interval, bits /. t.cfg.series_interval))
    (Vec.to_array t.goodput_buckets)

let counters t =
  {
    delivered_packets = t.delivered_packets;
    dropped_queue = t.dropped_queue;
    dropped_ttl = t.dropped_ttl;
    dropped_valley = t.dropped_valley;
    dropped_no_route = t.dropped_no_route;
    encapsulated = t.encapsulated;
    deflected = t.deflected;
  }

let path_switches t =
  let totals = Vec.create () in
  for id = 0 to Vec.length t.nodes - 1 do
    match (node t id).kind with
    | Host _ -> ()
    | Router r ->
      for flow = 0 to Vec.length r.switches - 1 do
        let c = Vec.get r.switches flow in
        if c > 0 then begin
          Vec.ensure totals (flow + 1) 0;
          Vec.set totals flow (Vec.get totals flow + c)
        end
      done
  done;
  (* flows ascending, built back to front — no sort needed *)
  let acc = ref [] in
  for flow = Vec.length totals - 1 downto 0 do
    let c = Vec.get totals flow in
    if c > 0 then acc := (flow, c) :: !acc
  done;
  !acc

(* Read-only topology/state exports for the static verifier
   (Mifo_analysis.Net_check): enough to rebuild the forwarding graph —
   nodes, ports with their kinds and far ends, FIBs (via [fib]) and the
   iBGP routing table — without exposing any mutable simulator state. *)

type node_view = Router_view of { as_id : int } | Host_view of { addr : Prefix.addr }

let node_count t = Vec.length t.nodes

let node_view t id =
  match (node t id).kind with
  | Router r -> Router_view { as_id = r.as_id }
  | Host h -> Host_view { addr = h.addr }

let port_count t id = Vec.length (node t id).ports
let port_kind t id p = (port t id p).kind

let port_peer t id p =
  let pt = port t id p in
  (pt.peer, pt.peer_port)

let ibgp_route t id peer = Hashtbl.find_opt (router_exn t id).ibgp_peers peer

let set_completion_hook t f = t.on_complete <- Some f
let set_tracer t f = t.tracer <- Some f
let clear_tracer t = t.tracer <- None
