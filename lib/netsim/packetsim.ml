module Prefix = Mifo_bgp.Prefix
module Fib = Mifo_core.Fib
module Engine = Mifo_core.Engine
module Daemon = Mifo_core.Daemon
module Packet = Mifo_core.Packet
module Vec = Mifo_util.Vec
module Obs = Mifo_util.Obs

type node_id = int

type config = {
  queue_bits : int;
  daemon_period : float;
  daemon_config : Daemon.config;
  engine_congest_ratio : float;
  mss_bits : int;
  ack_bits : int;
  series_interval : float;
  tag_check : bool;
  ibgp_encap : bool;
}

let default_config =
  {
    queue_bits = 1_000_000;
    daemon_period = 0.005;
    daemon_config = Daemon.default_config;
    engine_congest_ratio = 0.5;
    mss_bits = 8_000;
    ack_bits = 320;
    series_interval = 0.1;
    tag_check = true;
    ibgp_encap = true;
  }

type link = {
  rate : float;
  delay : float;
  queue_limit : int;
  mutable next_free : float;
  mutable bits_carried : float;
  mutable carried_at_epoch : float;  (* snapshot at last daemon tick *)
  mutable drops : int;
}

type port = { link : link; peer : node_id; peer_port : int; kind : Engine.port_kind }

type flow_rec = {
  id : int;
  src_host : node_id;
  dst_host : node_id;
  src_addr : Prefix.addr;
  dst_addr : Prefix.addr;
  bytes : int;
  start : float;
  mutable finish : float option;
}

type sender = {
  frec : flow_rec;
  tcp : Tcp.Sender.t;
  send_times : float array;
      (* first-transmission time per segment, indexed by seq;
         [neg_infinity] until first sent, NaN once retransmitted (Karn's
         rule disables the RTT sample).  A flat array instead of an
         (int, float) Hashtbl: seq ids are dense 0..total-1, and this
         sits on the per-segment hot path. *)
}

type router = {
  as_id : int;
  r_fib : Fib.t;
  mutable chooser : (Prefix.t -> Fib.entry -> int option) option;
  last_egress : int Vec.t;  (* flow -> last egress port; -1 = none yet *)
  switches : int Vec.t;  (* flow -> egress change count *)
  ibgp_peers : (int, int) Hashtbl.t;
      (* peer router (node id named in the port's Ibgp kind) -> local
         port carrying that session; the engine's route_to_peer.  Stays
         a hashtable: consulted only on encapsulation decisions, keyed
         by sparse node ids. *)
}

type host = {
  addr : Prefix.addr;
  senders : sender option Vec.t;  (* flow id -> sender, on the src host *)
  receivers : Tcp.Receiver.t option Vec.t;  (* flow id -> receiver, dst host *)
}

type node_kind = Router of router | Host of host
type node = { kind : node_kind; ports : port Vec.t }

type event =
  | Arrive of { node : node_id; port : int; packet : Packet.t }
  | Start_flow of int
  | Timeout of { host : node_id; flow : int; gen : int }
  | Daemon_tick

type counters = {
  delivered_packets : int;
  dropped_queue : int;
  dropped_ttl : int;
  dropped_valley : int;
  dropped_no_route : int;
  encapsulated : int;
  deflected : int;
}

type t = {
  cfg : config;
  nodes : node Vec.t;
  flows : flow_rec Vec.t;
  events : event Eventq.t;
  mutable now : float;
  mutable events_processed : int;
  mutable delivered_packets : int;
  mutable dropped_queue : int;
  mutable dropped_ttl : int;
  mutable dropped_valley : int;
  mutable dropped_no_route : int;
  mutable encapsulated : int;
  mutable deflected : int;
  goodput_buckets : float Vec.t;  (* bits per series_interval bucket *)
  mutable daemon_scheduled : bool;
  mutable last_epoch_time : float;
  mutable on_complete : (int -> unit) option;
  mutable tracer : (float -> int -> Packet.t -> Engine.action -> unit) option;
}

let create ?(config = default_config) () =
  {
    cfg = config;
    nodes = Vec.create ();
    flows = Vec.create ();
    events = Eventq.create ();
    now = 0.;
    events_processed = 0;
    delivered_packets = 0;
    dropped_queue = 0;
    dropped_ttl = 0;
    dropped_valley = 0;
    dropped_no_route = 0;
    encapsulated = 0;
    deflected = 0;
    goodput_buckets = Vec.create ();
    daemon_scheduled = false;
    last_epoch_time = 0.;
    on_complete = None;
    tracer = None;
  }

let config t = t.cfg
let now t = t.now
let events_processed t = t.events_processed

(* Flow-indexed flat tables: [Vec.ensure]-grown, sentinel-initialized. *)
let slot v i = if i >= 0 && i < Vec.length v then Vec.get v i else None

(* Process-wide observability mirrors of the per-sim counters, plus the
   queue-depth view only the transmit path can see. *)
let c_delivered = Obs.counter "packetsim.delivered"
let c_drop_queue = Obs.counter "packetsim.dropped.queue"
let c_drop_ttl = Obs.counter "packetsim.dropped.ttl"
let c_drop_valley = Obs.counter "packetsim.dropped.valley"
let c_drop_no_route = Obs.counter "packetsim.dropped.no_route"
let c_deflected = Obs.counter "packetsim.deflected"
let c_encapsulated = Obs.counter "packetsim.encapsulated"
let h_queue_ratio = Obs.histogram "packetsim.queue_ratio"

let add_router t ~as_id =
  let r =
    {
      as_id;
      r_fib = Fib.create ();
      chooser = None;
      last_egress = Vec.create ();
      switches = Vec.create ();
      ibgp_peers = Hashtbl.create 8;
    }
  in
  Vec.push t.nodes { kind = Router r; ports = Vec.create () };
  Vec.length t.nodes - 1

let add_host t ~addr =
  let h = { addr; senders = Vec.create (); receivers = Vec.create () } in
  Vec.push t.nodes { kind = Host h; ports = Vec.create () };
  Vec.length t.nodes - 1

let node t id = Vec.get t.nodes id

let router_exn t id =
  match (node t id).kind with
  | Router r -> r
  | Host _ -> invalid_arg "Packetsim: expected a router"

let host_exn t id =
  match (node t id).kind with
  | Host h -> h
  | Router _ -> invalid_arg "Packetsim: expected a host"

let connect t ~a ~b ~kind_ab ~kind_ba ~rate ?(delay = 50e-6) ?queue_bits () =
  if rate <= 0. then invalid_arg "Packetsim.connect: rate must be positive";
  let queue_limit = match queue_bits with Some q -> q | None -> t.cfg.queue_bits in
  let mk () =
    {
      rate;
      delay;
      queue_limit;
      next_free = 0.;
      bits_carried = 0.;
      carried_at_epoch = 0.;
      drops = 0;
    }
  in
  let na = node t a and nb = node t b in
  let pa = Vec.length na.ports and pb = Vec.length nb.ports in
  Vec.push na.ports { link = mk (); peer = b; peer_port = pb; kind = kind_ab };
  Vec.push nb.ports { link = mk (); peer = a; peer_port = pa; kind = kind_ba };
  let note_ibgp n kind p =
    match (n.kind, kind) with
    | Router r, Engine.Ibgp { peer_router } -> Hashtbl.replace r.ibgp_peers peer_router p
    | _ -> ()
  in
  note_ibgp na kind_ab pa;
  note_ibgp nb kind_ba pb;
  (pa, pb)

let fib t id = (router_exn t id).r_fib
let set_alt_chooser t id chooser = (router_exn t id).chooser <- Some chooser

let port t id p = Vec.get (node t id).ports p

(* Queue occupancy of a link right now: the backlog implied by next_free. *)
let queue_bits_now t link =
  Float.max 0. ((link.next_free -. t.now) *. link.rate)

let queue_ratio t link = queue_bits_now t link /. float_of_int link.queue_limit

let spare_capacity t id p =
  let link = (port t id p).link in
  let elapsed = Float.max t.cfg.daemon_period (t.now -. t.last_epoch_time) in
  let used = (link.bits_carried -. link.carried_at_epoch) /. elapsed in
  Float.max 0. (link.rate -. used)

(* Transmit a packet out of a node's port: tail-drop FIFO queue, then
   store-and-forward serialization and propagation. *)
let transmit t src_node p packet =
  let { link; peer; peer_port; _ } = port t src_node p in
  let wire = float_of_int (Packet.wire_size_bits packet) in
  Obs.observe h_queue_ratio (queue_ratio t link);
  if queue_bits_now t link +. wire > float_of_int link.queue_limit then begin
    link.drops <- link.drops + 1;
    t.dropped_queue <- t.dropped_queue + 1;
    Obs.incr c_drop_queue;
    if Obs.trace_enabled () then
      Obs.event ~t:t.now "queue_drop"
        [
          ("node", Obs.Int src_node);
          ("port", Obs.Int p);
          ("flow", Obs.Int packet.Packet.flow);
        ]
  end
  else begin
    let start = Float.max t.now link.next_free in
    let done_tx = start +. (wire /. link.rate) in
    link.next_free <- done_tx;
    link.bits_carried <- link.bits_carried +. wire;
    Eventq.schedule t.events ~time:(done_tx +. link.delay)
      (Arrive { node = peer; port = peer_port; packet })
  end

let record_goodput t bits =
  let bucket = int_of_float (t.now /. t.cfg.series_interval) in
  while Vec.length t.goodput_buckets <= bucket do
    Vec.push t.goodput_buckets 0.
  done;
  Vec.set t.goodput_buckets bucket (Vec.get t.goodput_buckets bucket +. bits)

let engine_env t id r =
  {
    Engine.router_id = id;
    fib = r.r_fib;
    port_kind = (fun p -> (port t id p).kind);
    is_congested =
      (fun p -> queue_ratio t (port t id p).link >= t.cfg.engine_congest_ratio);
    next_hop_router =
      (fun p ->
        let pt = port t id p in
        match (node t pt.peer).kind with Router _ -> Some pt.peer | Host _ -> None);
    route_to_peer = (fun peer -> Hashtbl.find_opt r.ibgp_peers peer);
  }

let note_egress r flow p =
  Vec.ensure r.last_egress (flow + 1) (-1);
  let prev = Vec.get r.last_egress flow in
  if prev <> p then begin
    Vec.set r.last_egress flow p;
    if prev >= 0 then begin
      Vec.ensure r.switches (flow + 1) 0;
      Vec.set r.switches flow (Vec.get r.switches flow + 1)
    end
  end

let handle_router t id r ~port:ingress packet =
  let env = engine_env t id r in
  let action =
    Engine.forward ~tag_check:t.cfg.tag_check ~ibgp_encap:t.cfg.ibgp_encap env
      ~ingress:(Some ingress) packet
  in
  (match t.tracer with Some f -> f t.now id packet action | None -> ());
  match action with
  | Engine.Drop { reason = Engine.Ttl_expired; _ } ->
    t.dropped_ttl <- t.dropped_ttl + 1;
    Obs.incr c_drop_ttl
  | Engine.Drop { reason = Engine.Valley_violation; _ } ->
    t.dropped_valley <- t.dropped_valley + 1;
    Obs.incr c_drop_valley
  | Engine.Drop { reason = Engine.No_route; _ } ->
    t.dropped_no_route <- t.dropped_no_route + 1;
    Obs.incr c_drop_no_route
  | Engine.Send { port = out; packet = packet' } ->
    (* A packet that arrived encapsulated and leaves still encapsulated
       is an in-transit tunnel routed on its outer header — not a
       deflection decision of this router. *)
    let in_transit = packet.Packet.encap <> None && packet'.Packet.encap <> None in
    (match Fib.lookup r.r_fib packet'.Packet.dst with
     | Some entry when out <> entry.Fib.out_port && not in_transit ->
       t.deflected <- t.deflected + 1;
       Obs.incr c_deflected;
       if packet'.Packet.encap <> None && packet.Packet.encap = None then begin
         t.encapsulated <- t.encapsulated + 1;
         Obs.incr c_encapsulated
       end
     | Some _ | None -> ());
    note_egress r packet'.Packet.flow out;
    transmit t id out packet'

(* Host-side TCP machinery. *)
let arm_timer t host_id (s : sender) =
  if Tcp.Sender.timer_needed s.tcp then begin
    let gen = Tcp.Sender.arm_timer s.tcp in
    Eventq.schedule t.events
      ~time:(t.now +. Tcp.Sender.rto s.tcp)
      (Timeout { host = host_id; flow = s.frec.id; gen })
  end

let send_segment t host_id (s : sender) seq =
  s.send_times.(seq) <-
    (if s.send_times.(seq) = Float.neg_infinity then t.now else Float.nan);
  let packet =
    Packet.make ~kind:Packet.Data ~seq ~size_bits:t.cfg.mss_bits ~src:s.frec.src_addr
      ~dst:s.frec.dst_addr ~flow:s.frec.id ()
  in
  transmit t host_id 0 packet

let pump t host_id (s : sender) =
  let rec go () =
    match Tcp.Sender.next_to_send s.tcp with
    | Some seq ->
      send_segment t host_id s seq;
      go ()
    | None -> ()
  in
  go ();
  arm_timer t host_id s

let total_segments t bytes = ((bytes * 8) + t.cfg.mss_bits - 1) / t.cfg.mss_bits

let add_flow t ~src ~dst ~bytes ~start =
  if bytes <= 0 then invalid_arg "Packetsim.add_flow: empty flow";
  let hs = host_exn t src and hd = host_exn t dst in
  let id = Vec.length t.flows in
  let frec =
    {
      id;
      src_host = src;
      dst_host = dst;
      src_addr = hs.addr;
      dst_addr = hd.addr;
      bytes;
      start;
      finish = None;
    }
  in
  Vec.push t.flows frec;
  let total = total_segments t bytes in
  let tcp = Tcp.Sender.create ~total in
  Vec.ensure hs.senders (id + 1) None;
  Vec.set hs.senders id
    (Some { frec; tcp; send_times = Array.make total Float.neg_infinity });
  Vec.ensure hd.receivers (id + 1) None;
  Vec.set hd.receivers id (Some (Tcp.Receiver.create ()));
  Eventq.schedule t.events ~time:start (Start_flow id);
  id

let handle_host t id h ~port:_ packet =
  match packet.Packet.kind with
  | Packet.Data -> (
    match slot h.receivers packet.Packet.flow with
    | None -> ()
    | Some rcv ->
      t.delivered_packets <- t.delivered_packets + 1;
      Obs.incr c_delivered;
      record_goodput t (float_of_int packet.Packet.size_bits);
      let ack = Tcp.Receiver.on_data rcv packet.Packet.seq in
      let reply =
        Packet.make ~kind:Packet.Ack ~seq:ack ~size_bits:t.cfg.ack_bits
          ~src:packet.Packet.dst ~dst:packet.Packet.src ~flow:packet.Packet.flow ()
      in
      transmit t id 0 reply)
  | Packet.Ack -> (
    match slot h.senders packet.Packet.flow with
    | None -> ()
    | Some s ->
      if s.frec.finish = None then begin
        let before = Tcp.Sender.snd_una s.tcp in
        let ack = packet.Packet.seq in
        if ack > before then begin
          (* RTT sample from the newest segment this ACK covers.  Acked
             slots need no cleanup: once cumulative, they are never read
             again.  [neg_infinity] (never sent) and NaN (retransmitted,
             Karn's rule) both fail [is_finite] and yield no sample. *)
          if ack - 1 < Array.length s.send_times then begin
            let t0 = s.send_times.(ack - 1) in
            if Float.is_finite t0 then Tcp.Sender.observe_rtt s.tcp (t.now -. t0)
          end
        end;
        let rtx = Tcp.Sender.on_ack s.tcp packet.Packet.seq in
        List.iter (send_segment t id s) rtx;
        if Tcp.Sender.is_done s.tcp then begin
          s.frec.finish <- Some t.now;
          match t.on_complete with Some f -> f s.frec.id | None -> ()
        end
        else pump t id s
      end)

let daemon_tick t =
  for id = 0 to Vec.length t.nodes - 1 do
    match (node t id).kind with
    | Host _ -> ()
    | Router r ->
      let port_utilization p =
        let link = (port t id p).link in
        let elapsed = Float.max 1e-9 (t.now -. t.last_epoch_time) in
        let used = (link.bits_carried -. link.carried_at_epoch) /. elapsed in
        Float.min 1. (used /. link.rate)
      in
      let choose_alt prefix entry =
        match r.chooser with
        | Some f -> f prefix entry
        | None -> entry.Fib.alt_port
      in
      Daemon.epoch ~config:t.cfg.daemon_config ~fib:r.r_fib ~port_utilization
        ~choose_alt ()
  done;
  (* snapshot link counters for the next epoch's utilization window *)
  for id = 0 to Vec.length t.nodes - 1 do
    Vec.iter (fun p -> p.link.carried_at_epoch <- p.link.bits_carried) (node t id).ports
  done;
  t.last_epoch_time <- t.now

let handle t = function
  | Arrive { node = id; port = p; packet } -> (
    match (node t id).kind with
    | Router r -> handle_router t id r ~port:p packet
    | Host h -> handle_host t id h ~port:p packet)
  | Start_flow flow -> (
    let frec = Vec.get t.flows flow in
    match slot (host_exn t frec.src_host).senders flow with
    | Some s -> pump t frec.src_host s
    | None -> ())
  | Timeout { host; flow; gen } -> (
    match slot (host_exn t host).senders flow with
    | None -> ()
    | Some s ->
      if s.frec.finish = None then begin
        let rtx = Tcp.Sender.on_timeout s.tcp ~gen in
        if rtx <> [] then begin
          List.iter (send_segment t host s) rtx;
          arm_timer t host s
        end
      end)
  | Daemon_tick ->
    daemon_tick t;
    if not (Eventq.is_empty t.events) then begin
      Eventq.schedule t.events ~time:(t.now +. t.cfg.daemon_period) Daemon_tick
    end

let run ?(until = infinity) t =
  if not t.daemon_scheduled then begin
    t.daemon_scheduled <- true;
    Eventq.schedule t.events ~time:t.cfg.daemon_period Daemon_tick
  end;
  let rec loop () =
    match Eventq.peek_time t.events with
    | None -> ()
    | Some time when time > until -> ()
    | Some _ -> (
      match Eventq.next t.events with
      | None -> ()
      | Some (time, ev) ->
        t.now <- time;
        t.events_processed <- t.events_processed + 1;
        handle t ev;
        loop ())
  in
  loop ()

type flow_result = { flow : int; start : float; finish : float option; bytes : int }

let flow_results t =
  Array.map
    (fun (f : flow_rec) ->
      { flow = f.id; start = f.start; finish = f.finish; bytes = f.bytes })
    (Vec.to_array t.flows)

let throughput_series t =
  Array.mapi
    (fun i bits -> (float_of_int i *. t.cfg.series_interval, bits /. t.cfg.series_interval))
    (Vec.to_array t.goodput_buckets)

let counters t =
  {
    delivered_packets = t.delivered_packets;
    dropped_queue = t.dropped_queue;
    dropped_ttl = t.dropped_ttl;
    dropped_valley = t.dropped_valley;
    dropped_no_route = t.dropped_no_route;
    encapsulated = t.encapsulated;
    deflected = t.deflected;
  }

let path_switches t =
  let totals = Vec.create () in
  for id = 0 to Vec.length t.nodes - 1 do
    match (node t id).kind with
    | Host _ -> ()
    | Router r ->
      for flow = 0 to Vec.length r.switches - 1 do
        let c = Vec.get r.switches flow in
        if c > 0 then begin
          Vec.ensure totals (flow + 1) 0;
          Vec.set totals flow (Vec.get totals flow + c)
        end
      done
  done;
  (* flows ascending, built back to front — no sort needed *)
  let acc = ref [] in
  for flow = Vec.length totals - 1 downto 0 do
    let c = Vec.get totals flow in
    if c > 0 then acc := (flow, c) :: !acc
  done;
  !acc

(* Read-only topology/state exports for the static verifier
   (Mifo_analysis.Net_check): enough to rebuild the forwarding graph —
   nodes, ports with their kinds and far ends, FIBs (via [fib]) and the
   iBGP routing table — without exposing any mutable simulator state. *)

type node_view = Router_view of { as_id : int } | Host_view of { addr : Prefix.addr }

let node_count t = Vec.length t.nodes

let node_view t id =
  match (node t id).kind with
  | Router r -> Router_view { as_id = r.as_id }
  | Host h -> Host_view { addr = h.addr }

let port_count t id = Vec.length (node t id).ports
let port_kind t id p = (port t id p).kind

let port_peer t id p =
  let pt = port t id p in
  (pt.peer, pt.peer_port)

let ibgp_route t id peer = Hashtbl.find_opt (router_exn t id).ibgp_peers peer

let set_completion_hook t f = t.on_complete <- Some f
let set_tracer t f = t.tracer <- Some f
let clear_tracer t = t.tracer <- None
