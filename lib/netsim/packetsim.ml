module Prefix = Mifo_bgp.Prefix
module Fib = Mifo_core.Fib
module Engine = Mifo_core.Engine
module Daemon = Mifo_core.Daemon
module Packet = Mifo_core.Packet
module Vec = Mifo_util.Vec
module Obs = Mifo_util.Obs

type node_id = int

type config = {
  queue_bits : int;
  daemon_period : float;
  daemon_config : Daemon.config;
  engine_congest_ratio : float;
  mss_bits : int;
  ack_bits : int;
  series_interval : float;
  tag_check : bool;
  ibgp_encap : bool;
  eventq_engine : Eventq.engine;
  packet_trains : bool;
  domains : int;
}

let default_config =
  {
    queue_bits = 1_000_000;
    daemon_period = 0.005;
    daemon_config = Daemon.default_config;
    engine_congest_ratio = 0.5;
    mss_bits = 8_000;
    ack_bits = 320;
    series_interval = 0.1;
    tag_check = true;
    ibgp_encap = true;
    eventq_engine = Eventq.Wheel;
    packet_trains = true;
    domains = 1;
  }

(* All-float on purpose: OCaml stores such records flat, so the per-hop
   [next_free] / [bits_carried] updates are in-place stores instead of
   fresh boxed floats behind a write barrier. *)
type link = {
  rate : float;
  delay : float;
  queue_limit_f : float;
  mutable next_free : float;
  mutable bits_carried : float;
  mutable carried_at_epoch : float;  (* snapshot at last daemon tick *)
}

(* [event] is defined up here so each port can cache its own [Train]
   event: trains re-enter the queue every time they are preempted, and
   the event payload is identical each time. *)
type event =
  | Arrive of { node : node_id; port : int; packet : Packet.t }
  | Train of { node : node_id; port : int }
      (* the pending departures of [port] on [node]; keyed in the queue
         by the head element's (time, seq) *)
  | Start_flow of int
  | Timeout of { host : node_id; flow : int; gen : int }
  | Emit of { flow : int }  (* next burst of an open-loop UDP source *)
  | Daemon_tick

type port = {
  link : link;
  peer : node_id;
  peer_port : int;
  kind : Engine.port_kind;
  (* Per-link packet train: in-flight departures on this port, FIFO and
     therefore sorted by (arrival time, queue seq) — serialization keeps
     per-link arrival times non-decreasing and seqs are allocated in
     append order.  The event queue holds at most ONE entry per port
     ([tr_live]), keyed by the head element, instead of one per packet;
     see [train_drain]. *)
  tr_time : float Vec.t;
  tr_seq : int Vec.t;
  tr_pkt : Packet.t Vec.t;
  mutable tr_head : int;
  mutable tr_live : bool;
  tr_ev : event;  (* this port's [Train], allocated once *)
}

type flow_rec = {
  id : int;
  src_host : node_id;
  dst_host : node_id;
  src_addr : Prefix.addr;
  dst_addr : Prefix.addr;
  bytes : int;
  start : float;
  mutable finish : float option;
}

type sender = {
  frec : flow_rec;
  tcp : Tcp.Sender.t;
  send_times : float array;
      (* first-transmission time per segment, indexed by seq;
         [neg_infinity] until first sent, NaN once retransmitted (Karn's
         rule disables the RTT sample).  A flat array instead of an
         (int, float) Hashtbl: seq ids are dense 0..total-1, and this
         sits on the per-segment hot path. *)
  (* Lazy RTO timer.  Re-arming on every ACK used to schedule a fresh
     Timeout event each time, leaving a trail of dead events in the
     queue (one per ACK, each living a full RTO).  Instead the logical
     deadline is just recorded here, and a queue event exists only for
     the earliest outstanding fire time [t_min]; an event firing before
     [t_deadline] is stale and re-schedules itself at the deadline.  The
     timeout still takes effect at exactly the eager scheme's time: the
     deadline of the latest arm. *)
  mutable t_gen : int;  (* Tcp timer generation of the latest arm *)
  mutable t_deadline : float;  (* logical fire time; infinity = unarmed *)
  mutable t_min : float;  (* earliest queued Timeout; infinity = none *)
}

type router = {
  as_id : int;
  r_fib : Fib.t;
  mutable r_env : Engine.env option;
      (* the engine environment for this router, built on first packet;
         its closures capture only stable state (the sim and this
         record), so rebuilding it per packet — as [handle_router] used
         to — was four closure allocations per hop for nothing *)
  mutable chooser : (Prefix.t -> Fib.entry -> int option) option;
  mutable chooser_k : (Prefix.t -> Fib.entry -> int list) option;
      (* ranked-set chooser; when present it wins over [chooser] and the
         daemon tick runs [Daemon.epoch_ranked] *)
  last_egress : int Vec.t;  (* flow -> last egress port; -1 = none yet *)
  switches : int Vec.t;  (* flow -> egress change count *)
  ibgp_peers : (int, int) Hashtbl.t;
      (* peer router (node id named in the port's Ibgp kind) -> local
         port carrying that session; the engine's route_to_peer.  Stays
         a hashtable: consulted only on encapsulation decisions, keyed
         by sparse node ids. *)
}

(* Open-loop (UDP-style) source: the testbed's line-rate probe traffic.
   No ack clock and no retransmission — the source just streams its
   segments back-to-back in bursts of [u_burst], self-paced off the
   host link's [next_free] so the next [Emit] fires exactly when the
   last burst has serialized. *)
type udp_sender = {
  u_frec : flow_rec;
  u_total : int;
  u_burst : int;
  mutable u_next_seg : int;
}

type host = {
  addr : Prefix.addr;
  senders : sender option Vec.t;  (* flow id -> sender, on the src host *)
  receivers : Tcp.Receiver.t option Vec.t;  (* flow id -> receiver, dst host *)
  udp_tx : udp_sender option Vec.t;  (* flow id -> UDP source, src host *)
  udp_rx : int Vec.t;
      (* flow id -> delivered segment count on the dst host; -1 marks
         "not a UDP flow terminating here" *)
}

type node_kind = Router of router | Host of host
type node = { kind : node_kind; ports : port Vec.t }

type counters = {
  delivered_packets : int;
  dropped_queue : int;
  dropped_ttl : int;
  dropped_valley : int;
  dropped_no_route : int;
  encapsulated : int;
  deflected : int;
}

(* One event-loop execution context.  The serial engine is the
   singleton case ([execs = [|e0|]]); a sharded run owns one [exec] per
   shard, each with its own queue, clock, scratch counters and goodput
   tally, so nothing mutable is shared between domains inside a
   conservative window.  Merging at the end is exact: every field is
   either an integer sum or single-writer per flow/node. *)
type exec = {
  eshard : int;
  xq : event Eventq.t;
  xclk : float array;
      (* the shard clock IS its event queue's {!Eventq.time_cell}:
         every successful pop writes the popped time into [xclk.(0)]
         in place, so advancing time costs a flat store and reading it
         never goes through a boxed float *)
  mutable x_events : int;
  mutable x_delivered : int;
  mutable x_drop_queue : int;
  mutable x_drop_ttl : int;
  mutable x_drop_valley : int;
  mutable x_drop_no_route : int;
  mutable x_encapsulated : int;
  mutable x_deflected : int;
  x_goodput : int Vec.t;
      (* delivered bits per series_interval bucket.  Integer on purpose:
         bit counts are exact integers far below 2^53, so summing the
         per-shard buckets reproduces the serial totals bit-for-bit —
         float accumulation would make the merge order observable. *)
  x_batch : int array;
      (* per-exec train batch-size tally, indexed by exact batch size
         (1..128); flushed into the shared histogram at daemon ticks so
         the per-batch hot path touches no atomics *)
  x_done_t : float Vec.t;  (* deferred completion-hook queue: finish *)
  x_done : int Vec.t;  (* times and flow ids, drained at barriers *)
  mutable x_hit_tick : bool;
      (* this shard popped the window's Daemon_tick barrier marker *)
}

(* Fixed per-shard-pair boundary buffer: packets transmitted out of a
   shard toward a node owned by another shard park here until the next
   window barrier.  Parallel vecs, no per-packet tuple.  Single-writer
   (the source shard) during a window, read by the coordinator at the
   barrier — the fork/join of the window is the happens-before edge. *)
type mailbox = {
  mb_time : float Vec.t;
  mb_seq : int Vec.t;  (* seq claimed from the source shard's queue *)
  mb_node : int Vec.t;
  mb_port : int Vec.t;
  mb_pkt : Packet.t Vec.t;
}

type t = {
  cfg : config;
  nodes : node Vec.t;
  flows : flow_rec Vec.t;
  mutable execs : exec array;  (* [|e0|] until sharding activates *)
  mutable sharded : bool;
  mutable shard_of : int array;  (* node -> shard; [||] until assigned *)
  mutable lookahead : float;
      (* min latency over cut links = the conservative window length *)
  mutable mboxes : mailbox array;  (* nshards^2, row-major [src*n+dst] *)
  mutable sh_cut_links : int;
  mutable sh_windows : int;
  mutable sh_ticks : int;  (* barrier daemon ticks (count as 1 event each) *)
  mutable sh_next_tick : float;  (* infinity = no tick pending *)
  mutable daemon_scheduled : bool;
  mutable last_epoch_time : float;
  mutable on_complete : (int -> unit) option;
  mutable tracer : (float -> int -> Packet.t -> Engine.action -> unit) option;
}

let make_exec ~engine eshard =
  let xq = Eventq.create ~engine () in
  {
    eshard;
    xq;
    xclk = Eventq.time_cell xq;
    x_events = 0;
    x_delivered = 0;
    x_drop_queue = 0;
    x_drop_ttl = 0;
    x_drop_valley = 0;
    x_drop_no_route = 0;
    x_encapsulated = 0;
    x_deflected = 0;
    x_goodput = Vec.create ();
    x_batch = Array.make 129 0;
    x_done_t = Vec.create ();
    x_done = Vec.create ();
    x_hit_tick = false;
  }

let make_mailbox () =
  {
    mb_time = Vec.create ();
    mb_seq = Vec.create ();
    mb_node = Vec.create ();
    mb_port = Vec.create ();
    mb_pkt = Vec.create ();
  }

let create ?(config = default_config) () =
  if config.domains < 1 then
    invalid_arg "Packetsim.create: domains must be >= 1";
  {
    cfg = config;
    nodes = Vec.create ();
    flows = Vec.create ();
    execs = [| make_exec ~engine:config.eventq_engine 0 |];
    sharded = false;
    shard_of = [||];
    lookahead = infinity;
    mboxes = [||];
    sh_cut_links = 0;
    sh_windows = 0;
    sh_ticks = 0;
    sh_next_tick = infinity;
    daemon_scheduled = false;
    last_epoch_time = 0.;
    on_complete = None;
    tracer = None;
  }

let config t = t.cfg

let now t =
  let m = ref 0. in
  Array.iter (fun ex -> if ex.xclk.(0) > !m then m := ex.xclk.(0)) t.execs;
  !m

let events_processed t =
  Array.fold_left (fun acc ex -> acc + ex.x_events) t.sh_ticks t.execs

(* The exec owning a node: its shard's when sharded, the singleton
   otherwise.  Only used off the hot paths (handlers already hold their
   exec) — public accessors and barrier-time code. *)
let exec_of t id = if t.sharded then t.execs.(t.shard_of.(id)) else t.execs.(0)

(* Flow-indexed flat tables: [Vec.ensure]-grown, sentinel-initialized. *)
let slot v i = if i >= 0 && i < Vec.length v then Vec.get v i else None

(* Process-wide observability mirrors of the per-sim counters, plus the
   queue-depth view only the transmit path can see. *)
let c_delivered = Obs.counter "packetsim.delivered"
let c_drop_queue = Obs.counter "packetsim.dropped.queue"
let c_drop_ttl = Obs.counter "packetsim.dropped.ttl"
let c_drop_valley = Obs.counter "packetsim.dropped.valley"
let c_drop_no_route = Obs.counter "packetsim.dropped.no_route"
let c_deflected = Obs.counter "packetsim.deflected"
let c_encapsulated = Obs.counter "packetsim.encapsulated"
let h_queue_ratio = Obs.histogram "packetsim.queue_ratio"

let h_train_batch =
  Obs.histogram ~bounds:[| 1.; 2.; 4.; 8.; 16.; 32.; 64.; 128. |]
    "packetsim.train_batch"

(* Event-queue health, sampled at daemon ticks (and at end of run). *)
let g_peak_len = Obs.gauge "eventq.peak_len"
let g_cascades = Obs.gauge "eventq.wheel.cascades"
let g_ready = Obs.gauge "eventq.wheel.ready"

let g_levels =
  Array.init Mifo_util.Wheel.levels (fun l ->
      Obs.gauge (Printf.sprintf "eventq.wheel.level%d.occupancy" l))

(* Train memory footprint, sampled at daemon ticks: [resident] is the
   backing capacity currently held across every port's train vecs,
   [peak] its high-water mark.  The spread shows {!Mifo_util.Vec.trim}
   releasing a deep backlog's arrays once the backlog drains. *)
let g_train_resident = Obs.gauge "packetsim.train.resident_elems"
let g_train_peak = Obs.gauge "packetsim.train.peak_elems"

(* Shard geometry, set when a partition is installed. *)
let g_shard_domains = Obs.gauge "packetsim.shard.domains"
let g_shard_cut = Obs.gauge "packetsim.shard.cut_links"
let g_shard_lookahead = Obs.gauge "packetsim.shard.lookahead"

let add_router t ~as_id =
  let r =
    {
      as_id;
      r_fib = Fib.create ();
      r_env = None;
      chooser = None;
      chooser_k = None;
      last_egress = Vec.create ();
      switches = Vec.create ();
      ibgp_peers = Hashtbl.create 8;
    }
  in
  Vec.push t.nodes { kind = Router r; ports = Vec.create () };
  Vec.length t.nodes - 1

let add_host t ~addr =
  let h =
    {
      addr;
      senders = Vec.create ();
      receivers = Vec.create ();
      udp_tx = Vec.create ();
      udp_rx = Vec.create ();
    }
  in
  Vec.push t.nodes { kind = Host h; ports = Vec.create () };
  Vec.length t.nodes - 1

let node t id = Vec.get t.nodes id

let router_exn t id =
  match (node t id).kind with
  | Router r -> r
  | Host _ -> invalid_arg "Packetsim: expected a router"

let host_exn t id =
  match (node t id).kind with
  | Host h -> h
  | Router _ -> invalid_arg "Packetsim: expected a host"

let connect t ~a ~b ~kind_ab ~kind_ba ~rate ?(delay = 50e-6) ?queue_bits () =
  if rate <= 0. then invalid_arg "Packetsim.connect: rate must be positive";
  let queue_limit = match queue_bits with Some q -> q | None -> t.cfg.queue_bits in
  let mk () =
    {
      rate;
      delay;
      queue_limit_f = float_of_int queue_limit;
      next_free = 0.;
      bits_carried = 0.;
      carried_at_epoch = 0.;
    }
  in
  let mk_port link self self_port peer peer_port kind =
    {
      link;
      peer;
      peer_port;
      kind;
      tr_time = Vec.create ();
      tr_seq = Vec.create ();
      tr_pkt = Vec.create ();
      tr_head = 0;
      tr_live = false;
      tr_ev = Train { node = self; port = self_port };
    }
  in
  let na = node t a and nb = node t b in
  let pa = Vec.length na.ports and pb = Vec.length nb.ports in
  Vec.push na.ports (mk_port (mk ()) a pa b pb kind_ab);
  Vec.push nb.ports (mk_port (mk ()) b pb a pa kind_ba);
  let note_ibgp n kind p =
    match (n.kind, kind) with
    | Router r, Engine.Ibgp { peer_router } -> Hashtbl.replace r.ibgp_peers peer_router p
    | _ -> ()
  in
  note_ibgp na kind_ab pa;
  note_ibgp nb kind_ba pb;
  (pa, pb)

let fib t id = (router_exn t id).r_fib
let set_alt_chooser t id chooser = (router_exn t id).chooser <- Some chooser
let set_ranked_chooser t id chooser = (router_exn t id).chooser_k <- Some chooser

let port t id p = Vec.get (node t id).ports p

(* Queue occupancy of a link right now: the backlog implied by
   next_free.  The clamp is a bare [if], not [Float.max]: an
   out-of-line float call boxes both arguments and the result, and
   this runs several times per simulated hop. *)
let queue_bits_now (ex : exec) link =
  let b = (link.next_free -. ex.xclk.(0)) *. link.rate in
  if b > 0. then b else 0.

let queue_ratio ex link = queue_bits_now ex link /. link.queue_limit_f

let spare_capacity t id p =
  let link = (port t id p).link in
  let clk = (exec_of t id).xclk in
  let elapsed = Float.max t.cfg.daemon_period (clk.(0) -. t.last_epoch_time) in
  let used = (link.bits_carried -. link.carried_at_epoch) /. elapsed in
  Float.max 0. (link.rate -. used)

(* Queue-health observability, sampled at daemon ticks and at end of
   run rather than on every transmit: an unbiased time sample of each
   directed link's occupancy, plus the event-queue gauges and the flush
   of the per-sim train batch tally.  Keeping the histogram updates off
   the transmit path matters — [Obs.observe] is an atomic CAS retry
   loop on a boxed float, several hundred ns per call at millions of
   events/sec. *)
let sample_queue_health t =
  let train_resident = ref 0 in
  for id = 0 to Vec.length t.nodes - 1 do
    let ex = exec_of t id in
    Vec.iter
      (fun p ->
        Obs.observe h_queue_ratio (queue_ratio ex p.link);
        train_resident := !train_resident + Vec.capacity p.tr_time)
      (Vec.get t.nodes id).ports
  done;
  Obs.set_gauge g_train_resident (float_of_int !train_resident);
  Obs.max_gauge g_train_peak (float_of_int !train_resident);
  Array.iter
    (fun ex ->
      let bc = ex.x_batch in
      for size = 1 to Array.length bc - 1 do
        let n = bc.(size) in
        if n > 0 then begin
          Obs.observe_n h_train_batch (float_of_int size) n;
          bc.(size) <- 0
        end
      done)
    t.execs;
  (* queue gauges: the high-water over all shards, occupancy summed *)
  let peak = ref 0 and cascades = ref 0 and ready = ref 0 in
  let occupancy = Array.make Mifo_util.Wheel.levels 0 in
  let have_wheel = ref false in
  Array.iter
    (fun ex ->
      peak := Stdlib.max !peak (Eventq.peak_length ex.xq);
      match Eventq.wheel_stats ex.xq with
      | None -> ()
      | Some st ->
        have_wheel := true;
        cascades := !cascades + st.Mifo_util.Wheel.cascades;
        ready := !ready + st.Mifo_util.Wheel.ready;
        Array.iteri
          (fun l n -> occupancy.(l) <- occupancy.(l) + n)
          st.Mifo_util.Wheel.occupancy)
    t.execs;
  Obs.set_gauge g_peak_len (float_of_int !peak);
  if !have_wheel then begin
    Obs.set_gauge g_cascades (float_of_int !cascades);
    Obs.set_gauge g_ready (float_of_int !ready);
    Array.iteri (fun l n -> Obs.set_gauge g_levels.(l) (float_of_int n)) occupancy
  end

(* Transmit a packet out of a node's port: tail-drop FIFO queue, then
   store-and-forward serialization and propagation.

   With packet trains the arrival is appended to the port's train
   instead of becoming its own queue entry; the element still claims a
   queue seq via [alloc_seq] at exactly the point [Eventq.schedule]
   would have, so the global (time, seq) event order — and therefore
   the whole simulation — is bit-identical to per-packet scheduling. *)
let transmit t (ex : exec) src_node p packet =
  let pt = port t src_node p in
  let link = pt.link in
  let wire = float_of_int (Packet.wire_size_bits packet) in
  if queue_bits_now ex link +. wire > link.queue_limit_f then begin
    ex.x_drop_queue <- ex.x_drop_queue + 1;
    Obs.incr c_drop_queue;
    if Obs.trace_enabled () then
      Obs.event ~t:ex.xclk.(0) "queue_drop"
        [
          ("node", Obs.Int src_node);
          ("port", Obs.Int p);
          ("flow", Obs.Int packet.Packet.flow);
        ]
  end
  else begin
    let now = ex.xclk.(0) in
    let start = if now > link.next_free then now else link.next_free in
    let done_tx = start +. (wire /. link.rate) in
    link.next_free <- done_tx;
    link.bits_carried <- link.bits_carried +. wire;
    let arrival = done_tx +. link.delay in
    if t.sharded && t.shard_of.(pt.peer) <> ex.eshard then begin
      (* Boundary crossing: the peer's state belongs to another shard,
         so the arrival parks in the shard-pair mailbox until the next
         window barrier.  The claimed seq is this shard's schedule
         order — the mailbox merge sorts on (time, seq, source shard),
         so two packets the same source sent at the same instant keep
         their transmit order.  The conservative window guarantees
         [arrival >= window end]: [delay >= lookahead] on every cut
         link, so the destination shard has not simulated past it. *)
      let seq = Eventq.alloc_seq ex.xq in
      let ns = Array.length t.execs in
      let mb = t.mboxes.((ex.eshard * ns) + t.shard_of.(pt.peer)) in
      Vec.push mb.mb_time arrival;
      Vec.push mb.mb_seq seq;
      Vec.push mb.mb_node pt.peer;
      Vec.push mb.mb_port pt.peer_port;
      Vec.push mb.mb_pkt packet
    end
    else if t.cfg.packet_trains then begin
      let seq = Eventq.alloc_seq ex.xq in
      Vec.push pt.tr_time arrival;
      Vec.push pt.tr_seq seq;
      Vec.push pt.tr_pkt packet;
      if not pt.tr_live then begin
        pt.tr_live <- true;
        Eventq.schedule_pre ex.xq ~time:arrival ~seq pt.tr_ev
      end
      (* else: the queued entry is keyed by the train's head, whose
         (time, seq) is <= ours — FIFO order per link *)
    end
    else
      Eventq.schedule ex.xq ~time:arrival
        (Arrive { node = pt.peer; port = pt.peer_port; packet })
  end

let record_goodput t (ex : exec) bits =
  let bucket = int_of_float (ex.xclk.(0) /. t.cfg.series_interval) in
  Vec.ensure ex.x_goodput (bucket + 1) 0;
  Vec.set ex.x_goodput bucket (Vec.get ex.x_goodput bucket + bits)

let engine_env t (ex : exec) id r =
  {
    Engine.router_id = id;
    fib = r.r_fib;
    port_kind = (fun p -> (port t id p).kind);
    is_congested =
      (fun p -> queue_ratio ex (port t id p).link >= t.cfg.engine_congest_ratio);
    next_hop_router =
      (fun p ->
        let pt = port t id p in
        match (node t pt.peer).kind with Router _ -> Some pt.peer | Host _ -> None);
    route_to_peer = (fun peer -> Hashtbl.find_opt r.ibgp_peers peer);
  }

let note_egress r flow p =
  Vec.ensure r.last_egress (flow + 1) (-1);
  let prev = Vec.get r.last_egress flow in
  if prev <> p then begin
    Vec.set r.last_egress flow p;
    if prev >= 0 then begin
      Vec.ensure r.switches (flow + 1) 0;
      Vec.set r.switches flow (Vec.get r.switches flow + 1)
    end
  end

let handle_router t (ex : exec) id r ~port:ingress packet =
  let env =
    match r.r_env with
    | Some env -> env
    | None ->
      (* each router is processed only by the shard that owns it, so
         capturing that shard's exec in the cached env is safe *)
      let env = engine_env t ex id r in
      r.r_env <- Some env;
      env
  in
  let action =
    Engine.forward_from ~tag_check:t.cfg.tag_check ~ibgp_encap:t.cfg.ibgp_encap env
      ~ingress packet
  in
  (match t.tracer with Some f -> f ex.xclk.(0) id packet action | None -> ());
  match action with
  | Engine.Drop { reason = Engine.Ttl_expired; _ } ->
    ex.x_drop_ttl <- ex.x_drop_ttl + 1;
    Obs.incr c_drop_ttl
  | Engine.Drop { reason = Engine.Valley_violation; _ } ->
    ex.x_drop_valley <- ex.x_drop_valley + 1;
    Obs.incr c_drop_valley
  | Engine.Drop { reason = Engine.No_route; _ } ->
    ex.x_drop_no_route <- ex.x_drop_no_route + 1;
    Obs.incr c_drop_no_route
  | Engine.Send { port = out; packet = packet'; default_port } ->
    (* A packet that arrived encapsulated and leaves still encapsulated
       is an in-transit tunnel routed on its outer header — not a
       deflection decision of this router.  [default_port] is the FIB
       default the engine already looked up ([-1] when it routed without
       one), so deflection accounting costs no second lookup. *)
    let in_transit = packet.Packet.encap <> None && packet'.Packet.encap <> None in
    if default_port >= 0 && out <> default_port && not in_transit then begin
      ex.x_deflected <- ex.x_deflected + 1;
      Obs.incr c_deflected;
      if packet'.Packet.encap <> None && packet.Packet.encap = None then begin
        ex.x_encapsulated <- ex.x_encapsulated + 1;
        Obs.incr c_encapsulated
      end
    end;
    note_egress r packet'.Packet.flow out;
    transmit t ex id out packet'

(* Host-side TCP machinery.  [arm_timer] is lazy: it moves the logical
   deadline and only touches the event queue when no queued Timeout
   fires early enough to cover it (see the [sender] field comments). *)
(* Timer locality: a sender's Timeout events live in its host's shard
   queue ([ex.xq]) and never cross the boundary — the RTO bookkeeping
   below is all shard-private state. *)
let arm_timer (ex : exec) host_id (s : sender) =
  if Tcp.Sender.timer_needed s.tcp then begin
    let gen = Tcp.Sender.arm_timer s.tcp in
    let deadline = ex.xclk.(0) +. Tcp.Sender.rto s.tcp in
    s.t_gen <- gen;
    s.t_deadline <- deadline;
    if deadline < s.t_min then begin
      s.t_min <- deadline;
      Eventq.schedule ex.xq ~time:deadline
        (Timeout { host = host_id; flow = s.frec.id; gen })
    end
  end
  else s.t_deadline <- Float.infinity

let send_segment t (ex : exec) host_id (s : sender) seq =
  s.send_times.(seq) <-
    (if s.send_times.(seq) = Float.neg_infinity then ex.xclk.(0) else Float.nan);
  let packet =
    Packet.make ~kind:Packet.Data ~seq ~size_bits:t.cfg.mss_bits ~src:s.frec.src_addr
      ~dst:s.frec.dst_addr ~flow:s.frec.id ()
  in
  transmit t ex host_id 0 packet

let pump t (ex : exec) host_id (s : sender) =
  let rec go () =
    let seq = Tcp.Sender.next_seq_hot s.tcp in
    if seq >= 0 then begin
      send_segment t ex host_id s seq;
      go ()
    end
  in
  go ();
  arm_timer ex host_id s

let total_segments t bytes = ((bytes * 8) + t.cfg.mss_bits - 1) / t.cfg.mss_bits

let add_flow t ~src ~dst ~bytes ~start =
  if bytes <= 0 then invalid_arg "Packetsim.add_flow: empty flow";
  let hs = host_exn t src and hd = host_exn t dst in
  let id = Vec.length t.flows in
  let frec =
    {
      id;
      src_host = src;
      dst_host = dst;
      src_addr = hs.addr;
      dst_addr = hd.addr;
      bytes;
      start;
      finish = None;
    }
  in
  Vec.push t.flows frec;
  let total = total_segments t bytes in
  let tcp = Tcp.Sender.create ~total in
  Vec.ensure hs.senders (id + 1) None;
  Vec.set hs.senders id
    (Some
       {
         frec;
         tcp;
         send_times = Array.make total Float.neg_infinity;
         t_gen = 0;
         t_deadline = Float.infinity;
         t_min = Float.infinity;
       });
  Vec.ensure hd.receivers (id + 1) None;
  Vec.set hd.receivers id (Some (Tcp.Receiver.create ()));
  Eventq.schedule (exec_of t src).xq ~time:start (Start_flow id);
  id

let add_udp_flow t ~src ~dst ~bytes ?(burst = 32) ~start () =
  if bytes <= 0 then invalid_arg "Packetsim.add_udp_flow: empty flow";
  if burst <= 0 then invalid_arg "Packetsim.add_udp_flow: burst must be positive";
  let hs = host_exn t src and hd = host_exn t dst in
  let id = Vec.length t.flows in
  let frec =
    {
      id;
      src_host = src;
      dst_host = dst;
      src_addr = hs.addr;
      dst_addr = hd.addr;
      bytes;
      start;
      finish = None;
    }
  in
  Vec.push t.flows frec;
  Vec.ensure hs.udp_tx (id + 1) None;
  Vec.set hs.udp_tx id
    (Some { u_frec = frec; u_total = total_segments t bytes; u_burst = burst; u_next_seg = 0 });
  Vec.ensure hd.udp_rx (id + 1) (-1);
  Vec.set hd.udp_rx id 0;
  Eventq.schedule (exec_of t src).xq ~time:start (Start_flow id);
  id

(* One burst of an open-loop source: stream up to [u_burst] segments
   back-to-back into the host link, then come back the moment the link
   has serialized them ([next_free]) — line-rate self-pacing with no
   per-segment events at the source. *)
let emit_burst t (ex : exec) host_id (u : udp_sender) =
  let pt = port t host_id 0 in
  let n = Stdlib.min u.u_burst (u.u_total - u.u_next_seg) in
  for _ = 1 to n do
    let seq = u.u_next_seg in
    u.u_next_seg <- seq + 1;
    let packet =
      Packet.make ~kind:Packet.Data ~seq ~size_bits:t.cfg.mss_bits
        ~src:u.u_frec.src_addr ~dst:u.u_frec.dst_addr ~flow:u.u_frec.id ()
    in
    transmit t ex host_id 0 packet
  done;
  if u.u_next_seg < u.u_total then begin
    (* [next_free] only fails to advance when every segment was
       tail-dropped (host queue smaller than one burst); fall back to
       one serialization time so emission still makes progress. *)
    let next =
      if pt.link.next_free > ex.xclk.(0) then pt.link.next_free
      else ex.xclk.(0) +. (float_of_int t.cfg.mss_bits /. pt.link.rate)
    in
    Eventq.schedule ex.xq ~time:next (Emit { flow = u.u_frec.id })
  end

(* A flow just finished.  The completion hook may add flows — safe
   inline on the serial path, but on a sharded run it must wait for the
   window barrier where the coordinator owns every queue; the hook then
   fires in deterministic (finish time, flow id) order. *)
let finish_flow t (ex : exec) (frec : flow_rec) =
  frec.finish <- Some ex.xclk.(0);
  match t.on_complete with
  | None -> ()
  | Some f ->
    if t.sharded then begin
      Vec.push ex.x_done_t ex.xclk.(0);
      Vec.push ex.x_done frec.id
    end
    else f frec.id

let handle_host t (ex : exec) id h ~port:_ packet =
  match packet.Packet.kind with
  | Packet.Data -> (
    match slot h.receivers packet.Packet.flow with
    | None ->
      (* no TCP receiver: maybe an open-loop (UDP) sink *)
      let flow = packet.Packet.flow in
      let got = if flow < Vec.length h.udp_rx then Vec.get h.udp_rx flow else -1 in
      if got >= 0 then begin
        ex.x_delivered <- ex.x_delivered + 1;
        Obs.incr c_delivered;
        record_goodput t ex packet.Packet.size_bits;
        let got = got + 1 in
        Vec.set h.udp_rx flow got;
        let frec = Vec.get t.flows flow in
        if got = total_segments t frec.bytes then finish_flow t ex frec
      end
    | Some rcv ->
      ex.x_delivered <- ex.x_delivered + 1;
      Obs.incr c_delivered;
      record_goodput t ex packet.Packet.size_bits;
      let ack = Tcp.Receiver.on_data rcv packet.Packet.seq in
      let reply =
        Packet.make ~kind:Packet.Ack ~seq:ack ~size_bits:t.cfg.ack_bits
          ~src:packet.Packet.dst ~dst:packet.Packet.src ~flow:packet.Packet.flow ()
      in
      transmit t ex id 0 reply)
  | Packet.Ack -> (
    match slot h.senders packet.Packet.flow with
    | None -> ()
    | Some s ->
      if s.frec.finish = None then begin
        let before = Tcp.Sender.snd_una s.tcp in
        let ack = packet.Packet.seq in
        if ack > before then begin
          (* RTT sample from the newest segment this ACK covers.  Acked
             slots need no cleanup: once cumulative, they are never read
             again.  [neg_infinity] (never sent) and NaN (retransmitted,
             Karn's rule) both fail [is_finite] and yield no sample. *)
          if ack - 1 < Array.length s.send_times then begin
            let t0 = s.send_times.(ack - 1) in
            if Float.is_finite t0 then
              Tcp.Sender.observe_rtt s.tcp (ex.xclk.(0) -. t0)
          end
        end;
        let rtx = Tcp.Sender.on_ack s.tcp packet.Packet.seq in
        List.iter (send_segment t ex id s) rtx;
        if Tcp.Sender.is_done s.tcp then finish_flow t ex s.frec
        else pump t ex id s
      end)

let daemon_tick t ~now =
  for id = 0 to Vec.length t.nodes - 1 do
    match (node t id).kind with
    | Host _ -> ()
    | Router r
      when r.chooser = None && r.chooser_k = None && not (Fib.may_deflect r.r_fib) ->
      (* No chooser and no live alternative in the table: the epoch walk
         over this FIB would visit every entry only to write back the
         state it already has.  On a benign mesh this skip turns the
         tick from O(routers x prefixes) into O(routers). *)
      ()
    | Router r -> (
      let port_utilization p =
        let link = (port t id p).link in
        let elapsed = Float.max 1e-9 (now -. t.last_epoch_time) in
        let used = (link.bits_carried -. link.carried_at_epoch) /. elapsed in
        Float.min 1. (used /. link.rate)
      in
      match r.chooser_k with
      | Some choose_alts ->
        Daemon.epoch_ranked ~config:t.cfg.daemon_config ~fib:r.r_fib
          ~port_utilization ~choose_alts ()
      | None ->
        let choose_alt prefix entry =
          match r.chooser with
          | Some f -> f prefix entry
          | None -> Fib.alt_port entry
        in
        Daemon.epoch ~config:t.cfg.daemon_config ~fib:r.r_fib ~port_utilization
          ~choose_alt ())
  done;
  (* snapshot link counters for the next epoch's utilization window *)
  for id = 0 to Vec.length t.nodes - 1 do
    Vec.iter (fun p -> p.link.carried_at_epoch <- p.link.bits_carried) (node t id).ports
  done;
  t.last_epoch_time <- now

let deliver t (ex : exec) id p packet =
  match (node t id).kind with
  | Router r -> handle_router t ex id r ~port:p packet
  | Host h -> handle_host t ex id h ~port:p packet

(* Drain a port's train.  The head element was just popped by the run
   loop ([t.clk.(0)] set, counted); each following element is processed
   inline as long as it is still globally next — i.e. its (time, seq)
   precedes the event queue's head — skipping a queue round-trip for
   the dominant back-to-back case.  The moment something else (an event
   another handler scheduled, or [until]) preempts, the train goes back
   into the queue keyed by its new head. *)
(* A drained-empty train releases its backing arrays once they exceed
   this many elements: a 44K-scale run's transient bufferbloat would
   otherwise pin its ~600K-entry high-water in every deep port forever.
   Small trains keep their arrays — re-growing an 8..1K-element array
   on every idle period would churn for no memory win. *)
let train_release_capacity = 1024

let train_drain t (ex : exec) id p ~until =
  let pt = port t id p in
  pt.tr_live <- false;
  let batch = ref 0 in
  let continue = ref true in
  while !continue do
    let h = pt.tr_head in
    let packet = Vec.get pt.tr_pkt h in
    pt.tr_head <- h + 1;
    incr batch;
    deliver t ex pt.peer pt.peer_port packet;
    if pt.tr_head >= Vec.length pt.tr_time then continue := false
    else begin
      let nt = Vec.get pt.tr_time pt.tr_head in
      let ns = Vec.get pt.tr_seq pt.tr_head in
      if nt <= until && Eventq.precedes_head ex.xq ~time:nt ~seq:ns then begin
        ex.xclk.(0) <- nt;
        ex.x_events <- ex.x_events + 1
      end
      else begin
        pt.tr_live <- true;
        Eventq.schedule_pre ex.xq ~time:nt ~seq:ns pt.tr_ev;
        continue := false
      end
    end
  done;
  (let b = !batch in
   if b < Array.length ex.x_batch then ex.x_batch.(b) <- ex.x_batch.(b) + 1
   else Obs.observe h_train_batch (float_of_int b));
  if pt.tr_head >= Vec.length pt.tr_time then begin
    Vec.clear pt.tr_time;
    Vec.clear pt.tr_seq;
    Vec.clear pt.tr_pkt;
    pt.tr_head <- 0;
    if Vec.capacity pt.tr_time >= train_release_capacity then begin
      Vec.trim pt.tr_time;
      Vec.trim pt.tr_seq;
      Vec.trim pt.tr_pkt
    end
  end
  else if pt.tr_head >= 256 && 2 * pt.tr_head >= Vec.length pt.tr_time then begin
    (* Reclaim the consumed prefix so a long-lived busy port's train
       stays bounded by its in-flight packets — but only once the
       consumed prefix is at least half the vector, so each element is
       moved at most once on average (compacting on a fixed threshold
       re-blits a deep port's thousands of pending arrivals every 256
       pops: quadratic exactly in the bufferbloat regime trains are
       for). *)
    Vec.drop_prefix pt.tr_time pt.tr_head;
    Vec.drop_prefix pt.tr_seq pt.tr_head;
    Vec.drop_prefix pt.tr_pkt pt.tr_head;
    pt.tr_head <- 0
  end

let handle t (ex : exec) = function
  | Arrive { node = id; port = p; packet } -> deliver t ex id p packet
  | Train _ -> assert false (* dispatched by the run loop, needs [until] *)
  | Start_flow flow -> (
    let frec = Vec.get t.flows flow in
    let h = host_exn t frec.src_host in
    match slot h.senders flow with
    | Some s -> pump t ex frec.src_host s
    | None -> (
      match slot h.udp_tx flow with
      | Some u -> emit_burst t ex frec.src_host u
      | None -> ()))
  | Emit { flow } -> (
    let frec = Vec.get t.flows flow in
    match slot (host_exn t frec.src_host).udp_tx flow with
    | Some u -> emit_burst t ex frec.src_host u
    | None -> ())
  | Timeout { host; flow; gen } -> (
    match slot (host_exn t host).senders flow with
    | None -> ()
    | Some s ->
      (* events fire in time order, so this was the earliest queued one *)
      s.t_min <- Float.infinity;
      if s.frec.finish = None then begin
        let rtx = Tcp.Sender.on_timeout s.tcp ~gen in
        if rtx <> [] then begin
          List.iter (send_segment t ex host s) rtx;
          arm_timer ex host s
        end
        else if
          Tcp.Sender.timer_needed s.tcp
          && s.t_deadline >= ex.xclk.(0)
          && s.t_deadline < Float.infinity
          && s.t_min > s.t_deadline
        then begin
          (* stale early fire: keep the logical deadline covered *)
          s.t_min <- s.t_deadline;
          Eventq.schedule ex.xq ~time:s.t_deadline
            (Timeout { host; flow; gen = s.t_gen })
        end
      end)
  | Daemon_tick ->
    (* serial path only: a sharded run intercepts the tick in its
       window loop and runs it at the barrier *)
    daemon_tick t ~now:ex.xclk.(0);
    sample_queue_health t;
    if not (Eventq.is_empty ex.xq) then begin
      Eventq.schedule ex.xq ~time:(ex.xclk.(0) +. t.cfg.daemon_period) Daemon_tick
    end

let run_serial ?(until = infinity) t =
  let ex = t.execs.(0) in
  if not t.daemon_scheduled then begin
    t.daemon_scheduled <- true;
    Eventq.schedule ex.xq ~time:t.cfg.daemon_period Daemon_tick
  end;
  let rec loop () =
    match Eventq.pop_before ex.xq ~until with
    | None -> ()
    | Some ev ->
      (* the pop already advanced [ex.xclk.(0)] — it is the queue's
         time cell *)
      ex.x_events <- ex.x_events + 1;
      (match ev with
      | Train { node; port } -> train_drain t ex node port ~until
      | ev -> handle t ex ev);
      loop ()
  in
  loop ();
  sample_queue_health t

(* ------------------------------------------------------------------ *)
(* Sharded execution: conservative time windows over per-domain event
   loops.  Every shard simulates [t, t + lookahead) against only its
   own state; boundary packets cross through the mailboxes at window
   barriers; daemon ticks are barrier markers present in every shard's
   queue, so their (time, seq) order against ordinary events is exactly
   the serial engine's. *)

let set_shards t assign =
  if t.daemon_scheduled || t.sharded then
    invalid_arg "Packetsim.set_shards: must be called before the first run";
  let n = Vec.length t.nodes in
  if Array.length assign <> n then
    invalid_arg "Packetsim.set_shards: need exactly one shard id per node";
  let ns = ref 0 in
  Array.iter
    (fun s ->
      if s < 0 then invalid_arg "Packetsim.set_shards: negative shard id";
      if s + 1 > !ns then ns := s + 1)
    assign;
  (* cut size and lookahead over the concrete node graph: the window
     length is the smallest latency a boundary packet must cross *)
  let cut = ref 0 and min_lat = ref infinity in
  for id = 0 to n - 1 do
    Vec.iter
      (fun p ->
        if id < p.peer && assign.(id) <> assign.(p.peer) then begin
          incr cut;
          if p.link.delay < !min_lat then min_lat := p.link.delay
        end)
      (node t id).ports
  done;
  if !ns > 1 && !cut > 0 && not (!min_lat > 0.) then
    invalid_arg "Packetsim.set_shards: zero-latency cross-shard link leaves no lookahead";
  t.shard_of <- assign;
  t.lookahead <- !min_lat;
  t.sh_cut_links <- !cut;
  Obs.set_gauge g_shard_domains (float_of_int (Stdlib.max 1 !ns));
  Obs.set_gauge g_shard_cut (float_of_int !cut);
  Obs.set_gauge g_shard_lookahead !min_lat

let auto_shards t ~domains =
  if domains < 1 then invalid_arg "Packetsim.auto_shards: domains must be >= 1";
  let n = Vec.length t.nodes in
  if n = 0 then invalid_arg "Packetsim.auto_shards: empty network";
  (* Quotient the node graph by AS — routers by as_id, hosts adopting
     the AS of the router behind port 0 — then hand the quotient to the
     min-cut-ish partitioner with router counts as balance weights.
     Keeping whole ASes together means host links and iBGP meshes never
     cross shards; only inter-AS links (the high-latency ones) can be
     cut. *)
  let gid = Hashtbl.create 64 in
  let groups = ref 0 in
  let group_of_as a =
    match Hashtbl.find_opt gid a with
    | Some g -> g
    | None ->
      let g = !groups in
      incr groups;
      Hashtbl.add gid a g;
      g
  in
  let group = Array.make n (-1) in
  for id = 0 to n - 1 do
    match (node t id).kind with
    | Router r -> group.(id) <- group_of_as r.as_id
    | Host _ -> ()
  done;
  for id = 0 to n - 1 do
    if group.(id) < 0 then begin
      let nd = node t id in
      group.(id) <-
        (if Vec.length nd.ports > 0 then begin
           let peer = (Vec.get nd.ports 0).peer in
           if group.(peer) >= 0 then group.(peer) else 0
         end
         else 0)
    end
  done;
  let ng = Stdlib.max 1 !groups in
  let weights = Array.make ng 0 in
  for id = 0 to n - 1 do
    match (node t id).kind with
    | Router _ -> weights.(group.(id)) <- weights.(group.(id)) + 1
    | Host _ -> ()
  done;
  let etbl = Hashtbl.create 256 in
  for id = 0 to n - 1 do
    Vec.iter
      (fun p ->
        if id < p.peer then begin
          let gu = group.(id) and gv = group.(p.peer) in
          if gu <> gv then begin
            let key = if gu < gv then (gu, gv) else (gv, gu) in
            match Hashtbl.find_opt etbl key with
            | Some l when l <= p.link.delay -> ()
            | _ -> Hashtbl.replace etbl key p.link.delay
          end
        end)
      (node t id).ports
  done;
  let edges =
    (* (u, v) keys are unique in etbl, so the pair alone orders fully *)
    Hashtbl.fold (fun (u, v) l acc -> (u, v, l) :: acc) etbl []
    |> List.sort (fun (u1, v1, _) (u2, v2, _) ->
           match Int.compare u1 u2 with 0 -> Int.compare v1 v2 | c -> c)
    |> Array.of_list
  in
  let assign = Mifo_topology.Partition.partition ~parts:domains ~weights ~edges in
  Mifo_topology.Partition.report
    (Mifo_topology.Partition.stats ~weights ~edges ~assign);
  set_shards t (Array.init n (fun id -> assign.(group.(id))))

(* Move the setup-time events (Start_flows scheduled by add_flow before
   the first run) from the singleton queue into per-shard queues.
   Draining in (time, seq) order preserves each shard's relative order,
   so the per-shard seq order is the serial seq order restricted to
   that shard; the barrier tick scheduled after the drain gets a later
   seq than every pre-run event — exactly the serial run loop's
   ordering. *)
let activate_shards t =
  if Array.length t.shard_of = 0 then auto_shards t ~domains:t.cfg.domains;
  let ns = 1 + Array.fold_left Stdlib.max 0 t.shard_of in
  if ns > 1 then begin
    let old = t.execs.(0) in
    let execs = Array.init ns (make_exec ~engine:t.cfg.eventq_engine) in
    let continue = ref true in
    while !continue do
      match Eventq.pop_before old.xq ~until:infinity with
      | None -> continue := false
      | Some ev ->
        let time = Eventq.last_time old.xq in
        let home =
          match ev with
          | Start_flow f | Emit { flow = f } ->
            t.shard_of.((Vec.get t.flows f).src_host)
          | Timeout { host; _ } -> t.shard_of.(host)
          | Arrive { node; _ } | Train { node; _ } -> t.shard_of.(node)
          | Daemon_tick -> 0 (* cannot exist before the first run *)
        in
        Eventq.schedule execs.(home).xq ~time ev
    done;
    t.execs <- execs;
    t.sharded <- true;
    t.mboxes <- Array.init (ns * ns) (fun _ -> make_mailbox ());
    t.daemon_scheduled <- true;
    t.sh_next_tick <- t.cfg.daemon_period;
    Array.iter (fun ex -> Eventq.schedule ex.xq ~time:t.sh_next_tick Daemon_tick) execs
  end

(* Barrier: schedule every parked boundary packet into its destination
   shard's queue in (arrival time, source seq, source shard) order —
   the documented deterministic merge.  Scheduling in that order makes
   the destination seqs respect it, so two boundary packets tie-break
   exactly as the rule says. *)
let drain_mailboxes t =
  let ns = Array.length t.execs in
  for d = 0 to ns - 1 do
    let total = ref 0 in
    for s = 0 to ns - 1 do
      total := !total + Vec.length t.mboxes.((s * ns) + d).mb_time
    done;
    if !total > 0 then begin
      let keys = Array.make !total (0., 0, 0, 0) in
      let k = ref 0 in
      for s = 0 to ns - 1 do
        let mb = t.mboxes.((s * ns) + d) in
        for i = 0 to Vec.length mb.mb_time - 1 do
          keys.(!k) <- (Vec.get mb.mb_time i, Vec.get mb.mb_seq i, s, i);
          incr k
        done
      done;
      Array.sort
        (fun (ta, sa, pa, _) (tb, sb, pb, _) ->
          let c = Float.compare ta tb in
          if c <> 0 then c
          else
            let c = Int.compare sa sb in
            if c <> 0 then c else Int.compare pa pb)
        keys;
      let xq = t.execs.(d).xq in
      Array.iter
        (fun (time, _, s, i) ->
          let mb = t.mboxes.((s * ns) + d) in
          Eventq.schedule xq ~time
            (Arrive
               {
                 node = Vec.get mb.mb_node i;
                 port = Vec.get mb.mb_port i;
                 packet = Vec.get mb.mb_pkt i;
               }))
        keys;
      for s = 0 to ns - 1 do
        let mb = t.mboxes.((s * ns) + d) in
        Vec.clear mb.mb_time;
        Vec.clear mb.mb_seq;
        Vec.clear mb.mb_node;
        Vec.clear mb.mb_port;
        Vec.clear mb.mb_pkt
      done
    end
  done

let fire_completions t =
  match t.on_complete with
  | None -> ()
  | Some f ->
    let total = Array.fold_left (fun a ex -> a + Vec.length ex.x_done) 0 t.execs in
    if total > 0 then begin
      let keys = Array.make total (0., 0) in
      let k = ref 0 in
      Array.iter
        (fun ex ->
          for i = 0 to Vec.length ex.x_done - 1 do
            keys.(!k) <- (Vec.get ex.x_done_t i, Vec.get ex.x_done i);
            incr k
          done;
          Vec.clear ex.x_done_t;
          Vec.clear ex.x_done)
        t.execs;
      Array.sort
        (fun (ta, fa) (tb, fb) ->
          let c = Float.compare ta tb in
          if c <> 0 then c else Int.compare fa fb)
        keys;
      Array.iter (fun (_, flow) -> f flow) keys
    end

(* The coordinator's daemon tick: all shards just popped their barrier
   marker at [now].  Counts as one event, like the serial tick pop. *)
let do_tick t ~now =
  Array.iter
    (fun ex ->
      ex.x_hit_tick <- false;
      ex.xclk.(0) <- now)
    t.execs;
  daemon_tick t ~now;
  sample_queue_health t;
  t.sh_ticks <- t.sh_ticks + 1;
  if Array.exists (fun ex -> not (Eventq.is_empty ex.xq)) t.execs then begin
    t.sh_next_tick <- now +. t.cfg.daemon_period;
    Array.iter (fun ex -> Eventq.schedule ex.xq ~time:t.sh_next_tick Daemon_tick) t.execs
  end
  else t.sh_next_tick <- infinity

(* One shard's slice of a window: the serial dispatch loop bounded at
   the window end, stopping early (without counting) when it pops the
   tick barrier marker. *)
let shard_window t (ex : exec) ~until =
  let continue = ref true in
  while !continue do
    match Eventq.pop_before ex.xq ~until with
    | None -> continue := false
    | Some (Train { node; port }) ->
      ex.x_events <- ex.x_events + 1;
      train_drain t ex node port ~until
    | Some Daemon_tick -> ex.x_hit_tick <- true; continue := false
    | Some ev ->
      ex.x_events <- ex.x_events + 1;
      handle t ex ev
  done

let run_sharded t ~until =
  let execs = t.execs in
  let ns = Array.length execs in
  let pool = Mifo_util.Parallel.get_default () in
  let continue = ref true in
  while !continue do
    (* mailboxes are empty here (drained at every barrier), so the
       earliest pending event anywhere is the next window's start *)
    let next =
      Array.fold_left
        (fun acc ex ->
          match Eventq.peek_time ex.xq with Some tm when tm < acc -> tm | _ -> acc)
        infinity execs
    in
    if next = infinity || next > until then continue := false
    else begin
      let tick_at = t.sh_next_tick in
      let wend = Float.min (Float.min (next +. t.lookahead) tick_at) until in
      t.sh_windows <- t.sh_windows + 1;
      Mifo_util.Parallel.fork_join pool ns (fun s ->
          shard_window t execs.(s) ~until:wend);
      drain_mailboxes t;
      fire_completions t;
      if Array.exists (fun ex -> ex.x_hit_tick) execs then do_tick t ~now:tick_at
    end
  done;
  (* settle every shard clock at the global frontier and take the same
     end-of-run health sample the serial loop takes *)
  let tmax = Array.fold_left (fun a ex -> Float.max a ex.xclk.(0)) 0. execs in
  Array.iter (fun ex -> ex.xclk.(0) <- tmax) execs;
  sample_queue_health t

let run ?(until = infinity) t =
  if
    (not t.sharded)
    && (not t.daemon_scheduled)
    && Option.is_none t.tracer
    && (Array.length t.shard_of > 0 || t.cfg.domains > 1)
  then activate_shards t;
  if t.sharded then run_sharded t ~until else run_serial ~until t

type shard_stats = {
  shards : int;
  cut_links : int;
  lookahead : float;
  windows : int;
  barrier_ticks : int;
}

let shard_stats t =
  {
    shards = Array.length t.execs;
    cut_links = t.sh_cut_links;
    lookahead = (if t.sharded then t.lookahead else 0.);
    windows = t.sh_windows;
    barrier_ticks = t.sh_ticks;
  }

type flow_result = { flow : int; start : float; finish : float option; bytes : int }

let flow_results t =
  Array.map
    (fun (f : flow_rec) ->
      { flow = f.id; start = f.start; finish = f.finish; bytes = f.bytes })
    (Vec.to_array t.flows)

let throughput_series t =
  (* Bucket bits are exact int sums per shard, so adding across shards
     is order-independent and a sharded run serializes bit-identically
     to the serial oracle. *)
  let len = Array.fold_left (fun a ex -> Stdlib.max a (Vec.length ex.x_goodput)) 0 t.execs in
  Array.init len (fun i ->
      let bits =
        Array.fold_left
          (fun a ex -> if i < Vec.length ex.x_goodput then a + Vec.get ex.x_goodput i else a)
          0 t.execs
      in
      ( float_of_int i *. t.cfg.series_interval,
        float_of_int bits /. t.cfg.series_interval ))

let counters t =
  Array.fold_left
    (fun acc ex ->
      {
        delivered_packets = acc.delivered_packets + ex.x_delivered;
        dropped_queue = acc.dropped_queue + ex.x_drop_queue;
        dropped_ttl = acc.dropped_ttl + ex.x_drop_ttl;
        dropped_valley = acc.dropped_valley + ex.x_drop_valley;
        dropped_no_route = acc.dropped_no_route + ex.x_drop_no_route;
        encapsulated = acc.encapsulated + ex.x_encapsulated;
        deflected = acc.deflected + ex.x_deflected;
      })
    {
      delivered_packets = 0;
      dropped_queue = 0;
      dropped_ttl = 0;
      dropped_valley = 0;
      dropped_no_route = 0;
      encapsulated = 0;
      deflected = 0;
    }
    t.execs

let path_switches t =
  let totals = Vec.create () in
  for id = 0 to Vec.length t.nodes - 1 do
    match (node t id).kind with
    | Host _ -> ()
    | Router r ->
      for flow = 0 to Vec.length r.switches - 1 do
        let c = Vec.get r.switches flow in
        if c > 0 then begin
          Vec.ensure totals (flow + 1) 0;
          Vec.set totals flow (Vec.get totals flow + c)
        end
      done
  done;
  (* flows ascending, built back to front — no sort needed *)
  let acc = ref [] in
  for flow = Vec.length totals - 1 downto 0 do
    let c = Vec.get totals flow in
    if c > 0 then acc := (flow, c) :: !acc
  done;
  !acc

(* Read-only topology/state exports for the static verifier
   (Mifo_analysis.Net_check): enough to rebuild the forwarding graph —
   nodes, ports with their kinds and far ends, FIBs (via [fib]) and the
   iBGP routing table — without exposing any mutable simulator state. *)

type node_view = Router_view of { as_id : int } | Host_view of { addr : Prefix.addr }

let node_count t = Vec.length t.nodes

let node_view t id =
  match (node t id).kind with
  | Router r -> Router_view { as_id = r.as_id }
  | Host h -> Host_view { addr = h.addr }

let port_count t id = Vec.length (node t id).ports
let port_kind t id p = (port t id p).kind

let port_peer t id p =
  let pt = port t id p in
  (pt.peer, pt.peer_port)

let ibgp_route t id peer = Hashtbl.find_opt (router_exn t id).ibgp_peers peer

let set_completion_hook t f = t.on_complete <- Some f
let set_tracer t f = t.tracer <- Some f
let clear_tracer t = t.tracer <- None
