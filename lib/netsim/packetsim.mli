(** Packet-level event-driven network simulator.

    The substrate for the prototype/testbed experiments (Section V): real
    packets with MIFO tags and IP-in-IP headers, FIFO tx queues with tail
    drop, store-and-forward links, TCP sources ({!Tcp}), routers running
    the {!Mifo_core.Engine} on every packet, and the {!Mifo_core.Daemon}
    ticking periodically on every router.  The congestion signal is the
    tx-queue occupancy ratio, exactly the paper's choice.

    Build a network with [add_router] / [add_host] / [connect], populate
    FIBs, optionally install an alternative-path chooser per router
    (otherwise alt ports stay as configured), add flows, then [run].

    Everything is deterministic; there is no randomness anywhere in the
    simulator. *)

type t
type node_id = int

type config = {
  queue_bits : int;  (** default per-link tx queue (1 Mbit ≈ 125 KB) *)
  daemon_period : float;  (** seconds between daemon epochs *)
  daemon_config : Mifo_core.Daemon.config;
  engine_congest_ratio : float;
      (** tx-queue ratio at/above which the engine sees congestion *)
  mss_bits : int;  (** data segment size (paper: 1 KB = 8000 bits) *)
  ack_bits : int;
  series_interval : float;  (** aggregate-throughput bucket width *)
  tag_check : bool;  (** disable only for the loop ablation *)
  ibgp_encap : bool;  (** disable only for the iBGP-cycling ablation *)
  eventq_engine : Eventq.engine;
      (** {!Eventq.Wheel} (default) or {!Eventq.Heap}; both produce
          bit-identical runs — the heap is the oracle, the wheel is
          faster on packet-dominated event mixes *)
  packet_trains : bool;
      (** batch back-to-back departures on one link into a single
          queue entry (default [true]); behavior-neutral, see
          {!Eventq.alloc_seq} *)
  domains : int;
      (** shard the network across this many event loops run on the
          {!Mifo_util.Parallel} pool (default [1] = the serial oracle).
          With [domains > 1] the first {!run} partitions the network by
          AS ({!auto_shards}) unless {!set_shards} installed an explicit
          assignment; results are bit-identical to [domains = 1].
          Mirrors the [MIFO_SIM_DOMAINS] environment variable in the
          CLI. *)
}

val default_config : config

val create : ?config:config -> unit -> t
val config : t -> config

val add_router : t -> as_id:int -> node_id
val add_host : t -> addr:Mifo_bgp.Prefix.addr -> node_id

val connect :
  t ->
  a:node_id ->
  b:node_id ->
  kind_ab:Mifo_core.Engine.port_kind ->
  kind_ba:Mifo_core.Engine.port_kind ->
  rate:float ->
  ?delay:float ->
  ?queue_bits:int ->
  unit ->
  int * int
(** Full-duplex link; returns (port on [a], port on [b]).  [kind_ab] is
    how [a] sees the port toward [b].  Default delay 50 µs. *)

val fib : t -> node_id -> Mifo_core.Fib.t
(** The router's FIB, to be populated by the caller.
    @raise Invalid_argument on a host node. *)

val set_alt_chooser :
  t -> node_id -> (Mifo_bgp.Prefix.t -> Mifo_core.Fib.entry -> int option) -> unit
(** Installed per router; called by the daemon every epoch to refresh
    [alt_port].  Without a chooser the daemon keeps the configured
    alternative. *)

val set_ranked_chooser :
  t -> node_id -> (Mifo_bgp.Prefix.t -> Mifo_core.Fib.entry -> int list) -> unit
(** Ranked-set variant (best first, truncated at {!Mifo_core.Fib.max_alts}):
    when installed it wins over {!set_alt_chooser} and the daemon tick
    runs {!Mifo_core.Daemon.epoch_ranked} for this router, spreading the
    deflected buckets across the returned slots. *)

val spare_capacity : t -> node_id -> int -> float
(** Smoothed spare capacity (bits/s) of the link behind a port since the
    last daemon epoch — the measurement border routers exchange over
    iBGP; typical input for an alt chooser. *)

val add_flow : t -> src:node_id -> dst:node_id -> bytes:int -> start:float -> int
(** A TCP transfer between two hosts; returns the flow id.
    @raise Invalid_argument on non-host endpoints or a bad size. *)

val add_udp_flow :
  t -> src:node_id -> dst:node_id -> bytes:int -> ?burst:int -> start:float -> unit -> int
(** An open-loop UDP-style transfer: the source streams its segments
    back-to-back at the host link's line rate in bursts of [burst]
    (default 32) packets per emission event, self-paced off the link's
    serialization — the software analogue of the testbed's [iperf -u]
    probe traffic that creates the paper's congestion regimes.  No ack
    clock, no retransmission: lost segments stay lost, and the flow's
    [finish] is set only if every segment reaches the sink (the
    completion hook fires there too).  Returns the flow id.
    @raise Invalid_argument on non-host endpoints, a bad size, or a
    non-positive [burst]. *)

val run : ?until:float -> t -> unit
(** Process events until the queue drains or simulated [until]
    (default: drain).

    When [config.domains > 1] (or {!set_shards} was called), the first
    [run] activates sharded execution: one event loop per shard,
    advanced in conservative time windows of length [lookahead] (the
    minimum latency over cut links) on the {!Mifo_util.Parallel} pool,
    with boundary packets exchanged through per-shard-pair mailboxes
    drained at window barriers in (arrival time, source seq, source
    shard) order.  The merged run is bit-identical to the serial
    engine: same {!counters}, {!flow_results}, {!throughput_series} and
    {!events_processed}.  Two sharded-mode caveats: completion hooks
    fire at window barriers (in (finish time, flow id) order) rather
    than mid-window, and an installed tracer forces the serial path —
    per-hop callbacks into user code cannot run concurrently. *)

(** {1 Sharding} *)

val set_shards : t -> int array -> unit
(** [set_shards t assign] pins each node to a shard (one entry per
    node, ids [0..]) before the first {!run}; overrides
    {!auto_shards}.  @raise Invalid_argument after the first run, on a
    length mismatch, a negative id, or a zero-latency cross-shard link
    (which would leave no lookahead window). *)

val auto_shards : t -> domains:int -> unit
(** Partition the network into [domains] shards along AS boundaries:
    the AS quotient graph (router counts as weights, minimum inter-AS
    link latency as edge latencies) is split by
    {!Mifo_topology.Partition.partition}, so iBGP meshes and host links
    never cross shards and only high-latency inter-AS links are cut.
    Called automatically by the first {!run} when [config.domains > 1]
    and no explicit assignment exists. *)

type shard_stats = {
  shards : int;  (** event loops actually running (1 = serial) *)
  cut_links : int;  (** full-duplex links crossing shard boundaries *)
  lookahead : float;  (** conservative window length, seconds *)
  windows : int;  (** fork/join windows executed so far *)
  barrier_ticks : int;  (** daemon ticks run at window barriers *)
}

val shard_stats : t -> shard_stats

val now : t -> float

val events_processed : t -> int
(** Total simulator events handled so far (packet arrivals, flow starts,
    timeouts, daemon ticks) — the denominator of the events/sec
    benchmark. *)

(** {1 Results} *)

type flow_result = {
  flow : int;
  start : float;
  finish : float option;  (** completion time of the whole transfer *)
  bytes : int;
}

val flow_results : t -> flow_result array

val throughput_series : t -> (float * float) array
(** (bucket start time, aggregate goodput in bits/s) measured at the
    receiving hosts. *)

type counters = {
  delivered_packets : int;
  dropped_queue : int;
  dropped_ttl : int;
  dropped_valley : int;
  dropped_no_route : int;
  encapsulated : int;  (** packets tunneled between iBGP peers *)
  deflected : int;  (** packets sent via an alternative (eBGP) port *)
}

val counters : t -> counters
val path_switches : t -> (int * int) list
(** Per flow id, how many times its egress port changed at some router —
    the testbed view of Fig. 9's switch count. *)

(** {1 State export}

    Read-only views of the built network for the static verifier
    ({!Mifo_analysis}): it audits FIBs against RIBs and walks the product
    forwarding automaton over these accessors without touching any
    mutable simulator state. *)

type node_view =
  | Router_view of { as_id : int }
  | Host_view of { addr : Mifo_bgp.Prefix.addr }

val node_count : t -> int
val node_view : t -> node_id -> node_view

val port_count : t -> node_id -> int

val port_kind : t -> node_id -> int -> Mifo_core.Engine.port_kind
(** How the node sees its port [p] — exactly the view the engine's env
    exposes during forwarding. *)

val port_peer : t -> node_id -> int -> node_id * int
(** [(peer node, peer's port)] at the far end of the link behind a port. *)

val ibgp_route : t -> node_id -> node_id -> int option
(** [ibgp_route t r peer] is the local port of router [r] carrying its
    iBGP session toward router [peer], if one exists — the engine's
    [route_to_peer], i.e. how an in-transit tunnel is steered.
    @raise Invalid_argument on a host node. *)

val set_completion_hook : t -> (int -> unit) -> unit
(** Called (with the flow id) the moment a sender sees its last byte
    acknowledged; may add new flows — how the testbed chains its
    back-to-back transfers. *)

val set_tracer :
  t -> (float -> int -> Mifo_core.Packet.t -> Mifo_core.Engine.action -> unit) -> unit
(** Install a per-hop trace hook: called with (time, router node, packet
    as received, engine action) for every packet a router processes.
    Used by tests and debugging tools to reconstruct packet paths. *)

val clear_tracer : t -> unit
