module As_graph = Mifo_topology.As_graph
module Relationship = Mifo_topology.Relationship
module Router_level = Mifo_topology.Router_level
module Routing = Mifo_bgp.Routing
module Routing_table = Mifo_bgp.Routing_table
module Prefix = Mifo_bgp.Prefix
module Fib = Mifo_core.Fib
module Engine = Mifo_core.Engine
module Deployment = Mifo_core.Deployment

type t = {
  sim : Packetsim.t;
  expansion : Router_level.t;
  node_of_router : int array;
  host_of_as : (int, int) Hashtbl.t;
}

let host t as_id = Hashtbl.find t.host_of_as as_id

let build ?config ?(link_rate = 1e9) ?host_rate table ~expansion ~deployment ~hosts () =
  let host_rate = match host_rate with Some r -> r | None -> link_rate in
  let g = Routing_table.graph table in
  if g != expansion.Router_level.graph then
    invalid_arg "Router_network.build: expansion is over a different graph";
  let n = As_graph.n g in
  List.iter
    (fun v ->
      if v < 0 || v >= n then invalid_arg "Router_network.build: host AS out of range")
    hosts;
  let sim = Packetsim.create ?config () in
  let nrouters = Router_level.router_count expansion in
  let node_of_router =
    Array.init nrouters (fun r ->
        Packetsim.add_router sim ~as_id:expansion.Router_level.as_of_router.(r))
  in
  (* eBGP links between the pinned border routers of adjacent ASes. *)
  let ebgp_port = Hashtbl.create (4 * As_graph.edge_count g) in
  (* (u_as, v_as) -> (node of u's border router, its port) *)
  ignore
    (As_graph.fold_edges g ~init:()
       ~f:(fun () u v kind ->
         let ru = expansion.Router_level.link_router (u, v) in
         let rv = expansion.Router_level.link_router (v, u) in
         let rel_uv, rel_vu =
           match kind with
           | As_graph.Provider_customer -> (Relationship.Customer, Relationship.Provider)
           | As_graph.Peer_peer -> (Relationship.Peer, Relationship.Peer)
         in
         let pu, pv =
           Packetsim.connect sim ~a:node_of_router.(ru) ~b:node_of_router.(rv)
             ~kind_ab:(Engine.Ebgp { neighbor_as = v; rel = rel_uv })
             ~kind_ba:(Engine.Ebgp { neighbor_as = u; rel = rel_vu })
             ~rate:link_rate ()
         in
         Hashtbl.replace ebgp_port (u, v) (node_of_router.(ru), pu);
         Hashtbl.replace ebgp_port (v, u) (node_of_router.(rv), pv)));
  (* iBGP full-mesh links. *)
  let ibgp_port = Hashtbl.create 256 in
  (* (router, router) -> port on the first *)
  List.iter
    (fun (a, b) ->
      let na = node_of_router.(a) and nb = node_of_router.(b) in
      let pa, pb =
        Packetsim.connect sim ~a:na ~b:nb
          ~kind_ab:(Engine.Ibgp { peer_router = nb })
          ~kind_ba:(Engine.Ibgp { peer_router = na })
          ~rate:link_rate ()
      in
      Hashtbl.replace ibgp_port (a, b) pa;
      Hashtbl.replace ibgp_port (b, a) pb)
    expansion.Router_level.ibgp_pairs;
  (* Hosts attach to the first router of their AS. *)
  let host_of_as = Hashtbl.create (List.length hosts) in
  let host_router = Hashtbl.create (List.length hosts) in
  let host_port = Hashtbl.create (List.length hosts) in
  List.iter
    (fun v ->
      if not (Hashtbl.mem host_of_as v) then begin
        let r = expansion.Router_level.routers_of_as.(v).(0) in
        let h = Packetsim.add_host sim ~addr:(Prefix.host_of_as v 1) in
        let _, router_side =
          Packetsim.connect sim ~a:h ~b:node_of_router.(r) ~kind_ab:Engine.Local
            ~kind_ba:Engine.Local ~rate:host_rate ()
        in
        Hashtbl.replace host_of_as v h;
        Hashtbl.replace host_router v r;
        Hashtbl.replace host_port v router_side
      end)
    hosts;
  (* FIBs per destination prefix; routing states fanned out over the
     shared domain pool first, the wiring below stays serial. *)
  Routing_table.precompute table (Array.of_list (List.sort_uniq Int.compare hosts));
  let alt_candidates = Hashtbl.create 1024 in
  (* (router, dest network) -> (owner router, port on this router,
     owner's ebgp port) candidates; for a local (same-router) candidate
     owner = the router itself *)
  List.iter
    (fun d ->
      let prefix = Prefix.of_as d in
      let rt = Routing_table.get table d in
      for v = 0 to n - 1 do
        let routers = expansion.Router_level.routers_of_as.(v) in
        if v = d then begin
          (* intra-AS delivery: the host-owning router delivers locally,
             the others forward to it over iBGP *)
          let hr = Hashtbl.find host_router v in
          Array.iter
            (fun r ->
              let fib = Packetsim.fib sim node_of_router.(r) in
              if r = hr then Fib.insert fib prefix ~out_port:(Hashtbl.find host_port v) ()
              else
                Fib.insert fib prefix ~out_port:(Hashtbl.find ibgp_port (r, hr)) ())
            routers
        end
        else begin
          match Routing.next_hop rt v with
          | None -> ()
          | Some nh ->
            let egress = expansion.Router_level.link_router (v, nh) in
            let _, egress_port = Hashtbl.find ebgp_port (v, nh) in
            let capable = Deployment.capable deployment v in
            let alts = if capable then Routing.alternatives rt v else [] in
            Array.iter
              (fun r ->
                let fib = Packetsim.fib sim node_of_router.(r) in
                let out_port =
                  if r = egress then egress_port else Hashtbl.find ibgp_port (r, egress)
                in
                let candidates =
                  List.map
                    (fun (e : Routing.rib_entry) ->
                      let owner = expansion.Router_level.link_router (v, e.via) in
                      let _, owner_port = Hashtbl.find ebgp_port (v, e.via) in
                      let local_port =
                        if owner = r then owner_port
                        else Hashtbl.find ibgp_port (r, owner)
                      in
                      (node_of_router.(owner), owner_port, local_port))
                    alts
                in
                if candidates <> [] then
                  Hashtbl.replace alt_candidates
                    (node_of_router.(r), prefix.Prefix.network)
                    candidates;
                match candidates with
                | (_, _, first) :: _ ->
                  Fib.insert fib prefix ~out_port ~alt_port:first ()
                | [] -> Fib.insert fib prefix ~out_port ())
              routers
        end
      done)
    hosts;
  (* Daemon choosers: greedy on the owning router's measured eBGP spare -
     the measurement border routers exchange over their iBGP sessions. *)
  Array.iter
    (fun node ->
      Packetsim.set_alt_chooser sim node (fun prefix entry ->
          match Hashtbl.find_opt alt_candidates (node, prefix.Prefix.network) with
          | None | Some [] -> Fib.alt_port entry
          | Some candidates ->
            let best = ref None in
            List.iter
              (fun (owner_node, owner_port, local_port) ->
                let s = Packetsim.spare_capacity sim owner_node owner_port in
                match !best with
                | Some (_, bs) when bs >= s -> ()
                | _ -> best := Some (local_port, s))
              candidates;
            (match !best with
             | Some (port, s) when s > 0. -> Some port
             | _ -> None)))
    node_of_router;
  { sim; expansion; node_of_router; host_of_as }

let add_transfer t ~src_as ~dst_as ~bytes ~start =
  Packetsim.add_flow t.sim ~src:(host t src_as) ~dst:(host t dst_as) ~bytes ~start

let run ?until t = Packetsim.run ?until t.sim
