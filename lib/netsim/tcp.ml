module Sender = struct
  type t = {
    total : int;
    mutable snd_una : int;
    mutable snd_nxt : int;
    mutable cwnd : float;  (* segments *)
    mutable ssthresh : float;
    mutable dup : int;
    mutable rto : float;
    mutable gen : int;
    mutable srtt : float;  (* smoothed RTT; negative = no sample yet *)
    mutable rttvar : float;
  }

  let initial_cwnd = 10.
  let initial_ssthresh = 64.
  let min_rto = 0.005
  let max_rto = 2.0

  let create ~total =
    if total <= 0 then invalid_arg "Tcp.Sender.create: total must be positive";
    {
      total;
      snd_una = 0;
      snd_nxt = 0;
      cwnd = initial_cwnd;
      ssthresh = initial_ssthresh;
      dup = 0;
      rto = 0.05;
      gen = 0;
      srtt = -1.;
      rttvar = 0.;
    }

  let window t = int_of_float t.cwnd

  let next_seq_hot t =
    if t.snd_nxt >= t.total then -1
    else if t.snd_nxt - t.snd_una >= Stdlib.max 1 (window t) then -1
    else begin
      let seq = t.snd_nxt in
      t.snd_nxt <- t.snd_nxt + 1;
      seq
    end

  let next_to_send t =
    let seq = next_seq_hot t in
    if seq < 0 then None else Some seq

  let on_ack t ack =
    if ack > t.snd_una then begin
      (* new data acknowledged *)
      t.snd_una <- ack;
      if t.snd_nxt < ack then t.snd_nxt <- ack;
      t.dup <- 0;
      if t.cwnd < t.ssthresh then t.cwnd <- t.cwnd +. 1. (* slow start *)
      else t.cwnd <- t.cwnd +. (1. /. t.cwnd);
      []
    end
    else if ack = t.snd_una && t.snd_una < t.snd_nxt then begin
      t.dup <- t.dup + 1;
      if t.dup = 3 then begin
        (* fast retransmit / simplified fast recovery *)
        t.ssthresh <- Stdlib.max 2. (t.cwnd /. 2.);
        t.cwnd <- t.ssthresh;
        t.dup <- 0;
        [ t.snd_una ]
      end
      else []
    end
    else []

  let on_timeout t ~gen =
    if gen <> t.gen || t.snd_una >= t.total || t.snd_una >= t.snd_nxt then []
    else begin
      t.ssthresh <- Stdlib.max 2. (t.cwnd /. 2.);
      t.cwnd <- 1.;
      (* go-back-N: the lost head is retransmitted here, everything after
         it will be resent by the window pump as cwnd regrows *)
      t.snd_nxt <- t.snd_una + 1;
      t.dup <- 0;
      t.rto <- Stdlib.min max_rto (t.rto *. 2.);
      [ t.snd_una ]
    end

  (* Jacobson/Karels estimator; the simulator feeds samples for segments
     that were transmitted exactly once (Karn's rule). *)
  let observe_rtt t sample =
    if sample > 0. then begin
      if t.srtt < 0. then begin
        t.srtt <- sample;
        t.rttvar <- sample /. 2.
      end
      else begin
        let err = sample -. t.srtt in
        t.srtt <- t.srtt +. (0.125 *. err);
        t.rttvar <- t.rttvar +. (0.25 *. (Float.abs err -. t.rttvar))
      end;
      t.rto <-
        Stdlib.min max_rto
          (Stdlib.max min_rto (t.srtt +. Stdlib.max (4. *. t.rttvar) 0.004))
    end

  let arm_timer t =
    t.gen <- t.gen + 1;
    t.gen

  let timer_needed t = t.snd_una < t.snd_nxt
  let rto t = t.rto
  let cwnd t = t.cwnd
  let ssthresh t = t.ssthresh
  let is_done t = t.snd_una >= t.total
  let snd_una t = t.snd_una
end

module Receiver = struct
  module Vec = Mifo_util.Vec

  (* Out-of-order segments as a seq-indexed bit set: seq ids are dense,
     so a growable bool table beats an (int, unit) Hashtbl on the
     per-segment hot path. *)
  type t = { mutable rcv_nxt : int; out_of_order : bool Vec.t }

  let create () = { rcv_nxt = 0; out_of_order = Vec.create () }

  let on_data t seq =
    if seq = t.rcv_nxt then begin
      t.rcv_nxt <- t.rcv_nxt + 1;
      while
        t.rcv_nxt < Vec.length t.out_of_order && Vec.get t.out_of_order t.rcv_nxt
      do
        Vec.set t.out_of_order t.rcv_nxt false;
        t.rcv_nxt <- t.rcv_nxt + 1
      done
    end
    else if seq > t.rcv_nxt then begin
      Vec.ensure t.out_of_order (seq + 1) false;
      Vec.set t.out_of_order seq true
    end;
    t.rcv_nxt

  let expected t = t.rcv_nxt
end
