(** A compact TCP Reno-style congestion-control state machine.

    The testbed experiment (Section V) transfers 100 MB TCP flows through
    the packet-level simulator; this module is the sender/receiver logic:
    slow start, congestion avoidance, fast retransmit on three duplicate
    ACKs, and go-back-N on timeout.  It is a pure state machine — the
    simulator owns time and packet delivery and feeds events in — so the
    congestion-control arithmetic is testable in isolation.

    Sequence numbers count MSS-sized segments (the paper uses 1 KB
    packets), starting at 0; an ACK value of [a] acknowledges all
    segments below [a]. *)

module Sender : sig
  type t

  val create : total:int -> t
  (** [total] segments to transfer.  @raise Invalid_argument if
      nonpositive. *)

  val next_to_send : t -> int option
  (** The next fresh segment permitted by the window, advancing internal
      state; [None] when window-limited or finished sending. *)

  val next_seq_hot : t -> int
  (** {!next_to_send} without the option box: [-1] when window-limited
      or finished.  For the simulator's per-segment pump loop. *)

  val on_ack : t -> int -> int list
  (** Process a (possibly duplicate) cumulative ACK; returns segment ids
      to retransmit immediately (fast retransmit). *)

  val on_timeout : t -> gen:int -> int list
  (** Retransmission timeout for timer generation [gen]; stale
      generations are ignored and return [].  Otherwise collapses to
      go-back-N: cwnd to 1 segment, RTO doubled, returns the segment to
      resend. *)

  val observe_rtt : t -> float -> unit
  (** Feed an RTT sample (seconds) for a segment transmitted exactly once
      (Karn's rule); updates the RTO with the Jacobson/Karels
      estimator. *)

  val arm_timer : t -> int
  (** Invalidate outstanding timers and return the new generation; call
      whenever a timer should be (re)started. *)

  val timer_needed : t -> bool
  (** There is unacknowledged data in flight. *)

  val min_rto : float
  val max_rto : float
  (** The RTO clamp: {!rto} always lies within [[min_rto, max_rto]],
      whatever RTT samples and timeout backoffs the sender has seen. *)

  val rto : t -> float
  val cwnd : t -> float
  (** Congestion window in segments (for tests and instrumentation). *)

  val ssthresh : t -> float
  val is_done : t -> bool
  (** All [total] segments are cumulatively acknowledged. *)

  val snd_una : t -> int
end

module Receiver : sig
  type t

  val create : unit -> t
  val on_data : t -> int -> int
  (** Receive segment [seq] (duplicates and reordering welcome); returns
      the cumulative ACK to send back. *)

  val expected : t -> int
end
