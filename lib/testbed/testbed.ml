module Prefix = Mifo_bgp.Prefix
module Fib = Mifo_core.Fib
module Engine = Mifo_core.Engine
module Packetsim = Mifo_netsim.Packetsim
module Relationship = Mifo_topology.Relationship

type protocol = Bgp_routing | Mifo_routing

type config = {
  flows_per_source : int;
  flow_bytes : int;
  link_rate : float;
  sim : Packetsim.config;
}

let default_config =
  {
    flows_per_source = 30;
    flow_bytes = 10_000_000;
    link_rate = 1e9;
    sim = Packetsim.default_config;
  }

let paper_config = { default_config with flow_bytes = 100_000_000 }

type result = {
  protocol : protocol;
  aggregate_series : (float * float) array;
  fct : float array;
  makespan : float;
  mean_aggregate : float;
  counters : Packetsim.counters;
  switches : (int * int) list;
}

type network = {
  sim : Packetsim.t;
  s1 : int;
  s2 : int;
  d1 : int;
  d2 : int;
  rd : int;
  ra : int;
  rd_ebgp : int;
  ra_ebgp : int;
}

let build (config : config) protocol =
  let sim = Packetsim.create ~config:config.sim () in
  let rate = config.link_rate in
  (* Routers: 11 machines as in the paper. *)
  let r1 = Packetsim.add_router sim ~as_id:1 in
  let r2 = Packetsim.add_router sim ~as_id:2 in
  let rb = Packetsim.add_router sim ~as_id:3 in  (* ingress from AS1 *)
  let rc = Packetsim.add_router sim ~as_id:3 in  (* ingress from AS2 *)
  let rd = Packetsim.add_router sim ~as_id:3 in  (* default egress, to AS4 *)
  let ra = Packetsim.add_router sim ~as_id:3 in  (* alternative egress, to AS6 *)
  let r4a = Packetsim.add_router sim ~as_id:4 in
  let r4b = Packetsim.add_router sim ~as_id:4 in
  let r5a = Packetsim.add_router sim ~as_id:5 in  (* ingress from AS4; D1 *)
  let r5b = Packetsim.add_router sim ~as_id:5 in  (* ingress from AS6; D2 *)
  let r6 = Packetsim.add_router sim ~as_id:6 in
  (* Hosts. *)
  let s1_addr = Prefix.host_of_as 1 1 and s2_addr = Prefix.host_of_as 2 1 in
  let d1_addr = Prefix.host_of_as 5 1 and d2_addr = Prefix.host_of_as 5 2 in
  let s1 = Packetsim.add_host sim ~addr:s1_addr in
  let s2 = Packetsim.add_host sim ~addr:s2_addr in
  let d1 = Packetsim.add_host sim ~addr:d1_addr in
  let d2 = Packetsim.add_host sim ~addr:d2_addr in
  let local = Engine.Local in
  let ebgp as_ rel = Engine.Ebgp { neighbor_as = as_; rel } in
  let ibgp peer = Engine.Ibgp { peer_router = peer } in
  let link ?rate:(r = rate) a b ka kb =
    Packetsim.connect sim ~a ~b ~kind_ab:ka ~kind_ba:kb ~rate:r ()
  in
  (* Host links (the host side's port kind is never consulted). *)
  let _, r1_s1 = link s1 r1 local local in
  let _, r2_s2 = link s2 r2 local local in
  let _, r5a_d1 = link d1 r5a local local in
  let _, r5b_d2 = link d2 r5b local local in
  (* eBGP links; relationships as seen by each side.  AS1 and AS2 are
     customers of AS3; AS3 is a customer of AS4 and AS6; AS5 is a customer
     of AS4 and AS6. *)
  let r1_rb, rb_r1 = link r1 rb (ebgp 3 Relationship.Provider) (ebgp 1 Relationship.Customer) in
  let r2_rc, rc_r2 = link r2 rc (ebgp 3 Relationship.Provider) (ebgp 2 Relationship.Customer) in
  let rd_r4a, r4a_rd = link rd r4a (ebgp 4 Relationship.Provider) (ebgp 3 Relationship.Customer) in
  let ra_r6, r6_ra = link ra r6 (ebgp 6 Relationship.Provider) (ebgp 3 Relationship.Customer) in
  let r4b_r5a, r5a_r4b = link r4b r5a (ebgp 5 Relationship.Customer) (ebgp 4 Relationship.Provider) in
  let r6_r5b, _r5b_r6 = link r6 r5b (ebgp 5 Relationship.Customer) (ebgp 6 Relationship.Provider) in
  (* iBGP full mesh inside AS3, plus intra-AS links in AS4 and AS5. *)
  let rb_rd, rd_rb = link rb rd (ibgp rd) (ibgp rb) in
  let rc_rd, rd_rc = link rc rd (ibgp rd) (ibgp rc) in
  let rb_ra, _ra_rb = link rb ra (ibgp ra) (ibgp rb) in
  let rc_ra, _ra_rc = link rc ra (ibgp ra) (ibgp rc) in
  let rd_ra, ra_rd = link rd ra (ibgp ra) (ibgp rd) in
  let r4a_r4b, r4b_r4a = link r4a r4b (ibgp r4b) (ibgp r4a) in
  let r5a_r5b, r5b_r5a = link r5a r5b (ibgp r5b) (ibgp r5a) in
  ignore rb_ra;
  ignore rc_ra;
  (* Prefixes. *)
  let p1 = Prefix.of_as 1 and p2 = Prefix.of_as 2 and p5 = Prefix.of_as 5 in
  let d1_pfx = Prefix.make d1_addr 32 and d2_pfx = Prefix.make d2_addr 32 in
  let add node prefix out = Fib.insert (Packetsim.fib sim node) prefix ~out_port:out () in
  let add_alt node prefix out alt =
    Fib.insert (Packetsim.fib sim node) prefix ~out_port:out ~alt_port:alt ()
  in
  (* Routes toward AS5 (the data direction). *)
  add r1 p5 r1_rb;
  add r2 p5 r2_rc;
  add rb p5 rb_rd;
  add rc p5 rc_rd;
  (match protocol with
   | Mifo_routing ->
     add_alt rd p5 rd_r4a rd_ra;
     add_alt ra p5 ra_rd ra_r6
   | Bgp_routing ->
     add rd p5 rd_r4a;
     add ra p5 ra_rd);
  add r4a p5 r4a_r4b;
  add r4b p5 r4b_r5a;
  add r6 p5 r6_r5b;
  (* Host routes inside AS5 (more specific than p5). *)
  add r5a d1_pfx r5a_d1;
  add r5a d2_pfx r5a_r5b;
  add r5b d2_pfx r5b_d2;
  add r5b d1_pfx r5b_r5a;
  (* Reverse routes for the ACK stream (5 -> 4 -> 3 -> 1/2). *)
  add r5a p1 r5a_r4b;
  add r5a p2 r5a_r4b;
  add r5b p1 r5b_r5a;
  add r5b p2 r5b_r5a;
  add r4b p1 r4b_r4a;
  add r4b p2 r4b_r4a;
  add r4a p1 r4a_rd;
  add r4a p2 r4a_rd;
  add rd p1 rd_rb;
  add rd p2 rd_rc;
  add ra p1 ra_rd;
  add ra p2 ra_rd;
  add r6 p1 r6_ra;
  add r6 p2 r6_ra;
  add rb p1 rb_r1;
  add rb p2 rb_rd;
  add rc p2 rc_r2;
  add rc p1 rc_rd;
  add r1 p1 r1_s1;
  add r2 p2 r2_s2;
  (* The MIFO daemon's greedy alternative selection: Rd's alternative (the
     iBGP peer Ra) is only worth using while Ra's own exit link has spare
     capacity — the measurement Ra shares over the iBGP session. *)
  (match protocol with
   | Mifo_routing ->
     Packetsim.set_alt_chooser sim rd (fun prefix entry ->
         if Prefix.equal prefix p5 then
           (* greedy link monitoring: the alternative is withdrawn only
              when Ra's exit link is fully busy AND nothing is currently
              deflected (i.e. it would start at zero benefit) *)
           if
             Fib.deflect_buckets entry = 0
             && Packetsim.spare_capacity sim ra ra_r6 < 0.02 *. rate
           then None
           else Some rd_ra
         else Fib.alt_port entry);
     Packetsim.set_alt_chooser sim ra (fun prefix entry ->
         if Prefix.equal prefix p5 then Some ra_r6 else Fib.alt_port entry)
   | Bgp_routing -> ());
  ignore r5a_r5b;
  { sim; s1; s2; d1; d2; rd; ra; rd_ebgp = rd_r4a; ra_ebgp = ra_r6 }

let run ?(config = default_config) protocol =
  let net = build config protocol in
  let sim = net.sim in
  (* Two chains of back-to-back flows: S1 -> D1 and S2 -> D2. *)
  let remaining = Hashtbl.create 4 in
  let start_next src dst =
    let id = Packetsim.add_flow sim ~src ~dst ~bytes:config.flow_bytes
        ~start:(Float.max 0. (Packetsim.now sim)) in
    Hashtbl.replace remaining id (src, dst)
  in
  let counts = Hashtbl.create 4 in
  Hashtbl.replace counts net.s1 (config.flows_per_source - 1);
  Hashtbl.replace counts net.s2 (config.flows_per_source - 1);
  Packetsim.set_completion_hook sim (fun flow ->
      match Hashtbl.find_opt remaining flow with
      | None -> ()
      | Some (src, dst) ->
        let left = Option.value ~default:0 (Hashtbl.find_opt counts src) in
        if left > 0 then begin
          Hashtbl.replace counts src (left - 1);
          start_next src dst
        end);
  start_next net.s1 net.d1;
  start_next net.s2 net.d2;
  Packetsim.run sim;
  let results = Packetsim.flow_results sim in
  let fct =
    Array.of_list
      (List.filter_map
         (fun (r : Packetsim.flow_result) ->
           match r.finish with Some f -> Some (f -. r.start) | None -> None)
         (Array.to_list results))
  in
  let makespan =
    Array.fold_left
      (fun acc (r : Packetsim.flow_result) ->
        match r.finish with Some f -> Float.max acc f | None -> acc)
      0. results
  in
  let series = Packetsim.throughput_series sim in
  let active = Array.of_list (List.filter (fun (t, _) -> t <= makespan) (Array.to_list series)) in
  let mean_aggregate =
    if Array.length active = 0 then 0.
    else
      Array.fold_left (fun acc (_, v) -> acc +. v) 0. active
      /. float_of_int (Array.length active)
  in
  {
    protocol;
    aggregate_series = series;
    fct;
    makespan;
    mean_aggregate;
    counters = Packetsim.counters sim;
    switches = Packetsim.path_switches sim;
  }
