module Prng = Mifo_util.Prng
module Vec = Mifo_util.Vec

type role = Tier1 | Transit | Stub

type params = {
  ases : int;
  tier1 : int;
  transit_fraction : float;
  transit_levels : int;
  mean_providers : float;
  peering_ratio : float;
  content_providers : int;
  content_peer_span : int * int;
}

let default_params =
  {
    ases = 2_000;
    tier1 = 12;
    transit_fraction = 0.22;
    transit_levels = 3;
    mean_providers = 2.8;
    peering_ratio = 0.31;
    content_providers = 12;
    content_peer_span = (20, 80);
  }

let paper_scale_params =
  {
    default_params with
    ases = 44_340;
    tier1 = 14;
    content_providers = 40;
    content_peer_span = (50, 400);
  }

type t = { graph : As_graph.t; roles : role array; content : int array }

let role_to_string = function Tier1 -> "tier1" | Transit -> "transit" | Stub -> "stub"

let validate p =
  if p.ases < 4 then invalid_arg "Generator: need at least 4 ASes";
  if p.tier1 < 2 || p.tier1 >= p.ases then invalid_arg "Generator: bad tier1 size";
  if p.transit_fraction < 0. || p.transit_fraction > 0.9 then
    invalid_arg "Generator: transit_fraction out of range";
  if p.transit_levels < 1 then invalid_arg "Generator: transit_levels must be >= 1";
  if p.mean_providers < 1. then invalid_arg "Generator: mean_providers must be >= 1";
  if p.peering_ratio < 0. || p.peering_ratio > 0.8 then
    invalid_arg "Generator: peering_ratio out of range";
  if p.content_providers < 0 then invalid_arg "Generator: content_providers < 0";
  let lo, hi = p.content_peer_span in
  if lo < 1 || hi < lo then invalid_arg "Generator: bad content_peer_span"

(* Edge accumulator that rejects duplicates silently (callers retry). *)
module Edge_set = struct
  type t = { seen : (int * int, unit) Hashtbl.t; mutable edges : (int * int * As_graph.edge_kind) list }

  let create () = { seen = Hashtbl.create 4096; edges = [] }
  let key u v = if u < v then (u, v) else (v, u)
  let mem t u v = Hashtbl.mem t.seen (key u v)

  let add t u v kind =
    if u = v || mem t u v then false
    else begin
      Hashtbl.add t.seen (key u v) ();
      t.edges <- (u, v, kind) :: t.edges;
      true
    end
end

let generate ?(params = default_params) ~seed () =
  let p = params in
  validate p;
  let rng = Prng.create ~seed () in
  let n = p.ases in
  let roles = Array.make n Stub in
  let levels = Array.make n (p.transit_levels + 1) in
  for v = 0 to p.tier1 - 1 do
    roles.(v) <- Tier1;
    levels.(v) <- 0
  done;
  let transit_count =
    int_of_float (p.transit_fraction *. float_of_int (n - p.tier1))
  in
  for v = p.tier1 to p.tier1 + transit_count - 1 do
    roles.(v) <- Transit;
    levels.(v) <- Prng.int_in rng 1 p.transit_levels
  done;
  let edges = Edge_set.create () in
  (* Tier-1 full mesh of peering links. *)
  for u = 0 to p.tier1 - 1 do
    for v = u + 1 to p.tier1 - 1 do
      ignore (Edge_set.add edges u v As_graph.Peer_peer)
    done
  done;
  (* Preferential-attachment bags: bag.(l) holds every AS of level l once
     per (1 + customers gained), so sampling an index uniformly from the
     bags below a level is provider choice proportional to attractiveness. *)
  let bags = Array.init (p.transit_levels + 1) (fun _ -> Vec.create ()) in
  for v = 0 to p.tier1 - 1 do
    Vec.push bags.(0) v
  done;
  let sample_provider_below level exclude =
    let total = ref 0 in
    for l = 0 to level - 1 do
      total := !total + Vec.length bags.(l)
    done;
    if !total = 0 then None
    else begin
      let rec attempt tries =
        if tries = 0 then None
        else begin
          let idx = ref (Prng.int rng !total) in
          let l = ref 0 in
          while !idx >= Vec.length bags.(!l) do
            idx := !idx - Vec.length bags.(!l);
            incr l
          done;
          let cand = Vec.get bags.(!l) !idx in
          if List.mem cand exclude then attempt (tries - 1) else Some cand
        end
      in
      attempt 16
    end
  in
  let pc_count = ref 0 in
  (* Number of providers: 1 + geometric with mean (mean_providers - 1). *)
  let provider_count () =
    let extra_mean = p.mean_providers -. 1. in
    let rec geo acc =
      if extra_mean > 0. && Prng.float rng 1.0 < extra_mean /. (1. +. extra_mean) then
        geo (acc + 1)
      else acc
    in
    1 + geo 0
  in
  (* Attach transit ASes level by level, then stubs: each picks its
     providers among strictly-lower-level ASes. *)
  let attach v =
    let lv = levels.(v) in
    let wanted = provider_count () in
    let rec pick k chosen =
      if k = 0 then chosen
      else
        match sample_provider_below lv chosen with
        | None -> chosen
        | Some prov -> pick (k - 1) (prov :: chosen)
    in
    let chosen = pick wanted [] in
    let chosen = if chosen = [] then [ Prng.int rng p.tier1 ] else chosen in
    List.iter
      (fun prov ->
        if Edge_set.add edges prov v As_graph.Provider_customer then begin
          incr pc_count;
          (* the provider gets more attractive *)
          Vec.push bags.(levels.(prov)) prov
        end)
      chosen;
    if roles.(v) = Transit then Vec.push bags.(lv) v
  in
  let order = Array.init (n - p.tier1) (fun i -> i + p.tier1) in
  Array.sort (fun a b -> compare (levels.(a), a) (levels.(b), b)) order;
  Array.iter attach order;
  (* Content-provider stubs: stub ASes with an unusually large peering
     fan-out, standing in for Google/Facebook-style networks. *)
  let stub_pool =
    Array.of_list
      (List.filter (fun v -> roles.(v) = Stub) (Array.to_list order))
  in
  let content =
    if p.content_providers = 0 || Array.length stub_pool = 0 then [||]
    else begin
      let k = Stdlib.min p.content_providers (Array.length stub_pool) in
      let picks = Prng.sample_without_replacement rng k (Array.length stub_pool) in
      Array.map (fun i -> stub_pool.(i)) picks
    end
  in
  let peer_count = ref (p.tier1 * (p.tier1 - 1) / 2) in
  let lo, hi = p.content_peer_span in
  Array.iter
    (fun cp ->
      let wanted = Prng.int_in rng lo (Stdlib.min hi (n - 1)) in
      let added = ref 0 and tries = ref 0 in
      while !added < wanted && !tries < wanted * 8 do
        incr tries;
        let other = Prng.int rng n in
        if other <> cp && roles.(other) <> Tier1 then
          if Edge_set.add edges cp other As_graph.Peer_peer then begin
            incr added;
            incr peer_count
          end
      done)
    content;
  (* Remaining peering links to reach the target mix, sampled with
     preference for well-connected transits (degree-proportional via the
     same bags) and a level gap of at most one. *)
  let target_peer =
    int_of_float
      (p.peering_ratio /. (1. -. p.peering_ratio) *. float_of_int !pc_count)
  in
  let candidates =
    Array.of_list
      (List.filter (fun v -> roles.(v) = Transit) (Array.to_list order))
  in
  let all_non_t1 = order in
  let tries = ref 0 in
  let max_tries = 40 * Stdlib.max 1 target_peer in
  while !peer_count < target_peer && !tries < max_tries do
    incr tries;
    let u =
      if Array.length candidates > 0 && Prng.float rng 1.0 < 0.7 then
        Prng.choose rng candidates
      else Prng.choose rng all_non_t1
    in
    let v =
      if Array.length candidates > 0 && Prng.float rng 1.0 < 0.7 then
        Prng.choose rng candidates
      else Prng.choose rng all_non_t1
    in
    if u <> v && abs (levels.(u) - levels.(v)) <= 1 then
      if Edge_set.add edges u v As_graph.Peer_peer then incr peer_count
  done;
  let graph = As_graph.create ~n ~edges:edges.Edge_set.edges in
  { graph; roles; content }

let fig2a_gadget () =
  As_graph.create ~n:4
    ~edges:
      [
        (1, 0, As_graph.Provider_customer);
        (2, 0, As_graph.Provider_customer);
        (3, 0, As_graph.Provider_customer);
        (1, 2, As_graph.Peer_peer);
        (2, 3, As_graph.Peer_peer);
        (1, 3, As_graph.Peer_peer);
      ]

let k2_gadget () =
  As_graph.create ~n:5
    ~edges:
      [
        (1, 3, As_graph.Provider_customer);
        (3, 0, As_graph.Provider_customer);
        (2, 4, As_graph.Provider_customer);
        (4, 0, As_graph.Provider_customer);
        (1, 0, As_graph.Peer_peer);
        (2, 0, As_graph.Peer_peer);
        (1, 2, As_graph.Peer_peer);
      ]

let black_hole_gadget () =
  As_graph.create ~n:4
    ~edges:
      [
        (2, 1, As_graph.Provider_customer);
        (3, 1, As_graph.Provider_customer);
        (0, 2, As_graph.Provider_customer);
        (0, 3, As_graph.Provider_customer);
      ]

let stretch_gadget () =
  As_graph.create ~n:4
    ~edges:
      [
        (1, 2, As_graph.Provider_customer);
        (2, 3, As_graph.Provider_customer);
        (3, 0, As_graph.Provider_customer);
        (1, 0, As_graph.Provider_customer);
      ]
