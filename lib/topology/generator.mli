(** Synthetic Internet AS topology.

    The paper evaluates on the UCLA IRL AS-topology trace of Nov. 2014
    (Table I: 44,340 ASes, 109,360 links, 69% provider–customer, 31%
    peering).  That trace is not redistributable, so this generator
    produces graphs with the structural properties the evaluation relies
    on: a tier-1 clique, a shallow multi-level transit hierarchy, a
    power-law degree distribution grown by preferential attachment,
    multihomed stubs, heavily-peered content-provider stubs (the Google /
    Facebook role in the traffic model) and a configurable
    provider–customer : peering link mix.  Real traces in CAIDA [as-rel]
    format can be loaded instead through {!As_rel_io}. *)

type role = Tier1 | Transit | Stub

type params = {
  ases : int;  (** total number of ASes (>= 4) *)
  tier1 : int;  (** size of the fully-meshed tier-1 clique *)
  transit_fraction : float;  (** fraction of non-tier-1 ASes that are transit *)
  transit_levels : int;  (** depth of the transit hierarchy below tier-1 *)
  mean_providers : float;  (** mean multihoming degree (providers per AS), >= 1 *)
  peering_ratio : float;  (** target fraction of links that are peering, in \[0, 0.8\] *)
  content_providers : int;  (** number of heavily-peered content stubs *)
  content_peer_span : int * int;  (** min/max peer links per content stub *)
}

val default_params : params
(** 2,000 ASes, 12 tier-1s, 22% transit over 3 levels, mean 2.8 providers,
    31% peering, 12 content providers with 20–80 peers each — a
    laptop-sized graph with the paper's link mix. *)

val paper_scale_params : params
(** Table I scale: 44,340 ASes. *)

type t = {
  graph : As_graph.t;
  roles : role array;
  content : int array;  (** ids of the content-provider stubs, none elsewhere *)
}

val generate : ?params:params -> seed:int -> unit -> t
(** Deterministic in [seed].  The result is connected, its
    provider–customer links form a DAG, and the peering fraction is within
    a few percent of [peering_ratio].

    @raise Invalid_argument on nonsensical parameters. *)

val role_to_string : role -> string

val fig2a_gadget : unit -> As_graph.t
(** The 4-AS topology of the paper's Fig. 2(a): ASes 1, 2, 3 peering
    pairwise, AS 0 a customer of all three.  Node 0 is the customer.
    This is the canonical data-plane loop example used in tests and the
    loop-breaking ablation. *)

val k2_gadget : unit -> As_graph.t
(** A 5-AS topology whose ablated (no Tag-Check) deflection automaton
    toward destination 0 is loop-free at k=1 but loops at k=2: ASes 1
    and 2 each reach 0 through a customer chain (1→3→0, 2→4→0, the
    preferred default), hold a direct peer link to 0 (their
    second-choice RIB entry — a safe delivery sink and the only
    alternative a k=1 data plane can install), and peer with each
    other, making the mutual 1↔2 routes each side's {e third} RIB
    entry.  Only when the ranked set admits the second-ranked
    alternative (k ≥ 2) do the 1→2 and 2→1 deflection edges both
    open, closing the cycle. *)

val black_hole_gadget : unit -> As_graph.t
(** A 4-AS topology that strands packets when one link fails: AS 1 is a
    customer of 2 and 3, which are customers of 0 (the destination).
    Toward 0 every RIB is clean — loops, valleys and stretch all verify
    — but ASes 2 and 3 are single-homed in the RIB sense (their only
    route is the direct provider link to 0), so failing link 2–0
    strands every packet at AS 2 with no repair: the delivery check
    (and only it) must fail under [--fail-link 2:0], with a
    counterexample that replays [Dropped] through the dynamic walker.
    AS 1 deflecting 2→3 survives — which is why the loop check stays
    clean under the same failure. *)

val stretch_gadget : unit -> As_graph.t
(** A 4-AS chain with a shortcut: 1→2→3→0 provider–customer chain
    (downhill toward 0) plus a direct 1→0 link.  Toward destination 0,
    AS 1 defaults to the direct link (len 1) but holds the 3-hop chain
    route as an alternative, and AS 2 holds a 2-hop route via its
    provider 1 next to its 2-hop default via 3.  The worst deliverable
    deflection path (e.g. 2→1→2→3→0 after a 2→1 then 1→2 deflection
    pair... the automaton's tag rewriting admits 2→1, 1→2 exactly once)
    realises stretch 2, so the stretch check — and only it — must fail
    with [--stretch-bound 1] while loops and delivery verify clean. *)
