module Heap = Mifo_util.Heap
module Obs = Mifo_util.Obs

type stats = {
  parts : int;
  cut_edges : int;
  min_cut_latency : float;
  heaviest : int;
  lightest : int;
}

let validate ~parts ~weights ~edges =
  if parts < 1 then invalid_arg "Partition.partition: parts must be >= 1";
  let n = Array.length weights in
  Array.iter
    (fun w -> if w < 0 then invalid_arg "Partition.partition: negative weight")
    weights;
  Array.iter
    (fun (u, v, _) ->
      if u < 0 || u >= n || v < 0 || v >= n then
        invalid_arg "Partition.partition: edge endpoint out of range")
    edges

(* Adjacency as flat arrays: off.(u) .. off.(u+1)-1 index into
   (nbr, lat), both directions of every edge. *)
let adjacency n edges =
  let deg = Array.make n 0 in
  Array.iter
    (fun (u, v, _) ->
      if u <> v then begin
        deg.(u) <- deg.(u) + 1;
        deg.(v) <- deg.(v) + 1
      end)
    edges;
  let off = Array.make (n + 1) 0 in
  for u = 0 to n - 1 do
    off.(u + 1) <- off.(u) + deg.(u)
  done;
  let m2 = off.(n) in
  let nbr = Array.make m2 0 and lat = Array.make m2 0. in
  let fill = Array.copy off in
  Array.iter
    (fun (u, v, l) ->
      if u <> v then begin
        nbr.(fill.(u)) <- v;
        lat.(fill.(u)) <- l;
        fill.(u) <- fill.(u) + 1;
        nbr.(fill.(v)) <- u;
        lat.(fill.(v)) <- l;
        fill.(v) <- fill.(v) + 1
      end)
    edges;
  (off, nbr, lat)

let partition ~parts ~weights ~edges =
  validate ~parts ~weights ~edges;
  let n = Array.length weights in
  let assign = Array.make n (-1) in
  if parts = 1 || n <= parts then begin
    (* Degenerate shapes: everything in part 0, or one node per part
       (round-robin keeps parts maximally even). *)
    for u = 0 to n - 1 do
      assign.(u) <- (if parts = 1 then 0 else u mod parts)
    done;
    assign
  end
  else begin
    let off, nbr, lat = adjacency n edges in
    let total = Array.fold_left ( + ) 0 weights in
    let part_weight = Array.make parts 0 in
    let assigned = ref 0 in
    (* Seed choice: the lowest-degree unassigned node (ties by index) —
       peripheral seeds grow inward instead of splitting the core. *)
    let next_seed () =
      let best = ref (-1) and best_deg = ref max_int in
      for u = 0 to n - 1 do
        if assign.(u) < 0 then begin
          let d = off.(u + 1) - off.(u) in
          if d < !best_deg then begin
            best := u;
            best_deg := d
          end
        end
      done;
      !best
    in
    (* Grow parts 0 .. parts-2; whatever is left belongs to the last
       part.  Per-part target is recomputed from the remaining weight so
       an early part that overshoots (node granularity) does not starve
       the late ones. *)
    for p = 0 to parts - 2 do
      let remaining_parts = parts - p in
      let remaining_weight = total - Array.fold_left ( + ) 0 part_weight in
      let target = (remaining_weight + remaining_parts - 1) / remaining_parts in
      (* (latency, tiebreak node id) min-heap over the frontier *)
      let cmp (la, ua) (lb, ub) =
        let c = Float.compare la lb in
        if c <> 0 then c else Int.compare ua ub
      in
      let frontier = Heap.create ~cmp () in
      let absorb u =
        assign.(u) <- p;
        part_weight.(p) <- part_weight.(p) + weights.(u);
        incr assigned;
        for i = off.(u) to off.(u + 1) - 1 do
          if assign.(nbr.(i)) < 0 then Heap.push frontier (lat.(i), nbr.(i))
        done
      in
      let continue = ref (!assigned < n) in
      while !continue && part_weight.(p) < target do
        match Heap.pop frontier with
        | Some (_, u) -> if assign.(u) < 0 then absorb u
        | None -> (
          (* empty frontier: fresh seed (first node, or a disconnected
             component) *)
          match next_seed () with
          | -1 -> continue := false
          | u -> absorb u)
      done
    done;
    let p_last = parts - 1 in
    for u = 0 to n - 1 do
      if assign.(u) < 0 then begin
        assign.(u) <- p_last;
        part_weight.(p_last) <- part_weight.(p_last) + weights.(u)
      end
    done;
    (* Boundary refinement: move a node to the neighboring part holding
       most of its edges when that strictly cuts fewer edges and the
       destination stays within one max-node-weight of the target.  Two
       deterministic sweeps are enough to clean up the growth frontier;
       this is not trying to be Kernighan–Lin. *)
    let max_w = Array.fold_left Stdlib.max 1 weights in
    let target = ((total + parts - 1) / parts) + max_w in
    let links = Array.make parts 0 in
    for _sweep = 1 to 2 do
      for u = 0 to n - 1 do
        let home = assign.(u) in
        if off.(u + 1) > off.(u) then begin
          Array.fill links 0 parts 0;
          for i = off.(u) to off.(u + 1) - 1 do
            let p = assign.(nbr.(i)) in
            links.(p) <- links.(p) + 1
          done;
          let best = ref home in
          for p = 0 to parts - 1 do
            if
              p <> home
              && links.(p) > links.(!best)
              && part_weight.(p) + weights.(u) <= target
            then best := p
          done;
          if !best <> home && links.(!best) > links.(home) then begin
            part_weight.(home) <- part_weight.(home) - weights.(u);
            part_weight.(!best) <- part_weight.(!best) + weights.(u);
            assign.(u) <- !best
          end
        end
      done
    done;
    assign
  end

let stats ~weights ~edges ~assign =
  let n = Array.length weights in
  if Array.length assign <> n then invalid_arg "Partition.stats: assignment length";
  let parts = 1 + Array.fold_left Stdlib.max 0 assign in
  let part_weight = Array.make parts 0 in
  Array.iteri (fun u p -> part_weight.(p) <- part_weight.(p) + weights.(u)) assign;
  let cut = ref 0 and min_lat = ref infinity in
  Array.iter
    (fun (u, v, l) ->
      if u <> v && assign.(u) <> assign.(v) then begin
        incr cut;
        if l < !min_lat then min_lat := l
      end)
    edges;
  {
    parts;
    cut_edges = !cut;
    min_cut_latency = !min_lat;
    heaviest = Array.fold_left Stdlib.max 0 part_weight;
    lightest = Array.fold_left Stdlib.min max_int part_weight;
  }

let g_parts = Obs.gauge "partition.parts"
let g_cut = Obs.gauge "partition.cut_edges"
let g_min_lat = Obs.gauge "partition.min_cut_latency"
let g_heaviest = Obs.gauge "partition.heaviest"
let g_lightest = Obs.gauge "partition.lightest"

let report st =
  Obs.set_gauge g_parts (float_of_int st.parts);
  Obs.set_gauge g_cut (float_of_int st.cut_edges);
  Obs.set_gauge g_min_lat st.min_cut_latency;
  Obs.set_gauge g_heaviest (float_of_int st.heaviest);
  Obs.set_gauge g_lightest (float_of_int st.lightest)
