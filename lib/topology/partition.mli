(** Min-cut-ish graph partitioning for sharded simulation.

    Splits a weighted undirected graph into [parts] balanced pieces
    while preferring to cut {e high-latency} edges: the conservative
    window of a parallel discrete-event simulation is bounded by the
    minimum latency across the cut, so every low-latency edge kept
    inside a shard buys a longer lookahead window.

    The algorithm is deterministic (no randomness, no hash iteration):
    greedy graph growing — each part is grown from a low-degree seed by
    repeatedly absorbing the frontier node reachable over the
    lowest-latency edge, until the part reaches its weight target —
    followed by a boundary refinement sweep that moves nodes to the
    neighboring part holding most of their edges when that strictly
    reduces the cut without breaking the balance.  Quality is
    "min-cut-ish", not optimal: the consumers (a handful of simulator
    shards over an AS quotient graph) need balance, a positive minimum
    cut latency and determinism, not the last few percent of cut size. *)

type stats = {
  parts : int;  (** requested part count *)
  cut_edges : int;  (** edges whose endpoints landed in different parts *)
  min_cut_latency : float;
      (** smallest latency over the cut — the lookahead a conservative
          windowed simulation gets; [infinity] when nothing is cut *)
  heaviest : int;  (** weight of the heaviest part *)
  lightest : int;  (** weight of the lightest part *)
}

val partition :
  parts:int -> weights:int array -> edges:(int * int * float) array -> int array
(** [partition ~parts ~weights ~edges] assigns each of
    [Array.length weights] nodes a part id in [0, parts).  [weights]
    are non-negative balance weights (a zero-weight node still counts
    as occupying its part); [edges] are undirected [(u, v, latency)]
    triples, duplicates and self-loops tolerated.  Deterministic in its
    inputs.  Parts may come out empty only when the graph has fewer
    positive-weight nodes than [parts].
    @raise Invalid_argument on [parts < 1], a negative weight, or an
    edge endpoint out of range. *)

val stats :
  weights:int array -> edges:(int * int * float) array -> assign:int array -> stats
(** Cut size, minimum cut latency and balance of an assignment (from
    {!partition} or hand-made). *)

val report : stats -> unit
(** Publish the stats through {!Mifo_util.Obs} gauges:
    [partition.parts], [partition.cut_edges],
    [partition.min_cut_latency], [partition.heaviest],
    [partition.lightest]. *)
