(** Polymorphic binary min-heap.

    Backs the simulators' event queues: O(log n) push/pop, amortized O(1)
    space reuse via a growable array.  The order is given at creation
    time, so one heap type serves both the packet-level event queue
    (ordered by simulated time) and auxiliary priority queues. *)

type 'a t

val create : ?capacity:int -> cmp:('a -> 'a -> int) -> unit -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool
val push : 'a t -> 'a -> unit
val peek : 'a t -> 'a option

val top_exn : 'a t -> 'a
(** The minimum element without removing it, no allocation.
    @raise Invalid_argument on an empty heap. *)

val drop : 'a t -> unit
(** Remove the top element (no-op when empty) without returning it —
    the allocation-free counterpart of {!pop} for callers that already
    read the top via {!top_exn}. *)

val pop : 'a t -> 'a option
val pop_exn : 'a t -> 'a
(** @raise Invalid_argument on an empty heap. *)

val clear : 'a t -> unit
val of_array : cmp:('a -> 'a -> int) -> 'a array -> 'a t
(** Heapify in O(n). *)

val to_sorted_list : 'a t -> 'a list
(** Non-destructive; ascending order. *)
