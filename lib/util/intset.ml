(* Flat open-addressed set of nonnegative ints: linear probing over a
   power-of-two arena with backward-shift deletion — the same machinery
   as the flat FIB index ({!Mifo_core.Fib}), minus the arena (the key is
   the payload).  No boxes, no buckets: membership on the verifier's
   disabled-edge overlay stays one cache line per probe, and a value
   owned by one domain is safe under the {!Parallel} pool (unlike
   [Hashtbl], there is no amortised global state). *)

type t = {
  mutable cap : int;  (* power of two; 0 = never populated *)
  mutable keys : int array;  (* -1 = empty slot *)
  mutable live : int;
}

let empty_ints : int array = [||]
let create () = { cap = 0; keys = empty_ints; live = 0 }

(* Fibonacci-style multiplicative mix: keys here are [at * n + via]
   products whose low bits correlate with the topology's id layout; the
   multiply+xor spreads them before the power-of-two mask. *)
let[@inline] hash_key k =
  let h = k * 0x2545F4914F6CDD1D in
  h lxor (h lsr 29)

let find_slot t key =
  let mask = t.cap - 1 in
  let rec probe i =
    let k = t.keys.(i) in
    if k = key then i else if k = -1 then lnot i else probe ((i + 1) land mask)
  in
  probe (hash_key key land mask)

let mem t key = t.cap > 0 && find_slot t key >= 0

let grow t =
  let old_keys = t.keys in
  let cap = if t.cap = 0 then 16 else t.cap * 2 in
  t.cap <- cap;
  t.keys <- Array.make cap (-1);
  t.live <- 0;
  Array.iter
    (fun k ->
      if k >= 0 then begin
        let slot = find_slot t k in
        t.keys.(lnot slot) <- k;
        t.live <- t.live + 1
      end)
    old_keys

let add t key =
  if key < 0 then invalid_arg "Intset.add: negative key";
  if t.cap = 0 || t.live * 2 >= t.cap then grow t;
  let slot = find_slot t key in
  if slot < 0 then begin
    t.keys.(lnot slot) <- key;
    t.live <- t.live + 1
  end

(* Backward-shift deletion: re-home every key in the probe run after the
   vacated slot, so lookups never need tombstones. *)
let remove t key =
  if t.cap > 0 then begin
    let slot = find_slot t key in
    if slot >= 0 then begin
      let mask = t.cap - 1 in
      t.live <- t.live - 1;
      let hole = ref slot in
      let i = ref ((slot + 1) land mask) in
      let continue = ref true in
      while !continue do
        let k = t.keys.(!i) in
        if k = -1 then continue := false
        else begin
          let home = hash_key k land mask in
          (* Is [home] outside the cyclic interval (hole, i]?  Then the
             key may move back into the hole. *)
          let dist_hole = (!i - !hole) land mask in
          let dist_home = (!i - home) land mask in
          if dist_home >= dist_hole then begin
            t.keys.(!hole) <- k;
            hole := !i
          end;
          i := (!i + 1) land mask
        end
      done;
      t.keys.(!hole) <- -1
    end
  end

let cardinal t = t.live
let is_empty t = t.live = 0

let iter f t = Array.iter (fun k -> if k >= 0 then f k) t.keys
