(** Flat open-addressed set of nonnegative ints.

    Linear probing over one power-of-two int array with backward-shift
    deletion — the {!Mifo_core.Fib} flat-index machinery reused as a
    plain set.  Built for the static verifier's disabled-edge overlays:
    membership is allocation-free, the representation is two mutable
    fields and an int array (no [Hashtbl] buckets, safe to own per
    domain under the {!Parallel} pool), and deletion leaves no
    tombstones.  Not synchronised: one writer at a time. *)

type t

val create : unit -> t
(** An empty set.  Storage is allocated on first {!add}. *)

val mem : t -> int -> bool
val add : t -> int -> unit
(** Idempotent.  @raise Invalid_argument on a negative key. *)

val remove : t -> int -> unit
(** Absent keys are ignored. *)

val cardinal : t -> int
val is_empty : t -> bool

val iter : (int -> unit) -> t -> unit
(** Iteration order is unspecified (slot order). *)
