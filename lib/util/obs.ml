(* Global metric registry.  Updates go through atomics so instrumented
   code can run on any domain; the mutex only guards registration (rare)
   and trace appends (gated off by default). *)

type counter = { c_name : string; cell : int Atomic.t }
type gauge = { g_name : string; g_cell : float Atomic.t }

type histogram = {
  h_name : string;
  bounds : float array; (* inclusive upper bounds, strictly increasing *)
  buckets : int Atomic.t array; (* length = Array.length bounds + 1 *)
  h_sum : float Atomic.t;
  h_count : int Atomic.t;
}

type field = Int of int | Float of float | Str of string | Bool of bool

type event_rec = {
  seq : int;
  t : float option;
  ev_name : string;
  fields : (string * field) list;
}

type registry = {
  mutable counters : (string * counter) list;
  mutable gauges : (string * gauge) list;
  mutable histograms : (string * histogram) list;
}
(* Association lists: the registry holds a few dozen metrics, created
   once at module initialisation; lookups after that go through the
   returned handles, never by name. *)

let lock = Mutex.create ()
let registry = { counters = []; gauges = []; histograms = [] }

let with_lock f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let rec atomic_add_float cell x =
  let old = Atomic.get cell in
  if not (Atomic.compare_and_set cell old (old +. x)) then atomic_add_float cell x

(* Counters *)

let counter name =
  with_lock (fun () ->
      match List.assoc_opt name registry.counters with
      | Some c -> c
      | None ->
        let c = { c_name = name; cell = Atomic.make 0 } in
        registry.counters <- (name, c) :: registry.counters;
        c)

let incr c = ignore (Atomic.fetch_and_add c.cell 1)
let add c n = ignore (Atomic.fetch_and_add c.cell n)
let value c = Atomic.get c.cell

let counter_value name =
  with_lock (fun () ->
      match List.assoc_opt name registry.counters with
      | Some c -> Atomic.get c.cell
      | None -> 0)

(* Gauges *)

let gauge name =
  with_lock (fun () ->
      match List.assoc_opt name registry.gauges with
      | Some g -> g
      | None ->
        let g = { g_name = name; g_cell = Atomic.make Float.nan } in
        registry.gauges <- (name, g) :: registry.gauges;
        g)

let set_gauge g x = Atomic.set g.g_cell x

let rec add_gauge g x =
  let old = Atomic.get g.g_cell in
  let base = if Float.is_nan old then 0. else old in
  if not (Atomic.compare_and_set g.g_cell old (base +. x)) then add_gauge g x

let rec max_gauge g x =
  let old = Atomic.get g.g_cell in
  if Float.is_nan old || x > old then begin
    if not (Atomic.compare_and_set g.g_cell old x) then max_gauge g x
  end

let gauge_value name =
  with_lock (fun () ->
      match List.assoc_opt name registry.gauges with
      | Some g -> Atomic.get g.g_cell
      | None -> Float.nan)

(* Histograms *)

let default_bounds = [| 0.01; 0.05; 0.1; 0.25; 0.5; 0.75; 0.9; 0.95; 1.0 |]

let histogram ?(bounds = default_bounds) name =
  with_lock (fun () ->
      match List.assoc_opt name registry.histograms with
      | Some h -> h
      | None ->
        Array.iteri
          (fun i b ->
            if i > 0 && bounds.(i - 1) >= b then
              invalid_arg "Obs.histogram: bounds must be strictly increasing")
          bounds;
        let h =
          {
            h_name = name;
            bounds = Array.copy bounds;
            buckets = Array.init (Array.length bounds + 1) (fun _ -> Atomic.make 0);
            h_sum = Atomic.make 0.;
            h_count = Atomic.make 0;
          }
        in
        registry.histograms <- (name, h) :: registry.histograms;
        h)

let observe h x =
  let n = Array.length h.bounds in
  let i = ref 0 in
  while !i < n && x > h.bounds.(!i) do
    Stdlib.incr i
  done;
  ignore (Atomic.fetch_and_add h.buckets.(!i) 1);
  atomic_add_float h.h_sum x;
  ignore (Atomic.fetch_and_add h.h_count 1)

let observe_n h x n =
  if n > 0 then begin
    let k = Array.length h.bounds in
    let i = ref 0 in
    while !i < k && x > h.bounds.(!i) do
      Stdlib.incr i
    done;
    ignore (Atomic.fetch_and_add h.buckets.(!i) n);
    atomic_add_float h.h_sum (x *. float_of_int n);
    ignore (Atomic.fetch_and_add h.h_count n)
  end

let histogram_count name =
  with_lock (fun () ->
      match List.assoc_opt name registry.histograms with
      | Some h -> Atomic.get h.h_count
      | None -> 0)

(* Event trace: a ring buffer under the registry mutex.  The enabled
   flag is read lock-free so disabled tracing costs one atomic load. *)

let trace_on = Atomic.make false

type trace = {
  mutable ring : event_rec option array;
  mutable next : int; (* slot for the next event *)
  mutable recorded : int; (* lifetime count, = seq of the next event *)
}

let trace = { ring = [||]; next = 0; recorded = 0 }

let set_trace_capacity n =
  if n < 0 then invalid_arg "Obs.set_trace_capacity";
  with_lock (fun () ->
      trace.ring <- Array.make n None;
      trace.next <- 0;
      trace.recorded <- 0;
      Atomic.set trace_on (n > 0))

let trace_enabled () = Atomic.get trace_on

let event ?t name fields =
  if Atomic.get trace_on then
    with_lock (fun () ->
        let cap = Array.length trace.ring in
        if cap > 0 then begin
          trace.ring.(trace.next) <-
            Some { seq = trace.recorded; t; ev_name = name; fields };
          trace.next <- (trace.next + 1) mod cap;
          trace.recorded <- trace.recorded + 1
        end)

let retained () =
  (* under the lock; oldest first *)
  let cap = Array.length trace.ring in
  let out = ref [] in
  for i = cap - 1 downto 0 do
    match trace.ring.((trace.next + i) mod cap) with
    | Some e -> out := e :: !out
    | None -> ()
  done;
  !out

let events () =
  with_lock (fun () ->
      List.map (fun e -> (e.seq, e.t, e.ev_name, e.fields)) (retained ()))

(* JSON *)

module Json = struct
  type t =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  let escape buf s =
    Buffer.add_char buf '"';
    String.iter
      (fun ch ->
        match ch with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | '\r' -> Buffer.add_string buf "\\r"
        | '\t' -> Buffer.add_string buf "\\t"
        | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"'

  let add_num buf x =
    if not (Float.is_finite x) then Buffer.add_string buf "null"
    else if Float.is_integer x && Float.abs x < 1e15 then
      Buffer.add_string buf (Printf.sprintf "%.0f" x)
    else Buffer.add_string buf (Printf.sprintf "%.17g" x)

  let rec emit buf = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Num x -> add_num buf x
    | Str s -> escape buf s
    | Arr xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          emit buf x)
        xs;
      Buffer.add_char buf ']'
    | Obj kvs ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          escape buf k;
          Buffer.add_char buf ':';
          emit buf v)
        kvs;
      Buffer.add_char buf '}'

  let to_string j =
    let buf = Buffer.create 256 in
    emit buf j;
    Buffer.contents buf

  (* Recursive-descent parser, enough to validate our own output and
     any standard JSON document without exotic escapes. *)

  let parse s =
    let n = String.length s in
    let pos = ref 0 in
    let fail msg = failwith (Printf.sprintf "Json.parse: %s at offset %d" msg !pos) in
    let peek () = if !pos < n then Some s.[!pos] else None in
    let advance () = Stdlib.incr pos in
    let rec skip_ws () =
      match peek () with
      | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
      | _ -> ()
    in
    let expect ch =
      match peek () with
      | Some c when c = ch -> advance ()
      | _ -> fail (Printf.sprintf "expected '%c'" ch)
    in
    let literal word v =
      if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
      then begin
        pos := !pos + String.length word;
        v
      end
      else fail "invalid literal"
    in
    let parse_string () =
      expect '"';
      let buf = Buffer.create 16 in
      let rec loop () =
        if !pos >= n then fail "unterminated string";
        let c = s.[!pos] in
        advance ();
        match c with
        | '"' -> Buffer.contents buf
        | '\\' ->
          (if !pos >= n then fail "unterminated escape";
           let e = s.[!pos] in
           advance ();
           match e with
           | '"' -> Buffer.add_char buf '"'
           | '\\' -> Buffer.add_char buf '\\'
           | '/' -> Buffer.add_char buf '/'
           | 'n' -> Buffer.add_char buf '\n'
           | 'r' -> Buffer.add_char buf '\r'
           | 't' -> Buffer.add_char buf '\t'
           | 'b' -> Buffer.add_char buf '\b'
           | 'f' -> Buffer.add_char buf '\012'
           | 'u' ->
             if !pos + 4 > n then fail "truncated \\u escape";
             let code =
               try int_of_string ("0x" ^ String.sub s !pos 4)
               with _ -> fail "bad \\u escape"
             in
             pos := !pos + 4;
             (* Pass low codepoints through; anything else becomes '?'
                — we only need round-tripping of our own output, which
                never emits non-ASCII. *)
             if code < 0x80 then Buffer.add_char buf (Char.chr code)
             else Buffer.add_char buf '?'
           | _ -> fail "bad escape");
          loop ()
        | c when Char.code c < 0x20 -> fail "control character in string"
        | c ->
          Buffer.add_char buf c;
          loop ()
      in
      loop ()
    in
    let parse_number () =
      let start = !pos in
      let number_char c =
        match c with
        | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
        | _ -> false
      in
      while !pos < n && number_char s.[!pos] do
        advance ()
      done;
      if !pos = start then fail "expected a value";
      match float_of_string_opt (String.sub s start (!pos - start)) with
      | Some x -> Num x
      | None -> fail "malformed number"
    in
    let rec parse_value () =
      skip_ws ();
      match peek () with
      | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let rec members acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
              advance ();
              members ((k, v) :: acc)
            | Some '}' ->
              advance ();
              Obj (List.rev ((k, v) :: acc))
            | _ -> fail "expected ',' or '}'"
          in
          members []
        end
      | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          Arr []
        end
        else begin
          let rec elements acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
              advance ();
              elements (v :: acc)
            | Some ']' ->
              advance ();
              Arr (List.rev (v :: acc))
            | _ -> fail "expected ',' or ']'"
          in
          elements []
        end
      | Some '"' -> Str (parse_string ())
      | Some 't' -> literal "true" (Bool true)
      | Some 'f' -> literal "false" (Bool false)
      | Some 'n' -> literal "null" Null
      | Some _ -> parse_number ()
      | None -> fail "empty input"
    in
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v

  let member key = function
    | Obj kvs -> List.assoc_opt key kvs
    | _ -> None
end

(* Snapshots *)

let json_of_field = function
  | Int i -> Json.Num (float_of_int i)
  | Float x -> Json.Num x
  | Str s -> Json.Str s
  | Bool b -> Json.Bool b

let sorted_by_name xs = List.sort (fun (a, _) (b, _) -> compare a b) xs

let snapshot_json () =
  with_lock (fun () ->
      let counters =
        sorted_by_name registry.counters
        |> List.map (fun (name, c) -> (name, Json.Num (float_of_int (Atomic.get c.cell))))
      in
      let gauges =
        sorted_by_name registry.gauges
        |> List.map (fun (name, g) -> (name, Json.Num (Atomic.get g.g_cell)))
      in
      let histograms =
        sorted_by_name registry.histograms
        |> List.map (fun (name, h) ->
               ( name,
                 Json.Obj
                   [
                     ("bounds", Json.Arr (Array.to_list h.bounds |> List.map (fun b -> Json.Num b)));
                     ( "counts",
                       Json.Arr
                         (Array.to_list h.buckets
                         |> List.map (fun b -> Json.Num (float_of_int (Atomic.get b)))) );
                     ("sum", Json.Num (Atomic.get h.h_sum));
                     ("count", Json.Num (float_of_int (Atomic.get h.h_count)));
                   ] ))
      in
      let kept = List.length (retained ()) in
      Json.to_string
        (Json.Obj
           [
             ("counters", Json.Obj counters);
             ("gauges", Json.Obj gauges);
             ("histograms", Json.Obj histograms);
             ( "trace",
               Json.Obj
                 [
                   ("capacity", Json.Num (float_of_int (Array.length trace.ring)));
                   ("recorded", Json.Num (float_of_int trace.recorded));
                   ("kept", Json.Num (float_of_int kept));
                 ] );
           ])
      ^ "\n")

let jsonl_of_event e =
  let time_field = match e.t with Some t -> [ ("t", Json.Num t) ] | None -> [] in
  Json.to_string
    (Json.Obj
       ((("seq", Json.Num (float_of_int e.seq)) :: time_field)
       @ (("event", Json.Str e.ev_name)
         :: List.map (fun (k, v) -> (k, json_of_field v)) e.fields)))

let trace_jsonl () =
  with_lock (fun () ->
      let buf = Buffer.create 1024 in
      List.iter
        (fun e ->
          Buffer.add_string buf (jsonl_of_event e);
          Buffer.add_char buf '\n')
        (retained ());
      Buffer.contents buf)

let write_file path contents =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc contents)

let write_metrics path = write_file path (snapshot_json ())
let write_trace path = write_file path (trace_jsonl ())

let reset () =
  with_lock (fun () ->
      registry.counters <- [];
      registry.gauges <- [];
      registry.histograms <- [];
      Array.fill trace.ring 0 (Array.length trace.ring) None;
      trace.next <- 0;
      trace.recorded <- 0)

(* Phase timing *)

let time_phase name f =
  let seconds = gauge (Printf.sprintf "phase.%s.seconds" name) in
  let runs = counter (Printf.sprintf "phase.%s.runs" name) in
  let t0 = Sys.time () in
  Fun.protect
    ~finally:(fun () ->
      add_gauge seconds (Sys.time () -. t0);
      incr runs)
    f
