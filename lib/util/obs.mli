(** Process-wide observability: named counters, gauges and fixed-bucket
    histograms, plus a bounded ring-buffer event trace.

    All metric updates are domain-safe — counters and gauges are atomics,
    histogram buckets are atomic cells — so instrumented code may run on
    the {!Parallel} domain pool without extra locking.  Metric creation
    and trace appends take a single process-wide mutex; create metrics
    once at module initialisation and keep the handle, rather than
    looking them up per event.

    The registry is global on purpose: instrumentation points deep in
    the engine would otherwise need a context parameter threaded through
    every caller.  Snapshots are deterministic (names are emitted in
    sorted order); the numeric {e values} depend on how much traffic a
    run pushed through the instrumented paths, not on domain
    interleaving, because every update is a commutative increment.

    {2 Metrics schema}

    A snapshot serialises as one JSON object:

    {v
    { "counters":   { "<name>": <int>, ... },
      "gauges":     { "<name>": <float|null>, ... },
      "histograms": { "<name>": { "bounds": [<float>...],
                                  "counts": [<int>...],   (length = bounds+1)
                                  "sum": <float>, "count": <int> }, ... },
      "trace":      { "capacity": <int>, "recorded": <int>, "kept": <int> } }
    v}

    Non-finite gauge values serialise as [null].  The trace itself is
    written separately as JSONL, one event per line:

    {v {"seq":<int>,"t":<float>,"event":"<name>","<field>":<value>,...} v}

    [seq] increases by one per recorded event, so a gap at the start of
    a file means the ring overwrote older events; [t] is omitted for
    events that carry no timestamp. *)

type counter
type gauge
type histogram

(** {1 Counters} *)

val counter : string -> counter
(** [counter name] returns the process-wide counter registered under
    [name], creating it (at zero) on first use. *)

val incr : counter -> unit
val add : counter -> int -> unit

val value : counter -> int

val counter_value : string -> int
(** Current value of the counter registered under the given name, or 0
    if no such counter exists.  Convenience for tests and assertions. *)

(** {1 Gauges} *)

val gauge : string -> gauge
(** [gauge name] returns the gauge registered under [name], creating it
    (at [nan], serialised as [null]) on first use. *)

val set_gauge : gauge -> float -> unit
val add_gauge : gauge -> float -> unit
(** [add_gauge g x] accumulates: an unset ([nan]) gauge is treated as 0. *)

val max_gauge : gauge -> float -> unit
(** [max_gauge g x] keeps the running maximum: the gauge becomes
    [max current x] (an unset [nan] gauge takes [x]).  The high-water
    helper behind peak-memory gauges such as [routing.peak_words]. *)

val gauge_value : string -> float
(** Current value of the named gauge, [nan] if unset or unknown. *)

(** {1 Histograms} *)

val histogram : ?bounds:float array -> string -> histogram
(** [histogram ~bounds name] returns the histogram registered under
    [name].  [bounds] are inclusive upper bounds, strictly increasing;
    an observation lands in the first bucket whose bound is [>=] the
    value, or in the implicit overflow bucket.  [bounds] is only
    consulted when the histogram is first created; later calls return
    the existing histogram unchanged.  The default bounds suit ratios
    in [0, 1] with an overflow bucket above 1. *)

val observe : histogram -> float -> unit

val observe_n : histogram -> float -> int -> unit
(** [observe_n h x n] records [n] observations of value [x] in one
    update — the bulk form of {!observe} for hot paths that tally
    locally and flush periodically (one bucket scan and three atomic
    updates total instead of per sample).  No-op when [n <= 0]. *)

val histogram_count : string -> int
(** Total number of observations recorded by the named histogram, or 0
    if no such histogram exists. *)

(** {1 Event trace} *)

type field =
  | Int of int
  | Float of float
  | Str of string
  | Bool of bool

val set_trace_capacity : int -> unit
(** [set_trace_capacity n] clears the trace and makes it keep the most
    recent [n] events.  Capacity 0 (the initial state) disables tracing
    entirely; {!event} then returns without taking the lock. *)

val trace_enabled : unit -> bool
(** Cheap (single atomic read) guard for call sites that would otherwise
    build a field list per packet. *)

val event : ?t:float -> string -> (string * field) list -> unit
(** [event ?t name fields] appends an event to the ring buffer; a no-op
    while tracing is disabled.  [t] is the simulated or wall-clock time,
    whichever the call site has. *)

val events : unit -> (int * float option * string * (string * field) list) list
(** The retained events, oldest first, as [(seq, t, name, fields)]. *)

(** {1 Snapshots} *)

val snapshot_json : unit -> string
(** The full metrics snapshot as a JSON document (schema above). *)

val trace_jsonl : unit -> string
(** The retained trace as JSONL, one event per line, oldest first. *)

val write_metrics : string -> unit
(** Write {!snapshot_json} to the given file path. *)

val write_trace : string -> unit
(** Write {!trace_jsonl} to the given file path. *)

val reset : unit -> unit
(** Drop every registered metric and all retained trace events (the
    trace capacity is kept).  Handles obtained before [reset] keep
    working but are no longer part of the registry, so tests that
    assert on counter values should re-resolve handles by name after
    resetting, or measure deltas instead. *)

(** {1 Phase timing} *)

val time_phase : string -> (unit -> 'a) -> 'a
(** [time_phase name f] runs [f ()], accumulating its CPU time into the
    gauge [phase.<name>.seconds] and bumping the counter
    [phase.<name>.runs] — also on exception. *)

(** {1 JSON} *)

module Json : sig
  (** A minimal JSON representation: enough to emit the snapshot above
      and to parse it back for validation.  Not a general-purpose JSON
      library — numbers are floats, no streaming, no unicode escapes
      beyond pass-through of [\uXXXX] sequences. *)

  type t =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  val to_string : t -> string

  val parse : string -> t
  (** Parse a complete JSON document.  @raise Failure on malformed
      input or trailing garbage. *)

  val member : string -> t -> t option
  (** [member key (Obj _)] finds the first binding of [key]; [None] on
      missing keys and non-objects. *)
end
