(* A minimal work-queue domain pool: one shared FIFO of thunks guarded
   by a mutex/condition pair.  Workers park on the condition when idle;
   the submitting domain helps drain the queue, so a pool of [jobs]
   uses exactly [jobs] domains including the caller and [jobs = 1]
   degenerates to plain serial execution with no queue traffic. *)

type pool = {
  n_jobs : int;
  mutex : Mutex.t;
  nonempty : Condition.t;
  tasks : (unit -> unit) Queue.t;
  mutable stop : bool;
  mutable workers : unit Domain.t list;
}

let default_jobs () =
  match Sys.getenv_opt "MIFO_JOBS" with
  | Some v -> (
    match int_of_string_opt (String.trim v) with
    | Some j when j >= 1 -> j
    | Some _ | None -> Domain.recommended_domain_count ())
  | None -> Domain.recommended_domain_count ()

let jobs t = t.n_jobs

let rec worker_loop pool =
  Mutex.lock pool.mutex;
  while Queue.is_empty pool.tasks && not pool.stop do
    Condition.wait pool.nonempty pool.mutex
  done;
  if Queue.is_empty pool.tasks then Mutex.unlock pool.mutex (* stop *)
  else begin
    let task = Queue.pop pool.tasks in
    Mutex.unlock pool.mutex;
    task ();
    worker_loop pool
  end

let create ?jobs () =
  let n_jobs = Stdlib.max 1 (match jobs with Some j -> j | None -> default_jobs ()) in
  let pool =
    {
      n_jobs;
      mutex = Mutex.create ();
      nonempty = Condition.create ();
      tasks = Queue.create ();
      stop = false;
      workers = [];
    }
  in
  pool.workers <- List.init (n_jobs - 1) (fun _ -> Domain.spawn (fun () -> worker_loop pool));
  pool

let shutdown pool =
  Mutex.lock pool.mutex;
  pool.stop <- true;
  Condition.broadcast pool.nonempty;
  Mutex.unlock pool.mutex;
  List.iter Domain.join pool.workers;
  pool.workers <- []

(* Completion tracking for one batch of tasks. *)
type batch = {
  b_mutex : Mutex.t;
  b_drained : Condition.t;
  mutable b_pending : int;
  mutable b_exn : (exn * Printexc.raw_backtrace) option;
}

(* Run [make_task i] for [0 <= i < count] across the pool and wait. *)
let exec_batch pool count make_task =
  if count > 0 then begin
    let batch =
      {
        b_mutex = Mutex.create ();
        b_drained = Condition.create ();
        b_pending = count;
        b_exn = None;
      }
    in
    let wrapped i () =
      (try make_task i
       with e ->
         let bt = Printexc.get_raw_backtrace () in
         Mutex.lock batch.b_mutex;
         if batch.b_exn = None then batch.b_exn <- Some (e, bt);
         Mutex.unlock batch.b_mutex);
      Mutex.lock batch.b_mutex;
      batch.b_pending <- batch.b_pending - 1;
      if batch.b_pending = 0 then Condition.broadcast batch.b_drained;
      Mutex.unlock batch.b_mutex
    in
    Mutex.lock pool.mutex;
    for i = 0 to count - 1 do
      Queue.add (wrapped i) pool.tasks
    done;
    Condition.broadcast pool.nonempty;
    Mutex.unlock pool.mutex;
    (* The caller helps: drain whatever is queued (tasks of this batch,
       in the common case) instead of blocking straight away. *)
    let continue = ref true in
    while !continue do
      Mutex.lock pool.mutex;
      match Queue.take_opt pool.tasks with
      | Some task ->
        Mutex.unlock pool.mutex;
        task ()
      | None ->
        Mutex.unlock pool.mutex;
        continue := false
    done;
    Mutex.lock batch.b_mutex;
    while batch.b_pending > 0 do
      Condition.wait batch.b_drained batch.b_mutex
    done;
    let failed = batch.b_exn in
    Mutex.unlock batch.b_mutex;
    match failed with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> ()
  end

(* One task per index, no chunking: the fork/join shape a windowed
   simulation needs — [n] long-lived shard steps that must all finish
   before the caller may exchange boundary state.  [parallel_for] would
   fold several shards into one chunk and serialize them behind each
   other; here every index is its own task, so [n <= jobs] shards run
   genuinely concurrently and the join is the barrier. *)
let fork_join pool n f =
  if n < 0 then invalid_arg "Parallel.fork_join: negative task count";
  if n > 0 then
    if pool.n_jobs = 1 || n = 1 then
      for i = 0 to n - 1 do
        f i
      done
    else exec_batch pool n f

let parallel_for pool ~lo ~hi f =
  let n = hi - lo in
  if n > 0 then
    if pool.n_jobs = 1 || n = 1 then
      for i = lo to hi - 1 do
        f i
      done
    else begin
      (* More chunks than domains so an uneven iteration cost cannot
         leave most of the pool idle behind one long chunk. *)
      let chunks = Stdlib.min n (4 * pool.n_jobs) in
      let base = n / chunks and rem = n mod chunks in
      let chunk_bounds c =
        (* chunk [c] covers [base] items, the first [rem] chunks one more *)
        let start = lo + (c * base) + Stdlib.min c rem in
        let len = base + if c < rem then 1 else 0 in
        (start, len)
      in
      exec_batch pool chunks (fun c ->
          let start, len = chunk_bounds c in
          for i = start to start + len - 1 do
            f i
          done)
    end

let parallel_map pool f arr =
  let n = Array.length arr in
  if n = 0 then [||]
  else if pool.n_jobs = 1 || n = 1 then Array.map f arr
  else begin
    let first = f arr.(0) in
    let out = Array.make n first in
    parallel_for pool ~lo:1 ~hi:n (fun i -> out.(i) <- f arr.(i));
    out
  end

(* The shared pool.  Guarded by a mutex: the first caller builds it;
   [set_default_jobs] swaps it (tests only). *)
let default_mutex = Mutex.create ()
let default_pool : pool option ref = ref None

let get_default () =
  Mutex.lock default_mutex;
  let pool =
    match !default_pool with
    | Some p -> p
    | None ->
      let p = create () in
      default_pool := Some p;
      p
  in
  Mutex.unlock default_mutex;
  pool

let set_default_jobs jobs =
  if jobs <= 0 then
    invalid_arg
      (Printf.sprintf "Parallel.set_default_jobs: jobs must be >= 1 (got %d)" jobs);
  Mutex.lock default_mutex;
  (match !default_pool with Some p -> shutdown p | None -> ());
  default_pool := Some (create ~jobs ());
  Mutex.unlock default_mutex
