(** A reusable domain pool for embarrassingly parallel loops.

    The route computations and experiment fan-outs are independent per
    destination; this module spreads them over OCaml 5 domains without
    pulling in domainslib.  A pool of [jobs - 1] worker domains is
    created once and reused across batches; the calling domain always
    participates, so [jobs = 1] spawns no domains at all and executes
    every loop exactly as the serial code did.

    Determinism contract: [parallel_map] and [parallel_for] assign work
    by index into pre-sized slots, so results are independent of the
    scheduling order — a run with [jobs = n] is observationally
    identical to [jobs = 1] provided the worked function [f i] touches
    only state owned by iteration [i] (or thread-safe shared state such
    as {!Mifo_bgp.Routing_table}).

    Sizing: the [MIFO_JOBS] environment variable, else
    [Domain.recommended_domain_count ()]. *)

type pool
(** A fixed-size pool of worker domains plus the calling domain. *)

val default_jobs : unit -> int
(** [MIFO_JOBS] when set to a positive integer, otherwise
    [Domain.recommended_domain_count ()]. *)

val create : ?jobs:int -> unit -> pool
(** [create ~jobs ()] spawns [jobs - 1] worker domains ([jobs] defaults
    to {!default_jobs}; values < 1 are clamped to 1).  Pools are cheap
    to keep but not free to create — prefer {!get_default} for
    long-lived use and {!shutdown} short-lived ones. *)

val jobs : pool -> int

val get_default : unit -> pool
(** The process-wide shared pool, created on first use with
    {!default_jobs} workers.  Never shut down (worker domains park on a
    condition variable and die with the process). *)

val set_default_jobs : int -> unit
(** Replace the shared pool with one of the given size, shutting the
    previous one down.  Intended for tests that compare serial and
    parallel execution in one process, and for a [--jobs] CLI flag; not
    safe to call while another domain is using the shared pool.
    @raise Invalid_argument when [jobs <= 0] — an explicit error beats
    silently clamping a flag the user typed. *)

val fork_join : pool -> int -> (int -> unit) -> unit
(** [fork_join pool n f] runs [f 0 .. f (n-1)] as [n] separate tasks —
    one per index, no chunking — and returns only when all have
    finished: a fork/join barrier.  This is the primitive behind
    windowed simulation ({!Mifo_netsim.Packetsim} shards; Flowsim can
    reuse it the same way): each index advances one shard through a
    time window, and the join is the synchronization point at which
    boundary state may be exchanged.  With [jobs = 1] the tasks run
    serially in index order on the caller.  Exception behaviour as in
    {!parallel_for}.
    @raise Invalid_argument on a negative [n]. *)

val parallel_for : pool -> lo:int -> hi:int -> (int -> unit) -> unit
(** [parallel_for pool ~lo ~hi f] runs [f i] for every [lo <= i < hi],
    split into contiguous chunks across the pool.  Returns when every
    iteration has finished.  If any iteration raises, the first
    exception (in completion order) is re-raised in the caller after
    the whole batch has drained; the remaining iterations still run. *)

val parallel_map : pool -> ('a -> 'b) -> 'a array -> 'b array
(** [parallel_map pool f arr] is [Array.map f arr] with the elements
    processed in parallel; result slots are assigned by index, so the
    output is identical to the serial map.  Exception behaviour as in
    {!parallel_for}. *)

val shutdown : pool -> unit
(** Terminate and join the pool's worker domains.  The pool must not be
    used afterwards.  Idempotent. *)
