(* In-place heapsort over a prefix of an array.

   [Array.sort] always sorts the whole array, so callers that keep a
   reusable scratch buffer (the flow simulator's per-epoch adaptation
   order) would have to allocate an exact-size copy every time.  This
   sorts [a.(0 .. len-1)] in place with zero allocation.

   Heapsort is not stable, but for a *total* order (no two elements
   compare equal) the sorted sequence is unique, so the result is
   identical to [Array.sort] — the determinism the simulators rely on.
   Callers must therefore pass a total order (break ties on a distinct
   index). *)

let sort_prefix ~cmp a len =
  if len < 0 || len > Array.length a then invalid_arg "Sort.sort_prefix";
  let swap i j =
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  in
  (* max-heap sift-down over a.(lo .. hi-1) rooted at i *)
  let rec sift i hi =
    let l = (2 * i) + 1 and r = (2 * i) + 2 in
    let largest = ref i in
    if l < hi && cmp a.(l) a.(!largest) > 0 then largest := l;
    if r < hi && cmp a.(r) a.(!largest) > 0 then largest := r;
    if !largest <> i then begin
      swap i !largest;
      sift !largest hi
    end
  in
  for i = (len / 2) - 1 downto 0 do
    sift i len
  done;
  for hi = len - 1 downto 1 do
    swap 0 hi;
    sift 0 hi
  done
