(** Allocation-free in-place sorting of an array prefix. *)

val sort_prefix : cmp:('a -> 'a -> int) -> 'a array -> int -> unit
(** [sort_prefix ~cmp a len] sorts [a.(0) .. a.(len - 1)] in place
    (heapsort: O(len log len), zero allocation); elements at and beyond
    [len] are untouched.  [cmp] must be a {e total} order — no two
    elements of the prefix comparing equal — so the result is the unique
    sorted sequence and deterministically identical to [Array.sort].

    @raise Invalid_argument if [len] is negative or exceeds the array
    length. *)
