type 'a t = { mutable data : 'a array; mutable size : int }

let create () = { data = [||]; size = 0 }
let length t = t.size
let is_empty t = t.size = 0

let push t x =
  let cap = Array.length t.data in
  if t.size = cap then begin
    let ndata = Array.make (Stdlib.max 8 (2 * cap)) x in
    Array.blit t.data 0 ndata 0 t.size;
    t.data <- ndata
  end;
  t.data.(t.size) <- x;
  t.size <- t.size + 1

let check t i = if i < 0 || i >= t.size then invalid_arg "Vec: index out of bounds"

let get t i =
  check t i;
  t.data.(i)

let set t i x =
  check t i;
  t.data.(i) <- x

let pop t =
  if t.size = 0 then None
  else begin
    t.size <- t.size - 1;
    Some t.data.(t.size)
  end

let clear t = t.size <- 0

let iter f t =
  for i = 0 to t.size - 1 do
    f t.data.(i)
  done

let fold_left f init t =
  let acc = ref init in
  for i = 0 to t.size - 1 do
    acc := f !acc t.data.(i)
  done;
  !acc

let to_array t = Array.sub t.data 0 t.size
let of_array a = { data = Array.copy a; size = Array.length a }

let swap_remove t i =
  check t i;
  let x = t.data.(i) in
  t.size <- t.size - 1;
  t.data.(i) <- t.data.(t.size);
  x

let drop_prefix t n =
  if n < 0 || n > t.size then invalid_arg "Vec.drop_prefix";
  if n > 0 then begin
    Array.blit t.data n t.data 0 (t.size - n);
    t.size <- t.size - n
  end

let capacity t = Array.length t.data

let trim t =
  if t.size = 0 then t.data <- [||]
  else if t.size < Array.length t.data then t.data <- Array.sub t.data 0 t.size

let ensure t n fill =
  if n > t.size then begin
    let cap = Array.length t.data in
    if n > cap then begin
      let ncap = Stdlib.max n (Stdlib.max 8 (2 * cap)) in
      let ndata = Array.make ncap fill in
      Array.blit t.data 0 ndata 0 t.size;
      t.data <- ndata
    end;
    Array.fill t.data t.size (n - t.size) fill;
    t.size <- n
  end
