(** Growable array (amortized O(1) push).

    OCaml 5.1 predates [Dynarray]; this is the small subset the
    simulators and the topology generator need. *)

type 'a t

val create : unit -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool
val push : 'a t -> 'a -> unit
val get : 'a t -> int -> 'a
val set : 'a t -> int -> 'a -> unit
val pop : 'a t -> 'a option
val clear : 'a t -> unit
val iter : ('a -> unit) -> 'a t -> unit
val fold_left : ('b -> 'a -> 'b) -> 'b -> 'a t -> 'b
val to_array : 'a t -> 'a array
val of_array : 'a array -> 'a t
val swap_remove : 'a t -> int -> 'a
(** Remove index [i] in O(1) by moving the last element into its slot;
    returns the removed element. *)

val drop_prefix : 'a t -> int -> unit
(** [drop_prefix t n] removes the first [n] elements, shifting the rest
    to the front in O(length - n) with no allocation.  Lets a consumer
    that reads a vec front-to-back (packet trains) reclaim the consumed
    prefix without churning the backing array.
    @raise Invalid_argument if [n] is negative or exceeds the length. *)

val capacity : 'a t -> int
(** Length of the backing array — the memory actually held, as opposed
    to {!length}, the elements in use.  The spread between the two is
    what {!trim} reclaims. *)

val trim : 'a t -> unit
(** Shrink the backing array to exactly {!length} elements (to [[||]]
    when empty), releasing the slack a past deep backlog left behind.
    O(length) copy when something is released; a no-op when the vec is
    already tight.  Elements and order are unchanged. *)

val ensure : 'a t -> int -> 'a -> unit
(** [ensure t n fill] grows [t] to length at least [n], initializing any
    new slots with [fill].  A no-op when [t] is already long enough —
    the backbone of flat int-keyed tables (flow id -> value) that replace
    hashtables on simulator hot paths. *)
