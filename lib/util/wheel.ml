(* Hierarchical timing wheel over integer ticks, bit-identical in pop
   order to a binary heap keyed by (time, seq).  See wheel.mli for the
   determinism contract.

   Layout: [levels] wheels of [size = 2^bits] buckets each.  A bucket at
   level [l] spans [size^l] ticks.  An event's level is the position of
   the highest base-[size] digit in which its tick differs from the
   current tick [cur], so every resident bucket index at a level is
   strictly greater than [cur]'s digit at that level — buckets never
   wrap, and the lowest nonempty level always holds the globally
   earliest event.  Advancing pops the first occupied bucket of the
   lowest nonempty level: level 0 buckets (one tick each) drain into the
   sorted "run" below; upper-level buckets cascade — [cur] jumps to the
   bucket's base tick and its cells are redistributed into lower levels.

   Cells live in a grow-only arena of parallel arrays, linked through
   [c_next]; freed cells form a free list through the same array, so
   steady-state scheduling allocates nothing.  The payload slot of a
   freed cell keeps its last value alive until the slot is reused — the
   same retention the {!Heap} backing array exhibits.

   The "run" ([r_time]/[r_seq]/[r_payload]) holds the current tick's events sorted by
   (time, seq); events scheduled at or before [cur] are merge-inserted
   into its unconsumed suffix, which is exactly what preserves heap
   equivalence when quantization folds distinct times into one tick. *)

let bits = 8
let size = 1 lsl bits
let mask = size - 1
let levels = 7

(* Occupancy bitmap word size: 32 bits, NOT 64 — OCaml's native int is
   63-bit, so [1 lsl 63] silently vanishes and bucket 63/127/191/255
   would never register as occupied. *)
let word_bits = 5
let word_mask = 31
let words = size lsr word_bits
let max_tick = (1 lsl (bits * levels)) - 1
let max_tick_f = float_of_int max_tick

type 'a t = {
  tick : float;
  (* cell arena *)
  mutable c_time : float array;
  mutable c_seq : int array;
  mutable c_tick : int array;
  mutable c_payload : 'a array;
  mutable c_next : int array;
  mutable free : int;  (* free-list head through c_next, -1 = none *)
  mutable used : int;  (* arena high-water mark *)
  (* buckets: levels * size slots, FIFO lists with tail append *)
  heads : int array;
  tails : int array;
  occ : int array;  (* occupancy bitmap, [words] words per level *)
  level_count : int array;
  mutable cur : int;  (* current tick *)
  mutable count : int;  (* resident events incl. the run *)
  (* the run: current tick drained and sorted by (time, seq) *)
  mutable r_time : float array;
  mutable r_seq : int array;
  mutable r_payload : 'a array;
  mutable r_len : int;
  mutable r_cursor : int;
  mutable cascades : int;
}

let create ?(tick = 1e-6) () =
  if Float.is_nan tick || tick <= 0. || tick = Float.infinity then
    invalid_arg "Wheel.create: tick must be positive and finite";
  {
    tick;
    c_time = [||];
    c_seq = [||];
    c_tick = [||];
    c_payload = [||];
    c_next = [||];
    free = -1;
    used = 0;
    heads = Array.make (levels * size) (-1);
    tails = Array.make (levels * size) (-1);
    occ = Array.make (levels * words) 0;
    level_count = Array.make levels 0;
    cur = 0;
    count = 0;
    r_time = [||];
    r_seq = [||];
    r_payload = [||];
    r_len = 0;
    r_cursor = 0;
    cascades = 0;
  }

let length t = t.count
let is_empty t = t.count = 0

let quantize t time =
  let q = time /. t.tick in
  if q >= max_tick_f then max_tick else int_of_float q

(* Highest base-[size] digit where [tk] differs from [cur]; [tk > cur]
   so the loop runs at most [levels - 1] times (usually zero). *)
let level_of t tk =
  let x = ref ((tk lxor t.cur) lsr bits) in
  let l = ref 0 in
  while !x <> 0 do
    incr l;
    x := !x lsr bits
  done;
  !l

(* ---- cell arena -------------------------------------------------------- *)

let grow_arena t payload =
  let cap = Array.length t.c_time in
  let ncap = Stdlib.max 64 (2 * cap) in
  let nt = Array.make ncap 0. in
  let ns = Array.make ncap 0 in
  let nk = Array.make ncap 0 in
  let np = Array.make ncap payload in
  let nn = Array.make ncap (-1) in
  Array.blit t.c_time 0 nt 0 t.used;
  Array.blit t.c_seq 0 ns 0 t.used;
  Array.blit t.c_tick 0 nk 0 t.used;
  Array.blit t.c_payload 0 np 0 t.used;
  Array.blit t.c_next 0 nn 0 t.used;
  t.c_time <- nt;
  t.c_seq <- ns;
  t.c_tick <- nk;
  t.c_payload <- np;
  t.c_next <- nn

let alloc_cell t time seq tk payload =
  let c =
    if t.free >= 0 then begin
      let c = t.free in
      t.free <- t.c_next.(c);
      c
    end
    else begin
      if t.used = Array.length t.c_time then grow_arena t payload;
      let c = t.used in
      t.used <- t.used + 1;
      c
    end
  in
  t.c_time.(c) <- time;
  t.c_seq.(c) <- seq;
  t.c_tick.(c) <- tk;
  t.c_payload.(c) <- payload;
  t.c_next.(c) <- -1;
  c

let free_cell t c =
  t.c_next.(c) <- t.free;
  t.free <- c

(* ---- buckets ----------------------------------------------------------- *)

let bucket_push t l i c =
  let b = (l * size) + i in
  if t.heads.(b) < 0 then begin
    t.heads.(b) <- c;
    t.tails.(b) <- c;
    let w = (l * words) + (i lsr word_bits) in
    t.occ.(w) <- t.occ.(w) lor (1 lsl (i land word_mask))
  end
  else begin
    t.c_next.(t.tails.(b)) <- c;
    t.tails.(b) <- c
  end

let ctz x =
  let x = ref (x land -x) in
  let n = ref 0 in
  if !x land 0xFFFF = 0 then begin
    n := !n + 16;
    x := !x lsr 16
  end;
  if !x land 0xFF = 0 then begin
    n := !n + 8;
    x := !x lsr 8
  end;
  if !x land 0xF = 0 then begin
    n := !n + 4;
    x := !x lsr 4
  end;
  if !x land 0x3 = 0 then begin
    n := !n + 2;
    x := !x lsr 2
  end;
  if !x land 0x1 = 0 then n := !n + 1;
  !n

(* First occupied bucket index at a level known to be nonempty. *)
let first_index t l =
  let base = l * words in
  let w = ref 0 in
  while t.occ.(base + !w) = 0 do
    incr w
  done;
  (!w lsl word_bits) + ctz t.occ.(base + !w)

(* ---- the sorted run ---------------------------------------------------- *)

let grow_run t payload =
  let cap = Array.length t.r_time in
  let ncap = Stdlib.max 64 (2 * cap) in
  let nt = Array.make ncap 0. in
  let ns = Array.make ncap 0 in
  let np = Array.make ncap payload in
  Array.blit t.r_time 0 nt 0 t.r_len;
  Array.blit t.r_seq 0 ns 0 t.r_len;
  Array.blit t.r_payload 0 np 0 t.r_len;
  t.r_time <- nt;
  t.r_seq <- ns;
  t.r_payload <- np

(* Insert into the unconsumed suffix [r_cursor, r_len) at the position
   that keeps it sorted by (time, seq).  The common case — keys arrive
   in order — appends without searching. *)
let run_insert t time seq payload =
  if t.r_len = Array.length t.r_time then grow_run t payload;
  let len = t.r_len in
  let after i =
    let c = Float.compare time t.r_time.(i) in
    if c <> 0 then c > 0 else seq > t.r_seq.(i)
  in
  if len = t.r_cursor || after (len - 1) then begin
    t.r_time.(len) <- time;
    t.r_seq.(len) <- seq;
    t.r_payload.(len) <- payload;
    t.r_len <- len + 1
  end
  else begin
    let lo = ref t.r_cursor and hi = ref len in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if after mid then lo := mid + 1 else hi := mid
    done;
    let j = !lo in
    Array.blit t.r_time j t.r_time (j + 1) (len - j);
    Array.blit t.r_seq j t.r_seq (j + 1) (len - j);
    Array.blit t.r_payload j t.r_payload (j + 1) (len - j);
    t.r_time.(j) <- time;
    t.r_seq.(j) <- seq;
    t.r_payload.(j) <- payload;
    t.r_len <- len + 1
  end

(* ---- scheduling -------------------------------------------------------- *)

let place_cell t c =
  let tk = t.c_tick.(c) in
  if tk <= t.cur then begin
    run_insert t t.c_time.(c) t.c_seq.(c) t.c_payload.(c);
    free_cell t c
  end
  else begin
    let l = level_of t tk in
    bucket_push t l ((tk lsr (l * bits)) land mask) c;
    t.level_count.(l) <- t.level_count.(l) + 1
  end

let schedule t ~time ~seq payload =
  if Float.is_nan time || time < 0. then invalid_arg "Wheel.schedule: bad time";
  t.count <- t.count + 1;
  let tk = quantize t time in
  if tk <= t.cur then run_insert t time seq payload
  else begin
    let c = alloc_cell t time seq tk payload in
    let l = level_of t tk in
    bucket_push t l ((tk lsr (l * bits)) land mask) c;
    t.level_count.(l) <- t.level_count.(l) + 1
  end

(* ---- advancing --------------------------------------------------------- *)

let ensure_run t =
  if t.r_cursor >= t.r_len && t.count > 0 then begin
    t.r_cursor <- 0;
    t.r_len <- 0;
    while t.r_len = 0 do
      (* count > 0 and the run is empty, so some level is occupied *)
      let l = ref 0 in
      while t.level_count.(!l) = 0 do
        incr l
      done;
      let l = !l in
      let i = first_index t l in
      let b = (l * size) + i in
      let head = t.heads.(b) in
      t.heads.(b) <- -1;
      t.tails.(b) <- -1;
      let w = (l * words) + (i lsr word_bits) in
      t.occ.(w) <- t.occ.(w) land lnot (1 lsl (i land word_mask));
      if l = 0 then begin
        (* a one-tick bucket: this IS the next tick — drain and sort *)
        t.cur <- t.cur land lnot mask lor i;
        let c = ref head in
        while !c >= 0 do
          let nx = t.c_next.(!c) in
          t.level_count.(0) <- t.level_count.(0) - 1;
          run_insert t t.c_time.(!c) t.c_seq.(!c) t.c_payload.(!c);
          free_cell t !c;
          c := nx
        done
      end
      else begin
        (* cascade: jump to the bucket's base tick, redistribute its
           cells into lower levels (or straight into the run) *)
        t.cascades <- t.cascades + 1;
        let sh = l * bits in
        t.cur <- ((t.cur lsr (sh + bits)) lsl (sh + bits)) lor (i lsl sh);
        let c = ref head in
        while !c >= 0 do
          let nx = t.c_next.(!c) in
          t.level_count.(l) <- t.level_count.(l) - 1;
          t.c_next.(!c) <- -1;
          place_cell t !c;
          c := nx
        done
      end
    done
  end

let pop t =
  ensure_run t;
  if t.r_cursor >= t.r_len then None
  else begin
    let i = t.r_cursor in
    t.r_cursor <- i + 1;
    t.count <- t.count - 1;
    Some (t.r_time.(i), t.r_seq.(i), t.r_payload.(i))
  end

let peek t =
  ensure_run t;
  if t.r_cursor >= t.r_len then None
  else Some (t.r_time.(t.r_cursor), t.r_seq.(t.r_cursor))

(* Fused horizon-checked pop for the dispatch loop.  The popped time
   goes into [cell.(0)] — a flat float-array store — instead of a
   return value: without flambda, a float returned across a module
   boundary is boxed, and this runs once per simulation event. *)
let pop_before t ~until ~cell =
  if t.count = 0 then None
  else begin
    ensure_run t;
    let i = t.r_cursor in
    let time = t.r_time.(i) in
    if time > until then None
    else begin
      t.r_cursor <- i + 1;
      t.count <- t.count - 1;
      cell.(0) <- time;
      Some t.r_payload.(i)
    end
  end

(* Allocation-free head access for the event-dispatch hot loop.  The
   [head_*] accessors and [drop] require a nonempty wheel; [ensure_run]
   is idempotent, so each is safe to call in any order after checking
   {!is_empty}. *)

let head_time t =
  ensure_run t;
  t.r_time.(t.r_cursor)

let head_payload t =
  ensure_run t;
  t.r_payload.(t.r_cursor)

let drop t =
  ensure_run t;
  if t.r_cursor < t.r_len then begin
    t.r_cursor <- t.r_cursor + 1;
    t.count <- t.count - 1
  end

let precedes t ~time ~seq =
  ensure_run t;
  t.r_cursor >= t.r_len
  ||
  let c = Float.compare time t.r_time.(t.r_cursor) in
  c < 0 || (c = 0 && seq < t.r_seq.(t.r_cursor))

let clear t =
  Array.fill t.heads 0 (levels * size) (-1);
  Array.fill t.tails 0 (levels * size) (-1);
  Array.fill t.occ 0 (levels * words) 0;
  Array.fill t.level_count 0 levels 0;
  t.free <- -1;
  t.used <- 0;
  t.cur <- 0;
  t.count <- 0;
  t.r_len <- 0;
  t.r_cursor <- 0;
  t.cascades <- 0

type stats = { occupancy : int array; ready : int; cascades : int }

let stats t =
  {
    occupancy = Array.copy t.level_count;
    ready = t.r_len - t.r_cursor;
    cascades = t.cascades;
  }
