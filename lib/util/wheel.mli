(** Hierarchical timing wheel keyed by [(time, seq)].

    A priority queue specialised for discrete-event simulation: most
    events are scheduled a short, bounded distance into the future
    (link-serialization times), with a long tail of far-future timers
    (retransmission timeouts, daemon ticks).  Times are quantized to an
    integer tick; each level of the hierarchy covers [256x] the span of
    the one below it, so near-present events land in level 0 and pop in
    near-constant time while far-future events park in an upper level
    and cascade down as the current time approaches them.

    Cells are allocated from a free-listed arena and linked intrusively
    through an [int] next-index array, so steady-state scheduling
    allocates nothing on the OCaml heap.

    Determinism contract: for any interleaving of {!schedule} and {!pop}
    calls with strictly increasing [seq] per queue, the pop sequence is
    {e exactly} the [(time, seq)]-lexicographic order — bit-identical to
    a binary heap over the same keys.  Quantization never reorders:
    events that share a tick are sorted by their exact [(time, seq)] key
    when the tick's bucket is drained, and events scheduled into the
    current tick are merge-inserted into the pending run at their sorted
    position.

    Not domain-safe; confine a wheel to one domain (like {!Heap}). *)

type 'a t

val bits : int
(** Buckets per level as a power of two (256 buckets = 8 bits). *)

val levels : int
(** Number of hierarchy levels; the wheel spans [2^(bits*levels)] ticks
    (far beyond any simulated horizon at the default tick).  Events
    beyond the span are clamped into the top level and still pop in
    correct [(time, seq)] order. *)

val create : ?tick:float -> unit -> 'a t
(** [tick] is the quantization granularity in seconds (default [1e-6],
    i.e. one microsecond of simulated time per level-0 bucket).
    @raise Invalid_argument if [tick] is not positive and finite. *)

val schedule : 'a t -> time:float -> seq:int -> 'a -> unit
(** Insert an event.  [time] must be non-negative and not NaN ([+inf]
    is allowed and clamps into the top level, like any time beyond the
    wheel's span); [seq] is the caller's tie-break (unique per live
    event, increasing in insertion order for FIFO-on-ties semantics).
    @raise Invalid_argument on NaN or negative time. *)

val pop : 'a t -> (float * int * 'a) option
(** Remove and return the minimum-[(time, seq)] event. *)

val peek : 'a t -> (float * int) option
(** Key of the next event without removing it. *)

val head_time : 'a t -> float
(** Time of the next event, without removing it or allocating.
    Undefined (may raise) on an empty wheel — check {!is_empty} first. *)

val head_payload : 'a t -> 'a
(** Payload of the next event, same contract as {!head_time}. *)

val drop : 'a t -> unit
(** Remove the next event without returning it (no-op when empty) — the
    allocation-free counterpart of {!pop} for callers that already read
    the head via {!head_time}/{!head_payload}. *)

val pop_before : 'a t -> until:float -> cell:float array -> 'a option
(** Pop the head event only if its time is [<= until]; on success the
    popped time is written to [cell.(0)] (a flat store — a float
    returned across a non-inlined call would be boxed) and the payload
    returned.  [None] when empty or the head is beyond [until].  The
    dispatch-loop fast path: one [Some] is its only allocation. *)

val precedes : 'a t -> time:float -> seq:int -> bool
(** Whether [(time, seq)] strictly precedes the wheel's head key (true
    on an empty wheel), without allocating.  Used by batched callers to
    test if an element may be processed ahead of the queue. *)

val length : 'a t -> int
val is_empty : 'a t -> bool

val clear : 'a t -> unit
(** Empty the wheel and reset the current tick to zero; the arena and
    bucket arrays are retained for reuse.  Statistics reset too. *)

type stats = {
  occupancy : int array;  (** resident events per level, length {!levels} *)
  ready : int;  (** events drained into the current run, not yet popped *)
  cascades : int;  (** upper-level buckets redistributed since create/clear *)
}

val stats : 'a t -> stats
