(* Tests for Mifo_analysis: the AS-level deflection product automaton,
   the router-level FIB audits and tunnel-aware loop search, the report
   serialisation, and the agreement between the static verdicts and the
   dynamic Loop_walk / Packetsim behaviours. *)

module As_graph = Mifo_topology.As_graph
module Generator = Mifo_topology.Generator
module Relationship = Mifo_topology.Relationship
module Routing = Mifo_bgp.Routing
module Routing_table = Mifo_bgp.Routing_table
module Prefix = Mifo_bgp.Prefix
module Policy = Mifo_core.Policy
module Loop_walk = Mifo_core.Loop_walk
module Deployment = Mifo_core.Deployment
module Engine = Mifo_core.Engine
module Fib = Mifo_core.Fib
module Packetsim = Mifo_netsim.Packetsim
module As_network = Mifo_netsim.As_network
module As_check = Mifo_analysis.As_check
module Net_check = Mifo_analysis.Net_check
module Report = Mifo_analysis.Report
module Verifier = Mifo_analysis.Verifier
module Automaton = Mifo_analysis.Automaton
module Props = Mifo_analysis.Props
module Parallel = Mifo_util.Parallel
module Json = Mifo_util.Obs.Json

let gadget = lazy (let g = Generator.fig2a_gadget () in (g, Routing.compute g 0))

(* ---------- AS-level automaton ---------- *)

let test_gadget_loop_free_with_check () =
  let g, rt = Lazy.force gadget in
  let r = As_check.find_loop ~tag_check:true g rt in
  Alcotest.(check bool) "no counterexample" true (r.As_check.counterexample = None);
  Alcotest.(check bool) "explored something" true (r.As_check.states_explored > 0)

let test_gadget_counterexample_without_check () =
  let g, rt = Lazy.force gadget in
  let r = As_check.find_loop ~tag_check:false g rt in
  match r.As_check.counterexample with
  | None -> Alcotest.fail "the ablated gadget must loop"
  | Some cx ->
    Alcotest.(check int) "toward the gadget origin" 0 cx.As_check.dest;
    Alcotest.(check bool) "cycle closes on its head" true
      (List.length cx.As_check.cycle >= 2
      && List.hd cx.As_check.cycle = List.nth cx.As_check.cycle (List.length cx.As_check.cycle - 1));
    (* the machine check: the counterexample's decision script drives the
       dynamic walker into the same loop *)
    (match As_check.replay ~tag_check:false g rt cx with
     | Loop_walk.Looped _ -> ()
     | _ -> Alcotest.fail "replay did not loop")

let test_gadget_paths_valley_free () =
  let g, rt = Lazy.force gadget in
  let violations, checked = As_check.check_paths g rt in
  Alcotest.(check int) "no violations" 0 (List.length violations);
  Alcotest.(check bool) "paths audited" true (checked > 0)

let test_verify_as_level_generated () =
  (* a generated topology, several destinations: clean with the check on,
     and loop counterexamples appear with the check off *)
  let topo =
    Generator.generate
      ~params:{ Generator.default_params with Generator.ases = 80; tier1 = 4;
                content_providers = 2; content_peer_span = (3, 8) }
      ~seed:42 ()
  in
  let g = topo.Generator.graph in
  let table = Routing_table.create g in
  let dests = [ 0; 7; 23; 41; 55; 79 ] in
  let on = Verifier.verify_as_level ~tag_check:true g ~table ~dests in
  Alcotest.(check bool) "tag-check on: clean" true (Report.ok on);
  Alcotest.(check int) "every destination checked" (List.length dests)
    on.Report.stats.Report.dests_checked;
  Alcotest.(check bool) "paths audited" true (on.Report.stats.Report.paths_checked > 0);
  let off = Verifier.verify_as_level ~tag_check:false g ~table ~dests in
  Alcotest.(check bool) "tag-check off: loops found" true
    (List.exists
       (function Report.Forwarding_loop { level = Report.As_level; _ } -> true | _ -> false)
       off.Report.violations)

(* Static verdict vs dynamic walker, on random topologies: with the
   tag-check the automaton is acyclic AND no adversarial walk loops;
   without it, any counterexample found must replay to a dynamic loop. *)
let prop_static_matches_dynamic =
  let topo =
    lazy
      (Generator.generate
         ~params:{ Generator.default_params with Generator.ases = 120; tier1 = 4;
                   content_providers = 2; content_peer_span = (3, 8) }
         ~seed:99 ())
  in
  QCheck2.Test.make
    ~name:"static loop-freedom verdict agrees with the dynamic walker" ~count:80
    QCheck2.Gen.(triple (int_bound 119) (int_bound 119) (int_bound 1_000_000))
    (fun (dst, src, salt) ->
      QCheck2.assume (dst <> src);
      let t = Lazy.force topo in
      let g = t.Generator.graph in
      let rt = Routing.compute g dst in
      let static_on = As_check.find_loop ~tag_check:true g rt in
      (* adversarial dynamic strategy: pseudo-randomly deflect anywhere *)
      let decide ~as_id ~upstream:_ ~entries =
        match entries with
        | [] -> Loop_walk.Default
        | entries ->
          let k = Hashtbl.hash (as_id, salt) mod (List.length entries + 1) in
          if k = 0 then Loop_walk.Default
          else Loop_walk.Deflect (List.nth entries (k - 1)).Routing.via
      in
      let dynamic_ok =
        match Loop_walk.walk ~tag_check:true g rt ~decide ~src with
        | Loop_walk.Looped _ -> false
        | _ -> true
      in
      let replay_ok =
        match (As_check.find_loop ~tag_check:false g rt).As_check.counterexample with
        | None -> true
        | Some cx -> (
          match As_check.replay ~tag_check:false g rt cx with
          | Loop_walk.Looped _ -> true
          | _ -> false)
      in
      static_on.As_check.counterexample = None && dynamic_ok && replay_ok)

(* ---------- the k-alternative automaton ---------- *)

let test_k2_gadget () =
  let g = Generator.k2_gadget () in
  let rt = Routing.compute g 0 in
  (* with the Tag-Check the gadget is clean at any k *)
  let on = As_check.find_loop ~tag_check:true g rt in
  Alcotest.(check bool) "tag-check on: clean (unbounded)" true
    (on.As_check.counterexample = None);
  (* ablated: the single-alternative data plane is loop-free (each AS's
     first alternative is the direct peer link to the destination)... *)
  let k1 = As_check.find_loop ~tag_check:false ~k:1 g rt in
  Alcotest.(check bool) "ablated k=1: clean" true (k1.As_check.counterexample = None);
  (* ...but the second-ranked alternatives 1->2 and 2->1 close a cycle *)
  let k2 = As_check.find_loop ~tag_check:false ~k:2 g rt in
  (match k2.As_check.counterexample with
   | None -> Alcotest.fail "ablated k=2 gadget must loop"
   | Some cx ->
     Alcotest.(check bool) "a second-ranked slot closes the cycle" true
       (List.exists
          (fun (m : As_check.move) -> m.As_check.slot >= 2)
          cx.As_check.cycle_moves);
     (* the machine check: the counterexample replays to a dynamic loop *)
     (match As_check.replay ~tag_check:false g rt cx with
      | Loop_walk.Looped _ -> ()
      | _ -> Alcotest.fail "k=2 replay did not loop"));
  (* the incremental checker carries the bound through *)
  let inc1 = As_check.Inc.create ~tag_check:false ~k:1 g rt in
  Alcotest.(check bool) "Inc k=1: clean" true
    ((As_check.Inc.result inc1).As_check.counterexample = None);
  let inc2 = As_check.Inc.create ~tag_check:false ~k:2 g rt in
  Alcotest.(check bool) "Inc k=2: loop" true
    ((As_check.Inc.result inc2).As_check.counterexample <> None)

let rec take n = function
  | [] -> []
  | x :: tl -> if n <= 0 then [] else x :: take (n - 1) tl

(* k-bounded static verdicts vs a dynamic walker restricted to the
   first k RIB alternatives — the pool Alt_select.ranked_alternatives
   draws from, so a clean bounded verdict must cover every ranked-set
   strategy; and any ablated counterexample must replay dynamically. *)
let prop_ranked_static_matches_dynamic =
  let topo =
    lazy
      (Generator.generate
         ~params:{ Generator.default_params with Generator.ases = 120; tier1 = 4;
                   content_providers = 2; content_peer_span = (3, 8) }
         ~seed:5 ())
  in
  QCheck2.Test.make
    ~name:"k-bounded static verdict agrees with the ranked dynamic walker" ~count:60
    QCheck2.Gen.(
      quad (int_range 1 4) (int_bound 119) (int_bound 119) (int_bound 1_000_000))
    (fun (k, dst, src, salt) ->
      QCheck2.assume (dst <> src);
      let t = Lazy.force topo in
      let g = t.Generator.graph in
      let rt = Routing.compute g dst in
      let static_on = As_check.find_loop ~tag_check:true ~k g rt in
      (* adversarial ranked strategy: pseudo-randomly deflect onto any of
         the first k alternatives (preference order), like a random
         bucket landing on a random slot of a ranked set *)
      let decide ~as_id ~upstream:_ ~entries =
        match entries with
        | [] | [ _ ] -> Loop_walk.Default
        | _ :: alternatives -> (
          let pool = take k alternatives in
          let c = Hashtbl.hash (as_id, salt, k) mod (List.length pool + 1) in
          if c = 0 then Loop_walk.Default
          else Loop_walk.Deflect (List.nth pool (c - 1)).Routing.via)
      in
      let dynamic_ok =
        match Loop_walk.walk ~tag_check:true g rt ~decide ~src with
        | Loop_walk.Looped _ -> false
        | _ -> true
      in
      let replay_ok =
        match (As_check.find_loop ~tag_check:false ~k g rt).As_check.counterexample with
        | None -> true
        | Some cx -> (
          match As_check.replay ~tag_check:false g rt cx with
          | Loop_walk.Looped _ -> true
          | _ -> false)
      in
      static_on.As_check.counterexample = None && dynamic_ok && replay_ok)

(* ---------- incremental re-verification ---------- *)

(* Toggling deflection edges on the ablated (dirty) gadget: every
   recheck must agree with a fresh full check under the same overlay,
   and re-enabling everything restores the original counterexample. *)
let test_inc_gadget_toggle () =
  let g, rt = Lazy.force gadget in
  let inc = As_check.Inc.create ~tag_check:false g rt in
  match (As_check.Inc.result inc).As_check.counterexample with
  | None -> Alcotest.fail "the ablated gadget must start with a loop"
  | Some cx ->
    let toggle enabled =
      List.iter
        (fun (m : As_check.move) ->
          if m.As_check.deflected then
            As_check.Inc.set_deflection inc ~at:m.As_check.at ~via:m.As_check.via
              ~enabled)
        cx.As_check.cycle_moves
    in
    toggle false;
    let r = As_check.Inc.recheck inc in
    let full = As_check.Inc.full_check inc in
    Alcotest.(check bool) "verdict agrees with full after disabling" true
      (r.As_check.counterexample = full.As_check.counterexample);
    toggle true;
    let r2 = As_check.Inc.recheck inc in
    let full2 = As_check.Inc.full_check inc in
    Alcotest.(check bool) "verdict agrees with full after re-enabling" true
      (r2.As_check.counterexample = full2.As_check.counterexample);
    Alcotest.(check bool) "re-enabling restores the loop" true
      (r2.As_check.counterexample <> None)

let prop_incremental_matches_full =
  let topo =
    lazy
      (Generator.generate
         ~params:{ Generator.default_params with Generator.ases = 120; tier1 = 4;
                   content_providers = 2; content_peer_span = (3, 8) }
         ~seed:7 ())
  in
  QCheck2.Test.make
    ~name:"incremental recheck is bit-identical to a fresh full check" ~count:40
    QCheck2.Gen.(
      triple bool (int_bound 119)
        (list_size (int_range 1 12) (triple (int_bound 119) (int_bound 7) bool)))
    (fun (tag_check, dst, ops) ->
      let t = Lazy.force topo in
      let g = t.Generator.graph in
      let rt = Routing.compute g dst in
      let inc = As_check.Inc.create ~tag_check g rt in
      let ok = ref true in
      List.iter
        (fun (at, idx, enabled) ->
          let k = Routing.rib_size rt at in
          if at <> dst && k >= 2 then begin
            let via = Routing.rib_via rt at (1 + (idx mod (k - 1))) in
            As_check.Inc.set_deflection inc ~at ~via ~enabled;
            let r = As_check.Inc.recheck inc in
            let full = As_check.Inc.full_check inc in
            if r.As_check.counterexample <> full.As_check.counterexample then ok := false;
            match r.As_check.counterexample with
            | Some cx -> (
              (* any surviving counterexample must still replay to a loop *)
              match As_check.replay ~tag_check g rt cx with
              | Loop_walk.Looped _ -> ()
              | _ -> ok := false)
            | None -> ()
          end)
        ops;
      !ok)

(* ---------- report serialisation ---------- *)

let test_report_json () =
  let v =
    Report.Forwarding_loop
      { dest = 0; level = Report.As_level; entry = [ 3 ]; cycle = [ 1; 2; 1 ] }
  in
  let r =
    {
      Report.violations = [ v ];
      stats =
        {
          Report.empty_stats with
          Report.dests_checked = 1;
          states_explored = 7;
          paths_checked = 5;
        };
    }
  in
  Alcotest.(check bool) "not ok" false (Report.ok r);
  let j = Json.parse (Report.to_json_string r) in
  Alcotest.(check bool) "ok field false" true (Json.member "ok" j = Some (Json.Bool false));
  (match Json.member "violations" j with
   | Some (Json.Arr [ first ]) ->
     Alcotest.(check bool) "kind discriminator" true
       (Json.member "kind" first = Some (Json.Str "forwarding-loop"))
   | _ -> Alcotest.fail "expected one serialised violation");
  (match Json.member "stats" j with
   | Some stats ->
     Alcotest.(check bool) "stats carried" true
       (Json.member "paths_checked" stats = Some (Json.Num 5.))
   | None -> Alcotest.fail "missing stats");
  let clean = Report.merge [ Report.empty ] in
  let j = Json.parse (Report.to_json_string clean) in
  Alcotest.(check bool) "clean report is ok" true
    (Json.member "ok" j = Some (Json.Bool true))

(* ---------- router-level network verification ---------- *)

let gadget_network ?config () =
  let g = Generator.fig2a_gadget () in
  let table = Routing_table.create g in
  let hosts = [ 0; 1; 2; 3 ] in
  let net = As_network.build ?config table ~deployment:(Deployment.full ~n:4) ~hosts () in
  let routing = List.map (fun d -> (d, Routing_table.get table d)) hosts in
  (net, routing)

let test_network_gadget_clean () =
  let net, routing = gadget_network () in
  let r = Verifier.verify_network net.As_network.sim ~routing in
  Alcotest.(check bool) "clean" true (Report.ok r);
  Alcotest.(check bool) "FIB entries audited" true
    (r.Report.stats.Report.fib_entries_checked > 0);
  Alcotest.(check bool) "states explored" true (r.Report.stats.Report.states_explored > 0)

let test_network_gadget_tag_check_off_loops () =
  let config = { Packetsim.default_config with Packetsim.tag_check = false } in
  let net, routing = gadget_network ~config () in
  let r = Verifier.verify_network net.As_network.sim ~routing in
  Alcotest.(check bool) "violations found" false (Report.ok r);
  match
    List.find_opt
      (function Report.Forwarding_loop { level = Report.Router_level; _ } -> true | _ -> false)
      r.Report.violations
  with
  | Some (Report.Forwarding_loop { cycle; _ }) ->
    Alcotest.(check bool) "concrete cycle" true (List.length cycle >= 2)
  | _ -> Alcotest.fail "expected a router-level forwarding loop"

let test_network_dangling_alt_port () =
  (* corrupt one installed FIB entry: an alternative pointing at a port
     that does not exist *)
  let net, routing = gadget_network () in
  let r1 = net.As_network.router_of_as.(1) in
  Fib.set_alt (Packetsim.fib net.As_network.sim r1) (Prefix.of_as 0) (Some 999);
  let violations, _ = Net_check.audit_fibs net.As_network.sim ~routing in
  match
    List.find_opt
      (function Report.Dangling_fib_port { node; _ } -> node = r1 | _ -> false)
      violations
  with
  | Some (Report.Dangling_fib_port { port; _ }) ->
    Alcotest.(check int) "the bogus port" 999 port
  | _ -> Alcotest.fail "expected a dangling-FIB-port violation"

let test_network_ebgp_tunnel_egress () =
  (* AS 1: r1 tunnels its deflections to border router r3, but the only
     physical path crosses r2 — which has NO iBGP route to r3 and whose
     FIB fallback for the destination is an eBGP port.  An encapsulated
     packet could leave the AS mid-tunnel: the verifier must flag it. *)
  let sim = Packetsim.create () in
  let h1 = Packetsim.add_host sim ~addr:(Prefix.host_of_as 1 1) in
  let h2 = Packetsim.add_host sim ~addr:(Prefix.host_of_as 2 1) in
  let r1 = Packetsim.add_router sim ~as_id:1 in
  let r2 = Packetsim.add_router sim ~as_id:1 in
  let r3 = Packetsim.add_router sim ~as_id:1 in
  let rx = Packetsim.add_router sim ~as_id:2 in
  let rate = 1e9 in
  let _, r1h = Packetsim.connect sim ~a:h1 ~b:r1 ~kind_ab:Engine.Local ~kind_ba:Engine.Local ~rate () in
  let _, rxh = Packetsim.connect sim ~a:h2 ~b:rx ~kind_ab:Engine.Local ~kind_ba:Engine.Local ~rate () in
  (* r1 sees iBGP peer r3 through the port toward r2; r2's own end of
     that wire only peers back to r1, so r2 cannot route the tunnel on *)
  let r1_r2, r2_r1 =
    Packetsim.connect sim ~a:r1 ~b:r2
      ~kind_ab:(Engine.Ibgp { peer_router = r3 })
      ~kind_ba:(Engine.Ibgp { peer_router = r1 })
      ~rate ()
  in
  let r1_rx, _ =
    Packetsim.connect sim ~a:r1 ~b:rx
      ~kind_ab:(Engine.Ebgp { neighbor_as = 2; rel = Relationship.Customer })
      ~kind_ba:(Engine.Ebgp { neighbor_as = 1; rel = Relationship.Provider })
      ~rate ()
  in
  let r2_rx, _ =
    Packetsim.connect sim ~a:r2 ~b:rx
      ~kind_ab:(Engine.Ebgp { neighbor_as = 2; rel = Relationship.Customer })
      ~kind_ba:(Engine.Ebgp { neighbor_as = 1; rel = Relationship.Provider })
      ~rate ()
  in
  ignore r3;
  ignore r2_r1;
  ignore r1h;
  let dst = Prefix.of_as 2 in
  Fib.insert (Packetsim.fib sim r1) dst ~out_port:r1_rx ~alt_port:r1_r2 ();
  Fib.insert (Packetsim.fib sim r2) dst ~out_port:r2_rx ();
  Fib.insert (Packetsim.fib sim rx) dst ~out_port:rxh ();
  let g = Generator.fig2a_gadget () in
  let routing = [ (2, Routing.compute g 2) ] in
  let violations, _ = Net_check.find_loops sim ~routing in
  match
    List.find_opt
      (function Report.Ebgp_tunnel_egress _ -> true | _ -> false)
      violations
  with
  | Some (Report.Ebgp_tunnel_egress { node; endpoint; port; _ }) ->
    Alcotest.(check int) "flagged mid-tunnel at r2" r2 node;
    Alcotest.(check int) "tunnel endpoint" r3 endpoint;
    Alcotest.(check int) "the leaking eBGP port" r2_rx port
  | _ -> Alcotest.fail "expected an eBGP-tunnel-egress violation"

(* ---------- the property suite ---------- *)

let all_props = Props.all

(* The black-hole gadget: every property clean when healthy; failing
   the default-tree link 2-0 strands AS 2 (single-route node, so it is
   unprotectable and its packets die at the cut), and every static
   counterexample must replay [Dropped] through the dynamic walker. *)
let test_black_hole_gadget () =
  let g = Generator.black_hole_gadget () in
  let table = Routing_table.create g in
  let dests = [ 0; 1; 2; 3 ] in
  let healthy = Verifier.verify_props ~props:all_props g ~table ~dests in
  Alcotest.(check bool) "healthy gadget: all properties clean" true (Report.ok healthy);
  let rt = Routing_table.get table 0 in
  let broken = Props.verify_dest ~props:[ Props.Delivery ] ~fail_link:(2, 0) g rt in
  Alcotest.(check bool) "failed link 2-0: delivery violated" false (Report.ok broken);
  Alcotest.(check bool) "every violation is a black hole" true
    (broken.Report.violations <> []
    && List.for_all
         (function Report.Black_hole _ -> true | _ -> false)
         broken.Report.violations);
  Alcotest.(check bool) "AS 2 is stranded toward 0" true
    (List.exists
       (function Report.Black_hole { at = 2; dest = 0; _ } -> true | _ -> false)
       broken.Report.violations);
  Alcotest.(check bool) "stats count the stranded states" true
    (broken.Report.stats.Report.stranded_states > 0);
  List.iter
    (function
      | Report.Black_hole { path; moves; failed_link; _ } -> (
        match Props.replay_stranded g rt ~path ~moves ~failed_link with
        | Loop_walk.Dropped _ -> ()
        | _ -> Alcotest.fail "black-hole counterexample did not strand dynamically")
      | _ -> ())
    broken.Report.violations

(* The stretch gadget: the bounce 2 -> 1 -> 2 -> 3 -> 0 is deliverable
   at length 4 against a default of 2, so the gadget is clean at the
   default bound (and reports max stretch 2) but must fail at bound 1,
   with worst paths that replay [Delivered] at exactly the claimed
   length. *)
let test_stretch_gadget () =
  let g = Generator.stretch_gadget () in
  let table = Routing_table.create g in
  let dests = [ 0; 1; 2; 3 ] in
  let healthy = Verifier.verify_props ~props:all_props g ~table ~dests in
  Alcotest.(check bool) "healthy gadget: clean at the default bound" true
    (Report.ok healthy);
  let rt = Routing_table.get table 0 in
  let relaxed = Props.verify_dest ~props:[ Props.Stretch ] g rt in
  Alcotest.(check bool) "clean at the default bound toward 0" true (Report.ok relaxed);
  Alcotest.(check int) "worst stretch toward 0 is 2" 2
    relaxed.Report.stats.Report.max_stretch;
  let tight = Props.verify_dest ~props:[ Props.Stretch ] ~stretch_bound:1 g rt in
  Alcotest.(check bool) "bound 1: stretch violated" false (Report.ok tight);
  Alcotest.(check bool) "every violation is a stretch excess" true
    (tight.Report.violations <> []
    && List.for_all
         (function Report.Stretch_exceeded _ -> true | _ -> false)
         tight.Report.violations);
  Alcotest.(check bool) "the source of the bounce is reported" true
    (List.exists
       (function
         | Report.Stretch_exceeded { src = 2; default_len = 2; actual_len = 4; _ } ->
           true
         | _ -> false)
       tight.Report.violations);
  List.iter
    (function
      | Report.Stretch_exceeded { path; moves; actual_len; _ } -> (
        match Props.replay_stretch g rt ~path ~moves with
        | Loop_walk.Delivered p ->
          Alcotest.(check int) "replay delivers at the claimed length" actual_len
            (List.length p - 1)
        | _ -> Alcotest.fail "stretch counterexample did not deliver dynamically")
      | _ -> ())
    tight.Report.violations

(* JSON serialisation of the three new violation classes and the new
   coverage counters. *)
let test_props_report_json () =
  let mv = { Automaton.at = 1; tag = true; via = 2; slot = 1; deflected = true } in
  let vs =
    [
      Report.Black_hole
        { dest = 0; at = 2; path = [ 1; 2 ]; moves = [ mv ]; failed_link = Some (2, 0) };
      Report.Stretch_exceeded
        {
          dest = 0;
          src = 2;
          default_len = 2;
          actual_len = 4;
          bound = 1;
          path = [ 2; 1; 2; 3; 0 ];
          moves = [ mv ];
        };
      Report.Failure_loop
        { dest = 0; failed_link = (3, 4); entry = [ 5 ]; cycle = [ 3; 4; 3 ] };
    ]
  in
  Alcotest.(check (list string))
    "kind discriminators"
    [ "black-hole"; "stretch"; "failure-loop" ]
    (List.map Report.kind_of vs);
  let r =
    {
      Report.violations = vs;
      stats =
        {
          Report.empty_stats with
          Report.delivery_states = 3;
          stranded_states = 1;
          stretch_states = 2;
          max_stretch = 4;
          failed_links = 5;
          unprotectable_links = 1;
          resilience_full_checks = 2;
        };
    }
  in
  let j = Json.parse (Report.to_json_string r) in
  Alcotest.(check bool) "not ok" true (Json.member "ok" j = Some (Json.Bool false));
  (match Json.member "violations" j with
   | Some (Json.Arr [ a; b; c ]) ->
     List.iter2
       (fun kind v ->
         Alcotest.(check bool) (kind ^ " kind field") true
           (Json.member "kind" v = Some (Json.Str kind)))
       [ "black-hole"; "stretch"; "failure-loop" ]
       [ a; b; c ]
   | _ -> Alcotest.fail "expected three serialised violations");
  (match Json.member "stats" j with
   | Some stats ->
     List.iter
       (fun (field, v) ->
         Alcotest.(check bool) field true (Json.member field stats = Some (Json.Num v)))
       [
         ("delivery_states", 3.);
         ("stranded_states", 1.);
         ("stretch_states", 2.);
         ("max_stretch", 4.);
         ("failed_links", 5.);
         ("unprotectable_links", 1.);
         ("resilience_full_checks", 2.);
       ]
   | None -> Alcotest.fail "missing stats");
  (* merged coverage: counters sum, the worst stretch is a max *)
  let other =
    {
      Report.violations = [];
      stats = { Report.empty_stats with Report.max_stretch = 9; failed_links = 1 };
    }
  in
  let m = Report.merge [ r; other ] in
  Alcotest.(check int) "merge: max_stretch is a max" 9 m.Report.stats.Report.max_stretch;
  Alcotest.(check int) "merge: failed_links sum" 6 m.Report.stats.Report.failed_links

(* Static delivery verdict vs dynamic stranding under random failed
   default-tree links.  Every static black hole must replay [Dropped];
   and when the static check is clean, no adversarial walk restricted to
   the surviving FIB (the withdrawal model: no deflection onto a route
   through the failed node, none across the failed link) can strand or
   loop a packet.  The overlay must also never introduce a loop — the
   withdrawal model provably preserves loop-freedom. *)
let prop_delivery_matches_stranding =
  let topo =
    lazy
      (Generator.generate
         ~params:{ Generator.default_params with Generator.ases = 120; tier1 = 4;
                   content_providers = 2; content_peer_span = (3, 8) }
         ~seed:11 ())
  in
  QCheck2.Test.make
    ~name:"static delivery verdict agrees with dynamic stranding" ~count:60
    QCheck2.Gen.(
      quad (int_bound 119) (int_bound 119) (int_bound 119) (int_bound 1_000_000))
    (fun (dst, u, src, salt) ->
      QCheck2.assume (dst <> u && dst <> src);
      let t = Lazy.force topo in
      let g = t.Generator.graph in
      let rt = Routing.compute g dst in
      QCheck2.assume (Routing.reachable rt u && Routing.reachable rt src);
      match Routing.next_hop rt u with
      | None -> false (* a reachable non-destination always has a next hop *)
      | Some v ->
        let r =
          Props.verify_dest ~props:[ Props.Loops; Props.Delivery ] ~fail_link:(u, v) g
            rt
        in
        let no_loop =
          List.for_all
            (function Report.Forwarding_loop _ -> false | _ -> true)
            r.Report.violations
        in
        let strandings =
          List.filter_map
            (function
              | Report.Black_hole { path; moves; failed_link; _ } ->
                Some (path, moves, failed_link)
              | _ -> None)
            r.Report.violations
        in
        let replays_strand =
          List.for_all
            (fun (path, moves, failed_link) ->
              match Props.replay_stranded g rt ~path ~moves ~failed_link with
              | Loop_walk.Dropped _ -> true
              | _ -> false)
            strandings
        in
        (* [x] sits in [u]'s default subtree — routes via [x] are
           withdrawn by the failure, exactly {!Automaton.fail_link}. *)
        let withdrawn x =
          let rec go x =
            x = u
            || (x <> dst
               && match Routing.next_hop rt x with Some y -> go y | None -> false)
          in
          go x
        in
        let link_up a b = not ((a = u && b = v) || (a = v && b = u)) in
        let decide ~as_id ~upstream ~entries =
          match entries with
          | [] | [ _ ] -> Loop_walk.Default
          | _ :: alternatives ->
            (* the strategy plays only moves the data plane offers: the
               deflection must survive the withdrawal, its link must be
               up, and it must pass the Tag-Check (the walker drops
               inadmissible deflections as [Valley] — not a black
               hole) *)
            let upstream_rel =
              Option.map (fun up -> As_graph.rel_exn g as_id up) upstream
            in
            let pool =
              List.filter
                (fun (e : Routing.rib_entry) ->
                  (not (withdrawn e.Routing.via))
                  && link_up as_id e.Routing.via
                  && Policy.deflection_allowed ~upstream:upstream_rel
                       ~downstream:e.Routing.rel)
                alternatives
            in
            let c = Hashtbl.hash (as_id, salt) mod (List.length pool + 1) in
            if c = 0 then Loop_walk.Default
            else Loop_walk.Deflect (List.nth pool (c - 1)).Routing.via
        in
        let dynamic_consistent =
          strandings <> []
          ||
          match Loop_walk.walk ~link_up g rt ~decide ~src with
          | Loop_walk.Delivered _ -> true
          | Loop_walk.Dropped _ | Loop_walk.Looped _ -> false
        in
        no_loop && replays_strand && dynamic_consistent)

(* The parallel fan-out must be bit-identical to the serial run: same
   JSON byte-for-byte at any job count (the 44K bench asserts the same
   identity at scale). *)
let prop_parallel_matches_serial =
  let fixture =
    lazy
      (let topo =
         Generator.generate
           ~params:{ Generator.default_params with Generator.ases = 120; tier1 = 4;
                     content_providers = 2; content_peer_span = (3, 8) }
           ~seed:13 ()
       in
       let g = topo.Generator.graph in
       (g, Routing_table.create g))
  in
  QCheck2.Test.make
    ~name:"parallel property report is bit-identical to serial (4 jobs)" ~count:8
    QCheck2.Gen.(pair (int_bound 1_000_000) (list_size (int_range 1 6) (int_bound 119)))
    (fun (seed, dests) ->
      let g, table = Lazy.force fixture in
      let dests = List.sort_uniq Int.compare dests in
      let serial = Parallel.create ~jobs:1 () in
      let four = Parallel.create ~jobs:4 () in
      let a =
        Verifier.verify_props ~pool:serial ~fail_links:4 ~seed ~props:all_props g ~table
          ~dests
      in
      let b =
        Verifier.verify_props ~pool:four ~fail_links:4 ~seed ~props:all_props g ~table
          ~dests
      in
      Parallel.shutdown serial;
      Parallel.shutdown four;
      Report.to_json_string a = Report.to_json_string b)

(* The resilience sweep's certificates vs N independent full checks:
   per failed link, the sweep's verdict (loop? how many strandings?)
   must equal a full loop + delivery check under the same overlay, and
   the sweep must cover exactly the protectable default-tree links plus
   the unprotectable ones it counts. *)
let prop_resilience_matches_full =
  let topo =
    lazy
      (Generator.generate
         ~params:{ Generator.default_params with Generator.ases = 60; tier1 = 3;
                   content_providers = 2; content_peer_span = (3, 6) }
         ~seed:17 ())
  in
  QCheck2.Test.make ~name:"resilience sweep agrees with independent full checks"
    ~count:20
    QCheck2.Gen.(int_bound 59)
    (fun dst ->
      let t = Lazy.force topo in
      let g = t.Generator.graph in
      let rt = Routing.compute g dst in
      let sweep = Props.verify_dest ~props:[ Props.Loops; Props.Resilience ] g rt in
      let ok =
        ref
          (List.for_all
             (function Report.Forwarding_loop _ -> false | _ -> true)
             sweep.Report.violations)
      in
      let n = As_graph.n g in
      let protectable = ref 0 in
      for u = 0 to n - 1 do
        if u <> dst && Routing.reachable rt u && Routing.rib_size rt u >= 2 then begin
          match Routing.next_hop rt u with
          | None -> ()
          | Some v ->
            incr protectable;
            let full =
              Props.verify_dest ~props:[ Props.Loops; Props.Delivery ]
                ~fail_link:(u, v) g rt
            in
            let count p l = List.length (List.filter p l) in
            let full_loop =
              List.exists
                (function Report.Forwarding_loop _ -> true | _ -> false)
                full.Report.violations
            in
            let full_stranded =
              count
                (function Report.Black_hole _ -> true | _ -> false)
                full.Report.violations
            in
            let sweep_loop =
              List.exists
                (function
                  | Report.Failure_loop { failed_link = (a, b); _ } -> a = u && b = v
                  | _ -> false)
                sweep.Report.violations
            in
            let sweep_stranded =
              count
                (function
                  | Report.Black_hole { failed_link = Some (a, b); _ } ->
                    a = u && b = v
                  | _ -> false)
                sweep.Report.violations
            in
            if full_loop <> sweep_loop || full_stranded <> sweep_stranded then
              ok := false
        end
      done;
      !ok
      && sweep.Report.stats.Report.failed_links
         = !protectable + sweep.Report.stats.Report.unprotectable_links)

let () =
  Alcotest.run "mifo_analysis"
    [
      ( "as_check",
        [
          Alcotest.test_case "gadget loop-free with the check" `Quick
            test_gadget_loop_free_with_check;
          Alcotest.test_case "gadget counterexample + replay without it" `Quick
            test_gadget_counterexample_without_check;
          Alcotest.test_case "gadget paths valley-free" `Quick test_gadget_paths_valley_free;
          Alcotest.test_case "generated topology: on clean, off loops" `Quick
            test_verify_as_level_generated;
          QCheck_alcotest.to_alcotest prop_static_matches_dynamic;
          Alcotest.test_case "k2 gadget: clean at k=1, loops at k=2" `Quick
            test_k2_gadget;
          QCheck_alcotest.to_alcotest prop_ranked_static_matches_dynamic;
          Alcotest.test_case "incremental toggles on the gadget" `Quick
            test_inc_gadget_toggle;
          QCheck_alcotest.to_alcotest prop_incremental_matches_full;
        ] );
      ( "report",
        [
          Alcotest.test_case "JSON round-trip" `Quick test_report_json;
          Alcotest.test_case "property-suite violations round-trip" `Quick
            test_props_report_json;
        ] );
      ( "props",
        [
          Alcotest.test_case "black-hole gadget: clean healthy, strands cut"
            `Quick test_black_hole_gadget;
          Alcotest.test_case "stretch gadget: clean at default bound, fails at 1"
            `Quick test_stretch_gadget;
          QCheck_alcotest.to_alcotest prop_delivery_matches_stranding;
          QCheck_alcotest.to_alcotest prop_parallel_matches_serial;
          QCheck_alcotest.to_alcotest prop_resilience_matches_full;
        ] );
      ( "net_check",
        [
          Alcotest.test_case "gadget network clean" `Quick test_network_gadget_clean;
          Alcotest.test_case "tag-check off: router-level loop" `Quick
            test_network_gadget_tag_check_off_loops;
          Alcotest.test_case "dangling alternative port" `Quick test_network_dangling_alt_port;
          Alcotest.test_case "eBGP egress mid-tunnel" `Quick test_network_ebgp_tunnel_egress;
        ] );
    ]
