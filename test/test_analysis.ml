(* Tests for Mifo_analysis: the AS-level deflection product automaton,
   the router-level FIB audits and tunnel-aware loop search, the report
   serialisation, and the agreement between the static verdicts and the
   dynamic Loop_walk / Packetsim behaviours. *)

module As_graph = Mifo_topology.As_graph
module Generator = Mifo_topology.Generator
module Relationship = Mifo_topology.Relationship
module Routing = Mifo_bgp.Routing
module Routing_table = Mifo_bgp.Routing_table
module Prefix = Mifo_bgp.Prefix
module Policy = Mifo_core.Policy
module Loop_walk = Mifo_core.Loop_walk
module Deployment = Mifo_core.Deployment
module Engine = Mifo_core.Engine
module Fib = Mifo_core.Fib
module Packetsim = Mifo_netsim.Packetsim
module As_network = Mifo_netsim.As_network
module As_check = Mifo_analysis.As_check
module Net_check = Mifo_analysis.Net_check
module Report = Mifo_analysis.Report
module Verifier = Mifo_analysis.Verifier
module Json = Mifo_util.Obs.Json

let gadget = lazy (let g = Generator.fig2a_gadget () in (g, Routing.compute g 0))

(* ---------- AS-level automaton ---------- *)

let test_gadget_loop_free_with_check () =
  let g, rt = Lazy.force gadget in
  let r = As_check.find_loop ~tag_check:true g rt in
  Alcotest.(check bool) "no counterexample" true (r.As_check.counterexample = None);
  Alcotest.(check bool) "explored something" true (r.As_check.states_explored > 0)

let test_gadget_counterexample_without_check () =
  let g, rt = Lazy.force gadget in
  let r = As_check.find_loop ~tag_check:false g rt in
  match r.As_check.counterexample with
  | None -> Alcotest.fail "the ablated gadget must loop"
  | Some cx ->
    Alcotest.(check int) "toward the gadget origin" 0 cx.As_check.dest;
    Alcotest.(check bool) "cycle closes on its head" true
      (List.length cx.As_check.cycle >= 2
      && List.hd cx.As_check.cycle = List.nth cx.As_check.cycle (List.length cx.As_check.cycle - 1));
    (* the machine check: the counterexample's decision script drives the
       dynamic walker into the same loop *)
    (match As_check.replay ~tag_check:false g rt cx with
     | Loop_walk.Looped _ -> ()
     | _ -> Alcotest.fail "replay did not loop")

let test_gadget_paths_valley_free () =
  let g, rt = Lazy.force gadget in
  let violations, checked = As_check.check_paths g rt in
  Alcotest.(check int) "no violations" 0 (List.length violations);
  Alcotest.(check bool) "paths audited" true (checked > 0)

let test_verify_as_level_generated () =
  (* a generated topology, several destinations: clean with the check on,
     and loop counterexamples appear with the check off *)
  let topo =
    Generator.generate
      ~params:{ Generator.default_params with Generator.ases = 80; tier1 = 4;
                content_providers = 2; content_peer_span = (3, 8) }
      ~seed:42 ()
  in
  let g = topo.Generator.graph in
  let table = Routing_table.create g in
  let dests = [ 0; 7; 23; 41; 55; 79 ] in
  let on = Verifier.verify_as_level ~tag_check:true g ~table ~dests in
  Alcotest.(check bool) "tag-check on: clean" true (Report.ok on);
  Alcotest.(check int) "every destination checked" (List.length dests)
    on.Report.stats.Report.dests_checked;
  Alcotest.(check bool) "paths audited" true (on.Report.stats.Report.paths_checked > 0);
  let off = Verifier.verify_as_level ~tag_check:false g ~table ~dests in
  Alcotest.(check bool) "tag-check off: loops found" true
    (List.exists
       (function Report.Forwarding_loop { level = Report.As_level; _ } -> true | _ -> false)
       off.Report.violations)

(* Static verdict vs dynamic walker, on random topologies: with the
   tag-check the automaton is acyclic AND no adversarial walk loops;
   without it, any counterexample found must replay to a dynamic loop. *)
let prop_static_matches_dynamic =
  let topo =
    lazy
      (Generator.generate
         ~params:{ Generator.default_params with Generator.ases = 120; tier1 = 4;
                   content_providers = 2; content_peer_span = (3, 8) }
         ~seed:99 ())
  in
  QCheck2.Test.make
    ~name:"static loop-freedom verdict agrees with the dynamic walker" ~count:80
    QCheck2.Gen.(triple (int_bound 119) (int_bound 119) (int_bound 1_000_000))
    (fun (dst, src, salt) ->
      QCheck2.assume (dst <> src);
      let t = Lazy.force topo in
      let g = t.Generator.graph in
      let rt = Routing.compute g dst in
      let static_on = As_check.find_loop ~tag_check:true g rt in
      (* adversarial dynamic strategy: pseudo-randomly deflect anywhere *)
      let decide ~as_id ~upstream:_ ~entries =
        match entries with
        | [] -> Loop_walk.Default
        | entries ->
          let k = Hashtbl.hash (as_id, salt) mod (List.length entries + 1) in
          if k = 0 then Loop_walk.Default
          else Loop_walk.Deflect (List.nth entries (k - 1)).Routing.via
      in
      let dynamic_ok =
        match Loop_walk.walk ~tag_check:true g rt ~decide ~src with
        | Loop_walk.Looped _ -> false
        | _ -> true
      in
      let replay_ok =
        match (As_check.find_loop ~tag_check:false g rt).As_check.counterexample with
        | None -> true
        | Some cx -> (
          match As_check.replay ~tag_check:false g rt cx with
          | Loop_walk.Looped _ -> true
          | _ -> false)
      in
      static_on.As_check.counterexample = None && dynamic_ok && replay_ok)

(* ---------- the k-alternative automaton ---------- *)

let test_k2_gadget () =
  let g = Generator.k2_gadget () in
  let rt = Routing.compute g 0 in
  (* with the Tag-Check the gadget is clean at any k *)
  let on = As_check.find_loop ~tag_check:true g rt in
  Alcotest.(check bool) "tag-check on: clean (unbounded)" true
    (on.As_check.counterexample = None);
  (* ablated: the single-alternative data plane is loop-free (each AS's
     first alternative is the direct peer link to the destination)... *)
  let k1 = As_check.find_loop ~tag_check:false ~k:1 g rt in
  Alcotest.(check bool) "ablated k=1: clean" true (k1.As_check.counterexample = None);
  (* ...but the second-ranked alternatives 1->2 and 2->1 close a cycle *)
  let k2 = As_check.find_loop ~tag_check:false ~k:2 g rt in
  (match k2.As_check.counterexample with
   | None -> Alcotest.fail "ablated k=2 gadget must loop"
   | Some cx ->
     Alcotest.(check bool) "a second-ranked slot closes the cycle" true
       (List.exists
          (fun (m : As_check.move) -> m.As_check.slot >= 2)
          cx.As_check.cycle_moves);
     (* the machine check: the counterexample replays to a dynamic loop *)
     (match As_check.replay ~tag_check:false g rt cx with
      | Loop_walk.Looped _ -> ()
      | _ -> Alcotest.fail "k=2 replay did not loop"));
  (* the incremental checker carries the bound through *)
  let inc1 = As_check.Inc.create ~tag_check:false ~k:1 g rt in
  Alcotest.(check bool) "Inc k=1: clean" true
    ((As_check.Inc.result inc1).As_check.counterexample = None);
  let inc2 = As_check.Inc.create ~tag_check:false ~k:2 g rt in
  Alcotest.(check bool) "Inc k=2: loop" true
    ((As_check.Inc.result inc2).As_check.counterexample <> None)

let rec take n = function
  | [] -> []
  | x :: tl -> if n <= 0 then [] else x :: take (n - 1) tl

(* k-bounded static verdicts vs a dynamic walker restricted to the
   first k RIB alternatives — the pool Alt_select.ranked_alternatives
   draws from, so a clean bounded verdict must cover every ranked-set
   strategy; and any ablated counterexample must replay dynamically. *)
let prop_ranked_static_matches_dynamic =
  let topo =
    lazy
      (Generator.generate
         ~params:{ Generator.default_params with Generator.ases = 120; tier1 = 4;
                   content_providers = 2; content_peer_span = (3, 8) }
         ~seed:5 ())
  in
  QCheck2.Test.make
    ~name:"k-bounded static verdict agrees with the ranked dynamic walker" ~count:60
    QCheck2.Gen.(
      quad (int_range 1 4) (int_bound 119) (int_bound 119) (int_bound 1_000_000))
    (fun (k, dst, src, salt) ->
      QCheck2.assume (dst <> src);
      let t = Lazy.force topo in
      let g = t.Generator.graph in
      let rt = Routing.compute g dst in
      let static_on = As_check.find_loop ~tag_check:true ~k g rt in
      (* adversarial ranked strategy: pseudo-randomly deflect onto any of
         the first k alternatives (preference order), like a random
         bucket landing on a random slot of a ranked set *)
      let decide ~as_id ~upstream:_ ~entries =
        match entries with
        | [] | [ _ ] -> Loop_walk.Default
        | _ :: alternatives -> (
          let pool = take k alternatives in
          let c = Hashtbl.hash (as_id, salt, k) mod (List.length pool + 1) in
          if c = 0 then Loop_walk.Default
          else Loop_walk.Deflect (List.nth pool (c - 1)).Routing.via)
      in
      let dynamic_ok =
        match Loop_walk.walk ~tag_check:true g rt ~decide ~src with
        | Loop_walk.Looped _ -> false
        | _ -> true
      in
      let replay_ok =
        match (As_check.find_loop ~tag_check:false ~k g rt).As_check.counterexample with
        | None -> true
        | Some cx -> (
          match As_check.replay ~tag_check:false g rt cx with
          | Loop_walk.Looped _ -> true
          | _ -> false)
      in
      static_on.As_check.counterexample = None && dynamic_ok && replay_ok)

(* ---------- incremental re-verification ---------- *)

(* Toggling deflection edges on the ablated (dirty) gadget: every
   recheck must agree with a fresh full check under the same overlay,
   and re-enabling everything restores the original counterexample. *)
let test_inc_gadget_toggle () =
  let g, rt = Lazy.force gadget in
  let inc = As_check.Inc.create ~tag_check:false g rt in
  match (As_check.Inc.result inc).As_check.counterexample with
  | None -> Alcotest.fail "the ablated gadget must start with a loop"
  | Some cx ->
    let toggle enabled =
      List.iter
        (fun (m : As_check.move) ->
          if m.As_check.deflected then
            As_check.Inc.set_deflection inc ~at:m.As_check.at ~via:m.As_check.via
              ~enabled)
        cx.As_check.cycle_moves
    in
    toggle false;
    let r = As_check.Inc.recheck inc in
    let full = As_check.Inc.full_check inc in
    Alcotest.(check bool) "verdict agrees with full after disabling" true
      (r.As_check.counterexample = full.As_check.counterexample);
    toggle true;
    let r2 = As_check.Inc.recheck inc in
    let full2 = As_check.Inc.full_check inc in
    Alcotest.(check bool) "verdict agrees with full after re-enabling" true
      (r2.As_check.counterexample = full2.As_check.counterexample);
    Alcotest.(check bool) "re-enabling restores the loop" true
      (r2.As_check.counterexample <> None)

let prop_incremental_matches_full =
  let topo =
    lazy
      (Generator.generate
         ~params:{ Generator.default_params with Generator.ases = 120; tier1 = 4;
                   content_providers = 2; content_peer_span = (3, 8) }
         ~seed:7 ())
  in
  QCheck2.Test.make
    ~name:"incremental recheck is bit-identical to a fresh full check" ~count:40
    QCheck2.Gen.(
      triple bool (int_bound 119)
        (list_size (int_range 1 12) (triple (int_bound 119) (int_bound 7) bool)))
    (fun (tag_check, dst, ops) ->
      let t = Lazy.force topo in
      let g = t.Generator.graph in
      let rt = Routing.compute g dst in
      let inc = As_check.Inc.create ~tag_check g rt in
      let ok = ref true in
      List.iter
        (fun (at, idx, enabled) ->
          let k = Routing.rib_size rt at in
          if at <> dst && k >= 2 then begin
            let via = Routing.rib_via rt at (1 + (idx mod (k - 1))) in
            As_check.Inc.set_deflection inc ~at ~via ~enabled;
            let r = As_check.Inc.recheck inc in
            let full = As_check.Inc.full_check inc in
            if r.As_check.counterexample <> full.As_check.counterexample then ok := false;
            match r.As_check.counterexample with
            | Some cx -> (
              (* any surviving counterexample must still replay to a loop *)
              match As_check.replay ~tag_check g rt cx with
              | Loop_walk.Looped _ -> ()
              | _ -> ok := false)
            | None -> ()
          end)
        ops;
      !ok)

(* ---------- report serialisation ---------- *)

let test_report_json () =
  let v =
    Report.Forwarding_loop
      { dest = 0; level = Report.As_level; entry = [ 3 ]; cycle = [ 1; 2; 1 ] }
  in
  let r =
    {
      Report.violations = [ v ];
      stats =
        {
          Report.dests_checked = 1;
          states_explored = 7;
          paths_checked = 5;
          fib_entries_checked = 0;
        };
    }
  in
  Alcotest.(check bool) "not ok" false (Report.ok r);
  let j = Json.parse (Report.to_json_string r) in
  Alcotest.(check bool) "ok field false" true (Json.member "ok" j = Some (Json.Bool false));
  (match Json.member "violations" j with
   | Some (Json.Arr [ first ]) ->
     Alcotest.(check bool) "kind discriminator" true
       (Json.member "kind" first = Some (Json.Str "forwarding-loop"))
   | _ -> Alcotest.fail "expected one serialised violation");
  (match Json.member "stats" j with
   | Some stats ->
     Alcotest.(check bool) "stats carried" true
       (Json.member "paths_checked" stats = Some (Json.Num 5.))
   | None -> Alcotest.fail "missing stats");
  let clean = Report.merge [ Report.empty ] in
  let j = Json.parse (Report.to_json_string clean) in
  Alcotest.(check bool) "clean report is ok" true
    (Json.member "ok" j = Some (Json.Bool true))

(* ---------- router-level network verification ---------- *)

let gadget_network ?config () =
  let g = Generator.fig2a_gadget () in
  let table = Routing_table.create g in
  let hosts = [ 0; 1; 2; 3 ] in
  let net = As_network.build ?config table ~deployment:(Deployment.full ~n:4) ~hosts () in
  let routing = List.map (fun d -> (d, Routing_table.get table d)) hosts in
  (net, routing)

let test_network_gadget_clean () =
  let net, routing = gadget_network () in
  let r = Verifier.verify_network net.As_network.sim ~routing in
  Alcotest.(check bool) "clean" true (Report.ok r);
  Alcotest.(check bool) "FIB entries audited" true
    (r.Report.stats.Report.fib_entries_checked > 0);
  Alcotest.(check bool) "states explored" true (r.Report.stats.Report.states_explored > 0)

let test_network_gadget_tag_check_off_loops () =
  let config = { Packetsim.default_config with Packetsim.tag_check = false } in
  let net, routing = gadget_network ~config () in
  let r = Verifier.verify_network net.As_network.sim ~routing in
  Alcotest.(check bool) "violations found" false (Report.ok r);
  match
    List.find_opt
      (function Report.Forwarding_loop { level = Report.Router_level; _ } -> true | _ -> false)
      r.Report.violations
  with
  | Some (Report.Forwarding_loop { cycle; _ }) ->
    Alcotest.(check bool) "concrete cycle" true (List.length cycle >= 2)
  | _ -> Alcotest.fail "expected a router-level forwarding loop"

let test_network_dangling_alt_port () =
  (* corrupt one installed FIB entry: an alternative pointing at a port
     that does not exist *)
  let net, routing = gadget_network () in
  let r1 = net.As_network.router_of_as.(1) in
  Fib.set_alt (Packetsim.fib net.As_network.sim r1) (Prefix.of_as 0) (Some 999);
  let violations, _ = Net_check.audit_fibs net.As_network.sim ~routing in
  match
    List.find_opt
      (function Report.Dangling_fib_port { node; _ } -> node = r1 | _ -> false)
      violations
  with
  | Some (Report.Dangling_fib_port { port; _ }) ->
    Alcotest.(check int) "the bogus port" 999 port
  | _ -> Alcotest.fail "expected a dangling-FIB-port violation"

let test_network_ebgp_tunnel_egress () =
  (* AS 1: r1 tunnels its deflections to border router r3, but the only
     physical path crosses r2 — which has NO iBGP route to r3 and whose
     FIB fallback for the destination is an eBGP port.  An encapsulated
     packet could leave the AS mid-tunnel: the verifier must flag it. *)
  let sim = Packetsim.create () in
  let h1 = Packetsim.add_host sim ~addr:(Prefix.host_of_as 1 1) in
  let h2 = Packetsim.add_host sim ~addr:(Prefix.host_of_as 2 1) in
  let r1 = Packetsim.add_router sim ~as_id:1 in
  let r2 = Packetsim.add_router sim ~as_id:1 in
  let r3 = Packetsim.add_router sim ~as_id:1 in
  let rx = Packetsim.add_router sim ~as_id:2 in
  let rate = 1e9 in
  let _, r1h = Packetsim.connect sim ~a:h1 ~b:r1 ~kind_ab:Engine.Local ~kind_ba:Engine.Local ~rate () in
  let _, rxh = Packetsim.connect sim ~a:h2 ~b:rx ~kind_ab:Engine.Local ~kind_ba:Engine.Local ~rate () in
  (* r1 sees iBGP peer r3 through the port toward r2; r2's own end of
     that wire only peers back to r1, so r2 cannot route the tunnel on *)
  let r1_r2, r2_r1 =
    Packetsim.connect sim ~a:r1 ~b:r2
      ~kind_ab:(Engine.Ibgp { peer_router = r3 })
      ~kind_ba:(Engine.Ibgp { peer_router = r1 })
      ~rate ()
  in
  let r1_rx, _ =
    Packetsim.connect sim ~a:r1 ~b:rx
      ~kind_ab:(Engine.Ebgp { neighbor_as = 2; rel = Relationship.Customer })
      ~kind_ba:(Engine.Ebgp { neighbor_as = 1; rel = Relationship.Provider })
      ~rate ()
  in
  let r2_rx, _ =
    Packetsim.connect sim ~a:r2 ~b:rx
      ~kind_ab:(Engine.Ebgp { neighbor_as = 2; rel = Relationship.Customer })
      ~kind_ba:(Engine.Ebgp { neighbor_as = 1; rel = Relationship.Provider })
      ~rate ()
  in
  ignore r3;
  ignore r2_r1;
  ignore r1h;
  let dst = Prefix.of_as 2 in
  Fib.insert (Packetsim.fib sim r1) dst ~out_port:r1_rx ~alt_port:r1_r2 ();
  Fib.insert (Packetsim.fib sim r2) dst ~out_port:r2_rx ();
  Fib.insert (Packetsim.fib sim rx) dst ~out_port:rxh ();
  let g = Generator.fig2a_gadget () in
  let routing = [ (2, Routing.compute g 2) ] in
  let violations, _ = Net_check.find_loops sim ~routing in
  match
    List.find_opt
      (function Report.Ebgp_tunnel_egress _ -> true | _ -> false)
      violations
  with
  | Some (Report.Ebgp_tunnel_egress { node; endpoint; port; _ }) ->
    Alcotest.(check int) "flagged mid-tunnel at r2" r2 node;
    Alcotest.(check int) "tunnel endpoint" r3 endpoint;
    Alcotest.(check int) "the leaking eBGP port" r2_rx port
  | _ -> Alcotest.fail "expected an eBGP-tunnel-egress violation"

let () =
  Alcotest.run "mifo_analysis"
    [
      ( "as_check",
        [
          Alcotest.test_case "gadget loop-free with the check" `Quick
            test_gadget_loop_free_with_check;
          Alcotest.test_case "gadget counterexample + replay without it" `Quick
            test_gadget_counterexample_without_check;
          Alcotest.test_case "gadget paths valley-free" `Quick test_gadget_paths_valley_free;
          Alcotest.test_case "generated topology: on clean, off loops" `Quick
            test_verify_as_level_generated;
          QCheck_alcotest.to_alcotest prop_static_matches_dynamic;
          Alcotest.test_case "k2 gadget: clean at k=1, loops at k=2" `Quick
            test_k2_gadget;
          QCheck_alcotest.to_alcotest prop_ranked_static_matches_dynamic;
          Alcotest.test_case "incremental toggles on the gadget" `Quick
            test_inc_gadget_toggle;
          QCheck_alcotest.to_alcotest prop_incremental_matches_full;
        ] );
      ("report", [ Alcotest.test_case "JSON round-trip" `Quick test_report_json ]);
      ( "net_check",
        [
          Alcotest.test_case "gadget network clean" `Quick test_network_gadget_clean;
          Alcotest.test_case "tag-check off: router-level loop" `Quick
            test_network_gadget_tag_check_off_loops;
          Alcotest.test_case "dangling alternative port" `Quick test_network_dangling_alt_port;
          Alcotest.test_case "eBGP egress mid-tunnel" `Quick test_network_ebgp_tunnel_egress;
        ] );
    ]
