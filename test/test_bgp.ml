(* Unit and property tests for Mifo_bgp: prefixes, the route computation,
   the RIB, the path-count DP and the routing table cache. *)

module Prefix = Mifo_bgp.Prefix
module Routing = Mifo_bgp.Routing
module Routing_table = Mifo_bgp.Routing_table
module Path_count = Mifo_bgp.Path_count
module As_graph = Mifo_topology.As_graph
module Relationship = Mifo_topology.Relationship
module Generator = Mifo_topology.Generator

(* ---------- Prefix ---------- *)

let test_addr_roundtrip () =
  List.iter
    (fun s ->
      Alcotest.(check string) s s (Prefix.addr_to_string (Prefix.addr_of_string s)))
    [ "0.0.0.0"; "10.1.2.3"; "255.255.255.255"; "192.168.0.1" ]

let test_addr_invalid () =
  List.iter
    (fun s ->
      Alcotest.(check bool) ("rejects " ^ s) true
        (match Prefix.addr_of_string s with
         | exception Invalid_argument _ -> true
         | _ -> false))
    [ "1.2.3"; "1.2.3.4.5"; "256.0.0.1"; "a.b.c.d"; "-1.0.0.0" ]

let test_prefix_contains () =
  let p = Prefix.of_string "10.1.2.0/24" in
  Alcotest.(check bool) "inside" true (Prefix.contains p (Prefix.addr_of_string "10.1.2.77"));
  Alcotest.(check bool) "outside" false (Prefix.contains p (Prefix.addr_of_string "10.1.3.1"));
  let default = Prefix.of_string "0.0.0.0/0" in
  Alcotest.(check bool) "default route matches all" true
    (Prefix.contains default (Prefix.addr_of_string "203.0.113.9"))

let test_prefix_masks_host_bits () =
  let p = Prefix.make (Prefix.addr_of_string "10.1.2.77") 24 in
  Alcotest.(check string) "masked" "10.1.2.0/24" (Prefix.to_string p)

let test_of_as () =
  let p = Prefix.of_as 258 in
  Alcotest.(check string) "10.x.y.0/24 encoding" "10.1.2.0/24" (Prefix.to_string p);
  Alcotest.(check bool) "host inside" true (Prefix.contains p (Prefix.host_of_as 258 1));
  Alcotest.(check bool) "rejects out of range" true
    (match Prefix.of_as 70_000 with exception Invalid_argument _ -> true | _ -> false)

(* ---------- Routing on hand-built graphs ---------- *)

(* A chain: 3 (tier1) -> 2 -> 1 -> 0, all provider->customer. *)
let chain () =
  As_graph.create ~n:4
    ~edges:
      [
        (3, 2, As_graph.Provider_customer);
        (2, 1, As_graph.Provider_customer);
        (1, 0, As_graph.Provider_customer);
      ]

let test_chain_routing () =
  let g = chain () in
  let rt = Routing.compute g 0 in
  Alcotest.(check (list int)) "3's path descends" [ 3; 2; 1; 0 ] (Routing.default_path rt 3);
  Alcotest.(check int) "3's length" 3 (Routing.best_len rt 3);
  Alcotest.(check bool) "3's class is customer" true
    (Routing.best_class rt 3 = Some Routing.Customer_route);
  (* and in the other direction everything is a provider route *)
  let rt3 = Routing.compute g 3 in
  Alcotest.(check (list int)) "0 climbs" [ 0; 1; 2; 3 ] (Routing.default_path rt3 0);
  Alcotest.(check bool) "0's class is provider" true
    (Routing.best_class rt3 0 = Some Routing.Provider_route)

let test_gadget_routing () =
  let g = Generator.fig2a_gadget () in
  let rt = Routing.compute g 0 in
  (* every peer prefers its direct customer link to 0 *)
  List.iter
    (fun v ->
      Alcotest.(check (list int)) "direct customer route" [ v; 0 ] (Routing.default_path rt v);
      Alcotest.(check bool) "class customer" true
        (Routing.best_class rt v = Some Routing.Customer_route))
    [ 1; 2; 3 ];
  (* each also has two alternative peer routes in its RIB *)
  List.iter
    (fun v ->
      let alts = Routing.alternatives rt v in
      Alcotest.(check int) "two alternatives" 2 (List.length alts);
      List.iter
        (fun (e : Routing.rib_entry) ->
          Alcotest.(check bool) "peer alternates" true
            (Relationship.equal e.rel Relationship.Peer);
          Alcotest.(check int) "length 2" 2 e.len)
        alts)
    [ 1; 2; 3 ]

(* Class preference: a longer customer route must beat a shorter peer
   route.  Graph: dest 0; 1 reaches 0 through a 3-hop customer chain and
   directly via a peer that is 0's provider. *)
let test_customer_beats_shorter_peer () =
  let g =
    As_graph.create ~n:5
      ~edges:
        [
          (* customer chain 1 > 2 > 3 > 0 *)
          (1, 2, As_graph.Provider_customer);
          (2, 3, As_graph.Provider_customer);
          (3, 0, As_graph.Provider_customer);
          (* 4 is 0's provider and 1's peer *)
          (4, 0, As_graph.Provider_customer);
          (1, 4, As_graph.Peer_peer);
        ]
  in
  let rt = Routing.compute g 0 in
  Alcotest.(check bool) "customer route selected" true
    (Routing.best_class rt 1 = Some Routing.Customer_route);
  Alcotest.(check (list int)) "long way down" [ 1; 2; 3; 0 ] (Routing.default_path rt 1);
  (* the peer route is still in the RIB as an alternative *)
  let alts = Routing.alternatives rt 1 in
  Alcotest.(check bool) "peer alternative present" true
    (List.exists (fun (e : Routing.rib_entry) -> e.via = 4 && e.len = 2) alts)

(* Export policy through the RIB: a peer that itself has only a provider
   route exports nothing.  1 - 2 peers; 2's only route to 0 is via its
   provider 3. *)
let test_peer_does_not_export_provider_routes () =
  let g =
    As_graph.create ~n:4
      ~edges:
        [
          (3, 0, As_graph.Provider_customer);
          (3, 2, As_graph.Provider_customer);
          (1, 2, As_graph.Peer_peer);
          (3, 1, As_graph.Provider_customer);
        ]
  in
  let rt = Routing.compute g 0 in
  Alcotest.(check bool) "2 reaches via provider" true
    (Routing.best_class rt 2 = Some Routing.Provider_route);
  (* 1's RIB must not contain a route via peer 2 *)
  let rib = Routing.rib rt 1 in
  Alcotest.(check bool) "no peer-learned entry" false
    (List.exists (fun (e : Routing.rib_entry) -> e.via = 2) rib);
  Alcotest.(check int) "only the provider route" 1 (List.length rib)

let test_tie_break_lowest_id () =
  (* two equal-length provider routes: lowest next-hop id wins *)
  let g =
    As_graph.create ~n:4
      ~edges:
        [
          (1, 0, As_graph.Provider_customer);
          (2, 0, As_graph.Provider_customer);
          (1, 3, As_graph.Provider_customer);
          (2, 3, As_graph.Provider_customer);
        ]
  in
  let rt = Routing.compute g 0 in
  Alcotest.(check (option int)) "lowest id next hop" (Some 1) (Routing.next_hop rt 3)

let test_rib_sorted_best_first () =
  let g = Generator.fig2a_gadget () in
  let rt = Routing.compute g 0 in
  match Routing.rib rt 1 with
  | best :: rest ->
    Alcotest.(check int) "default via direct customer" 0 best.Routing.via;
    let key (e : Routing.rib_entry) =
      (Relationship.preference_rank e.rel, e.len, e.via)
    in
    List.iter
      (fun e ->
        Alcotest.(check bool) "default is weakly preferred" true (key best <= key e))
      rest
  | [] -> Alcotest.fail "empty RIB"

(* ---------- Property tests on generated topologies ---------- *)

let topo = lazy (Generator.generate ~seed:21 ())
let graph () = (Lazy.force topo).Generator.graph

let prop_default_paths_valley_free =
  QCheck2.Test.make ~name:"default paths are valley-free and reach the destination"
    ~count:60
    QCheck2.Gen.(pair (int_bound 1_999) (int_bound 1_999))
    (fun (s, d) ->
      let g = graph () in
      QCheck2.assume (s <> d);
      let rt = Routing.compute g d in
      let path = Routing.default_path rt s in
      As_graph.path_is_valley_free g path
      && List.hd path = s
      && List.hd (List.rev path) = d
      && List.length path - 1 = Routing.best_len rt s)

let prop_default_paths_simple =
  QCheck2.Test.make ~name:"default paths never repeat an AS" ~count:60
    QCheck2.Gen.(pair (int_bound 1_999) (int_bound 1_999))
    (fun (s, d) ->
      QCheck2.assume (s <> d);
      let g = graph () in
      let rt = Routing.compute g d in
      let path = Routing.default_path rt s in
      List.length (List.sort_uniq compare path) = List.length path)

let prop_rib_entries_consistent =
  QCheck2.Test.make ~name:"every RIB entry is exportable and correctly measured" ~count:30
    QCheck2.Gen.(pair (int_bound 1_999) (int_bound 1_999))
    (fun (s, d) ->
      QCheck2.assume (s <> d);
      let g = graph () in
      let rt = Routing.compute g d in
      List.for_all
        (fun (e : Routing.rib_entry) ->
          (* the advertised route length matches the neighbor's state *)
          match e.rel with
          | Relationship.Customer | Relationship.Peer ->
            (* exported only if the neighbor's best route is a customer route *)
            (match Routing.customer_route_len rt e.via with
             | Some l -> e.len = l + 1
             | None -> false)
          | Relationship.Provider -> (
            match Routing.export_len rt e.via with
            | Some l -> e.len = l + 1
            | None -> false))
        (Routing.rib rt s))

(* The CSR arena representation (the default) must produce exactly the
   RIBs of the boxed oracle, and the packed per-entry accessors must
   read field-for-field what the boxed view holds. *)
let prop_csr_matches_boxed =
  QCheck2.Test.make ~name:"routing: CSR and boxed reps produce identical RIBs"
    ~count:12 (QCheck2.Gen.int_bound 1_999)
    (fun d ->
      let g = graph () in
      let csr = Routing.compute ~rep:Routing.Csr g d in
      let boxed = Routing.compute ~rep:Routing.Boxed g d in
      (match (Routing.rep csr, Routing.rep boxed) with
       | Routing.Csr, Routing.Boxed -> ()
       | _ -> QCheck2.Test.fail_report "rep accessor lies");
      for v = 0 to As_graph.n g - 1 do
        let rc = Routing.rib csr v and rb = Routing.rib boxed v in
        if rc <> rb then QCheck2.Test.fail_report "rib lists diverged";
        let k = Routing.rib_size csr v in
        if k <> List.length rb || k <> Routing.rib_size boxed v then
          QCheck2.Test.fail_report "rib_size diverged";
        List.iteri
          (fun i (e : Routing.rib_entry) ->
            if
              Routing.rib_via csr v i <> e.via
              || Routing.rib_len_at csr v i <> e.len
              || Routing.rib_rel_at csr v i <> e.rel
              || Routing.rib_via boxed v i <> e.via
              || Routing.rib_len_at boxed v i <> e.len
              || Routing.rib_rel_at boxed v i <> e.rel
            then QCheck2.Test.fail_report "packed accessors diverged")
          rb
      done;
      true)

(* The CSR build records its heap high-water mark. *)
let test_peak_words_gauge () =
  let g = graph () in
  ignore (Routing.compute g 17);
  let peak = Mifo_util.Obs.gauge_value "routing.peak_words" in
  Alcotest.(check bool) "routing.peak_words is a positive word count" true (peak > 0.);
  let snapshot = Mifo_util.Obs.snapshot_json () in
  let contains ~sub s =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "gauge appears in the --metrics snapshot" true
    (contains ~sub:"\"routing.peak_words\"" snapshot)

let prop_everything_reachable =
  QCheck2.Test.make ~name:"connected topology: every AS reaches every destination"
    ~count:10 (QCheck2.Gen.int_bound 1_999)
    (fun d ->
      let g = graph () in
      let rt = Routing.compute g d in
      let ok = ref true in
      for v = 0 to As_graph.n g - 1 do
        if not (Routing.reachable rt v) then ok := false
      done;
      !ok)

(* ---------- Path_count ---------- *)

let test_gadget_path_count () =
  let g = Generator.fig2a_gadget () in
  let rt = Routing.compute g 0 in
  let counts = Path_count.mifo_counts g rt ~capable:(fun _ -> true) in
  (* from AS 1: direct, via each peer (2 paths), via peer then peer is
     valley-forbidden -> 1 + 2 = 3 *)
  Alcotest.(check (float 1e-9)) "3 paths from each peer" 3.0 counts.(1);
  Alcotest.(check (float 1e-9)) "dest counts itself once" 1.0 counts.(0)

let test_path_count_matches_enumeration () =
  let t = Generator.generate
      ~params:{ Generator.default_params with Generator.ases = 60; tier1 = 4;
                content_providers = 2; content_peer_span = (2, 5) }
      ~seed:3 ()
  in
  let g = t.Generator.graph in
  let rt = Routing.compute g 0 in
  let counts = Path_count.mifo_counts g rt ~capable:(fun _ -> true) in
  for src = 1 to As_graph.n g - 1 do
    if counts.(src) <= 500. then begin
      let paths =
        Path_count.enumerate_mifo_paths g rt ~capable:(fun _ -> true) ~src ~limit:1000
      in
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "DP count = enumeration at src %d" src)
        (float_of_int (List.length paths))
        counts.(src)
    end
  done

let test_enumerated_paths_are_valley_free () =
  let g = Generator.fig2a_gadget () in
  let rt = Routing.compute g 0 in
  List.iter
    (fun src ->
      let paths = Path_count.enumerate_mifo_paths g rt ~capable:(fun _ -> true) ~src ~limit:100 in
      List.iter
        (fun p ->
          Alcotest.(check bool) "valley free" true (As_graph.path_is_valley_free g p))
        paths)
    [ 1; 2; 3 ]

let test_partial_deployment_counts_fewer () =
  let g = graph () in
  let rt = Routing.compute g 0 in
  let full = Path_count.mifo_counts g rt ~capable:(fun _ -> true) in
  let none = Path_count.mifo_counts g rt ~capable:(fun _ -> false) in
  let half = Path_count.mifo_counts g rt ~capable:(fun v -> v mod 2 = 0) in
  for v = 1 to As_graph.n g - 1 do
    Alcotest.(check bool) "bgp-only is exactly 1" true (none.(v) = 1.0);
    Alcotest.(check bool) "partial between" true (half.(v) >= 1.0 && half.(v) <= full.(v))
  done

let test_bgp_count () =
  let g = graph () in
  let rt = Routing.compute g 5 in
  Alcotest.(check int) "one path" 1 (Path_count.bgp_count rt ~src:100);
  Alcotest.(check int) "self" 1 (Path_count.bgp_count rt ~src:5)

(* ---------- Routing_table ---------- *)

let test_routing_table_cache () =
  let g = graph () in
  let table = Routing_table.create g in
  let a = Routing_table.get table 3 in
  let b = Routing_table.get table 3 in
  Alcotest.(check bool) "cached (physical equality)" true (a == b);
  Alcotest.(check int) "one destination cached" 1 (Routing_table.cached_count table)

let test_routing_table_eviction () =
  let g = graph () in
  let table = Routing_table.create ~max_cached:2 g in
  ignore (Routing_table.get table 1);
  ignore (Routing_table.get table 2);
  ignore (Routing_table.get table 3);
  Alcotest.(check int) "bounded" 2 (Routing_table.cached_count table)

let test_routing_table_lru_refresh () =
  let g = graph () in
  (* max_cached 32 -> 16 shards of capacity 2; 1, 17 and 33 share a
     shard, so inserting 33 must evict that shard's LRU entry. *)
  let table = Routing_table.create ~max_cached:32 g in
  let a1 = Routing_table.get table 1 in
  let a17 = Routing_table.get table 17 in
  ignore (Routing_table.get table 1);
  (* hit refreshes 1's recency *)
  ignore (Routing_table.get table 33);
  (* shard full: 17 is now least recent *)
  Alcotest.(check bool) "refreshed entry survives eviction" true
    (Routing_table.get table 1 == a1);
  Alcotest.(check bool) "least-recently-used entry was evicted" false
    (Routing_table.get table 17 == a17)

let test_precompute_parallel_determinism () =
  let g = graph () in
  let n = As_graph.n g in
  let dests = Array.init 40 (fun i -> i * n / 40) in
  let serial = Routing_table.create g in
  let parallel = Routing_table.create g in
  let pool1 = Mifo_util.Parallel.create ~jobs:1 () in
  let pool4 = Mifo_util.Parallel.create ~jobs:4 () in
  Routing_table.precompute ~pool:pool1 serial dests;
  Routing_table.precompute ~pool:pool4 parallel dests;
  Mifo_util.Parallel.shutdown pool1;
  Mifo_util.Parallel.shutdown pool4;
  Array.iter
    (fun d ->
      let rs = Routing_table.get serial d and rp = Routing_table.get parallel d in
      for v = 0 to n - 1 do
        Alcotest.(check bool)
          (Printf.sprintf "identical RIB at (d=%d, v=%d)" d v)
          true
          (Routing.rib rs v = Routing.rib rp v);
        Alcotest.(check (option int))
          (Printf.sprintf "identical next hop at (d=%d, v=%d)" d v)
          (Routing.next_hop rs v) (Routing.next_hop rp v)
      done;
      (* spot-check full default paths from a few sources *)
      List.iter
        (fun s ->
          if s <> d then
            Alcotest.(check (list int))
              (Printf.sprintf "identical path %d -> %d" s d)
              (Routing.default_path rs s) (Routing.default_path rp s))
        [ 0; 7; n / 2; n - 1 ])
    dests

let () =
  Alcotest.run "mifo_bgp"
    [
      ( "prefix",
        [
          Alcotest.test_case "address roundtrip" `Quick test_addr_roundtrip;
          Alcotest.test_case "invalid addresses" `Quick test_addr_invalid;
          Alcotest.test_case "contains" `Quick test_prefix_contains;
          Alcotest.test_case "masks host bits" `Quick test_prefix_masks_host_bits;
          Alcotest.test_case "of_as encoding" `Quick test_of_as;
        ] );
      ( "routing",
        [
          Alcotest.test_case "chain" `Quick test_chain_routing;
          Alcotest.test_case "fig2a gadget" `Quick test_gadget_routing;
          Alcotest.test_case "customer beats shorter peer" `Quick test_customer_beats_shorter_peer;
          Alcotest.test_case "peers do not export provider routes" `Quick
            test_peer_does_not_export_provider_routes;
          Alcotest.test_case "tie-break on lowest id" `Quick test_tie_break_lowest_id;
          Alcotest.test_case "rib sorted best-first" `Quick test_rib_sorted_best_first;
          QCheck_alcotest.to_alcotest prop_default_paths_valley_free;
          QCheck_alcotest.to_alcotest prop_default_paths_simple;
          QCheck_alcotest.to_alcotest prop_rib_entries_consistent;
          QCheck_alcotest.to_alcotest prop_everything_reachable;
          QCheck_alcotest.to_alcotest prop_csr_matches_boxed;
          Alcotest.test_case "peak-words gauge exposed" `Quick test_peak_words_gauge;
        ] );
      ( "path_count",
        [
          Alcotest.test_case "gadget count" `Quick test_gadget_path_count;
          Alcotest.test_case "DP matches enumeration" `Quick test_path_count_matches_enumeration;
          Alcotest.test_case "enumerated paths valley-free" `Quick
            test_enumerated_paths_are_valley_free;
          Alcotest.test_case "deployment monotonicity" `Quick test_partial_deployment_counts_fewer;
          Alcotest.test_case "bgp count" `Quick test_bgp_count;
        ] );
      ( "routing_table",
        [
          Alcotest.test_case "caching" `Quick test_routing_table_cache;
          Alcotest.test_case "eviction bound" `Quick test_routing_table_eviction;
          Alcotest.test_case "LRU refresh" `Quick test_routing_table_lru_refresh;
          Alcotest.test_case "parallel precompute deterministic" `Quick
            test_precompute_parallel_determinism;
        ] );
    ]
