(* Unit and property tests for Mifo_core: the deployment maps, the
   one-bit policy, packets, the FIB, the Algorithm 1 engine, the daemon,
   the greedy alternative selection, and the loop-freedom theorem. *)

module Deployment = Mifo_core.Deployment
module Policy = Mifo_core.Policy
module Packet = Mifo_core.Packet
module Fib = Mifo_core.Fib
module Engine = Mifo_core.Engine
module Daemon = Mifo_core.Daemon
module Alt_select = Mifo_core.Alt_select
module Loop_walk = Mifo_core.Loop_walk
module Obs = Mifo_util.Obs
module Prefix = Mifo_bgp.Prefix
module Routing = Mifo_bgp.Routing
module Relationship = Mifo_topology.Relationship
module As_graph = Mifo_topology.As_graph
module Generator = Mifo_topology.Generator

(* ---------- Deployment ---------- *)

let test_deployment_full_none () =
  let f = Deployment.full ~n:10 and z = Deployment.none ~n:10 in
  Alcotest.(check int) "full count" 10 (Deployment.count f);
  Alcotest.(check int) "none count" 0 (Deployment.count z);
  Alcotest.(check bool) "full capable" true (Deployment.capable f 3);
  Alcotest.(check bool) "none capable" false (Deployment.capable z 3)

let test_deployment_fraction () =
  let d = Deployment.fraction ~n:1000 ~ratio:0.3 ~seed:5 in
  Alcotest.(check int) "30%" 300 (Deployment.count d);
  let d' = Deployment.fraction ~n:1000 ~ratio:0.3 ~seed:5 in
  Alcotest.(check (list int)) "deterministic" (Deployment.members d) (Deployment.members d');
  let d2 = Deployment.fraction ~n:1000 ~ratio:0.3 ~seed:6 in
  Alcotest.(check bool) "seed changes the set" false
    (Deployment.members d = Deployment.members d2)

let test_deployment_of_list () =
  let d = Deployment.of_list ~n:5 [ 1; 3; 3 ] in
  Alcotest.(check int) "dedup" 2 (Deployment.count d);
  Alcotest.(check (list int)) "members" [ 1; 3 ] (Deployment.members d);
  Alcotest.check_raises "range check"
    (Invalid_argument "Deployment.of_list: id out of range") (fun () ->
      ignore (Deployment.of_list ~n:5 [ 9 ]))

let test_deployment_clamps_ratio () =
  Alcotest.(check int) "ratio > 1 clamps" 10
    (Deployment.count (Deployment.fraction ~n:10 ~ratio:2.5 ~seed:1));
  Alcotest.(check int) "ratio < 0 clamps" 0
    (Deployment.count (Deployment.fraction ~n:10 ~ratio:(-1.) ~seed:1))

(* ---------- Policy ---------- *)

let test_policy () =
  Alcotest.(check bool) "customer upstream tags 1" true
    (Policy.tag_of_upstream Relationship.Customer);
  Alcotest.(check bool) "peer upstream tags 0" false
    (Policy.tag_of_upstream Relationship.Peer);
  Alcotest.(check bool) "provider upstream tags 0" false
    (Policy.tag_of_upstream Relationship.Provider);
  Alcotest.(check bool) "tag set allows anything" true
    (Policy.check ~tag:true ~downstream:Relationship.Provider);
  Alcotest.(check bool) "tag clear allows customers" true
    (Policy.check ~tag:false ~downstream:Relationship.Customer);
  Alcotest.(check bool) "tag clear forbids peers" false
    (Policy.check ~tag:false ~downstream:Relationship.Peer);
  Alcotest.(check bool) "source may deflect anywhere" true
    (Policy.deflection_allowed ~upstream:None ~downstream:Relationship.Provider);
  Alcotest.(check bool) "peer to peer forbidden" false
    (Policy.deflection_allowed ~upstream:(Some Relationship.Peer)
       ~downstream:Relationship.Peer)

(* ---------- Packet ---------- *)

let mk_packet ?ttl () =
  Packet.make ?ttl ~src:(Prefix.host_of_as 1 1) ~dst:(Prefix.host_of_as 2 1) ~flow:5 ()

let test_packet_encap () =
  let p = mk_packet () in
  let e = Packet.encapsulate p ~outer_src:3 ~outer_dst:4 in
  Alcotest.(check bool) "encapsulated" true (e.Packet.encap <> None);
  Alcotest.(check int) "outer header on the wire" (p.Packet.size_bits + 160)
    (Packet.wire_size_bits e);
  let d = Packet.decapsulate e in
  Alcotest.(check bool) "decapsulated" true (d.Packet.encap = None);
  Alcotest.(check bool) "no nested tunnels" true
    (match Packet.encapsulate e ~outer_src:1 ~outer_dst:2 with
     | exception Invalid_argument _ -> true
     | _ -> false)

let test_packet_ttl () =
  let p = mk_packet ~ttl:2 () in
  (match Packet.decrement_ttl p with
   | Some p' -> Alcotest.(check int) "decremented" 1 p'.Packet.ttl
   | None -> Alcotest.fail "should survive");
  let p1 = mk_packet ~ttl:1 () in
  Alcotest.(check bool) "expires at 1" true (Packet.decrement_ttl p1 = None)

(* ---------- Fib ---------- *)

let test_fib_lpm () =
  let fib = Fib.create () in
  Fib.insert fib (Prefix.of_string "10.0.0.0/8") ~out_port:1 ();
  Fib.insert fib (Prefix.of_string "10.1.0.0/16") ~out_port:2 ();
  Fib.insert fib (Prefix.of_string "10.1.2.0/24") ~out_port:3 ~alt_port:9 ();
  let port addr =
    match Fib.lookup fib (Prefix.addr_of_string addr) with
    | Some e -> Fib.out_port e
    | None -> -1
  in
  Alcotest.(check int) "/24 wins" 3 (port "10.1.2.5");
  Alcotest.(check int) "/16 wins" 2 (port "10.1.9.5");
  Alcotest.(check int) "/8 wins" 1 (port "10.9.9.9");
  Alcotest.(check int) "miss" (-1) (port "11.0.0.1");
  Alcotest.(check int) "three entries" 3 (Fib.size fib)

let test_fib_set_alt () =
  let fib = Fib.create () in
  let p = Prefix.of_string "10.1.2.0/24" in
  Fib.insert fib p ~out_port:1 ();
  Fib.set_alt fib p (Some 5);
  (match Fib.find fib p with
   | Some e -> Alcotest.(check (option int)) "alt set" (Some 5) (Fib.alt_port e)
   | None -> Alcotest.fail "entry missing");
  Alcotest.check_raises "unknown prefix" Not_found (fun () ->
      Fib.set_alt fib (Prefix.of_string "11.0.0.0/8") None)

let test_fib_buckets () =
  for flow = 0 to 10_000 do
    let b = Fib.flow_bucket flow in
    Alcotest.(check bool) "bucket in range" true (b >= 0 && b < Fib.buckets)
  done;
  Alcotest.(check int) "deterministic" (Fib.flow_bucket 1234) (Fib.flow_bucket 1234);
  (* buckets are reasonably spread *)
  let seen = Array.make Fib.buckets 0 in
  for flow = 0 to 999 do
    seen.(Fib.flow_bucket flow) <- seen.(Fib.flow_bucket flow) + 1
  done;
  Alcotest.(check bool) "no empty bucket over 1000 flows" true
    (Array.for_all (fun c -> c > 0) seen)

let test_fib_reinsert_preserves_deflection () =
  (* A BGP route refresh re-inserts the same prefix.  With the default
     egress unchanged, the call's alternative hint is authoritative: a
     matching hint must not clobber the daemon's live deflection state,
     while an omitted hint means "no alternative" and clears it
     (regression for the old behavior that silently preserved a stale
     alternative forever). *)
  let fib = Fib.create () in
  let p = Prefix.of_as 2 in
  Fib.insert fib p ~out_port:0 ~alt_port:1 ();
  let e = Option.get (Fib.find fib p) in
  Fib.set_alts e [ 1; 3 ];
  Fib.set_deflect_buckets e 17;
  (* refresh: same default egress, hint matches the live primary — the
     whole ranked set and the ramp survive *)
  Fib.insert fib p ~out_port:0 ~alt_port:1 ();
  let e = Option.get (Fib.find fib p) in
  Alcotest.(check (option int)) "alt preserved" (Some 1) (Fib.alt_port e);
  Alcotest.(check int) "ranked set preserved" 3 (Fib.alt_at e 1);
  Alcotest.(check int) "buckets preserved" 17 (Fib.deflect_buckets e);
  (* refresh with a different hint: the new alternative replaces the
     set and the ramp restarts *)
  Fib.insert fib p ~out_port:0 ~alt_port:9 ();
  let e = Option.get (Fib.find fib p) in
  Alcotest.(check (option int)) "new hint wins" (Some 9) (Fib.alt_port e);
  Alcotest.(check int) "higher slots cleared" (-1) (Fib.alt_at e 1);
  Alcotest.(check int) "buckets reset on alt change" 0 (Fib.deflect_buckets e);
  (* regression: refresh WITHOUT an alternative clears the old one *)
  Fib.set_deflect_buckets e 5;
  Fib.insert fib p ~out_port:0 ();
  let e = Option.get (Fib.find fib p) in
  Alcotest.(check (option int)) "None hint clears the alternative" None
    (Fib.alt_port e);
  Alcotest.(check int) "buckets reset on clear" 0 (Fib.deflect_buckets e);
  (* a genuine route change resets everything *)
  Fib.insert fib p ~out_port:0 ~alt_port:1 ();
  Fib.set_deflect_buckets (Option.get (Fib.find fib p)) 11;
  Fib.insert fib p ~out_port:5 ~alt_port:9 ();
  let e = Option.get (Fib.find fib p) in
  Alcotest.(check int) "new default egress" 5 (Fib.out_port e);
  Alcotest.(check (option int)) "new alternative" (Some 9) (Fib.alt_port e);
  Alcotest.(check int) "buckets reset on route change" 0 (Fib.deflect_buckets e);
  Alcotest.(check int) "one entry" 1 (Fib.size fib)

let test_fib_may_deflect_clears () =
  (* Regression: [may_deflect] used to be a sticky flag that stayed on
     forever after any entry transiently gained an alternative.  It must
     track the live alt-bearing entry count through every clearing
     path. *)
  let fib = Fib.create () in
  let p = Prefix.of_as 2 and q = Prefix.of_as 3 in
  Alcotest.(check bool) "empty fib" false (Fib.may_deflect fib);
  Fib.insert fib p ~out_port:0 ~alt_port:1 ();
  Alcotest.(check bool) "alt inserted" true (Fib.may_deflect fib);
  (* withdraw via set_alt_port on the handle *)
  Fib.set_alt_port (Option.get (Fib.find fib p)) None;
  Alcotest.(check bool) "cleared by set_alt_port" false (Fib.may_deflect fib);
  (* ... via set_alts [] *)
  Fib.set_alts (Option.get (Fib.find fib p)) [ 1; 3 ];
  Alcotest.(check bool) "ranked set installed" true (Fib.may_deflect fib);
  Fib.set_alts (Option.get (Fib.find fib p)) [];
  Alcotest.(check bool) "cleared by empty set_alts" false (Fib.may_deflect fib);
  (* ... via a refresh without a hint *)
  Fib.set_alt fib p (Some 7);
  Fib.insert fib p ~out_port:0 ();
  Alcotest.(check bool) "cleared by refresh" false (Fib.may_deflect fib);
  (* ... via remove of the only alt-bearing entry *)
  Fib.insert fib q ~out_port:2 ~alt_port:5 ();
  Fib.set_alt fib p (Some 7);
  ignore (Fib.remove fib q);
  Alcotest.(check bool) "other alt entry still live" true (Fib.may_deflect fib);
  ignore (Fib.remove fib p);
  Alcotest.(check bool) "cleared by remove" false (Fib.may_deflect fib)

let test_fib_ranked_slots () =
  let fib = Fib.create () in
  let p = Prefix.of_as 2 in
  Fib.insert fib p ~out_port:0 ();
  let e = Option.get (Fib.find fib p) in
  Alcotest.(check int) "empty count" 0 (Fib.alt_count e);
  Alcotest.(check int) "empty slot" (-1) (Fib.alt_at e 0);
  (* negatives dropped, order kept, truncated at max_alts, compacted *)
  Fib.set_alts e [ 4; -1; 7; 2; 9; 11 ];
  Alcotest.(check int) "count capped" Fib.max_alts (Fib.alt_count e);
  Alcotest.(check (list int)) "slots in rank order" [ 4; 7; 2; 9 ]
    (List.init Fib.max_alts (Fib.alt_at e));
  Alcotest.(check int) "out of range" (-1) (Fib.alt_at e Fib.max_alts);
  (* single-alt shim reads slot 0 and writes a singleton *)
  Alcotest.(check int) "alt_port_id = slot 0" 4 (Fib.alt_port_id e);
  Fib.set_alt_port e (Some 5);
  Alcotest.(check (list int)) "shim clears higher slots" [ 5; -1; -1; -1 ]
    (List.init Fib.max_alts (Fib.alt_at e));
  (* ECMP spreading: bucket b -> slot (b mod count); a one-alt entry
     always uses slot 0 (the k=1 data plane) *)
  Fib.set_alts e [ 4; 7 ];
  for flow = 0 to 99 do
    let want = Fib.alt_at e (Fib.flow_bucket flow mod 2) in
    Alcotest.(check int) "spread matches slot_of_bucket" want
      (Fib.alt_for_flow e ~flow)
  done;
  Fib.set_alts e [ 4 ];
  for flow = 0 to 99 do
    Alcotest.(check int) "k=1: always slot 0" 4 (Fib.alt_for_flow e ~flow)
  done;
  let k = Fib.default_k () in
  Alcotest.(check bool) "default_k within bounds" true (k >= 1 && k <= Fib.max_alts)

let test_fib_deflects () =
  let fib = Fib.create () in
  let p = Prefix.of_as 2 in
  Fib.insert fib p ~out_port:0 ~alt_port:1 ();
  let entry = Option.get (Fib.find fib p) in
  Fib.set_deflect_buckets entry Fib.buckets;
  Alcotest.(check bool) "all buckets deflect" true (Fib.deflects entry ~flow:7);
  Fib.set_deflect_buckets entry 0;
  Alcotest.(check bool) "zero buckets never deflect" false (Fib.deflects entry ~flow:7);
  Fib.set_deflect_buckets entry Fib.buckets;
  Fib.set_alt_port entry None;
  Alcotest.(check bool) "no alt never deflects" false (Fib.deflects entry ~flow:7)

(* [size] is a cached O(1) count, maintained through refreshes and
   removals, and mirrored into the [fib.entries] gauge. *)
let test_fib_size_and_gauge () =
  let before = Obs.gauge_value "fib.entries" in
  let base = if Float.is_nan before then 0. else before in
  let fib = Fib.create () in
  Alcotest.(check int) "empty" 0 (Fib.size fib);
  Fib.insert fib (Prefix.of_string "10.0.0.0/8") ~out_port:1 ();
  Fib.insert fib (Prefix.of_string "10.1.0.0/16") ~out_port:2 ();
  Fib.insert fib (Prefix.of_string "10.1.0.0/16") ~out_port:3 ();
  Alcotest.(check int) "refresh does not double-count" 2 (Fib.size fib);
  Alcotest.(check bool) "remove hit" true (Fib.remove fib (Prefix.of_string "10.0.0.0/8"));
  Alcotest.(check bool) "remove miss" false (Fib.remove fib (Prefix.of_string "10.0.0.0/8"));
  Alcotest.(check int) "size tracks removal" 1 (Fib.size fib);
  Alcotest.(check (float 1e-6)) "fib.entries gauge tracks net insertions" (base +. 1.)
    (Obs.gauge_value "fib.entries")

(* Flat (open-addressed) and Hashed (legacy oracle) representations must
   be observationally identical under arbitrary insert / remove /
   set-alt / set-deflect churn. *)
let fib_universe =
  Array.map Prefix.of_string
    [|
      "0.0.0.0/0"; "10.0.0.0/8"; "10.1.0.0/16"; "10.1.2.0/24"; "10.1.2.64/26";
      "10.1.2.128/25"; "10.2.0.0/16"; "172.16.0.0/12"; "192.168.0.0/16";
      "192.168.7.0/24"; "192.168.7.42/32"; "203.0.113.0/24";
    |]

let fib_probes =
  Array.map Prefix.addr_of_string
    [|
      "10.1.2.5"; "10.1.2.70"; "10.1.2.130"; "10.9.9.9"; "10.2.3.4"; "172.16.5.5";
      "192.168.7.42"; "192.168.1.1"; "203.0.113.9"; "8.8.8.8";
    |]

let apply_fib_op fib (kind, pidx, a, b) =
  let p = fib_universe.(pidx mod Array.length fib_universe) in
  match kind with
  | 0 ->
    if b mod 3 = 0 then Fib.insert fib p ~out_port:(a land 15) ()
    else Fib.insert fib p ~out_port:(a land 15) ~alt_port:(16 + (b land 15)) ()
  | 1 -> ignore (Fib.remove fib p)
  | 2 ->
    (match Fib.find fib p with
     | Some e -> Fib.set_deflect_buckets e (a mod (Fib.buckets + 1))
     | None -> ())
  | 3 ->
    (match Fib.find fib p with
     | Some _ -> Fib.set_alt fib p (if b land 1 = 0 then None else Some (32 + (b land 7)))
     | None -> ())
  | _ ->
    (* ranked set of 0..5 candidate ports (possibly with negatives /
       overflow, exercising drop+truncate+compact) *)
    (match Fib.find fib p with
     | Some e ->
       let n = b mod 6 in
       Fib.set_alts e (List.init n (fun i -> ((a + (7 * i)) land 31) - 4))
     | None -> ())

let fib_dump fib =
  let acc = ref [] in
  Fib.iter fib (fun p e ->
      acc :=
        ( Prefix.to_string p,
          Fib.out_port e,
          List.init Fib.max_alts (Fib.alt_at e),
          Fib.deflect_buckets e )
        :: !acc);
  List.sort compare !acc

let prop_fib_flat_matches_hashed =
  QCheck2.Test.make ~name:"fib: flat and hashed reps agree under churn" ~count:300
    QCheck2.Gen.(
      list_size (int_range 0 80)
        (quad (int_bound 4) (int_bound 1000) (int_bound 1000) (int_bound 1000)))
    (fun ops ->
      let flat = Fib.create ~rep:Fib.Flat () in
      let hashed = Fib.create ~rep:Fib.Hashed () in
      List.iter
        (fun op ->
          apply_fib_op flat op;
          apply_fib_op hashed op)
        ops;
      if Fib.size flat <> Fib.size hashed then
        QCheck2.Test.fail_report "sizes diverged";
      if Fib.may_deflect flat <> Fib.may_deflect hashed then
        QCheck2.Test.fail_report "may_deflect diverged";
      if fib_dump flat <> fib_dump hashed then
        QCheck2.Test.fail_report "iterated contents diverged";
      Array.iter
        (fun addr ->
          let view fib =
            match Fib.lookup fib addr with
            | None -> None
            | Some e ->
              Some
                ( Fib.out_port e,
                  List.init Fib.max_alts (Fib.alt_at e),
                  Fib.deflect_buckets e )
          in
          if view flat <> view hashed then
            QCheck2.Test.fail_report "lookup diverged")
        fib_probes;
      true)

(* ---------- Engine ---------- *)

(* A single-router environment with configurable port kinds and
   congestion; ports: 0 = default egress, 1 = alternative, 2 = upstream. *)
let make_env ?(alt_kind = Engine.Ebgp { neighbor_as = 9; rel = Relationship.Peer })
    ?(upstream_kind = Engine.Ebgp { neighbor_as = 8; rel = Relationship.Customer })
    ?(congested = fun _ -> false) ?(deflect_buckets = 0) ?(alt = Some 1)
    ?(next_hop_router = fun _ -> None) ?(route_to_peer = fun _ -> None) () =
  let fib = Fib.create () in
  let dst_prefix = Prefix.of_as 2 in
  Fib.insert fib dst_prefix ~out_port:0 ?alt_port:alt ();
  (match Fib.find fib dst_prefix with
   | Some e -> Fib.set_deflect_buckets e deflect_buckets
   | None -> assert false);
  {
    Engine.router_id = 100;
    fib;
    port_kind =
      (fun p ->
        if p = 0 then Engine.Ebgp { neighbor_as = 7; rel = Relationship.Provider }
        else if p = 1 then alt_kind
        else upstream_kind);
    is_congested = congested;
    next_hop_router;
    route_to_peer;
  }

let packet () = mk_packet ()

let test_engine_default_forward () =
  let env = make_env () in
  match Engine.forward env ~ingress:(Some 2) (packet ()) with
  | Engine.Send { port; packet = p; _ } ->
    Alcotest.(check int) "default port" 0 port;
    Alcotest.(check bool) "tagged by customer upstream" true p.Packet.vf_tag;
    Alcotest.(check int) "ttl decremented" (Packet.default_ttl - 1) p.Packet.ttl
  | Engine.Drop _ -> Alcotest.fail "dropped"

let test_engine_no_route () =
  let env = make_env () in
  let p = Packet.make ~src:(Prefix.host_of_as 1 1) ~dst:(Prefix.host_of_as 999 1) ~flow:1 () in
  match Engine.forward env ~ingress:(Some 2) p with
  | Engine.Drop { reason = Engine.No_route; _ } -> ()
  | _ -> Alcotest.fail "expected no-route drop"

let test_engine_ttl_expiry () =
  let env = make_env () in
  let p = mk_packet ~ttl:1 () in
  match Engine.forward env ~ingress:(Some 2) p with
  | Engine.Drop { reason = Engine.Ttl_expired; _ } -> ()
  | _ -> Alcotest.fail "expected ttl drop"

let test_engine_deflects_when_daemon_ramped () =
  let env = make_env ~deflect_buckets:Fib.buckets () in
  match Engine.forward env ~ingress:(Some 2) (packet ()) with
  | Engine.Send { port; packet = p; _ } ->
    Alcotest.(check int) "alternative port" 1 port;
    Alcotest.(check bool) "tag carried" true p.Packet.vf_tag
  | Engine.Drop _ -> Alcotest.fail "dropped"

let test_engine_tag_check_blocks_peer_to_peer () =
  (* upstream is a peer (tag 0), alternative egress is a peer: the
     Fig. 2(a) situation - the alternative may not be used; a locally
     hash-deflected packet falls back to the (loop-free) default. *)
  let env =
    make_env ~deflect_buckets:Fib.buckets
      ~upstream_kind:(Engine.Ebgp { neighbor_as = 8; rel = Relationship.Peer })
      ()
  in
  (match Engine.forward env ~ingress:(Some 2) (packet ()) with
   | Engine.Send { port; _ } -> Alcotest.(check int) "fell back to default" 0 port
   | Engine.Drop _ -> Alcotest.fail "local deflection must not drop");
  (* with the check disabled (ablation) the packet takes the alternative *)
  match Engine.forward ~tag_check:false env ~ingress:(Some 2) (packet ()) with
  | Engine.Send { port; _ } -> Alcotest.(check int) "forwarded unchecked" 1 port
  | Engine.Drop _ -> Alcotest.fail "unexpected drop without tag check"

let test_engine_tag_check_drops_tunneled_packet () =
  (* the same failing check on a packet tunneled to us by our default
     next hop: returning it would cycle, so Algorithm 1 line 20 drops *)
  let env =
    make_env
      ~upstream_kind:(Engine.Ibgp { peer_router = 55 })
      ~next_hop_router:(fun p -> if p = 0 then Some 55 else None)
      ()
  in
  (* arrives tunneled from router 55 with the tag clear; the alternative
     is an eBGP peer, so the check fails *)
  let p = Packet.encapsulate (packet ()) ~outer_src:55 ~outer_dst:100 in
  match Engine.forward env ~ingress:(Some 2) p with
  | Engine.Drop { reason = Engine.Valley_violation; _ } -> ()
  | _ -> Alcotest.fail "expected valley drop for the tunneled packet"

let test_engine_deflect_to_customer_always_ok () =
  let env =
    make_env ~deflect_buckets:Fib.buckets
      ~upstream_kind:(Engine.Ebgp { neighbor_as = 8; rel = Relationship.Provider })
      ~alt_kind:(Engine.Ebgp { neighbor_as = 9; rel = Relationship.Customer })
      ()
  in
  match Engine.forward env ~ingress:(Some 2) (packet ()) with
  | Engine.Send { port; _ } -> Alcotest.(check int) "customer egress ok" 1 port
  | Engine.Drop _ -> Alcotest.fail "dropped"

let test_engine_encapsulates_to_ibgp () =
  let env =
    make_env ~deflect_buckets:Fib.buckets ~alt_kind:(Engine.Ibgp { peer_router = 55 }) ()
  in
  (match Engine.forward env ~ingress:(Some 2) (packet ()) with
   | Engine.Send { port; packet = p; _ } ->
     Alcotest.(check int) "ibgp port" 1 port;
     (match p.Packet.encap with
      | Some e ->
        Alcotest.(check int) "outer src" 100 e.Packet.outer_src;
        Alcotest.(check int) "outer dst" 55 e.Packet.outer_dst
      | None -> Alcotest.fail "not encapsulated")
   | Engine.Drop _ -> Alcotest.fail "dropped");
  (* ablation: without IP-in-IP the packet is sent raw *)
  match Engine.forward ~ibgp_encap:false env ~ingress:(Some 2) (packet ()) with
  | Engine.Send { packet = p; _ } ->
    Alcotest.(check bool) "raw" true (p.Packet.encap = None)
  | Engine.Drop _ -> Alcotest.fail "dropped"

let test_engine_receives_deflected_packet () =
  (* this router's default next hop is router 55; the arriving packet was
     tunneled here BY router 55, so sending it back would cycle: the
     engine must use the alternative instead (Section III-B). *)
  let env =
    make_env
      ~alt_kind:(Engine.Ebgp { neighbor_as = 9; rel = Relationship.Customer })
      ~upstream_kind:(Engine.Ibgp { peer_router = 55 })
      ~next_hop_router:(fun p -> if p = 0 then Some 55 else None)
      ()
  in
  let p = Packet.encapsulate (Packet.with_tag (packet ()) true) ~outer_src:55 ~outer_dst:100 in
  match Engine.forward env ~ingress:(Some 2) p with
  | Engine.Send { port; packet = p'; _ } ->
    Alcotest.(check int) "took the alternative" 1 port;
    Alcotest.(check bool) "outer header stripped" true (p'.Packet.encap = None)
  | Engine.Drop _ -> Alcotest.fail "dropped"

let test_engine_foreign_tunnel_passthrough () =
  (* a tunnel addressed to ANOTHER router is forwarded as-is *)
  let env = make_env () in
  let p = Packet.encapsulate (packet ()) ~outer_src:55 ~outer_dst:77 in
  match Engine.forward env ~ingress:(Some 2) p with
  | Engine.Send { packet = p'; _ } ->
    Alcotest.(check bool) "still encapsulated" true (p'.Packet.encap <> None)
  | Engine.Drop _ -> Alcotest.fail "dropped"

let test_engine_transit_tunnel () =
  (* Regression (tunnel-transit bug): a tunnel addressed to another
     router crosses this one in transit.  It must be routed on its OUTER
     header toward the endpoint — not looked up by inner destination and
     hash-deflected out the eBGP alternative, which would carry it out
     of the AS still encapsulated. *)
  let transit0 = Obs.counter_value "engine.transit.routed" in
  let env =
    make_env ~deflect_buckets:Fib.buckets
      ~alt_kind:(Engine.Ebgp { neighbor_as = 9; rel = Relationship.Customer })
      ~route_to_peer:(fun r -> if r = 77 then Some 5 else None)
      ()
  in
  let p = Packet.encapsulate (packet ()) ~outer_src:55 ~outer_dst:77 in
  (match Engine.forward env ~ingress:(Some 2) p with
   | Engine.Send { port; packet = p'; _ } ->
     Alcotest.(check int) "routed toward the tunnel endpoint" 5 port;
     Alcotest.(check bool) "still encapsulated" true (p'.Packet.encap <> None)
   | Engine.Drop _ -> Alcotest.fail "dropped");
  Alcotest.(check int) "transit counted" (transit0 + 1)
    (Obs.counter_value "engine.transit.routed")

let test_engine_transit_never_deflected () =
  (* Same in-transit tunnel but no iBGP route to the endpoint: the
     packet falls back to the default port for its inner destination.
     Even with every hash bucket deflecting, it must NOT take the eBGP
     alternative. *)
  let env =
    make_env ~deflect_buckets:Fib.buckets
      ~alt_kind:(Engine.Ebgp { neighbor_as = 9; rel = Relationship.Customer })
      ()
  in
  let p = Packet.encapsulate (packet ()) ~outer_src:55 ~outer_dst:77 in
  match Engine.forward env ~ingress:(Some 2) p with
  | Engine.Send { port; packet = p'; _ } ->
    Alcotest.(check int) "default port, never the eBGP alternative" 0 port;
    Alcotest.(check bool) "still encapsulated" true (p'.Packet.encap <> None)
  | Engine.Drop _ -> Alcotest.fail "dropped"

let test_engine_drop_counters () =
  let v0 = Obs.counter_value "engine.drop.valley_violation" in
  let t0 = Obs.counter_value "engine.drop.ttl_expired" in
  let n0 = Obs.counter_value "engine.drop.no_route" in
  (* valley drop: tunneled to us by our default next hop, failing check *)
  let env =
    make_env
      ~upstream_kind:(Engine.Ibgp { peer_router = 55 })
      ~next_hop_router:(fun p -> if p = 0 then Some 55 else None)
      ()
  in
  let p = Packet.encapsulate (packet ()) ~outer_src:55 ~outer_dst:100 in
  (match Engine.forward env ~ingress:(Some 2) p with
   | Engine.Drop { reason = Engine.Valley_violation; _ } -> ()
   | _ -> Alcotest.fail "expected valley drop");
  (match Engine.forward (make_env ()) ~ingress:(Some 2) (mk_packet ~ttl:1 ()) with
   | Engine.Drop { reason = Engine.Ttl_expired; _ } -> ()
   | _ -> Alcotest.fail "expected ttl drop");
  let stray =
    Packet.make ~src:(Prefix.host_of_as 1 1) ~dst:(Prefix.host_of_as 999 1) ~flow:1 ()
  in
  (match Engine.forward (make_env ()) ~ingress:(Some 2) stray with
   | Engine.Drop { reason = Engine.No_route; _ } -> ()
   | _ -> Alcotest.fail "expected no-route drop");
  Alcotest.(check int) "valley drop counted" (v0 + 1)
    (Obs.counter_value "engine.drop.valley_violation");
  Alcotest.(check int) "ttl drop counted" (t0 + 1)
    (Obs.counter_value "engine.drop.ttl_expired");
  Alcotest.(check int) "no-route drop counted" (n0 + 1)
    (Obs.counter_value "engine.drop.no_route")

let test_engine_deflection_counters () =
  let ibgp0 = Obs.counter_value "engine.deflect.ibgp" in
  let encap0 = Obs.counter_value "engine.encap" in
  let ebgp0 = Obs.counter_value "engine.deflect.ebgp" in
  let fb0 = Obs.counter_value "engine.tag_check.fallback" in
  let env =
    make_env ~deflect_buckets:Fib.buckets ~alt_kind:(Engine.Ibgp { peer_router = 55 }) ()
  in
  (match Engine.forward env ~ingress:(Some 2) (packet ()) with
   | Engine.Send { port = 1; _ } -> ()
   | _ -> Alcotest.fail "expected an iBGP deflection");
  let env =
    make_env ~deflect_buckets:Fib.buckets
      ~alt_kind:(Engine.Ebgp { neighbor_as = 9; rel = Relationship.Customer })
      ()
  in
  (match Engine.forward env ~ingress:(Some 2) (packet ()) with
   | Engine.Send { port = 1; _ } -> ()
   | _ -> Alcotest.fail "expected an eBGP deflection");
  (* failing tag-check on a local deflection: counted as a fallback *)
  let env =
    make_env ~deflect_buckets:Fib.buckets
      ~upstream_kind:(Engine.Ebgp { neighbor_as = 8; rel = Relationship.Peer })
      ()
  in
  (match Engine.forward env ~ingress:(Some 2) (packet ()) with
   | Engine.Send { port = 0; _ } -> ()
   | _ -> Alcotest.fail "expected the default-port fallback");
  Alcotest.(check int) "ibgp deflection counted" (ibgp0 + 1)
    (Obs.counter_value "engine.deflect.ibgp");
  Alcotest.(check int) "encapsulation counted" (encap0 + 1)
    (Obs.counter_value "engine.encap");
  Alcotest.(check int) "ebgp deflection counted" (ebgp0 + 1)
    (Obs.counter_value "engine.deflect.ebgp");
  Alcotest.(check int) "tag-check fallback counted" (fb0 + 1)
    (Obs.counter_value "engine.tag_check.fallback")

let test_engine_congestion_deflects_first_bucket () =
  (* instantaneous congestion deflects at least hash bucket 0 before the
     daemon ramps *)
  let env = make_env ~congested:(fun p -> p = 0)
      ~alt_kind:(Engine.Ebgp { neighbor_as = 9; rel = Relationship.Customer }) () in
  (* find a flow id hashing to bucket 0 *)
  let flow = ref 0 in
  while Fib.flow_bucket !flow <> 0 do
    incr flow
  done;
  let p = Packet.make ~src:(Prefix.host_of_as 1 1) ~dst:(Prefix.host_of_as 2 1) ~flow:!flow () in
  match Engine.forward env ~ingress:(Some 2) p with
  | Engine.Send { port; _ } -> Alcotest.(check int) "deflected" 1 port
  | Engine.Drop _ -> Alcotest.fail "dropped"

let test_engine_k2_spreads_buckets () =
  (* ranked pair [1; 4]: each deflected flow picks its slot by
     flow_bucket mod 2 — deterministic per flow, and both alternatives
     carry traffic across the flow population *)
  let env =
    make_env ~deflect_buckets:Fib.buckets
      ~alt_kind:(Engine.Ebgp { neighbor_as = 9; rel = Relationship.Customer })
      ()
  in
  let entry = Option.get (Fib.find env.Engine.fib (Prefix.of_as 2)) in
  Fib.set_alts entry [ 1; 4 ];
  let seen_slot0 = ref 0 and seen_slot1 = ref 0 in
  for flow = 0 to 40 do
    let expected = if Fib.flow_bucket flow mod 2 = 0 then 1 else 4 in
    let p = Packet.make ~src:(Prefix.host_of_as 1 1) ~dst:(Prefix.host_of_as 2 1) ~flow () in
    match Engine.forward env ~ingress:(Some 2) p with
    | Engine.Send { port; _ } ->
      Alcotest.(check int) "slot chosen by flow bucket" expected port;
      if port = 1 then incr seen_slot0 else incr seen_slot1
    | Engine.Drop _ -> Alcotest.fail "dropped"
  done;
  Alcotest.(check bool) "both ranked slots used" true (!seen_slot0 > 0 && !seen_slot1 > 0)

let test_engine_local_delivery () =
  let fib = Fib.create () in
  Fib.insert fib (Prefix.of_as 2) ~out_port:3 ();
  let env =
    {
      Engine.router_id = 1;
      fib;
      port_kind = (fun _ -> Engine.Local);
      is_congested = (fun _ -> false);
      next_hop_router = (fun _ -> None);
      route_to_peer = (fun _ -> None);
    }
  in
  match Engine.forward env ~ingress:None (packet ()) with
  | Engine.Send { port; packet = p; _ } ->
    Alcotest.(check int) "host port" 3 port;
    Alcotest.(check bool) "source tag" true p.Packet.vf_tag
  | Engine.Drop _ -> Alcotest.fail "dropped"

(* Property: over random engine environments and packets, the engine
   preserves its structural invariants - TTL decremented exactly once,
   encapsulation only toward iBGP ports, valley violations only when the
   tag-check actually fails, and the output port always one of the FIB
   entry's two ports. *)
let engine_env_gen =
  QCheck2.Gen.(
    let rel = oneofl [ Relationship.Customer; Relationship.Peer; Relationship.Provider ] in
    let kind =
      oneof
        [
          map (fun r -> Engine.Ebgp { neighbor_as = 9; rel = r }) rel;
          return (Engine.Ibgp { peer_router = 55 });
        ]
    in
    let* alt_kind = kind in
    let* upstream_rel = rel in
    let* congested = bool in
    let* buckets = int_bound Fib.buckets in
    let* has_alt = bool in
    let* flow = int_bound 10_000 in
    let* tagged_encap = bool in
    return (alt_kind, upstream_rel, congested, buckets, has_alt, flow, tagged_encap))

let prop_engine_invariants =
  QCheck2.Test.make ~name:"engine structural invariants" ~count:500 engine_env_gen
    (fun (alt_kind, upstream_rel, congested, buckets, has_alt, flow, encapped) ->
      let env =
        make_env ~alt_kind
          ~upstream_kind:(Engine.Ebgp { neighbor_as = 8; rel = upstream_rel })
          ~congested:(fun p -> congested && p = 0)
          ~deflect_buckets:buckets
          ~alt:(if has_alt then Some 1 else None)
          ~next_hop_router:(fun _ -> None)
          ()
      in
      let base =
        Packet.make ~src:(Prefix.host_of_as 1 1) ~dst:(Prefix.host_of_as 2 1) ~flow ()
      in
      let p = if encapped then Packet.encapsulate base ~outer_src:7 ~outer_dst:99 else base in
      match Engine.forward env ~ingress:(Some 2) p with
      | Engine.Send { port; packet = p'; _ } ->
        (* TTL decremented exactly once *)
        p'.Packet.ttl = p.Packet.ttl - 1
        (* output is one of the FIB ports *)
        && (port = 0 || (has_alt && port = 1))
        (* new encapsulation only toward iBGP ports *)
        && (match (p'.Packet.encap, p.Packet.encap) with
            | Some _, Some _ -> true (* a foreign tunnel passing through *)
            | Some _, None -> port = 1 && alt_kind = Engine.Ibgp { peer_router = 55 }
            | None, Some _ -> false (* never decapsulated: not addressed to us *)
            | None, None -> true)
        (* the tag always reflects the upstream relationship *)
        && p'.Packet.vf_tag = Policy.tag_of_upstream upstream_rel
      | Engine.Drop { reason = Engine.Ttl_expired; _ } -> false
      | Engine.Drop { reason = Engine.No_route; _ } -> false
      | Engine.Drop { reason = Engine.Valley_violation; _ } ->
        (* only possible when tunneled to us - which never happens here
           (outer_dst is 99, not this router) *)
        false)

(* Acceptance gate (k=1 bit-identity): an entry whose ranked set is the
   singleton [a] must forward every packet exactly like the historical
   single-alternative entry configured through set_alt_port. *)
let prop_engine_k1_matches_single_alt =
  QCheck2.Test.make ~name:"engine: singleton ranked set = single-alt shim" ~count:300
    engine_env_gen
    (fun (alt_kind, upstream_rel, congested, buckets, has_alt, flow, encapped) ->
      let mk ~ranked =
        let env =
          make_env ~alt_kind
            ~upstream_kind:(Engine.Ebgp { neighbor_as = 8; rel = upstream_rel })
            ~congested:(fun p -> congested && p = 0)
            ~deflect_buckets:buckets
            ~alt:(if has_alt && not ranked then Some 1 else None)
            ()
        in
        if has_alt && ranked then
          Fib.set_alts (Option.get (Fib.find env.Engine.fib (Prefix.of_as 2))) [ 1 ];
        env
      in
      let base =
        Packet.make ~src:(Prefix.host_of_as 1 1) ~dst:(Prefix.host_of_as 2 1) ~flow ()
      in
      let p = if encapped then Packet.encapsulate base ~outer_src:7 ~outer_dst:99 else base in
      Engine.forward (mk ~ranked:false) ~ingress:(Some 2) p
      = Engine.forward (mk ~ranked:true) ~ingress:(Some 2) p
      && Engine.forward ~tag_check:false (mk ~ranked:false) ~ingress:(Some 2) p
         = Engine.forward ~tag_check:false (mk ~ranked:true) ~ingress:(Some 2) p)

(* ---------- Daemon ---------- *)

let daemon_fib () =
  let fib = Fib.create () in
  Fib.insert fib (Prefix.of_as 2) ~out_port:0 ~alt_port:1 ();
  (fib, fun () -> Fib.deflect_buckets (Option.get (Fib.find fib (Prefix.of_as 2))))

let run_epoch fib ~out_util ~alt_util =
  Daemon.epoch ~fib
    ~port_utilization:(fun p -> if p = 0 then out_util else alt_util)
    ~choose_alt:(fun _ e -> Fib.alt_port e)
    ()

let test_daemon_ramps_up () =
  let fib, buckets = daemon_fib () in
  run_epoch fib ~out_util:0.99 ~alt_util:0.0;
  Alcotest.(check int) "ramped" Daemon.default_config.Daemon.ramp_up (buckets ());
  run_epoch fib ~out_util:0.99 ~alt_util:0.0;
  Alcotest.(check int) "ramped again" (2 * Daemon.default_config.Daemon.ramp_up) (buckets ())

let test_daemon_holds_when_alt_full () =
  let fib, buckets = daemon_fib () in
  run_epoch fib ~out_util:0.99 ~alt_util:0.0;
  let level = buckets () in
  run_epoch fib ~out_util:0.99 ~alt_util:0.95;
  Alcotest.(check int) "held" level (buckets ())

let test_daemon_ramps_down () =
  let fib, buckets = daemon_fib () in
  run_epoch fib ~out_util:0.99 ~alt_util:0.0;
  run_epoch fib ~out_util:0.99 ~alt_util:0.0;
  let level = buckets () in
  run_epoch fib ~out_util:0.3 ~alt_util:0.3;
  Alcotest.(check int) "down" (level - Daemon.default_config.Daemon.ramp_down) (buckets ())

let test_daemon_hysteresis_band () =
  let fib, buckets = daemon_fib () in
  run_epoch fib ~out_util:0.99 ~alt_util:0.0;
  let level = buckets () in
  (* between clear and congest thresholds: no change *)
  run_epoch fib ~out_util:0.75 ~alt_util:0.0;
  Alcotest.(check int) "unchanged in the band" level (buckets ())

let test_daemon_clears_without_alt () =
  let fib, buckets = daemon_fib () in
  run_epoch fib ~out_util:0.99 ~alt_util:0.0;
  Daemon.epoch ~fib
    ~port_utilization:(fun _ -> 0.99)
    ~choose_alt:(fun _ _ -> None)
    ();
  Alcotest.(check int) "no alt, no deflection" 0 (buckets ())

let test_daemon_is_congested () =
  Alcotest.(check bool) "above" true (Daemon.is_congested 0.95);
  Alcotest.(check bool) "below" false (Daemon.is_congested 0.5)

let test_daemon_alt_change_resets_buckets () =
  (* Regression (deflection-state bug): when the daemon switches the
     alternative mid-congestion, the accumulated split belonged to the
     OLD alternative; the cold one must restart the ramp from zero. *)
  let fib, buckets = daemon_fib () in
  run_epoch fib ~out_util:0.99 ~alt_util:0.0;
  run_epoch fib ~out_util:0.99 ~alt_util:0.0;
  Alcotest.(check int) "ramped against the old alternative"
    (2 * Daemon.default_config.Daemon.ramp_up)
    (buckets ());
  let changes0 = Obs.counter_value "daemon.alt_changed" in
  let resets0 = Obs.counter_value "daemon.buckets_reset" in
  Daemon.epoch ~fib
    ~port_utilization:(fun p -> if p = 0 then 0.99 else 0.0)
    ~choose_alt:(fun _ _ -> Some 2)
    ();
  (* reset to zero on the switch, then the same epoch starts the fresh
     ramp: pre-fix the new alternative inherited 2*ramp_up + ramp_up *)
  Alcotest.(check int) "cold alternative restarts the ramp"
    Daemon.default_config.Daemon.ramp_up (buckets ());
  Alcotest.(check (option int)) "alternative switched" (Some 2)
    (Fib.alt_port (Option.get (Fib.find fib (Prefix.of_as 2))));
  Alcotest.(check int) "switch counted" (changes0 + 1)
    (Obs.counter_value "daemon.alt_changed");
  Alcotest.(check int) "reset counted" (resets0 + 1)
    (Obs.counter_value "daemon.buckets_reset");
  (* keeping the same alternative is NOT a switch: no reset *)
  run_epoch fib ~out_util:0.99 ~alt_util:0.0;
  Alcotest.(check int) "stable alternative keeps ramping"
    (2 * Daemon.default_config.Daemon.ramp_up)
    (buckets ())

let test_daemon_clamps_at_edges () =
  (* Regression (clamp bug): the level is pinned to [0, Fib.buckets] and
     the ramp counters account only buckets actually shifted. *)
  let fib, buckets = daemon_fib () in
  let entry = Option.get (Fib.find fib (Prefix.of_as 2)) in
  Fib.set_deflect_buckets entry (Fib.buckets - 1);
  let up0 = Obs.counter_value "daemon.ramp_up_buckets" in
  run_epoch fib ~out_util:0.99 ~alt_util:0.0;
  Alcotest.(check int) "clamped at Fib.buckets" Fib.buckets (buckets ());
  Alcotest.(check int) "only the shifted bucket counted" (up0 + 1)
    (Obs.counter_value "daemon.ramp_up_buckets");
  run_epoch fib ~out_util:0.99 ~alt_util:0.0;
  Alcotest.(check int) "held at the ceiling" Fib.buckets (buckets ());
  Alcotest.(check int) "no spurious ramp-up at the ceiling" (up0 + 1)
    (Obs.counter_value "daemon.ramp_up_buckets");
  Fib.set_deflect_buckets entry 0;
  let down0 = Obs.counter_value "daemon.ramp_down_buckets" in
  run_epoch fib ~out_util:0.3 ~alt_util:0.0;
  Alcotest.(check int) "floor is zero" 0 (buckets ());
  Alcotest.(check int) "ramp_down at zero emits no count" down0
    (Obs.counter_value "daemon.ramp_down_buckets")

let run_epoch_ranked fib ~out_util ~alts =
  Daemon.epoch_ranked ~fib
    ~port_utilization:(fun p -> if p = 0 then out_util else 0.0)
    ~choose_alts:(fun _ _ -> alts)
    ()

let test_daemon_ranked_rotation () =
  (* Per-set ramp state: a withdrawn slot drops out without resetting the
     survivors' ramp; only a wholly fresh (disjoint) set restarts cold. *)
  let fib, buckets = daemon_fib () in
  let entry = Option.get (Fib.find fib (Prefix.of_as 2)) in
  run_epoch_ranked fib ~out_util:0.99 ~alts:[ 1; 2 ];
  run_epoch_ranked fib ~out_util:0.99 ~alts:[ 1; 2 ];
  let up = 2 * Daemon.default_config.Daemon.ramp_up in
  Alcotest.(check int) "ramped against {1,2}" up (buckets ());
  let rot0 = Obs.counter_value "daemon.slots_rotated" in
  let reset0 = Obs.counter_value "daemon.buckets_reset" in
  (* slot 1 withdrawn, slot 2 survives, fresh slot 3 joins *)
  run_epoch_ranked fib ~out_util:0.99 ~alts:[ 2; 3 ];
  Alcotest.(check int) "survivor holds the ramp (and keeps climbing)"
    (up + Daemon.default_config.Daemon.ramp_up)
    (buckets ());
  Alcotest.(check int) "rotation counted" (rot0 + 1)
    (Obs.counter_value "daemon.slots_rotated");
  Alcotest.(check int) "no reset on a partial rotation" reset0
    (Obs.counter_value "daemon.buckets_reset");
  Alcotest.(check (list int)) "rotated set installed" [ 2; 3; -1; -1 ]
    (List.init Fib.max_alts (Fib.alt_at entry));
  (* a disjoint set is cold: reset, then the same epoch's fresh ramp *)
  run_epoch_ranked fib ~out_util:0.99 ~alts:[ 4; 5 ];
  Alcotest.(check int) "disjoint set restarts the ramp"
    Daemon.default_config.Daemon.ramp_up (buckets ());
  Alcotest.(check int) "reset counted" (reset0 + 1)
    (Obs.counter_value "daemon.buckets_reset")

(* ---------- Alt_select ---------- *)

let gadget_rt = lazy (let g = Generator.fig2a_gadget () in (g, Routing.compute g 0))

let test_alt_select_permitted () =
  let _, rt = Lazy.force gadget_rt in
  (* at AS 1, traffic from a peer may not be deflected to the peer routes *)
  let from_peer = Alt_select.permitted rt ~src_as:1 ~upstream:(Some Relationship.Peer) in
  Alcotest.(check int) "no peer-to-peer alternates" 0 (List.length from_peer);
  let local = Alt_select.permitted rt ~src_as:1 ~upstream:None in
  Alcotest.(check int) "source may use both" 2 (List.length local)

let test_alt_select_best () =
  let _, rt = Lazy.force gadget_rt in
  let spare nb = if nb = 3 then 100. else 10. in
  (match Alt_select.best_alternative rt ~src_as:1 ~upstream:None ~spare with
   | Some e -> Alcotest.(check int) "largest spare wins" 3 e.Routing.via
   | None -> Alcotest.fail "no alternative");
  (* ties break to the lower AS id *)
  (match Alt_select.best_alternative rt ~src_as:1 ~upstream:None ~spare:(fun _ -> 5.) with
   | Some e -> Alcotest.(check int) "tie to lower id" 2 e.Routing.via
   | None -> Alcotest.fail "no alternative");
  (* no positive spare -> nothing *)
  Alcotest.(check bool) "all full -> none" true
    (Alt_select.best_alternative rt ~src_as:1 ~upstream:None ~spare:(fun _ -> 0.) = None)

let test_alt_select_ranked () =
  let _, rt = Lazy.force gadget_rt in
  let vias l = List.map (fun (e : Routing.rib_entry) -> e.Routing.via) l in
  let spare nb = if nb = 3 then 100. else 10. in
  Alcotest.(check (list int)) "most spare first" [ 3; 2 ]
    (vias (Alt_select.ranked_alternatives rt ~src_as:1 ~upstream:None ~spare ~k:4));
  (* the pool is capped at k BEFORE ranking, in RIB preference order, so
     the runtime set stays inside what the k-limited verifier admits *)
  Alcotest.(check (list int)) "k=1 pool is the first RIB alternative" [ 2 ]
    (vias (Alt_select.ranked_alternatives rt ~src_as:1 ~upstream:None ~spare ~k:1));
  Alcotest.(check (list int)) "ties rank by lower AS id" [ 2; 3 ]
    (vias
       (Alt_select.ranked_alternatives rt ~src_as:1 ~upstream:None
          ~spare:(fun _ -> 5.)
          ~k:4));
  Alcotest.(check (list int)) "saturated alternatives drop out" [ 3 ]
    (vias
       (Alt_select.ranked_alternatives rt ~src_as:1 ~upstream:None
          ~spare:(fun nb -> if nb = 3 then 1. else 0.)
          ~k:4));
  Alcotest.(check (list int)) "peer upstream may not deflect to peers" []
    (vias
       (Alt_select.ranked_alternatives rt ~src_as:1
          ~upstream:(Some Relationship.Peer) ~spare ~k:4))

(* ---------- Loop_walk: the theorem ---------- *)

let test_walk_no_congestion_delivers () =
  let g, rt = Lazy.force gadget_rt in
  let decide ~as_id:_ ~upstream:_ ~entries:_ = Loop_walk.Default in
  match Loop_walk.walk g rt ~decide ~src:2 with
  | Loop_walk.Delivered path -> Alcotest.(check (list int)) "direct" [ 2; 0 ] path
  | _ -> Alcotest.fail "not delivered"

let test_walk_gadget_loops_without_check () =
  let g, rt = Lazy.force gadget_rt in
  let strategy =
    Loop_walk.congestion_strategy ~congested:(fun _ _ -> true) ~spare:(fun _ _ -> 1.)
  in
  (match Loop_walk.walk ~tag_check:false g rt ~decide:strategy ~src:1 with
   | Loop_walk.Looped _ -> ()
   | _ -> Alcotest.fail "expected a loop without the check");
  match Loop_walk.walk ~tag_check:true g rt ~decide:strategy ~src:1 with
  | Loop_walk.Dropped { reason = Loop_walk.Valley; _ } -> ()
  | _ -> Alcotest.fail "expected a valley drop with the check"

let test_walk_rejects_unknown_neighbor () =
  let g, rt = Lazy.force gadget_rt in
  let decide ~as_id:_ ~upstream:_ ~entries:_ = Loop_walk.Deflect 99 in
  match Loop_walk.walk g rt ~decide ~src:1 with
  | Loop_walk.Dropped { reason = Loop_walk.No_route; _ } -> ()
  | _ -> Alcotest.fail "expected no-route drop"

(* The theorem (Section III-A3): with the valley-free rule on the data
   plane, NO deflection strategy can loop a packet.  We drive the walker
   with an adversarial pseudo-random strategy over a generated topology
   and check every outcome is Delivered or Dropped. *)
let prop_theorem_no_loops =
  let topo =
    lazy
      (Generator.generate
         ~params:{ Generator.default_params with Generator.ases = 300; tier1 = 5;
                   content_providers = 3; content_peer_span = (3, 9) }
         ~seed:77 ())
  in
  QCheck2.Test.make ~name:"theorem: tag-check makes any deflection strategy loop-free"
    ~count:150
    QCheck2.Gen.(triple (int_bound 299) (int_bound 299) (int_bound 1_000_000))
    (fun (src, dst, salt) ->
      QCheck2.assume (src <> dst);
      let t = Lazy.force topo in
      let g = t.Generator.graph in
      let rt = Routing.compute g dst in
      (* adversarial strategy: pseudo-randomly deflect to ANY RIB entry *)
      let decide ~as_id ~upstream:_ ~entries =
        let h = Hashtbl.hash (as_id, salt) in
        match entries with
        | [] -> Loop_walk.Default
        | entries ->
          let k = h mod (List.length entries + 1) in
          if k = 0 then Loop_walk.Default
          else Loop_walk.Deflect (List.nth entries (k - 1)).Routing.via
      in
      match Loop_walk.walk ~tag_check:true g rt ~decide ~src with
      | Loop_walk.Delivered path ->
        As_graph.path_is_valley_free g path
      | Loop_walk.Dropped _ -> true
      | Loop_walk.Looped _ -> false)

let () =
  Alcotest.run "mifo_core"
    [
      ( "deployment",
        [
          Alcotest.test_case "full/none" `Quick test_deployment_full_none;
          Alcotest.test_case "fraction" `Quick test_deployment_fraction;
          Alcotest.test_case "of_list" `Quick test_deployment_of_list;
          Alcotest.test_case "ratio clamping" `Quick test_deployment_clamps_ratio;
        ] );
      ("policy", [ Alcotest.test_case "tag and check tables" `Quick test_policy ]);
      ( "packet",
        [
          Alcotest.test_case "encap/decap" `Quick test_packet_encap;
          Alcotest.test_case "ttl" `Quick test_packet_ttl;
        ] );
      ( "fib",
        [
          Alcotest.test_case "longest prefix match" `Quick test_fib_lpm;
          Alcotest.test_case "set_alt" `Quick test_fib_set_alt;
          Alcotest.test_case "flow buckets" `Quick test_fib_buckets;
          Alcotest.test_case "re-insert preserves deflection state" `Quick
            test_fib_reinsert_preserves_deflection;
          Alcotest.test_case "may_deflect tracks live alternatives" `Quick
            test_fib_may_deflect_clears;
          Alcotest.test_case "ranked alternative slots" `Quick test_fib_ranked_slots;
          Alcotest.test_case "deflects" `Quick test_fib_deflects;
          Alcotest.test_case "O(1) size + fib.entries gauge" `Quick
            test_fib_size_and_gauge;
          QCheck_alcotest.to_alcotest prop_fib_flat_matches_hashed;
        ] );
      ( "engine",
        [
          Alcotest.test_case "default forwarding + tagging" `Quick test_engine_default_forward;
          Alcotest.test_case "no route" `Quick test_engine_no_route;
          Alcotest.test_case "ttl expiry" `Quick test_engine_ttl_expiry;
          Alcotest.test_case "daemon-ramped deflection" `Quick
            test_engine_deflects_when_daemon_ramped;
          Alcotest.test_case "tag-check blocks peer-to-peer" `Quick
            test_engine_tag_check_blocks_peer_to_peer;
          Alcotest.test_case "tag-check drops tunneled packets" `Quick
            test_engine_tag_check_drops_tunneled_packet;
          Alcotest.test_case "deflect to customer always ok" `Quick
            test_engine_deflect_to_customer_always_ok;
          Alcotest.test_case "IP-in-IP to iBGP peer" `Quick test_engine_encapsulates_to_ibgp;
          Alcotest.test_case "deflected packet uses alternative" `Quick
            test_engine_receives_deflected_packet;
          Alcotest.test_case "foreign tunnel passthrough" `Quick
            test_engine_foreign_tunnel_passthrough;
          Alcotest.test_case "in-transit tunnel routed on outer header" `Quick
            test_engine_transit_tunnel;
          Alcotest.test_case "in-transit tunnel never deflected" `Quick
            test_engine_transit_never_deflected;
          Alcotest.test_case "drop-reason counters" `Quick test_engine_drop_counters;
          Alcotest.test_case "deflection counters" `Quick test_engine_deflection_counters;
          Alcotest.test_case "instant congestion deflects bucket 0" `Quick
            test_engine_congestion_deflects_first_bucket;
          Alcotest.test_case "k=2 ECMP spread across ranked slots" `Quick
            test_engine_k2_spreads_buckets;
          Alcotest.test_case "local delivery" `Quick test_engine_local_delivery;
          QCheck_alcotest.to_alcotest prop_engine_invariants;
          QCheck_alcotest.to_alcotest prop_engine_k1_matches_single_alt;
        ] );
      ( "daemon",
        [
          Alcotest.test_case "ramps up under congestion" `Quick test_daemon_ramps_up;
          Alcotest.test_case "holds when alternative is full" `Quick
            test_daemon_holds_when_alt_full;
          Alcotest.test_case "ramps down when drained" `Quick test_daemon_ramps_down;
          Alcotest.test_case "hysteresis band" `Quick test_daemon_hysteresis_band;
          Alcotest.test_case "no alternative, no deflection" `Quick
            test_daemon_clears_without_alt;
          Alcotest.test_case "congestion predicate" `Quick test_daemon_is_congested;
          Alcotest.test_case "alt change resets the ramp" `Quick
            test_daemon_alt_change_resets_buckets;
          Alcotest.test_case "level clamps at both edges" `Quick
            test_daemon_clamps_at_edges;
          Alcotest.test_case "ranked rotation holds, disjoint resets" `Quick
            test_daemon_ranked_rotation;
        ] );
      ( "alt_select",
        [
          Alcotest.test_case "valley filter" `Quick test_alt_select_permitted;
          Alcotest.test_case "greedy best + tie-break" `Quick test_alt_select_best;
          Alcotest.test_case "ranked candidate list" `Quick test_alt_select_ranked;
        ] );
      ( "loop_walk",
        [
          Alcotest.test_case "delivers without congestion" `Quick
            test_walk_no_congestion_delivers;
          Alcotest.test_case "fig2a: loop without check, drop with" `Quick
            test_walk_gadget_loops_without_check;
          Alcotest.test_case "rejects unknown neighbor" `Quick test_walk_rejects_unknown_neighbor;
          QCheck_alcotest.to_alcotest prop_theorem_no_loops;
        ] );
    ]
