(* Integration tests: the experiment harness end-to-end at quick scale.
   These exercise topology generation -> routing -> traffic -> simulation
   -> figure extraction in one pass and assert the paper's qualitative
   relationships (who wins, monotonicity), not absolute numbers. *)

module Exp = Mifo_exp.Experiments
module Ablations = Mifo_exp.Ablations
module Context = Mifo_exp.Context
module Generator = Mifo_topology.Generator
module Topo_stats = Mifo_topology.Topo_stats

(* substring check without the Str dependency *)
let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  nn = 0 || go 0

(* A small topology + quick scale so the whole file runs in seconds. *)
let ctx =
  lazy
    (Context.create
       ~params:
         {
           Generator.default_params with
           Generator.ases = 600;
           tier1 = 8;
           content_providers = 6;
           content_peer_span = (5, 20);
         }
       ~scale:{ Context.quick_scale with Context.flows = 500; arrival_rate = 1_500. }
       ~seed:7 ())

let test_table1 () =
  let ctx = Lazy.force ctx in
  let s = Exp.Table1.run ctx in
  Alcotest.(check int) "nodes" 600 s.Topo_stats.nodes;
  Alcotest.(check int) "links add up" s.Topo_stats.links
    (s.Topo_stats.pc_links + s.Topo_stats.peering_links);
  let rendered = Exp.Table1.render s in
  Alcotest.(check bool) "mentions node count" true
    (contains rendered (Mifo_util.Table.fmt_count s.Topo_stats.nodes))

let test_fig7_relationships () =
  let ctx = Lazy.force ctx in
  let t = Exp.Fig7.run ctx in
  Alcotest.(check int) "four series" 4 (List.length t.Exp.Fig7.series);
  (* each series is sorted descending over percentiles *)
  List.iter
    (fun s ->
      let pc = s.Exp.Fig7.percentile_counts in
      for i = 1 to Array.length pc - 1 do
        Alcotest.(check bool) "monotone" true (snd pc.(i) <= snd pc.(i - 1))
      done)
    t.Exp.Fig7.series;
  (* the paper's headline: MIFO >> MIRO in available paths *)
  let median = Exp.Fig7.median_of t in
  Alcotest.(check bool) "MIFO-100 median > MIRO-100 median" true
    (median "100% Deployed MIFO" > median "100% Deployed MIRO");
  Alcotest.(check bool) "MIFO-100 >= MIFO-50" true
    (median "100% Deployed MIFO" >= median "50% Deployed MIFO")

let test_fig5_relationships () =
  let ctx = Lazy.force ctx in
  let panels = Exp.Throughput.fig5 ~ratios:[ 1.0 ] ctx in
  match panels with
  | [ (ratio, curves) ] ->
    Alcotest.(check (float 1e-9)) "ratio" 1.0 ratio;
    Alcotest.(check int) "three protocols" 3 (List.length curves);
    let find label =
      List.find (fun (c : Exp.Throughput.curve) -> c.Exp.Throughput.label = label) curves
    in
    let bgp = find "BGP" and mifo = find "100% Deployed MIFO" in
    (* CDF values are valid percentages and monotone *)
    List.iter
      (fun (c : Exp.Throughput.curve) ->
        Array.iteri
          (fun i (_, y) ->
            Alcotest.(check bool) "percent" true (y >= 0. && y <= 100.);
            if i > 0 then
              Alcotest.(check bool) "monotone" true (y >= snd c.Exp.Throughput.cdf.(i - 1)))
          c.Exp.Throughput.cdf)
      curves;
    Alcotest.(check (float 1e-9)) "BGP offloads nothing" 0. bgp.Exp.Throughput.offload;
    Alcotest.(check bool) "MIFO offloads" true (mifo.Exp.Throughput.offload > 0.);
    Alcotest.(check bool) "MIFO >= BGP at 500 Mbps" true
      (mifo.Exp.Throughput.at_least_500m >= bgp.Exp.Throughput.at_least_500m)
  | _ -> Alcotest.fail "expected one panel"

let test_fig6_structure () =
  let ctx = Lazy.force ctx in
  let panels = Exp.Throughput.fig6 ~alphas:[ 1.0 ] ctx in
  match panels with
  | [ (alpha, curves) ] ->
    Alcotest.(check (float 1e-9)) "alpha" 1.0 alpha;
    Alcotest.(check int) "three protocols" 3 (List.length curves);
    List.iter
      (fun (c : Exp.Throughput.curve) ->
        Alcotest.(check bool) "median sane" true
          (c.Exp.Throughput.median_mbps >= 0. && c.Exp.Throughput.median_mbps <= 1000.))
      curves
  | _ -> Alcotest.fail "expected one panel"

let test_fig8_monotone_trend () =
  let ctx = Lazy.force ctx in
  let t = Exp.Fig8.run ~ratios:[ 0.1; 0.5; 1.0 ] ctx in
  Alcotest.(check int) "three points" 3 (Array.length t);
  Array.iter
    (fun (_, f) -> Alcotest.(check bool) "fraction" true (f >= 0. && f <= 1.))
    t;
  let _, at10 = t.(0) and _, at100 = t.(2) in
  Alcotest.(check bool) "more deployment, more offload" true (at100 >= at10);
  Alcotest.(check bool) "full deployment offloads a nontrivial share" true (at100 > 0.05)

let test_fig9_distribution () =
  let ctx = Lazy.force ctx in
  let t = Exp.Fig9.run ctx in
  let total = Array.fold_left ( +. ) 0. t.Exp.Fig9.fractions in
  Alcotest.(check bool) "fractions sum to ~1 over switched flows" true
    (t.Exp.Fig9.switched_flows = 0 || abs_float (total -. 1.0) < 1e-6);
  Alcotest.(check bool) "some flows switched" true (t.Exp.Fig9.switched_flows > 0);
  Alcotest.(check bool) "switched <= total" true
    (t.Exp.Fig9.switched_flows <= t.Exp.Fig9.total_flows);
  (* stability: the bulk of switched flows switch few times *)
  Alcotest.(check bool) "1-2 switches dominate" true
    (t.Exp.Fig9.fractions.(0) +. t.Exp.Fig9.fractions.(1) > 0.5)

let test_fig12_quick () =
  let config =
    { Mifo_testbed.Testbed.default_config with
      Mifo_testbed.Testbed.flows_per_source = 3; flow_bytes = 5_000_000 }
  in
  let t = Exp.Fig12.run ~config () in
  Alcotest.(check int) "bgp flows" 6 (Array.length t.Exp.Fig12.bgp.Mifo_testbed.Testbed.fct);
  Alcotest.(check int) "mifo flows" 6 (Array.length t.Exp.Fig12.mifo.Mifo_testbed.Testbed.fct);
  Alcotest.(check bool) "MIFO not worse than 0.9x BGP" true (t.Exp.Fig12.improvement > -0.1);
  let rendered = Exp.Fig12.render t in
  Alcotest.(check bool) "render mentions both protocols" true
    (contains rendered "BGP" && contains rendered "MIFO")

let test_tag_check_ablation () =
  let t = Ablations.Tag_check.run_gadget () in
  Alcotest.(check int) "all loop without the check" 3
    t.Ablations.Tag_check.without_check.Ablations.Tag_check.looped;
  Alcotest.(check int) "none loop with the check" 0
    t.Ablations.Tag_check.with_check.Ablations.Tag_check.looped;
  Alcotest.(check int) "drops replace loops" 3
    t.Ablations.Tag_check.with_check.Ablations.Tag_check.dropped_valley;
  (* the static verifier's verdicts ride along: clean with the check,
     a machine-checked (replay-confirmed) loop counterexample without *)
  Alcotest.(check bool) "static: loop-free with the check" true
    t.Ablations.Tag_check.static_on.Ablations.Tag_check.loop_free;
  Alcotest.(check bool) "static: counterexample without it" false
    t.Ablations.Tag_check.static_off.Ablations.Tag_check.loop_free;
  Alcotest.(check bool) "static: counterexample replays to a loop" true
    t.Ablations.Tag_check.static_off.Ablations.Tag_check.replay_confirmed

let test_tag_check_ablation_generated () =
  let ctx = Lazy.force ctx in
  let t = Ablations.Tag_check.run ~sources:60 ctx in
  Alcotest.(check int) "never loops with the check" 0
    t.Ablations.Tag_check.with_check.Ablations.Tag_check.looped;
  Alcotest.(check bool) "static: loop-free with the check" true
    t.Ablations.Tag_check.static_on.Ablations.Tag_check.loop_free;
  Alcotest.(check bool) "static: any counterexample replays" true
    (t.Ablations.Tag_check.static_off.Ablations.Tag_check.loop_free
    || t.Ablations.Tag_check.static_off.Ablations.Tag_check.replay_confirmed)

let test_selection_ablation () =
  let ctx = Lazy.force ctx in
  match Ablations.Selection.run ctx with
  | [ greedy; oracle ] ->
    Alcotest.(check bool) "both measured" true
      (greedy.Ablations.Selection.median_mbps > 0.
       && oracle.Ablations.Selection.median_mbps > 0.)
  | _ -> Alcotest.fail "expected two rows"

let test_threshold_ablation () =
  let ctx = Lazy.force ctx in
  let rows = Ablations.Threshold.run ~thresholds:[ 0.9; 0.99 ] ctx in
  Alcotest.(check int) "two rows" 2 (List.length rows);
  List.iter
    (fun (r : Ablations.Threshold.row) ->
      Alcotest.(check bool) "switch counts sane" true (r.Ablations.Threshold.mean_switches >= 0.))
    rows

let test_validation_agreement () =
  let v = Mifo_exp.Validation.run ~ases:100 ~flows:12 ~flow_bytes:5_000_000 ~seed:3 () in
  Alcotest.(check bool)
    (Printf.sprintf "correlation %.2f > 0.5" v.Mifo_exp.Validation.bgp_correlation)
    true
    (v.Mifo_exp.Validation.bgp_correlation > 0.5);
  Alcotest.(check bool)
    (Printf.sprintf "mean ratio %.2f within 0.7..1.3" v.Mifo_exp.Validation.bgp_mean_ratio)
    true
    (v.Mifo_exp.Validation.bgp_mean_ratio > 0.7 && v.Mifo_exp.Validation.bgp_mean_ratio < 1.3);
  Alcotest.(check bool) "invariants reported" true
    (v.Mifo_exp.Validation.invariants <> []);
  List.iter
    (fun (name, ok) -> Alcotest.(check bool) ("invariant: " ^ name) true ok)
    v.Mifo_exp.Validation.invariants

let test_convergence_ablation () =
  let ctx = Lazy.force ctx in
  let t = Ablations.Convergence.run ~failures:5 ctx in
  Alcotest.(check int) "five failures measured" 5 t.Ablations.Convergence.failures;
  Alcotest.(check bool) "convergence costs messages" true
    (t.Ablations.Convergence.mean_messages > 0.)

let test_failure_ablation () =
  let ctx = Lazy.force ctx in
  let t = Ablations.Failure.run ~fail_count:2 ctx in
  Alcotest.(check bool) "some flows affected" true (t.Ablations.Failure.affected > 0);
  Alcotest.(check bool)
    (Printf.sprintf "MIFO (%.2f) saves more affected flows than BGP (%.2f)"
       t.Ablations.Failure.mifo_completed t.Ablations.Failure.bgp_completed)
    true
    (t.Ablations.Failure.mifo_completed > t.Ablations.Failure.bgp_completed)

(* The multicore layer must not change any result: runs with a 4-way
   pool and with the serial pool must produce structurally identical
   figures (slot-indexed accumulation, serial flattening). *)
let test_mifo_jobs_determinism () =
  let params =
    {
      Generator.default_params with
      Generator.ases = 300;
      tier1 = 6;
      content_providers = 4;
      content_peer_span = (4, 12);
    }
  in
  let scale = { Context.quick_scale with Context.flows = 200; arrival_rate = 1_000. } in
  let run_at jobs =
    Mifo_util.Parallel.set_default_jobs jobs;
    let ctx = Context.create ~params ~scale ~seed:11 () in
    let fig7 = Exp.Fig7.run ctx in
    let fig8 = Exp.Fig8.run ~ratios:[ 0.5; 1.0 ] ctx in
    (fig7, fig8)
  in
  let serial = run_at 1 in
  let parallel = run_at 4 in
  Mifo_util.Parallel.set_default_jobs (Mifo_util.Parallel.default_jobs ());
  let (f7s, f8s) = serial and (f7p, f8p) = parallel in
  List.iter2
    (fun (a : Exp.Fig7.series) (b : Exp.Fig7.series) ->
      Alcotest.(check string) "series label" a.Exp.Fig7.label b.Exp.Fig7.label;
      Alcotest.(check bool)
        (Printf.sprintf "series %S identical" a.Exp.Fig7.label)
        true
        (a.Exp.Fig7.percentile_counts = b.Exp.Fig7.percentile_counts))
    f7s.Exp.Fig7.series f7p.Exp.Fig7.series;
  Alcotest.(check bool) "fig8 identical" true (f8s = f8p)

let test_overhead_ablation () =
  let ctx = Lazy.force ctx in
  let t = Ablations.Overhead.run ~destinations:4 ctx in
  Alcotest.(check bool) "BGP pays messages" true (t.Ablations.Overhead.bgp_messages > 0.);
  Alcotest.(check bool) "MIRO pays extra" true (t.Ablations.Overhead.miro_extra > 0.);
  Alcotest.(check (float 1e-9)) "MIFO pays nothing" 0. t.Ablations.Overhead.mifo_extra

let () =
  Alcotest.run "mifo_exp"
    [
      ("table1", [ Alcotest.test_case "attributes" `Quick test_table1 ]);
      ("fig7", [ Alcotest.test_case "path diversity relationships" `Quick test_fig7_relationships ]);
      ("fig5", [ Alcotest.test_case "throughput CDFs" `Slow test_fig5_relationships ]);
      ("fig6", [ Alcotest.test_case "power-law panels" `Slow test_fig6_structure ]);
      ("fig8", [ Alcotest.test_case "offload trend" `Slow test_fig8_monotone_trend ]);
      ("fig9", [ Alcotest.test_case "switch distribution" `Slow test_fig9_distribution ]);
      ( "determinism",
        [ Alcotest.test_case "MIFO_JOBS=4 matches serial" `Quick test_mifo_jobs_determinism ] );
      ("fig12", [ Alcotest.test_case "testbed quick" `Slow test_fig12_quick ]);
      ( "ablations",
        [
          Alcotest.test_case "tag-check on the gadget" `Quick test_tag_check_ablation;
          Alcotest.test_case "tag-check on generated topology" `Quick
            test_tag_check_ablation_generated;
          Alcotest.test_case "selection rule" `Slow test_selection_ablation;
          Alcotest.test_case "threshold sweep" `Slow test_threshold_ablation;
          Alcotest.test_case "convergence dynamics" `Slow test_convergence_ablation;
          Alcotest.test_case "failure recovery" `Slow test_failure_ablation;
          Alcotest.test_case "control-plane overhead" `Slow test_overhead_ablation;
        ] );
      ( "validation",
        [ Alcotest.test_case "simulators agree" `Slow test_validation_agreement ] );
    ]
